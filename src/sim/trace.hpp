#pragma once

#include <filesystem>
#include <vector>

#include "core/engine.hpp"
#include "sensors/types.hpp"

namespace rups::sim {

/// Recorded sensor streams of one instrumented drive — the unit of the
/// paper's trace-driven methodology: record once in the field (here: in the
/// simulator), then replay through the RUPS pipeline as many times as the
/// evaluation needs.
struct VehicleTrace {
  std::vector<sensors::ImuSample> imu;
  std::vector<sensors::SpeedSample> obd;
  std::vector<sensors::RssiMeasurement> rssi;
  std::vector<sensors::GpsFix> gps;
  /// True route position at each emitted odometer metre (ground truth).
  std::vector<double> true_pos_of_metre;

  /// CSV round trip (one file; streams are tagged rows).
  void save_csv(const std::filesystem::path& path) const;
  [[nodiscard]] static VehicleTrace load_csv(const std::filesystem::path& path);

  [[nodiscard]] bool empty() const noexcept {
    return imu.empty() && obd.empty() && rssi.empty() && gps.empty();
  }
};

/// Event sink a VehicleRig can publish its sensor streams to.
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void on_imu(const sensors::ImuSample& sample) = 0;
  virtual void on_obd(const sensors::SpeedSample& sample) = 0;
  virtual void on_rssi(const sensors::RssiMeasurement& sample) = 0;
  virtual void on_gps(const sensors::GpsFix& fix) = 0;
};

/// TraceSink that accumulates a VehicleTrace in memory.
class TraceRecorder final : public TraceSink {
 public:
  void on_imu(const sensors::ImuSample& sample) override {
    trace_.imu.push_back(sample);
  }
  void on_obd(const sensors::SpeedSample& sample) override {
    trace_.obd.push_back(sample);
  }
  void on_rssi(const sensors::RssiMeasurement& sample) override {
    trace_.rssi.push_back(sample);
  }
  void on_gps(const sensors::GpsFix& fix) override {
    trace_.gps.push_back(fix);
  }

  [[nodiscard]] VehicleTrace& trace() noexcept { return trace_; }
  [[nodiscard]] const VehicleTrace& trace() const noexcept { return trace_; }

 private:
  VehicleTrace trace_;
};

/// Replay a recorded trace through a fresh RUPS engine, merging the streams
/// in timestamp order exactly as they arrived live.
void replay_trace(const VehicleTrace& trace, core::RupsEngine& engine);

}  // namespace rups::sim
