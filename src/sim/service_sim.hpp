#pragma once

// City-scale service workload: a fleet of vehicles driving one shared road
// log, feeding a service::MatcherService round by round. Unlike the
// convoy simulators (full sensor stacks through RupsEngine), CityFleet
// synthesizes per-metre context trajectories directly from a deterministic
// hashed radio field — the same "temporary stability" construction the GSM
// field uses, cheap enough to drive 10k+ vehicles — so service benches and
// shard-routing determinism tests share one replayable workload.

#include <cstdint>
#include <vector>

#include "core/types.hpp"
#include "obs/health.hpp"
#include "obs/snapshot.hpp"
#include "service/matcher_service.hpp"
#include "util/hash_noise.hpp"

namespace rups::sim {

struct CityFleetConfig {
  std::size_t vehicles = 24;
  std::size_t channels = 45;
  std::size_t context_capacity_m = 240;
  /// Initial gap between consecutive vehicles (metres of road position).
  double spacing_m = 30.0;
  /// Per-round advance is a per-vehicle constant drawn from this range —
  /// vehicles drift apart, exercising shard migration and re-verification.
  std::size_t min_advance_m = 8;
  std::size_t max_advance_m = 14;
  double interval_s = 1.0;
  std::uint64_t seed = 0xC17F;
  /// Per-(vehicle, metre, channel) measurement noise sigma (dB) on top of
  /// the shared spatial field.
  double noise_dbm = 1.5;
};

/// Deterministic city fleet. Every vehicle observes the SAME spatial RSSI
/// component at a given road metre (plus private noise), which is exactly
/// the property RUPS matching needs. Replayable: two CityFleets with equal
/// configs produce bit-identical samples and queries.
class CityFleet {
 public:
  /// One new context metre for a vehicle this round.
  struct Sample {
    double position_m = 0.0;
    core::GeoSample geo;
    core::PowerVector power;
  };
  /// One relative-distance request (indices into the fleet).
  struct Query {
    std::size_t ego = 0;
    std::size_t neighbour = 0;
  };

  explicit CityFleet(CityFleetConfig config);

  [[nodiscard]] std::size_t vehicle_count() const noexcept {
    return positions_.size();
  }
  [[nodiscard]] std::uint64_t vehicle_id(std::size_t i) const noexcept {
    return 1000 + i;
  }
  [[nodiscard]] double position(std::size_t i) const noexcept {
    return positions_[i];
  }
  [[nodiscard]] std::size_t round() const noexcept { return round_; }

  /// Advance every vehicle by its per-round metre budget and regenerate
  /// the per-vehicle sample lists. Buffers are reused across rounds.
  void advance_round();

  /// New samples for vehicle i produced by the last advance_round().
  [[nodiscard]] const std::vector<Sample>& samples(std::size_t i) const {
    return samples_[i];
  }
  /// This round's request plan: each vehicle queries its predecessor on
  /// the ring (vehicle 0 queries the last — usually out of context range,
  /// exercising the miss path deterministically).
  [[nodiscard]] const std::vector<Query>& queries() const noexcept {
    return queries_;
  }
  /// Signed ground truth for a query (positive = ego ahead).
  [[nodiscard]] double truth_m(const Query& q) const noexcept {
    return positions_[q.ego] - positions_[q.neighbour];
  }

  /// RSSI of `channel` at absolute road metre `metre` for `vehicle` —
  /// shared spatial field plus private noise. Exposed so tests can verify
  /// temporary stability directly.
  [[nodiscard]] float rssi(std::size_t vehicle, long long metre,
                           std::size_t channel) const noexcept;

 private:
  CityFleetConfig config_;
  util::HashNoise chan_noise_;
  util::HashNoise meas_noise_;
  util::LatticeField1D field_;
  std::vector<double> positions_;
  std::vector<std::size_t> advance_m_;
  std::vector<std::vector<Sample>> samples_;
  std::vector<Query> queries_;
  std::size_t round_ = 0;
};

/// Deterministic service campaign for the service_metrics regression
/// section and the shard-routing tests.
struct ServiceCampaignConfig {
  CityFleetConfig city{};
  service::ServiceConfig service{};
  std::size_t rounds = 12;
  /// Rounds of pure context feeding before requests start.
  std::size_t warmup_rounds = 4;
  /// Worker threads for pooled drains; 0 = serial.
  std::size_t pool_threads = 0;
  obs::HealthConfig health{};
};

struct ServiceCampaignResult {
  std::uint64_t requests = 0;
  std::uint64_t accepted = 0;
  std::uint64_t rejected = 0;
  std::uint64_t estimates = 0;
  /// estimates / accepted (0 when nothing was accepted).
  double availability = 0.0;
  double mean_latency_us = 0.0;
  std::vector<std::uint64_t> shard_processed;
  obs::MetricsSnapshot metrics;
  obs::HealthReport health;
};

/// Feed a CityFleet through a MatcherService: register everyone, then per
/// round observe every sample, submit the query plan (after warm-up) and
/// drain. All counters in the result are deterministic functions of the
/// config; only latencies are machine-dependent.
[[nodiscard]] ServiceCampaignResult run_service_campaign(
    const ServiceCampaignConfig& config);

}  // namespace rups::sim
