#include "sim/scenario.hpp"

namespace rups::sim {

Scenario Scenario::two_car(std::uint64_t seed, road::EnvironmentType env,
                           double gap_m) {
  Scenario s;
  s.seed = seed;
  s.env = env;
  VehicleSetup front;
  front.seed = seed * 2 + 1;
  front.start_offset_m = gap_m;
  VehicleSetup rear;
  rear.seed = seed * 2 + 2;
  rear.start_offset_m = 0.0;
  s.vehicles = {front, rear};
  return s;
}

Scenario Scenario::fleet(std::uint64_t seed, road::EnvironmentType env,
                         std::size_t vehicle_count, double gap_m) {
  Scenario s;
  s.seed = seed;
  s.env = env;
  for (std::size_t i = 0; i < vehicle_count; ++i) {
    VehicleSetup v;
    v.seed = seed * vehicle_count + i + 1;
    v.start_offset_m =
        gap_m * static_cast<double>(vehicle_count - 1 - i);
    s.vehicles.push_back(v);
  }
  return s;
}

}  // namespace rups::sim
