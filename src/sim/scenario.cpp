#include "sim/scenario.hpp"

namespace rups::sim {

Scenario Scenario::two_car(std::uint64_t seed, road::EnvironmentType env,
                           double gap_m) {
  Scenario s;
  s.seed = seed;
  s.env = env;
  VehicleSetup front;
  front.seed = seed * 2 + 1;
  front.start_offset_m = gap_m;
  VehicleSetup rear;
  rear.seed = seed * 2 + 2;
  rear.start_offset_m = 0.0;
  s.vehicles = {front, rear};
  return s;
}

}  // namespace rups::sim
