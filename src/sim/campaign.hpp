#pragma once

#include <filesystem>
#include <vector>

#include "obs/health.hpp"
#include "obs/snapshot.hpp"
#include "obs/timeseries.hpp"
#include "sim/convoy_sim.hpp"
#include "v2v/exchange.hpp"
#include "v2v/receiver.hpp"

namespace rups::sim {

/// A query campaign mirrors the paper's evaluation recipe: drive the
/// convoy, then "randomly select N points on the trajectory of the first
/// car and estimate the relative distance" (Secs. VI-B/C/D) — here, queries
/// are issued at a fixed interval after a warm-up that covers sensor
/// calibration and context build-up.
struct CampaignConfig {
  double warmup_s = 350.0;
  double interval_s = 3.0;
  std::size_t max_queries = 500;
  /// Hard stop (s); 0 = run until a vehicle finishes the route.
  double time_limit_s = 0.0;
  /// Run every query through a simulated DSRC exchange (Sec. V-B): the
  /// front vehicle's context is transferred in full before the first
  /// query, then as incremental tail updates, and the rear vehicle
  /// estimates from the DECODED receiver-side copy — codec quantization
  /// and any channel damage genuinely reach SynSeeker. When false, queries
  /// search the sender's pristine in-memory context (the idealized bound).
  bool model_v2v_cost = true;
  /// Packet-fault profile applied to every exchange (clean by default;
  /// see FaultConfig::urban()/tunnel()/congested()).
  v2v::FaultConfig fault{};
  /// Retry/deadline policy of the exchange protocol.
  v2v::ExchangeConfig exchange{};
  /// Seed of the fault channel (the link keeps its own fixed seed so
  /// clean-channel timing stays comparable across configurations).
  std::uint64_t fault_seed = 0xC4A77E1ULL;
  /// Health/SLO rules evaluated after every query (Sec. VI availability and
  /// error axes); alerts fire flight-recorder anomalies.
  obs::HealthConfig health{};
  bool enable_health = true;
  /// When non-empty, the flight recorder dumps a JSON diagnostics bundle
  /// here on each anomaly (restored to its previous setting afterwards).
  std::filesystem::path diagnostics_dir{};
  /// Sim-time windowed telemetry series collected over the campaign
  /// (window cadence, metric prefixes). Set series.enabled = false to skip
  /// collection; the collector is a no-op under RUPS_OBS_DISABLED either
  /// way.
  obs::TimeSeriesConfig series{};
};

struct CampaignResult {
  std::vector<ConvoySimulation::QueryResult> queries;

  /// Snapshot of the global obs::Registry taken when the campaign
  /// finished: per-query latency histogram (campaign.query_latency_us),
  /// SYN-search work (syn.*), V2V bytes (v2v.*), field evaluations
  /// (gsm.*). Counters are process-cumulative; diff two snapshots to
  /// isolate one campaign. Empty under RUPS_OBS_DISABLED builds.
  obs::MetricsSnapshot metrics;

  /// Health summary at campaign end: rolling availability / error p95 /
  /// latency p99 and every alert that fired. Identical in all build
  /// configurations (the monitor runs on explicit ground-truth feeds).
  obs::HealthReport health;

  /// Sim-time windowed series (counter rates, histogram quantiles, gauge
  /// values, per-neighbour estimate staleness) collected while the
  /// campaign ran. Empty when config.series.enabled is false or under
  /// RUPS_OBS_DISABLED.
  obs::TimeSeriesData series;

  /// Absolute RUPS errors over queries that produced an estimate.
  [[nodiscard]] std::vector<double> rups_errors() const;
  /// Absolute GPS errors over queries with a GPS estimate.
  [[nodiscard]] std::vector<double> gps_errors() const;
  /// SYN position errors over queries that found SYN points.
  [[nodiscard]] std::vector<double> syn_errors() const;
  /// Fraction of queries that produced a RUPS estimate.
  [[nodiscard]] double rups_availability() const;
};

/// Receiver-side exchange bookkeeping now lives in the v2v layer
/// (v2v/receiver.hpp) so the streaming stack can reuse it; the sim-side
/// name is kept as an alias for run_campaign / FleetSimulation users.
using V2vReceiver = v2v::V2vReceiver;

/// Run the campaign: rear vehicle (index 1) queries the front (index 0).
[[nodiscard]] CampaignResult run_campaign(ConvoySimulation& sim,
                                          const CampaignConfig& config,
                                          util::ThreadPool* pool = nullptr);

}  // namespace rups::sim
