#include "sim/convoy_sim.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "obs/recorder.hpp"
#include "obs/timer.hpp"
#include "road/route_builder.hpp"
#include "util/angle.hpp"

namespace rups::sim {

namespace {

sensors::GsmScanner::Config scanner_config(const Scenario& scenario,
                                           const VehicleSetup& setup) {
  sensors::GsmScanner::Config cfg = scenario.scanner_base;
  cfg.radios = setup.radios;
  cfg.placement = setup.placement;
  return cfg;
}

core::RupsConfig engine_config(const Scenario& scenario) {
  core::RupsConfig cfg = scenario.rups;
  cfg.channels = scenario.channels;
  return cfg;
}

}  // namespace

VehicleRig::VehicleRig(const Scenario& scenario, const VehicleSetup& setup,
                       const road::Route* route,
                       const vehicle::TrafficLightPlan* lights,
                       const gsm::GsmField* field)
    : route_(route),
      field_(field),
      lane_(setup.lane),
      lane_change_mean_s_(setup.lane_change_mean_s),
      lane_rng_(util::hash_combine(setup.seed, 0x4c414e45ULL)),  // "LANE"
      controller_(setup.seed, route, lights, scenario.traffic),
      kinematics_(route, &controller_, setup.lane, setup.start_offset_m),
      passing_(setup.seed, scenario.env,
               /*horizon_s=*/3.0 * route->total_length_m() /
                   vehicle::cruise_speed_mps(scenario.env, scenario.traffic),
               scenario.passing_rate_scale),
      imu_(setup.seed),
      obd_(setup.seed),
      scanner_(&field->plan(), setup.seed, scanner_config(scenario, setup)),
      gps_(setup.seed),
      engine_(engine_config(scenario)),
      blockage_rng_(util::hash_combine(setup.seed, 0x424c4fULL)) {
  true_pos_of_metre_.reserve(
      static_cast<std::size_t>(route->total_length_m()) + 16);
}

double VehicleRig::true_position_of_metre(std::uint64_t metre) const {
  if (metre >= true_pos_of_metre_.size()) {
    return std::numeric_limits<double>::quiet_NaN();
  }
  return true_pos_of_metre_[metre];
}

void VehicleRig::tick(double dt, const vehicle::VehicleState* leader) {
  // Car-following: keep a safe but bounded gap to the leader so the convoy
  // holds together despite independent driving styles.
  double adjust = 0.0;
  if (leader != nullptr) {
    const auto& self = kinematics_.state();
    const double gap = leader->position_m - self.position_m;
    const double closing = self.speed_mps - leader->speed_mps;
    if (gap < 12.0) {
      adjust = -3.0;
    } else if (gap < 25.0 && closing > 0.0) {
      adjust = -1.5 * closing;
    } else if (gap > 70.0) {
      adjust = 1.0;
    } else if (gap > 45.0) {
      adjust = 0.4;
    }
  }
  const auto& state = kinematics_.step(dt, adjust);

  // Occasional lane changes to an adjacent lane.
  if (lane_change_mean_s_ > 0.0) {
    if (next_lane_change_s_ <= 0.0) {
      next_lane_change_s_ =
          state.time_s + lane_rng_.exponential(1.0 / lane_change_mean_s_);
    }
    if (state.time_s >= next_lane_change_s_) {
      const int lanes = state.pose.env == road::EnvironmentType::kEightLaneUrban
                            ? 8
                            : road::lane_count(state.pose.env);
      const int delta = lane_rng_.bernoulli(0.5) ? 1 : -1;
      lane_ = std::clamp(lane_ + delta, 1, std::max(1, lanes));
      next_lane_change_s_ =
          state.time_s + lane_rng_.exponential(1.0 / lane_change_mean_s_);
    }
  }

  // Heading rate from ground truth geometry (gyro input).
  double heading_rate = 0.0;
  if (have_prev_heading_ && dt > 0.0) {
    heading_rate = util::angle_diff(state.heading_rad, prev_heading_) / dt;
  }
  prev_heading_ = state.heading_rad;
  have_prev_heading_ = true;

  // OBD first so the engine has a speed trend for reorientation.
  if (const auto speed = obd_.maybe_sample(state)) {
    engine_.on_speed(*speed);
    if (sink_ != nullptr) sink_->on_obd(*speed);
  }

  const auto imu_sample = imu_.sample(state, heading_rate);
  engine_.on_imu(imu_sample);
  if (sink_ != nullptr) sink_->on_imu(imu_sample);

  // GSM scanning: the truth callback reads the shared field at the
  // vehicle's instantaneous position, degraded by any active passing-truck
  // blockage (Sec. VI-C).
  measurement_buffer_.clear();
  const auto& pose = state.pose;
  const auto& segment = route_->segments()[pose.segment_index];
  scanner_.advance(
      state.time_s,
      [&](std::size_t channel, double t) {
        double dbm = field_->rssi_dbm(segment, pose.segment_offset_m, lane_,
                                      channel, t);
        const double blocked = passing_.attenuation_db(t);
        if (blocked > 0.0) {
          dbm -= blocked;
          dbm += blockage_rng_.gaussian(0.0, passing_.extra_noise_db(t));
        }
        return dbm;
      },
      measurement_buffer_);
  for (const auto& m : measurement_buffer_) {
    engine_.on_rssi(m);
    if (sink_ != nullptr) sink_->on_rssi(m);
  }

  if (const auto fix = gps_.maybe_fix(state)) {
    if (fix->valid) last_fix_ = fix;
    if (sink_ != nullptr) sink_->on_gps(*fix);
  }

  // Record the true position of every metre the engine just emitted.
  const std::uint64_t emitted =
      engine_.context().first_metre() + engine_.context().size();
  while (true_pos_of_metre_.size() < emitted) {
    true_pos_of_metre_.push_back(state.position_m);
  }
}

ConvoySimulation::ConvoySimulation(Scenario scenario)
    : scenario_(std::move(scenario)) {
  if (scenario_.vehicles.empty()) {
    throw std::invalid_argument("ConvoySimulation: no vehicles");
  }
  route_ = scenario_.mixed_route
               ? road::make_evaluation_route(scenario_.seed,
                                             scenario_.route_length_m)
               : road::make_uniform_route(scenario_.seed, scenario_.env,
                                          scenario_.route_length_m);
  lights_ = vehicle::TrafficLightPlan::for_route(scenario_.seed, route_);
  plan_ = gsm::ChannelPlan::evaluation_subset(scenario_.seed,
                                              scenario_.channels);
  if (scenario_.include_fm_band) {
    plan_ = gsm::ChannelPlan::combined(plan_, gsm::ChannelPlan::fm_broadcast());
  }
  scenario_.channels = plan_.size();
  field_ = std::make_unique<gsm::GsmField>(scenario_.seed, plan_);
  if (scenario_.field_override.has_value()) {
    field_->set_profile_override(*scenario_.field_override);
  }
  for (const auto& setup : scenario_.vehicles) {
    rigs_.push_back(std::make_unique<VehicleRig>(scenario_, setup, &route_,
                                                 &lights_, field_.get()));
  }
}

void ConvoySimulation::run_until(double time_s) {
  while (now_ < time_s) {
    now_ += scenario_.tick_s;
    for (std::size_t i = 0; i < rigs_.size(); ++i) {
      const vehicle::VehicleState* leader =
          i > 0 ? &rigs_[i - 1]->state() : nullptr;
      rigs_[i]->tick(scenario_.tick_s, leader);
    }
  }
}

bool ConvoySimulation::finished() const {
  for (const auto& rig : rigs_) {
    if (rig->finished()) return true;
  }
  return false;
}

ConvoySimulation::QueryResult ConvoySimulation::query(
    std::size_t rear_index, std::size_t front_index,
    util::ThreadPool* pool) const {
  return query(rear_index, front_index,
               rigs_.at(front_index)->engine().context(), pool);
}

ConvoySimulation::QueryResult ConvoySimulation::query(
    std::size_t rear_index, std::size_t front_index,
    const core::ContextTrajectory& front_context,
    util::ThreadPool* pool) const {
  const VehicleRig& rear = *rigs_.at(rear_index);
  const VehicleRig& front = *rigs_.at(front_index);

  QueryResult result;
  result.truth = rear.state().position_m - front.state().position_m;

  const double started_us = obs::now_us();
  result.syn_points = rear.engine().find_syn_points(front_context, pool);
  result.rups = core::aggregate_estimates(
      rear.engine().context(), front_context, result.syn_points,
      rear.engine().config().aggregation);
  const double latency_us = obs::now_us() - started_us;

  // The simulator knows ground truth, so every estimate can be checked
  // the moment it is produced — the recorder keeps the verdicts and an
  // attached health monitor turns sustained degradation into alerts.
  if (result.rups.has_value()) {
    obs::FlightRecorder::global().record(
        obs::EventType::kEstimateChecked, "sim.query",
        result.rups->distance_m, result.truth,
        std::abs(result.rups->distance_m - result.truth));
  } else {
    obs::FlightRecorder::global().record(obs::EventType::kEstimateMissing,
                                         "sim.query", result.truth);
  }
  if (health_ != nullptr) {
    health_->on_query(result.rups.has_value(), result.rups_error(),
                      latency_us);
  }

  // SYN position error: true route positions of the matched window ends.
  if (result.syn_points.empty()) {
    result.syn_error_m = std::numeric_limits<double>::quiet_NaN();
  } else {
    double total = 0.0;
    std::size_t counted = 0;
    for (const auto& syn : result.syn_points) {
      const auto metre_rear = static_cast<std::uint64_t>(
          rear.engine().context().distance_at(syn.index_a + syn.window_m - 1));
      const auto metre_front = static_cast<std::uint64_t>(
          front_context.distance_at(syn.index_b + syn.window_m - 1));
      const double pa = rear.true_position_of_metre(metre_rear);
      const double pb = front.true_position_of_metre(metre_front);
      if (std::isnan(pa) || std::isnan(pb)) continue;
      total += std::abs(pa - pb);
      ++counted;
    }
    result.syn_error_m = counted
                             ? total / static_cast<double>(counted)
                             : std::numeric_limits<double>::quiet_NaN();
  }

  // GPS baseline: signed separation of the two latest fixes projected onto
  // the front vehicle's driving direction.
  const auto& fix_r = rear.last_gps_fix();
  const auto& fix_f = front.last_gps_fix();
  if (fix_r.has_value() && fix_f.has_value() &&
      now_ - fix_r->time_s < 5.0 && now_ - fix_f->time_s < 5.0) {
    const double hx = std::cos(front.state().heading_rad);
    const double hy = std::sin(front.state().heading_rad);
    const double dx = fix_r->x_m - fix_f->x_m;
    const double dy = fix_r->y_m - fix_f->y_m;
    result.gps = dx * hx + dy * hy;
  }
  return result;
}

}  // namespace rups::sim
