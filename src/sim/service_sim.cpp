#include "sim/service_sim.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <optional>

#include "obs/metrics.hpp"
#include "util/thread_pool.hpp"

namespace rups::sim {

CityFleet::CityFleet(CityFleetConfig config)
    : config_(config),
      chan_noise_(config.seed ^ 0x9E3779B97F4A7C15ULL),
      meas_noise_(config.seed ^ 0xD1B54A32D192ED03ULL),
      field_(config.seed, /*correlation_length=*/18.0, /*octaves=*/3) {
  config_.vehicles = std::max<std::size_t>(2, config_.vehicles);
  config_.channels = std::max<std::size_t>(4, config_.channels);
  config_.max_advance_m =
      std::max(config_.max_advance_m, config_.min_advance_m);
  positions_.resize(config_.vehicles);
  advance_m_.resize(config_.vehicles);
  samples_.resize(config_.vehicles);
  queries_.reserve(config_.vehicles);
  const std::size_t spread =
      config_.max_advance_m - config_.min_advance_m + 1;
  for (std::size_t v = 0; v < config_.vehicles; ++v) {
    // Front of the column drives at the highest index; staggered starts.
    positions_[v] = static_cast<double>(v) * config_.spacing_m;
    advance_m_[v] =
        config_.min_advance_m +
        static_cast<std::size_t>(
            chan_noise_.uniform(static_cast<std::int64_t>(v) + 7919) *
            static_cast<double>(spread));
    samples_[v].reserve(config_.max_advance_m);
    queries_.push_back(
        Query{v, (v + config_.vehicles - 1) % config_.vehicles});
  }
}

float CityFleet::rssi(std::size_t vehicle, long long metre,
                      std::size_t channel) const noexcept {
  // Shared spatial component: a per-channel base level plus the hashed
  // lattice field sampled at a per-channel offset of the road coordinate —
  // every vehicle passing `metre` sees the same value (temporary
  // stability), which is what makes the trajectories matchable.
  const double base =
      -95.0 + 40.0 * chan_noise_.uniform(static_cast<std::int64_t>(channel));
  const double spatial = 6.0 * field_.value(
      static_cast<double>(metre) +
      1024.0 * static_cast<double>(channel));
  const double noise =
      config_.noise_dbm *
      meas_noise_.gaussian2(
          static_cast<std::int64_t>(vehicle) * 1315423911LL +
              static_cast<std::int64_t>(channel),
          metre);
  return static_cast<float>(base + spatial + noise);
}

void CityFleet::advance_round() {
  ++round_;
  for (std::size_t v = 0; v < positions_.size(); ++v) {
    const std::size_t advance = advance_m_[v];
    auto& out = samples_[v];
    // Reuse the PowerVector buffers from previous rounds: resize only
    // grows on the first round, then the per-sample vectors are recycled.
    if (out.size() != advance) {
      out.resize(advance, Sample{0.0, {}, core::PowerVector(config_.channels)});
    }
    for (std::size_t k = 0; k < advance; ++k) {
      const double position = positions_[v] + static_cast<double>(k + 1);
      const auto metre = static_cast<long long>(std::llround(position));
      Sample& s = out[k];
      s.position_m = position;
      s.geo.heading_rad = 0.08 * std::sin(position / 90.0);
      s.geo.time_s =
          (static_cast<double>(round_ - 1) +
           static_cast<double>(k + 1) / static_cast<double>(advance)) *
          config_.interval_s;
      if (s.power.channels() != config_.channels) {
        s.power = core::PowerVector(config_.channels);
      }
      for (std::size_t c = 0; c < config_.channels; ++c) {
        s.power.set(c, rssi(v, metre, c), core::ChannelState::kMeasured);
      }
    }
    positions_[v] += static_cast<double>(advance);
  }
}

ServiceCampaignResult run_service_campaign(
    const ServiceCampaignConfig& config) {
  ServiceCampaignConfig cfg = config;
  cfg.service.fleet.rups.channels = cfg.city.channels;
  cfg.service.fleet.rups.context_capacity_m = cfg.city.context_capacity_m;

  CityFleet city(cfg.city);
  service::MatcherService svc(cfg.service);
  obs::HealthMonitor health(cfg.health);
  svc.set_health_monitor(&health);

  std::unique_ptr<util::ThreadPool> pool;
  if (cfg.pool_threads > 0) {
    pool = std::make_unique<util::ThreadPool>(cfg.pool_threads);
  }

  for (std::size_t v = 0; v < city.vehicle_count(); ++v) {
    (void)svc.register_vehicle(city.vehicle_id(v), city.position(v));
  }

  ServiceCampaignResult result;
  result.shard_processed.assign(svc.shard_count(), 0);
  double latency_sum = 0.0;
  std::uint64_t latency_n = 0;
  std::vector<service::MatcherService::Ticket> tickets;
  tickets.reserve(city.queries().size());

  for (std::size_t r = 0; r < cfg.rounds; ++r) {
    city.advance_round();
    svc.begin_round();
    for (std::size_t v = 0; v < city.vehicle_count(); ++v) {
      for (const CityFleet::Sample& s : city.samples(v)) {
        (void)svc.observe(city.vehicle_id(v), s.position_m, s.geo, s.power);
      }
    }
    if (r < cfg.warmup_rounds) continue;

    tickets.clear();
    for (const CityFleet::Query& q : city.queries()) {
      const auto ticket =
          svc.submit(city.vehicle_id(q.ego), city.vehicle_id(q.neighbour));
      tickets.push_back(ticket);
      ++result.requests;
      if (ticket.accepted()) {
        ++result.accepted;
      } else {
        ++result.rejected;
      }
    }
    svc.drain(pool.get());

    for (std::size_t i = 0; i < tickets.size(); ++i) {
      if (!tickets[i].accepted()) continue;
      const auto& nr = svc.result(tickets[i]);
      const CityFleet::Query& q = city.queries()[i];
      if (nr.estimate.has_value()) {
        ++result.estimates;
        health.on_query(true,
                        std::abs(nr.estimate->distance_m - city.truth_m(q)),
                        nr.latency_us);
      } else {
        health.on_query(false, std::nullopt, nr.latency_us);
      }
      latency_sum += nr.latency_us;
      ++latency_n;
    }
    for (std::size_t s = 0; s < svc.shard_count(); ++s) {
      result.shard_processed[s] += svc.shard_stats(s).processed;
    }
  }

  result.availability =
      result.accepted > 0
          ? static_cast<double>(result.estimates) /
                static_cast<double>(result.accepted)
          : 0.0;
  result.mean_latency_us =
      latency_n > 0 ? latency_sum / static_cast<double>(latency_n) : 0.0;
  result.metrics = obs::Registry::global().snapshot();
  result.health = health.report();
  return result;
}

}  // namespace rups::sim
