#pragma once

// Fleet campaign: one ego vehicle answering relative-distance queries
// against EVERY other convoy vehicle each beacon round, through a
// core::FleetEngine (shared ego pack + per-neighbour SYN caches). This is
// the N-vehicle generalization of the paper's two-car evaluation — the
// pairwise accuracy numbers must survive unchanged, the per-query compute
// must not (that is the point of the caching layer).

#include <cstdint>
#include <vector>

#include <memory>

#include "core/fleet.hpp"
#include "obs/health.hpp"
#include "obs/snapshot.hpp"
#include "sim/campaign.hpp"
#include "sim/convoy_sim.hpp"
#include "util/thread_pool.hpp"
#include "v2v/channel.hpp"
#include "v2v/exchange.hpp"
#include "v2v/link.hpp"

namespace rups::sim {

/// CampaignConfig extension for the fleet shape. `base` keeps the familiar
/// cadence knobs (warm-up, interval, query budget, health rules).
struct FleetCampaignConfig {
  CampaignConfig base{};
  /// Which vehicle runs the FleetEngine; default (npos) = the last one
  /// (the rear car, matching the two-car layout where index 1 queries 0).
  std::size_t ego_index = static_cast<std::size_t>(-1);
  /// Tracking cache on/off (off = every query is a full search; the batch
  /// layer still reuses the packed ego context).
  bool use_cache = true;
  core::SynCacheConfig cache{};
};

/// One ego-vs-neighbour outcome within a round, with ground truth attached.
struct FleetQueryOutcome {
  std::size_t neighbour_index = 0;
  core::FleetEngine::NeighbourResult result;
  /// Signed ground truth (positive = ego in front of this neighbour).
  double truth_m = 0.0;

  [[nodiscard]] std::optional<double> rups_error() const {
    if (!result.estimate.has_value()) return std::nullopt;
    return std::abs(result.estimate->distance_m - truth_m);
  }
};

/// One beacon round: every neighbour queried once from the same ego context.
struct FleetRound {
  double time_s = 0.0;
  std::vector<FleetQueryOutcome> outcomes;
};

struct FleetCampaignResult {
  std::vector<FleetRound> rounds;
  /// Tracking-cache effectiveness aggregated over the whole campaign.
  core::SynCache::Stats cache;
  /// V2V bytes moved per neighbour session (full context + tail updates).
  std::size_t v2v_bytes = 0;
  obs::MetricsSnapshot metrics;
  obs::HealthReport health;
  /// Sim-time windowed series with one estimate.staleness_s column per
  /// neighbour (config.base.series; empty when disabled).
  obs::TimeSeriesData series;

  /// Absolute errors over every outcome that produced an estimate.
  [[nodiscard]] std::vector<double> rups_errors() const;
  /// Errors restricted to one neighbour (per-neighbour accuracy).
  [[nodiscard]] std::vector<double> rups_errors_for(
      std::size_t neighbour_index) const;
  /// Fraction of outcomes with an estimate.
  [[nodiscard]] double availability() const;
  /// Mean per-neighbour serial query latency (us).
  [[nodiscard]] double mean_latency_us() const;
};

/// A convoy plus the ego's fleet front end and one V2V session per
/// neighbour (full context once, then incremental tails — Sec. V-B's
/// exchange model applied per neighbour).
class FleetSimulation {
 public:
  FleetSimulation(Scenario scenario, FleetCampaignConfig config = {});

  /// Advance the convoy to absolute time `time_s`.
  void run_until(double time_s) { sim_.run_until(time_s); }

  /// Exchange context updates and query every neighbour once.
  [[nodiscard]] FleetRound query_round(util::ThreadPool* pool = nullptr);

  [[nodiscard]] ConvoySimulation& sim() noexcept { return sim_; }
  [[nodiscard]] const ConvoySimulation& sim() const noexcept { return sim_; }
  [[nodiscard]] std::size_t ego_index() const noexcept { return ego_; }
  [[nodiscard]] core::FleetEngine& engine() noexcept { return engine_; }
  [[nodiscard]] std::size_t v2v_bytes() const noexcept;

  void set_health_monitor(obs::HealthMonitor* monitor) noexcept {
    health_ = monitor;
  }

 private:
  ConvoySimulation sim_;
  FleetCampaignConfig config_;
  std::size_t ego_;
  core::FleetEngine engine_;
  v2v::DsrcLink link_;
  /// One fault channel + session + receiver-side context cache per
  /// neighbour (index into rigs). Channels are heap-held: sessions keep
  /// raw pointers to them.
  std::vector<std::unique_ptr<v2v::FaultyChannel>> channels_;
  std::vector<v2v::ExchangeSession> sessions_;
  std::vector<V2vReceiver> receivers_;
  std::vector<std::size_t> neighbour_indices_;
  obs::HealthMonitor* health_ = nullptr;
};

/// Run the fleet campaign: warm up, then rounds at base.interval_s until
/// the query budget (counted in ROUNDS), the route end, or the time limit.
[[nodiscard]] FleetCampaignResult run_fleet_campaign(
    FleetSimulation& fleet, const FleetCampaignConfig& config,
    util::ThreadPool* pool = nullptr);

}  // namespace rups::sim
