#pragma once

#include <cstdint>
#include <vector>

#include "core/types.hpp"
#include "gsm/gsm_field.hpp"
#include "road/road_network.hpp"

namespace rups::sim {

/// Reproduction of the paper's Sec. III empirical methodology on the
/// synthetic field: collect GSM-aware trajectories over road segments and
/// compute the temporal/spatial statistics behind Figs. 1-4.
class GsmSurvey {
 public:
  GsmSurvey(const gsm::GsmField* field) : field_(field) {}

  /// A fully-measured trajectory over `length_m` metres of a segment,
  /// sampled as a slow survey drive starting at absolute time `time0_s`
  /// (the paper measured every metre over 150 m).
  [[nodiscard]] core::ContextTrajectory collect_trajectory(
      const road::RoadSegment& segment, double start_offset_m,
      double length_m, int lane, double time0_s,
      double survey_speed_mps = 5.0) const;

  /// One power vector at a point.
  [[nodiscard]] core::PowerVector power_vector(
      const road::RoadSegment& segment, double offset_m, int lane,
      double time_s) const;

  /// Fig 2 point: probability that a pair of power vectors measured
  /// `dt_s` apart at the same spot correlates >= `threshold`, using
  /// `channel_count` randomly selected channels, over `trials` location
  /// draws across the network.
  [[nodiscard]] double temporal_stability_probability(
      const road::RoadNetwork& net, double dt_s, double threshold,
      std::size_t channel_count, std::size_t trials,
      std::uint64_t seed) const;

  /// Fig 3 samples: trajectory correlation coefficients for pairs of
  /// trajectories — same road different entries (dt apart), or two
  /// different roads.
  [[nodiscard]] std::vector<double> uniqueness_correlations(
      const road::RoadNetwork& net, bool same_road, double entry_gap_s,
      double length_m, std::size_t pairs, std::uint64_t seed) const;

  /// Fig 4 points: mean relative change (linear power) of power-vector
  /// pairs separated by `distance_m` on the same road.
  [[nodiscard]] double mean_relative_change(const road::RoadNetwork& net,
                                            double distance_m,
                                            std::size_t samples,
                                            std::uint64_t seed) const;

 private:
  const gsm::GsmField* field_;
};

}  // namespace rups::sim
