#include "sim/fleet_sim.hpp"

#include <cmath>
#include <map>
#include <memory>
#include <utility>

#include "obs/alloc.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/recorder.hpp"
#include "obs/timer.hpp"

namespace rups::sim {

namespace {

/// Fleet-campaign cadence accounting, one level above core's fleet.*
/// batch counters: rounds, per-round latency, and the availability the ego
/// actually observes across its whole neighbourhood.
struct FleetCampaignMetrics {
  obs::Counter& rounds =
      obs::Registry::global().counter("fleetcampaign.rounds");
  obs::Counter& outcomes =
      obs::Registry::global().counter("fleetcampaign.outcomes");
  obs::Counter& hits = obs::Registry::global().counter("fleetcampaign.hits");
  obs::Counter& misses =
      obs::Registry::global().counter("fleetcampaign.misses");
  obs::Gauge& availability =
      obs::Registry::global().gauge("fleetcampaign.last_availability");
  obs::Histogram& round_us =
      obs::Registry::global().histogram("fleetcampaign.round_us");
  /// operator new calls per round on the driving thread (pool-worker
  /// allocations land in fleet.task_allocs) — the round-cadence axis of
  /// the zero-alloc steady-state ratchet.
  obs::Histogram& round_allocs =
      obs::Registry::global().histogram("fleetcampaign.round_allocs");
  /// Labeled hit/miss split per round, and per-neighbour sim-time since
  /// the last accepted estimate — the staleness axis the windowed series
  /// and telemetry_report break down per neighbour.
  obs::CounterFamily& query_outcomes = obs::Registry::global().counter_family(
      "fleetcampaign.query_outcome", "outcome");
  obs::GaugeFamily& staleness = obs::Registry::global().gauge_family(
      "estimate.staleness_s", "neighbour");
};

FleetCampaignMetrics& fleet_campaign_metrics() {
  static FleetCampaignMetrics m;
  return m;
}

}  // namespace

std::vector<double> FleetCampaignResult::rups_errors() const {
  std::vector<double> out;
  for (const auto& round : rounds) {
    for (const auto& o : round.outcomes) {
      if (const auto e = o.rups_error()) out.push_back(*e);
    }
  }
  return out;
}

std::vector<double> FleetCampaignResult::rups_errors_for(
    std::size_t neighbour_index) const {
  std::vector<double> out;
  for (const auto& round : rounds) {
    for (const auto& o : round.outcomes) {
      if (o.neighbour_index != neighbour_index) continue;
      if (const auto e = o.rups_error()) out.push_back(*e);
    }
  }
  return out;
}

double FleetCampaignResult::availability() const {
  std::size_t total = 0;
  std::size_t hits = 0;
  for (const auto& round : rounds) {
    for (const auto& o : round.outcomes) {
      ++total;
      if (o.result.estimate.has_value()) ++hits;
    }
  }
  return total == 0 ? 0.0
                    : static_cast<double>(hits) / static_cast<double>(total);
}

double FleetCampaignResult::mean_latency_us() const {
  double total = 0.0;
  std::size_t n = 0;
  for (const auto& round : rounds) {
    for (const auto& o : round.outcomes) {
      total += o.result.latency_us;
      ++n;
    }
  }
  return n == 0 ? 0.0 : total / static_cast<double>(n);
}

FleetSimulation::FleetSimulation(Scenario scenario, FleetCampaignConfig config)
    : sim_(std::move(scenario)),
      config_(config),
      ego_(config.ego_index < sim_.vehicle_count() ? config.ego_index
                                                   : sim_.vehicle_count() - 1),
      engine_(core::FleetConfig{sim_.scenario().rups, config.cache,
                                config.use_cache}),
      link_(/*seed=*/0xF1EE'7CA5ULL) {
  const core::RupsConfig& rups_cfg = sim_.scenario().rups;
  for (std::size_t i = 0; i < sim_.vehicle_count(); ++i) {
    if (i == ego_) continue;
    neighbour_indices_.push_back(i);
    channels_.push_back(std::make_unique<v2v::FaultyChannel>(
        util::hash_combine(config_.base.fault_seed, i), config_.base.fault));
    sessions_.emplace_back(&link_, channels_.back().get(),
                           config_.base.exchange);
    receivers_.emplace_back(rups_cfg.channels, rups_cfg.context_capacity_m);
  }
}

std::size_t FleetSimulation::v2v_bytes() const noexcept {
  std::size_t total = 0;
  for (const auto& s : sessions_) total += s.total_bytes();
  return total;
}

FleetRound FleetSimulation::query_round(util::ThreadPool* pool) {
  FleetCampaignMetrics& metrics = fleet_campaign_metrics();
  FleetRound round;
  round.time_s = sim_.now();
  const obs::AllocTotals allocs_before = obs::thread_alloc_totals();
  obs::ObsTimer timer(&metrics.round_us, "fleetcampaign.round");

  // V2V: pull each neighbour's context — whole journey once, then only the
  // tail metres emitted since the last round (Sec. V-B, per neighbour).
  std::vector<const core::ContextTrajectory*> contexts;
  std::vector<std::uint64_t> ids;
  std::vector<std::size_t> queried;
  for (std::size_t s = 0; s < neighbour_indices_.size(); ++s) {
    const std::size_t i = neighbour_indices_[s];
    const core::ContextTrajectory& ctx = sim_.rig(i).engine().context();
    if (ctx.empty()) continue;
    if (config_.base.model_v2v_cost) {
      // The ego estimates from what actually crossed the channel: the
      // decoded receiver-side copy, not the neighbour's in-memory context.
      V2vReceiver& receiver = receivers_[s];
      const bool full = !receiver.have_full;
      const v2v::ExchangeResult exchanged =
          full ? sessions_[s].exchange_full(ctx)
               : sessions_[s].exchange_tail(ctx, receiver.synced_metre);
      (void)receiver.ingest(exchanged, full);
      if (health_ != nullptr) {
        health_->on_exchange(
            exchanged.usable(),
            exchanged.outcome == v2v::ExchangeOutcome::kDegraded);
      }
      if (receiver.received.empty()) continue;  // nothing decodable yet
      contexts.push_back(&receiver.received);
    } else {
      contexts.push_back(&ctx);
    }
    ids.push_back(static_cast<std::uint64_t>(i));
    queried.push_back(i);
  }
  if (contexts.empty()) return round;

  const core::ContextTrajectory& ego_ctx = sim_.rig(ego_).engine().context();
  auto results = engine_.estimate_batch(ego_ctx, contexts, ids, pool);

  metrics.rounds.inc();
  const double ego_pos = sim_.rig(ego_).state().position_m;
  for (std::size_t k = 0; k < results.size(); ++k) {
    FleetQueryOutcome outcome;
    outcome.neighbour_index = queried[k];
    outcome.result = std::move(results[k]);
    outcome.truth_m = ego_pos - sim_.rig(queried[k]).state().position_m;
    metrics.outcomes.inc();
    const bool hit = outcome.result.estimate.has_value();
    (hit ? metrics.hits : metrics.misses).inc();
    if (hit) {
      obs::FlightRecorder::global().record(
          obs::EventType::kEstimateChecked, "fleet.query",
          outcome.result.estimate->distance_m, outcome.truth_m,
          std::abs(outcome.result.estimate->distance_m - outcome.truth_m));
    } else {
      obs::FlightRecorder::global().record(obs::EventType::kEstimateMissing,
                                           "fleet.query", outcome.truth_m);
    }
    if (health_ != nullptr) {
      health_->on_query(hit, outcome.rups_error(), outcome.result.latency_us);
    }
    round.outcomes.push_back(std::move(outcome));
  }
  timer.stop();
  if (obs::alloc_accounting_available()) {
    metrics.round_allocs.record(static_cast<double>(
        (obs::thread_alloc_totals() - allocs_before).count));
  }
  return round;
}

FleetCampaignResult run_fleet_campaign(FleetSimulation& fleet,
                                       const FleetCampaignConfig& config,
                                       util::ThreadPool* pool) {
  FleetCampaignResult result;
  obs::HealthMonitor monitor(config.base.health);
  if (config.base.enable_health) fleet.set_health_monitor(&monitor);

  fleet.run_until(config.base.warmup_s);
  double t = config.base.warmup_s;

  // Windowed series: every neighbour is tracked for staleness from the end
  // of warm-up; one observation per round keeps the windows on the beacon
  // cadence (sim time, so serial and pooled runs produce identical series
  // for everything except wall-clock quantile columns).
  FleetCampaignMetrics& metrics = fleet_campaign_metrics();
  obs::TimeSeriesCollector collector(config.base.series);
  std::map<std::size_t, double> last_accept_s;
  for (std::size_t i = 0; i < fleet.sim().vehicle_count(); ++i) {
    if (i == fleet.ego_index()) continue;
    last_accept_s[i] = t;
    collector.track(static_cast<std::uint64_t>(i));
  }
  if (config.base.series.enabled) collector.begin(t);

  while (result.rounds.size() < config.base.max_queries &&
         !fleet.sim().finished() &&
         (config.base.time_limit_s <= 0.0 || t < config.base.time_limit_s)) {
    t += config.base.interval_s;
    fleet.run_until(t);
    if (fleet.sim().finished()) break;
    result.rounds.push_back(fleet.query_round(pool));
    for (const FleetQueryOutcome& o : result.rounds.back().outcomes) {
      const bool hit = o.result.estimate.has_value();
      metrics.query_outcomes.with(hit ? "hit" : "miss").inc();
      if (hit) {
        last_accept_s[o.neighbour_index] = t;
        collector.note_estimate(static_cast<std::uint64_t>(o.neighbour_index),
                                t);
      }
    }
    for (const auto& [i, last] : last_accept_s) {
      metrics.staleness.with(static_cast<std::uint64_t>(i)).set(t - last);
    }
    collector.observe(t);
  }
  if (config.base.series.enabled) result.series = collector.finish(t);

  metrics.availability.set(result.availability());
  if (config.base.enable_health) fleet.set_health_monitor(nullptr);
  result.cache = fleet.engine().cache_stats();
  result.v2v_bytes = fleet.v2v_bytes();
  result.health = monitor.report();
  // Mirror the span-stage allocation census (when one is being collected)
  // into alloc.count{stage}/alloc.bytes{stage} before the snapshot.
  if (obs::alloc_census_enabled()) obs::publish_alloc_census();
  result.metrics = obs::Registry::global().snapshot();
  const auto& c = result.cache;
  const std::size_t resolved =
      c.tracking_hits + c.tracking_misses + c.full_searches;
  RUPS_LOG(kDebug) << "fleet campaign finished: " << result.rounds.size()
                   << " rounds, availability " << result.availability()
                   << ", cache hit rate "
                   << (resolved != 0 ? static_cast<double>(c.tracking_hits) /
                                           static_cast<double>(resolved)
                                     : 0.0)
                   << ", v2v bytes " << result.v2v_bytes;
  return result;
}

}  // namespace rups::sim
