#include "sim/campaign.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <string>

#include "obs/alloc.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/recorder.hpp"
#include "obs/timer.hpp"
#include "v2v/exchange.hpp"
#include "v2v/link.hpp"

namespace rups::sim {

namespace {

/// Per-query latency and availability — the paper's per-query compute cost
/// (Sec. VI-E) at campaign granularity.
struct CampaignMetrics {
  obs::Counter& queries = obs::Registry::global().counter("campaign.queries");
  obs::Counter& rups_hits =
      obs::Registry::global().counter("campaign.rups_hits");
  obs::Counter& rups_misses =
      obs::Registry::global().counter("campaign.rups_misses");
  obs::Gauge& availability =
      obs::Registry::global().gauge("campaign.last_availability");
  obs::Histogram& latency_us =
      obs::Registry::global().histogram("campaign.query_latency_us");
  /// Labeled hit/miss split — the windowed series breaks the campaign's
  /// availability down per window through this family.
  obs::CounterFamily& outcomes = obs::Registry::global().counter_family(
      "campaign.query_outcome", "outcome");
  /// Sim-seconds since the last accepted estimate, per neighbour (the
  /// two-car campaign only ever populates neighbour "0").
  obs::GaugeFamily& staleness = obs::Registry::global().gauge_family(
      "estimate.staleness_s", "neighbour");
  /// operator new calls per campaign query (zero-alloc ratchet axis).
  obs::Histogram& query_allocs =
      obs::Registry::global().histogram("campaign.query_allocs");
};

CampaignMetrics& campaign_metrics() {
  static CampaignMetrics m;
  return m;
}

/// Minimal JSON view of the campaign + health configuration, embedded in
/// diagnostics bundles so a dump is interpretable on its own.
std::string config_json(const CampaignConfig& config) {
  std::string out = "{";
  out += "\"warmup_s\": " + std::to_string(config.warmup_s);
  out += ", \"interval_s\": " + std::to_string(config.interval_s);
  out += ", \"max_queries\": " + std::to_string(config.max_queries);
  out += ", \"time_limit_s\": " + std::to_string(config.time_limit_s);
  out += ", \"model_v2v_cost\": ";
  out += config.model_v2v_cost ? "true" : "false";
  out += ", \"fault\": {";
  out += "\"loss_rate\": " + std::to_string(config.fault.loss_rate);
  out += ", \"burst_loss\": ";
  out += config.fault.burst_loss ? "true" : "false";
  out += ", \"loss_rate_bad\": " + std::to_string(config.fault.loss_rate_bad);
  out += ", \"reorder_rate\": " + std::to_string(config.fault.reorder_rate);
  out += ", \"duplicate_rate\": " +
         std::to_string(config.fault.duplicate_rate);
  out += ", \"truncate_rate\": " + std::to_string(config.fault.truncate_rate);
  out += ", \"bit_flip_rate\": " + std::to_string(config.fault.bit_flip_rate);
  out += "}, \"exchange\": {";
  out += "\"max_rounds\": " + std::to_string(config.exchange.max_rounds);
  out += ", \"deadline_s\": " + std::to_string(config.exchange.deadline_s);
  out += "}, \"health\": {";
  out += "\"window\": " + std::to_string(config.health.window);
  out += ", \"min_samples\": " + std::to_string(config.health.min_samples);
  out += ", \"min_availability\": " +
         std::to_string(config.health.min_availability);
  out += ", \"max_error_p95_m\": " +
         std::to_string(config.health.max_error_p95_m);
  out += ", \"max_latency_p99_us\": " +
         std::to_string(config.health.max_latency_p99_us);
  out += ", \"max_miss_streak\": " +
         std::to_string(config.health.max_miss_streak);
  out += "}}";
  return out;
}

}  // namespace

std::vector<double> CampaignResult::rups_errors() const {
  std::vector<double> out;
  for (const auto& q : queries) {
    if (const auto e = q.rups_error()) out.push_back(*e);
  }
  return out;
}

std::vector<double> CampaignResult::gps_errors() const {
  std::vector<double> out;
  for (const auto& q : queries) {
    if (const auto e = q.gps_error()) out.push_back(*e);
  }
  return out;
}

std::vector<double> CampaignResult::syn_errors() const {
  std::vector<double> out;
  for (const auto& q : queries) {
    if (!std::isnan(q.syn_error_m)) out.push_back(q.syn_error_m);
  }
  return out;
}

double CampaignResult::rups_availability() const {
  if (queries.empty()) return 0.0;
  std::size_t hits = 0;
  for (const auto& q : queries) {
    if (q.rups.has_value()) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(queries.size());
}

CampaignResult run_campaign(ConvoySimulation& sim,
                            const CampaignConfig& config,
                            util::ThreadPool* pool) {
  CampaignMetrics& metrics = campaign_metrics();
  CampaignResult result;

  // Health monitoring: the sim feeds ground-truth-checked results into the
  // monitor after every query; diagnostics bundles land in diagnostics_dir
  // (the recorder's previous dump dir is restored on exit).
  obs::HealthMonitor monitor(config.health);
  obs::FlightRecorder& recorder = obs::FlightRecorder::global();
  const std::filesystem::path previous_dump_dir = recorder.dump_dir();
  if (!config.diagnostics_dir.empty()) {
    recorder.set_dump_dir(config.diagnostics_dir);
    recorder.set_config_text(config_json(config));
  }
  if (config.enable_health) sim.set_health_monitor(&monitor);

  // V2V path (Sec. V-B): the rear vehicle pulls the front vehicle's
  // context over a simulated DSRC link — whole journey context once, then
  // only the newly emitted tail metres before each query — through the
  // configured fault channel, and estimates from the decoded receiver-side
  // copy. Degraded/failed deliveries feed the health monitor.
  v2v::DsrcLink link(/*seed=*/0xB0B5'CAFEULL);
  v2v::FaultyChannel channel(config.fault_seed, config.fault);
  v2v::ExchangeSession session(&link, &channel, config.exchange);
  const core::RupsConfig& rups_cfg = sim.rig(0).engine().config();
  V2vReceiver receiver(rups_cfg.channels, rups_cfg.context_capacity_m);

  sim.run_until(config.warmup_s);
  double t = config.warmup_s;

  // Windowed series: baseline snapshot after warm-up, one observation per
  // query interval, staleness tracked against the front vehicle (id 0).
  obs::TimeSeriesCollector collector(config.series);
  double last_accept_s = t;
  if (config.series.enabled) {
    collector.track(0);
    collector.begin(t);
  }

  while (result.queries.size() < config.max_queries && !sim.finished() &&
         (config.time_limit_s <= 0.0 || t < config.time_limit_s)) {
    t += config.interval_s;
    sim.run_until(t);
    if (sim.finished()) break;
    if (config.model_v2v_cost) {
      const core::ContextTrajectory& front = sim.rig(0).engine().context();
      if (!front.empty()) {
        const bool full = !receiver.have_full;
        const v2v::ExchangeResult exchanged =
            full ? session.exchange_full(front)
                 : session.exchange_tail(front, receiver.synced_metre);
        (void)receiver.ingest(exchanged, full);
        if (config.enable_health) {
          monitor.on_exchange(
              exchanged.usable(),
              exchanged.outcome == v2v::ExchangeOutcome::kDegraded);
        }
      }
    }
    const obs::AllocTotals allocs_before = obs::thread_alloc_totals();
    obs::ObsTimer timer(&metrics.latency_us, "campaign.query");
    result.queries.push_back(config.model_v2v_cost
                                 ? sim.query(1, 0, receiver.received, pool)
                                 : sim.query(1, 0, pool));
    timer.stop();
    if (obs::alloc_accounting_available()) {
      metrics.query_allocs.record(static_cast<double>(
          (obs::thread_alloc_totals() - allocs_before).count));
    }
    metrics.queries.inc();
    const bool hit = result.queries.back().rups.has_value();
    (hit ? metrics.rups_hits : metrics.rups_misses).inc();
    metrics.outcomes.with(hit ? "hit" : "miss").inc();
    if (hit) {
      last_accept_s = t;
      collector.note_estimate(0, t);
    }
    metrics.staleness.with(std::uint64_t{0}).set(t - last_accept_s);
    collector.observe(t);
  }
  if (config.series.enabled) result.series = collector.finish(t);

  metrics.availability.set(result.rups_availability());
  RUPS_LOG(kDebug) << "campaign finished: " << result.queries.size()
                   << " queries, availability " << result.rups_availability()
                   << ", v2v bytes " << session.total_bytes();
  if (config.enable_health) sim.set_health_monitor(nullptr);
  if (!config.diagnostics_dir.empty()) {
    recorder.set_dump_dir(previous_dump_dir);
  }
  result.health = monitor.report();
  result.metrics = obs::Registry::global().snapshot();
  return result;
}

}  // namespace rups::sim
