#include "sim/campaign.hpp"

#include <cmath>

namespace rups::sim {

std::vector<double> CampaignResult::rups_errors() const {
  std::vector<double> out;
  for (const auto& q : queries) {
    if (const auto e = q.rups_error()) out.push_back(*e);
  }
  return out;
}

std::vector<double> CampaignResult::gps_errors() const {
  std::vector<double> out;
  for (const auto& q : queries) {
    if (const auto e = q.gps_error()) out.push_back(*e);
  }
  return out;
}

std::vector<double> CampaignResult::syn_errors() const {
  std::vector<double> out;
  for (const auto& q : queries) {
    if (!std::isnan(q.syn_error_m)) out.push_back(q.syn_error_m);
  }
  return out;
}

double CampaignResult::rups_availability() const {
  if (queries.empty()) return 0.0;
  std::size_t hits = 0;
  for (const auto& q : queries) {
    if (q.rups.has_value()) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(queries.size());
}

CampaignResult run_campaign(ConvoySimulation& sim,
                            const CampaignConfig& config,
                            util::ThreadPool* pool) {
  CampaignResult result;
  sim.run_until(config.warmup_s);
  double t = config.warmup_s;
  while (result.queries.size() < config.max_queries && !sim.finished() &&
         (config.time_limit_s <= 0.0 || t < config.time_limit_s)) {
    t += config.interval_s;
    sim.run_until(t);
    if (sim.finished()) break;
    result.queries.push_back(sim.query(1, 0, pool));
  }
  return result;
}

}  // namespace rups::sim
