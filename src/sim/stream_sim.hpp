#pragma once

// Streaming workload driver (DESIGN §17): a CityFleet drive replayed as a
// LIVE per-metre feed instead of the round protocol. One ego vehicle
// streams against its K nearest neighbours; every simulated metre appends
// one context sample per vehicle and runs one StreamingEngine update —
// beacon-diff exchanges under a named fault profile, SynCache ±12 m
// re-verification, continuous estimates.
//
// The same config also runs as the ROUND baseline (run_batch_campaign):
// identical CityFleet drive, but context moves via per-round full+tail
// ExchangeSessions and each neighbour is estimated once per round — the
// cost/staleness reference bench_stream compares against.

#include <cstdint>
#include <vector>

#include "obs/timeseries.hpp"
#include "sim/service_sim.hpp"
#include "stream/stream_engine.hpp"
#include "v2v/channel.hpp"
#include "v2v/exchange.hpp"
#include "v2v/link.hpp"

namespace rups::sim {

struct StreamCampaignConfig {
  CityFleetConfig city{};
  /// Engine policy (trajectory geometry is overridden from `city`).
  stream::StreamConfig stream{};
  std::size_t rounds = 24;
  /// Rounds excluded from error/staleness accounting (exchange and
  /// estimation run from round 0 in both modes).
  std::size_t warmup_rounds = 4;
  /// The ego is vehicle 0; it streams against vehicles 1..neighbours.
  std::size_t neighbours = 4;
  /// Ideal ingest mode: estimates run against the senders' pristine
  /// contexts (no codec, no channel) — the determinism/accuracy reference.
  bool ideal = false;
  /// Packet-fault profile of every neighbour channel (beacon mode and the
  /// batch baseline share it).
  v2v::FaultConfig fault{};
  std::uint64_t link_seed = 0xB0B5'CAFEULL;
  std::uint64_t fault_seed = 0xC4A77E1ULL;
  /// Sim-time windowed telemetry (estimate.staleness_s per neighbour).
  obs::TimeSeriesConfig series{};
};

struct StreamCampaignResult {
  std::uint64_t updates = 0;    ///< engine updates (streaming) / rounds (batch)
  std::uint64_t estimates = 0;  ///< estimates produced over the campaign
  /// Wire bytes moved over the WHOLE campaign (beacon diffs + heartbeats,
  /// or full+tail exchanges in batch mode) — both modes pay their initial
  /// sync, so bytes_per_estimate is comparable.
  std::size_t bytes = 0;
  /// bytes / estimates (0 when nothing was estimated).
  double bytes_per_estimate = 0.0;
  /// |distance_m - truth| per post-warmup estimate.
  std::vector<double> errors;
  /// Sim-seconds since the neighbour's last estimate, sampled for every
  /// neighbour at every per-metre step post-warmup (both modes sample at
  /// the same cadence, so staleness quantiles are comparable).
  std::vector<double> staleness_s;
  /// Beacon protocol accounting summed across neighbours (streaming mode;
  /// zero-valued in batch mode).
  stream::BeaconStats beacons;
  obs::TimeSeriesData series;

  [[nodiscard]] double mean_error() const;
  [[nodiscard]] double staleness_quantile(double q) const;
};

/// Per-metre streaming drive through a stream::StreamingEngine.
[[nodiscard]] StreamCampaignResult run_stream_campaign(
    const StreamCampaignConfig& config, util::ThreadPool* pool = nullptr);

/// Round-based full+tail baseline over the identical CityFleet drive.
[[nodiscard]] StreamCampaignResult run_batch_campaign(
    const StreamCampaignConfig& config, util::ThreadPool* pool = nullptr);

}  // namespace rups::sim
