#include "sim/survey.hpp"

#include <algorithm>
#include <numeric>

#include "core/correlation.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace rups::sim {

core::PowerVector GsmSurvey::power_vector(const road::RoadSegment& segment,
                                          double offset_m, int lane,
                                          double time_s) const {
  const auto raw = field_->power_vector(segment, offset_m, lane, time_s);
  core::PowerVector pv(raw.size());
  for (std::size_t c = 0; c < raw.size(); ++c) {
    pv.set(c, static_cast<float>(raw[c]));
  }
  return pv;
}

core::ContextTrajectory GsmSurvey::collect_trajectory(
    const road::RoadSegment& segment, double start_offset_m, double length_m,
    int lane, double time0_s, double survey_speed_mps) const {
  const auto metres = static_cast<std::size_t>(length_m);
  core::ContextTrajectory traj(field_->plan().size(),
                               std::max<std::size_t>(1, metres));
  for (std::size_t i = 0; i < metres; ++i) {
    const double offset = start_offset_m + static_cast<double>(i);
    const double t = time0_s + static_cast<double>(i) / survey_speed_mps;
    traj.append(core::GeoSample{segment.heading_rad, t},
                power_vector(segment, offset, lane, t));
  }
  return traj;
}

double GsmSurvey::temporal_stability_probability(
    const road::RoadNetwork& net, double dt_s, double threshold,
    std::size_t channel_count, std::size_t trials, std::uint64_t seed) const {
  util::Rng rng(util::hash_combine(seed, 0x53544142ULL));  // "STAB"
  const std::size_t all = field_->plan().size();
  channel_count = std::min(channel_count, all);

  std::size_t stable = 0;
  std::vector<double> xs(channel_count), ys(channel_count);
  std::vector<std::size_t> channels(all);
  std::iota(channels.begin(), channels.end(), 0);
  for (std::size_t trial = 0; trial < trials; ++trial) {
    const auto& seg = net.segment(static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(net.size()) - 1)));
    const double offset = rng.uniform(0.0, seg.length_m);
    const double t0 = rng.uniform(0.0, 1800.0);
    // Random channel subset (prefix of a partial shuffle).
    for (std::size_t i = 0; i < channel_count; ++i) {
      const auto j = static_cast<std::size_t>(
          rng.uniform_int(static_cast<std::int64_t>(i),
                          static_cast<std::int64_t>(all) - 1));
      std::swap(channels[i], channels[j]);
    }
    for (std::size_t i = 0; i < channel_count; ++i) {
      xs[i] = field_->rssi_dbm(seg, offset, 1, channels[i], t0);
      ys[i] = field_->rssi_dbm(seg, offset, 1, channels[i], t0 + dt_s);
    }
    if (util::pearson(xs, ys) >= threshold) ++stable;
  }
  return trials ? static_cast<double>(stable) / static_cast<double>(trials)
                : 0.0;
}

std::vector<double> GsmSurvey::uniqueness_correlations(
    const road::RoadNetwork& net, bool same_road, double entry_gap_s,
    double length_m, std::size_t pairs, std::uint64_t seed) const {
  util::Rng rng(util::hash_combine(seed, 0x554e4951ULL));  // "UNIQ"
  std::vector<double> out;
  out.reserve(pairs);

  // Use every plan channel for the eq.(2) comparison (the paper compares
  // full trajectories in Sec. III).
  std::vector<std::size_t> channels(field_->plan().size());
  std::iota(channels.begin(), channels.end(), 0);

  for (std::size_t p = 0; p < pairs; ++p) {
    const auto i1 = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(net.size()) - 1));
    std::size_t i2 = i1;
    if (!same_road) {
      while (i2 == i1) {
        i2 = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(net.size()) - 1));
      }
    }
    const double t0 = rng.uniform(0.0, 1800.0);
    const auto ta =
        collect_trajectory(net.segment(i1), 0.0, length_m, 1, t0);
    const auto tb = collect_trajectory(net.segment(i2), 0.0, length_m, 1,
                                       t0 + entry_gap_s);
    out.push_back(core::trajectory_correlation(
        {&ta, 0}, {&tb, 0}, static_cast<std::size_t>(length_m), channels));
  }
  return out;
}

double GsmSurvey::mean_relative_change(const road::RoadNetwork& net,
                                       double distance_m, std::size_t samples,
                                       std::uint64_t seed) const {
  util::Rng rng(util::hash_combine(seed, 0x52454c43ULL));  // "RELC"
  util::RunningStats stats;
  for (std::size_t s = 0; s < samples; ++s) {
    const auto& seg = net.segment(static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(net.size()) - 1)));
    const double max_start = seg.length_m - distance_m;
    if (max_start <= 0.0) continue;
    const double offset = rng.uniform(0.0, max_start);
    const double t = rng.uniform(0.0, 1800.0);
    const auto a = power_vector(seg, offset, 1, t);
    const auto b = power_vector(seg, offset + distance_m, 1, t);
    stats.add(core::relative_change_linear(a, b));
  }
  return stats.mean();
}

}  // namespace rups::sim
