#include "sim/stream_sim.hpp"

#include <algorithm>
#include <cmath>
#include <memory>

#include "core/fleet.hpp"
#include "v2v/receiver.hpp"

namespace rups::sim {
namespace {

[[nodiscard]] double sorted_quantile(std::vector<double> values, double q) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const double rank =
      std::clamp(q, 0.0, 1.0) * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return values[lo] + frac * (values[hi] - values[lo]);
}

/// Force the engine geometry onto the city workload's.
[[nodiscard]] StreamCampaignConfig normalized(StreamCampaignConfig cfg) {
  cfg.stream.fleet.rups.channels = cfg.city.channels;
  cfg.stream.fleet.rups.context_capacity_m = cfg.city.context_capacity_m;
  cfg.neighbours = std::max<std::size_t>(1, cfg.neighbours);
  return cfg;
}

}  // namespace

double StreamCampaignResult::mean_error() const {
  if (errors.empty()) return 0.0;
  double sum = 0.0;
  for (double e : errors) sum += e;
  return sum / static_cast<double>(errors.size());
}

double StreamCampaignResult::staleness_quantile(double q) const {
  return sorted_quantile(staleness_s, q);
}

StreamCampaignResult run_stream_campaign(const StreamCampaignConfig& config,
                                         util::ThreadPool* pool) {
  const StreamCampaignConfig cfg = normalized(config);
  CityFleet city(cfg.city);
  const std::size_t k = std::min(cfg.neighbours, city.vehicle_count() - 1);

  stream::StreamingEngine engine(cfg.stream);
  v2v::DsrcLink link(cfg.link_seed);
  std::vector<std::unique_ptr<v2v::FaultyChannel>> channels;
  for (std::size_t i = 1; i <= k; ++i) {
    if (cfg.ideal) {
      engine.add_neighbour(city.vehicle_id(i));
    } else {
      channels.push_back(std::make_unique<v2v::FaultyChannel>(
          cfg.fault_seed + i, cfg.fault));
      engine.add_neighbour(city.vehicle_id(i), &link, channels.back().get());
    }
  }

  // Vehicle-owned live contexts: 0 = ego, 1..k = the streaming senders.
  std::vector<core::ContextTrajectory> trajs;
  trajs.reserve(k + 1);
  for (std::size_t i = 0; i <= k; ++i) {
    trajs.emplace_back(cfg.city.channels, cfg.city.context_capacity_m);
  }
  std::vector<const core::ContextTrajectory*> senders;
  for (std::size_t i = 1; i <= k; ++i) senders.push_back(&trajs[i]);
  std::vector<double> last_pos(k + 1, 0.0);

  obs::TimeSeriesCollector collector(cfg.series);
  collector.begin(0.0);
  for (std::size_t i = 1; i <= k; ++i) collector.track(city.vehicle_id(i));

  StreamCampaignResult result;
  std::vector<double> last_estimate_s(k + 1, 0.0);
  bool accounting = false;
  double t = 0.0;

  for (std::size_t r = 0; r < cfg.rounds; ++r) {
    city.advance_round();
    if (!accounting && r >= cfg.warmup_rounds) {
      // Staleness clocks start when accounting does.
      for (std::size_t i = 1; i <= k; ++i) last_estimate_s[i] = t;
      accounting = true;
    }
    std::size_t max_steps = 0;
    for (std::size_t i = 0; i <= k; ++i) {
      max_steps = std::max(max_steps, city.samples(i).size());
    }
    for (std::size_t s = 0; s < max_steps; ++s) {
      for (std::size_t i = 0; i <= k; ++i) {
        const auto& batch = city.samples(i);
        if (s < batch.size()) {
          trajs[i].append(batch[s].geo, batch[s].power);
          last_pos[i] = batch[s].position_m;
        }
      }
      t = (static_cast<double>(r) +
           static_cast<double>(s + 1) / static_cast<double>(max_steps)) *
          cfg.city.interval_s;
      collector.observe(t);

      const auto& update = engine.update(
          trajs[0],
          std::span<const core::ContextTrajectory* const>(senders.data(),
                                                          senders.size()),
          pool);
      ++result.updates;
      for (std::size_t j = 0; j < update.ids.size(); ++j) {
        const auto& nr = update.results[j];
        if (!nr.estimate.has_value()) continue;
        ++result.estimates;
        const std::size_t i = update.ids[j] - city.vehicle_id(0);
        collector.note_estimate(update.ids[j], t);
        last_estimate_s[i] = t;
        if (accounting) {
          result.errors.push_back(
              std::abs(nr.estimate->distance_m - (last_pos[0] - last_pos[i])));
        }
      }
      if (accounting) {
        for (std::size_t i = 1; i <= k; ++i) {
          result.staleness_s.push_back(t - last_estimate_s[i]);
        }
      }
    }
  }

  result.bytes = engine.total_beacon_bytes();
  result.bytes_per_estimate =
      result.estimates > 0
          ? static_cast<double>(result.bytes) /
                static_cast<double>(result.estimates)
          : 0.0;
  for (std::size_t i = 1; i <= k; ++i) {
    if (const stream::BeaconStats* s =
            engine.beacon_stats(city.vehicle_id(i))) {
      result.beacons.beacons += s->beacons;
      result.beacons.diffs += s->diffs;
      result.beacons.no_news += s->no_news;
      result.beacons.rerequests += s->rerequests;
      result.beacons.resyncs += s->resyncs;
      result.beacons.metres_gained += s->metres_gained;
    }
  }
  result.series = collector.finish(t);
  return result;
}

StreamCampaignResult run_batch_campaign(const StreamCampaignConfig& config,
                                        util::ThreadPool* pool) {
  const StreamCampaignConfig cfg = normalized(config);
  CityFleet city(cfg.city);
  const std::size_t k = std::min(cfg.neighbours, city.vehicle_count() - 1);

  core::FleetEngine fleet(cfg.stream.fleet);
  v2v::DsrcLink link(cfg.link_seed);
  std::vector<std::unique_ptr<v2v::FaultyChannel>> channels;
  std::vector<std::unique_ptr<v2v::ExchangeSession>> sessions;
  std::vector<v2v::V2vReceiver> receivers;
  for (std::size_t i = 1; i <= k; ++i) {
    if (!cfg.ideal) {
      channels.push_back(std::make_unique<v2v::FaultyChannel>(
          cfg.fault_seed + i, cfg.fault));
      sessions.push_back(std::make_unique<v2v::ExchangeSession>(
          &link, channels.back().get(), cfg.stream.beacon.exchange));
    }
    receivers.emplace_back(cfg.city.channels, cfg.city.context_capacity_m);
  }

  std::vector<core::ContextTrajectory> trajs;
  for (std::size_t i = 0; i <= k; ++i) {
    trajs.emplace_back(cfg.city.channels, cfg.city.context_capacity_m);
  }
  std::vector<double> last_pos(k + 1, 0.0);

  obs::TimeSeriesCollector collector(cfg.series);
  collector.begin(0.0);
  for (std::size_t i = 1; i <= k; ++i) collector.track(city.vehicle_id(i));

  StreamCampaignResult result;
  std::vector<double> last_estimate_s(k + 1, 0.0);
  std::vector<const core::ContextTrajectory*> views(k, nullptr);
  std::vector<std::uint64_t> ids(k, 0);
  std::vector<core::FleetEngine::NeighbourResult> results;
  bool accounting = false;
  double t = 0.0;

  for (std::size_t r = 0; r < cfg.rounds; ++r) {
    city.advance_round();
    if (!accounting && r >= cfg.warmup_rounds) {
      for (std::size_t i = 1; i <= k; ++i) last_estimate_s[i] = t;
      accounting = true;
    }
    std::size_t max_steps = 0;
    for (std::size_t i = 0; i <= k; ++i) {
      max_steps = std::max(max_steps, city.samples(i).size());
    }
    // Context lands per metre exactly like the streaming drive; only the
    // EXCHANGE + estimate happen once per round. Staleness is sampled at
    // the shared per-metre cadence so quantiles are comparable.
    for (std::size_t s = 0; s < max_steps; ++s) {
      for (std::size_t i = 0; i <= k; ++i) {
        const auto& batch = city.samples(i);
        if (s < batch.size()) {
          trajs[i].append(batch[s].geo, batch[s].power);
          last_pos[i] = batch[s].position_m;
        }
      }
      t = (static_cast<double>(r) +
           static_cast<double>(s + 1) / static_cast<double>(max_steps)) *
          cfg.city.interval_s;
      collector.observe(t);
      if (accounting && s + 1 < max_steps) {
        for (std::size_t i = 1; i <= k; ++i) {
          result.staleness_s.push_back(t - last_estimate_s[i]);
        }
      }
    }

    // Round exchange: full until a usable context is cached, then tails
    // from the receiver watermark (the PR 5 campaign protocol).
    std::size_t batch_n = 0;
    for (std::size_t i = 1; i <= k; ++i) {
      v2v::V2vReceiver& recv = receivers[i - 1];
      if (cfg.ideal) {
        views[batch_n] = &trajs[i];
        ids[batch_n] = city.vehicle_id(i);
        ++batch_n;
        continue;
      }
      v2v::ExchangeSession& session = *sessions[i - 1];
      const bool full = !recv.have_full;
      const v2v::ExchangeResult ex =
          full ? session.exchange_full(trajs[i])
               : session.exchange_tail(trajs[i], recv.synced_metre);
      (void)recv.ingest(ex, full);
      if (!recv.received.empty()) {
        views[batch_n] = &recv.received;
        ids[batch_n] = city.vehicle_id(i);
        ++batch_n;
      }
    }
    ++result.updates;
    if (batch_n > 0) {
      fleet.estimate_batch_into(
          trajs[0],
          std::span<const core::ContextTrajectory* const>(views.data(),
                                                          batch_n),
          std::span<const std::uint64_t>(ids.data(), batch_n), pool,
          results);
      for (std::size_t j = 0; j < batch_n; ++j) {
        if (!results[j].estimate.has_value()) continue;
        ++result.estimates;
        const std::size_t i = ids[j] - city.vehicle_id(0);
        collector.note_estimate(ids[j], t);
        last_estimate_s[i] = t;
        if (accounting) {
          result.errors.push_back(std::abs(results[j].estimate->distance_m -
                                           (last_pos[0] - last_pos[i])));
        }
      }
    }
    if (accounting) {
      for (std::size_t i = 1; i <= k; ++i) {
        result.staleness_s.push_back(t - last_estimate_s[i]);
      }
    }
  }

  for (const auto& session : sessions) result.bytes += session->total_bytes();
  result.bytes_per_estimate =
      result.estimates > 0
          ? static_cast<double>(result.bytes) /
                static_cast<double>(result.estimates)
          : 0.0;
  result.series = collector.finish(t);
  return result;
}

}  // namespace rups::sim
