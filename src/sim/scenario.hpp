#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/engine.hpp"
#include "gsm/env_profile.hpp"
#include "road/environment.hpp"
#include "sensors/gsm_scanner.hpp"
#include "vehicle/traffic.hpp"

namespace rups::sim {

/// Per-vehicle experiment setup: where it drives and what hardware it
/// carries (the paper varies radios, placement and lane — Figs. 9/11).
struct VehicleSetup {
  std::uint64_t seed = 1;
  int lane = 1;
  /// Start offset along the route (m); the front car leads by the gap.
  double start_offset_m = 0.0;
  int radios = 4;
  sensors::RadioPlacement placement = sensors::RadioPlacement::kFrontPanel;
  /// Mean seconds between lane changes to an adjacent lane (0 = stay put);
  /// drivers drift between lanes in real traffic, perturbing the fine
  /// multipath their scanner sees.
  double lane_change_mean_s = 0.0;
};

/// Full experiment description. Defaults reproduce the paper's common
/// setup: 4 front radios per car, 115 channels, moderate traffic.
struct Scenario {
  std::uint64_t seed = 1;

  /// Route: a single-environment road of `route_length_m` (most
  /// experiments) or the paper's mixed 97 km evaluation route.
  road::EnvironmentType env = road::EnvironmentType::kFourLaneUrban;
  double route_length_m = 12'000.0;
  bool mixed_route = false;

  vehicle::TrafficDensity traffic = vehicle::TrafficDensity::kModerate;
  /// Scales the passing-big-vehicle blockage rate (0 disables).
  double passing_rate_scale = 1.0;

  std::size_t channels = 115;
  /// Also scan the FM broadcast band (the paper's future-work multi-band
  /// extension); the effective channel count grows accordingly.
  bool include_fm_band = false;
  core::RupsConfig rups{};
  /// Base scanner configuration; per-vehicle radios/placement override it.
  sensors::GsmScanner::Config scanner_base{};
  /// Replace every road's radio-environment profile (ablation studies).
  std::optional<gsm::GsmEnvProfile> field_override;

  /// Vehicle 0 is the FRONT car, vehicle 1 the REAR car (paper layout).
  std::vector<VehicleSetup> vehicles;

  /// Simulation tick (s); 0.005 = the 200 Hz IMU rate.
  double tick_s = 0.005;

  /// Two-car scenario with the given initial front-rear gap.
  [[nodiscard]] static Scenario two_car(std::uint64_t seed,
                                        road::EnvironmentType env,
                                        double gap_m = 40.0);

  /// N-vehicle convoy on one route: vehicle 0 leads, each following
  /// vehicle starts `gap_m` behind the previous one (vehicle n-1 is the
  /// rear car — the default fleet ego). Per-vehicle seeds stay distinct so
  /// every rig keeps its own driving style and sensor noise.
  [[nodiscard]] static Scenario fleet(std::uint64_t seed,
                                      road::EnvironmentType env,
                                      std::size_t vehicle_count,
                                      double gap_m = 40.0);
};

}  // namespace rups::sim
