#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "core/engine.hpp"
#include "gsm/gsm_field.hpp"
#include "obs/health.hpp"
#include "road/route.hpp"
#include "sensors/gps.hpp"
#include "sensors/gsm_scanner.hpp"
#include "sensors/imu.hpp"
#include "sensors/obd.hpp"
#include "sim/scenario.hpp"
#include "sim/trace.hpp"
#include "util/thread_pool.hpp"
#include "vehicle/kinematics.hpp"
#include "vehicle/passing.hpp"

namespace rups::sim {

/// One instrumented vehicle: ground-truth kinematics plus the sensor suite
/// feeding its on-board RUPS engine.
class VehicleRig {
 public:
  VehicleRig(const Scenario& scenario, const VehicleSetup& setup,
             const road::Route* route,
             const vehicle::TrafficLightPlan* lights,
             const gsm::GsmField* field);

  /// Advance ground truth and all sensors by one tick. `leader` enables the
  /// car-following correction keeping the convoy within rangefinder range
  /// (the experiment cars were driven together; each still has its own
  /// driving style).
  void tick(double dt, const vehicle::VehicleState* leader = nullptr);

  [[nodiscard]] const vehicle::VehicleState& state() const noexcept {
    return kinematics_.state();
  }
  [[nodiscard]] const core::RupsEngine& engine() const noexcept {
    return engine_;
  }
  [[nodiscard]] const std::optional<sensors::GpsFix>& last_gps_fix()
      const noexcept {
    return last_fix_;
  }
  /// True route position (m) at which the engine emitted odometer metre k
  /// (NaN when unknown) — the oracle for SYN-point error measurement.
  [[nodiscard]] double true_position_of_metre(std::uint64_t metre) const;

  /// Lane the vehicle currently occupies (changes over time when the setup
  /// enables lane changing).
  [[nodiscard]] int current_lane() const noexcept { return lane_; }

  [[nodiscard]] bool finished() const noexcept {
    return kinematics_.finished();
  }

  /// Publish raw sensor streams (trace recording); nullptr disables.
  void set_trace_sink(TraceSink* sink) noexcept { sink_ = sink; }

 private:
  const road::Route* route_;
  const gsm::GsmField* field_;
  int lane_;
  double lane_change_mean_s_;
  double next_lane_change_s_ = 0.0;
  util::Rng lane_rng_;

  vehicle::SpeedController controller_;
  vehicle::Kinematics kinematics_;
  vehicle::PassingVehicleProcess passing_;
  sensors::ImuModel imu_;
  sensors::ObdSpeedSensor obd_;
  sensors::GsmScanner scanner_;
  sensors::GpsModel gps_;
  core::RupsEngine engine_;

  util::Rng blockage_rng_;
  TraceSink* sink_ = nullptr;
  std::optional<sensors::GpsFix> last_fix_;
  double prev_heading_ = 0.0;
  bool have_prev_heading_ = false;
  std::vector<double> true_pos_of_metre_;
  std::vector<sensors::RssiMeasurement> measurement_buffer_;
};

/// Drives N instrumented vehicles down one route through a shared GSM
/// field — the paper's two experiment cars, generalized. Supports the
/// evaluation queries: RUPS estimate vs GPS estimate vs ground truth, and
/// SYN-point position errors.
class ConvoySimulation {
 public:
  explicit ConvoySimulation(Scenario scenario);

  /// Advance the whole convoy to absolute time `time_s`.
  void run_until(double time_s);

  [[nodiscard]] double now() const noexcept { return now_; }
  [[nodiscard]] bool finished() const;

  [[nodiscard]] std::size_t vehicle_count() const noexcept {
    return rigs_.size();
  }
  [[nodiscard]] const VehicleRig& rig(std::size_t i) const {
    return *rigs_.at(i);
  }
  [[nodiscard]] VehicleRig& mutable_rig(std::size_t i) { return *rigs_.at(i); }
  [[nodiscard]] const road::Route& route() const noexcept { return route_; }
  [[nodiscard]] const gsm::GsmField& field() const noexcept { return *field_; }
  [[nodiscard]] const Scenario& scenario() const noexcept { return scenario_; }

  /// Result of one relative-distance query from vehicle `rear` about
  /// vehicle `front`. Sign convention: positive = rear vehicle in front.
  struct QueryResult {
    std::optional<core::RelativeDistanceEstimate> rups;
    std::vector<core::SynPoint> syn_points;
    /// Mean absolute SYN position error (m) over found SYN points; NaN if
    /// none were found.
    double syn_error_m = 0.0;
    /// GPS-based estimate, if both vehicles have fresh fixes.
    std::optional<double> gps;
    /// Ground truth (difference of true travelled distances).
    double truth = 0.0;

    [[nodiscard]] std::optional<double> rups_error() const {
      if (!rups.has_value()) return std::nullopt;
      return std::abs(rups->distance_m - truth);
    }
    [[nodiscard]] std::optional<double> gps_error() const {
      if (!gps.has_value()) return std::nullopt;
      return std::abs(*gps - truth);
    }
  };

  /// Query from `rear_index`'s perspective against `front_index`'s context.
  [[nodiscard]] QueryResult query(std::size_t rear_index,
                                  std::size_t front_index,
                                  util::ThreadPool* pool = nullptr) const;

  /// Same query, but searching an explicit copy of the front vehicle's
  /// context — the V2V receiver-side trajectory, which after a lossy
  /// exchange may hold fewer metres (or quantized values) compared to the
  /// sender's in-memory context. Ground truth, SYN error oracle and the
  /// GPS baseline still come from the front rig itself.
  [[nodiscard]] QueryResult query(std::size_t rear_index,
                                  std::size_t front_index,
                                  const core::ContextTrajectory& front_context,
                                  util::ThreadPool* pool = nullptr) const;

  /// Attach a health monitor: every query() feeds it hit/miss, the absolute
  /// RUPS error versus ground truth, and the compute latency. Non-owning;
  /// nullptr detaches. The caller keeps the monitor alive across queries.
  void set_health_monitor(obs::HealthMonitor* monitor) noexcept {
    health_ = monitor;
  }

 private:
  Scenario scenario_;
  road::Route route_;
  vehicle::TrafficLightPlan lights_;
  gsm::ChannelPlan plan_;
  std::unique_ptr<gsm::GsmField> field_;
  std::vector<std::unique_ptr<VehicleRig>> rigs_;
  double now_ = 0.0;
  obs::HealthMonitor* health_ = nullptr;
};

}  // namespace rups::sim
