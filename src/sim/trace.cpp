#include "sim/trace.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "util/csv.hpp"

namespace rups::sim {

namespace {
std::string fmt(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}
}  // namespace

void VehicleTrace::save_csv(const std::filesystem::path& path) const {
  util::CsvWriter w(path);
  for (const auto& s : imu) {
    w.row(std::vector<std::string>{
        "imu", fmt(s.time_s), fmt(s.accel_mps2.x), fmt(s.accel_mps2.y),
        fmt(s.accel_mps2.z), fmt(s.gyro_rps.x), fmt(s.gyro_rps.y),
        fmt(s.gyro_rps.z), fmt(s.mag_ut.x), fmt(s.mag_ut.y), fmt(s.mag_ut.z)});
  }
  for (const auto& s : obd) {
    w.row(std::vector<std::string>{"obd", fmt(s.time_s), fmt(s.speed_mps)});
  }
  for (const auto& s : rssi) {
    w.row(std::vector<std::string>{"rssi", fmt(s.time_s),
                                   std::to_string(s.channel_index),
                                   fmt(s.rssi_dbm), std::to_string(s.radio)});
  }
  for (const auto& s : gps) {
    w.row(std::vector<std::string>{"gps", fmt(s.time_s), fmt(s.x_m),
                                   fmt(s.y_m), s.valid ? "1" : "0"});
  }
  for (std::size_t i = 0; i < true_pos_of_metre.size(); ++i) {
    w.row(std::vector<std::string>{"truth", std::to_string(i),
                                   fmt(true_pos_of_metre[i])});
  }
}

VehicleTrace VehicleTrace::load_csv(const std::filesystem::path& path) {
  const util::CsvReader reader(path);
  VehicleTrace trace;
  for (const auto& row : reader.rows()) {
    if (row.empty()) continue;
    const std::string& tag = row[0];
    if (tag == "imu") {
      if (row.size() != 11) throw std::invalid_argument("bad imu row");
      sensors::ImuSample s;
      s.time_s = std::stod(row[1]);
      s.accel_mps2 = {std::stod(row[2]), std::stod(row[3]), std::stod(row[4])};
      s.gyro_rps = {std::stod(row[5]), std::stod(row[6]), std::stod(row[7])};
      s.mag_ut = {std::stod(row[8]), std::stod(row[9]), std::stod(row[10])};
      trace.imu.push_back(s);
    } else if (tag == "obd") {
      if (row.size() != 3) throw std::invalid_argument("bad obd row");
      trace.obd.push_back({std::stod(row[1]), std::stod(row[2])});
    } else if (tag == "rssi") {
      if (row.size() != 5) throw std::invalid_argument("bad rssi row");
      sensors::RssiMeasurement m;
      m.time_s = std::stod(row[1]);
      m.channel_index = static_cast<std::size_t>(std::stoul(row[2]));
      m.rssi_dbm = std::stod(row[3]);
      m.radio = std::stoi(row[4]);
      trace.rssi.push_back(m);
    } else if (tag == "gps") {
      if (row.size() != 5) throw std::invalid_argument("bad gps row");
      sensors::GpsFix f;
      f.time_s = std::stod(row[1]);
      f.x_m = std::stod(row[2]);
      f.y_m = std::stod(row[3]);
      f.valid = row[4] == "1";
      trace.gps.push_back(f);
    } else if (tag == "truth") {
      if (row.size() != 3) throw std::invalid_argument("bad truth row");
      const auto idx = static_cast<std::size_t>(std::stoul(row[1]));
      if (trace.true_pos_of_metre.size() <= idx) {
        trace.true_pos_of_metre.resize(idx + 1, 0.0);
      }
      trace.true_pos_of_metre[idx] = std::stod(row[2]);
    } else {
      throw std::invalid_argument("unknown trace row tag: " + tag);
    }
  }
  return trace;
}

void replay_trace(const VehicleTrace& trace, core::RupsEngine& engine) {
  // Merge the three engine-facing streams by timestamp. On ties, deliver
  // speed before IMU (matching the live rig, which polls OBD first).
  std::size_t ii = 0, oi = 0, ri = 0;
  const auto next_time = [&](std::size_t idx, const auto& v) {
    return idx < v.size() ? v[idx].time_s
                          : std::numeric_limits<double>::infinity();
  };
  for (;;) {
    const double ti = next_time(ii, trace.imu);
    const double to = next_time(oi, trace.obd);
    const double tr = next_time(ri, trace.rssi);
    if (std::isinf(ti) && std::isinf(to) && std::isinf(tr)) break;
    if (to <= ti && to <= tr) {
      engine.on_speed(trace.obd[oi++]);
    } else if (tr < ti) {
      engine.on_rssi(trace.rssi[ri++]);
    } else {
      engine.on_imu(trace.imu[ii++]);
    }
  }
}

}  // namespace rups::sim
