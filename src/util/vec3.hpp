#pragma once

#include <array>
#include <cmath>

namespace rups::util {

/// Plain 3-vector (double). Used for IMU samples, magnetic field, and
/// vehicle-frame geometry.
struct Vec3 {
  double x = 0.0, y = 0.0, z = 0.0;

  constexpr Vec3() = default;
  constexpr Vec3(double x_, double y_, double z_) : x(x_), y(y_), z(z_) {}

  constexpr Vec3 operator+(const Vec3& o) const {
    return {x + o.x, y + o.y, z + o.z};
  }
  constexpr Vec3 operator-(const Vec3& o) const {
    return {x - o.x, y - o.y, z - o.z};
  }
  constexpr Vec3 operator*(double s) const { return {x * s, y * s, z * s}; }
  constexpr Vec3 operator/(double s) const { return {x / s, y / s, z / s}; }
  constexpr Vec3 operator-() const { return {-x, -y, -z}; }

  Vec3& operator+=(const Vec3& o) {
    x += o.x;
    y += o.y;
    z += o.z;
    return *this;
  }

  [[nodiscard]] constexpr double dot(const Vec3& o) const {
    return x * o.x + y * o.y + z * o.z;
  }
  [[nodiscard]] constexpr Vec3 cross(const Vec3& o) const {
    return {y * o.z - z * o.y, z * o.x - x * o.z, x * o.y - y * o.x};
  }
  [[nodiscard]] double norm() const { return std::sqrt(dot(*this)); }
  /// Unit vector; returns zero vector unchanged if the norm is ~0.
  [[nodiscard]] Vec3 normalized() const {
    const double n = norm();
    return n > 1e-12 ? *this / n : *this;
  }
};

constexpr Vec3 operator*(double s, const Vec3& v) { return v * s; }

/// Row-major 3x3 matrix; enough linear algebra for coordinate reorientation
/// (rotation estimation and application).
struct Mat3 {
  std::array<double, 9> m{1, 0, 0, 0, 1, 0, 0, 0, 1};

  static Mat3 identity() { return Mat3{}; }

  /// Build from three ROW vectors; Mat3::from_rows(x,y,z) * v expresses v
  /// (sensor frame) in the frame whose axes are x,y,z.
  static Mat3 from_rows(const Vec3& r0, const Vec3& r1, const Vec3& r2) {
    Mat3 out;
    out.m = {r0.x, r0.y, r0.z, r1.x, r1.y, r1.z, r2.x, r2.y, r2.z};
    return out;
  }

  /// Rotation about an arbitrary unit axis by `angle` radians (Rodrigues).
  static Mat3 rotation(const Vec3& axis, double angle);
  /// Intrinsic Z-Y-X Euler rotation (yaw, pitch, roll), radians.
  static Mat3 from_euler(double yaw, double pitch, double roll);

  [[nodiscard]] double at(int r, int c) const { return m[3 * r + c]; }
  double& at(int r, int c) { return m[3 * r + c]; }

  [[nodiscard]] Vec3 row(int r) const {
    return {at(r, 0), at(r, 1), at(r, 2)};
  }
  [[nodiscard]] Vec3 col(int c) const {
    return {at(0, c), at(1, c), at(2, c)};
  }

  [[nodiscard]] Vec3 operator*(const Vec3& v) const {
    return {row(0).dot(v), row(1).dot(v), row(2).dot(v)};
  }
  [[nodiscard]] Mat3 operator*(const Mat3& o) const;
  [[nodiscard]] Mat3 transpose() const;

  /// Frobenius distance to another matrix (test helper).
  [[nodiscard]] double distance(const Mat3& o) const;
};

}  // namespace rups::util
