#pragma once

#include <type_traits>
#include <utility>

namespace rups::util {

template <typename Signature>
class FunctionRef;

/// Non-owning callable reference: one void* plus a trampoline function
/// pointer, so passing a lambda into a blocking call (parallel_for) never
/// heap-allocates the way constructing a std::function can. The referenced
/// callable must outlive every invocation — fine for blocking APIs, wrong
/// for anything that stores the ref past the call.
template <typename R, typename... Args>
class FunctionRef<R(Args...)> {
 public:
  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::remove_cvref_t<F>, FunctionRef> &&
                std::is_invocable_r_v<R, F&, Args...>>>
  FunctionRef(F&& f) noexcept  // NOLINT(google-explicit-constructor)
      : obj_(const_cast<void*>(
            static_cast<const void*>(std::addressof(f)))),
        invoke_([](void* obj, Args... args) -> R {
          return (*static_cast<std::remove_reference_t<F>*>(obj))(
              std::forward<Args>(args)...);
        }) {}

  R operator()(Args... args) const {
    return invoke_(obj_, std::forward<Args>(args)...);
  }

 private:
  void* obj_;
  R (*invoke_)(void*, Args...);
};

}  // namespace rups::util
