#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace rups::util {

/// Welford-style online accumulator for mean / variance / extrema.
class RunningStats {
 public:
  void add(double x) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ ? mean_ : 0.0; }
  /// Unbiased sample variance (0 for fewer than two samples).
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }
  /// Half-width of the 95% confidence interval of the mean
  /// (normal approximation: 1.96 * stddev / sqrt(n)).
  [[nodiscard]] double ci95_halfwidth() const noexcept;

  /// Merge another accumulator into this one (parallel reduction support).
  void merge(const RunningStats& other) noexcept;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Mean of a sample (0 for an empty span).
[[nodiscard]] double mean(std::span<const double> xs) noexcept;

/// Unbiased sample standard deviation (0 for fewer than two samples).
[[nodiscard]] double stddev(std::span<const double> xs) noexcept;

/// q-th percentile (q in [0,1]) with linear interpolation between order
/// statistics. The input need not be sorted. Returns 0 for an empty span.
[[nodiscard]] double percentile(std::span<const double> xs, double q);

/// Median shorthand.
[[nodiscard]] double median(std::span<const double> xs);

/// Plain Pearson correlation between two equal-length samples.
/// Returns 0 when either side has zero variance or fewer than 2 points.
[[nodiscard]] double pearson(std::span<const double> a,
                             std::span<const double> b) noexcept;

/// Empirical CDF of a sample: sorted values paired with cumulative
/// probability F(x) = rank/n. Suitable for printing figure series.
class EmpiricalCdf {
 public:
  explicit EmpiricalCdf(std::vector<double> samples);

  /// P(X <= x).
  [[nodiscard]] double at(double x) const noexcept;
  /// Inverse CDF (quantile).
  [[nodiscard]] double quantile(double q) const;
  [[nodiscard]] const std::vector<double>& sorted() const noexcept {
    return sorted_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return sorted_.size(); }

  /// Evaluate the CDF on an evenly spaced grid [lo, hi] with `points`
  /// samples; used by the figure benches to print comparable series.
  [[nodiscard]] std::vector<std::pair<double, double>> grid(
      double lo, double hi, std::size_t points) const;

 private:
  std::vector<double> sorted_;
};

/// Fixed-width histogram over [lo, hi); out-of-range samples clamp to the
/// first/last bin.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x) noexcept;
  [[nodiscard]] std::size_t bin_count(std::size_t i) const;
  [[nodiscard]] std::size_t bins() const noexcept { return counts_.size(); }
  [[nodiscard]] double bin_center(std::size_t i) const;
  [[nodiscard]] std::size_t total() const noexcept { return total_; }

 private:
  double lo_, hi_, width_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace rups::util
