#pragma once

#include <cstdint>
#include <limits>

namespace rups::util {

/// SplitMix64 — used for seeding and as a cheap stateless mixer.
/// Reference: Sebastiano Vigna, http://prng.di.unimi.it/splitmix64.c
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// One-shot stateless mix of a 64-bit key (SplitMix64 finalizer).
[[nodiscard]] std::uint64_t mix64(std::uint64_t x) noexcept;

/// Combine two 64-bit keys into one (order-sensitive).
[[nodiscard]] std::uint64_t hash_combine(std::uint64_t a, std::uint64_t b) noexcept;

/// Xoshiro256** — fast, high-quality general-purpose PRNG.
/// Satisfies UniformRandomBitGenerator.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept;

  /// Equivalent to 2^128 calls of operator(); used to derive independent
  /// streams from one seed.
  void jump() noexcept;

 private:
  std::uint64_t s_[4];
};

/// Convenience wrapper: a seeded Xoshiro256 plus the distributions the
/// simulator needs. All methods are deterministic given the seed and the
/// call sequence.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) noexcept : gen_(seed) {}

  /// Uniform in [0, 1).
  double uniform() noexcept;
  /// Uniform in [lo, hi).
  double uniform(double lo, double hi) noexcept;
  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept;
  /// Standard normal via Box–Muller (cached pair).
  double gaussian() noexcept;
  /// Normal with the given mean / stddev.
  double gaussian(double mean, double stddev) noexcept;
  /// Bernoulli trial.
  bool bernoulli(double p) noexcept;
  /// Exponential with the given rate (lambda).
  double exponential(double rate) noexcept;

  /// Derive an independent child generator (stable, order-sensitive).
  Rng fork() noexcept;

  Xoshiro256& generator() noexcept { return gen_; }

 private:
  Xoshiro256 gen_;
  double cached_gaussian_ = 0.0;
  bool has_cached_gaussian_ = false;
};

}  // namespace rups::util
