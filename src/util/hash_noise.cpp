#include "util/hash_noise.hpp"

#include <cmath>
#include <numbers>

namespace rups::util {

double HashNoise::uniform(std::int64_t key) const noexcept {
  const std::uint64_t h = mix64(seed_ ^ mix64(static_cast<std::uint64_t>(key)));
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

double HashNoise::uniform2(std::int64_t k1, std::int64_t k2) const noexcept {
  const std::uint64_t h = mix64(
      hash_combine(seed_, hash_combine(static_cast<std::uint64_t>(k1),
                                       static_cast<std::uint64_t>(k2))));
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

double HashNoise::gaussian(std::int64_t key) const noexcept {
  double u = uniform(key);
  if (u < 1e-300) u = 1e-300;
  if (u > 1.0 - 1e-16) u = 1.0 - 1e-16;
  return inverse_normal_cdf(u);
}

double HashNoise::gaussian2(std::int64_t k1, std::int64_t k2) const noexcept {
  double u = uniform2(k1, k2);
  if (u < 1e-300) u = 1e-300;
  if (u > 1.0 - 1e-16) u = 1.0 - 1e-16;
  return inverse_normal_cdf(u);
}

double inverse_normal_cdf(double p) noexcept {
  // Peter Acklam's algorithm.
  static constexpr double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                                 -2.759285104469687e+02, 1.383577518672690e+02,
                                 -3.066479806614716e+01, 2.506628277459239e+00};
  static constexpr double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                                 -1.556989798598866e+02, 6.680131188771972e+01,
                                 -1.328068155288572e+01};
  static constexpr double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                                 -2.400758277161838e+00, -2.549732539343734e+00,
                                 4.374664141464968e+00,  2.938163982698783e+00};
  static constexpr double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                                 2.445134137142996e+00, 3.754408661907416e+00};
  static constexpr double p_low = 0.02425;
  static constexpr double p_high = 1.0 - p_low;

  if (p <= 0.0) return -std::numeric_limits<double>::infinity();
  if (p >= 1.0) return std::numeric_limits<double>::infinity();

  if (p < p_low) {
    const double q = std::sqrt(-2.0 * std::log(p));
    return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
            c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  if (p <= p_high) {
    const double q = p - 0.5;
    const double r = q * q;
    return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r +
            a[5]) *
           q /
           (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
  }
  const double q = std::sqrt(-2.0 * std::log(1.0 - p));
  return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
           c[5]) /
         ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
}

LatticeField1D::LatticeField1D(std::uint64_t seed, double correlation_length,
                               int octaves) noexcept
    : noise_(seed),
      correlation_length_(correlation_length > 0 ? correlation_length : 1.0),
      octaves_(octaves >= 1 ? octaves : 1) {
  // Octave o has amplitude 2^-o; normalize so the sum has unit variance.
  // Interpolated value noise at a generic point has variance roughly half of
  // the lattice variance; fold that into one empirical normalizer so the
  // output is ~N(0,1). (Tests assert the sample stddev is within [0.7, 1.3].)
  double sum_sq = 0.0;
  for (int o = 0; o < octaves_; ++o) {
    const double amp = std::pow(0.5, o);
    sum_sq += amp * amp;
  }
  amplitude_norm_ = 1.0 / std::sqrt(sum_sq * 0.75);
}

double LatticeField1D::octave_value(double x, int octave) const noexcept {
  const double scale = correlation_length_ / std::pow(2.0, octave);
  const double u = x / scale;
  const double fl = std::floor(u);
  const auto i0 = static_cast<std::int64_t>(fl);
  const double frac = u - fl;
  // Cosine interpolation between lattice gaussians.
  const double t = 0.5 * (1.0 - std::cos(std::numbers::pi * frac));
  const double v0 = noise_.gaussian2(i0, octave);
  const double v1 = noise_.gaussian2(i0 + 1, octave);
  return v0 + (v1 - v0) * t;
}

double LatticeField1D::value(double x) const noexcept {
  double acc = 0.0;
  double amp = 1.0;
  for (int o = 0; o < octaves_; ++o, amp *= 0.5) {
    acc += amp * octave_value(x, o);
  }
  return acc * amplitude_norm_;
}

}  // namespace rups::util
