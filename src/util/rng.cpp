#include "util/rng.hpp"

#include <cmath>
#include <numbers>

namespace rups::util {

std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::uint64_t hash_combine(std::uint64_t a, std::uint64_t b) noexcept {
  return mix64(a ^ (mix64(b) + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2)));
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Xoshiro256::Xoshiro256(std::uint64_t seed) noexcept {
  SplitMix64 sm(seed);
  for (auto& s : s_) s = sm.next();
}

Xoshiro256::result_type Xoshiro256::operator()() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

void Xoshiro256::jump() noexcept {
  static constexpr std::uint64_t kJump[] = {
      0x180ec6d33cfd0abaULL, 0xd5a61266f0c9392cULL,
      0xa9582618e03fc9aaULL, 0x39abdc4529b1661cULL};
  std::uint64_t s0 = 0, s1 = 0, s2 = 0, s3 = 0;
  for (std::uint64_t jump : kJump) {
    for (int b = 0; b < 64; ++b) {
      if (jump & (1ULL << b)) {
        s0 ^= s_[0];
        s1 ^= s_[1];
        s2 ^= s_[2];
        s3 ^= s_[3];
      }
      (*this)();
    }
  }
  s_[0] = s0;
  s_[1] = s1;
  s_[2] = s2;
  s_[3] = s3;
}

double Rng::uniform() noexcept {
  // 53-bit mantissa from the top bits.
  return static_cast<double>(gen_() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(gen_());  // full range
  return lo + static_cast<std::int64_t>(gen_() % span);
}

double Rng::gaussian() noexcept {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1 = uniform();
  while (u1 <= 0.0) u1 = uniform();
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  cached_gaussian_ = r * std::sin(theta);
  has_cached_gaussian_ = true;
  return r * std::cos(theta);
}

double Rng::gaussian(double mean, double stddev) noexcept {
  return mean + stddev * gaussian();
}

bool Rng::bernoulli(double p) noexcept { return uniform() < p; }

double Rng::exponential(double rate) noexcept {
  double u = uniform();
  while (u <= 0.0) u = uniform();
  return -std::log(u) / rate;
}

Rng Rng::fork() noexcept { return Rng(gen_()); }

}  // namespace rups::util
