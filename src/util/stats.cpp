#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace rups::util {

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const noexcept {
  return n_ >= 2 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double RunningStats::ci95_halfwidth() const noexcept {
  if (n_ < 2) return 0.0;
  return 1.96 * stddev() / std::sqrt(static_cast<double>(n_));
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto n = static_cast<double>(n_);
  const auto m = static_cast<double>(other.n_);
  const double total = n + m;
  m2_ += other.m2_ + delta * delta * n * m / total;
  mean_ += delta * m / total;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
}

double mean(std::span<const double> xs) noexcept {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double stddev(std::span<const double> xs) noexcept {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double s = 0.0;
  for (double x : xs) s += (x - m) * (x - m);
  return std::sqrt(s / static_cast<double>(xs.size() - 1));
}

double percentile(std::span<const double> xs, double q) {
  if (xs.empty()) return 0.0;
  std::vector<double> v(xs.begin(), xs.end());
  std::sort(v.begin(), v.end());
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(v.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(pos));
  const auto hi = static_cast<std::size_t>(std::ceil(pos));
  const double frac = pos - std::floor(pos);
  return v[lo] + (v[hi] - v[lo]) * frac;
}

double median(std::span<const double> xs) { return percentile(xs, 0.5); }

double pearson(std::span<const double> a, std::span<const double> b) noexcept {
  const std::size_t n = std::min(a.size(), b.size());
  if (n < 2) return 0.0;
  double ma = 0.0, mb = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    ma += a[i];
    mb += b[i];
  }
  ma /= static_cast<double>(n);
  mb /= static_cast<double>(n);
  double num = 0.0, da = 0.0, db = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double xa = a[i] - ma;
    const double xb = b[i] - mb;
    num += xa * xb;
    da += xa * xa;
    db += xb * xb;
  }
  if (da <= 0.0 || db <= 0.0) return 0.0;
  return num / std::sqrt(da * db);
}

EmpiricalCdf::EmpiricalCdf(std::vector<double> samples)
    : sorted_(std::move(samples)) {
  std::sort(sorted_.begin(), sorted_.end());
}

double EmpiricalCdf::at(double x) const noexcept {
  if (sorted_.empty()) return 0.0;
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(it - sorted_.begin()) /
         static_cast<double>(sorted_.size());
}

double EmpiricalCdf::quantile(double q) const {
  if (sorted_.empty()) throw std::out_of_range("quantile of empty CDF");
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(sorted_.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(pos));
  const auto hi = static_cast<std::size_t>(std::ceil(pos));
  const double frac = pos - std::floor(pos);
  return sorted_[lo] + (sorted_[hi] - sorted_[lo]) * frac;
}

std::vector<std::pair<double, double>> EmpiricalCdf::grid(
    double lo, double hi, std::size_t points) const {
  std::vector<std::pair<double, double>> out;
  if (points == 0) return out;
  out.reserve(points);
  for (std::size_t i = 0; i < points; ++i) {
    const double x =
        points == 1
            ? lo
            : lo + (hi - lo) * static_cast<double>(i) /
                       static_cast<double>(points - 1);
    out.emplace_back(x, at(x));
  }
  return out;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)),
      counts_(bins, 0) {
  if (bins == 0 || !(hi > lo)) {
    throw std::invalid_argument("Histogram requires hi > lo and bins > 0");
  }
}

void Histogram::add(double x) noexcept {
  auto idx = static_cast<std::ptrdiff_t>((x - lo_) / width_);
  idx = std::clamp<std::ptrdiff_t>(idx, 0,
                                   static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
}

std::size_t Histogram::bin_count(std::size_t i) const { return counts_.at(i); }

double Histogram::bin_center(std::size_t i) const {
  if (i >= counts_.size()) throw std::out_of_range("histogram bin");
  return lo_ + (static_cast<double>(i) + 0.5) * width_;
}

}  // namespace rups::util
