#pragma once

#include <filesystem>
#include <fstream>
#include <string>
#include <string_view>
#include <vector>

namespace rups::util {

/// Streaming CSV writer. Values are escaped per RFC 4180 when needed
/// (commas, quotes, newlines). Used by the trace recorder and the figure
/// benches to emit plot-ready series.
class CsvWriter {
 public:
  explicit CsvWriter(const std::filesystem::path& path);

  /// Write one row; strings are escaped, doubles printed with enough
  /// precision to round-trip.
  CsvWriter& row(const std::vector<std::string>& cells);
  CsvWriter& row(const std::vector<double>& cells);

  void flush();
  [[nodiscard]] bool ok() const { return static_cast<bool>(out_); }

  /// RFC-4180 escape helper (exposed for tests).
  [[nodiscard]] static std::string escape(std::string_view cell);

 private:
  std::ofstream out_;
};

/// Whole-file CSV reader (small files: traces, fixtures).
class CsvReader {
 public:
  /// Parses the file; throws std::runtime_error if it cannot be opened.
  explicit CsvReader(const std::filesystem::path& path);
  /// Parses in-memory text (tests).
  static CsvReader from_string(std::string_view text);

  [[nodiscard]] const std::vector<std::vector<std::string>>& rows() const {
    return rows_;
  }
  [[nodiscard]] std::size_t row_count() const { return rows_.size(); }

 private:
  CsvReader() = default;
  void parse(std::string_view text);

  std::vector<std::vector<std::string>> rows_;
};

}  // namespace rups::util
