#pragma once

namespace rups::util {

/// Degrees → radians.
[[nodiscard]] double deg2rad(double deg) noexcept;
/// Radians → degrees.
[[nodiscard]] double rad2deg(double rad) noexcept;

/// Wrap an angle (radians) into (-pi, pi].
[[nodiscard]] double wrap_pi(double rad) noexcept;
/// Wrap an angle (radians) into [0, 2*pi).
[[nodiscard]] double wrap_2pi(double rad) noexcept;

/// Signed smallest difference a - b, wrapped into (-pi, pi].
[[nodiscard]] double angle_diff(double a, double b) noexcept;

/// Linear interpolation of angles along the shortest arc.
[[nodiscard]] double angle_lerp(double a, double b, double t) noexcept;

}  // namespace rups::util
