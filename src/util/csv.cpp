#include "util/csv.hpp"

#include <charconv>
#include <sstream>
#include <stdexcept>

namespace rups::util {

CsvWriter::CsvWriter(const std::filesystem::path& path) : out_(path) {
  if (!out_) {
    throw std::runtime_error("CsvWriter: cannot open " + path.string());
  }
}

std::string CsvWriter::escape(std::string_view cell) {
  const bool needs_quotes =
      cell.find_first_of(",\"\n\r") != std::string_view::npos;
  if (!needs_quotes) return std::string(cell);
  std::string out;
  out.reserve(cell.size() + 2);
  out.push_back('"');
  for (char c : cell) {
    if (c == '"') out.push_back('"');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

CsvWriter& CsvWriter::row(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) out_ << ',';
    out_ << escape(cells[i]);
  }
  out_ << '\n';
  return *this;
}

CsvWriter& CsvWriter::row(const std::vector<double>& cells) {
  out_.precision(17);
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) out_ << ',';
    out_ << cells[i];
  }
  out_ << '\n';
  return *this;
}

void CsvWriter::flush() { out_.flush(); }

CsvReader::CsvReader(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("CsvReader: cannot open " + path.string());
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  parse(ss.str());
}

CsvReader CsvReader::from_string(std::string_view text) {
  CsvReader r;
  r.parse(text);
  return r;
}

void CsvReader::parse(std::string_view text) {
  std::vector<std::string> current;
  std::string cell;
  bool in_quotes = false;
  bool row_has_content = false;

  const auto end_cell = [&] {
    current.push_back(std::move(cell));
    cell.clear();
  };
  const auto end_row = [&] {
    end_cell();
    rows_.push_back(std::move(current));
    current.clear();
    row_has_content = false;
  };

  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          cell.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        cell.push_back(c);
      }
      continue;
    }
    switch (c) {
      case '"':
        in_quotes = true;
        row_has_content = true;
        break;
      case ',':
        end_cell();
        row_has_content = true;
        break;
      case '\r':
        break;  // tolerate CRLF
      case '\n':
        if (row_has_content || !cell.empty() || !current.empty()) end_row();
        break;
      default:
        cell.push_back(c);
        row_has_content = true;
        break;
    }
  }
  if (row_has_content || !cell.empty() || !current.empty()) end_row();
}

}  // namespace rups::util
