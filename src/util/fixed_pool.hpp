#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <new>
#include <utility>
#include <vector>

namespace rups::util {

/// Fixed-capacity object pool with freelist recycling. All storage is
/// reserved up front; acquire/release never touch the heap, so a service
/// whose sessions live in a FixedPool has a bounded, allocation-free steady
/// state. Slots are addressed by index (stable for the pool's lifetime —
/// safe to store in registries) and constructed/destroyed in place on
/// acquire/release.
template <typename T>
class FixedPool {
 public:
  static constexpr std::uint32_t npos =
      std::numeric_limits<std::uint32_t>::max();

  explicit FixedPool(std::size_t capacity)
      : storage_(new Slot[capacity]), capacity_(capacity), live_(capacity, 0) {
    free_.reserve(capacity);
    // LIFO freelist pre-filled in reverse so acquisition order is 0,1,2,...
    for (std::size_t i = capacity; i > 0; --i) {
      free_.push_back(static_cast<std::uint32_t>(i - 1));
    }
  }

  ~FixedPool() {
    for (std::size_t i = 0; i < capacity_; ++i) {
      if (live_[i] != 0) ptr(i)->~T();
    }
    delete[] storage_;
  }

  FixedPool(const FixedPool&) = delete;
  FixedPool& operator=(const FixedPool&) = delete;

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] std::size_t in_use() const noexcept {
    return capacity_ - free_.size();
  }
  [[nodiscard]] bool full() const noexcept { return free_.empty(); }

  /// Construct a T in a free slot; returns its index, or npos when
  /// exhausted (callers must degrade with a reasoned rejection, never UB).
  template <typename... Args>
  [[nodiscard]] std::uint32_t acquire_index(Args&&... args) {
    if (free_.empty()) return npos;
    const std::uint32_t index = free_.back();
    free_.pop_back();
    try {
      ::new (static_cast<void*>(ptr(index))) T(std::forward<Args>(args)...);
    } catch (...) {
      free_.push_back(index);
      throw;
    }
    live_[index] = 1;
    return index;
  }

  /// Destroy the slot and return it to the freelist.
  void release_index(std::uint32_t index) {
    ptr(index)->~T();
    live_[index] = 0;
    free_.push_back(index);
  }

  [[nodiscard]] T& operator[](std::uint32_t index) { return *ptr(index); }
  [[nodiscard]] const T& operator[](std::uint32_t index) const {
    return *ptr(index);
  }

 private:
  struct Slot {
    alignas(T) unsigned char bytes[sizeof(T)];
  };

  [[nodiscard]] T* ptr(std::size_t index) noexcept {
    return std::launder(reinterpret_cast<T*>(storage_[index].bytes));
  }
  [[nodiscard]] const T* ptr(std::size_t index) const noexcept {
    return std::launder(reinterpret_cast<const T*>(storage_[index].bytes));
  }

  Slot* storage_;
  std::size_t capacity_;
  std::vector<std::uint8_t> live_;  ///< destructor cleanup map
  std::vector<std::uint32_t> free_;
};

/// Fixed-capacity FIFO ring. push returns false when full (the caller's
/// admission-control signal) and pop returns false when empty; neither ever
/// allocates after construction. Not internally synchronized: the matcher
/// service fills queues in its single-threaded ingest phase and drains each
/// shard's queue from exactly one worker.
template <typename T>
class BoundedRing {
 public:
  explicit BoundedRing(std::size_t capacity) : buf_(capacity) {}

  [[nodiscard]] std::size_t capacity() const noexcept { return buf_.size(); }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] bool full() const noexcept { return size_ == buf_.size(); }

  [[nodiscard]] bool push(T value) {
    if (full()) return false;
    buf_[(head_ + size_) % buf_.size()] = std::move(value);
    ++size_;
    return true;
  }

  [[nodiscard]] bool pop(T& out) {
    if (empty()) return false;
    out = std::move(buf_[head_]);
    head_ = (head_ + 1) % buf_.size();
    --size_;
    return true;
  }

  void clear() noexcept {
    head_ = 0;
    size_ = 0;
  }

 private:
  std::vector<T> buf_;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
};

}  // namespace rups::util
