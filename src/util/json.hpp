#pragma once

// Small generic JSON reader (DOM style). obs::MetricsSnapshot::from_json
// deliberately rejects anything but its own schema; diagnostic tooling
// (obs_diff, bundle inspection) must instead read whatever JSON a bench,
// google-benchmark, or a diagnostics bundle emitted. This parser accepts
// any well-formed document: objects, arrays, strings (with escapes and
// \uXXXX), numbers, booleans, null.

#include <cstddef>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace rups::util {

/// Quote and escape a string for JSON output: `"`, `\`, the short escapes
/// (\b \f \n \r \t) and every other control character (< 0x20, emitted as
/// \u00XX). Non-ASCII bytes pass through untouched (UTF-8 stays UTF-8).
/// Every writer on the export path (snapshots, recorder bundles, series,
/// folded profiles, exposition) routes label values through this so
/// embedded quotes or control characters can never corrupt a document.
[[nodiscard]] std::string json_quote(std::string_view s);

class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  using Array = std::vector<JsonValue>;
  /// Key order is not preserved; duplicate keys keep the last value.
  using Object = std::map<std::string, JsonValue>;

  JsonValue() = default;  // null

  /// Parse a complete document (throws std::runtime_error on malformed
  /// input or trailing garbage; nesting is depth-limited).
  [[nodiscard]] static JsonValue parse(const std::string& text);

  [[nodiscard]] Kind kind() const noexcept { return kind_; }
  [[nodiscard]] bool is_null() const noexcept { return kind_ == Kind::kNull; }
  [[nodiscard]] bool is_bool() const noexcept { return kind_ == Kind::kBool; }
  [[nodiscard]] bool is_number() const noexcept {
    return kind_ == Kind::kNumber;
  }
  [[nodiscard]] bool is_string() const noexcept {
    return kind_ == Kind::kString;
  }
  [[nodiscard]] bool is_array() const noexcept {
    return kind_ == Kind::kArray;
  }
  [[nodiscard]] bool is_object() const noexcept {
    return kind_ == Kind::kObject;
  }

  /// Typed accessors; throw std::runtime_error on kind mismatch.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_number() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const Array& as_array() const;
  [[nodiscard]] const Object& as_object() const;

  /// Object member lookup; nullptr when absent or not an object.
  [[nodiscard]] const JsonValue* find(const std::string& key) const;
  /// find() chained through `.`-separated keys ("context.date" etc).
  [[nodiscard]] const JsonValue* find_path(const std::string& dotted) const;

  /// Convenience: member as number/string with a fallback.
  [[nodiscard]] double number_or(const std::string& key,
                                 double fallback) const;
  [[nodiscard]] std::string string_or(const std::string& key,
                                      std::string fallback) const;

  [[nodiscard]] static JsonValue make_bool(bool v);
  [[nodiscard]] static JsonValue make_number(double v);
  [[nodiscard]] static JsonValue make_string(std::string v);
  [[nodiscard]] static JsonValue make_array(Array v);
  [[nodiscard]] static JsonValue make_object(Object v);

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::shared_ptr<Array> array_;    // shared: values are cheaply copyable
  std::shared_ptr<Object> object_;
};

}  // namespace rups::util
