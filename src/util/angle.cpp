#include "util/angle.hpp"

#include <cmath>
#include <numbers>

namespace rups::util {

namespace {
constexpr double kPi = std::numbers::pi;
constexpr double kTwoPi = 2.0 * std::numbers::pi;
}  // namespace

double deg2rad(double deg) noexcept { return deg * kPi / 180.0; }
double rad2deg(double rad) noexcept { return rad * 180.0 / kPi; }

double wrap_2pi(double rad) noexcept {
  double r = std::fmod(rad, kTwoPi);
  if (r < 0.0) r += kTwoPi;
  return r;
}

double wrap_pi(double rad) noexcept {
  double r = wrap_2pi(rad);
  if (r > kPi) r -= kTwoPi;
  return r;
}

double angle_diff(double a, double b) noexcept { return wrap_pi(a - b); }

double angle_lerp(double a, double b, double t) noexcept {
  return wrap_pi(a + angle_diff(b, a) * t);
}

}  // namespace rups::util
