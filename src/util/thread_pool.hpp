#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <new>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "util/function_ref.hpp"

namespace rups::util {

/// Minimal fixed-size thread pool. Used to parallelize the SYN-point
/// double-sliding search across window positions (the O(mwk) hot path from
/// Sec. V-A of the paper) and for embarrassingly parallel experiment sweeps.
///
/// Tasks live in a preallocated ring of small-buffer-optimized slots:
/// enqueueing a callable that fits kInlineBytes (parallel_for's chunk tasks
/// by construction) constructs it in place instead of boxing it through a
/// std::function; oversized callables fall back to a heap box. When the
/// ring is full the producer blocks until a worker frees a slot —
/// backpressure, not growth.
class ThreadPool {
 public:
  /// Largest callable stored inline in a ring slot.
  static constexpr std::size_t kInlineBytes = 64;

  /// @param threads worker count; 0 means hardware_concurrency (min 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }
  [[nodiscard]] std::size_t queue_capacity() const noexcept {
    return ring_.size();
  }

  /// Enqueue a task; the returned future observes its completion/exception.
  /// The callable goes through an inline ring slot (no std::function box);
  /// the future's shared state is the one remaining allocation.
  template <typename F>
  std::future<void> submit(F&& task) {
    std::packaged_task<void()> pt(std::forward<F>(task));
    std::future<void> fut = pt.get_future();
    enqueue(std::move(pt));
    return fut;
  }

  /// Run fn(i) for i in [begin, end) across the pool, blocking until all
  /// iterations complete. Iterations are chunked contiguously. Exceptions
  /// propagate (first one wins). Chunk tasks are inline ring slots — no
  /// per-task std::function box — leaving one future shared state per
  /// chunk (bounded by pool size, not iteration count) as the only
  /// allocations. The sequential per-chunk future waits are deliberate:
  /// single-wakeup joins (condvar or futex) roughly double the caller's
  /// attributed CPU time on 1-vCPU hosts.
  void parallel_for(std::size_t begin, std::size_t end,
                    FunctionRef<void(std::size_t)> fn);

 private:
  /// One ring entry. `invoke` runs and destroys the stored callable;
  /// `relocate` move-constructs it into another slot's storage and destroys
  /// the source — how a worker claims a task before running it unlocked.
  struct TaskSlot {
    alignas(std::max_align_t) unsigned char storage[kInlineBytes];
    void (*invoke)(void*) = nullptr;
    void (*relocate)(void*, void*) = nullptr;
  };

  template <typename F>
  void enqueue(F&& f) {
    using Fn = std::remove_cvref_t<F>;
    std::unique_lock lock(mutex_);
    cv_space_.wait(lock, [this] { return count_ < ring_.size(); });
    TaskSlot& slot = ring_[(head_ + count_) % ring_.size()];
    if constexpr (sizeof(Fn) <= kInlineBytes &&
                  alignof(Fn) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      ::new (static_cast<void*>(slot.storage)) Fn(std::forward<F>(f));
      slot.invoke = [](void* p) {
        Fn* fn = static_cast<Fn*>(p);
        struct Guard {
          Fn* fn;
          ~Guard() { fn->~Fn(); }
        } guard{fn};
        (*fn)();
      };
      slot.relocate = [](void* dst, void* src) {
        Fn* from = static_cast<Fn*>(src);
        ::new (dst) Fn(std::move(*from));
        from->~Fn();
      };
    } else {
      // Oversized or throwing-move callable: box it (allocates — cold path).
      using Box = std::unique_ptr<Fn>;
      static_assert(sizeof(Box) <= kInlineBytes);
      ::new (static_cast<void*>(slot.storage))
          Box(std::make_unique<Fn>(std::forward<F>(f)));
      slot.invoke = [](void* p) {
        Box* box = static_cast<Box*>(p);
        struct Guard {
          Box* box;
          ~Guard() { box->~Box(); }
        } guard{box};
        (**box)();
      };
      slot.relocate = [](void* dst, void* src) {
        Box* from = static_cast<Box*>(src);
        ::new (dst) Box(std::move(*from));
        from->~Box();
      };
    }
    ++count_;
    lock.unlock();
    cv_.notify_one();
  }

  void worker_loop();

  std::vector<std::thread> workers_;
  std::vector<TaskSlot> ring_;
  std::size_t head_ = 0;   ///< index of the oldest queued task
  std::size_t count_ = 0;  ///< queued tasks
  std::mutex mutex_;
  std::condition_variable cv_;        ///< queued work available
  std::condition_variable cv_space_;  ///< ring slot freed
  bool stop_ = false;
};

}  // namespace rups::util
