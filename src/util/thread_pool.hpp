#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace rups::util {

/// Minimal fixed-size thread pool. Used to parallelize the SYN-point
/// double-sliding search across window positions (the O(mwk) hot path from
/// Sec. V-A of the paper) and for embarrassingly parallel experiment sweeps.
class ThreadPool {
 public:
  /// @param threads worker count; 0 means hardware_concurrency (min 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

  /// Enqueue a task; the returned future observes its completion/exception.
  std::future<void> submit(std::function<void()> task);

  /// Run fn(i) for i in [begin, end) across the pool, blocking until all
  /// iterations complete. Iterations are chunked contiguously. Exceptions
  /// propagate (first one wins).
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::packaged_task<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace rups::util
