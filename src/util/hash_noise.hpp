#pragma once

#include <cstdint>

#include "util/rng.hpp"

namespace rups::util {

/// Stateless, replayable noise: maps integer keys to deterministic
/// pseudo-random values. Used by the GSM field so that two passes over the
/// same road position (possibly minutes apart, possibly from different
/// vehicles) observe the SAME spatial component — the property the paper
/// calls "temporary stability" relies on this.
class HashNoise {
 public:
  explicit HashNoise(std::uint64_t seed) noexcept : seed_(seed) {}

  /// Uniform in [0, 1) for an integer key.
  [[nodiscard]] double uniform(std::int64_t key) const noexcept;
  /// Uniform in [0, 1) for a pair of integer keys.
  [[nodiscard]] double uniform2(std::int64_t k1, std::int64_t k2) const noexcept;
  /// Standard normal for an integer key (inverse-CDF approximation).
  [[nodiscard]] double gaussian(std::int64_t key) const noexcept;
  /// Standard normal for a pair of integer keys.
  [[nodiscard]] double gaussian2(std::int64_t k1, std::int64_t k2) const noexcept;

  [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }

 private:
  std::uint64_t seed_;
};

/// Inverse of the standard normal CDF (Acklam's rational approximation,
/// max relative error ~1.15e-9). Exposed for tests.
[[nodiscard]] double inverse_normal_cdf(double p) noexcept;

/// Smooth 1-D Gaussian-process-like field over a continuous coordinate,
/// built from hashed lattice values with cosine interpolation and summed
/// octaves. Deterministic in (seed, x): evaluating the same coordinate
/// twice yields the same value, which makes the simulated radio field
/// replayable across vehicles and across time.
///
/// The result is approximately N(0,1); correlation between two points decays
/// with |x1-x2| on the scale of `correlation_length`.
class LatticeField1D {
 public:
  /// @param seed                field identity
  /// @param correlation_length  distance (same unit as x) over which values
  ///                            decorrelate; must be > 0
  /// @param octaves             number of frequency octaves (>= 1); more
  ///                            octaves add fine detail below the base scale
  LatticeField1D(std::uint64_t seed, double correlation_length,
                 int octaves = 1) noexcept;

  /// Field value at coordinate x, approximately standard normal.
  [[nodiscard]] double value(double x) const noexcept;

  [[nodiscard]] double correlation_length() const noexcept {
    return correlation_length_;
  }

 private:
  [[nodiscard]] double octave_value(double x, int octave) const noexcept;

  HashNoise noise_;
  double correlation_length_;
  int octaves_;
  double amplitude_norm_;
};

}  // namespace rups::util
