#include "util/thread_pool.hpp"

#include <algorithm>
#include <exception>

namespace rups::util {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  ring_.resize(std::max<std::size_t>(256, threads * 8));
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              FunctionRef<void(std::size_t)> fn) {
  if (begin >= end) return;
  const std::size_t n = end - begin;
  const std::size_t chunks = std::min(n, std::max<std::size_t>(1, size()));
  const std::size_t chunk = (n + chunks - 1) / chunks;
  const std::size_t live = (n + chunk - 1) / chunk;  // non-empty chunks

  struct ChunkTask {
    std::size_t lo;
    std::size_t hi;
    FunctionRef<void(std::size_t)> fn;
    void operator()() {
      for (std::size_t i = lo; i < hi; ++i) fn(i);
    }
  };
  static_assert(sizeof(ChunkTask) <= kInlineBytes &&
                std::is_nothrow_move_constructible_v<ChunkTask>);

  std::vector<std::future<void>> joins;
  joins.reserve(live);
  for (std::size_t c = 0; c < live; ++c) {
    const std::size_t lo = begin + c * chunk;
    const std::size_t hi = std::min(end, lo + chunk);
    joins.push_back(submit(ChunkTask{lo, hi, fn}));
  }

  // Wait for every chunk even if an early one threw: tasks reference fn on
  // this stack frame, so returning before the pool drains them is UB.
  std::exception_ptr error;
  for (auto& join : joins) {
    try {
      join.get();
    } catch (...) {
      if (error == nullptr) error = std::current_exception();
    }
  }
  if (error != nullptr) std::rethrow_exception(error);
}

void ThreadPool::worker_loop() {
  for (;;) {
    TaskSlot local;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || count_ > 0; });
      if (count_ == 0) return;  // stop_ set and queue drained
      TaskSlot& slot = ring_[head_];
      slot.relocate(local.storage, slot.storage);
      local.invoke = slot.invoke;
      slot.invoke = nullptr;
      slot.relocate = nullptr;
      head_ = (head_ + 1) % ring_.size();
      --count_;
    }
    cv_space_.notify_one();
    local.invoke(local.storage);
  }
}

}  // namespace rups::util
