#pragma once

#include <cstddef>
#include <stdexcept>
#include <vector>

namespace rups::util {

/// Fixed-capacity ring buffer keeping the most recent `capacity` elements.
/// Index 0 is the OLDEST retained element; back() is the newest. RUPS keeps
/// only a bounded most-recent journey context per vehicle (Sec. V-A), which
/// this models.
template <typename T>
class RingBuffer {
 public:
  explicit RingBuffer(std::size_t capacity)
      : data_(capacity), capacity_(capacity) {
    if (capacity == 0) throw std::invalid_argument("RingBuffer capacity 0");
  }

  void push(T value) {
    data_[head_] = std::move(value);
    head_ = (head_ + 1) % capacity_;
    if (size_ < capacity_) ++size_;
  }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] bool full() const noexcept { return size_ == capacity_; }

  /// Oldest-first access; i in [0, size).
  const T& operator[](std::size_t i) const {
    return data_[(head_ + capacity_ - size_ + i) % capacity_];
  }
  T& operator[](std::size_t i) {
    return data_[(head_ + capacity_ - size_ + i) % capacity_];
  }

  const T& front() const { return (*this)[0]; }
  const T& back() const { return (*this)[size_ - 1]; }

  void clear() noexcept {
    size_ = 0;
    head_ = 0;
  }

  /// Copy out oldest-first into a vector (for serialization).
  [[nodiscard]] std::vector<T> to_vector() const {
    std::vector<T> out;
    out.reserve(size_);
    for (std::size_t i = 0; i < size_; ++i) out.push_back((*this)[i]);
    return out;
  }

 private:
  std::vector<T> data_;
  std::size_t capacity_;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
};

}  // namespace rups::util
