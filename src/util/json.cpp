#include "util/json.hpp"

#include <cctype>
#include <charconv>
#include <cstdio>
#include <stdexcept>

namespace rups::util {

std::string json_quote(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

namespace {

constexpr std::size_t kMaxDepth = 64;

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue v = parse_value(0);
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    throw std::runtime_error("json: " + why + " at offset " +
                             std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  char peek() {
    skip_ws();
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(const char* lit) {
    std::size_t n = 0;
    while (lit[n] != '\0') ++n;
    if (text_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }

  void append_utf8(std::string& out, unsigned code) {
    if (code < 0x80) {
      out += static_cast<char>(code);
    } else if (code < 0x800) {
      out += static_cast<char>(0xC0 | (code >> 6));
      out += static_cast<char>(0x80 | (code & 0x3F));
    } else {
      out += static_cast<char>(0xE0 | (code >> 12));
      out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (code & 0x3F));
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      char c = text_[pos_++];
      if (c == '"') break;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u escape digit");
          }
          append_utf8(out, code);  // surrogate pairs kept as-is (diagnostic use)
          break;
        }
        default: fail("unknown escape");
      }
    }
    return out;
  }

  double parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if ((c >= '0' && c <= '9') || c == '.' || c == 'e' || c == 'E' ||
          c == '+' || c == '-') {
        ++pos_;
      } else {
        break;
      }
    }
    double value = 0.0;
    const auto [end, ec] =
        std::from_chars(text_.data() + start, text_.data() + pos_, value);
    if (ec != std::errc() || end != text_.data() + pos_) fail("bad number");
    return value;
  }

  JsonValue parse_value(std::size_t depth) {
    if (depth > kMaxDepth) fail("nesting too deep");
    const char c = peek();
    if (c == '{') {
      ++pos_;
      JsonValue::Object obj;
      if (peek() == '}') {
        ++pos_;
        return JsonValue::make_object(std::move(obj));
      }
      while (true) {
        skip_ws();
        std::string key = parse_string();
        expect(':');
        obj.insert_or_assign(std::move(key), parse_value(depth + 1));
        const char next = peek();
        ++pos_;
        if (next == '}') break;
        if (next != ',') fail("expected ',' or '}' in object");
      }
      return JsonValue::make_object(std::move(obj));
    }
    if (c == '[') {
      ++pos_;
      JsonValue::Array arr;
      if (peek() == ']') {
        ++pos_;
        return JsonValue::make_array(std::move(arr));
      }
      while (true) {
        arr.push_back(parse_value(depth + 1));
        const char next = peek();
        ++pos_;
        if (next == ']') break;
        if (next != ',') fail("expected ',' or ']' in array");
      }
      return JsonValue::make_array(std::move(arr));
    }
    if (c == '"') return JsonValue::make_string(parse_string());
    skip_ws();
    if (consume_literal("true")) return JsonValue::make_bool(true);
    if (consume_literal("false")) return JsonValue::make_bool(false);
    if (consume_literal("null")) return JsonValue{};
    return JsonValue::make_number(parse_number());
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

JsonValue JsonValue::parse(const std::string& text) {
  return Parser(text).parse_document();
}

bool JsonValue::as_bool() const {
  if (kind_ != Kind::kBool) throw std::runtime_error("json: not a bool");
  return bool_;
}

double JsonValue::as_number() const {
  if (kind_ != Kind::kNumber) throw std::runtime_error("json: not a number");
  return number_;
}

const std::string& JsonValue::as_string() const {
  if (kind_ != Kind::kString) throw std::runtime_error("json: not a string");
  return string_;
}

const JsonValue::Array& JsonValue::as_array() const {
  if (kind_ != Kind::kArray) throw std::runtime_error("json: not an array");
  return *array_;
}

const JsonValue::Object& JsonValue::as_object() const {
  if (kind_ != Kind::kObject) throw std::runtime_error("json: not an object");
  return *object_;
}

const JsonValue* JsonValue::find(const std::string& key) const {
  if (kind_ != Kind::kObject) return nullptr;
  const auto it = object_->find(key);
  return it == object_->end() ? nullptr : &it->second;
}

const JsonValue* JsonValue::find_path(const std::string& dotted) const {
  const JsonValue* v = this;
  std::size_t start = 0;
  while (v != nullptr && start <= dotted.size()) {
    const std::size_t dot = dotted.find('.', start);
    const std::string key = dotted.substr(
        start, dot == std::string::npos ? std::string::npos : dot - start);
    v = v->find(key);
    if (dot == std::string::npos) break;
    start = dot + 1;
  }
  return v;
}

double JsonValue::number_or(const std::string& key, double fallback) const {
  const JsonValue* v = find(key);
  return v != nullptr && v->is_number() ? v->as_number() : fallback;
}

std::string JsonValue::string_or(const std::string& key,
                                 std::string fallback) const {
  const JsonValue* v = find(key);
  return v != nullptr && v->is_string() ? v->as_string()
                                        : std::move(fallback);
}

JsonValue JsonValue::make_bool(bool v) {
  JsonValue j;
  j.kind_ = Kind::kBool;
  j.bool_ = v;
  return j;
}

JsonValue JsonValue::make_number(double v) {
  JsonValue j;
  j.kind_ = Kind::kNumber;
  j.number_ = v;
  return j;
}

JsonValue JsonValue::make_string(std::string v) {
  JsonValue j;
  j.kind_ = Kind::kString;
  j.string_ = std::move(v);
  return j;
}

JsonValue JsonValue::make_array(Array v) {
  JsonValue j;
  j.kind_ = Kind::kArray;
  j.array_ = std::make_shared<Array>(std::move(v));
  return j;
}

JsonValue JsonValue::make_object(Object v) {
  JsonValue j;
  j.kind_ = Kind::kObject;
  j.object_ = std::make_shared<Object>(std::move(v));
  return j;
}

}  // namespace rups::util
