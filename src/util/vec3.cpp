#include "util/vec3.hpp"

namespace rups::util {

Mat3 Mat3::rotation(const Vec3& axis, double angle) {
  const Vec3 u = axis.normalized();
  const double c = std::cos(angle);
  const double s = std::sin(angle);
  const double t = 1.0 - c;
  Mat3 r;
  r.m = {c + u.x * u.x * t,       u.x * u.y * t - u.z * s, u.x * u.z * t + u.y * s,
         u.y * u.x * t + u.z * s, c + u.y * u.y * t,       u.y * u.z * t - u.x * s,
         u.z * u.x * t - u.y * s, u.z * u.y * t + u.x * s, c + u.z * u.z * t};
  return r;
}

Mat3 Mat3::from_euler(double yaw, double pitch, double roll) {
  const Mat3 rz = rotation({0, 0, 1}, yaw);
  const Mat3 ry = rotation({0, 1, 0}, pitch);
  const Mat3 rx = rotation({1, 0, 0}, roll);
  return rz * ry * rx;
}

Mat3 Mat3::operator*(const Mat3& o) const {
  Mat3 out;
  for (int r = 0; r < 3; ++r) {
    for (int c = 0; c < 3; ++c) {
      out.at(r, c) = row(r).dot(o.col(c));
    }
  }
  return out;
}

Mat3 Mat3::transpose() const {
  Mat3 out;
  for (int r = 0; r < 3; ++r) {
    for (int c = 0; c < 3; ++c) out.at(r, c) = at(c, r);
  }
  return out;
}

double Mat3::distance(const Mat3& o) const {
  double s = 0.0;
  for (int i = 0; i < 9; ++i) {
    const double d = m[i] - o.m[i];
    s += d * d;
  }
  return std::sqrt(s);
}

}  // namespace rups::util
