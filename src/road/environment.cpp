#include "road/environment.hpp"

#include <stdexcept>
#include <string>

namespace rups::road {

int lane_count(EnvironmentType env) noexcept {
  switch (env) {
    case EnvironmentType::kTwoLaneSuburb:
      return 2;
    case EnvironmentType::kFourLaneUrban:
      return 4;
    case EnvironmentType::kEightLaneUrban:
      return 8;
    case EnvironmentType::kUnderElevated:
      return 4;
    case EnvironmentType::kDowntown:
      return 4;
  }
  return 2;
}

Openness openness(EnvironmentType env) noexcept {
  switch (env) {
    case EnvironmentType::kTwoLaneSuburb:
      return Openness::kOpen;
    case EnvironmentType::kEightLaneUrban:
      return Openness::kOpen;
    case EnvironmentType::kFourLaneUrban:
      return Openness::kSemiOpen;
    case EnvironmentType::kDowntown:
      return Openness::kSemiOpen;
    case EnvironmentType::kUnderElevated:
      return Openness::kClose;
  }
  return Openness::kOpen;
}

std::string_view to_string(EnvironmentType env) noexcept {
  switch (env) {
    case EnvironmentType::kTwoLaneSuburb:
      return "2-lane-suburb";
    case EnvironmentType::kFourLaneUrban:
      return "4-lane-urban";
    case EnvironmentType::kEightLaneUrban:
      return "8-lane-urban";
    case EnvironmentType::kUnderElevated:
      return "under-elevated";
    case EnvironmentType::kDowntown:
      return "downtown";
  }
  return "unknown";
}

std::string_view to_string(Openness o) noexcept {
  switch (o) {
    case Openness::kOpen:
      return "open";
    case Openness::kSemiOpen:
      return "semi-open";
    case Openness::kClose:
      return "close";
  }
  return "unknown";
}

EnvironmentType environment_from_string(std::string_view name) {
  for (EnvironmentType env : kAllEnvironments) {
    if (to_string(env) == name) return env;
  }
  throw std::invalid_argument("unknown environment: " + std::string(name));
}

}  // namespace rups::road
