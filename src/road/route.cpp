#include "road/route.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace rups::road {

Point2 RoadSegment::point_at(double offset_m) const noexcept {
  return {start.x + offset_m * std::cos(heading_rad),
          start.y + offset_m * std::sin(heading_rad)};
}

Route::Route(std::vector<RoadSegment> segments)
    : segments_(std::move(segments)) {
  cumulative_.reserve(segments_.size());
  double s = 0.0;
  for (const auto& seg : segments_) {
    if (seg.length_m <= 0.0) {
      throw std::invalid_argument("Route: segment with non-positive length");
    }
    cumulative_.push_back(s);
    s += seg.length_m;
  }
  total_ = s;
}

double Route::segment_start(std::size_t i) const { return cumulative_.at(i); }

std::size_t Route::segment_index_at(double s) const {
  if (segments_.empty()) throw std::out_of_range("empty route");
  s = std::clamp(s, 0.0, total_);
  // upper_bound gives first cumulative start > s; the segment is before it.
  auto it = std::upper_bound(cumulative_.begin(), cumulative_.end(), s);
  std::size_t idx = static_cast<std::size_t>(it - cumulative_.begin());
  if (idx > 0) --idx;
  // s == total falls into the last segment.
  if (idx >= segments_.size()) idx = segments_.size() - 1;
  return idx;
}

RoutePose Route::pose_at(double s) const {
  if (segments_.empty()) throw std::out_of_range("empty route");
  s = std::clamp(s, 0.0, total_);
  const std::size_t idx = segment_index_at(s);
  const RoadSegment& seg = segments_[idx];
  const double offset = std::min(s - cumulative_[idx], seg.length_m);
  RoutePose pose;
  pose.position = seg.point_at(offset);
  pose.heading_rad = seg.heading_rad;
  pose.segment = seg.id;
  pose.segment_index = idx;
  pose.segment_offset_m = offset;
  pose.env = seg.env;
  return pose;
}

}  // namespace rups::road
