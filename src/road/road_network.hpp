#pragma once

#include <cstdint>
#include <vector>

#include "road/route.hpp"

namespace rups::road {

/// A flat collection of independent road segments, used by the Sec. III
/// empirical-study reproduction: the paper samples 200 surface road segments
/// across downtown / urban / suburban Shanghai and measures GSM power vectors
/// along each.
class RoadNetwork {
 public:
  /// Generate `count` independent segments of `length_m`, cycling through
  /// the given environment mix deterministically from the seed.
  static RoadNetwork generate(std::uint64_t seed, std::size_t count,
                              double length_m,
                              const std::vector<EnvironmentType>& mix);

  [[nodiscard]] const std::vector<RoadSegment>& segments() const noexcept {
    return segments_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return segments_.size(); }
  [[nodiscard]] const RoadSegment& segment(std::size_t i) const {
    return segments_.at(i);
  }

 private:
  std::vector<RoadSegment> segments_;
};

}  // namespace rups::road
