#pragma once

#include <cstdint>
#include <vector>

#include "road/environment.hpp"

namespace rups::road {

/// Identity of a physical road segment. Segments with the same id share the
/// same radio environment — the GSM field is keyed by (segment id, offset),
/// so re-driving a segment observes the same spatial fingerprint.
using SegmentId = std::uint64_t;

/// 2-D world point (metres, local tangent plane).
struct Point2 {
  double x = 0.0;
  double y = 0.0;
};

/// One straight road piece.
struct RoadSegment {
  SegmentId id = 0;
  EnvironmentType env = EnvironmentType::kFourLaneUrban;
  double length_m = 0.0;
  /// World position of the segment start and driving heading (radians,
  /// mathematical convention: 0 = +x, counter-clockwise positive).
  Point2 start{};
  double heading_rad = 0.0;

  [[nodiscard]] int lanes() const noexcept { return lane_count(env); }
  [[nodiscard]] Point2 point_at(double offset_m) const noexcept;
};

/// Pose of a point along a route, resolved from a route distance.
struct RoutePose {
  Point2 position{};
  double heading_rad = 0.0;
  SegmentId segment = 0;
  std::size_t segment_index = 0;
  double segment_offset_m = 0.0;
  EnvironmentType env = EnvironmentType::kFourLaneUrban;
};

/// An ordered chain of road segments. Segment geometry is laid out
/// end-to-end by the builder; the route answers distance → pose queries.
class Route {
 public:
  Route() = default;
  explicit Route(std::vector<RoadSegment> segments);

  [[nodiscard]] double total_length_m() const noexcept { return total_; }
  [[nodiscard]] const std::vector<RoadSegment>& segments() const noexcept {
    return segments_;
  }
  [[nodiscard]] bool empty() const noexcept { return segments_.empty(); }

  /// Pose at route distance s (clamped to [0, total]).
  [[nodiscard]] RoutePose pose_at(double s) const;

  /// Route distance at which segment i begins.
  [[nodiscard]] double segment_start(std::size_t i) const;

  /// Index of the segment containing route distance s.
  [[nodiscard]] std::size_t segment_index_at(double s) const;

 private:
  std::vector<RoadSegment> segments_;
  std::vector<double> cumulative_;  // cumulative_[i] = start distance of seg i
  double total_ = 0.0;
};

}  // namespace rups::road
