#include "road/road_network.hpp"

#include <stdexcept>

#include "util/rng.hpp"

namespace rups::road {

RoadNetwork RoadNetwork::generate(std::uint64_t seed, std::size_t count,
                                  double length_m,
                                  const std::vector<EnvironmentType>& mix) {
  if (mix.empty()) throw std::invalid_argument("RoadNetwork: empty mix");
  RoadNetwork net;
  net.segments_.reserve(count);
  util::Rng rng(util::hash_combine(seed, 0x4e4554ULL));  // "NET"
  for (std::size_t i = 0; i < count; ++i) {
    RoadSegment seg;
    seg.id = util::hash_combine(seed, 1000 + i);
    seg.env = mix[i % mix.size()];
    seg.length_m = length_m;
    // Scatter segments around a city-sized area so tower geometry differs.
    seg.start = {rng.uniform(-20'000.0, 20'000.0),
                 rng.uniform(-20'000.0, 20'000.0)};
    seg.heading_rad = rng.uniform(-3.141592653589793, 3.141592653589793);
    net.segments_.push_back(seg);
  }
  return net;
}

}  // namespace rups::road
