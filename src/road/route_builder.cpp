#include "road/route_builder.hpp"

#include <cmath>

#include "util/angle.hpp"

namespace rups::road {

RouteBuilder::RouteBuilder(std::uint64_t seed) noexcept : seed_(seed) {}

RouteBuilder& RouteBuilder::add_segment(EnvironmentType env, double length_m) {
  RoadSegment seg;
  seg.id = util::hash_combine(seed_, next_index_++);
  seg.env = env;
  seg.length_m = length_m;
  seg.start = cursor_;
  seg.heading_rad = heading_;
  cursor_ = seg.point_at(length_m);
  segments_.push_back(seg);
  return *this;
}

RouteBuilder& RouteBuilder::turn(double angle_rad) noexcept {
  heading_ = util::wrap_pi(heading_ + angle_rad);
  return *this;
}

Route RouteBuilder::build() {
  Route r(std::move(segments_));
  segments_.clear();
  cursor_ = {};
  heading_ = 0.0;
  return r;
}

Route make_evaluation_route(std::uint64_t seed, double total_length_m) {
  // Environment mix roughly matching the paper's route description: mostly
  // urban surface roads, some suburb stretches and short under-elevated
  // passages.
  struct MixEntry {
    EnvironmentType env;
    double weight;
    double min_len, max_len;
  };
  static constexpr MixEntry kMix[] = {
      {EnvironmentType::kTwoLaneSuburb, 0.20, 800.0, 2500.0},
      {EnvironmentType::kFourLaneUrban, 0.35, 500.0, 1500.0},
      {EnvironmentType::kEightLaneUrban, 0.30, 600.0, 2000.0},
      {EnvironmentType::kUnderElevated, 0.10, 300.0, 900.0},
      {EnvironmentType::kDowntown, 0.05, 300.0, 800.0},
  };

  util::Rng rng(util::hash_combine(seed, 0x524f555445ULL));  // "ROUTE"
  RouteBuilder builder(seed);
  double built = 0.0;
  while (built < total_length_m) {
    const double u = rng.uniform();
    double acc = 0.0;
    const MixEntry* chosen = &kMix[0];
    for (const auto& e : kMix) {
      acc += e.weight;
      if (u < acc) {
        chosen = &e;
        break;
      }
    }
    double len = rng.uniform(chosen->min_len, chosen->max_len);
    len = std::min(len, total_length_m - built);
    if (len < 50.0) len = total_length_m - built;  // absorb the remainder
    builder.add_segment(chosen->env, len);
    built += len;
    if (built < total_length_m) {
      // Urban grid: most transitions are straight-through or 90-degree turns.
      const double r = rng.uniform();
      if (r < 0.25) {
        builder.turn(util::deg2rad(90.0));
      } else if (r < 0.5) {
        builder.turn(util::deg2rad(-90.0));
      } else if (r < 0.6) {
        builder.turn(util::deg2rad(rng.uniform(-30.0, 30.0)));
      }
    }
  }
  return builder.build();
}

Route make_uniform_route(std::uint64_t seed, EnvironmentType env,
                         double length_m, double segment_length_m) {
  RouteBuilder builder(seed);
  double built = 0.0;
  while (built < length_m) {
    const double len = std::min(segment_length_m, length_m - built);
    builder.add_segment(env, len);
    built += len;
  }
  return builder.build();
}

}  // namespace rups::road
