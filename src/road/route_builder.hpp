#pragma once

#include <cstdint>

#include "road/route.hpp"
#include "util/rng.hpp"

namespace rups::road {

/// Incrementally constructs a Route: segments are chained end-to-end, each
/// new segment starting where the previous one ended, optionally with a turn.
/// Segment ids are derived deterministically from (builder seed, index) so a
/// route built twice from the same seed is the SAME physical road — the
/// property trace-driven replay depends on.
class RouteBuilder {
 public:
  explicit RouteBuilder(std::uint64_t seed) noexcept;

  /// Append a straight segment of the given environment and length.
  RouteBuilder& add_segment(EnvironmentType env, double length_m);

  /// Turn by `angle_rad` before the next segment (positive = left).
  RouteBuilder& turn(double angle_rad) noexcept;

  /// Finish; the builder can be reused afterwards (it resets).
  [[nodiscard]] Route build();

  [[nodiscard]] std::size_t segment_count() const noexcept {
    return segments_.size();
  }

 private:
  std::uint64_t seed_;
  std::size_t next_index_ = 0;
  Point2 cursor_{};
  double heading_ = 0.0;
  std::vector<RoadSegment> segments_;
};

/// Builds the paper's 97 km evaluation route (Sec. VI-A): a seeded mix of
/// open, semi-open and close roads — 2-lane suburb, 4-lane urban, 8-lane
/// urban and under-elevated stretches with turns between them.
[[nodiscard]] Route make_evaluation_route(std::uint64_t seed,
                                          double total_length_m = 97'000.0);

/// A single-environment route (used by per-environment experiments).
[[nodiscard]] Route make_uniform_route(std::uint64_t seed, EnvironmentType env,
                                       double length_m,
                                       double segment_length_m = 1'000.0);

}  // namespace rups::road
