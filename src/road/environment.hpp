#pragma once

#include <string_view>

namespace rups::road {

/// Road environment classes used throughout the paper's evaluation
/// (Sec. VI): 2-lane suburb surface roads, 4-lane urban surface roads,
/// 8-lane urban surface roads (major roads), and roads running under
/// elevated highways. Downtown is the densest variant used in the Sec. III
/// empirical study.
enum class EnvironmentType {
  kTwoLaneSuburb,
  kFourLaneUrban,
  kEightLaneUrban,
  kUnderElevated,
  kDowntown,
};

/// The paper's coarse openness classes (Sec. VI-A): open (8-lane major /
/// elevated / 2-lane suburban), semi-open (4-lane with buildings & trees),
/// close (under elevated roads).
enum class Openness { kOpen, kSemiOpen, kClose };

/// Number of lanes for each environment class.
[[nodiscard]] int lane_count(EnvironmentType env) noexcept;

/// Openness class for each environment.
[[nodiscard]] Openness openness(EnvironmentType env) noexcept;

/// Human-readable name (stable; used in CSV output and bench tables).
[[nodiscard]] std::string_view to_string(EnvironmentType env) noexcept;
[[nodiscard]] std::string_view to_string(Openness o) noexcept;

/// Parse the string produced by to_string; throws std::invalid_argument on
/// unknown names (trace CSV round-trip).
[[nodiscard]] EnvironmentType environment_from_string(std::string_view name);

/// All evaluation environments, in the order the paper reports them.
inline constexpr EnvironmentType kAllEnvironments[] = {
    EnvironmentType::kTwoLaneSuburb, EnvironmentType::kFourLaneUrban,
    EnvironmentType::kEightLaneUrban, EnvironmentType::kUnderElevated,
    EnvironmentType::kDowntown};

}  // namespace rups::road
