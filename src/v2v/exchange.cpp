#include "v2v/exchange.hpp"

#include <stdexcept>

namespace rups::v2v {

ExchangeSession::ExchangeSession(DsrcLink* link, std::uint32_t next_message_id)
    : link_(link), next_message_id_(next_message_id) {
  if (link_ == nullptr) {
    throw std::invalid_argument("ExchangeSession: null link");
  }
}

ExchangeResult ExchangeSession::run(std::vector<std::uint8_t> encoded) {
  // Frame, "transmit" (timing model), reassemble, decode. Framing and
  // reassembly run for real so the byte path is exercised end to end.
  const auto packets =
      WsmFraming::fragment(encoded, next_message_id_++,
                           link_->config().max_payload);
  const auto stats = link_->transfer(encoded.size());
  const auto reassembled = WsmFraming::reassemble(packets);
  if (!reassembled.has_value()) {
    throw std::runtime_error("ExchangeSession: reassembly failed");
  }
  ExchangeResult result{TrajectoryCodec::decode(*reassembled), stats};
  bytes_ += stats.payload_bytes;
  seconds_ += stats.duration_s;
  return result;
}

ExchangeResult ExchangeSession::exchange_full(
    const core::ContextTrajectory& sender) {
  return run(TrajectoryCodec::encode(sender));
}

ExchangeResult ExchangeSession::exchange_tail(
    const core::ContextTrajectory& sender, std::uint64_t since_metre) {
  return run(TrajectoryCodec::encode_tail(sender, since_metre));
}

}  // namespace rups::v2v
