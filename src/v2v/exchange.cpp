#include "v2v/exchange.hpp"

#include <stdexcept>

#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/recorder.hpp"
#include "obs/timer.hpp"

namespace rups::v2v {

namespace {

/// Sec. VI-E communication cost: every exchanged trajectory message, its
/// encoded payload bytes, and the WSM packet/retransmission volume.
struct ExchangeMetrics {
  obs::Counter& messages = obs::Registry::global().counter("v2v.messages");
  obs::Counter& bytes = obs::Registry::global().counter("v2v.payload_bytes");
  obs::Counter& packets = obs::Registry::global().counter("v2v.packets");
  obs::Counter& transmissions =
      obs::Registry::global().counter("v2v.transmissions");
  obs::Counter& transfer_us =
      obs::Registry::global().counter("v2v.transfer_time_us");
  obs::Histogram& exchange_us =
      obs::Registry::global().histogram("v2v.exchange_us");
};

ExchangeMetrics& exchange_metrics() {
  static ExchangeMetrics m;
  return m;
}

}  // namespace

ExchangeSession::ExchangeSession(DsrcLink* link, std::uint32_t next_message_id)
    : link_(link), next_message_id_(next_message_id) {
  if (link_ == nullptr) {
    throw std::invalid_argument("ExchangeSession: null link");
  }
}

ExchangeResult ExchangeSession::run(std::vector<std::uint8_t> encoded) {
  ExchangeMetrics& metrics = exchange_metrics();
  obs::ObsTimer timer(&metrics.exchange_us, "v2v.exchange");
  // Frame, "transmit" (timing model), reassemble, decode. Framing and
  // reassembly run for real so the byte path is exercised end to end.
  const auto packets =
      WsmFraming::fragment(encoded, next_message_id_++,
                           link_->config().max_payload);
  const auto stats = link_->transfer(encoded.size());
  const auto reassembled = WsmFraming::reassemble(packets);
  if (!reassembled.has_value()) {
    RUPS_LOG(kError) << "WSM reassembly failed: " << packets.size()
                     << " packets, " << encoded.size() << " payload bytes";
    throw std::runtime_error("ExchangeSession: reassembly failed");
  }
  ExchangeResult result{TrajectoryCodec::decode(*reassembled), stats};
  metrics.messages.inc();
  metrics.bytes.inc(stats.payload_bytes);
  metrics.packets.inc(stats.packets);
  metrics.transmissions.inc(stats.transmissions);
  metrics.transfer_us.inc(static_cast<std::uint64_t>(stats.duration_s * 1e6));
  bytes_ += stats.payload_bytes;
  seconds_ += stats.duration_s;
  obs::FlightRecorder& recorder = obs::FlightRecorder::global();
  recorder.record(obs::EventType::kExchangeSent, "v2v.exchange",
                  static_cast<double>(stats.payload_bytes),
                  static_cast<double>(stats.packets), stats.duration_s);
  recorder.record(obs::EventType::kExchangeReceived, "v2v.exchange",
                  static_cast<double>(stats.payload_bytes),
                  static_cast<double>(result.trajectory.size()));
  return result;
}

ExchangeResult ExchangeSession::exchange_full(
    const core::ContextTrajectory& sender) {
  return run(TrajectoryCodec::encode(sender));
}

ExchangeResult ExchangeSession::exchange_tail(
    const core::ContextTrajectory& sender, std::uint64_t since_metre) {
  return run(TrajectoryCodec::encode_tail(sender, since_metre));
}

}  // namespace rups::v2v
