#include "v2v/exchange.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>
#include <vector>

#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/recorder.hpp"
#include "obs/timer.hpp"

namespace rups::v2v {

namespace {

/// Sec. VI-E communication cost: every exchanged trajectory message, its
/// encoded payload bytes, the WSM packet/retransmission volume, and the
/// delivery outcome split used by the fault-sweep gates.
struct ExchangeMetrics {
  obs::Counter& messages = obs::Registry::global().counter("v2v.messages");
  obs::Counter& bytes = obs::Registry::global().counter("v2v.payload_bytes");
  obs::Counter& packets = obs::Registry::global().counter("v2v.packets");
  obs::Counter& transmissions =
      obs::Registry::global().counter("v2v.transmissions");
  obs::Counter& transfer_us =
      obs::Registry::global().counter("v2v.transfer_time_us");
  obs::Histogram& exchange_us =
      obs::Registry::global().histogram("v2v.exchange_us");
  obs::Counter& delivered =
      obs::Registry::global().counter("v2v.delivery.delivered");
  obs::Counter& degraded =
      obs::Registry::global().counter("v2v.delivery.degraded");
  obs::Counter& failed =
      obs::Registry::global().counter("v2v.delivery.failed");
  obs::Counter& rounds = obs::Registry::global().counter("v2v.delivery.rounds");
  obs::Counter& fragments_lost =
      obs::Registry::global().counter("v2v.delivery.fragments_lost");
  obs::Counter& metres_salvaged =
      obs::Registry::global().counter("v2v.delivery.metres_salvaged");
  obs::Histogram& arq_round_us =
      obs::Registry::global().histogram("v2v.arq_round_us");
  /// Labeled view of the delivery split ("delivered"/"degraded"/"failed"):
  /// one family the windowed series and telemetry_report break down by.
  obs::CounterFamily& outcomes = obs::Registry::global().counter_family(
      "v2v.delivery_outcome", "outcome");
};

ExchangeMetrics& exchange_metrics() {
  static ExchangeMetrics m;
  return m;
}

constexpr std::size_t kCodecHeader = 4 + 2 + 4 + 8;

}  // namespace

const char* exchange_outcome_name(ExchangeOutcome o) noexcept {
  switch (o) {
    case ExchangeOutcome::kDelivered: return "delivered";
    case ExchangeOutcome::kDegraded: return "degraded";
    case ExchangeOutcome::kFailed: return "failed";
  }
  return "unknown";
}

ExchangeSession::ExchangeSession(DsrcLink* link, std::uint32_t next_message_id)
    : ExchangeSession(link, nullptr, ExchangeConfig{}, next_message_id) {}

ExchangeSession::ExchangeSession(DsrcLink* link, FaultyChannel* channel,
                                 ExchangeConfig config,
                                 std::uint32_t next_message_id)
    : link_(link),
      channel_(channel),
      config_(config),
      next_message_id_(next_message_id) {
  if (link_ == nullptr) {
    throw std::invalid_argument("ExchangeSession: null link");
  }
}

ExchangeResult ExchangeSession::run(std::vector<std::uint8_t> encoded,
                                    std::size_t channels) {
  ExchangeMetrics& metrics = exchange_metrics();
  obs::ObsTimer timer(&metrics.exchange_us, "v2v.exchange");

  const std::uint32_t msg_id = next_message_id_++;
  const std::size_t max_payload = link_->config().max_payload;
  const auto fragments = WsmFraming::fragment(encoded, msg_id, max_payload);
  const std::size_t total = fragments.size();
  const std::size_t mac_budget =
      std::max<std::size_t>(1, link_->config().max_transmissions);
  const std::size_t max_rounds = std::max<std::size_t>(1, config_.max_rounds);

  ExchangeResult result{core::ContextTrajectory(std::max<std::size_t>(1, channels), 1),
                        DsrcLink::TransferStats{}};
  result.stats.payload_bytes = encoded.size();
  result.stats.packets = total;
  result.fragments_expected = total;

  // Selective-repeat ARQ: each round re-offers the fragments the receiver
  // has not validated yet. The MAC layer (DsrcLink) retries each offered
  // fragment up to its own budget; the channel then applies packet faults.
  std::vector<char> received_flag(total, 0);
  std::vector<WsmPacket> received;
  received.reserve(total);
  std::size_t received_count = 0;
  double elapsed = 0.0;
  bool deadline_hit = false;

  auto accept = [&](std::vector<WsmPacket>&& arrivals) {
    for (WsmPacket& p : arrivals) {
      if (p.message_id != msg_id) continue;  // stale reordered packet
      if (!WsmFraming::validate(p) || p.total != total || p.seq >= total) {
        continue;  // truncated/corrupted — dropped, will be re-offered
      }
      if (received_flag[p.seq]) continue;  // duplicate
      received_flag[p.seq] = 1;
      ++received_count;
      received.push_back(std::move(p));
    }
  };

  std::size_t round = 0;
  while (received_count < total && round < max_rounds && !deadline_hit) {
    // Each selective-repeat round is its own child span of "v2v.exchange",
    // so retry storms are visible per round in the trace.
    obs::ObsTimer round_timer(&metrics.arq_round_us, "v2v.arq_round");
    if (round > 0) {
      const double backoff = std::min(
          config_.backoff_cap_s,
          config_.backoff_base_s *
              std::pow(config_.backoff_factor,
                       static_cast<double>(round - 1)));
      elapsed += backoff;
    }
    ++round;
    std::vector<WsmPacket> burst;
    for (std::size_t i = 0; i < total; ++i) {
      if (received_flag[i]) continue;
      if (config_.deadline_s > 0.0 && elapsed >= config_.deadline_s) {
        deadline_hit = true;
        break;
      }
      bool mac_delivered = false;
      for (std::size_t attempt = 0; attempt < mac_budget; ++attempt) {
        ++result.stats.transmissions;
        const DsrcLink::Attempt a = link_->attempt_packet();
        elapsed += a.elapsed_s;
        if (a.delivered) {
          mac_delivered = true;
          break;
        }
      }
      if (mac_delivered) burst.push_back(fragments[i]);
    }
    if (channel_ != nullptr) {
      accept(channel_->transmit(std::move(burst)));
      if (received_count < total) accept(channel_->flush());
    } else {
      accept(std::move(burst));
    }
  }
  result.stats.duration_s = elapsed;
  result.stats.packets_lost = total - received_count;
  result.stats.delivered = received_count == total;
  result.fragments_received = received_count;
  result.rounds = round;

  obs::FlightRecorder& recorder = obs::FlightRecorder::global();
  const char* fail_reason = nullptr;
  if (received_count == total) {
    const auto reassembled = WsmFraming::reassemble(received);
    if (reassembled.has_value()) {
      try {
        result.trajectory = TrajectoryCodec::decode(*reassembled);
        result.outcome = ExchangeOutcome::kDelivered;
        result.metres_expected = result.trajectory.size();
        result.metres_received = result.trajectory.size();
      } catch (const std::invalid_argument&) {
        fail_reason = "v2v.failed.decode";
      }
    } else {
      fail_reason = "v2v.failed.reassembly";
    }
  } else if (!received.empty() && received_flag[0]) {
    // Salvage: records are fixed-size, so the best contiguous run of
    // received fragments (header from fragment 0) decodes into whole
    // metres. Runs are scored by usable record bytes — equivalent to
    // complete-record count up to one record of rounding.
    std::size_t best_lo = 0, best_hi = 0, best_bytes = 0;
    std::size_t i = 0;
    while (i < total) {
      if (!received_flag[i]) {
        ++i;
        continue;
      }
      std::size_t j = i;
      while (j < total && received_flag[j]) ++j;
      const std::size_t lo = i * max_payload;
      const std::size_t hi = std::min(encoded.size(), j * max_payload);
      // Penalize the header-bearing run by the header bytes it spends.
      const std::size_t usable =
          hi - lo - (lo < kCodecHeader ? std::min(kCodecHeader - lo, hi - lo) : 0);
      if (usable > best_bytes) {
        best_bytes = usable;
        best_lo = lo;
        best_hi = hi;
      }
      i = j;
    }
    auto salvaged =
        TrajectoryCodec::decode_region(encoded, best_lo, best_hi);
    if (salvaged.has_value()) {
      result.metres_expected = salvaged->metres_total;
      result.metres_received = salvaged->trajectory.size();
      result.outcome = ExchangeOutcome::kDegraded;
      result.detail = best_lo == 0 ? "v2v.degraded.prefix" : "v2v.degraded.tail";
      result.trajectory = std::move(salvaged->trajectory);
      metrics.metres_salvaged.inc(result.metres_received);
      recorder.record(obs::EventType::kExchangeDegraded, result.detail,
                      static_cast<double>(result.metres_received),
                      static_cast<double>(result.metres_expected),
                      static_cast<double>(total - received_count));
    } else {
      fail_reason = "v2v.failed.no_records";
    }
  } else {
    fail_reason =
        received.empty() ? "v2v.failed.nothing_received" : "v2v.failed.no_header";
  }
  if (fail_reason != nullptr) {
    result.outcome = ExchangeOutcome::kFailed;
    result.detail = fail_reason;
    recorder.record(obs::EventType::kExchangeFailed, fail_reason,
                    static_cast<double>(received_count),
                    static_cast<double>(total), elapsed);
    RUPS_LOG(kWarn) << "v2v exchange failed (" << fail_reason << "): "
                    << received_count << "/" << total << " fragments after "
                    << round << " rounds";
  }

  metrics.messages.inc();
  metrics.bytes.inc(result.stats.payload_bytes);
  metrics.packets.inc(result.stats.packets);
  metrics.transmissions.inc(result.stats.transmissions);
  metrics.transfer_us.inc(
      static_cast<std::uint64_t>(result.stats.duration_s * 1e6));
  metrics.rounds.inc(result.rounds);
  metrics.fragments_lost.inc(result.stats.packets_lost);
  switch (result.outcome) {
    case ExchangeOutcome::kDelivered: metrics.delivered.inc(); break;
    case ExchangeOutcome::kDegraded: metrics.degraded.inc(); break;
    case ExchangeOutcome::kFailed: metrics.failed.inc(); break;
  }
  metrics.outcomes.with(exchange_outcome_name(result.outcome)).inc();
  bytes_ += result.stats.payload_bytes;
  seconds_ += result.stats.duration_s;
  recorder.record(obs::EventType::kExchangeSent, "v2v.exchange",
                  static_cast<double>(result.stats.payload_bytes),
                  static_cast<double>(result.stats.packets),
                  result.stats.duration_s);
  recorder.record(obs::EventType::kExchangeReceived, "v2v.exchange",
                  static_cast<double>(result.stats.payload_bytes),
                  static_cast<double>(result.trajectory.size()));
  return result;
}

ExchangeResult ExchangeSession::exchange_full(
    const core::ContextTrajectory& sender) {
  return run(TrajectoryCodec::encode(sender), sender.channels());
}

ExchangeResult ExchangeSession::exchange_tail(
    const core::ContextTrajectory& sender, std::uint64_t since_metre) {
  return run(TrajectoryCodec::encode_tail(sender, since_metre),
             sender.channels());
}

}  // namespace rups::v2v
