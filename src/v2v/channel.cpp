#include "v2v/channel.hpp"

#include <cstring>
#include <string_view>
#include <utility>

namespace rups::v2v {

FaultConfig FaultConfig::clean() { return FaultConfig{}; }

FaultConfig FaultConfig::urban() {
  FaultConfig c;
  // Stationary bad-state probability 0.02/(0.02+0.35) ~= 0.054 at 80% loss
  // in the fade plus 0.5% residual loss in the clear: ~4.8% average loss in
  // ~3-packet bursts — the paper's urban-canyon operating point.
  c.burst_loss = true;
  c.loss_rate = 0.005;
  c.p_good_to_bad = 0.02;
  c.p_bad_to_good = 0.35;
  c.loss_rate_bad = 0.8;
  c.reorder_rate = 0.02;
  c.reorder_span = 3;
  c.duplicate_rate = 0.01;
  c.bit_flip_rate = 0.005;
  c.truncate_rate = 0.002;
  return c;
}

FaultConfig FaultConfig::tunnel() {
  FaultConfig c;
  // Symmetric slow chain: half the time in a deep fade losing 95% of
  // packets, in ~20-packet bursts; survivors are often damaged.
  c.burst_loss = true;
  c.loss_rate = 0.02;
  c.p_good_to_bad = 0.05;
  c.p_bad_to_good = 0.05;
  c.loss_rate_bad = 0.95;
  c.truncate_rate = 0.02;
  c.bit_flip_rate = 0.02;
  return c;
}

FaultConfig FaultConfig::congested() {
  FaultConfig c;
  // Queue drops are closer to independent; the dominant impairment is
  // reordering and duplication from contention-driven MAC retries.
  c.loss_rate = 0.1;
  c.reorder_rate = 0.3;
  c.reorder_span = 5;
  c.duplicate_rate = 0.05;
  c.bit_flip_rate = 0.01;
  return c;
}

FaultConfig FaultConfig::iid(double rate) {
  FaultConfig c;
  c.loss_rate = rate;
  return c;
}

FaultConfig FaultConfig::by_name(const char* name) {
  const std::string_view n = name == nullptr ? std::string_view{} : name;
  if (n == "urban") return urban();
  if (n == "tunnel") return tunnel();
  if (n == "congested") return congested();
  return clean();
}

FaultyChannel::FaultyChannel(std::uint64_t seed, FaultConfig config)
    : config_(config), rng_(util::hash_combine(seed, 0x464c5459ULL)) {}

bool FaultyChannel::drop_next() {
  if (config_.burst_loss) {
    if (bad_state_) {
      if (rng_.bernoulli(config_.p_bad_to_good)) bad_state_ = false;
    } else {
      if (rng_.bernoulli(config_.p_good_to_bad)) bad_state_ = true;
    }
  }
  const double p = bad_state_ ? config_.loss_rate_bad : config_.loss_rate;
  return rng_.bernoulli(p);
}

void FaultyChannel::impair(WsmPacket& packet) {
  if (config_.truncate_rate > 0.0 && !packet.payload.empty() &&
      rng_.bernoulli(config_.truncate_rate)) {
    const std::size_t keep =
        static_cast<std::size_t>(
        rng_.uniform_int(0, static_cast<std::int64_t>(packet.payload.size()) - 1));
    packet.payload.resize(keep);
    ++stats_.truncated;
  }
  if (config_.bit_flip_rate > 0.0 && !packet.payload.empty() &&
      rng_.bernoulli(config_.bit_flip_rate)) {
    const std::size_t byte = static_cast<std::size_t>(rng_.uniform_int(
        0, static_cast<std::int64_t>(packet.payload.size()) - 1));
    const std::size_t bit = static_cast<std::size_t>(rng_.uniform_int(0, 7));
    packet.payload[byte] ^= static_cast<std::uint8_t>(1u << bit);
    ++stats_.corrupted;
  }
}

std::vector<WsmPacket> FaultyChannel::transmit(std::vector<WsmPacket> burst) {
  std::vector<WsmPacket> out;
  out.reserve(burst.size() + held_.size());

  auto release_due = [&]() {
    for (std::size_t i = 0; i < held_.size();) {
      if (held_[i].delay == 0) {
        out.push_back(std::move(held_[i].packet));
        ++stats_.delivered;
        held_.erase(held_.begin() + static_cast<long>(i));
      } else {
        --held_[i].delay;
        ++i;
      }
    }
  };

  for (WsmPacket& p : burst) {
    ++stats_.offered;
    if (drop_next()) {
      ++stats_.lost;
      release_due();
      continue;
    }
    impair(p);
    if (config_.duplicate_rate > 0.0 && rng_.bernoulli(config_.duplicate_rate)) {
      out.push_back(p);
      ++stats_.delivered;
      ++stats_.duplicated;
    }
    if (config_.reorder_rate > 0.0 && rng_.bernoulli(config_.reorder_rate)) {
      const std::size_t span = config_.reorder_span == 0 ? 1 : config_.reorder_span;
      held_.push_back(Held{std::move(p),
                          1 + static_cast<std::size_t>(rng_.uniform_int(
                                  0, static_cast<std::int64_t>(span) - 1))});
      ++stats_.reordered;
    } else {
      out.push_back(std::move(p));
      ++stats_.delivered;
    }
    release_due();
  }
  return out;
}

std::vector<WsmPacket> FaultyChannel::flush() {
  std::vector<WsmPacket> out;
  out.reserve(held_.size());
  for (Held& h : held_) {
    out.push_back(std::move(h.packet));
    ++stats_.delivered;
  }
  held_.clear();
  return out;
}

}  // namespace rups::v2v
