#include "v2v/wsm.hpp"

#include <algorithm>
#include <stdexcept>

namespace rups::v2v {

namespace {

constexpr std::uint32_t kFnvOffset = 0x811c9dc5u;
constexpr std::uint32_t kFnvPrime = 0x01000193u;

inline void fnv_byte(std::uint32_t& h, std::uint8_t b) noexcept {
  h ^= b;
  h *= kFnvPrime;
}

inline void fnv_u32(std::uint32_t& h, std::uint32_t v) noexcept {
  fnv_byte(h, static_cast<std::uint8_t>(v & 0xffu));
  fnv_byte(h, static_cast<std::uint8_t>((v >> 8) & 0xffu));
  fnv_byte(h, static_cast<std::uint8_t>((v >> 16) & 0xffu));
  fnv_byte(h, static_cast<std::uint8_t>((v >> 24) & 0xffu));
}

}  // namespace

std::size_t WsmFraming::packet_count(std::size_t payload_bytes,
                                     std::size_t max_payload) {
  if (max_payload == 0) return 0;
  return (payload_bytes + max_payload - 1) / max_payload;
}

std::uint32_t WsmFraming::checksum(const WsmPacket& packet) noexcept {
  std::uint32_t h = kFnvOffset;
  fnv_u32(h, packet.message_id);
  fnv_u32(h, static_cast<std::uint32_t>(packet.seq) |
                 (static_cast<std::uint32_t>(packet.total) << 16));
  fnv_u32(h, static_cast<std::uint32_t>(packet.payload.size()));
  for (std::uint8_t b : packet.payload) fnv_byte(h, b);
  return h;
}

bool WsmFraming::validate(const WsmPacket& packet) noexcept {
  if (packet.total == 0 || packet.seq >= packet.total) return false;
  return packet.crc == checksum(packet);
}

std::vector<WsmPacket> WsmFraming::fragment(
    const std::vector<std::uint8_t>& payload, std::uint32_t message_id,
    std::size_t max_payload) {
  std::vector<WsmPacket> out;
  if (payload.empty() || max_payload == 0) return out;
  const std::size_t total = packet_count(payload.size(), max_payload);
  if (total > kMaxFragments) {
    throw std::length_error(
        "WsmFraming::fragment: payload needs more fragments than the 16-bit "
        "seq/total fields can address");
  }
  out.reserve(total);
  for (std::size_t i = 0; i < total; ++i) {
    WsmPacket p;
    p.message_id = message_id;
    p.seq = static_cast<std::uint16_t>(i);
    p.total = static_cast<std::uint16_t>(total);
    const std::size_t lo = i * max_payload;
    const std::size_t hi = std::min(payload.size(), lo + max_payload);
    p.payload.assign(payload.begin() + static_cast<long>(lo),
                     payload.begin() + static_cast<long>(hi));
    p.crc = checksum(p);
    out.push_back(std::move(p));
  }
  return out;
}

std::optional<std::vector<std::uint8_t>> WsmFraming::reassemble(
    const std::vector<WsmPacket>& packets) {
  if (packets.empty()) return std::nullopt;
  const std::uint32_t id = packets.front().message_id;
  const std::uint16_t total = packets.front().total;
  if (total == 0) return std::nullopt;

  std::vector<const WsmPacket*> slots(total, nullptr);
  for (const WsmPacket& p : packets) {
    if (p.message_id != id || p.total != total) return std::nullopt;
    if (p.seq >= total) return std::nullopt;
    if (!validate(p)) return std::nullopt;  // truncated or corrupted
    if (slots[p.seq] == nullptr) slots[p.seq] = &p;
  }
  std::vector<std::uint8_t> out;
  for (std::uint16_t i = 0; i < total; ++i) {
    if (slots[i] == nullptr) return std::nullopt;  // missing fragment
    out.insert(out.end(), slots[i]->payload.begin(), slots[i]->payload.end());
  }
  return out;
}

}  // namespace rups::v2v
