#include "v2v/receiver.hpp"

#include <algorithm>

namespace rups::v2v {

V2vReceiver::V2vReceiver(std::size_t channels, std::size_t capacity_m)
    : received(std::max<std::size_t>(1, channels),
               std::max<std::size_t>(1, capacity_m)) {}

bool V2vReceiver::ingest(const v2v::ExchangeResult& result,
                         bool full_exchange) {
  if (!result.usable()) {
    // Nothing decodable arrived. A failed tail keeps the watermark, so the
    // next round re-requests the same metres; a failed full just retries.
    if (full_exchange) have_full = false;
    return false;
  }
  const std::uint64_t before_end =
      received.empty() ? 0 : received.first_metre() + received.size();
  if (!received.splice_tail(result.trajectory)) {
    const auto& region = result.trajectory;
    const std::uint64_t region_end =
        region.empty() ? 0 : region.first_metre() + region.size();
    if (full_exchange && region_end > before_end) {
      // A salvaged full transfer that does not connect to the stale cache
      // (the prefix was lost) but reaches PAST it is authoritative for the
      // newest metres: start over from the decoded region.
      received = core::ContextTrajectory(received.channels(),
                                         received.capacity_m());
      (void)received.splice_tail(result.trajectory);
    } else {
      // Either a tail with a gap, or a degraded full whose salvaged region
      // is entirely older than what we already hold. Keep the cache AND the
      // watermark: adopting an older salvage would regress synced_metre and
      // discard metres we already verified — under back-to-back degraded
      // outcomes the re-request must keep starting from the original
      // watermark, not from wherever the last salvage happened to end.
      have_full = false;
      return false;
    }
  }
  have_full = !received.empty();
  if (!received.empty()) {
    synced_metre = received.first_metre() + received.size();
  }
  // Gained metres = the END moved, not the size: a tail spliced into a
  // full window keeps size() constant while the window advances.
  const std::uint64_t after_end =
      received.empty() ? 0 : received.first_metre() + received.size();
  return after_end != before_end || full_exchange;
}

}  // namespace rups::v2v
