#pragma once

#include <cstdint>
#include <vector>

#include "core/types.hpp"

namespace rups::v2v {

/// Wire format for context-aware trajectories exchanged over DSRC.
///
/// Layout (little-endian):
///   header: magic u32, channels u16, metres u32, first_metre u64
///   per metre:
///     heading  i16   (rad * 10430.378..., full circle in 16 bits)
///     time     u32   (centiseconds)
///     states   ceil(channels/4) bytes (2 bits per channel)
///     rssi     channels bytes (RXLEV-style: dBm + 128 clamped to u8;
///              missing channels carry 0)
///
/// With the paper's 115 evaluation channels one metre costs
/// 2 + 4 + 29 + 115 = 150 bytes, i.e. ~150 KB per km of journey context —
/// the same order as the paper's 182 KB/km figure (Sec. V-B).
class TrajectoryCodec {
 public:
  /// Serialize the whole trajectory.
  [[nodiscard]] static std::vector<std::uint8_t> encode(
      const core::ContextTrajectory& trajectory);

  /// Serialize only metres with odometer index >= since_metre — the
  /// incremental update used after a SYN lock (Sec. V-B scalability).
  [[nodiscard]] static std::vector<std::uint8_t> encode_tail(
      const core::ContextTrajectory& trajectory, std::uint64_t since_metre);

  /// Reconstruct a trajectory (capacity = received length). Throws
  /// std::invalid_argument on malformed input.
  [[nodiscard]] static core::ContextTrajectory decode(
      const std::vector<std::uint8_t>& bytes);

  /// Exact encoded size for a trajectory of `metres` x `channels`.
  [[nodiscard]] static std::size_t encoded_size(std::size_t metres,
                                                std::size_t channels) noexcept;

  static constexpr std::uint32_t kMagic = 0x52555053;  // "RUPS"

 private:
  static constexpr double kHeadingScale = 32767.0 / 3.14159265358979;
};

}  // namespace rups::v2v
