#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "core/types.hpp"

namespace rups::v2v {

/// Wire format for context-aware trajectories exchanged over DSRC.
///
/// Layout (little-endian):
///   header: magic u32, channels u16, metres u32, first_metre u64
///   per metre:
///     heading  i16   (rad * 10430.378..., full circle in 16 bits)
///     time     u32   (centiseconds)
///     states   ceil(channels/4) bytes (2 bits per channel)
///     rssi     channels bytes (RXLEV-style: dBm + 128 clamped to u8;
///              missing channels carry 0)
///
/// With the paper's 115 evaluation channels one metre costs
/// 2 + 4 + 29 + 115 = 150 bytes, i.e. ~150 KB per km of journey context —
/// the same order as the paper's 182 KB/km figure (Sec. V-B).
class TrajectoryCodec {
 public:
  /// Serialize the whole trajectory.
  [[nodiscard]] static std::vector<std::uint8_t> encode(
      const core::ContextTrajectory& trajectory);

  /// Serialize only metres with odometer index >= since_metre — the
  /// incremental update used after a SYN lock (Sec. V-B scalability).
  [[nodiscard]] static std::vector<std::uint8_t> encode_tail(
      const core::ContextTrajectory& trajectory, std::uint64_t since_metre);

  /// Reconstruct a trajectory (capacity = received length). Throws
  /// std::invalid_argument on malformed input.
  [[nodiscard]] static core::ContextTrajectory decode(
      const std::vector<std::uint8_t>& bytes);

  /// Exact encoded size for a trajectory of `metres` x `channels`.
  [[nodiscard]] static std::size_t encoded_size(std::size_t metres,
                                                std::size_t channels) noexcept;

  /// Salvage decode of a partially-received encoding. `bytes` is the
  /// full-size buffer with the header (first 18 bytes) intact and only
  /// [valid_begin, valid_end) known-good; per-metre records are fixed-size,
  /// so every record wholly inside the valid region decodes cleanly.
  struct SalvagedRegion {
    core::ContextTrajectory trajectory;  ///< the contiguous decodable metres
    std::size_t metres_total = 0;        ///< metre count the header promised
  };
  /// Returns nullopt when the header is malformed or the region contains no
  /// complete record. Never throws on missing data — this is the degraded
  /// path of the exchange protocol.
  [[nodiscard]] static std::optional<SalvagedRegion> decode_region(
      const std::vector<std::uint8_t>& bytes, std::size_t valid_begin,
      std::size_t valid_end);

  static constexpr std::uint32_t kMagic = 0x52555053;  // "RUPS"

 private:
  static constexpr double kHeadingScale = 32767.0 / 3.14159265358979;
};

}  // namespace rups::v2v
