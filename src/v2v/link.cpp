#include "v2v/link.hpp"

#include <algorithm>

namespace rups::v2v {

DsrcLink::DsrcLink(std::uint64_t seed) : DsrcLink(seed, Config{}) {}

DsrcLink::DsrcLink(std::uint64_t seed, Config config)
    : config_(config), rng_(util::hash_combine(seed, 0x4453524bULL)) {}

DsrcLink::Attempt DsrcLink::attempt_packet() {
  Attempt a;
  if (!rng_.bernoulli(config_.loss_rate)) {
    a.delivered = true;
    a.elapsed_s =
        std::max(0.0, config_.rtt_s + rng_.gaussian(0.0, config_.rtt_jitter_s));
  } else {
    a.elapsed_s = config_.retransmit_timeout_s;
  }
  return a;
}

DsrcLink::TransferStats DsrcLink::transfer(std::size_t payload_bytes) {
  TransferStats stats;
  stats.payload_bytes = payload_bytes;
  if (payload_bytes == 0 || config_.max_payload == 0) return stats;
  stats.packets =
      (payload_bytes + config_.max_payload - 1) / config_.max_payload;
  const std::size_t budget = std::max<std::size_t>(1, config_.max_transmissions);
  for (std::size_t p = 0; p < stats.packets; ++p) {
    bool got_through = false;
    for (std::size_t attempt = 0; attempt < budget; ++attempt) {
      ++stats.transmissions;
      const Attempt a = attempt_packet();
      stats.duration_s += a.elapsed_s;
      if (a.delivered) {
        got_through = true;
        break;
      }
    }
    if (!got_through) {
      ++stats.packets_lost;
      stats.delivered = false;
    }
  }
  return stats;
}

}  // namespace rups::v2v
