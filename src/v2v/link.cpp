#include "v2v/link.hpp"

#include <algorithm>

namespace rups::v2v {

DsrcLink::DsrcLink(std::uint64_t seed) : DsrcLink(seed, Config{}) {}

DsrcLink::DsrcLink(std::uint64_t seed, Config config)
    : config_(config), rng_(util::hash_combine(seed, 0x4453524bULL)) {}

DsrcLink::TransferStats DsrcLink::transfer(std::size_t payload_bytes) {
  TransferStats stats;
  stats.payload_bytes = payload_bytes;
  if (payload_bytes == 0 || config_.max_payload == 0) return stats;
  stats.packets =
      (payload_bytes + config_.max_payload - 1) / config_.max_payload;
  for (std::size_t p = 0; p < stats.packets; ++p) {
    for (;;) {
      ++stats.transmissions;
      if (!rng_.bernoulli(config_.loss_rate)) {
        stats.duration_s +=
            std::max(0.0, config_.rtt_s +
                              rng_.gaussian(0.0, config_.rtt_jitter_s));
        break;
      }
      stats.duration_s += config_.retransmit_timeout_s;
    }
  }
  return stats;
}

}  // namespace rups::v2v
