#pragma once

#include <cstdint>

#include "core/types.hpp"
#include "v2v/exchange.hpp"

namespace rups::v2v {

/// Receiver-side view of one neighbour's trajectory, maintained across
/// exchanges: splices delivered/degraded updates onto a cached copy, tracks
/// the sync watermark, and falls back to a full transfer when a failed
/// exchange leaves a gap. Shared by the campaign/fleet simulators and the
/// streaming BeaconSession (src/stream).
struct V2vReceiver {
  core::ContextTrajectory received;
  std::uint64_t synced_metre = 0;
  /// False until a usable full context arrived (or after a gap forced a
  /// re-transfer); drives the full-vs-tail decision.
  bool have_full = false;

  V2vReceiver(std::size_t channels, std::size_t capacity_m);

  /// Fold one exchange outcome into the cached copy. `full_exchange` says
  /// whether the sender encoded its whole context (vs a tail update).
  /// Returns true when the cached copy gained metres (the window END
  /// advanced — at capacity the size stays constant while metres arrive).
  /// Gap bookkeeping is idempotent: a degraded outcome whose salvaged
  /// region does not extend past the cache keeps both the cache and
  /// `synced_metre`, so back-to-back kDegraded exchanges re-request from
  /// the original watermark instead of regressing it.
  bool ingest(const v2v::ExchangeResult& result, bool full_exchange);
};

}  // namespace rups::v2v
