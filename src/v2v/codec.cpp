#include "v2v/codec.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/angle.hpp"

namespace rups::v2v {

namespace {

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v & 0xff));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}
void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}
void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

class Reader {
 public:
  explicit Reader(const std::vector<std::uint8_t>& bytes) : bytes_(bytes) {}

  std::uint8_t u8() {
    check(1);
    return bytes_[pos_++];
  }
  std::uint16_t u16() {
    check(2);
    const std::uint16_t v = static_cast<std::uint16_t>(
        bytes_[pos_] | (bytes_[pos_ + 1] << 8));
    pos_ += 2;
    return v;
  }
  std::uint32_t u32() {
    check(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(bytes_[pos_ + i]) << (8 * i);
    pos_ += 4;
    return v;
  }
  std::uint64_t u64() {
    check(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(bytes_[pos_ + i]) << (8 * i);
    pos_ += 8;
    return v;
  }
  [[nodiscard]] bool exhausted() const { return pos_ == bytes_.size(); }

 private:
  void check(std::size_t n) const {
    if (pos_ + n > bytes_.size()) {
      throw std::invalid_argument("TrajectoryCodec: truncated input");
    }
  }
  const std::vector<std::uint8_t>& bytes_;
  std::size_t pos_ = 0;
};

std::size_t state_bytes(std::size_t channels) { return (channels + 3) / 4; }

}  // namespace

std::size_t TrajectoryCodec::encoded_size(std::size_t metres,
                                          std::size_t channels) noexcept {
  constexpr std::size_t header = 4 + 2 + 4 + 8;
  const std::size_t per_metre = 2 + 4 + state_bytes(channels) + channels;
  return header + metres * per_metre;
}

std::vector<std::uint8_t> TrajectoryCodec::encode(
    const core::ContextTrajectory& trajectory) {
  return encode_tail(trajectory, trajectory.first_metre());
}

std::vector<std::uint8_t> TrajectoryCodec::encode_tail(
    const core::ContextTrajectory& trajectory, std::uint64_t since_metre) {
  const std::size_t channels = trajectory.channels();
  std::size_t start_index = 0;
  if (since_metre > trajectory.first_metre()) {
    start_index = std::min<std::size_t>(
        trajectory.size(),
        static_cast<std::size_t>(since_metre - trajectory.first_metre()));
  }
  const std::size_t metres = trajectory.size() - start_index;

  std::vector<std::uint8_t> out;
  out.reserve(encoded_size(metres, channels));
  put_u32(out, kMagic);
  put_u16(out, static_cast<std::uint16_t>(channels));
  put_u32(out, static_cast<std::uint32_t>(metres));
  put_u64(out, trajectory.first_metre() + start_index);

  for (std::size_t i = start_index; i < trajectory.size(); ++i) {
    const core::GeoSample& geo = trajectory.geo(i);
    const core::PowerVector& pv = trajectory.power(i);
    const double wrapped = util::wrap_pi(geo.heading_rad);
    const auto heading =
        static_cast<std::int16_t>(std::lround(wrapped * kHeadingScale));
    put_u16(out, static_cast<std::uint16_t>(heading));
    put_u32(out, static_cast<std::uint32_t>(
                     std::lround(std::max(0.0, geo.time_s) * 100.0)));

    // 2-bit channel states, 4 per byte.
    for (std::size_t base = 0; base < channels; base += 4) {
      std::uint8_t packed = 0;
      for (std::size_t k = 0; k < 4 && base + k < channels; ++k) {
        packed |= static_cast<std::uint8_t>(
                      static_cast<std::uint8_t>(pv.state(base + k)) & 0x3)
                  << (2 * k);
      }
      out.push_back(packed);
    }
    // RSSI bytes: dBm + 128, clamped into [0, 255].
    for (std::size_t c = 0; c < channels; ++c) {
      if (pv.usable(c)) {
        const double shifted = std::clamp(
            std::round(static_cast<double>(pv.at(c)) + 128.0), 0.0, 255.0);
        out.push_back(static_cast<std::uint8_t>(shifted));
      } else {
        out.push_back(0);
      }
    }
  }
  return out;
}

core::ContextTrajectory TrajectoryCodec::decode(
    const std::vector<std::uint8_t>& bytes) {
  Reader r(bytes);
  if (r.u32() != kMagic) {
    throw std::invalid_argument("TrajectoryCodec: bad magic");
  }
  const std::size_t channels = r.u16();
  const std::size_t metres = r.u32();
  const std::uint64_t first_metre = r.u64();
  if (channels == 0) {
    throw std::invalid_argument("TrajectoryCodec: zero channels");
  }
  // Validate BEFORE allocating: a corrupted header must not drive a huge
  // reservation (found by fuzzing: std::bad_alloc on mutated inputs).
  if (bytes.size() != encoded_size(metres, channels)) {
    throw std::invalid_argument("TrajectoryCodec: size mismatch");
  }

  core::ContextTrajectory out(channels, std::max<std::size_t>(1, metres));
  // Reproduce the sender's odometer indexing: pre-roll first_metre appends
  // is wasteful, so the capacity-bounded trajectory simply starts at the
  // sender's first metre via dummy eviction-free bookkeeping — we rebuild by
  // appending `metres` entries and rely on first_metre alignment below.
  std::vector<std::uint8_t> states(state_bytes(channels));
  for (std::size_t i = 0; i < metres; ++i) {
    core::GeoSample geo;
    const auto heading_raw = static_cast<std::int16_t>(r.u16());
    geo.heading_rad = static_cast<double>(heading_raw) / kHeadingScale;
    geo.time_s = static_cast<double>(r.u32()) / 100.0;

    for (auto& b : states) b = r.u8();
    core::PowerVector pv(channels);
    std::vector<std::uint8_t> rssi(channels);
    for (std::size_t c = 0; c < channels; ++c) rssi[c] = r.u8();
    for (std::size_t c = 0; c < channels; ++c) {
      const auto state = static_cast<core::ChannelState>(
          (states[c / 4] >> (2 * (c % 4))) & 0x3);
      if (state != core::ChannelState::kMissing) {
        pv.set(c, static_cast<float>(static_cast<double>(rssi[c]) - 128.0),
               state);
      }
    }
    out.append(geo, std::move(pv));
  }
  if (!r.exhausted()) {
    throw std::invalid_argument("TrajectoryCodec: trailing bytes");
  }
  // Align odometer indexing with the sender's.
  out.rebase(first_metre);
  return out;
}

std::optional<TrajectoryCodec::SalvagedRegion> TrajectoryCodec::decode_region(
    const std::vector<std::uint8_t>& bytes, std::size_t valid_begin,
    std::size_t valid_end) {
  constexpr std::size_t kHeader = 4 + 2 + 4 + 8;
  if (bytes.size() < kHeader) return std::nullopt;

  // Parse the header by hand: decode()'s Reader throws on malformed input,
  // but salvage must degrade, not propagate.
  auto u16_at = [&](std::size_t p) {
    return static_cast<std::uint16_t>(bytes[p] | (bytes[p + 1] << 8));
  };
  auto u32_at = [&](std::size_t p) {
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
      v |= static_cast<std::uint32_t>(bytes[p + i]) << (8 * i);
    return v;
  };
  auto u64_at = [&](std::size_t p) {
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
      v |= static_cast<std::uint64_t>(bytes[p + i]) << (8 * i);
    return v;
  };
  if (u32_at(0) != kMagic) return std::nullopt;
  const std::size_t channels = u16_at(4);
  const std::size_t metres = u32_at(6);
  const std::uint64_t first_metre = u64_at(10);
  if (channels == 0 || metres == 0) return std::nullopt;
  if (bytes.size() != encoded_size(metres, channels)) return std::nullopt;

  const std::size_t per_metre = 2 + 4 + state_bytes(channels) + channels;
  const std::size_t data_lo = std::max(valid_begin, kHeader);
  const std::size_t data_hi = std::min(valid_end, bytes.size());
  if (data_hi <= data_lo) return std::nullopt;
  // First record fully inside the region, one past the last.
  const std::size_t r0 = (data_lo - kHeader + per_metre - 1) / per_metre;
  const std::size_t r1 = (data_hi - kHeader) / per_metre;
  if (r1 <= r0) return std::nullopt;

  // Re-frame the surviving records as a complete encoding and reuse the
  // strict decoder — the salvage path cannot drift from the normal one.
  std::vector<std::uint8_t> synthetic;
  synthetic.reserve(encoded_size(r1 - r0, channels));
  put_u32(synthetic, kMagic);
  put_u16(synthetic, static_cast<std::uint16_t>(channels));
  put_u32(synthetic, static_cast<std::uint32_t>(r1 - r0));
  put_u64(synthetic, first_metre + r0);
  synthetic.insert(synthetic.end(),
                   bytes.begin() + static_cast<long>(kHeader + r0 * per_metre),
                   bytes.begin() + static_cast<long>(kHeader + r1 * per_metre));
  return SalvagedRegion{decode(synthetic), metres};
}

}  // namespace rups::v2v
