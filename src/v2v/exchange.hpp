#pragma once

#include <cstddef>
#include <cstdint>

#include "core/types.hpp"
#include "v2v/channel.hpp"
#include "v2v/codec.hpp"
#include "v2v/link.hpp"
#include "v2v/wsm.hpp"

namespace rups::v2v {

/// How an exchange ended.
enum class ExchangeOutcome : std::uint8_t {
  kDelivered,  ///< every fragment arrived; full trajectory decoded
  kDegraded,   ///< a decodable contiguous region (prefix/tail/mid) arrived
  kFailed,     ///< nothing decodable arrived
};

[[nodiscard]] const char* exchange_outcome_name(ExchangeOutcome o) noexcept;

/// Retry policy of one exchange. The per-packet MAC budget lives in
/// DsrcLink::Config::max_transmissions; this bounds the protocol level:
/// how many selective-repeat rounds re-offer the still-missing fragments,
/// with exponential backoff between rounds, under one session deadline in
/// simulated link time.
struct ExchangeConfig {
  std::size_t max_rounds = 4;
  double deadline_s = 5.0;       ///< simulated seconds; <= 0 disables
  double backoff_base_s = 0.01;  ///< wait before round 2
  double backoff_factor = 2.0;
  double backoff_cap_s = 0.16;
};

/// One completed trajectory exchange: the decoded receiver-side context
/// (what actually survived the channel — possibly a subset of what was
/// sent), the communication cost, and the delivery outcome. `trajectory`
/// is empty when outcome == kFailed.
struct ExchangeResult {
  core::ContextTrajectory trajectory;
  DsrcLink::TransferStats stats;
  ExchangeOutcome outcome = ExchangeOutcome::kDelivered;
  std::size_t fragments_expected = 0;
  std::size_t fragments_received = 0;
  std::size_t metres_expected = 0;  ///< metres the sender encoded
  std::size_t metres_received = 0;  ///< metres decoded on the receiver
  std::size_t rounds = 0;           ///< ARQ rounds actually run
  /// Static label describing a non-delivered outcome ("v2v.degraded.tail",
  /// "v2v.failed.no_header", ...); nullptr when delivered.
  const char* detail = nullptr;

  [[nodiscard]] bool usable() const noexcept {
    return outcome != ExchangeOutcome::kFailed;
  }
};

/// Orchestrates trajectory exchange between two vehicles over a DsrcLink:
/// full-context transfers for initial queries, incremental tail updates
/// once a SYN point is locked (the Sec. V-B scalability strategy).
///
/// The transfer is a real packet protocol: the encoded payload is WSM-
/// fragmented, each fragment rides the link's MAC model and then an
/// optional FaultyChannel (loss/reorder/duplication/corruption); fragments
/// that fail CRC validation are dropped and re-offered in bounded
/// selective-repeat rounds. Whatever fragments survive are decoded —
/// completely (kDelivered), as a contiguous salvaged region (kDegraded),
/// or not at all (kFailed). Exchange never throws on channel faults.
class ExchangeSession {
 public:
  explicit ExchangeSession(DsrcLink* link, std::uint32_t next_message_id = 1);
  ExchangeSession(DsrcLink* link, FaultyChannel* channel,
                  ExchangeConfig config = {}, std::uint32_t next_message_id = 1);

  /// Send a full journey context across the link.
  [[nodiscard]] ExchangeResult exchange_full(
      const core::ContextTrajectory& sender);

  /// Send only metres at or beyond `since_metre`; the receiver is expected
  /// to splice them onto its cached copy (returned trajectory holds just
  /// the tail).
  [[nodiscard]] ExchangeResult exchange_tail(
      const core::ContextTrajectory& sender, std::uint64_t since_metre);

  /// Total bytes and seconds spent in this session so far.
  [[nodiscard]] std::size_t total_bytes() const noexcept { return bytes_; }
  [[nodiscard]] double total_seconds() const noexcept { return seconds_; }
  [[nodiscard]] const ExchangeConfig& config() const noexcept {
    return config_;
  }

 private:
  ExchangeResult run(std::vector<std::uint8_t> encoded, std::size_t channels);

  DsrcLink* link_;
  FaultyChannel* channel_;  ///< optional; nullptr = ideal channel
  ExchangeConfig config_;
  std::uint32_t next_message_id_;
  std::size_t bytes_ = 0;
  double seconds_ = 0.0;
};

}  // namespace rups::v2v
