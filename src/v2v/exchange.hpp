#pragma once

#include <cstdint>
#include <optional>

#include "core/types.hpp"
#include "v2v/codec.hpp"
#include "v2v/link.hpp"
#include "v2v/wsm.hpp"

namespace rups::v2v {

/// One completed trajectory exchange: the decoded neighbour context plus
/// the communication cost that delivered it.
struct ExchangeResult {
  core::ContextTrajectory trajectory;
  DsrcLink::TransferStats stats;
};

/// Orchestrates trajectory exchange between two vehicles over a DsrcLink:
/// full-context transfers for initial queries, incremental tail updates
/// once a SYN point is locked (the Sec. V-B scalability strategy).
class ExchangeSession {
 public:
  ExchangeSession(DsrcLink* link, std::uint32_t next_message_id = 1);

  /// Send a full journey context across the link.
  [[nodiscard]] ExchangeResult exchange_full(
      const core::ContextTrajectory& sender);

  /// Send only metres at or beyond `since_metre`; the receiver is expected
  /// to splice them onto its cached copy (returned trajectory holds just
  /// the tail).
  [[nodiscard]] ExchangeResult exchange_tail(
      const core::ContextTrajectory& sender, std::uint64_t since_metre);

  /// Total bytes and seconds spent in this session so far.
  [[nodiscard]] std::size_t total_bytes() const noexcept { return bytes_; }
  [[nodiscard]] double total_seconds() const noexcept { return seconds_; }

 private:
  ExchangeResult run(std::vector<std::uint8_t> encoded);

  DsrcLink* link_;
  std::uint32_t next_message_id_;
  std::size_t bytes_ = 0;
  double seconds_ = 0.0;
};

}  // namespace rups::v2v
