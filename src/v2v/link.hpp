#pragma once

#include <cstdint>

#include "util/rng.hpp"

namespace rups::v2v {

/// Timing/reliability model of a DSRC (802.11p) unicast exchange. The paper
/// measured an average WSM round-trip of ~4 ms, giving 130 packets / 1 km
/// context ~= 0.52 s (Sec. V-B). Each packet is delivered with probability
/// (1 - loss_rate); a lost packet is retransmitted after a timeout.
class DsrcLink {
 public:
  struct Config {
    double rtt_s = 0.004;
    double rtt_jitter_s = 0.0005;
    double loss_rate = 0.0;
    double retransmit_timeout_s = 0.02;
    std::size_t max_payload = 1400;
  };

  explicit DsrcLink(std::uint64_t seed);
  DsrcLink(std::uint64_t seed, Config config);

  struct TransferStats {
    std::size_t payload_bytes = 0;
    std::size_t packets = 0;          ///< unique packets
    std::size_t transmissions = 0;    ///< including retransmissions
    double duration_s = 0.0;
  };

  /// Simulate transferring `payload_bytes` as a stop-and-wait sequence of
  /// WSM packets (the paper's accounting).
  [[nodiscard]] TransferStats transfer(std::size_t payload_bytes);

  [[nodiscard]] const Config& config() const noexcept { return config_; }

 private:
  Config config_;
  util::Rng rng_;
};

}  // namespace rups::v2v
