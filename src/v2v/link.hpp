#pragma once

#include <cstddef>
#include <cstdint>

#include "util/rng.hpp"

namespace rups::v2v {

/// Timing/reliability model of a DSRC (802.11p) unicast exchange. The paper
/// measured an average WSM round-trip of ~4 ms, giving 130 packets / 1 km
/// context ~= 0.52 s (Sec. V-B). Each packet is delivered with probability
/// (1 - loss_rate); a lost packet is retransmitted after a timeout, at most
/// max_transmissions times — a saturated link (loss_rate = 1.0) therefore
/// terminates with a delivery failure instead of spinning forever.
class DsrcLink {
 public:
  struct Config {
    double rtt_s = 0.004;
    double rtt_jitter_s = 0.0005;
    double loss_rate = 0.0;
    double retransmit_timeout_s = 0.02;
    std::size_t max_payload = 1400;
    /// Per-packet transmission budget (first attempt + retries). At the
    /// default 16 a packet survives loss rates well past the paper's urban
    /// measurements (p_fail = loss^16), while loss_rate >= 1.0 gives up
    /// after 16 * retransmit_timeout_s of simulated time.
    std::size_t max_transmissions = 16;
  };

  explicit DsrcLink(std::uint64_t seed);
  DsrcLink(std::uint64_t seed, Config config);

  struct TransferStats {
    std::size_t payload_bytes = 0;
    std::size_t packets = 0;          ///< unique packets
    std::size_t transmissions = 0;    ///< including retransmissions
    std::size_t packets_lost = 0;     ///< packets that exhausted the budget
    bool delivered = true;            ///< every packet got through
    double duration_s = 0.0;
  };

  /// One MAC-level attempt for one packet: draws the loss coin and either
  /// the delivery latency (rtt + jitter) or the retransmit timeout. The
  /// exchange protocol composes these into ARQ rounds; transfer() composes
  /// them into the paper's stop-and-wait accounting. Draw order (bernoulli,
  /// then gaussian on success) is the determinism contract for seeded runs.
  struct Attempt {
    bool delivered = false;
    double elapsed_s = 0.0;
  };
  [[nodiscard]] Attempt attempt_packet();

  /// Simulate transferring `payload_bytes` as a stop-and-wait sequence of
  /// WSM packets (the paper's accounting). Packets that exhaust the
  /// per-packet transmission budget are reported via packets_lost /
  /// delivered rather than retried forever.
  [[nodiscard]] TransferStats transfer(std::size_t payload_bytes);

  [[nodiscard]] const Config& config() const noexcept { return config_; }

 private:
  Config config_;
  util::Rng rng_;
};

}  // namespace rups::v2v
