#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/rng.hpp"
#include "v2v/wsm.hpp"

namespace rups::v2v {

/// Packet-level fault model for an 802.11p/DSRC channel, applied to actual
/// WsmPacket streams (not just timing). Covers the impairments the VANET
/// literature evaluates against: independent (i.i.d.) loss, Gilbert-Elliott
/// burst loss, reordering, duplication, truncation, and bit-flip corruption.
/// All draws come from one seeded util::Rng, so every run is replayable.
struct FaultConfig {
  /// Loss probability while the Gilbert-Elliott chain is in the GOOD state
  /// (with burst_loss = false this is the plain i.i.d. loss rate).
  double loss_rate = 0.0;

  /// Two-state Gilbert-Elliott burst loss. Expected burst length is
  /// 1 / p_bad_to_good packets; the stationary bad-state probability is
  /// p_good_to_bad / (p_good_to_bad + p_bad_to_good).
  bool burst_loss = false;
  double p_good_to_bad = 0.0;
  double p_bad_to_good = 1.0;
  double loss_rate_bad = 0.0;

  /// Per-delivered-packet probabilities of the remaining impairments.
  double duplicate_rate = 0.0;
  /// A reordered packet is delayed by up to reorder_span positions.
  double reorder_rate = 0.0;
  std::size_t reorder_span = 4;
  /// Truncation chops the payload to a random strict prefix.
  double truncate_rate = 0.0;
  /// Corruption flips one random bit of the payload.
  double bit_flip_rate = 0.0;

  /// --- Named profiles (CampaignConfig.fault, bench_fault_sweep) ---

  /// Ideal channel: every packet arrives intact, in order, exactly once.
  [[nodiscard]] static FaultConfig clean();
  /// Urban canyon (paper Sec. VI-E): ~5% average loss concentrated in short
  /// fading bursts, occasional reordering and corruption.
  [[nodiscard]] static FaultConfig urban();
  /// Tunnel / deep fade: long loss bursts approaching half the packets,
  /// plus truncation and corruption of what does arrive.
  [[nodiscard]] static FaultConfig tunnel();
  /// Congested channel: moderate queue-drop loss with heavy reordering and
  /// duplication from MAC retries.
  [[nodiscard]] static FaultConfig congested();
  /// Plain i.i.d. loss at `rate` with no other impairment (sweep curves).
  [[nodiscard]] static FaultConfig iid(double rate);
  /// Look up a profile by name ("clean", "urban", "tunnel", "congested");
  /// returns clean() for unknown names.
  [[nodiscard]] static FaultConfig by_name(const char* name);
};

/// Applies a FaultConfig to bursts of WSM packets. The channel is stateful:
/// the Gilbert-Elliott chain and the reorder delay-line persist across
/// transmit() calls, so a burst that ends inside a fade keeps fading at the
/// start of the next retransmission round.
class FaultyChannel {
 public:
  explicit FaultyChannel(std::uint64_t seed, FaultConfig config = {});

  /// Push a burst of packets through the channel, returning what the
  /// receiver sees: survivors (possibly corrupted/truncated/duplicated) in
  /// channel order. Packets held back for reordering are released into a
  /// later burst; flush() drains them at end of session.
  [[nodiscard]] std::vector<WsmPacket> transmit(std::vector<WsmPacket> burst);

  /// Release any packets still held in the reorder delay-line.
  [[nodiscard]] std::vector<WsmPacket> flush();

  struct Stats {
    std::size_t offered = 0;     ///< packets pushed into the channel
    std::size_t delivered = 0;   ///< packets handed to the receiver
    std::size_t lost = 0;
    std::size_t duplicated = 0;
    std::size_t reordered = 0;
    std::size_t truncated = 0;
    std::size_t corrupted = 0;
  };
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }
  [[nodiscard]] const FaultConfig& config() const noexcept { return config_; }
  /// Swap the impairment profile mid-session (fault scripting: outage →
  /// recovery scenarios). Chain state and the reorder delay-line persist
  /// across the swap, like driving out of a tunnel mid-fade.
  void set_config(FaultConfig config) noexcept { config_ = config; }

 private:
  /// One loss coin, advancing the Gilbert-Elliott chain when enabled.
  [[nodiscard]] bool drop_next();
  /// Apply truncation / bit-flip impairments in place.
  void impair(WsmPacket& packet);

  FaultConfig config_;
  util::Rng rng_;
  bool bad_state_ = false;
  /// Reorder delay-line: packet + remaining positions to hold it back.
  struct Held {
    WsmPacket packet;
    std::size_t delay;
  };
  std::vector<Held> held_;
  Stats stats_;
};

}  // namespace rups::v2v
