#pragma once

#include <cstdint>
#include <optional>
#include <vector>

namespace rups::v2v {

/// One WAVE Short Message fragment. The paper's implementation uses
/// 802.11p WSM packets with a maximum payload of 1400 bytes (Sec. V-B).
struct WsmPacket {
  std::uint32_t message_id = 0;  ///< groups fragments of one payload
  std::uint16_t seq = 0;         ///< fragment index
  std::uint16_t total = 0;       ///< fragment count
  std::vector<std::uint8_t> payload;
};

/// Splits an application payload into WSM fragments and reassembles them.
class WsmFraming {
 public:
  static constexpr std::size_t kMaxPayload = 1400;

  /// Fragment a payload; `message_id` tags all fragments.
  [[nodiscard]] static std::vector<WsmPacket> fragment(
      const std::vector<std::uint8_t>& payload, std::uint32_t message_id,
      std::size_t max_payload = kMaxPayload);

  /// Number of packets a payload needs.
  [[nodiscard]] static std::size_t packet_count(
      std::size_t payload_bytes, std::size_t max_payload = kMaxPayload);

  /// Reassemble fragments (any order, duplicates tolerated). Returns
  /// nullopt when fragments are missing or inconsistent.
  [[nodiscard]] static std::optional<std::vector<std::uint8_t>> reassemble(
      const std::vector<WsmPacket>& packets);
};

}  // namespace rups::v2v
