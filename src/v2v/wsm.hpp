#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

namespace rups::v2v {

/// One WAVE Short Message fragment. The paper's implementation uses
/// 802.11p WSM packets with a maximum payload of 1400 bytes (Sec. V-B).
/// `crc` integrity-protects the header fields and payload so a receiver
/// can reject corrupted/truncated fragments (the radio's FCS equivalent).
struct WsmPacket {
  std::uint32_t message_id = 0;  ///< groups fragments of one payload
  std::uint16_t seq = 0;         ///< fragment index
  std::uint16_t total = 0;       ///< fragment count
  std::uint32_t crc = 0;         ///< checksum over header fields + payload
  std::vector<std::uint8_t> payload;
};

/// Splits an application payload into WSM fragments and reassembles them.
class WsmFraming {
 public:
  static constexpr std::size_t kMaxPayload = 1400;
  /// seq/total are 16-bit on the wire; larger payloads must be rejected
  /// rather than silently truncated into colliding fragment indices.
  static constexpr std::size_t kMaxFragments = 65535;

  /// Fragment a payload; `message_id` tags all fragments. Every fragment
  /// carries a valid `crc`. Throws std::length_error when the payload
  /// needs more than kMaxFragments fragments.
  [[nodiscard]] static std::vector<WsmPacket> fragment(
      const std::vector<std::uint8_t>& payload, std::uint32_t message_id,
      std::size_t max_payload = kMaxPayload);

  /// Number of packets a payload needs.
  [[nodiscard]] static std::size_t packet_count(
      std::size_t payload_bytes, std::size_t max_payload = kMaxPayload);

  /// Checksum over a fragment's header fields and payload (FNV-1a).
  [[nodiscard]] static std::uint32_t checksum(const WsmPacket& packet) noexcept;

  /// Structurally sound and uncorrupted: total != 0, seq < total, crc
  /// matches. A truncated or bit-flipped fragment fails this check.
  [[nodiscard]] static bool validate(const WsmPacket& packet) noexcept;

  /// Reassemble fragments (any order, duplicates tolerated). Returns
  /// nullopt when fragments are missing, inconsistent, or fail validate().
  [[nodiscard]] static std::optional<std::vector<std::uint8_t>> reassemble(
      const std::vector<WsmPacket>& packets);
};

}  // namespace rups::v2v
