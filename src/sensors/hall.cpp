#include "sensors/hall.hpp"

#include <cmath>

namespace rups::sensors {

HallWheelSensor::HallWheelSensor(std::uint64_t seed)
    : HallWheelSensor(seed, Config{}) {}

HallWheelSensor::HallWheelSensor(std::uint64_t seed, Config config)
    : config_(config) {
  util::Rng rng(util::hash_combine(seed, 0x48414c4cULL));  // "HALL"
  const double err = rng.uniform(-config_.calibration_error,
                                 config_.calibration_error);
  assumed_circumference_m_ = config_.true_circumference_m * (1.0 + err);
}

void HallWheelSensor::advance(double true_distance_m) noexcept {
  const auto revs = static_cast<std::uint64_t>(
      std::floor(true_distance_m / config_.true_circumference_m));
  if (revs > pulses_) pulses_ = revs;
}

double HallWheelSensor::distance_m() const noexcept {
  return static_cast<double>(pulses_) * assumed_circumference_m_;
}

}  // namespace rups::sensors
