#pragma once

#include <cstddef>

#include "util/vec3.hpp"

namespace rups::sensors {

/// One inertial sample in the SENSOR frame (the phone's mounting frame,
/// generally misaligned with the vehicle — RUPS reorients it, Sec. IV-B).
struct ImuSample {
  double time_s = 0.0;
  util::Vec3 accel_mps2{};  ///< specific force (includes gravity reaction)
  util::Vec3 gyro_rps{};    ///< angular rate
  util::Vec3 mag_ut{};      ///< magnetic field, microtesla
};

/// One speed report (OBD-II PID 0x0D style).
struct SpeedSample {
  double time_s = 0.0;
  double speed_mps = 0.0;
};

/// One GPS fix in world coordinates; `valid` is false during outages
/// (urban canyon / under elevated roads).
struct GpsFix {
  double time_s = 0.0;
  double x_m = 0.0;
  double y_m = 0.0;
  bool valid = false;
};

/// One completed GSM channel dwell.
struct RssiMeasurement {
  double time_s = 0.0;
  std::size_t channel_index = 0;  ///< index into the scanner's ChannelPlan
  double rssi_dbm = 0.0;          ///< RXLEV-quantized received level
  int radio = 0;                  ///< which physical radio measured it
};

}  // namespace rups::sensors
