#pragma once

#include <cstdint>

#include "sensors/types.hpp"
#include "util/rng.hpp"
#include "util/vec3.hpp"
#include "vehicle/kinematics.hpp"

namespace rups::sensors {

/// Smartphone-grade IMU + magnetometer model, sampled at ~200 Hz (the rate
/// the paper quotes for motion sensors).
///
/// Vehicle frame convention (Han et al. [31], which the paper adopts):
/// x = right, y = forward, z = up. The sensor is mounted with an arbitrary
/// fixed rotation relative to the vehicle; samples are reported in the
/// SENSOR frame, and it is the job of core::Reorientation to undo this.
class ImuModel {
 public:
  struct Config {
    double sample_rate_hz = 200.0;
    double accel_noise_mps2 = 0.03;
    double gyro_noise_rps = 0.002;
    double mag_noise_ut = 0.4;
    util::Vec3 accel_bias{0.02, -0.015, 0.01};
    util::Vec3 gyro_bias{0.001, -0.0005, 0.0008};
    /// Horizontal / vertical components of the geomagnetic field (uT).
    double mag_horizontal_ut = 30.0;
    double mag_vertical_ut = 35.0;
    /// Slowly varying urban magnetic disturbance amplitude (uT).
    double mag_disturbance_ut = 1.5;
  };

  /// @param seed  per-vehicle identity: mounting rotation and bias draws
  explicit ImuModel(std::uint64_t seed);
  ImuModel(std::uint64_t seed, Config config);

  /// Sample the IMU given the true vehicle state and heading rate (rad/s).
  [[nodiscard]] ImuSample sample(const vehicle::VehicleState& state,
                                 double heading_rate_rps);

  /// The true sensor-from-vehicle rotation (tests / calibration oracle):
  /// sensor_vector = mount() * vehicle_vector.
  [[nodiscard]] const util::Mat3& mount() const noexcept { return mount_; }

  [[nodiscard]] const Config& config() const noexcept { return config_; }

  static constexpr double kGravity = 9.80665;

 private:
  Config config_;
  util::Mat3 mount_;
  util::Rng rng_;
  std::uint64_t seed_;
};

}  // namespace rups::sensors
