#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "gsm/channel_plan.hpp"
#include "sensors/types.hpp"
#include "util/rng.hpp"

namespace rups::sensors {

/// Where the scanning radios sit in the car. The paper shows placement
/// matters (Fig 9): radios on the front instrument panel see the sky well;
/// radios at the centre of the cabin are attenuated by the body and noisier.
enum class RadioPlacement { kFrontPanel, kCenter };

/// Multi-radio GSM band scanner (OsmocomBB C118 array). Each of the R
/// radios owns a contiguous slice of the channel plan and sweeps it
/// round-robin at ~15 ms per channel, so a full band sweep takes
/// size/R * 15 ms. While the vehicle moves, each channel is therefore
/// measured at a *different position* — the origin of missing channels
/// (Sec. IV-C): with 1 radio at 80 km/h one sweep spans dozens of metres.
class GsmScanner {
 public:
  struct Config {
    int radios = 4;
    RadioPlacement placement = RadioPlacement::kFrontPanel;
    double dwell_s = gsm::ChannelPlan::kChannelDwellSeconds;
    /// Extra attenuation / measurement noise by placement.
    double front_noise_db = 0.8;
    double center_attenuation_db = 8.0;
    double center_noise_db = 3.5;
    /// Dwells whose observed level falls below this report nothing — weak
    /// channels simply go missing.
    double sensitivity_dbm = -104.0;
    /// Slowly varying per-channel gain error (dB): the cabin/body blockage
    /// pattern changes with vehicle orientation and load, so it cannot be
    /// averaged out by the windowed correlation — the dominant accuracy
    /// cost of centre placement (paper Fig 9).
    double front_structured_db = 0.5;
    double center_structured_db = 8.0;
    double structured_corr_s = 2.5;
    /// Fraction of dwells lost to body-blockage BURSTS at centre placement
    /// (losses are correlated over structured_corr_s, so they wipe out
    /// whole stretches of road, not isolated dwells).
    double center_dropout_fraction = 0.5;
    /// OsmocomBB-style batch reporting: the baseband delivers one power
    /// measurement report per sweep, so every dwell in a sweep carries the
    /// sweep-completion timestamp. Binding error then scales with sweep
    /// time — the physical origin of the radio-count accuracy gradient
    /// (Fig 9): 1 radio = 1.7 s sweep = up to ~15 m of smear at speed.
    bool batch_report = true;
  };

  /// The callback answering "what is the true RSSI of plan channel c right
  /// now" — the simulation binds this to the GsmField at the vehicle's
  /// instantaneous position and adds passing-vehicle blockage.
  using RssiProvider = std::function<double(std::size_t channel, double time)>;

  GsmScanner(const gsm::ChannelPlan* plan, std::uint64_t seed);
  GsmScanner(const gsm::ChannelPlan* plan, std::uint64_t seed,
             Config config);

  /// Advance simulated time to `now`; every dwell completed in the interval
  /// emits one RXLEV-quantized measurement into `out`.
  void advance(double now, const RssiProvider& truth,
               std::vector<RssiMeasurement>& out);

  /// Seconds for one full band sweep with this radio count.
  [[nodiscard]] double sweep_seconds() const noexcept;

  [[nodiscard]] const Config& config() const noexcept { return config_; }
  [[nodiscard]] const gsm::ChannelPlan& plan() const noexcept { return *plan_; }

 private:
  struct RadioState {
    std::size_t first_channel = 0;  ///< slice start in the plan
    std::size_t count = 0;          ///< slice length
    std::size_t cursor = 0;         ///< next channel offset within slice
    double next_done_s = 0.0;       ///< completion time of the current dwell
    std::vector<RssiMeasurement> pending;  ///< batch awaiting sweep end
  };

  const gsm::ChannelPlan* plan_;
  Config config_;
  std::uint64_t seed_ = 0;
  util::Rng rng_;
  std::vector<RadioState> radios_;
  bool started_ = false;
};

}  // namespace rups::sensors
