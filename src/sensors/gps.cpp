#include "sensors/gps.hpp"

#include "util/hash_noise.hpp"

namespace rups::sensors {

GpsEnvErrorModel GpsEnvErrorModel::for_environment(
    road::EnvironmentType env) noexcept {
  GpsEnvErrorModel m;
  switch (env) {
    case road::EnvironmentType::kTwoLaneSuburb:
      // Open sky: nominal behaviour.
      m.bias_sigma_m = 2.4;
      m.white_sigma_m = 1.0;
      m.outage_probability = 0.0;
      break;
    case road::EnvironmentType::kFourLaneUrban:
      // Buildings and trees: strong multipath bias.
      m.bias_sigma_m = 6.2;
      m.white_sigma_m = 1.6;
      m.outage_probability = 0.03;
      break;
    case road::EnvironmentType::kEightLaneUrban:
      // Wide road but tall towers alongside.
      m.bias_sigma_m = 6.0;
      m.white_sigma_m = 1.6;
      m.outage_probability = 0.02;
      break;
    case road::EnvironmentType::kUnderElevated:
      // Concrete deck overhead: huge errors and frequent loss.
      m.bias_sigma_m = 13.0;
      m.white_sigma_m = 3.5;
      m.outage_probability = 0.35;
      break;
    case road::EnvironmentType::kDowntown:
      m.bias_sigma_m = 8.0;
      m.white_sigma_m = 2.0;
      m.outage_probability = 0.10;
      break;
  }
  return m;
}

GpsModel::GpsModel(std::uint64_t seed, double rate_hz)
    : rng_(util::hash_combine(seed, 0x475053ULL)),  // "GPS"
      seed_(seed),
      rate_hz_(rate_hz) {}

std::optional<GpsFix> GpsModel::maybe_fix(const vehicle::VehicleState& state) {
  if (state.time_s < next_fix_s_) return std::nullopt;
  next_fix_s_ = state.time_s + 1.0 / rate_hz_;

  const auto model = GpsEnvErrorModel::for_environment(state.pose.env);
  GpsFix fix;
  fix.time_s = state.time_s;
  if (rng_.bernoulli(model.outage_probability)) {
    fix.valid = false;
    return fix;
  }
  // Wandering multipath bias: a smooth temporal field per receiver/axis so
  // consecutive fixes share the same bias (the realistic failure mode —
  // averaging does NOT remove it).
  const util::LatticeField1D bias_x(util::hash_combine(seed_, 0x4258ULL),
                                    model.bias_corr_s, 2);
  const util::LatticeField1D bias_y(util::hash_combine(seed_, 0x4259ULL),
                                    model.bias_corr_s, 2);
  fix.x_m = state.pose.position.x + model.bias_sigma_m * bias_x.value(state.time_s) +
            rng_.gaussian(0.0, model.white_sigma_m);
  fix.y_m = state.pose.position.y + model.bias_sigma_m * bias_y.value(state.time_s) +
            rng_.gaussian(0.0, model.white_sigma_m);
  fix.valid = true;
  return fix;
}

}  // namespace rups::sensors
