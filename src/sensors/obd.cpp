#include "sensors/obd.hpp"

#include <cmath>

namespace rups::sensors {

ObdSpeedSensor::ObdSpeedSensor(std::uint64_t seed)
    : ObdSpeedSensor(seed, Config{}) {}

ObdSpeedSensor::ObdSpeedSensor(std::uint64_t seed, Config config)
    : config_(config), rng_(util::hash_combine(seed, 0x4f4244ULL)) {  // "OBD"
  // Small per-vehicle speedometer bias if none was configured explicitly.
  if (config_.scale_error == 0.0) {
    config_.scale_error = rng_.uniform(-0.008, 0.008);
  }
}

std::optional<SpeedSample> ObdSpeedSensor::maybe_sample(
    const vehicle::VehicleState& state) {
  if (state.time_s < next_sample_s_) return std::nullopt;
  next_sample_s_ = state.time_s + 1.0 / config_.rate_hz;

  const double true_kmh = state.speed_mps * 3.6;
  const double scaled = true_kmh * (1.0 + config_.scale_error);
  const double quantized =
      std::round(scaled / config_.quantum_kmh) * config_.quantum_kmh;
  SpeedSample s;
  s.time_s = state.time_s;
  s.speed_mps = std::max(0.0, quantized) / 3.6;
  return s;
}

}  // namespace rups::sensors
