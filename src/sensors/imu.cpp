#include "sensors/imu.hpp"

#include <cmath>

#include "util/hash_noise.hpp"

namespace rups::sensors {

ImuModel::ImuModel(std::uint64_t seed) : ImuModel(seed, Config{}) {}

ImuModel::ImuModel(std::uint64_t seed, Config config)
    : config_(config),
      rng_(util::hash_combine(seed, 0x494d55ULL)),  // "IMU"
      seed_(seed) {
  // Random but fixed mounting rotation: a phone on the dashboard, tilted.
  util::Rng mount_rng(util::hash_combine(seed, 0x4d4f554eULL));  // "MOUN"
  const double yaw = mount_rng.uniform(-3.14159, 3.14159);
  const double pitch = mount_rng.uniform(-0.6, 0.6);
  const double roll = mount_rng.uniform(-0.6, 0.6);
  // sensor_from_vehicle: transpose of the vehicle_from_sensor rotation.
  mount_ = util::Mat3::from_euler(yaw, pitch, roll).transpose();
}

ImuSample ImuModel::sample(const vehicle::VehicleState& state,
                           double heading_rate_rps) {
  ImuSample out;
  out.time_s = state.time_s;

  // --- Vehicle-frame ground truth ---
  // Specific force: longitudinal accel on +y (forward), centripetal on x
  // (left turn => acceleration toward the left => -x with x pointing right),
  // gravity reaction +g on z.
  const util::Vec3 accel_vehicle{
      -state.speed_mps * heading_rate_rps,
      state.accel_mps2,
      kGravity,
  };
  const util::Vec3 gyro_vehicle{0.0, 0.0, heading_rate_rps};

  // Geomagnetic field in the world frame (x east, y north, z up); heading
  // is measured from +x CCW, so north component mixes with cos/sin below.
  const double th = state.heading_rad;
  // Vehicle axes in world coordinates.
  const util::Vec3 fwd{std::cos(th), std::sin(th), 0.0};
  const util::Vec3 right{std::sin(th), -std::cos(th), 0.0};
  const util::Vec3 up{0.0, 0.0, 1.0};
  // World B-field: horizontal points north (+y), vertical points down.
  util::Vec3 b_world{0.0, config_.mag_horizontal_ut, -config_.mag_vertical_ut};
  // Slowly varying urban disturbance (bridges, power lines) along the road.
  const util::LatticeField1D disturb(
      util::hash_combine(seed_, 0x4d414744ULL) /* "MAGD" */, 80.0, 2);
  b_world.x += config_.mag_disturbance_ut * disturb.value(state.position_m);
  b_world.y +=
      config_.mag_disturbance_ut * disturb.value(state.position_m + 1.0e6);
  const util::Vec3 mag_vehicle{b_world.dot(right), b_world.dot(fwd),
                               b_world.dot(up)};

  // --- Rotate into the sensor frame, add bias and noise ---
  const auto noisy = [this](const util::Vec3& v, const util::Vec3& bias,
                            double sigma) {
    return util::Vec3{v.x + bias.x + rng_.gaussian(0.0, sigma),
                      v.y + bias.y + rng_.gaussian(0.0, sigma),
                      v.z + bias.z + rng_.gaussian(0.0, sigma)};
  };
  out.accel_mps2 = noisy(mount_ * accel_vehicle, config_.accel_bias,
                         config_.accel_noise_mps2);
  out.gyro_rps = noisy(mount_ * gyro_vehicle, config_.gyro_bias,
                       config_.gyro_noise_rps);
  out.mag_ut = noisy(mount_ * mag_vehicle, util::Vec3{}, config_.mag_noise_ut);
  return out;
}

}  // namespace rups::sensors
