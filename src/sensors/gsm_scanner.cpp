#include "sensors/gsm_scanner.hpp"

#include <algorithm>
#include <stdexcept>

#include "gsm/rxlev.hpp"
#include "util/hash_noise.hpp"

namespace rups::sensors {

GsmScanner::GsmScanner(const gsm::ChannelPlan* plan, std::uint64_t seed)
    : GsmScanner(plan, seed, Config{}) {}

GsmScanner::GsmScanner(const gsm::ChannelPlan* plan, std::uint64_t seed,
                       Config config)
    : plan_(plan),
      config_(config),
      seed_(seed),
      rng_(util::hash_combine(seed, 0x5343414eULL)) {  // "SCAN"
  if (plan_ == nullptr || config_.radios < 1) {
    throw std::invalid_argument("GsmScanner: need a plan and >= 1 radio");
  }
  const std::size_t n = plan_->size();
  const auto r = static_cast<std::size_t>(config_.radios);
  radios_.resize(r);
  // Contiguous, nearly equal slices; any remainder spreads over the first
  // radios (mirrors the paper's "divide channels according to the number of
  // phones").
  const std::size_t base = n / r;
  const std::size_t extra = n % r;
  std::size_t start = 0;
  for (std::size_t i = 0; i < r; ++i) {
    radios_[i].first_channel = start;
    radios_[i].count = base + (i < extra ? 1 : 0);
    start += radios_[i].count;
  }
}

double GsmScanner::sweep_seconds() const noexcept {
  std::size_t widest = 0;
  for (const auto& radio : radios_) widest = std::max(widest, radio.count);
  return static_cast<double>(widest) * config_.dwell_s;
}

void GsmScanner::advance(double now, const RssiProvider& truth,
                         std::vector<RssiMeasurement>& out) {
  if (!started_) {
    // Stagger radio start offsets so dwell completions interleave.
    for (std::size_t i = 0; i < radios_.size(); ++i) {
      radios_[i].next_done_s =
          config_.dwell_s * (1.0 + static_cast<double>(i) /
                                       static_cast<double>(radios_.size()));
    }
    started_ = true;
  }

  const bool center = config_.placement == RadioPlacement::kCenter;
  const double attenuation = center ? config_.center_attenuation_db : 0.0;
  const double noise =
      center ? config_.center_noise_db : config_.front_noise_db;
  const double structured =
      center ? config_.center_structured_db : config_.front_structured_db;

  for (std::size_t i = 0; i < radios_.size(); ++i) {
    RadioState& radio = radios_[i];
    if (radio.count == 0) continue;
    while (radio.next_done_s <= now) {
      const std::size_t channel = radio.first_channel + radio.cursor;
      const double t = radio.next_done_s;
      const double true_dbm = truth(channel, t);
      const util::LatticeField1D gain_error(
          util::hash_combine(seed_, channel), config_.structured_corr_s, 2);
      const double blockage = gain_error.value(t);
      // Burst dropout: the blockage process exceeding its upper quantile
      // wipes the dwell entirely (centre placement only by default).
      if (center && config_.center_dropout_fraction > 0.0 &&
          blockage > util::inverse_normal_cdf(
                         1.0 - config_.center_dropout_fraction)) {
        radio.cursor = (radio.cursor + 1) % radio.count;
        radio.next_done_s += config_.dwell_s;
        continue;
      }
      const double observed = true_dbm - attenuation -
                              structured * (1.0 + blockage) +
                              rng_.gaussian(0.0, noise);
      if (observed >= config_.sensitivity_dbm) {
        RssiMeasurement m;
        m.time_s = t;
        m.channel_index = channel;
        m.rssi_dbm = gsm::RxLev::quantize_dbm(observed);
        m.radio = static_cast<int>(i);
        if (config_.batch_report) {
          radio.pending.push_back(m);
        } else {
          out.push_back(m);
        }
      }
      radio.cursor = (radio.cursor + 1) % radio.count;
      radio.next_done_s += config_.dwell_s;
      if (config_.batch_report && radio.cursor == 0) {
        // Sweep complete: flush the batch, re-stamped at the report time.
        for (RssiMeasurement& pm : radio.pending) {
          pm.time_s = t;
          out.push_back(pm);
        }
        radio.pending.clear();
      }
    }
  }
}

}  // namespace rups::sensors
