#pragma once

#include <cstdint>
#include <optional>

#include "road/environment.hpp"
#include "sensors/types.hpp"
#include "util/rng.hpp"
#include "vehicle/kinematics.hpp"

namespace rups::sensors {

/// Per-environment GPS error parameters. Calibrated so the GPS baseline's
/// relative-distance errors land near the paper's measured values
/// (Fig 12: 4.2 / 9.9 / 9.8 / 21.1 m mean RDE across the four evaluation
/// environments): position error = slowly-wandering multipath bias
/// (dominant in canyons) + white noise, plus outages where the sky is
/// blocked.
struct GpsEnvErrorModel {
  double bias_sigma_m = 3.0;     ///< stationary stddev of the wandering bias
  double bias_corr_s = 45.0;     ///< correlation time of the bias walk
  double white_sigma_m = 1.2;    ///< per-fix white noise
  double outage_probability = 0.0;  ///< chance a 1 Hz fix is lost

  [[nodiscard]] static GpsEnvErrorModel for_environment(
      road::EnvironmentType env) noexcept;
};

/// GPS receiver model producing 1 Hz world-frame fixes with urban-canyon
/// dependent errors. Each receiver has its own seed: the two cars' errors
/// are independent, which is exactly why GPS relative distances are poor.
class GpsModel {
 public:
  GpsModel(std::uint64_t seed, double rate_hz = 1.0);

  /// Poll: returns a fix (possibly invalid during outage) once per period.
  [[nodiscard]] std::optional<GpsFix> maybe_fix(
      const vehicle::VehicleState& state);

 private:
  util::Rng rng_;
  std::uint64_t seed_;
  double rate_hz_;
  double next_fix_s_ = 0.0;
};

}  // namespace rups::sensors
