#pragma once

#include <cstdint>
#include <optional>

#include "sensors/types.hpp"
#include "util/rng.hpp"
#include "vehicle/kinematics.hpp"

namespace rups::sensors {

/// OBD-II vehicle-speed sensor (PID 0x0D): integer km/h readings at a low
/// polling rate. The paper quotes ~0.3 Hz for the OBD channel (Sec. V-A).
class ObdSpeedSensor {
 public:
  struct Config {
    double rate_hz = 0.35;
    /// OBD speed is reported in whole km/h.
    double quantum_kmh = 1.0;
    /// Speedometer calibration scale error (fraction, e.g. 0.01 = +1%).
    double scale_error = 0.0;
  };

  explicit ObdSpeedSensor(std::uint64_t seed);
  ObdSpeedSensor(std::uint64_t seed, Config config);

  /// Poll: returns a sample when the polling period has elapsed.
  [[nodiscard]] std::optional<SpeedSample> maybe_sample(
      const vehicle::VehicleState& state);

  [[nodiscard]] const Config& config() const noexcept { return config_; }

 private:
  Config config_;
  util::Rng rng_;
  double next_sample_s_ = 0.0;
};

}  // namespace rups::sensors
