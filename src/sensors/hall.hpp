#pragma once

#include <cstdint>

#include "util/rng.hpp"
#include "vehicle/kinematics.hpp"

namespace rups::sensors {

/// Wheel-revolution odometer: a magnet on the rear-left wheel and a Hall
/// sensor on the body (the paper's ground-truth travel-distance instrument,
/// Sec. VI-A). Distance resolution is one wheel circumference; the assumed
/// circumference carries a small calibration error relative to the true one
/// (tyre pressure, wear).
class HallWheelSensor {
 public:
  struct Config {
    double true_circumference_m = 1.94;
    /// Calibration error of the circumference the *software* assumes.
    double calibration_error = 0.002;
  };

  explicit HallWheelSensor(std::uint64_t seed);
  HallWheelSensor(std::uint64_t seed, Config config);

  /// Feed the true travelled distance; pulses fire as the wheel turns.
  void advance(double true_distance_m) noexcept;

  /// Pulses seen so far.
  [[nodiscard]] std::uint64_t pulses() const noexcept { return pulses_; }

  /// Distance the sensor believes was travelled (pulses x assumed
  /// circumference).
  [[nodiscard]] double distance_m() const noexcept;

  [[nodiscard]] const Config& config() const noexcept { return config_; }

 private:
  Config config_;
  double assumed_circumference_m_;
  std::uint64_t pulses_ = 0;
};

}  // namespace rups::sensors
