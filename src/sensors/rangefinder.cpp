#include "sensors/rangefinder.hpp"

namespace rups::sensors {

LaserRangefinder::LaserRangefinder(std::uint64_t seed)
    : LaserRangefinder(seed, Config{}) {}

LaserRangefinder::LaserRangefinder(std::uint64_t seed, Config config)
    : config_(config),
      rng_(util::hash_combine(seed, 0x4c415345ULL)) {}  // "LASE"

std::optional<double> LaserRangefinder::measure(double true_distance_m) {
  if (true_distance_m < 0.0 || true_distance_m > config_.max_range_m) {
    return std::nullopt;
  }
  return true_distance_m + rng_.gaussian(0.0, config_.noise_m);
}

}  // namespace rups::sensors
