#pragma once

#include <cstdint>
#include <optional>

#include "util/rng.hpp"

namespace rups::sensors {

/// SF02-style laser rangefinder with a 50 m effective range — the paper's
/// ground-truth verification instrument mounted on the rear car (Sec. VI-A).
class LaserRangefinder {
 public:
  struct Config {
    double max_range_m = 50.0;
    double noise_m = 0.03;
  };

  explicit LaserRangefinder(std::uint64_t seed);
  LaserRangefinder(std::uint64_t seed, Config config);

  /// Measure a true distance; nullopt when the target is out of range
  /// (or not in the beam).
  [[nodiscard]] std::optional<double> measure(double true_distance_m);

  [[nodiscard]] const Config& config() const noexcept { return config_; }

 private:
  Config config_;
  util::Rng rng_;
};

}  // namespace rups::sensors
