#pragma once

#include <cstdint>

#include "road/route.hpp"
#include "vehicle/traffic.hpp"

namespace rups::vehicle {

/// Longitudinal driver model: tracks the environment's cruise speed with a
/// smooth seeded variation, brakes for red lights, and respects
/// acceleration/deceleration limits. Each vehicle gets its own seed so the
/// two experiment cars drive similarly but not identically.
class SpeedController {
 public:
  struct Limits {
    double max_accel_mps2 = 2.0;
    double max_decel_mps2 = 3.0;
    /// Comfortable service deceleration used to plan stops.
    double brake_plan_mps2 = 1.5;
  };

  SpeedController(std::uint64_t vehicle_seed, const road::Route* route,
                  const TrafficLightPlan* lights, TrafficDensity density);
  SpeedController(std::uint64_t vehicle_seed, const road::Route* route,
                  const TrafficLightPlan* lights, TrafficDensity density,
                  Limits limits);

  /// Commanded acceleration (m/s^2) for the current state.
  [[nodiscard]] double acceleration(double position_m, double speed_mps,
                                    double time_s) const;

  [[nodiscard]] TrafficDensity density() const noexcept { return density_; }

 private:
  [[nodiscard]] double target_speed(double position_m, double time_s) const;

  std::uint64_t seed_;
  const road::Route* route_;
  const TrafficLightPlan* lights_;
  TrafficDensity density_;
  Limits limits_;
};

}  // namespace rups::vehicle
