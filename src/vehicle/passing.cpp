#include "vehicle/passing.hpp"

#include <algorithm>

#include "util/rng.hpp"

namespace rups::vehicle {

double PassingVehicleProcess::base_rate_hz(road::EnvironmentType env) noexcept {
  switch (env) {
    case road::EnvironmentType::kEightLaneUrban:
      return 1.0 / 45.0;  // a big vehicle alongside every ~45 s
    case road::EnvironmentType::kFourLaneUrban:
      return 1.0 / 90.0;
    case road::EnvironmentType::kDowntown:
      return 1.0 / 70.0;
    case road::EnvironmentType::kUnderElevated:
      return 1.0 / 80.0;
    case road::EnvironmentType::kTwoLaneSuburb:
      return 1.0 / 300.0;
  }
  return 1.0 / 120.0;
}

PassingVehicleProcess::PassingVehicleProcess(std::uint64_t seed,
                                             road::EnvironmentType env,
                                             double horizon_s,
                                             double rate_scale) {
  util::Rng rng(util::hash_combine(seed, 0x5041535353ULL));  // "PASSS"
  const double rate = base_rate_hz(env) * std::max(0.0, rate_scale);
  if (rate <= 0.0) return;
  double t = rng.exponential(rate);
  while (t < horizon_s) {
    Event e;
    e.start_s = t;
    e.duration_s = rng.uniform(2.0, 7.0);  // overtaking truck dwell
    e.attenuation_db = rng.uniform(4.0, 12.0);
    e.extra_noise_db = rng.uniform(1.5, 4.0);
    events_.push_back(e);
    t += e.duration_s + rng.exponential(rate);
  }
}

const PassingVehicleProcess::Event* PassingVehicleProcess::active_event(
    double time_s) const noexcept {
  // Events are sorted and non-overlapping by construction.
  auto it = std::upper_bound(
      events_.begin(), events_.end(), time_s,
      [](double t, const Event& e) { return t < e.start_s; });
  if (it == events_.begin()) return nullptr;
  --it;
  return (time_s < it->start_s + it->duration_s) ? &*it : nullptr;
}

double PassingVehicleProcess::attenuation_db(double time_s) const noexcept {
  const Event* e = active_event(time_s);
  return e != nullptr ? e->attenuation_db : 0.0;
}

double PassingVehicleProcess::extra_noise_db(double time_s) const noexcept {
  const Event* e = active_event(time_s);
  return e != nullptr ? e->extra_noise_db : 0.0;
}

}  // namespace rups::vehicle
