#pragma once

#include <cstdint>
#include <vector>

#include "road/environment.hpp"

namespace rups::vehicle {

/// Transient RF blockage from large vehicles passing close by (Sec. VI-C:
/// "most large errors occur when there is a big vehicle passing by").
/// Events are a seeded Poisson process in time; while one is active the
/// affected vehicle's received GSM levels drop and get noisier.
class PassingVehicleProcess {
 public:
  struct Event {
    double start_s = 0.0;
    double duration_s = 0.0;
    double attenuation_db = 0.0;
    double extra_noise_db = 0.0;
  };

  /// @param seed           per-vehicle seed (each car meets its own trucks)
  /// @param env            road class; 8-lane majors see the most traffic
  /// @param horizon_s      length of the drive to pre-generate events for
  /// @param rate_scale     multiplies the base event rate (1.0 = nominal)
  PassingVehicleProcess(std::uint64_t seed, road::EnvironmentType env,
                        double horizon_s, double rate_scale = 1.0);

  /// Attenuation (dB, >= 0) the blocker causes at time t; 0 when clear.
  [[nodiscard]] double attenuation_db(double time_s) const noexcept;

  /// Extra measurement-noise stddev (dB) at time t; 0 when clear.
  [[nodiscard]] double extra_noise_db(double time_s) const noexcept;

  [[nodiscard]] const std::vector<Event>& events() const noexcept {
    return events_;
  }

  /// Mean events per second for an environment.
  [[nodiscard]] static double base_rate_hz(road::EnvironmentType env) noexcept;

 private:
  [[nodiscard]] const Event* active_event(double time_s) const noexcept;
  std::vector<Event> events_;
};

}  // namespace rups::vehicle
