#include "vehicle/speed_controller.hpp"

#include <algorithm>
#include <cmath>

#include "util/hash_noise.hpp"
#include "util/rng.hpp"

namespace rups::vehicle {

SpeedController::SpeedController(std::uint64_t vehicle_seed,
                                 const road::Route* route,
                                 const TrafficLightPlan* lights,
                                 TrafficDensity density)
    : SpeedController(vehicle_seed, route, lights, density, Limits{}) {}

SpeedController::SpeedController(std::uint64_t vehicle_seed,
                                 const road::Route* route,
                                 const TrafficLightPlan* lights,
                                 TrafficDensity density, Limits limits)
    : seed_(vehicle_seed),
      route_(route),
      lights_(lights),
      density_(density),
      limits_(limits) {}

double SpeedController::target_speed(double position_m, double time_s) const {
  const auto pose = route_->pose_at(position_m);
  double v = cruise_speed_mps(pose.env, density_);
  // Smooth per-driver speed variation (+-15%) over a ~60 s horizon.
  const util::LatticeField1D style(
      util::hash_combine(seed_, 0x5354594cULL) /* "STYL" */, 60.0, 2);
  v *= 1.0 + 0.15 * std::clamp(style.value(time_s), -2.0, 2.0) / 2.0;
  return std::max(v, 1.0);
}

double SpeedController::acceleration(double position_m, double speed_mps,
                                     double time_s) const {
  const double target = target_speed(position_m, time_s);
  double accel = std::clamp((target - speed_mps) * 0.5, -limits_.max_decel_mps2,
                            limits_.max_accel_mps2);

  // Red-light handling: if we cannot clear the next light before it turns
  // red (or it is red now), plan a comfortable stop at the stop line.
  if (lights_ != nullptr) {
    const auto light = lights_->next_light(position_m);
    if (light.has_value()) {
      const double gap = light->position_m - position_m;
      // Only consider lights within the braking horizon.
      const double horizon =
          speed_mps * speed_mps / (2.0 * limits_.brake_plan_mps2) + 30.0;
      if (gap <= horizon && !light->is_green(time_s)) {
        if (gap < 1.0) {
          // Hold at the stop line.
          accel = speed_mps > 0.1 ? -limits_.max_decel_mps2 : 0.0;
        } else {
          // Constant-deceleration stop: a = v^2 / (2 gap).
          const double needed = speed_mps * speed_mps / (2.0 * gap);
          if (needed > 0.3) {
            accel = -std::min(needed, limits_.max_decel_mps2);
          }
        }
      }
    }
  }
  // Never reverse.
  if (speed_mps <= 0.0 && accel < 0.0) accel = 0.0;
  return accel;
}

}  // namespace rups::vehicle
