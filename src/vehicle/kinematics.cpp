#include "vehicle/kinematics.hpp"

#include <algorithm>

namespace rups::vehicle {

Kinematics::Kinematics(const road::Route* route,
                       const SpeedController* controller, int lane,
                       double start_position_m, double start_time_s)
    : route_(route), controller_(controller) {
  state_.time_s = start_time_s;
  state_.position_m = start_position_m;
  state_.lane = lane;
  state_.pose = route_->pose_at(start_position_m);
  state_.heading_rad = state_.pose.heading_rad;
}

const VehicleState& Kinematics::step(double dt, double accel_adjust_mps2) {
  state_.accel_mps2 = std::clamp(
      controller_->acceleration(state_.position_m, state_.speed_mps,
                                state_.time_s) +
          accel_adjust_mps2,
      -4.0, 2.5);
  state_.speed_mps = std::max(0.0, state_.speed_mps + state_.accel_mps2 * dt);
  state_.position_m =
      std::min(state_.position_m + state_.speed_mps * dt,
               route_->total_length_m());
  state_.time_s += dt;
  state_.pose = route_->pose_at(state_.position_m);
  state_.heading_rad = state_.pose.heading_rad;
  return state_;
}

}  // namespace rups::vehicle
