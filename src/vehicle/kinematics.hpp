#pragma once

#include "road/route.hpp"
#include "vehicle/speed_controller.hpp"

namespace rups::vehicle {

/// Full dynamic state of a vehicle on a route at one instant.
struct VehicleState {
  double time_s = 0.0;
  double position_m = 0.0;  ///< route distance travelled (true odometer)
  double speed_mps = 0.0;
  double accel_mps2 = 0.0;
  double heading_rad = 0.0;  ///< true heading from route geometry
  int lane = 1;
  road::RoutePose pose{};  ///< resolved world pose
};

/// Forward-Euler longitudinal integrator driving a vehicle along a route
/// under a SpeedController. Produces ground-truth state; sensors observe it
/// with their own noise.
class Kinematics {
 public:
  Kinematics(const road::Route* route, const SpeedController* controller,
             int lane, double start_position_m = 0.0,
             double start_time_s = 0.0);

  /// Advance by dt seconds; returns the new state. `accel_adjust_mps2` is
  /// added to the controller's command (car-following correction) before
  /// hard acceleration limits apply.
  const VehicleState& step(double dt, double accel_adjust_mps2 = 0.0);

  [[nodiscard]] const VehicleState& state() const noexcept { return state_; }
  [[nodiscard]] bool finished() const noexcept {
    return state_.position_m >= route_->total_length_m();
  }

 private:
  const road::Route* route_;
  const SpeedController* controller_;
  VehicleState state_;
};

}  // namespace rups::vehicle
