#include "vehicle/traffic.hpp"

#include <algorithm>
#include <cmath>

#include "util/rng.hpp"

namespace rups::vehicle {

double cruise_speed_mps(road::EnvironmentType env,
                        TrafficDensity density) noexcept {
  double kmh = 40.0;
  switch (env) {
    case road::EnvironmentType::kTwoLaneSuburb:
      kmh = 60.0;
      break;
    case road::EnvironmentType::kFourLaneUrban:
      kmh = 45.0;
      break;
    case road::EnvironmentType::kEightLaneUrban:
      kmh = 60.0;
      break;
    case road::EnvironmentType::kUnderElevated:
      kmh = 40.0;
      break;
    case road::EnvironmentType::kDowntown:
      kmh = 30.0;
      break;
  }
  switch (density) {
    case TrafficDensity::kLight:
      break;
    case TrafficDensity::kModerate:
      kmh *= 0.75;
      break;
    case TrafficDensity::kHeavy:
      kmh *= 0.45;
      break;
  }
  return kmh / 3.6;
}

bool TrafficLight::is_green(double time_s) const noexcept {
  double t = std::fmod(time_s + phase_s, cycle_s);
  if (t < 0) t += cycle_s;
  return t < green_s;
}

double TrafficLight::wait_for_green(double time_s) const noexcept {
  if (is_green(time_s)) return 0.0;
  double t = std::fmod(time_s + phase_s, cycle_s);
  if (t < 0) t += cycle_s;
  return cycle_s - t;
}

TrafficLightPlan TrafficLightPlan::for_route(std::uint64_t seed,
                                             const road::Route& route) {
  TrafficLightPlan plan;
  util::Rng rng(util::hash_combine(seed, 0x4c49474854ULL));  // "LIGHT"
  double s = 0.0;
  const double total = route.total_length_m();
  while (s < total) {
    const auto pose = route.pose_at(s);
    double spacing = 700.0;
    switch (pose.env) {
      case road::EnvironmentType::kDowntown:
        spacing = 350.0;
        break;
      case road::EnvironmentType::kFourLaneUrban:
        spacing = 550.0;
        break;
      case road::EnvironmentType::kEightLaneUrban:
        spacing = 800.0;
        break;
      case road::EnvironmentType::kUnderElevated:
        spacing = 700.0;
        break;
      case road::EnvironmentType::kTwoLaneSuburb:
        spacing = 1500.0;
        break;
    }
    s += spacing * rng.uniform(0.7, 1.3);
    if (s >= total) break;
    TrafficLight light;
    light.position_m = s;
    light.cycle_s = rng.uniform(60.0, 90.0);
    light.green_s = light.cycle_s * rng.uniform(0.45, 0.65);
    light.phase_s = rng.uniform(0.0, light.cycle_s);
    plan.lights_.push_back(light);
  }
  return plan;
}

std::optional<TrafficLight> TrafficLightPlan::next_light(double s) const {
  const auto it = std::lower_bound(
      lights_.begin(), lights_.end(), s,
      [](const TrafficLight& l, double pos) { return l.position_m < pos; });
  if (it == lights_.end()) return std::nullopt;
  return *it;
}

}  // namespace rups::vehicle
