#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "road/route.hpp"

namespace rups::vehicle {

/// Traffic intensity encountered during a drive. The paper collected traces
/// under both heavy and light traffic (Sec. VI-A).
enum class TrafficDensity { kLight, kModerate, kHeavy };

/// Cruise speed (m/s) a vehicle targets in an environment under a traffic
/// density. Urban majors are faster than suburb 2-lanes in free flow but
/// collapse under heavy traffic.
[[nodiscard]] double cruise_speed_mps(road::EnvironmentType env,
                                      TrafficDensity density) noexcept;

/// One signalized intersection on a route.
struct TrafficLight {
  double position_m = 0.0;   // route distance
  double cycle_s = 70.0;     // full cycle
  double green_s = 40.0;     // green portion at cycle start
  double phase_s = 0.0;      // phase offset

  /// Is the light green at absolute time t?
  [[nodiscard]] bool is_green(double time_s) const noexcept;
  /// Seconds until the light turns green (0 if already green).
  [[nodiscard]] double wait_for_green(double time_s) const noexcept;
};

/// Deterministic plan of traffic lights along a route: spacing depends on
/// the environment (dense downtown, sparse suburb), phases are hashed from
/// the route seed so every vehicle on the route sees the same lights.
class TrafficLightPlan {
 public:
  TrafficLightPlan() = default;
  static TrafficLightPlan for_route(std::uint64_t seed,
                                    const road::Route& route);

  [[nodiscard]] const std::vector<TrafficLight>& lights() const noexcept {
    return lights_;
  }

  /// The next light at or after route distance s (nullopt past the last).
  [[nodiscard]] std::optional<TrafficLight> next_light(double s) const;

 private:
  std::vector<TrafficLight> lights_;
};

}  // namespace rups::vehicle
