#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <shared_mutex>
#include <unordered_map>
#include <vector>

#include "gsm/channel_plan.hpp"
#include "gsm/env_profile.hpp"
#include "gsm/temporal.hpp"
#include "gsm/towers.hpp"
#include "road/route.hpp"

namespace rups::gsm {

/// The simulated GSM radio environment of one city.
///
/// For a query point (road segment, along-road offset, lane, channel, time)
/// the field composes, in dB:
///   * tower contributions — log-distance path loss from the deterministic
///     cell layout around the segment, co-channel cells power-summed,
///   * a diffuse per-channel background (distant cells),
///   * two spatially correlated shadowing processes over along-road
///     distance: a long-scale (~45 m) building/terrain component and a
///     short-scale (~1.6 m) multipath component — the two-scale structure
///     that gives the field both geographical uniqueness (Fig 3) and fine
///     resolution (Fig 4),
///   * a per-lane multipath perturbation (distinct lanes decorrelate),
///   * slow temporal fading with a volatile-channel tail (Fig 2),
///   * the environment's bulk attenuation (e.g. under-elevated decks).
///
/// Everything is a pure deterministic function of (field seed, query), so
/// the field is replayable: both vehicles, and any re-entry of a road at any
/// time, observe one consistent world.
class GsmField {
 public:
  GsmField(std::uint64_t seed, ChannelPlan plan);

  GsmField(const GsmField&) = delete;
  GsmField& operator=(const GsmField&) = delete;

  /// Replace every segment's environment profile with a custom one
  /// (ablation studies). Must be called before the first query; segment
  /// contexts built earlier keep their original profile.
  void set_profile_override(const GsmEnvProfile& profile);

  /// Ground-truth RSSI (dBm, unquantized, before receiver effects).
  [[nodiscard]] double rssi_dbm(const road::RoadSegment& segment,
                                double offset_m, int lane,
                                std::size_t channel_index,
                                double time_s) const;

  /// All channels at once (size == plan().size()).
  [[nodiscard]] std::vector<double> power_vector(
      const road::RoadSegment& segment, double offset_m, int lane,
      double time_s) const;

  [[nodiscard]] const ChannelPlan& plan() const noexcept { return plan_; }
  [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }

  /// Receiver noise floor; levels are clamped to
  /// [kNoiseFloorDbm, kSaturationDbm].
  static constexpr double kNoiseFloorDbm = -110.0;
  static constexpr double kSaturationDbm = -45.0;

 private:
  struct SegmentContext {
    std::vector<CellTower> towers;
    /// towers_by_channel[c] = indices into `towers` radiating plan channel c.
    std::vector<std::vector<std::size_t>> towers_by_channel;
    GsmEnvProfile profile;
    TemporalFading temporal;

    SegmentContext(std::uint64_t seed, const road::RoadSegment& segment,
                   const ChannelPlan& plan,
                   const GsmEnvProfile* override_profile);
  };

  const SegmentContext& context_for(const road::RoadSegment& segment) const;

  std::uint64_t seed_;
  ChannelPlan plan_;
  std::optional<GsmEnvProfile> profile_override_;
  mutable std::shared_mutex mutex_;
  mutable std::unordered_map<road::SegmentId, std::unique_ptr<SegmentContext>>
      contexts_;
};

/// Convert dBm to milliwatts (linear power). The paper's relative-change
/// metric (eq. 3) is computed on linear power.
[[nodiscard]] double dbm_to_mw(double dbm) noexcept;
/// Convert milliwatts to dBm.
[[nodiscard]] double mw_to_dbm(double mw) noexcept;

}  // namespace rups::gsm
