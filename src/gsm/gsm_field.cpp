#include "gsm/gsm_field.hpp"

#include <algorithm>
#include <cmath>
#include <mutex>
#include <numbers>

#include "gsm/path_loss.hpp"
#include "obs/metrics.hpp"
#include "util/hash_noise.hpp"
#include "util/rng.hpp"

namespace rups::gsm {

namespace {

/// Field-evaluation volume and the shadowing/segment-context cache
/// behaviour — the dominant simulation-side compute cost.
struct FieldMetrics {
  obs::Counter& evals = obs::Registry::global().counter("gsm.field_evals");
  obs::Counter& power_vectors =
      obs::Registry::global().counter("gsm.power_vectors");
  obs::Counter& cache_hits =
      obs::Registry::global().counter("gsm.segment_cache_hits");
  obs::Counter& cache_misses =
      obs::Registry::global().counter("gsm.segment_cache_misses");
};

FieldMetrics& field_metrics() {
  static FieldMetrics m;
  return m;
}
constexpr std::uint64_t kShadowLongTag = 0x53484c4fULL;   // "SHLO"
constexpr std::uint64_t kShadowShortTag = 0x53485348ULL;  // "SHSH"
constexpr std::uint64_t kLaneTag = 0x4c414e45ULL;         // "LANE"
constexpr std::uint64_t kBackgroundTag = 0x42414348ULL;   // "BACH"
constexpr std::uint64_t kLocalityTag = 0x4c4f4341ULL;     // "LOCA"
constexpr std::uint64_t kTemporalTag = 0x54464144ULL;     // "TFAD"
constexpr std::uint64_t kEphemeralTag = 0x45504845ULL;    // "EPHE"
}  // namespace

double dbm_to_mw(double dbm) noexcept { return std::pow(10.0, dbm / 10.0); }
double mw_to_dbm(double mw) noexcept {
  return 10.0 * std::log10(std::max(mw, 1e-30));
}

GsmField::GsmField(std::uint64_t seed, ChannelPlan plan)
    : seed_(seed), plan_(std::move(plan)) {}

void GsmField::set_profile_override(const GsmEnvProfile& profile) {
  std::unique_lock lock(mutex_);
  profile_override_ = profile;
  contexts_.clear();
}

GsmField::SegmentContext::SegmentContext(std::uint64_t seed,
                                         const road::RoadSegment& segment,
                                         const ChannelPlan& plan,
                                         const GsmEnvProfile* override_profile)
    : profile(override_profile != nullptr ? *override_profile
                                          : env_profile(segment.env)),
      temporal(util::hash_combine(seed, kTemporalTag), profile) {
  towers = TowerLayout::for_segment(seed, segment, plan, profile);
  towers_by_channel.assign(plan.size(), {});
  for (std::size_t t = 0; t < towers.size(); ++t) {
    for (std::size_t c : towers[t].channel_indices) {
      if (c < plan.size()) towers_by_channel[c].push_back(t);
    }
  }
}

const GsmField::SegmentContext& GsmField::context_for(
    const road::RoadSegment& segment) const {
  {
    std::shared_lock lock(mutex_);
    auto it = contexts_.find(segment.id);
    if (it != contexts_.end()) {
      field_metrics().cache_hits.inc();
      return *it->second;
    }
  }
  field_metrics().cache_misses.inc();
  auto ctx = std::make_unique<SegmentContext>(
      seed_, segment, plan_,
      profile_override_.has_value() ? &*profile_override_ : nullptr);
  std::unique_lock lock(mutex_);
  auto [it, inserted] = contexts_.try_emplace(segment.id, std::move(ctx));
  return *it->second;
}

double GsmField::rssi_dbm(const road::RoadSegment& segment, double offset_m,
                          int lane, std::size_t channel_index,
                          double time_s) const {
  field_metrics().evals.inc();
  const SegmentContext& ctx = context_for(segment);
  const GsmEnvProfile& prof = ctx.profile;
  const road::Point2 here = segment.point_at(offset_m);
  const double carrier = plan_.frequency_mhz(channel_index);
  const PathLoss pl(prof.path_loss_exponent, carrier);

  // Tower contributions, power-summed in the linear domain.
  double mw = 0.0;
  if (channel_index < ctx.towers_by_channel.size()) {
    for (std::size_t ti : ctx.towers_by_channel[channel_index]) {
      const CellTower& tower = ctx.towers[ti];
      const double dx = here.x - tower.position.x;
      const double dy = here.y - tower.position.y;
      const double dist = std::sqrt(dx * dx + dy * dy);
      mw += dbm_to_mw(tower.tx_power_dbm - pl.loss_db(dist));
    }
  }

  // Diffuse background from distant co-channel cells: a city-wide activity
  // level per channel plus a per-road locality offset.
  const util::HashNoise activity(util::hash_combine(seed_, kBackgroundTag));
  const util::HashNoise locality(
      util::hash_combine(seed_, util::hash_combine(kLocalityTag, segment.id)));
  const auto ch = static_cast<std::int64_t>(channel_index);
  const double bg_dbm = -102.0 + 22.0 * activity.uniform(ch) +
                        6.0 * (locality.uniform(ch) - 0.5);
  mw += dbm_to_mw(bg_dbm);

  double dbm = mw_to_dbm(mw) - prof.bulk_attenuation_db;

  // Spatial shadowing / multipath structure along the road.
  const std::uint64_t seg_ch =
      util::hash_combine(segment.id, static_cast<std::uint64_t>(channel_index));
  const util::LatticeField1D shadow_long(
      util::hash_combine(seed_, util::hash_combine(kShadowLongTag, seg_ch)),
      prof.shadow_long_corr_m, /*octaves=*/2);
  const util::LatticeField1D shadow_short(
      util::hash_combine(seed_, util::hash_combine(kShadowShortTag, seg_ch)),
      prof.shadow_short_corr_m, /*octaves=*/2);
  dbm += prof.shadow_long_sigma_db * shadow_long.value(offset_m);

  // Short-scale structure: a persistent part plus an ephemeral part whose
  // spatial pattern is re-drawn continuously over ephemeral_corr_s (epochs
  // cosine-blended so the field stays smooth in time).
  const double f = std::clamp(prof.shadow_ephemeral_fraction, 0.0, 1.0);
  double short_value = std::sqrt(1.0 - f) * shadow_short.value(offset_m);
  if (f > 0.0) {
    const double u = time_s / prof.ephemeral_corr_s;
    const auto epoch = static_cast<std::int64_t>(std::floor(u));
    const double phase = u - std::floor(u);
    const double w1 = std::sin(0.5 * std::numbers::pi * phase);
    const double w0 = std::cos(0.5 * std::numbers::pi * phase);
    const util::LatticeField1D eph0(
        util::hash_combine(
            seed_, util::hash_combine(
                       kEphemeralTag,
                       util::hash_combine(seg_ch,
                                          static_cast<std::uint64_t>(epoch)))),
        prof.shadow_short_corr_m, /*octaves=*/2);
    const util::LatticeField1D eph1(
        util::hash_combine(
            seed_, util::hash_combine(
                       kEphemeralTag,
                       util::hash_combine(
                           seg_ch, static_cast<std::uint64_t>(epoch + 1)))),
        prof.shadow_short_corr_m, /*octaves=*/2);
    short_value += std::sqrt(f) * (w0 * eph0.value(offset_m) +
                                   w1 * eph1.value(offset_m));
  }
  dbm += prof.shadow_short_sigma_db * short_value;

  // Per-lane multipath perturbation: lanes share the long-scale world but
  // differ in fine structure.
  const util::LatticeField1D lane_field(
      util::hash_combine(
          seed_, util::hash_combine(
                     kLaneTag, util::hash_combine(
                                   seg_ch, static_cast<std::uint64_t>(lane)))),
      /*correlation_length=*/2.5, /*octaves=*/1);
  dbm += prof.lane_sigma_db * lane_field.value(offset_m);

  // Slow temporal fading (+ volatile-channel tail).
  dbm += ctx.temporal.offset_db(channel_index, time_s);

  return std::clamp(dbm, kNoiseFloorDbm, kSaturationDbm);
}

std::vector<double> GsmField::power_vector(const road::RoadSegment& segment,
                                           double offset_m, int lane,
                                           double time_s) const {
  field_metrics().power_vectors.inc();
  std::vector<double> out(plan_.size());
  for (std::size_t c = 0; c < plan_.size(); ++c) {
    out[c] = rssi_dbm(segment, offset_m, lane, c, time_s);
  }
  return out;
}

}  // namespace rups::gsm
