#pragma once

#include <cstdint>
#include <vector>

namespace rups::gsm {

/// Absolute Radio Frequency Channel Number (GSM) or, for other bands, a
/// band-specific channel identifier.
using Arfcn = int;

/// Radio band a channel belongs to. The paper's system scans R-GSM-900;
/// its future-work section proposes adding other ambient bands (3G/4G, FM,
/// TV) — the FM broadcast band is implemented here as that extension.
enum class Band { kRGsm900, kFmBroadcast };

/// The set of channels a scanner sweeps, with per-channel carrier
/// frequencies. The paper uses the R-GSM-900 band: 194 channels (P-GSM
/// ARFCN 0–124 plus the R-GSM extension ARFCN 955–1023), scanned in 2.85 s
/// by one OsmocomBB radio; the Sec. VI evaluation uses a selected subset
/// of 115 channels.
class ChannelPlan {
 public:
  ChannelPlan() = default;
  /// GSM-900 plan from explicit ARFCNs.
  explicit ChannelPlan(std::vector<Arfcn> arfcns);

  /// Full R-GSM-900 band: 194 channels.
  [[nodiscard]] static ChannelPlan full_r_gsm_900();

  /// Deterministic subset of `count` channels from the full band
  /// (paper: 115 channels for the evaluation).
  [[nodiscard]] static ChannelPlan evaluation_subset(std::uint64_t seed,
                                                     std::size_t count = 115);

  /// FM broadcast band, 87.5–108.0 MHz in 100 kHz steps: 206 channels
  /// (the paper's future-work multi-band extension).
  [[nodiscard]] static ChannelPlan fm_broadcast();

  /// Concatenation of two plans (multi-band scanning).
  [[nodiscard]] static ChannelPlan combined(const ChannelPlan& a,
                                            const ChannelPlan& b);

  [[nodiscard]] std::size_t size() const noexcept { return arfcns_.size(); }
  [[nodiscard]] Arfcn arfcn(std::size_t index) const {
    return arfcns_.at(index);
  }
  [[nodiscard]] const std::vector<Arfcn>& arfcns() const noexcept {
    return arfcns_;
  }
  [[nodiscard]] Band band_of(std::size_t index) const {
    return bands_.at(index);
  }

  /// Carrier frequency (MHz) of channel `index` (band-aware).
  [[nodiscard]] double frequency_mhz(std::size_t index) const {
    return freqs_.at(index);
  }

  /// GSM-900 downlink carrier frequency in MHz for an ARFCN.
  [[nodiscard]] static double downlink_mhz(Arfcn arfcn);

  /// Per-channel scan dwell used by the paper's scanners: ~15 ms/channel,
  /// i.e. 194 channels in ~2.9 s.
  static constexpr double kChannelDwellSeconds = 0.015;

  /// Full-band sweep time for one radio.
  [[nodiscard]] double sweep_seconds() const noexcept {
    return static_cast<double>(size()) * kChannelDwellSeconds;
  }

 private:
  std::vector<Arfcn> arfcns_;
  std::vector<double> freqs_;
  std::vector<Band> bands_;
};

}  // namespace rups::gsm
