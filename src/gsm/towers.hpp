#pragma once

#include <cstdint>
#include <vector>

#include "gsm/channel_plan.hpp"
#include "gsm/env_profile.hpp"
#include "road/route.hpp"

namespace rups::gsm {

/// One GSM base-transceiver station: a world position, a transmit power,
/// and the set of channel-plan indices it radiates on.
struct CellTower {
  road::Point2 position{};
  double tx_power_dbm = 43.0;  // typical GSM macro EIRP per carrier
  std::vector<std::size_t> channel_indices;
};

/// Deterministic tower layout around one road segment. Towers are hashed
/// from the segment id, so the same physical road always has the same
/// serving cells — the basis of geographical uniqueness and of replay
/// consistency between the two experiment vehicles.
class TowerLayout {
 public:
  /// Generate the towers covering a segment.
  /// @param field_seed  global field identity (one city = one seed)
  /// @param plan        channels the scanner knows about; towers are
  ///                    assigned indices into this plan
  static std::vector<CellTower> for_segment(std::uint64_t field_seed,
                                            const road::RoadSegment& segment,
                                            const ChannelPlan& plan,
                                            const GsmEnvProfile& profile);
};

}  // namespace rups::gsm
