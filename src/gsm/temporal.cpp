#include "gsm/temporal.hpp"

#include "util/hash_noise.hpp"
#include "util/rng.hpp"

namespace rups::gsm {

namespace {
constexpr std::uint64_t kStableTag = 0x54454d50ULL;    // "TEMP"
constexpr std::uint64_t kVolatileTag = 0x564f4c41ULL;  // "VOLA"
constexpr std::uint64_t kCoinTag = 0x434f494eULL;      // "COIN"
}  // namespace

TemporalFading::TemporalFading(std::uint64_t seed,
                               const GsmEnvProfile& profile) noexcept
    : seed_(seed), profile_(profile) {}

bool TemporalFading::is_volatile(std::size_t channel_index) const noexcept {
  const util::HashNoise coin(util::hash_combine(seed_, kCoinTag));
  return coin.uniform(static_cast<std::int64_t>(channel_index)) <
         profile_.volatile_fraction;
}

double TemporalFading::offset_db(std::size_t channel_index,
                                 double time_s) const noexcept {
  const auto ch = static_cast<std::uint64_t>(channel_index);
  const util::LatticeField1D stable(
      util::hash_combine(seed_, util::hash_combine(kStableTag, ch)),
      profile_.temporal_corr_s, /*octaves=*/2);
  double out = profile_.temporal_sigma_db * stable.value(time_s);
  if (is_volatile(channel_index)) {
    const util::LatticeField1D vol(
        util::hash_combine(seed_, util::hash_combine(kVolatileTag, ch)),
        profile_.volatile_corr_s, /*octaves=*/2);
    out += profile_.volatile_sigma_db * vol.value(time_s);
  }
  return out;
}

}  // namespace rups::gsm
