#include "gsm/towers.hpp"

#include <algorithm>
#include <cmath>

#include "util/rng.hpp"

namespace rups::gsm {

std::vector<CellTower> TowerLayout::for_segment(
    std::uint64_t field_seed, const road::RoadSegment& segment,
    const ChannelPlan& plan, const GsmEnvProfile& profile) {
  // Tower identity depends on the global field and the segment only, NOT on
  // who is asking or when — both vehicles and every re-entry of the road see
  // the same cells.
  util::Rng rng(util::hash_combine(field_seed,
                                   util::hash_combine(segment.id, 0x544f57ULL)));

  // Enough towers to cover the segment plus shoulder coverage on both ends.
  const double covered = segment.length_m + 2.0 * profile.tower_spacing_m;
  const auto count = std::max<std::size_t>(
      2, static_cast<std::size_t>(std::ceil(covered / profile.tower_spacing_m)));

  const double cos_h = std::cos(segment.heading_rad);
  const double sin_h = std::sin(segment.heading_rad);

  std::vector<CellTower> towers;
  towers.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    CellTower t;
    // Along-road placement with jitter; lateral offset alternating sides.
    const double along = -profile.tower_spacing_m +
                         static_cast<double>(i) * profile.tower_spacing_m +
                         rng.uniform(-0.3, 0.3) * profile.tower_spacing_m;
    const double side = (i % 2 == 0) ? 1.0 : -1.0;
    const double lateral =
        side * profile.tower_lateral_m * rng.uniform(0.5, 1.5);
    t.position = {segment.start.x + along * cos_h - lateral * sin_h,
                  segment.start.y + along * sin_h + lateral * cos_h};
    t.tx_power_dbm = rng.uniform(40.0, 46.0);

    // Each cell radiates a BCCH plus a handful of TCH carriers.
    const auto carriers = static_cast<std::size_t>(rng.uniform_int(4, 10));
    for (std::size_t c = 0; c < carriers; ++c) {
      t.channel_indices.push_back(static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(plan.size()) - 1)));
    }
    std::sort(t.channel_indices.begin(), t.channel_indices.end());
    t.channel_indices.erase(
        std::unique(t.channel_indices.begin(), t.channel_indices.end()),
        t.channel_indices.end());
    towers.push_back(std::move(t));
  }
  return towers;
}

}  // namespace rups::gsm
