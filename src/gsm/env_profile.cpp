#include "gsm/env_profile.hpp"

namespace rups::gsm {

namespace {

constexpr GsmEnvProfile make_profile(road::EnvironmentType env) {
  GsmEnvProfile p;
  switch (env) {
    case road::EnvironmentType::kTwoLaneSuburb:
      // Open, sparse towers, mild multipath.
      p.tower_spacing_m = 1200.0;
      p.tower_lateral_m = 300.0;
      p.path_loss_exponent = 2.9;
      p.shadow_long_sigma_db = 5.0;
      p.shadow_short_sigma_db = 4.0;
      p.lane_sigma_db = 2.0;
      p.volatile_fraction = 0.10;
      p.shadow_ephemeral_fraction = 0.10;
      p.ephemeral_corr_s = 60.0;
      break;
    case road::EnvironmentType::kFourLaneUrban:
      // Semi-open, dense towers, strong stable multipath structure: the
      // paper's best-performing environment.
      p.tower_spacing_m = 500.0;
      p.tower_lateral_m = 120.0;
      p.path_loss_exponent = 3.3;
      p.shadow_long_sigma_db = 6.5;
      p.shadow_short_sigma_db = 6.0;
      p.lane_sigma_db = 2.5;
      p.volatile_fraction = 0.15;
      p.shadow_ephemeral_fraction = 0.20;
      p.ephemeral_corr_s = 40.0;
      break;
    case road::EnvironmentType::kEightLaneUrban:
      // Open major road: wide, more passing traffic, more interference.
      p.tower_spacing_m = 600.0;
      p.tower_lateral_m = 180.0;
      p.path_loss_exponent = 3.1;
      p.shadow_long_sigma_db = 6.0;
      p.shadow_short_sigma_db = 5.0;
      p.lane_sigma_db = 3.5;
      p.volatile_fraction = 0.18;
      p.shadow_ephemeral_fraction = 0.35;
      p.ephemeral_corr_s = 25.0;
      break;
    case road::EnvironmentType::kUnderElevated:
      // Close: concrete deck above; heavily attenuated (few channels left
      // above sensitivity), reverberant and fast-churning — RUPS's worst
      // environment in the paper (6.9 m mean RDE vs 2.3-4.2 elsewhere).
      p.tower_spacing_m = 900.0;
      p.tower_lateral_m = 200.0;
      p.path_loss_exponent = 3.8;
      p.shadow_long_sigma_db = 7.5;
      p.shadow_short_sigma_db = 6.5;
      p.lane_sigma_db = 3.0;
      p.temporal_sigma_db = 3.2;
      p.volatile_fraction = 0.35;
      p.volatile_sigma_db = 11.0;
      p.volatile_corr_s = 90.0;
      p.bulk_attenuation_db = 22.0;
      p.shadow_ephemeral_fraction = 0.55;
      p.ephemeral_corr_s = 12.0;
      break;
    case road::EnvironmentType::kDowntown:
      // Dense high-rise canyon: strongest interference churn — a quarter of
      // the channels carry heavy time-varying traffic (the Fig 2 study was
      // done downtown, where individual channels visibly change).
      p.tower_spacing_m = 400.0;
      p.tower_lateral_m = 90.0;
      p.path_loss_exponent = 3.5;
      p.shadow_long_sigma_db = 7.0;
      p.shadow_short_sigma_db = 6.0;
      p.lane_sigma_db = 3.0;
      p.temporal_sigma_db = 2.2;
      p.volatile_fraction = 0.25;
      p.volatile_sigma_db = 12.0;
      p.volatile_corr_s = 150.0;
      p.bulk_attenuation_db = 4.0;
      p.shadow_ephemeral_fraction = 0.30;
      p.ephemeral_corr_s = 30.0;
      break;
  }
  return p;
}

const GsmEnvProfile kProfiles[] = {
    make_profile(road::EnvironmentType::kTwoLaneSuburb),
    make_profile(road::EnvironmentType::kFourLaneUrban),
    make_profile(road::EnvironmentType::kEightLaneUrban),
    make_profile(road::EnvironmentType::kUnderElevated),
    make_profile(road::EnvironmentType::kDowntown),
};

}  // namespace

const GsmEnvProfile& env_profile(road::EnvironmentType env) noexcept {
  return kProfiles[static_cast<int>(env)];
}

}  // namespace rups::gsm
