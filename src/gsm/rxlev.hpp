#pragma once

#include <cstdint>

namespace rups::gsm {

/// GSM RXLEV reporting scale (3GPP TS 45.008): received level is quantized
/// to integer dB steps, RXLEV 0 = below -110 dBm, RXLEV 63 = above -48 dBm.
/// The simulated scanner reports through this quantizer, so downstream code
/// sees exactly what a real GSM baseband would report.
struct RxLev {
  static constexpr double kFloorDbm = -110.0;
  static constexpr double kCeilDbm = -48.0;
  static constexpr std::uint8_t kMax = 63;

  /// dBm → RXLEV (clamped).
  [[nodiscard]] static std::uint8_t from_dbm(double dbm) noexcept;

  /// RXLEV → representative dBm (bin lower edge + 0.5 dB, endpoints exact).
  [[nodiscard]] static double to_dbm(std::uint8_t rxlev) noexcept;

  /// Quantize a dBm value through the RXLEV scale (round trip).
  [[nodiscard]] static double quantize_dbm(double dbm) noexcept;
};

}  // namespace rups::gsm
