#include "gsm/path_loss.hpp"

#include <algorithm>
#include <cmath>

namespace rups::gsm {

PathLoss::PathLoss(double exponent, double carrier_mhz, double d0_m) noexcept
    : exponent_(exponent),
      d0_m_(std::max(1.0, d0_m)),
      pl0_db_(free_space_db(d0_m_, carrier_mhz)) {}

double PathLoss::free_space_db(double distance_m, double carrier_mhz) noexcept {
  const double d_km = std::max(distance_m, 1.0) / 1000.0;
  return 20.0 * std::log10(d_km) + 20.0 * std::log10(carrier_mhz) + 32.44;
}

double PathLoss::loss_db(double distance_m) const noexcept {
  const double d = std::max(distance_m, d0_m_);
  return pl0_db_ + 10.0 * exponent_ * std::log10(d / d0_m_);
}

}  // namespace rups::gsm
