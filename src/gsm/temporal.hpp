#pragma once

#include <cstdint>

#include "gsm/env_profile.hpp"

namespace rups::gsm {

/// Slow temporal variation of each channel's received level: a smooth
/// zero-mean process per channel plus, for a hashed subset of "volatile"
/// channels, a stronger and faster component (interference, carrier
/// reassignment, traffic load). Deterministic in (seed, channel, time).
///
/// This is the mechanism behind Fig 2: per-channel levels drift over
/// minutes, but because drifts are independent across channels, the
/// ACROSS-CHANNEL power-vector correlation stays high — and higher when
/// more channels are compared.
class TemporalFading {
 public:
  TemporalFading(std::uint64_t seed, const GsmEnvProfile& profile) noexcept;

  /// Offset (dB) to add to channel `channel_index` at absolute time t (s).
  [[nodiscard]] double offset_db(std::size_t channel_index,
                                 double time_s) const noexcept;

  /// Whether the hashed volatility coin marked this channel volatile.
  [[nodiscard]] bool is_volatile(std::size_t channel_index) const noexcept;

 private:
  std::uint64_t seed_;
  GsmEnvProfile profile_;
};

}  // namespace rups::gsm
