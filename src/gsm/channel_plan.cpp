#include "gsm/channel_plan.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/rng.hpp"

namespace rups::gsm {

ChannelPlan::ChannelPlan(std::vector<Arfcn> arfcns)
    : arfcns_(std::move(arfcns)) {
  if (arfcns_.empty()) {
    throw std::invalid_argument("ChannelPlan: empty channel list");
  }
  freqs_.reserve(arfcns_.size());
  bands_.assign(arfcns_.size(), Band::kRGsm900);
  for (Arfcn a : arfcns_) freqs_.push_back(downlink_mhz(a));
}

ChannelPlan ChannelPlan::full_r_gsm_900() {
  std::vector<Arfcn> chans;
  chans.reserve(194);
  for (Arfcn a = 0; a <= 124; ++a) chans.push_back(a);       // P-GSM
  for (Arfcn a = 955; a <= 1023; ++a) chans.push_back(a);    // R-GSM ext
  return ChannelPlan(std::move(chans));
}

ChannelPlan ChannelPlan::evaluation_subset(std::uint64_t seed,
                                           std::size_t count) {
  const ChannelPlan full = full_r_gsm_900();
  if (count >= full.size()) return full;
  // Deterministic Fisher–Yates prefix selection, then restore band order.
  std::vector<Arfcn> pool = full.arfcns();
  util::Rng rng(util::hash_combine(seed, 0x4348414eULL));  // "CHAN"
  for (std::size_t i = 0; i < count; ++i) {
    const auto j = static_cast<std::size_t>(
        rng.uniform_int(static_cast<std::int64_t>(i),
                        static_cast<std::int64_t>(pool.size()) - 1));
    std::swap(pool[i], pool[j]);
  }
  pool.resize(count);
  std::sort(pool.begin(), pool.end());
  return ChannelPlan(std::move(pool));
}

ChannelPlan ChannelPlan::fm_broadcast() {
  ChannelPlan plan;
  constexpr int kChannels = 206;  // 87.5 .. 108.0 MHz inclusive, 100 kHz
  plan.arfcns_.reserve(kChannels);
  plan.freqs_.reserve(kChannels);
  plan.bands_.assign(kChannels, Band::kFmBroadcast);
  for (int i = 0; i < kChannels; ++i) {
    plan.arfcns_.push_back(i);
    plan.freqs_.push_back(87.5 + 0.1 * i);
  }
  return plan;
}

ChannelPlan ChannelPlan::combined(const ChannelPlan& a, const ChannelPlan& b) {
  ChannelPlan out;
  out.arfcns_ = a.arfcns_;
  out.arfcns_.insert(out.arfcns_.end(), b.arfcns_.begin(), b.arfcns_.end());
  out.freqs_ = a.freqs_;
  out.freqs_.insert(out.freqs_.end(), b.freqs_.begin(), b.freqs_.end());
  out.bands_ = a.bands_;
  out.bands_.insert(out.bands_.end(), b.bands_.begin(), b.bands_.end());
  if (out.arfcns_.empty()) {
    throw std::invalid_argument("ChannelPlan::combined: empty");
  }
  return out;
}

double ChannelPlan::downlink_mhz(Arfcn arfcn) {
  if (arfcn >= 0 && arfcn <= 124) {
    return 935.0 + 0.2 * arfcn;
  }
  if (arfcn >= 955 && arfcn <= 1023) {
    return 935.0 + 0.2 * (arfcn - 1024);
  }
  throw std::out_of_range("ARFCN outside R-GSM-900");
}

}  // namespace rups::gsm
