#pragma once

#include "road/environment.hpp"

namespace rups::gsm {

/// Radio-environment parameters per road class. Calibrated (see
/// EXPERIMENTS.md) so the synthetic field reproduces the paper's empirical
/// statistics: Fig 2 (temporal stability), Fig 3 (geographical uniqueness),
/// Fig 4 (fine resolution: relative change >= ~0.4 at 1 m separation).
struct GsmEnvProfile {
  /// Mean spacing between serving towers along the road (m).
  double tower_spacing_m = 600.0;
  /// Typical lateral offset of towers from the road (m).
  double tower_lateral_m = 150.0;
  /// Log-distance path loss exponent.
  double path_loss_exponent = 3.2;
  /// Large-scale shadowing stddev (dB) and decorrelation length (m).
  double shadow_long_sigma_db = 6.0;
  double shadow_long_corr_m = 45.0;
  /// Small-scale multipath structure stddev (dB) and decorrelation length (m)
  /// — this short component is what gives the field its fine resolution.
  double shadow_short_sigma_db = 5.0;
  double shadow_short_corr_m = 1.6;
  /// Fraction of the short-scale VARIANCE that is ephemeral: fine multipath
  /// structure re-drawn continuously over ephemeral_corr_s (parked cars,
  /// overhead traffic). Two passes Delta-t apart see partially different
  /// fine structure, which is what limits SYN matching accuracy — largest
  /// under elevated decks.
  double shadow_ephemeral_fraction = 0.2;
  double ephemeral_corr_s = 40.0;
  /// Extra per-lane decorrelation (dB): distinct lanes see slightly
  /// different multipath (paper Fig 11, "8-lane, distinct lanes").
  double lane_sigma_db = 3.0;
  /// Stationary stddev (dB) of the slow temporal fading on stable channels.
  double temporal_sigma_db = 1.8;
  /// Temporal decorrelation time (s) of the slow fading.
  double temporal_corr_s = 600.0;
  /// Fraction of channels that are "volatile" (interference / reassignment)
  /// and their extra temporal stddev (dB).
  double volatile_fraction = 0.15;
  double volatile_sigma_db = 8.0;
  double volatile_corr_s = 180.0;
  /// Flat extra attenuation of the whole band (dB): concrete above the road
  /// (under-elevated) or canyon absorption.
  double bulk_attenuation_db = 0.0;
};

/// Profile lookup for a road environment.
[[nodiscard]] const GsmEnvProfile& env_profile(road::EnvironmentType env) noexcept;

}  // namespace rups::gsm
