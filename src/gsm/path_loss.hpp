#pragma once

namespace rups::gsm {

/// Log-distance path loss model:
///   PL(d) = PL(d0) + 10 * n * log10(d / d0)
/// with PL(d0) derived from free-space loss at the reference distance and
/// the carrier frequency. Distances below d0 clamp to d0.
class PathLoss {
 public:
  /// @param exponent   environment path loss exponent n (2..4)
  /// @param carrier_mhz carrier frequency (reference loss depends on it)
  /// @param d0_m       reference distance, default 100 m
  PathLoss(double exponent, double carrier_mhz, double d0_m = 100.0) noexcept;

  /// Path loss in dB at distance d (m).
  [[nodiscard]] double loss_db(double distance_m) const noexcept;

  /// Free-space path loss at distance d (m) and frequency f (MHz):
  /// 20 log10(d_km) + 20 log10(f_MHz) + 32.44.
  [[nodiscard]] static double free_space_db(double distance_m,
                                            double carrier_mhz) noexcept;

  [[nodiscard]] double exponent() const noexcept { return exponent_; }

 private:
  double exponent_;
  double d0_m_;
  double pl0_db_;
};

}  // namespace rups::gsm
