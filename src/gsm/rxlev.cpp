#include "gsm/rxlev.hpp"

#include <algorithm>
#include <cmath>

namespace rups::gsm {

std::uint8_t RxLev::from_dbm(double dbm) noexcept {
  if (dbm < kFloorDbm) return 0;
  if (dbm >= kCeilDbm) return kMax;
  const double steps = std::floor(dbm - kFloorDbm) + 1.0;
  return static_cast<std::uint8_t>(std::clamp(steps, 0.0, 63.0));
}

double RxLev::to_dbm(std::uint8_t rxlev) noexcept {
  if (rxlev == 0) return kFloorDbm;
  if (rxlev >= kMax) return kCeilDbm;
  return kFloorDbm + static_cast<double>(rxlev) - 0.5;
}

double RxLev::quantize_dbm(double dbm) noexcept { return to_dbm(from_dbm(dbm)); }

}  // namespace rups::gsm
