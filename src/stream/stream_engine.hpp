#pragma once

// StreamingEngine (DESIGN §17): the per-metre front end of the matcher.
// Instead of the round protocol's "exchange, then query" shape, a
// streaming ego ingests context continuously and keeps one estimate per
// neighbour fresh:
//
//   * ego context arrives one metre at a time (core::ContextTrajectory
//     append/eviction, PackedContext incremental sync underneath);
//   * each neighbour is either a *beacon* neighbour — its context arrives
//     via a BeaconSession diff protocol over the ARQ/fault stack — or an
//     *ideal* neighbour, estimated directly against the sender's pristine
//     context (the determinism / accuracy reference);
//   * every update re-estimates the neighbours whose view changed through
//     the shared core::FleetEngine, so steady-state per-metre estimates
//     are SynCache ±12 m re-verifications, not full searches.

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "core/fleet.hpp"
#include "stream/beacon.hpp"
#include "util/thread_pool.hpp"

namespace rups::stream {

struct StreamConfig {
  /// Per-ego engine configuration (trajectory geometry, SynCache policy).
  core::FleetConfig fleet{};
  /// Diff-protocol policy shared by every beacon neighbour.
  BeaconConfig beacon{};
};

/// One ego vehicle's streaming estimator. Not thread-safe as a whole (one
/// update at a time); per-neighbour estimation inside an update may be
/// sharded across a util::ThreadPool with bit-identical results.
class StreamingEngine {
 public:
  /// What one update() produced. References into the engine's scratch —
  /// valid until the next update().
  struct Update {
    /// Neighbours re-estimated this update (subset of the registered set,
    /// registration order preserved).
    std::vector<std::uint64_t> ids;
    /// results[i] belongs to ids[i].
    std::vector<core::FleetEngine::NeighbourResult> results;
    /// Per REGISTERED neighbour (registration order): how its beacon round
    /// ended. Ideal neighbours report kSynced when their context grew and
    /// kNoNews otherwise.
    std::vector<BeaconOutcome> outcomes;
  };

  explicit StreamingEngine(StreamConfig config = {});

  /// Register a beacon neighbour: context arrives via a BeaconSession on
  /// `link`/`channel` (channel may be nullptr for an ideal link).
  void add_neighbour(std::uint64_t id, v2v::DsrcLink* link,
                     v2v::FaultyChannel* channel);
  /// Register an ideal neighbour: estimates run directly against the
  /// sender context passed to update() — no codec, no channel.
  void add_neighbour(std::uint64_t id);
  /// Drop a neighbour (and its SynCache shard / beacon session).
  void remove_neighbour(std::uint64_t id);

  /// One streaming step. `senders[i]` is the CURRENT context of the i-th
  /// registered neighbour (registration order, size must match). Runs one
  /// beacon round per beacon neighbour, then re-estimates every neighbour
  /// whose (view, ego) pair gained metres since its last estimate.
  const Update& update(const core::ContextTrajectory& ego,
                       std::span<const core::ContextTrajectory* const> senders,
                       util::ThreadPool* pool = nullptr);

  [[nodiscard]] std::size_t neighbour_count() const noexcept {
    return neighbours_.size();
  }
  /// Beacon accounting of one neighbour; nullptr for ideal neighbours.
  [[nodiscard]] const BeaconStats* beacon_stats(std::uint64_t id) const;
  /// Receiver-side view of one neighbour (the sender context itself for
  /// ideal neighbours); nullptr for unknown ids.
  [[nodiscard]] const core::ContextTrajectory* view(std::uint64_t id) const;
  /// Wire bytes across all beacon neighbours so far.
  [[nodiscard]] std::size_t total_beacon_bytes() const noexcept;
  /// Estimates produced across the engine lifetime.
  [[nodiscard]] std::uint64_t estimates() const noexcept { return estimates_; }
  [[nodiscard]] core::FleetEngine& fleet() noexcept { return fleet_; }
  [[nodiscard]] const StreamConfig& config() const noexcept { return config_; }

 private:
  struct Neighbour {
    std::uint64_t id = 0;
    /// nullptr = ideal mode.
    std::unique_ptr<BeaconSession> beacon;
    /// View end metre at the last estimate (gain detector).
    std::uint64_t last_view_end = 0;
    /// Most recent sender context passed to update() (ideal mode only).
    const core::ContextTrajectory* last_sender = nullptr;
  };

  StreamConfig config_;
  core::FleetEngine fleet_;
  std::vector<Neighbour> neighbours_;
  /// Ego end metre at the last update that estimated anything.
  std::uint64_t last_ego_end_ = 0;
  std::uint64_t estimates_ = 0;
  Update update_;
  /// Batch scratch, rebuilt per update without steady-state allocation.
  std::vector<const core::ContextTrajectory*> batch_views_;
};

}  // namespace rups::stream
