#pragma once

// Beacon-diff V2V session (DESIGN §17). A streaming neighbour does not
// re-send its journey context per query; it announces a sequence watermark
// in a small periodic WsmPacket beacon and ships only the tail delta past
// the receiver's watermark — over the same ARQ/fault exchange stack the
// round-based path uses (v2v::ExchangeSession), so loss, reordering and
// corruption genuinely reach the diff protocol. Gap handling is
// watermark-based and bounded:
//
//   * a beacon that fails or degrades leaves the receiver watermark where
//     it was (v2v::V2vReceiver's idempotent gap bookkeeping), so the next
//     beacon re-requests the SAME metres — no gap can silently widen;
//   * `BeaconConfig::max_gap_rerequests` consecutive beacons without
//     catching up fall back to a full context re-sync, the recovery of
//     last resort.

#include <cstddef>
#include <cstdint>

#include "core/types.hpp"
#include "v2v/channel.hpp"
#include "v2v/exchange.hpp"
#include "v2v/link.hpp"
#include "v2v/receiver.hpp"

namespace rups::stream {

struct BeaconConfig {
  /// Consecutive beacons allowed to end short of the sender watermark
  /// before the session abandons diffing and re-transfers the full
  /// context. Bounds how long a lossy channel can hold the view stale.
  std::size_t max_gap_rerequests = 3;
  /// ARQ policy of the underlying per-beacon exchange.
  v2v::ExchangeConfig exchange{};
};

/// How one beacon round ended, from the receiver's point of view.
enum class BeaconOutcome : std::uint8_t {
  kSynced,     ///< tail delta caught the view up to the sender watermark
  kNoNews,     ///< watermark-only heartbeat: sender had nothing new
  kRecovered,  ///< caught up after earlier stale rounds (gap healed)
  kStale,      ///< beacon lost/degraded short of the watermark; re-request pending
  kResync,     ///< full context transfer (initial sync or gap fallback)
};

/// Stable label for metrics/logs ("synced", "no_news", ...).
[[nodiscard]] const char* beacon_outcome_name(BeaconOutcome o) noexcept;

/// Per-session protocol accounting.
struct BeaconStats {
  std::uint64_t beacons = 0;        ///< beacon rounds run
  std::uint64_t diffs = 0;          ///< rounds that shipped a tail delta
  std::uint64_t no_news = 0;        ///< watermark-only heartbeats
  std::uint64_t rerequests = 0;     ///< rounds that ended short of the watermark
  std::uint64_t resyncs = 0;        ///< full transfers (initial + fallback)
  std::uint64_t metres_gained = 0;  ///< context metres the view advanced
};

/// One receiver-side beacon-diff session against one sending neighbour.
/// Owns the receiver cache and the exchange protocol state; the sender's
/// live trajectory is passed per beacon (the simulation shortcut every
/// exchange user here takes — framing/channel damage still applies to
/// everything that crosses the link).
class BeaconSession {
 public:
  /// Wire size of a watermark-only heartbeat: one WsmPacket header
  /// (message id 4 + seq 2 + total 2 + crc 4) carrying the sender's
  /// 8-byte end watermark.
  static constexpr std::size_t kHeartbeatBytes = 20;

  /// `channels`/`capacity_m` size the receiver-side cache (match the
  /// sender's trajectory geometry). `channel` may be nullptr for an ideal
  /// link.
  BeaconSession(std::size_t channels, std::size_t capacity_m,
                v2v::DsrcLink* link, v2v::FaultyChannel* channel,
                BeaconConfig config = {});

  /// Run one beacon round against the sender's current context: heartbeat
  /// when the view is already at the sender watermark, tail delta from the
  /// receiver watermark otherwise, full re-sync when the view never synced
  /// or the gap bound tripped.
  BeaconOutcome beacon(const core::ContextTrajectory& sender);

  /// Receiver-side view of the neighbour (estimate against this).
  [[nodiscard]] const core::ContextTrajectory& view() const noexcept {
    return receiver_.received;
  }
  [[nodiscard]] std::uint64_t watermark() const noexcept {
    return receiver_.synced_metre;
  }
  [[nodiscard]] const BeaconStats& stats() const noexcept { return stats_; }
  /// Wire bytes so far: exchange payload bytes + heartbeat headers.
  [[nodiscard]] std::size_t total_bytes() const noexcept {
    return session_.total_bytes() + stats_.no_news * kHeartbeatBytes;
  }
  /// Simulated link seconds spent moving context (heartbeats are
  /// fire-and-forget broadcast frames; their airtime is negligible next to
  /// the ARQ rounds and is not modelled).
  [[nodiscard]] double total_seconds() const noexcept {
    return session_.total_seconds();
  }
  [[nodiscard]] const BeaconConfig& config() const noexcept { return config_; }

 private:
  BeaconConfig config_;
  v2v::ExchangeSession session_;
  v2v::V2vReceiver receiver_;
  /// Consecutive rounds that ended short of the sender watermark.
  std::size_t pending_rerequests_ = 0;
  BeaconStats stats_;
};

}  // namespace rups::stream
