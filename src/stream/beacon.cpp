#include "stream/beacon.hpp"

namespace rups::stream {

const char* beacon_outcome_name(BeaconOutcome o) noexcept {
  switch (o) {
    case BeaconOutcome::kSynced:
      return "synced";
    case BeaconOutcome::kNoNews:
      return "no_news";
    case BeaconOutcome::kRecovered:
      return "recovered";
    case BeaconOutcome::kStale:
      return "stale";
    case BeaconOutcome::kResync:
      return "resync";
  }
  return "unknown";
}

BeaconSession::BeaconSession(std::size_t channels, std::size_t capacity_m,
                             v2v::DsrcLink* link, v2v::FaultyChannel* channel,
                             BeaconConfig config)
    : config_(config),
      session_(link, channel, config.exchange),
      receiver_(channels, capacity_m) {}

BeaconOutcome BeaconSession::beacon(const core::ContextTrajectory& sender) {
  ++stats_.beacons;
  const std::uint64_t sender_end =
      sender.empty() ? 0 : sender.first_metre() + sender.size();

  const bool need_full = !receiver_.have_full ||
                         pending_rerequests_ >= config_.max_gap_rerequests;
  if (!need_full && receiver_.synced_metre >= sender_end) {
    // Sender watermark == receiver watermark: the beacon is a bare
    // heartbeat, nothing crosses the link but the header + watermark.
    ++stats_.no_news;
    return BeaconOutcome::kNoNews;
  }

  const bool recovering = pending_rerequests_ > 0;
  if (need_full) {
    ++stats_.resyncs;
    pending_rerequests_ = 0;  // the fallback consumed the budget
  } else {
    ++stats_.diffs;
  }
  const v2v::ExchangeResult result =
      need_full ? session_.exchange_full(sender)
                : session_.exchange_tail(sender, receiver_.synced_metre);

  const std::uint64_t before = receiver_.synced_metre;
  (void)receiver_.ingest(result, need_full);
  const std::uint64_t after = receiver_.synced_metre;
  if (after > before) stats_.metres_gained += after - before;

  // Caught up = the view holds a usable context whose end reached the
  // sender watermark announced by THIS beacon. (The sender may have moved
  // again by the next beacon; that is news, not a gap.)
  if (receiver_.have_full && after >= sender_end) {
    pending_rerequests_ = 0;
    if (need_full) return BeaconOutcome::kResync;
    return recovering ? BeaconOutcome::kRecovered : BeaconOutcome::kSynced;
  }

  // Short of the watermark: hold position (the receiver kept its
  // watermark — idempotent gap bookkeeping) and schedule a re-request.
  // After max_gap_rerequests consecutive short rounds the next beacon
  // falls back to a full re-sync.
  ++pending_rerequests_;
  ++stats_.rerequests;
  return BeaconOutcome::kStale;
}

}  // namespace rups::stream
