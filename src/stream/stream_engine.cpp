#include "stream/stream_engine.hpp"

#include "obs/metrics.hpp"
#include "obs/timer.hpp"

namespace rups::stream {
namespace {

struct StreamMetrics {
  obs::Counter& updates = obs::Registry::global().counter("stream.updates");
  obs::Counter& estimates =
      obs::Registry::global().counter("stream.estimates");
  obs::Counter& beacon_bytes =
      obs::Registry::global().counter("stream.beacon_bytes");
  obs::Histogram& update_us =
      obs::Registry::global().histogram("stream.update_us");
  obs::CounterFamily& outcomes = obs::Registry::global().counter_family(
      "stream.beacon_outcome", "outcome");
};

StreamMetrics& stream_metrics() {
  static StreamMetrics m;
  return m;
}

[[nodiscard]] std::uint64_t end_of(const core::ContextTrajectory& t) noexcept {
  return t.empty() ? 0 : t.first_metre() + t.size();
}

}  // namespace

StreamingEngine::StreamingEngine(StreamConfig config)
    : config_(config), fleet_(config.fleet) {}

void StreamingEngine::add_neighbour(std::uint64_t id, v2v::DsrcLink* link,
                                    v2v::FaultyChannel* channel) {
  Neighbour nb;
  nb.id = id;
  nb.beacon = std::make_unique<BeaconSession>(
      config_.fleet.rups.channels, config_.fleet.rups.context_capacity_m,
      link, channel, config_.beacon);
  neighbours_.push_back(std::move(nb));
}

void StreamingEngine::add_neighbour(std::uint64_t id) {
  Neighbour nb;
  nb.id = id;
  neighbours_.push_back(std::move(nb));
}

void StreamingEngine::remove_neighbour(std::uint64_t id) {
  for (std::size_t i = 0; i < neighbours_.size(); ++i) {
    if (neighbours_[i].id == id) {
      neighbours_.erase(neighbours_.begin() +
                        static_cast<std::ptrdiff_t>(i));
      fleet_.forget(id);
      return;
    }
  }
}

const BeaconStats* StreamingEngine::beacon_stats(std::uint64_t id) const {
  for (const Neighbour& nb : neighbours_) {
    if (nb.id == id) return nb.beacon ? &nb.beacon->stats() : nullptr;
  }
  return nullptr;
}

const core::ContextTrajectory* StreamingEngine::view(std::uint64_t id) const {
  for (const Neighbour& nb : neighbours_) {
    if (nb.id == id) return nb.beacon ? &nb.beacon->view() : nb.last_sender;
  }
  return nullptr;
}

std::size_t StreamingEngine::total_beacon_bytes() const noexcept {
  std::size_t total = 0;
  for (const Neighbour& nb : neighbours_) {
    if (nb.beacon) total += nb.beacon->total_bytes();
  }
  return total;
}

const StreamingEngine::Update& StreamingEngine::update(
    const core::ContextTrajectory& ego,
    std::span<const core::ContextTrajectory* const> senders,
    util::ThreadPool* pool) {
  StreamMetrics& metrics = stream_metrics();
  const double t0 = obs::now_us();

  update_.ids.clear();
  update_.outcomes.clear();
  batch_views_.clear();

  const std::uint64_t ego_end = end_of(ego);
  const bool ego_grew = ego_end != last_ego_end_;

  for (std::size_t i = 0; i < neighbours_.size(); ++i) {
    Neighbour& nb = neighbours_[i];
    const core::ContextTrajectory* sender =
        i < senders.size() ? senders[i] : nullptr;
    const core::ContextTrajectory* nb_view = nullptr;
    BeaconOutcome outcome = BeaconOutcome::kNoNews;
    if (nb.beacon) {
      if (sender != nullptr) {
        const std::size_t bytes_before = nb.beacon->total_bytes();
        outcome = nb.beacon->beacon(*sender);
        metrics.outcomes.with(beacon_outcome_name(outcome)).inc();
        metrics.beacon_bytes.inc(nb.beacon->total_bytes() - bytes_before);
      }
      nb_view = &nb.beacon->view();
    } else {
      nb.last_sender = sender;
      nb_view = sender;
      const std::uint64_t ideal_end =
          nb_view != nullptr ? end_of(*nb_view) : 0;
      outcome = ideal_end != nb.last_view_end ? BeaconOutcome::kSynced
                                              : BeaconOutcome::kNoNews;
    }
    update_.outcomes.push_back(outcome);

    const std::uint64_t view_end = nb_view != nullptr ? end_of(*nb_view) : 0;
    const bool view_grew = view_end != nb.last_view_end;
    nb.last_view_end = view_end;
    if (nb_view != nullptr && view_end != 0 && ego_end != 0 &&
        (ego_grew || view_grew)) {
      update_.ids.push_back(nb.id);
      batch_views_.push_back(nb_view);
    }
  }
  last_ego_end_ = ego_end;

  if (!update_.ids.empty()) {
    fleet_.estimate_batch_into(
        ego,
        std::span<const core::ContextTrajectory* const>(batch_views_.data(),
                                                        batch_views_.size()),
        std::span<const std::uint64_t>(update_.ids.data(),
                                       update_.ids.size()),
        pool, update_.results);
    std::uint64_t produced = 0;
    for (const auto& r : update_.results) {
      if (r.estimate.has_value()) ++produced;
    }
    estimates_ += produced;
    metrics.estimates.inc(produced);
  }

  metrics.updates.inc();
  metrics.update_us.record(obs::now_us() - t0);
  return update_;
}

}  // namespace rups::stream
