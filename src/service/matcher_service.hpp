#pragma once

// City-scale matcher service: a long-lived front end that partitions a
// fleet of vehicles into regional shards and answers relative-distance
// requests through per-vehicle core::FleetEngine state.
//
//   * Sharding is geographic: a vehicle belongs to the cell
//     floor(position / cell_m), and cells are folded onto shard_count
//     shards. All requests of one ego land in one shard per round, so
//     per-ego engine state evolves in submission order regardless of the
//     shard count — shard-routed results are bit-identical to a
//     single-process FleetEngine fed the same sequence, serial or pooled.
//   * Admission control is explicit: submit() returns a reasoned ticket
//     (queue full, session arena exhausted, unknown vehicle, round table
//     full) instead of blocking or growing queues. Rejections are counted
//     per reason (service.admission{reason=...}) and fed to the
//     HealthMonitor admission rule.
//   * Memory is bounded arenas: vehicles and pair sessions live in
//     util::FixedPool freelists, request queues are util::BoundedRing, and
//     per-ticket result slots are preallocated — after warm-up a steady
//     round performs no dynamic allocation (verified by the span-stage
//     alloc census; see bench_service_scaling).
//
// Round protocol (single-threaded ingest, optionally pooled drain):
//   begin_round(); observe(...)*; submit(...)*; drain(pool);
//   result(ticket)*.
//
// Streaming mode (DESIGN §17) runs alongside the round protocol: a
// subscription is a persistent (ego, neighbour) pair re-estimated by
// drain_stream() whenever the ego context gained metres since the last
// update — the per-vehicle FleetEngine SynCache turns each update into a
// ±12 m re-verification, so continuous estimates cost O(radius·w·k), not a
// full search. Subscriptions pin a pair session (the same arena bound as
// round traffic) and are torn down by unsubscribe()/deregister_vehicle().

#include <cstdint>
#include <limits>
#include <map>
#include <unordered_map>
#include <vector>

#include "core/fleet.hpp"
#include "obs/health.hpp"
#include "obs/metrics.hpp"
#include "util/fixed_pool.hpp"
#include "util/thread_pool.hpp"

namespace rups::service {

struct ServiceConfig {
  /// Per-vehicle engine configuration. Trajectory width/length come from
  /// fleet.rups (channels, context_capacity_m). per_neighbour_latency is
  /// forced off: the uint64-labeled latency family allocates per call.
  core::FleetConfig fleet{};
  std::size_t shard_count = 4;
  /// Geographic cell width (metres of road position) folded onto shards.
  double cell_m = 250.0;
  /// Per-shard request queue capacity (admission backpressure bound).
  std::size_t queue_capacity = 1024;
  /// Vehicle arena capacity (trajectories + packs + quantized mirrors).
  std::size_t max_vehicles = 1024;
  /// Pair-session arena capacity (one per distinct (ego, neighbour)).
  std::size_t max_sessions = 4096;
  /// Per-round ticket table size; 0 = shard_count * queue_capacity.
  std::size_t max_round_requests = 0;
};

class MatcherService {
 public:
  static constexpr std::uint32_t kInvalidIndex =
      std::numeric_limits<std::uint32_t>::max();

  enum class Admission : std::uint8_t {
    kAccepted = 0,
    kQueueFull,       ///< the ego's regional shard queue is at capacity
    kSessionsFull,    ///< pair-session arena exhausted
    kUnknownVehicle,  ///< ego or neighbour not registered
    kRoundFull,       ///< per-round ticket table exhausted
  };
  /// Stable label for metrics/logs ("accepted", "queue_full", ...).
  [[nodiscard]] static const char* admission_reason(Admission a) noexcept;

  /// Admission outcome of one submit. `index` addresses the result slot
  /// (valid until the next begin_round); `shard` is where the request ran.
  struct Ticket {
    Admission admission = Admission::kAccepted;
    std::uint32_t index = kInvalidIndex;
    std::uint32_t shard = 0;

    [[nodiscard]] bool accepted() const noexcept {
      return admission == Admission::kAccepted;
    }
  };

  /// Post-drain shard accounting for the last round.
  struct ShardStats {
    std::uint64_t processed = 0;  ///< requests drained this round
    double busy_us = 0.0;         ///< serial compute time this round
  };

  explicit MatcherService(ServiceConfig config = {});

  /// Admit a vehicle into the arena. Returns false (and counts a
  /// vehicles_full rejection) when the pool is exhausted.
  [[nodiscard]] bool register_vehicle(std::uint64_t id,
                                      double position_m = 0.0);
  /// Release a vehicle: its slot, every pair session touching it, the
  /// SynCache shards other egos keep for it, every streaming subscription
  /// on it, and any request of it still queued this round (the queued
  /// request's ticket resolves to "no estimate" instead of reading a
  /// released slot) all return to the freelists.
  bool deregister_vehicle(std::uint64_t id);

  /// Append one context-trajectory metre for `id` and update its road
  /// position (shard routing key). The evicted PowerVector's buffers are
  /// recycled into the next append — steady-state observes do not allocate.
  /// Returns false for unknown ids.
  bool observe(std::uint64_t id, double position_m, core::GeoSample geo,
               const core::PowerVector& power);

  /// Start a new round: invalidates all tickets and resets shard stats.
  void begin_round();

  /// Request the ego-vs-neighbour relative distance. Routed to the ego's
  /// regional shard; rejected with a reason instead of blocking.
  [[nodiscard]] Ticket submit(std::uint64_t ego_id,
                              std::uint64_t neighbour_id);

  /// Drain every shard queue. With a pool, shards are sliced across it
  /// (each shard stays single-consumer); results are identical either way.
  void drain(util::ThreadPool* pool = nullptr);

  /// Result slot of an accepted ticket, valid until the next begin_round.
  [[nodiscard]] const core::FleetEngine::NeighbourResult& result(
      const Ticket& ticket) const {
    return tickets_[ticket.index][0];
  }

  // --- Streaming mode -----------------------------------------------------

  /// Open (or return the existing) persistent streaming subscription for
  /// the pair. The ticket's `index` addresses the subscription slot and
  /// stays valid across rounds until unsubscribe()/deregister; rejections
  /// reuse the round reasons (kUnknownVehicle, kSessionsFull for the pinned
  /// pair session, kQueueFull when the subscription table is exhausted).
  [[nodiscard]] Ticket subscribe(std::uint64_t ego_id,
                                 std::uint64_t neighbour_id);
  /// Close the pair's subscription (the pinned session stays cached like
  /// any round-path session). Returns false when none exists.
  bool unsubscribe(std::uint64_t ego_id, std::uint64_t neighbour_id);

  /// Re-estimate every subscription whose ego context gained metres since
  /// its last update. With a pool, subscriptions are sliced by the ego's
  /// regional shard (all subscriptions of one ego share a shard, so
  /// per-ego engine state keeps a single consumer); results are identical
  /// serial or pooled.
  void drain_stream(util::ThreadPool* pool = nullptr);

  /// Latest streaming result of a subscription ticket. Holds no estimate
  /// until the first drain_stream() after the ego context grew.
  [[nodiscard]] const core::FleetEngine::NeighbourResult& stream_result(
      const Ticket& ticket) const {
    return stream_subs_[ticket.index].result[0];
  }
  [[nodiscard]] std::size_t stream_count() const noexcept {
    return stream_index_.size();
  }

  [[nodiscard]] std::size_t vehicle_count() const noexcept {
    return vehicles_.in_use();
  }
  [[nodiscard]] std::size_t session_count() const noexcept {
    return sessions_.in_use();
  }
  [[nodiscard]] std::size_t shard_count() const noexcept {
    return shards_.size();
  }
  [[nodiscard]] std::uint64_t rounds() const noexcept { return rounds_; }
  [[nodiscard]] const ShardStats& shard_stats(std::size_t shard) const {
    return shards_[shard].stats;
  }
  /// Per-request latencies (us) recorded by the last drain of `shard`.
  [[nodiscard]] const std::vector<double>& shard_latencies(
      std::size_t shard) const {
    return shards_[shard].latencies;
  }
  /// Which shard `id` currently routes to (by its last observed position).
  [[nodiscard]] std::uint32_t shard_of(std::uint64_t id) const;
  [[nodiscard]] const ServiceConfig& config() const noexcept {
    return config_;
  }

  void set_health_monitor(obs::HealthMonitor* monitor) noexcept {
    health_ = monitor;
  }

 private:
  struct VehicleSlot {
    VehicleSlot(std::uint64_t vid, double pos, const core::FleetConfig& fc)
        : id(vid),
          position_m(pos),
          traj(fc.rups.channels, fc.rups.context_capacity_m),
          spare(fc.rups.channels),
          engine(fc) {}

    std::uint64_t id;
    double position_m;
    core::ContextTrajectory traj;
    /// Recycled eviction buffer: append_evict returns the displaced
    /// PowerVector here so the next observe reuses its heap buffers.
    core::PowerVector spare;
    core::FleetEngine engine;
  };

  /// One live (ego, neighbour) pair. Its existence bounds how many
  /// SynCache shards the ego engines may grow.
  struct PairSession {
    std::uint32_t ego_slot = 0;
    std::uint32_t neighbour_slot = 0;
    std::uint64_t queries = 0;
  };

  struct QueuedRequest {
    std::uint32_t ego_slot = 0;
    std::uint32_t neighbour_slot = 0;
    std::uint32_t session = 0;
    std::uint32_t ticket = 0;
  };

  struct Shard {
    explicit Shard(std::size_t queue_capacity) : queue(queue_capacity) {}
    util::BoundedRing<QueuedRequest> queue;
    ShardStats stats;
    std::vector<double> latencies;  ///< per-request us, last drain
  };

  /// One persistent streaming subscription (see subscribe()).
  struct StreamSub {
    std::uint32_t session = 0;
    std::uint32_t ego_slot = 0;
    std::uint32_t neighbour_slot = 0;
    /// Ego context end metre at the last update (0 = never estimated).
    std::uint64_t last_end = 0;
    bool active = false;
    /// Single-element batch slot; capacity persists across updates.
    std::vector<core::FleetEngine::NeighbourResult> result;
  };

  [[nodiscard]] std::uint32_t shard_of_position(double position_m) const;
  void drain_shard(std::size_t shard_index);
  void drain_stream_shard(std::size_t shard_index);
  Ticket reject(Admission reason);
  /// Drop queued requests touching `slot` (deregister mid-round); their
  /// tickets resolve to an empty result instead of a released slot.
  void purge_queued(std::uint32_t slot);

  ServiceConfig config_;
  util::FixedPool<VehicleSlot> vehicles_;
  util::FixedPool<PairSession> sessions_;
  std::unordered_map<std::uint64_t, std::uint32_t> vehicle_index_;
  /// (ego_slot << 32 | neighbour_slot) -> session pool index.
  std::map<std::uint64_t, std::uint32_t> session_index_;
  std::vector<Shard> shards_;
  /// Per-ticket result slots: single-element batches whose capacity
  /// (including syn_points) persists across rounds.
  std::vector<std::vector<core::FleetEngine::NeighbourResult>> tickets_;
  /// Streaming subscriptions: slots recycled through stream_free_, looked
  /// up by the same (ego_slot, neighbour_slot) pair key as sessions.
  std::vector<StreamSub> stream_subs_;
  std::vector<std::uint32_t> stream_free_;
  std::map<std::uint64_t, std::uint32_t> stream_index_;
  std::uint32_t round_requests_ = 0;
  std::uint64_t rounds_ = 0;
  obs::HealthMonitor* health_ = nullptr;
  /// Cached registry handles (stable for the registry's lifetime) so the
  /// hot path skips the name lookup and its mutex.
  obs::Counter& m_requests_;
  obs::Counter& m_queries_;
  obs::Counter& m_estimates_;
  obs::CounterFamily& m_admission_;
  obs::Histogram& m_latency_;
  obs::Counter& m_stream_updates_;
  obs::Counter& m_stream_estimates_;
  obs::Histogram& m_stream_us_;
};

}  // namespace rups::service
