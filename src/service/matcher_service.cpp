#include "service/matcher_service.hpp"

#include <cmath>
#include <span>

#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/timer.hpp"

namespace rups::service {

namespace {

/// Session map key. Slot indices are < 2^32 by FixedPool construction.
constexpr std::uint64_t pair_key(std::uint32_t ego,
                                 std::uint32_t neighbour) noexcept {
  return (static_cast<std::uint64_t>(ego) << 32) | neighbour;
}

}  // namespace

const char* MatcherService::admission_reason(Admission a) noexcept {
  switch (a) {
    case Admission::kAccepted:
      return "accepted";
    case Admission::kQueueFull:
      return "queue_full";
    case Admission::kSessionsFull:
      return "sessions_full";
    case Admission::kUnknownVehicle:
      return "unknown_vehicle";
    case Admission::kRoundFull:
      return "round_full";
  }
  return "unknown";
}

MatcherService::MatcherService(ServiceConfig config)
    : config_(config),
      vehicles_(std::max<std::size_t>(1, config.max_vehicles)),
      sessions_(std::max<std::size_t>(1, config.max_sessions)),
      m_requests_(obs::Registry::global().counter("service.requests")),
      m_queries_(obs::Registry::global().counter("service.queries")),
      m_estimates_(obs::Registry::global().counter("service.estimates")),
      m_admission_(obs::Registry::global().counter_family(
          "service.admission", "reason")),
      m_latency_(obs::Registry::global().histogram("service.request_us")),
      m_stream_updates_(
          obs::Registry::global().counter("service.stream.updates")),
      m_stream_estimates_(
          obs::Registry::global().counter("service.stream.estimates")),
      m_stream_us_(obs::Registry::global().histogram("stream.update_us")) {
  config_.shard_count = std::max<std::size_t>(1, config_.shard_count);
  config_.queue_capacity = std::max<std::size_t>(1, config_.queue_capacity);
  if (config_.cell_m <= 0.0) config_.cell_m = 250.0;
  // The uint64-labeled per-neighbour latency family formats its label per
  // call, which allocates — incompatible with the zero-alloc round.
  config_.fleet.per_neighbour_latency = false;
  if (config_.max_round_requests == 0) {
    config_.max_round_requests =
        config_.shard_count * config_.queue_capacity;
  }
  shards_.reserve(config_.shard_count);
  for (std::size_t s = 0; s < config_.shard_count; ++s) {
    shards_.emplace_back(config_.queue_capacity);
    shards_.back().latencies.reserve(config_.queue_capacity);
  }
  tickets_.resize(config_.max_round_requests);
  vehicle_index_.reserve(vehicles_.capacity());
  obs::Registry::global().gauge("service.shards").set(
      static_cast<double>(shards_.size()));
}

bool MatcherService::register_vehicle(std::uint64_t id, double position_m) {
  obs::Registry& reg = obs::Registry::global();
  if (vehicle_index_.contains(id)) return false;
  const std::uint32_t slot =
      vehicles_.acquire_index(id, position_m, config_.fleet);
  if (slot == util::FixedPool<VehicleSlot>::npos) {
    reg.counter("service.register_rejected").inc();
    RUPS_LOG(kWarn) << "matcher service: vehicle arena full ("
                    << vehicles_.capacity() << "), rejecting id " << id;
    return false;
  }
  vehicle_index_.emplace(id, slot);
  reg.gauge("service.vehicles").set(static_cast<double>(vehicles_.in_use()));
  return true;
}

bool MatcherService::deregister_vehicle(std::uint64_t id) {
  const auto it = vehicle_index_.find(id);
  if (it == vehicle_index_.end()) return false;
  const std::uint32_t slot = it->second;

  // Requests still queued this round reference the slot by index; drop
  // them BEFORE the slot is released so a deregister between submit() and
  // drain() cannot make a worker estimate through a destroyed engine.
  purge_queued(slot);

  // Release every pair session touching the slot; other egos also drop the
  // SynCache shard they keep for this neighbour.
  for (auto sit = session_index_.begin(); sit != session_index_.end();) {
    const PairSession& session = sessions_[sit->second];
    if (session.ego_slot == slot || session.neighbour_slot == slot) {
      if (session.neighbour_slot == slot) {
        vehicles_[session.ego_slot].engine.forget(id);
      }
      sessions_.release_index(sit->second);
      sit = session_index_.erase(sit);
    } else {
      ++sit;
    }
  }

  // Streaming subscriptions on the slot go back to the freelist (their
  // pinned sessions were just released above).
  for (auto sub_it = stream_index_.begin(); sub_it != stream_index_.end();) {
    StreamSub& sub = stream_subs_[sub_it->second];
    if (sub.ego_slot == slot || sub.neighbour_slot == slot) {
      sub.active = false;
      stream_free_.push_back(sub_it->second);
      sub_it = stream_index_.erase(sub_it);
    } else {
      ++sub_it;
    }
  }

  vehicles_.release_index(slot);
  vehicle_index_.erase(it);
  obs::Registry& reg = obs::Registry::global();
  reg.gauge("service.vehicles").set(static_cast<double>(vehicles_.in_use()));
  reg.gauge("service.sessions").set(static_cast<double>(sessions_.in_use()));
  return true;
}

bool MatcherService::observe(std::uint64_t id, double position_m,
                             core::GeoSample geo,
                             const core::PowerVector& power) {
  const auto it = vehicle_index_.find(id);
  if (it == vehicle_index_.end()) return false;
  VehicleSlot& slot = vehicles_[it->second];
  slot.position_m = position_m;
  // Copy into the recycled buffer (equal width: no allocation), then swap
  // it for whatever the bounded trajectory evicts.
  slot.spare = power;
  slot.spare = slot.traj.append_evict(geo, std::move(slot.spare));
  return true;
}

void MatcherService::begin_round() {
  round_requests_ = 0;
  ++rounds_;
  for (Shard& shard : shards_) {
    shard.stats = ShardStats{};
    shard.latencies.clear();
  }
  obs::Registry::global().gauge("service.rounds").set(
      static_cast<double>(rounds_));
}

std::uint32_t MatcherService::shard_of_position(double position_m) const {
  const auto cell = static_cast<long long>(
      std::floor(position_m / config_.cell_m));
  const auto n = static_cast<long long>(shards_.size());
  return static_cast<std::uint32_t>(((cell % n) + n) % n);
}

std::uint32_t MatcherService::shard_of(std::uint64_t id) const {
  const auto it = vehicle_index_.find(id);
  if (it == vehicle_index_.end()) return 0;
  return shard_of_position(vehicles_[it->second].position_m);
}

MatcherService::Ticket MatcherService::reject(Admission reason) {
  m_admission_.with(admission_reason(reason)).inc();
  if (health_ != nullptr) health_->on_admission(false);
  Ticket t;
  t.admission = reason;
  return t;
}

MatcherService::Ticket MatcherService::submit(std::uint64_t ego_id,
                                              std::uint64_t neighbour_id) {
  obs::Registry& reg = obs::Registry::global();
  m_requests_.inc();

  const auto ego_it = vehicle_index_.find(ego_id);
  const auto nb_it = vehicle_index_.find(neighbour_id);
  if (ego_it == vehicle_index_.end() || nb_it == vehicle_index_.end() ||
      ego_id == neighbour_id) {
    return reject(Admission::kUnknownVehicle);
  }
  if (round_requests_ >= tickets_.size()) {
    return reject(Admission::kRoundFull);
  }

  const std::uint32_t ego_slot = ego_it->second;
  const std::uint32_t nb_slot = nb_it->second;
  const std::uint64_t key = pair_key(ego_slot, nb_slot);
  auto session_it = session_index_.find(key);
  if (session_it == session_index_.end()) {
    const std::uint32_t session = sessions_.acquire_index();
    if (session == util::FixedPool<PairSession>::npos) {
      return reject(Admission::kSessionsFull);
    }
    sessions_[session].ego_slot = ego_slot;
    sessions_[session].neighbour_slot = nb_slot;
    session_it = session_index_.emplace(key, session).first;
    reg.gauge("service.sessions").set(
        static_cast<double>(sessions_.in_use()));
  }

  const std::uint32_t shard_index =
      shard_of_position(vehicles_[ego_slot].position_m);
  Shard& shard = shards_[shard_index];
  QueuedRequest request;
  request.ego_slot = ego_slot;
  request.neighbour_slot = nb_slot;
  request.session = session_it->second;
  request.ticket = round_requests_;
  if (!shard.queue.push(request)) {
    return reject(Admission::kQueueFull);
  }

  ++round_requests_;
  m_admission_.with(admission_reason(Admission::kAccepted)).inc();
  if (health_ != nullptr) health_->on_admission(true);
  Ticket t;
  t.admission = Admission::kAccepted;
  t.index = request.ticket;
  t.shard = shard_index;
  return t;
}

void MatcherService::drain_shard(std::size_t shard_index) {
  Shard& shard = shards_[shard_index];
  const double start_us = obs::now_us();

  QueuedRequest request;
  while (shard.queue.pop(request)) {
    VehicleSlot& ego = vehicles_[request.ego_slot];
    VehicleSlot& neighbour = vehicles_[request.neighbour_slot];
    const core::ContextTrajectory* nb_traj = &neighbour.traj;

    const double t0 = obs::now_us();
    ego.engine.estimate_batch_into(
        ego.traj, std::span<const core::ContextTrajectory* const>(&nb_traj, 1),
        std::span<const std::uint64_t>(&neighbour.id, 1), nullptr,
        tickets_[request.ticket]);
    const double elapsed = obs::now_us() - t0;

    ++sessions_[request.session].queries;
    ++shard.stats.processed;
    if (shard.latencies.size() < shard.latencies.capacity()) {
      shard.latencies.push_back(elapsed);
    }
    m_latency_.record(elapsed);
    m_queries_.inc();
    if (tickets_[request.ticket][0].estimate.has_value()) {
      m_estimates_.inc();
    }
  }
  shard.stats.busy_us = obs::now_us() - start_us;
}

void MatcherService::drain(util::ThreadPool* pool) {
  if (pool == nullptr || shards_.size() <= 1) {
    for (std::size_t s = 0; s < shards_.size(); ++s) drain_shard(s);
    return;
  }
  // One slice per shard; every shard queue keeps a single consumer, so the
  // unsynchronized BoundedRing stays safe and results match serial drains.
  pool->parallel_for(0, shards_.size(),
                     [this](std::size_t s) { drain_shard(s); });
}

void MatcherService::purge_queued(std::uint32_t slot) {
  for (Shard& shard : shards_) {
    const std::size_t pending = shard.queue.size();
    QueuedRequest request;
    for (std::size_t i = 0; i < pending; ++i) {
      if (!shard.queue.pop(request)) break;
      if (request.ego_slot == slot || request.neighbour_slot == slot) {
        // The ticket was already handed out; resolve it to "no estimate"
        // (same shape a below-threshold query produces).
        auto& result = tickets_[request.ticket];
        result.resize(1);
        result[0].estimate.reset();
        result[0].syn_points.clear();
        result[0].latency_us = 0.0;
        obs::Registry::global().counter("service.requests_purged").inc();
        continue;
      }
      (void)shard.queue.push(request);  // cannot fail: one slot just freed
    }
  }
}

MatcherService::Ticket MatcherService::subscribe(std::uint64_t ego_id,
                                                 std::uint64_t neighbour_id) {
  obs::Registry& reg = obs::Registry::global();
  m_requests_.inc();

  const auto ego_it = vehicle_index_.find(ego_id);
  const auto nb_it = vehicle_index_.find(neighbour_id);
  if (ego_it == vehicle_index_.end() || nb_it == vehicle_index_.end() ||
      ego_id == neighbour_id) {
    return reject(Admission::kUnknownVehicle);
  }
  const std::uint32_t ego_slot = ego_it->second;
  const std::uint32_t nb_slot = nb_it->second;
  const std::uint64_t key = pair_key(ego_slot, nb_slot);

  const auto accept = [&](std::uint32_t sub_index) {
    m_admission_.with(admission_reason(Admission::kAccepted)).inc();
    if (health_ != nullptr) health_->on_admission(true);
    Ticket t;
    t.admission = Admission::kAccepted;
    t.index = sub_index;
    t.shard = shard_of_position(vehicles_[ego_slot].position_m);
    return t;
  };

  // Idempotent: re-subscribing an open pair returns the existing slot.
  if (const auto sub_it = stream_index_.find(key);
      sub_it != stream_index_.end()) {
    return accept(sub_it->second);
  }

  // Pin the pair session — the same arena bound the round path admits
  // against, so subscriptions cannot grow SynCache state past max_sessions.
  auto session_it = session_index_.find(key);
  if (session_it == session_index_.end()) {
    const std::uint32_t session = sessions_.acquire_index();
    if (session == util::FixedPool<PairSession>::npos) {
      return reject(Admission::kSessionsFull);
    }
    sessions_[session].ego_slot = ego_slot;
    sessions_[session].neighbour_slot = nb_slot;
    session_it = session_index_.emplace(key, session).first;
    reg.gauge("service.sessions").set(
        static_cast<double>(sessions_.in_use()));
  }

  std::uint32_t sub_index;
  if (!stream_free_.empty()) {
    sub_index = stream_free_.back();
    stream_free_.pop_back();
  } else if (stream_subs_.size() < sessions_.capacity()) {
    sub_index = static_cast<std::uint32_t>(stream_subs_.size());
    stream_subs_.emplace_back();
  } else {
    return reject(Admission::kQueueFull);
  }

  StreamSub& sub = stream_subs_[sub_index];
  sub.session = session_it->second;
  sub.ego_slot = ego_slot;
  sub.neighbour_slot = nb_slot;
  sub.last_end = 0;
  sub.active = true;
  sub.result.resize(1);
  sub.result[0].estimate.reset();
  sub.result[0].syn_points.clear();
  sub.result[0].latency_us = 0.0;
  stream_index_.emplace(key, sub_index);
  reg.gauge("service.streams").set(
      static_cast<double>(stream_index_.size()));
  return accept(sub_index);
}

bool MatcherService::unsubscribe(std::uint64_t ego_id,
                                 std::uint64_t neighbour_id) {
  const auto ego_it = vehicle_index_.find(ego_id);
  const auto nb_it = vehicle_index_.find(neighbour_id);
  if (ego_it == vehicle_index_.end() || nb_it == vehicle_index_.end()) {
    return false;
  }
  const auto sub_it =
      stream_index_.find(pair_key(ego_it->second, nb_it->second));
  if (sub_it == stream_index_.end()) return false;
  stream_subs_[sub_it->second].active = false;
  stream_free_.push_back(sub_it->second);
  stream_index_.erase(sub_it);
  obs::Registry::global().gauge("service.streams").set(
      static_cast<double>(stream_index_.size()));
  return true;
}

void MatcherService::drain_stream_shard(std::size_t shard_index) {
  for (StreamSub& sub : stream_subs_) {
    if (!sub.active) continue;
    VehicleSlot& ego = vehicles_[sub.ego_slot];
    if (shard_of_position(ego.position_m) != shard_index) continue;
    const core::ContextTrajectory& traj = ego.traj;
    const std::uint64_t end =
        traj.empty() ? 0 : traj.first_metre() + traj.size();
    if (end == sub.last_end) continue;  // no new context since last update

    VehicleSlot& neighbour = vehicles_[sub.neighbour_slot];
    const core::ContextTrajectory* nb_traj = &neighbour.traj;
    const double t0 = obs::now_us();
    ego.engine.estimate_batch_into(
        traj, std::span<const core::ContextTrajectory* const>(&nb_traj, 1),
        std::span<const std::uint64_t>(&neighbour.id, 1), nullptr,
        sub.result);
    m_stream_us_.record(obs::now_us() - t0);

    sub.last_end = end;
    ++sessions_[sub.session].queries;
    m_stream_updates_.inc();
    if (sub.result[0].estimate.has_value()) m_stream_estimates_.inc();
  }
}

void MatcherService::drain_stream(util::ThreadPool* pool) {
  if (pool == nullptr || shards_.size() <= 1) {
    for (std::size_t s = 0; s < shards_.size(); ++s) drain_stream_shard(s);
    return;
  }
  // Same single-consumer discipline as drain(): an ego's subscriptions all
  // land in its positional shard, so per-ego engine state never crosses a
  // slice boundary.
  pool->parallel_for(0, shards_.size(),
                     [this](std::size_t s) { drain_stream_shard(s); });
}

}  // namespace rups::service
