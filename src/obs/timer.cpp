#include "obs/timer.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>

namespace rups::obs {

namespace {

std::atomic<TraceSink*> g_trace_sink{nullptr};

std::chrono::steady_clock::time_point process_start() noexcept {
  static const auto start = std::chrono::steady_clock::now();
  return start;
}

// Touch the epoch during static init so now_us() is monotone from startup.
[[maybe_unused]] const auto g_epoch_init = process_start();

}  // namespace

double now_us() noexcept {
  const auto d = std::chrono::steady_clock::now() - process_start();
  return std::chrono::duration<double, std::micro>(d).count();
}

std::uint32_t this_thread_tid() noexcept {
  static std::atomic<std::uint32_t> next{0};
  thread_local const std::uint32_t tid =
      next.fetch_add(1, std::memory_order_relaxed);
  return tid;
}

void set_trace_sink(TraceSink* sink) noexcept {
  g_trace_sink.store(sink, std::memory_order_release);
}

TraceSink* trace_sink() noexcept {
  return g_trace_sink.load(std::memory_order_acquire);
}

ChromeTraceSink::ChromeTraceSink(const std::filesystem::path& path)
    : out_(path) {
  out_ << "[\n";
}

ChromeTraceSink::~ChromeTraceSink() {
  std::lock_guard lock(mutex_);
  out_ << (events_ == 0 ? "]\n" : "\n]\n");
}

void ChromeTraceSink::emit(const TraceEvent& event) {
  char line[256];
  // Complete event ("ph":"X"): chrome://tracing nests overlapping spans of
  // one tid by duration automatically.
  std::snprintf(line, sizeof(line),
                "{\"name\": \"%s\", \"cat\": \"rups\", \"ph\": \"X\", "
                "\"ts\": %.3f, \"dur\": %.3f, \"pid\": 1, \"tid\": %u}",
                event.name, event.ts_us, event.dur_us, event.tid);
  std::lock_guard lock(mutex_);
  if (events_ > 0) out_ << ",\n";
  out_ << line;
  ++events_;
}

}  // namespace rups::obs
