#include "obs/timer.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <vector>

namespace rups::obs {

namespace {

std::atomic<TraceSink*> g_trace_sink{nullptr};

std::chrono::steady_clock::time_point process_start() noexcept {
  static const auto start = std::chrono::steady_clock::now();
  return start;
}

// Touch the epoch during static init so now_us() is monotone from startup.
[[maybe_unused]] const auto g_epoch_init = process_start();

// The span stack is always compiled (it is tiny and lets the always-on
// recorder/tooling call current_span()); only enabled ObsTimers push onto
// it, so under RUPS_OBS_DISABLED it simply stays empty.
thread_local std::vector<SpanRecord> t_span_stack;

// --- cross-thread sampling mirror -----------------------------------------
//
// The sampling profiler needs to read *other* threads' span stacks, which
// thread_local storage cannot offer. Each thread therefore mirrors its
// stack (names only, fixed depth) into a PublishedStack on every push/pop,
// guarded by a seqlock: version is odd while a write is in progress, and a
// reader only accepts a sample whose version was even and unchanged across
// the payload read. Every field is an atomic, so torn reads are impossible
// at the language level; the version check removes cross-field skew.
// PublishedStacks are leaked: a sampler may legitimately read one after
// its owning thread exited (balanced RAII spans leave depth 0 behind).

constexpr std::size_t kPublishedDepth = 16;

struct PublishedStack {
  std::uint32_t tid = 0;
  std::atomic<std::uint32_t> version{0};
  std::atomic<std::uint32_t> depth{0};
  std::atomic<const char*> names[kPublishedDepth] = {};
};

struct StackDirectory {
  std::mutex mutex;
  std::vector<PublishedStack*> stacks;
};

StackDirectory& stack_directory() {
  static StackDirectory* dir = new StackDirectory();
  return *dir;
}

PublishedStack& published_stack() {
  thread_local PublishedStack* stack = [] {
    auto* s = new PublishedStack();
    s->tid = this_thread_tid();
    StackDirectory& dir = stack_directory();
    std::lock_guard lock(dir.mutex);
    dir.stacks.push_back(s);
    return s;
  }();
  return *stack;
}

void publish_stack() noexcept {
  PublishedStack& p = published_stack();
  const std::uint32_t v = p.version.load(std::memory_order_relaxed);
  p.version.store(v + 1, std::memory_order_relaxed);  // odd: writing
  std::atomic_thread_fence(std::memory_order_release);
  const std::size_t n = std::min(t_span_stack.size(), kPublishedDepth);
  for (std::size_t i = 0; i < n; ++i) {
    p.names[i].store(t_span_stack[i].name, std::memory_order_relaxed);
  }
  p.depth.store(static_cast<std::uint32_t>(n), std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_release);
  p.version.store(v + 2, std::memory_order_release);
}

/// Thread labels, indexed by dense tid. Guarded by its own mutex; leaked
/// so labels survive static teardown (trace sinks may close at exit).
struct ThreadLabels {
  std::mutex mutex;
  std::vector<const char*> labels;
};

ThreadLabels& thread_labels() {
  static ThreadLabels* labels = new ThreadLabels();
  return *labels;
}

/// Sinks still open, for the atexit JSON-close guarantee. Lock order is
/// always registry mutex -> sink mutex (never the reverse).
struct SinkRegistry {
  std::mutex mutex;
  std::vector<ChromeTraceSink*> open;
};

SinkRegistry& sink_registry() {
  static SinkRegistry* reg = new SinkRegistry();
  return *reg;
}

void close_open_sinks() {
  SinkRegistry& reg = sink_registry();
  std::lock_guard lock(reg.mutex);
  for (ChromeTraceSink* sink : reg.open) sink->close();
}

void register_sink(ChromeTraceSink* sink) {
  SinkRegistry& reg = sink_registry();
  std::lock_guard lock(reg.mutex);
  if (reg.open.empty()) {
    static const int once = std::atexit(close_open_sinks);
    (void)once;
  }
  reg.open.push_back(sink);
}

void unregister_sink(ChromeTraceSink* sink) {
  SinkRegistry& reg = sink_registry();
  std::lock_guard lock(reg.mutex);
  reg.open.erase(std::remove(reg.open.begin(), reg.open.end(), sink),
                 reg.open.end());
}

}  // namespace

double now_us() noexcept {
  const auto d = std::chrono::steady_clock::now() - process_start();
  return std::chrono::duration<double, std::micro>(d).count();
}

std::uint32_t this_thread_tid() noexcept {
  static std::atomic<std::uint32_t> next{0};
  thread_local const std::uint32_t tid =
      next.fetch_add(1, std::memory_order_relaxed);
  return tid;
}

void set_thread_label(const char* label) noexcept {
  const std::uint32_t tid = this_thread_tid();
  ThreadLabels& tl = thread_labels();
  std::lock_guard lock(tl.mutex);
  if (tl.labels.size() <= tid) tl.labels.resize(tid + 1, nullptr);
  tl.labels[tid] = label;
}

const char* thread_label(std::uint32_t tid) noexcept {
  ThreadLabels& tl = thread_labels();
  std::lock_guard lock(tl.mutex);
  return tid < tl.labels.size() ? tl.labels[tid] : nullptr;
}

SpanContext current_span() noexcept {
  if (t_span_stack.empty()) return {};
  const SpanRecord& top = t_span_stack.back();
  return {top.trace_id, top.span_id, this_thread_tid(), now_us()};
}

std::vector<SpanRecord> active_span_chain() { return t_span_stack; }

std::uint64_t next_span_id() noexcept {
  static std::atomic<std::uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

std::vector<SampledStack> sample_span_stacks() {
  std::vector<SampledStack> out;
  StackDirectory& dir = stack_directory();
  std::lock_guard lock(dir.mutex);
  out.reserve(dir.stacks.size());
  for (PublishedStack* p : dir.stacks) {
    const char* frames[kPublishedDepth];
    std::uint32_t depth = 0;
    bool consistent = false;
    for (int attempt = 0; attempt < 8 && !consistent; ++attempt) {
      const std::uint32_t v1 = p->version.load(std::memory_order_acquire);
      if ((v1 & 1u) != 0) continue;  // write in progress
      depth = std::min(p->depth.load(std::memory_order_relaxed),
                       static_cast<std::uint32_t>(kPublishedDepth));
      for (std::uint32_t i = 0; i < depth; ++i) {
        frames[i] = p->names[i].load(std::memory_order_relaxed);
      }
      std::atomic_thread_fence(std::memory_order_acquire);
      consistent = p->version.load(std::memory_order_relaxed) == v1;
    }
    if (!consistent || depth == 0) continue;
    SampledStack sample;
    sample.tid = p->tid;
    sample.frames.assign(frames, frames + depth);
    out.push_back(std::move(sample));
  }
  return out;
}

namespace detail {

const char* current_span_name() noexcept {
  return t_span_stack.empty() ? nullptr : t_span_stack.back().name;
}

void span_push(const SpanRecord& record) {
  t_span_stack.push_back(record);
  publish_stack();
}

void span_pop() noexcept {
  if (!t_span_stack.empty()) t_span_stack.pop_back();
  publish_stack();
}

}  // namespace detail

void set_trace_sink(TraceSink* sink) noexcept {
  g_trace_sink.store(sink, std::memory_order_release);
}

TraceSink* trace_sink() noexcept {
  return g_trace_sink.load(std::memory_order_acquire);
}

ChromeTraceSink::ChromeTraceSink(const std::filesystem::path& path)
    : out_(path) {
  out_ << "[\n";
  {
    std::lock_guard lock(mutex_);
    line_locked(
        "{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 1, "
        "\"args\": {\"name\": \"rups\"}}");
  }
  register_sink(this);
}

ChromeTraceSink::~ChromeTraceSink() {
  // Unregister before closing: the atexit hook holds the registry mutex
  // while closing sinks, so this order keeps locking acyclic.
  unregister_sink(this);
  close();
}

void ChromeTraceSink::close() {
  std::lock_guard lock(mutex_);
  if (closed_) return;
  closed_ = true;
  out_ << (lines_ == 0 ? "]\n" : "\n]\n");
  out_.flush();
}

void ChromeTraceSink::line_locked(const char* text) {
  if (lines_ > 0) out_ << ",\n";
  out_ << text;
  ++lines_;
}

void ChromeTraceSink::thread_metadata_locked(std::uint32_t tid) {
  if (!tids_named_.insert(tid).second) return;
  const char* label = thread_label(tid);
  char fallback[32];
  if (label == nullptr) {
    std::snprintf(fallback, sizeof(fallback), "rups thread %u", tid);
    label = fallback;
  }
  char line[192];
  std::snprintf(line, sizeof(line),
                "{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, "
                "\"tid\": %u, \"args\": {\"name\": \"%s\"}}",
                tid, label);
  line_locked(line);
}

void ChromeTraceSink::emit(const TraceEvent& event) {
  char line[320];
  // Complete event ("ph":"X"): chrome://tracing nests overlapping spans of
  // one tid by duration automatically. Span ids travel in args where both
  // chrome://tracing and Perfetto surface them in the selection panel.
  if (event.span_id != 0) {
    std::snprintf(
        line, sizeof(line),
        "{\"name\": \"%s\", \"cat\": \"rups\", \"ph\": \"X\", "
        "\"ts\": %.3f, \"dur\": %.3f, \"pid\": 1, \"tid\": %u, "
        "\"args\": {\"trace\": %llu, \"span\": %llu, \"parent\": %llu}}",
        event.name, event.ts_us, event.dur_us, event.tid,
        static_cast<unsigned long long>(event.trace_id),
        static_cast<unsigned long long>(event.span_id),
        static_cast<unsigned long long>(event.parent_id));
  } else {
    std::snprintf(line, sizeof(line),
                  "{\"name\": \"%s\", \"cat\": \"rups\", \"ph\": \"X\", "
                  "\"ts\": %.3f, \"dur\": %.3f, \"pid\": 1, \"tid\": %u}",
                  event.name, event.ts_us, event.dur_us, event.tid);
  }
  std::lock_guard lock(mutex_);
  if (closed_) return;
  thread_metadata_locked(event.tid);
  line_locked(line);
  events_.fetch_add(1, std::memory_order_relaxed);
  // Periodic flush: an aborted run loses at most one batch of lines, and
  // the atexit close still terminates the array.
  if (lines_ % 32 == 0) out_.flush();
}

void ChromeTraceSink::emit_flow(const FlowEvent& event) {
  // Flow start ("s") binds to the enclosing slice on the dispatching
  // thread, flow finish ("f", bp:"e") to the destination slice; matching
  // ids draw the Perfetto arrow.
  char start[224];
  std::snprintf(start, sizeof(start),
                "{\"name\": \"%s\", \"cat\": \"rups.flow\", \"ph\": \"s\", "
                "\"id\": %llu, \"ts\": %.3f, \"pid\": 1, \"tid\": %u}",
                event.name, static_cast<unsigned long long>(event.id),
                event.src_ts_us, event.src_tid);
  char finish[224];
  std::snprintf(finish, sizeof(finish),
                "{\"name\": \"%s\", \"cat\": \"rups.flow\", \"ph\": \"f\", "
                "\"bp\": \"e\", \"id\": %llu, \"ts\": %.3f, \"pid\": 1, "
                "\"tid\": %u}",
                event.name, static_cast<unsigned long long>(event.id),
                event.dst_ts_us, event.dst_tid);
  std::lock_guard lock(mutex_);
  if (closed_) return;
  thread_metadata_locked(event.src_tid);
  thread_metadata_locked(event.dst_tid);
  line_locked(start);
  line_locked(finish);
  events_.fetch_add(2, std::memory_order_relaxed);
}

}  // namespace rups::obs
