#pragma once

// Umbrella header for the rups::obs observability subsystem: metrics
// registry (counters / gauges / fixed-bucket histograms and their labeled
// families), sim-time windowed time-series, scoped timers with causal
// spans and Chrome trace_event output, the structured logger, the flight
// recorder with anomaly diagnostics bundles, and the health/SLO monitor.
// See README.md's "Observability", "Telemetry" and "Diagnostics" sections
// for usage and DESIGN.md for how metric names and health rules map onto
// the paper's cost and availability metrics (Secs. V–VI).

#include "obs/alloc.hpp"      // IWYU pragma: export
#include "obs/expo.hpp"       // IWYU pragma: export
#include "obs/health.hpp"     // IWYU pragma: export
#include "obs/log.hpp"        // IWYU pragma: export
#include "obs/metrics.hpp"    // IWYU pragma: export
#include "obs/profiler.hpp"   // IWYU pragma: export
#include "obs/recorder.hpp"   // IWYU pragma: export
#include "obs/snapshot.hpp"   // IWYU pragma: export
#include "obs/timer.hpp"      // IWYU pragma: export
#include "obs/timeseries.hpp" // IWYU pragma: export
