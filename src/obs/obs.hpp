#pragma once

// Umbrella header for the rups::obs observability subsystem: metrics
// registry (counters / gauges / fixed-bucket histograms), scoped timers
// with Chrome trace_event spans, and the structured logger. See
// README.md's "Observability" section for usage and DESIGN.md for how
// metric names map onto the paper's cost metrics (Sec. VI-E).

#include "obs/log.hpp"      // IWYU pragma: export
#include "obs/metrics.hpp"  // IWYU pragma: export
#include "obs/snapshot.hpp" // IWYU pragma: export
#include "obs/timer.hpp"    // IWYU pragma: export
