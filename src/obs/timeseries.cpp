#include "obs/timeseries.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>

#include "util/csv.hpp"
#include "util/json.hpp"

namespace rups::obs {

namespace {

std::string escaped(const std::string& s) { return util::json_quote(s); }

std::string num(double v) {
  if (std::isnan(v)) return "null";
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string num_array(const std::vector<double>& values) {
  std::string out = "[";
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i > 0) out += ", ";
    out += num(values[i]);
  }
  out += "]";
  return out;
}

std::vector<double> parse_num_array(const util::JsonValue* v,
                                    const char* what) {
  if (v == nullptr || !v->is_array()) {
    throw std::runtime_error(std::string("time series JSON: missing ") +
                             what);
  }
  std::vector<double> out;
  out.reserve(v->as_array().size());
  for (const util::JsonValue& e : v->as_array()) out.push_back(e.as_number());
  return out;
}

}  // namespace

const SeriesColumn* TimeSeriesData::column(const std::string& name,
                                           const std::string& kind) const {
  for (const SeriesColumn& col : columns) {
    if (col.name == name && col.kind == kind) return &col;
  }
  return nullptr;
}

std::string TimeSeriesData::to_json() const {
  std::string out = "{\n";
  out += "  \"kind\": \"rups_time_series\",\n";
  out += "  \"window_s\": " + num(window_s) + ",\n";
  out += "  \"window_begin_s\": " + num_array(window_begin_s) + ",\n";
  out += "  \"window_end_s\": " + num_array(window_end_s) + ",\n";
  out += "  \"columns\": [";
  for (std::size_t i = 0; i < columns.size(); ++i) {
    const SeriesColumn& col = columns[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"name\": " + escaped(col.name) +
           ", \"kind\": " + escaped(col.kind) +
           ", \"values\": " + num_array(col.values) + "}";
  }
  out += columns.empty() ? "]\n" : "\n  ]\n";
  out += "}\n";
  return out;
}

TimeSeriesData TimeSeriesData::from_json(const std::string& text) {
  const util::JsonValue doc = util::JsonValue::parse(text);
  if (!doc.is_object()) {
    throw std::runtime_error("time series JSON: not an object");
  }
  TimeSeriesData data;
  data.window_s = doc.number_or("window_s", 0.0);
  data.window_begin_s =
      parse_num_array(doc.find("window_begin_s"), "window_begin_s");
  data.window_end_s = parse_num_array(doc.find("window_end_s"), "window_end_s");
  const util::JsonValue* cols = doc.find("columns");
  if (cols == nullptr || !cols->is_array()) {
    throw std::runtime_error("time series JSON: missing columns");
  }
  for (const util::JsonValue& c : cols->as_array()) {
    SeriesColumn col;
    col.name = c.string_or("name", "");
    col.kind = c.string_or("kind", "");
    col.values = parse_num_array(c.find("values"), "column values");
    if (col.values.size() != data.window_end_s.size()) {
      throw std::runtime_error("time series JSON: column '" + col.name +
                               "' length mismatch");
    }
    data.columns.push_back(std::move(col));
  }
  return data;
}

void TimeSeriesData::write_csv(util::CsvWriter& out) const {
  std::vector<std::string> header{"window_begin_s", "window_end_s"};
  header.reserve(columns.size() + 2);
  for (const SeriesColumn& col : columns) {
    header.push_back(col.name + "#" + col.kind);
  }
  out.row(header);
  for (std::size_t w = 0; w < windows(); ++w) {
    std::vector<double> row{window_begin_s[w], window_end_s[w]};
    row.reserve(columns.size() + 2);
    for (const SeriesColumn& col : columns) row.push_back(col.values[w]);
    out.row(row);
  }
}

double window_quantile(const std::vector<double>& bounds,
                       const std::vector<std::uint64_t>& buckets, double q) {
  std::uint64_t total = 0;
  for (std::uint64_t b : buckets) total += b;
  if (total == 0 || buckets.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double rank = q * static_cast<double>(total);
  double cumulative = 0.0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    const double in_bucket = static_cast<double>(buckets[i]);
    if (in_bucket == 0.0) continue;
    if (cumulative + in_bucket >= rank) {
      if (i >= bounds.size()) {
        // Unbounded overflow bucket: the largest finite edge is the best
        // statement the window delta can make.
        return bounds.empty() ? 0.0 : bounds.back();
      }
      const double lower = i == 0 ? 0.0 : bounds[i - 1];
      const double upper = bounds[i];
      const double frac = (rank - cumulative) / in_bucket;
      return lower + (upper - lower) * std::clamp(frac, 0.0, 1.0);
    }
    cumulative += in_bucket;
  }
  return bounds.empty() ? 0.0 : bounds.back();
}

#ifndef RUPS_OBS_DISABLED

TimeSeriesCollector::TimeSeriesCollector(TimeSeriesConfig config)
    : config_(std::move(config)) {
  if (config_.window_s <= 0.0) config_.window_s = 30.0;
}

void TimeSeriesCollector::begin(double sim_time_s) {
  if (!config_.enabled) return;
  active_ = true;
  window_start_s_ = sim_time_s;
  begin_s_ = sim_time_s;
  for (auto& [id, last] : last_estimate_s_) last = sim_time_s;
  data_ = {};
  data_.window_s = config_.window_s;
  column_index_.clear();
  prev_ = Registry::global().snapshot();
}

void TimeSeriesCollector::track(std::uint64_t neighbour_id) {
  last_estimate_s_.emplace(neighbour_id, begin_s_);
}

void TimeSeriesCollector::note_estimate(std::uint64_t neighbour_id,
                                        double sim_time_s) {
  if (!active_) return;
  last_estimate_s_[neighbour_id] = sim_time_s;
}

void TimeSeriesCollector::observe(double sim_time_s) {
  if (!active_) return;
  Registry::global().counter("obs.series.samples").inc();
  if (sim_time_s - window_start_s_ >= config_.window_s) {
    close_window(sim_time_s);
  }
}

TimeSeriesData TimeSeriesCollector::finish(double sim_time_s) {
  if (!active_) return {};
  close_window(sim_time_s);
  active_ = false;
  column_index_.clear();
  std::sort(data_.columns.begin(), data_.columns.end(),
            [](const SeriesColumn& a, const SeriesColumn& b) {
              return a.name != b.name ? a.name < b.name : a.kind < b.kind;
            });
  TimeSeriesData out = std::move(data_);
  data_ = {};
  return out;
}

void TimeSeriesCollector::close_window(double sim_time_s) {
  const double duration = sim_time_s - window_start_s_;
  if (duration <= 0.0) return;
  Registry& registry = Registry::global();
  registry.counter("obs.series.windows").inc();
  MetricsSnapshot snap = registry.snapshot();
  data_.window_begin_s.push_back(window_start_s_);
  data_.window_end_s.push_back(sim_time_s);

  for (const CounterSample& c : snap.counters) {
    if (!selected(c.name)) continue;
    const CounterSample* p = prev_.counter(c.name);
    const std::uint64_t before = p == nullptr ? 0 : p->value;
    const double delta =
        c.value >= before ? static_cast<double>(c.value - before) : 0.0;
    set_value(c.name, "rate", delta / duration);
  }
  for (const GaugeSample& g : snap.gauges) {
    if (!selected(g.name)) continue;
    set_value(g.name, "last", g.value);
  }
  for (const HistogramSample& h : snap.histograms) {
    if (!selected(h.name)) continue;
    const HistogramSample* p = prev_.histogram(h.name);
    std::vector<std::uint64_t> delta = h.buckets;
    std::uint64_t count = h.count;
    if (p != nullptr && p->buckets.size() == delta.size()) {
      for (std::size_t i = 0; i < delta.size(); ++i) {
        delta[i] -= std::min(delta[i], p->buckets[i]);
      }
      count -= std::min(count, p->count);
    }
    set_value(h.name, "count", static_cast<double>(count));
    set_value(h.name, "p50",
              count == 0 ? 0.0 : window_quantile(h.bounds, delta, 0.50));
    set_value(h.name, "p95",
              count == 0 ? 0.0 : window_quantile(h.bounds, delta, 0.95));
    set_value(h.name, "p99",
              count == 0 ? 0.0 : window_quantile(h.bounds, delta, 0.99));
  }
  for (const auto& [id, last] : last_estimate_s_) {
    set_value(family_cell_name("estimate.staleness_s", "neighbour",
                               label_of(id)),
              "staleness", sim_time_s - last);
  }
  // Columns not touched this window (none today, but a filtered registry
  // reset could cause it) stay rectangular.
  for (SeriesColumn& col : data_.columns) {
    col.values.resize(data_.windows(), 0.0);
  }
  prev_ = std::move(snap);
  window_start_s_ = sim_time_s;
}

bool TimeSeriesCollector::selected(const std::string& name) const {
  if (config_.prefixes.empty()) return true;
  for (const std::string& prefix : config_.prefixes) {
    if (name.compare(0, prefix.size(), prefix) == 0) return true;
  }
  return false;
}

void TimeSeriesCollector::set_value(const std::string& name, const char* kind,
                                    double value) {
  auto key = std::make_pair(name, std::string(kind));
  auto it = column_index_.find(key);
  if (it == column_index_.end()) {
    SeriesColumn col;
    col.name = name;
    col.kind = kind;
    col.values.assign(data_.windows() - 1, 0.0);  // backfill earlier windows
    it = column_index_.emplace(std::move(key), data_.columns.size()).first;
    data_.columns.push_back(std::move(col));
  }
  SeriesColumn& col = data_.columns[it->second];
  if (col.values.size() < data_.windows()) {
    col.values.resize(data_.windows() - 1, 0.0);
    col.values.push_back(value);
  } else {
    col.values.back() = value;
  }
}

#endif  // RUPS_OBS_DISABLED

}  // namespace rups::obs
