#include "obs/profiler.hpp"

#include <algorithm>
#include <cstdio>
#include <map>
#include <set>

#ifndef RUPS_OBS_DISABLED
#include <chrono>

#include "obs/metrics.hpp"
#include "obs/timer.hpp"
#endif

namespace rups::obs {

std::string FoldedProfile::to_folded() const {
  std::string out;
  for (const Row& row : rows) {
    out += row.stack;
    out += ' ';
    out += std::to_string(row.samples);
    out += '\n';
  }
  return out;
}

std::vector<FoldedProfile::Attribution> FoldedProfile::attribution() const {
  // A stage may repeat within one stack (it never does today — span names
  // identify pipeline stages, not recursive frames — but count once to
  // keep `total` a sample share, not a frame count).
  std::map<std::string, Attribution> by_stage;
  for (const Row& row : rows) {
    std::set<std::string> seen;
    std::size_t start = 0;
    std::string leaf;
    while (start <= row.stack.size()) {
      const std::size_t sep = row.stack.find(';', start);
      const std::size_t len =
          sep == std::string::npos ? std::string::npos : sep - start;
      std::string stage = row.stack.substr(start, len);
      if (!stage.empty() && seen.insert(stage).second) {
        Attribution& a = by_stage[stage];
        a.stage = stage;
        a.total += row.samples;
      }
      if (sep == std::string::npos) {
        leaf = std::move(stage);
        break;
      }
      start = sep + 1;
    }
    if (!leaf.empty()) by_stage[leaf].self += row.samples;
  }
  std::vector<Attribution> out;
  out.reserve(by_stage.size());
  for (auto& [stage, a] : by_stage) out.push_back(std::move(a));
  std::sort(out.begin(), out.end(),
            [](const Attribution& a, const Attribution& b) {
              if (a.self != b.self) return a.self > b.self;
              return a.stage < b.stage;
            });
  return out;
}

std::string FoldedProfile::attribution_table() const {
  const std::vector<Attribution> rows_by_stage = attribution();
  std::size_t width = 5;  // "stage"
  for (const Attribution& a : rows_by_stage) {
    width = std::max(width, a.stage.size());
  }
  const double denom =
      total_samples == 0 ? 1.0 : static_cast<double>(total_samples);
  char line[256];
  std::snprintf(line, sizeof(line), "%-*s %10s %7s %10s %7s\n",
                static_cast<int>(width), "stage", "self", "self%", "total",
                "total%");
  std::string out = line;
  for (const Attribution& a : rows_by_stage) {
    std::snprintf(line, sizeof(line), "%-*s %10llu %6.1f%% %10llu %6.1f%%\n",
                  static_cast<int>(width), a.stage.c_str(),
                  static_cast<unsigned long long>(a.self),
                  100.0 * static_cast<double>(a.self) / denom,
                  static_cast<unsigned long long>(a.total),
                  100.0 * static_cast<double>(a.total) / denom);
    out += line;
  }
  return out;
}

#ifndef RUPS_OBS_DISABLED

namespace {

/// xorshift64*: deterministic jitter sequence from the configured seed.
std::uint64_t next_rand(std::uint64_t& state) noexcept {
  state ^= state >> 12;
  state ^= state << 25;
  state ^= state >> 27;
  return state * 0x2545F4914F6CDD1Dull;
}

}  // namespace

SpanProfiler::SpanProfiler(Options options) : options_(options) {
  if (options_.period_us < 50.0) options_.period_us = 50.0;
  if (options_.jitter_frac < 0.0) options_.jitter_frac = 0.0;
  if (options_.jitter_frac > 0.9) options_.jitter_frac = 0.9;
  if (options_.seed == 0) options_.seed = 1;
}

SpanProfiler::~SpanProfiler() { stop(); }

void SpanProfiler::start() {
  if (running_) return;
  {
    std::lock_guard lock(mutex_);
    stop_requested_ = false;
  }
  running_ = true;
  thread_ = std::thread([this] { run(); });
}

void SpanProfiler::stop() {
  if (!running_) return;
  {
    std::lock_guard lock(mutex_);
    stop_requested_ = true;
  }
  cv_.notify_all();
  thread_.join();
  running_ = false;
}

FoldedProfile SpanProfiler::profile() const {
  FoldedProfile out;
  std::lock_guard lock(mutex_);
  out.rows.reserve(folded_.size());
  for (const auto& [stack, samples] : folded_) {
    out.rows.push_back({stack, samples});
  }
  out.total_samples = total_samples_;
  out.ticks = ticks_;
  return out;
}

void SpanProfiler::run() {
  set_thread_label("rups profiler");
  static Counter& ticks_counter =
      Registry::global().counter("profiler.ticks");
  static Counter& samples_counter =
      Registry::global().counter("profiler.samples");

  std::uint64_t rng = options_.seed;
  auto deadline = std::chrono::steady_clock::now();
  for (;;) {
    // Deterministic cadence: period +- jitter from the seeded sequence.
    double sleep_us = options_.period_us;
    if (options_.jitter_frac > 0.0) {
      const double unit = static_cast<double>(next_rand(rng) >> 11) /
                          9007199254740992.0;  // [0, 1)
      sleep_us *= 1.0 + options_.jitter_frac * (2.0 * unit - 1.0);
    }
    deadline += std::chrono::nanoseconds(
        static_cast<std::int64_t>(sleep_us * 1000.0));
    {
      std::unique_lock lock(mutex_);
      if (cv_.wait_until(lock, deadline,
                         [this] { return stop_requested_; })) {
        return;
      }
    }

    std::vector<SampledStack> stacks = sample_span_stacks();
    std::string key;
    std::lock_guard lock(mutex_);
    ++ticks_;
    ticks_counter.inc();
    for (const SampledStack& stack : stacks) {
      key.clear();
      for (std::size_t i = 0; i < stack.frames.size(); ++i) {
        if (i > 0) key += ';';
        key += stack.frames[i];
      }
      if (key.empty()) continue;
      ++folded_[key];
      ++total_samples_;
      samples_counter.inc();
    }
  }
}

#endif  // RUPS_OBS_DISABLED

}  // namespace rups::obs
