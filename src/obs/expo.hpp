#pragma once

// Prometheus text exposition (v0.0.4) and a minimal live /metrics server.
//
//   obs::MetricsExporter exporter({.port = 9464},
//       [] { return obs::Registry::global().snapshot(); },
//       [&] { return monitor.report(); });
//   exporter.start();            // serves /metrics and /healthz
//   ...
//   exporter.stop();
//
// render_prometheus() maps a MetricsSnapshot onto the text format: metric
// names are sanitised to [a-zA-Z0-9_:] (dots become underscores), labeled
// family cells (`fam{key="value"}` snapshot names, including __overflow__
// cells) become real Prometheus labels with escaped values, counters and
// gauges map directly, and histograms render as cumulative `_bucket{le=}`
// series plus `_sum` / `_count`.
//
// The exporter is a deliberately small blocking HTTP/1.0 server: one
// accept loop on a background thread, one request served at a time —
// scrape traffic for a single research service, not a web framework. It
// serves whatever the snapshot callback returns, so it works mid-campaign;
// /healthz returns 200 or 503 from the HealthMonitor verdict. Everything
// here is compiled in both configurations (under RUPS_OBS_DISABLED the
// registry snapshot is simply empty); stop ordering at shutdown is
// profiler -> exporter -> trace sink.

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <thread>

#include "obs/health.hpp"
#include "obs/snapshot.hpp"

namespace rups::obs {

/// Prometheus-legal metric name: [a-zA-Z_:][a-zA-Z0-9_:]*. Dots (the rups
/// metric convention) and any other illegal byte become '_'; a leading
/// digit gains a '_' prefix.
[[nodiscard]] std::string sanitize_metric_name(std::string_view name);

/// Render a full snapshot in text exposition format v0.0.4, with one
/// `# TYPE` header per metric family (the snapshot is name-sorted, so
/// family cells are adjacent).
[[nodiscard]] std::string render_prometheus(const MetricsSnapshot& snap);

/// Tolerant reader for the subset render_prometheus emits: one entry per
/// sample line keyed by `name` or `name{labels}` exactly as written
/// (comments and blank lines skipped). Throws std::runtime_error on a
/// malformed sample line. For round-trip tests and selfchecks.
[[nodiscard]] std::map<std::string, double> parse_prometheus(
    const std::string& text);

/// Minimal blocking HTTP GET against 127.0.0.1-style hosts: fills `body`
/// and returns the HTTP status code, or -1 when the connection failed.
/// Test/selfcheck helper — the curl equivalent without the dependency.
[[nodiscard]] int http_get(const std::string& host, std::uint16_t port,
                           const std::string& path, std::string& body);

class MetricsExporter {
 public:
  struct Options {
    std::string host = "127.0.0.1";
    std::uint16_t port = 0;  ///< 0 = ephemeral (read back via port())
  };

  using SnapshotFn = std::function<MetricsSnapshot()>;
  using HealthFn = std::function<HealthReport()>;

  /// `snapshot` feeds /metrics; `health` (optional) feeds /healthz —
  /// without it /healthz always reports 200.
  MetricsExporter(Options options, SnapshotFn snapshot, HealthFn health = {});
  MetricsExporter(const MetricsExporter&) = delete;
  MetricsExporter& operator=(const MetricsExporter&) = delete;
  ~MetricsExporter();  ///< stops if still running

  /// Bind + listen + spawn the serving thread. False (with a kWarn log)
  /// when the socket could not be bound.
  bool start();
  /// Stop accepting and join the serving thread; idempotent.
  void stop();
  [[nodiscard]] bool running() const noexcept { return running_; }

  /// Bound port (resolves port 0 after start()).
  [[nodiscard]] std::uint16_t port() const noexcept { return bound_port_; }
  /// Requests answered (any path, any status).
  [[nodiscard]] std::uint64_t requests() const noexcept;

 private:
  void run();
  void handle(int client);

  Options options_;
  SnapshotFn snapshot_;
  HealthFn health_;
  bool running_ = false;
  int listen_fd_ = -1;
  std::uint16_t bound_port_ = 0;
  std::thread thread_;
  std::atomic<bool> stop_requested_{false};
  std::atomic<std::uint64_t> requests_{0};
};

}  // namespace rups::obs
