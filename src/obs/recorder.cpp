#include "obs/recorder.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>

#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/timer.hpp"
#include "util/json.hpp"

namespace rups::obs {

namespace {

std::string escaped(const std::string& s) { return util::json_quote(s); }

std::string num(double v) {
  if (std::isnan(v)) return "null";
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace

const char* event_type_name(EventType type) noexcept {
  switch (type) {
    case EventType::kSeekStarted: return "seek_started";
    case EventType::kSeekAccepted: return "seek_accepted";
    case EventType::kSeekRejected: return "seek_rejected";
    case EventType::kEstimateEmitted: return "estimate_emitted";
    case EventType::kEstimateMissing: return "estimate_missing";
    case EventType::kEstimateChecked: return "estimate_checked";
    case EventType::kExchangeSent: return "exchange_sent";
    case EventType::kExchangeReceived: return "exchange_received";
    case EventType::kAnomaly: return "anomaly";
    case EventType::kTrackVerified: return "track_verified";
    case EventType::kTrackLost: return "track_lost";
    case EventType::kExchangeDegraded: return "exchange_degraded";
    case EventType::kExchangeFailed: return "exchange_failed";
  }
  return "unknown";
}

std::string events_to_json(const std::vector<RecorderEvent>& events) {
  std::string out = "[";
  for (std::size_t i = 0; i < events.size(); ++i) {
    const RecorderEvent& e = events[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"seq\": " + std::to_string(e.seq);
    out += ", \"ts_us\": " + num(e.ts_us);
    out += ", \"tid\": " + std::to_string(e.tid);
    out += ", \"type\": \"";
    out += event_type_name(e.type);
    out += "\", \"label\": " + escaped(e.label != nullptr ? e.label : "");
    out += ", \"v\": [" + num(e.v0) + ", " + num(e.v1) + ", " + num(e.v2) +
           "]}";
  }
  out += events.empty() ? "]" : "\n  ]";
  return out;
}

#ifndef RUPS_OBS_DISABLED

FlightRecorder::FlightRecorder(std::size_t capacity)
    : ring_(capacity == 0 ? 1 : capacity),
      capacity_(capacity == 0 ? 1 : capacity),
      overwritten_counter_(
          &Registry::global().counter("recorder.overwritten")) {}

FlightRecorder& FlightRecorder::global() {
  static FlightRecorder* r = new FlightRecorder();  // outlives static dtors
  return *r;
}

void FlightRecorder::record(EventType type, const char* label, double v0,
                            double v1, double v2) noexcept {
  const double ts = now_us();
  const std::uint32_t tid = this_thread_tid();
  std::lock_guard lock(mutex_);
  if (size_ == capacity_) {
    // The ring is full: this append evicts the oldest retained event.
    ++overwritten_;
    overwritten_counter_->inc();
  }
  RecorderEvent& slot = ring_[head_];
  slot.type = type;
  slot.tid = tid;
  slot.seq = next_seq_++;
  slot.ts_us = ts;
  slot.label = label != nullptr ? label : "";
  slot.v0 = v0;
  slot.v1 = v1;
  slot.v2 = v2;
  head_ = (head_ + 1) % capacity_;
  if (size_ < capacity_) ++size_;
}

std::vector<RecorderEvent> FlightRecorder::recent_locked() const {
  std::vector<RecorderEvent> out;
  out.reserve(size_);
  const std::size_t start = (head_ + capacity_ - size_) % capacity_;
  for (std::size_t i = 0; i < size_; ++i) {
    out.push_back(ring_[(start + i) % capacity_]);
  }
  return out;
}

std::vector<RecorderEvent> FlightRecorder::recent() const {
  std::lock_guard lock(mutex_);
  return recent_locked();
}

std::uint64_t FlightRecorder::total_recorded() const noexcept {
  std::lock_guard lock(mutex_);
  return next_seq_;
}

std::uint64_t FlightRecorder::overwritten() const noexcept {
  std::lock_guard lock(mutex_);
  return overwritten_;
}

std::size_t FlightRecorder::capacity() const noexcept {
  std::lock_guard lock(mutex_);
  return capacity_;
}

void FlightRecorder::set_capacity(std::size_t capacity) {
  std::lock_guard lock(mutex_);
  capacity_ = capacity == 0 ? 1 : capacity;
  ring_.assign(capacity_, RecorderEvent{});
  head_ = 0;
  size_ = 0;
}

void FlightRecorder::clear() {
  std::lock_guard lock(mutex_);
  head_ = 0;
  size_ = 0;
}

void FlightRecorder::set_dump_dir(std::filesystem::path dir) {
  std::lock_guard lock(mutex_);
  dump_dir_ = std::move(dir);
}

std::filesystem::path FlightRecorder::dump_dir() const {
  std::lock_guard lock(mutex_);
  return dump_dir_;
}

void FlightRecorder::set_config_text(std::string json) {
  std::lock_guard lock(mutex_);
  config_text_ = std::move(json);
}

void FlightRecorder::set_max_dumps(std::size_t max_dumps) {
  std::lock_guard lock(mutex_);
  max_dumps_ = max_dumps;
}

std::uint64_t FlightRecorder::anomalies() const noexcept {
  std::lock_guard lock(mutex_);
  return anomalies_;
}

namespace {

/// The anomaly caller's open-span chain, outermost first — which fleet
/// round / neighbour task / seek the bundle was captured inside.
std::string spans_to_json(const std::vector<SpanRecord>& spans) {
  std::string out = "[";
  for (std::size_t i = 0; i < spans.size(); ++i) {
    const SpanRecord& s = spans[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"name\": " + escaped(s.name != nullptr ? s.name : "");
    out += ", \"trace\": " + std::to_string(s.trace_id);
    out += ", \"span\": " + std::to_string(s.span_id);
    out += ", \"parent\": " + std::to_string(s.parent_id);
    out += ", \"start_us\": " + num(s.start_us) + "}";
  }
  out += spans.empty() ? "]" : "\n  ]";
  return out;
}

}  // namespace

std::filesystem::path FlightRecorder::anomaly(const char* label,
                                              const std::string& detail) {
  // Capture the caller's span chain before any locking: it is
  // thread-local, and the bundle should describe the thread that noticed
  // the anomaly.
  const std::string spans = spans_to_json(active_span_chain());
  record(EventType::kAnomaly, label,
         static_cast<double>(anomalies()));

  std::filesystem::path target;
  std::vector<RecorderEvent> events;
  std::string config;
  {
    std::lock_guard lock(mutex_);
    ++anomalies_;
    if (dump_dir_.empty() || dumps_written_ >= max_dumps_) return {};
    char name[64];
    std::snprintf(name, sizeof(name), "rups_diag_%04llu.json",
                  static_cast<unsigned long long>(dumps_written_));
    target = dump_dir_ / name;
    ++dumps_written_;
    events = recent_locked();
    config = config_text_;
  }

  // Snapshot and file IO happen outside the recorder lock: instrumentation
  // sites keep appending while the bundle is written.
  std::string out = "{\n";
  out += "  \"kind\": \"rups_diagnostics_bundle\",\n";
  out += "  \"anomaly\": " + escaped(label != nullptr ? label : "") + ",\n";
  out += "  \"detail\": " + escaped(detail) + ",\n";
  out += "  \"ts_us\": " + num(now_us()) + ",\n";
  out += "  \"config\": " + (config.empty() ? std::string("null") : config) +
         ",\n";
  out += "  \"spans\": " + spans + ",\n";
  out += "  \"metrics\": " + Registry::global().snapshot().to_json() + ",\n";
  out += "  \"events\": " + events_to_json(events) + "\n}\n";

  std::error_code ec;
  std::filesystem::create_directories(target.parent_path(), ec);
  std::ofstream file(target);
  file << out;
  if (!file) {
    RUPS_LOG(kError) << "diagnostics bundle write failed: " << target;
    return {};
  }
  RUPS_LOG(kWarn) << "anomaly '" << (label != nullptr ? label : "") << "': "
                  << detail << " — diagnostics bundle at " << target;
  return target;
}

#endif  // RUPS_OBS_DISABLED

}  // namespace rups::obs
