#include "obs/expo.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <stdexcept>

#include "obs/log.hpp"
#include "obs/timer.hpp"

namespace rups::obs {

namespace {

/// Format a double the Prometheus way: integral values without exponent
/// noise, everything else with full round-trip precision.
std::string num(double v) {
  if (std::isnan(v)) return "NaN";
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  char buf[40];
  if (v == std::floor(v) && std::fabs(v) < 1e15) {
    std::snprintf(buf, sizeof(buf), "%.0f", v);
  } else {
    std::snprintf(buf, sizeof(buf), "%.17g", v);
  }
  return buf;
}

/// Prometheus label-value escaping: backslash, double-quote, newline.
std::string escape_label_value(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

/// One snapshot cell name decomposed: `fam{key="value"}` (the
/// family_cell_name shape) or a plain flat name.
struct CellName {
  std::string base;   ///< sanitised family/metric name
  std::string label;  ///< `key="escaped value"` or empty for flat metrics
};

CellName split_cell_name(const std::string& name) {
  CellName out;
  const std::size_t brace = name.find('{');
  if (brace == std::string::npos || name.back() != '}') {
    out.base = sanitize_metric_name(name);
    return out;
  }
  // family_cell_name emits  fam{key="value"}  with the value raw; pick the
  // key up to '=' and the value between the outermost quotes.
  const std::size_t eq = name.find('=', brace);
  const std::size_t open_quote = name.find('"', brace);
  const std::size_t close_quote = name.rfind('"');
  if (eq == std::string::npos || open_quote == std::string::npos ||
      close_quote <= open_quote || eq > open_quote) {
    out.base = sanitize_metric_name(name);  // not a family cell; flatten
    return out;
  }
  out.base = sanitize_metric_name(name.substr(0, brace));
  const std::string key =
      sanitize_metric_name(name.substr(brace + 1, eq - brace - 1));
  const std::string value =
      name.substr(open_quote + 1, close_quote - open_quote - 1);
  out.label = key + "=\"" + escape_label_value(value) + "\"";
  return out;
}

void type_header(std::string& out, std::string& last_base,
                 const std::string& base, const char* type) {
  if (base == last_base) return;
  last_base = base;
  out += "# TYPE " + base + " " + type + "\n";
}

}  // namespace

std::string sanitize_metric_name(std::string_view name) {
  std::string out;
  out.reserve(name.size() + 1);
  for (const char c : name) {
    const bool legal = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                       (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += legal ? c : '_';
  }
  if (out.empty()) out = "_";
  if (out[0] >= '0' && out[0] <= '9') out.insert(out.begin(), '_');
  return out;
}

std::string render_prometheus(const MetricsSnapshot& snap) {
  std::string out;
  std::string last_base;

  for (const CounterSample& c : snap.counters) {
    const CellName cell = split_cell_name(c.name);
    type_header(out, last_base, cell.base, "counter");
    out += cell.base;
    if (!cell.label.empty()) out += "{" + cell.label + "}";
    out += " " + std::to_string(c.value) + "\n";
  }

  last_base.clear();
  for (const GaugeSample& g : snap.gauges) {
    const CellName cell = split_cell_name(g.name);
    type_header(out, last_base, cell.base, "gauge");
    out += cell.base;
    if (!cell.label.empty()) out += "{" + cell.label + "}";
    out += " " + num(g.value) + "\n";
  }

  last_base.clear();
  for (const HistogramSample& h : snap.histograms) {
    const CellName cell = split_cell_name(h.name);
    type_header(out, last_base, cell.base, "histogram");
    const std::string extra =
        cell.label.empty() ? std::string() : cell.label + ",";
    std::uint64_t cumulative = 0;
    for (std::size_t b = 0; b < h.buckets.size(); ++b) {
      cumulative += h.buckets[b];
      const std::string le =
          b < h.bounds.size() ? num(h.bounds[b]) : std::string("+Inf");
      out += cell.base + "_bucket{" + extra + "le=\"" + le + "\"} " +
             std::to_string(cumulative) + "\n";
    }
    if (h.buckets.empty()) {
      out += cell.base + "_bucket{" + extra + "le=\"+Inf\"} " +
             std::to_string(h.count) + "\n";
    }
    out += cell.base + "_sum";
    if (!cell.label.empty()) out += "{" + cell.label + "}";
    out += " " + num(h.sum) + "\n";
    out += cell.base + "_count";
    if (!cell.label.empty()) out += "{" + cell.label + "}";
    out += " " + std::to_string(h.count) + "\n";
  }

  return out;
}

std::map<std::string, double> parse_prometheus(const std::string& text) {
  std::map<std::string, double> out;
  std::size_t start = 0;
  while (start < text.size()) {
    std::size_t end = text.find('\n', start);
    if (end == std::string::npos) end = text.size();
    const std::string_view line(text.data() + start, end - start);
    start = end + 1;
    if (line.empty() || line[0] == '#') continue;

    // The value is everything after the last space OUTSIDE the label
    // braces; label values may themselves contain spaces.
    std::size_t split = std::string_view::npos;
    int depth = 0;
    bool in_quotes = false;
    for (std::size_t i = 0; i < line.size(); ++i) {
      const char c = line[i];
      if (in_quotes) {
        if (c == '\\') ++i;
        else if (c == '"') in_quotes = false;
        continue;
      }
      if (c == '"') in_quotes = true;
      else if (c == '{') ++depth;
      else if (c == '}') --depth;
      else if (c == ' ' && depth == 0) split = i;
    }
    if (split == std::string_view::npos || split + 1 >= line.size()) {
      throw std::runtime_error("prometheus: malformed sample line: " +
                               std::string(line));
    }
    const std::string name(line.substr(0, split));
    const std::string value_text(line.substr(split + 1));
    char* parse_end = nullptr;
    const double value = std::strtod(value_text.c_str(), &parse_end);
    if (parse_end == value_text.c_str()) {
      throw std::runtime_error("prometheus: bad sample value: " +
                               std::string(line));
    }
    out[name] = value;
  }
  return out;
}

namespace {

bool send_all(int fd, const char* data, std::size_t size) {
  while (size > 0) {
    const ssize_t n = ::send(fd, data, size, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    data += n;
    size -= static_cast<std::size_t>(n);
  }
  return true;
}

void send_response(int fd, int status, const char* reason,
                   const char* content_type, const std::string& body) {
  char header[256];
  std::snprintf(header, sizeof(header),
                "HTTP/1.0 %d %s\r\n"
                "Content-Type: %s\r\n"
                "Content-Length: %zu\r\n"
                "Connection: close\r\n\r\n",
                status, reason, content_type, body.size());
  if (send_all(fd, header, std::strlen(header))) {
    (void)send_all(fd, body.data(), body.size());
  }
}

}  // namespace

int http_get(const std::string& host, std::uint16_t port,
             const std::string& path, std::string& body) {
  body.clear();
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1 ||
      ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }

  const std::string request = "GET " + path +
                              " HTTP/1.0\r\nHost: " + host +
                              "\r\nConnection: close\r\n\r\n";
  if (!send_all(fd, request.data(), request.size())) {
    ::close(fd);
    return -1;
  }

  std::string response;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    response.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);

  int status = -1;
  if (std::sscanf(response.c_str(), "HTTP/%*s %d", &status) != 1) return -1;
  const std::size_t blank = response.find("\r\n\r\n");
  if (blank != std::string::npos) body = response.substr(blank + 4);
  return status;
}

MetricsExporter::MetricsExporter(Options options, SnapshotFn snapshot,
                                 HealthFn health)
    : options_(std::move(options)),
      snapshot_(std::move(snapshot)),
      health_(std::move(health)) {}

MetricsExporter::~MetricsExporter() { stop(); }

std::uint64_t MetricsExporter::requests() const noexcept {
  return requests_.load(std::memory_order_relaxed);
}

bool MetricsExporter::start() {
  if (running_) return true;

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    RUPS_LOG(kWarn) << "exporter: socket() failed: "
                              << std::strerror(errno);
    return false;
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    RUPS_LOG(kWarn) << "exporter: bad host " << options_.host;
    ::close(fd);
    return false;
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, 8) != 0) {
    RUPS_LOG(kWarn)
        << "exporter: cannot serve on " << options_.host << ":"
        << options_.port << ": " << std::strerror(errno);
    ::close(fd);
    return false;
  }

  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) == 0) {
    bound_port_ = ntohs(bound.sin_port);
  }

  listen_fd_ = fd;
  stop_requested_.store(false, std::memory_order_relaxed);
  running_ = true;
  thread_ = std::thread([this] { run(); });
  return true;
}

void MetricsExporter::stop() {
  if (!running_) return;
  stop_requested_.store(true, std::memory_order_relaxed);
  thread_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;
  running_ = false;
}

void MetricsExporter::run() {
  set_thread_label("rups exporter");
  for (;;) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, 100 /*ms*/);
    if (stop_requested_.load(std::memory_order_relaxed)) return;
    if (ready <= 0) continue;
    const int client = ::accept(listen_fd_, nullptr, nullptr);
    if (client < 0) continue;
    handle(client);
    ::close(client);
  }
}

void MetricsExporter::handle(int client) {
  // Read the request head (we only need the request line; HTTP/1.0, no
  // keep-alive, bodies are ignored).
  std::string request;
  char buf[2048];
  while (request.find("\r\n") == std::string::npos &&
         request.size() < 16 * 1024) {
    const ssize_t n = ::recv(client, buf, sizeof(buf), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    request.append(buf, static_cast<std::size_t>(n));
  }
  requests_.fetch_add(1, std::memory_order_relaxed);

  char method[8] = {0};
  char path[256] = {0};
  if (std::sscanf(request.c_str(), "%7s %255s", method, path) != 2 ||
      std::strcmp(method, "GET") != 0) {
    send_response(client, 400, "Bad Request", "text/plain",
                  "bad request\n");
    return;
  }

  if (std::strcmp(path, "/metrics") == 0) {
    send_response(client, 200, "OK",
                  "text/plain; version=0.0.4; charset=utf-8",
                  render_prometheus(snapshot_ ? snapshot_()
                                              : MetricsSnapshot{}));
  } else if (std::strcmp(path, "/healthz") == 0) {
    const HealthReport report = health_ ? health_() : HealthReport{};
    send_response(client, report.healthy() ? 200 : 503,
                  report.healthy() ? "OK" : "Service Unavailable",
                  "application/json", report.to_json() + "\n");
  } else {
    send_response(client, 404, "Not Found", "text/plain",
                  "try /metrics or /healthz\n");
  }
}

}  // namespace rups::obs
