#pragma once

// Leveled, rate-limitable structured logger.
//
//   RUPS_LOG(kWarn) << "reassembly failed after " << n << " packets";
//
// Lines carry a wall-clock timestamp, level, and source location, and go to
// stderr by default (Logger::global().set_sink_file(...) redirects to a
// file). Disabled levels cost one relaxed atomic load; with
// RUPS_OBS_DISABLED the whole statement compiles away (stream operands are
// type-checked but never evaluated).

#include <atomic>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <sstream>
#include <string>

namespace rups::obs {

enum class LogLevel : int {
  kTrace = 0,
  kDebug = 1,
  kInfo = 2,
  kWarn = 3,
  kError = 4,
  kOff = 5,
};

[[nodiscard]] const char* log_level_name(LogLevel level) noexcept;

class Logger {
 public:
  [[nodiscard]] static Logger& global();

  [[nodiscard]] bool enabled(LogLevel level) const noexcept {
    return static_cast<int>(level) >=
           min_level_.load(std::memory_order_relaxed);
  }

  void set_min_level(LogLevel level) noexcept {
    min_level_.store(static_cast<int>(level), std::memory_order_relaxed);
  }
  [[nodiscard]] LogLevel min_level() const noexcept {
    return static_cast<LogLevel>(min_level_.load(std::memory_order_relaxed));
  }

  /// Redirect output to a file (empty path switches back to stderr).
  void set_sink_file(const std::filesystem::path& path);

  /// Token-bucket rate limit in lines/second over the whole logger;
  /// 0 disables limiting. Dropped lines are counted and reported by the
  /// next line that gets through.
  void set_rate_limit(double lines_per_s) noexcept;
  /// Drops since the last line that got through (reported inline, then
  /// rezeroed).
  [[nodiscard]] std::uint64_t dropped_lines() const noexcept {
    return dropped_.load(std::memory_order_relaxed);
  }
  /// Cumulative drops over the logger's lifetime; also exposed as the
  /// `log.suppressed` registry counter and in HealthReport, so silently
  /// lost telemetry stays visible after the fact.
  [[nodiscard]] std::uint64_t total_suppressed() const noexcept {
    return total_suppressed_.load(std::memory_order_relaxed);
  }

  /// Format and emit one line (called by LogLine; thread-safe).
  void write(LogLevel level, const char* file, int line,
             const std::string& message);

 private:
  Logger() = default;

  std::atomic<int> min_level_{static_cast<int>(LogLevel::kWarn)};
  std::atomic<std::uint64_t> dropped_{0};
  std::atomic<std::uint64_t> total_suppressed_{0};
  mutable std::mutex mutex_;
  std::ofstream file_;
  bool to_file_ = false;
  double rate_per_s_ = 0.0;
  double tokens_ = 0.0;
  double last_refill_us_ = 0.0;
};

/// One log statement being built; submits to Logger::global() on
/// destruction (end of the full expression).
class LogLine {
 public:
  LogLine(LogLevel level, const char* file, int line) noexcept
      : level_(level), file_(file), line_(line) {}
  ~LogLine() { Logger::global().write(level_, file_, line_, stream_.str()); }

  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

/// glog-style voidify: lets the macro below swallow the << chain inside a
/// ternary without dangling-else ambiguity.
struct LogVoidify {
  void operator&(LogLine&) const noexcept {}
};

}  // namespace rups::obs

#ifndef RUPS_OBS_DISABLED
#define RUPS_LOG(severity)                                         \
  (!::rups::obs::Logger::global().enabled(                         \
      ::rups::obs::LogLevel::severity))                            \
      ? (void)0                                                    \
      : ::rups::obs::LogVoidify() &                                \
            ::rups::obs::LogLine(::rups::obs::LogLevel::severity,  \
                                 __FILE__, __LINE__)
#else
// Constant-false condition: operands still type-check, never evaluate.
#define RUPS_LOG(severity)                                         \
  (true)                                                           \
      ? (void)0                                                    \
      : ::rups::obs::LogVoidify() &                                \
            ::rups::obs::LogLine(::rups::obs::LogLevel::severity,  \
                                 __FILE__, __LINE__)
#endif
