#pragma once

// Health/SLO monitor: rolling-window gauges plus declarative alert rules
// evaluated in-process, mirroring the paper's evaluation axes (Sec. VI):
// SYN/estimate availability (Fig. 10), estimate-error p95 (Figs. 11–12)
// and per-query latency p99 (Sec. V-A). A violated rule fires once per
// excursion — a FlightRecorder anomaly (which may dump a diagnostics
// bundle) and a RUPS_LOG warning — then re-arms after recovery.
//
// The monitor is feed-based rather than ambient: a driver with ground
// truth (sim::run_campaign, ConvoySimulation::query) reports each query's
// hit/miss, absolute error and latency. Because the feeds are explicit,
// HealthMonitor works identically under RUPS_OBS_DISABLED — only the
// side effects (anomaly bundles, warnings, health.* gauges) compile away —
// so sim::CampaignResult can embed a HealthReport in every configuration.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "util/ring_buffer.hpp"

namespace rups::obs {

/// Alert thresholds. A rule is disabled when its threshold is <= 0 (or 0
/// for the streak rule); no rule fires before `min_samples` queries.
struct HealthConfig {
  std::size_t window = 64;           ///< rolling window (queries)
  std::size_t min_samples = 8;       ///< warm-up before rules evaluate
  double min_availability = 0.25;    ///< alert when hit rate drops below
  double max_error_p95_m = 50.0;     ///< alert when |error| p95 exceeds
  double max_latency_p99_us = 0.0;   ///< alert when latency p99 exceeds
                                     ///< (machine-dependent; off by default)
  std::size_t max_miss_streak = 32;  ///< alert on consecutive misses
  /// V2V delivery rule (fed by on_exchange): alert when the fraction of
  /// exchanges with NO usable trajectory (kFailed) over the rolling window
  /// exceeds this. Degraded-but-usable deliveries do not count as failures.
  double max_delivery_failure_rate = 0.5;
  std::size_t min_exchanges = 8;     ///< warm-up before the delivery rule
  /// Service admission rule (fed by on_admission): alert when the fraction
  /// of requests rejected by admission control (queue full, arena
  /// exhausted) over the rolling window exceeds this.
  double max_admission_reject_rate = 0.5;
  std::size_t min_admissions = 16;   ///< warm-up before the admission rule
};

struct HealthAlert {
  std::string rule;             ///< "availability", "error_p95", ...
  double value = 0.0;           ///< observed value at firing time
  double threshold = 0.0;
  double ts_us = 0.0;           ///< microseconds since process start
  std::uint64_t sample_index = 0;  ///< queries seen when the rule fired

  friend bool operator==(const HealthAlert&, const HealthAlert&) = default;
};

/// Point-in-time health summary. Plain data; the query/exchange fields are
/// configuration-independent, while the two telemetry-loss fields read the
/// process-wide logger/recorder and stay 0 under RUPS_OBS_DISABLED (the
/// no-op recorder never overwrites and disabled log statements never
/// reach the rate limiter).
struct HealthReport {
  std::uint64_t samples = 0;      ///< queries observed in total
  double availability = 0.0;      ///< hit rate over the rolling window
  double error_p95_m = 0.0;       ///< |error| p95 over the window (0 = none)
  double latency_p99_us = 0.0;    ///< latency p99 over the window
  std::size_t miss_streak = 0;    ///< current consecutive-miss run
  std::uint64_t exchanges = 0;    ///< V2V exchanges observed in total
  double delivery_failure_rate = 0.0;  ///< kFailed rate over the window
  double degraded_rate = 0.0;     ///< degraded-delivery rate over the window
  std::uint64_t admissions = 0;   ///< admission decisions observed in total
  double admission_reject_rate = 0.0;  ///< reject rate over the window
  /// Telemetry self-loss at report time (process-wide, cumulative): log
  /// lines suppressed by the rate limiter and flight-recorder ring
  /// overwrites. Non-zero means bundles/logs are missing history.
  std::uint64_t log_suppressed = 0;
  std::uint64_t recorder_overwritten = 0;
  std::vector<HealthAlert> alerts;

  [[nodiscard]] bool healthy() const noexcept { return alerts.empty(); }
  [[nodiscard]] std::string to_json() const;
};

class HealthMonitor {
 public:
  explicit HealthMonitor(HealthConfig config = {});

  /// Observe one query: whether RUPS produced an estimate, its absolute
  /// error versus ground truth when known, and end-to-end latency.
  /// Evaluates every rule; not thread-safe (one driver feeds one monitor).
  void on_query(bool hit, std::optional<double> abs_error_m,
                double latency_us);

  /// Observe one V2V exchange outcome: `usable` when a trajectory (possibly
  /// degraded) reached the receiver, `degraded` when it was partial. The
  /// feed is plain bools so obs stays independent of the v2v layer.
  void on_exchange(bool usable, bool degraded);

  /// Observe one service admission decision: `accepted` when the request
  /// entered a shard queue, false when admission control rejected it. Plain
  /// bool feed so obs stays independent of the service layer.
  void on_admission(bool accepted);

  [[nodiscard]] HealthReport report() const;
  [[nodiscard]] const HealthConfig& config() const noexcept {
    return config_;
  }

 private:
  void evaluate();
  /// `anomaly_label` must be a literal: the recorder retains the pointer.
  void fire(const char* rule, const char* anomaly_label, bool& armed,
            bool violated, double value, double threshold);

  HealthConfig config_;
  util::RingBuffer<unsigned char> hits_;  ///< not bool: vector<bool> proxies
  util::RingBuffer<double> errors_;     ///< only queries with known error
  util::RingBuffer<double> latencies_;
  /// Exchange outcomes: 0 = delivered, 1 = degraded, 2 = failed.
  util::RingBuffer<unsigned char> deliveries_;
  /// Admission outcomes: 1 = accepted, 0 = rejected.
  util::RingBuffer<unsigned char> admitted_;
  std::uint64_t samples_ = 0;
  std::uint64_t exchanges_ = 0;
  std::uint64_t admissions_ = 0;
  std::size_t miss_streak_ = 0;
  std::vector<HealthAlert> alerts_;
  bool armed_availability_ = true;
  bool armed_error_ = true;
  bool armed_latency_ = true;
  bool armed_streak_ = true;
  bool armed_delivery_ = true;
  bool armed_admission_ = true;
};

}  // namespace rups::obs
