#include "obs/log.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <ctime>

#include "obs/metrics.hpp"
#include "obs/timer.hpp"

namespace rups::obs {

const char* log_level_name(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

Logger& Logger::global() {
  static Logger* logger = new Logger();  // leaked: usable during teardown
  return *logger;
}

void Logger::set_sink_file(const std::filesystem::path& path) {
  std::lock_guard lock(mutex_);
  if (file_.is_open()) file_.close();
  to_file_ = false;
  if (!path.empty()) {
    file_.open(path);
    to_file_ = file_.is_open();
  }
}

void Logger::set_rate_limit(double lines_per_s) noexcept {
  std::lock_guard lock(mutex_);
  rate_per_s_ = lines_per_s;
  tokens_ = lines_per_s > 0.0 ? lines_per_s : 0.0;
  last_refill_us_ = now_us();
}

void Logger::write(LogLevel level, const char* file, int line,
                   const std::string& message) {
  if (!enabled(level)) return;

  // Strip directories from __FILE__ for stable, short locations.
  const char* base = file;
  for (const char* p = file; *p != '\0'; ++p) {
    if (*p == '/' || *p == '\\') base = p + 1;
  }

  const auto wall = std::chrono::system_clock::now();
  const auto secs = std::chrono::time_point_cast<std::chrono::seconds>(wall);
  const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                      wall - secs)
                      .count();
  const std::time_t t = std::chrono::system_clock::to_time_t(wall);
  std::tm tm{};
  gmtime_r(&t, &tm);

  char head[96];
  std::snprintf(head, sizeof(head),
                "%04d-%02d-%02dT%02d:%02d:%02d.%03dZ %-5s %s:%d] ",
                tm.tm_year + 1900, tm.tm_mon + 1, tm.tm_mday, tm.tm_hour,
                tm.tm_min, tm.tm_sec, static_cast<int>(ms),
                log_level_name(level), base, line);

  std::lock_guard lock(mutex_);
  if (rate_per_s_ > 0.0) {
    const double now = now_us();
    tokens_ = std::min(rate_per_s_,
                       tokens_ + (now - last_refill_us_) * 1e-6 * rate_per_s_);
    last_refill_us_ = now;
    if (tokens_ < 1.0) {
      dropped_.fetch_add(1, std::memory_order_relaxed);
      total_suppressed_.fetch_add(1, std::memory_order_relaxed);
      // Under RUPS_OBS_DISABLED this resolves to the shared no-op counter;
      // total_suppressed() keeps the real count in both configurations.
      Registry::global().counter("log.suppressed").inc();
      return;
    }
    tokens_ -= 1.0;
  }
  const std::uint64_t dropped =
      dropped_.exchange(0, std::memory_order_relaxed);
  if (to_file_) {
    if (dropped > 0) {
      file_ << head << "(rate limit dropped " << dropped << " lines)\n";
    }
    file_ << head << message << "\n";
    file_.flush();
  } else {
    if (dropped > 0) {
      std::fprintf(stderr, "%s(rate limit dropped %llu lines)\n", head,
                   static_cast<unsigned long long>(dropped));
    }
    std::fprintf(stderr, "%s%s\n", head, message.c_str());
  }
}

}  // namespace rups::obs
