#include "obs/health.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/recorder.hpp"
#include "obs/timer.hpp"

namespace rups::obs {

namespace {

std::string num(double v) {
  if (std::isnan(v)) return "null";
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

/// Linear-interpolated order statistic of a rolling window, q in [0, 1].
double window_quantile(const util::RingBuffer<double>& window, double q) {
  if (window.empty()) return 0.0;
  std::vector<double> sorted = window.to_vector();
  std::sort(sorted.begin(), sorted.end());
  q = std::clamp(q, 0.0, 1.0);
  const double rank = q * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

}  // namespace

std::string HealthReport::to_json() const {
  std::string out = "{\n";
  out += "    \"samples\": " + std::to_string(samples) + ",\n";
  out += "    \"availability\": " + num(availability) + ",\n";
  out += "    \"error_p95_m\": " + num(error_p95_m) + ",\n";
  out += "    \"latency_p99_us\": " + num(latency_p99_us) + ",\n";
  out += "    \"miss_streak\": " + std::to_string(miss_streak) + ",\n";
  out += "    \"exchanges\": " + std::to_string(exchanges) + ",\n";
  out += "    \"delivery_failure_rate\": " + num(delivery_failure_rate) +
         ",\n";
  out += "    \"degraded_rate\": " + num(degraded_rate) + ",\n";
  out += "    \"admissions\": " + std::to_string(admissions) + ",\n";
  out += "    \"admission_reject_rate\": " + num(admission_reject_rate) +
         ",\n";
  out += "    \"log_suppressed\": " + std::to_string(log_suppressed) + ",\n";
  out += "    \"recorder_overwritten\": " +
         std::to_string(recorder_overwritten) + ",\n";
  out += "    \"healthy\": " + std::string(healthy() ? "true" : "false") +
         ",\n";
  out += "    \"alerts\": [";
  for (std::size_t i = 0; i < alerts.size(); ++i) {
    const HealthAlert& a = alerts[i];
    out += i == 0 ? "\n" : ",\n";
    out += "      {\"rule\": \"" + a.rule + "\", \"value\": " + num(a.value) +
           ", \"threshold\": " + num(a.threshold) +
           ", \"ts_us\": " + num(a.ts_us) +
           ", \"sample_index\": " + std::to_string(a.sample_index) + "}";
  }
  out += alerts.empty() ? "]\n" : "\n    ]\n";
  out += "  }";
  return out;
}

HealthMonitor::HealthMonitor(HealthConfig config)
    : config_(config),
      hits_(config.window == 0 ? 1 : config.window),
      errors_(config.window == 0 ? 1 : config.window),
      latencies_(config.window == 0 ? 1 : config.window),
      deliveries_(config.window == 0 ? 1 : config.window),
      admitted_(config.window == 0 ? 1 : config.window) {
  config_.window = hits_.capacity();
}

void HealthMonitor::on_query(bool hit, std::optional<double> abs_error_m,
                             double latency_us) {
  ++samples_;
  hits_.push(hit ? 1 : 0);
  if (abs_error_m.has_value()) errors_.push(std::abs(*abs_error_m));
  latencies_.push(latency_us);
  miss_streak_ = hit ? 0 : miss_streak_ + 1;
  evaluate();
}

void HealthMonitor::on_exchange(bool usable, bool degraded) {
  ++exchanges_;
  deliveries_.push(usable ? (degraded ? 1 : 0) : 2);

  double failures = 0.0;
  for (std::size_t i = 0; i < deliveries_.size(); ++i) {
    if (deliveries_[i] == 2) failures += 1.0;
  }
  const double failure_rate =
      deliveries_.empty()
          ? 0.0
          : failures / static_cast<double>(deliveries_.size());
  Registry& reg = Registry::global();
  reg.gauge("health.delivery_failure_rate").set(failure_rate);
  reg.gauge("health.exchanges").set(static_cast<double>(exchanges_));

  if (exchanges_ < config_.min_exchanges) return;
  fire("delivery_failure", "health.delivery_failure", armed_delivery_,
       config_.max_delivery_failure_rate > 0.0 &&
           failure_rate > config_.max_delivery_failure_rate,
       failure_rate, config_.max_delivery_failure_rate);
}

void HealthMonitor::on_admission(bool accepted) {
  ++admissions_;
  admitted_.push(accepted ? 1 : 0);

  double rejected = 0.0;
  for (std::size_t i = 0; i < admitted_.size(); ++i) {
    if (admitted_[i] == 0) rejected += 1.0;
  }
  const double reject_rate =
      admitted_.empty() ? 0.0
                        : rejected / static_cast<double>(admitted_.size());
  Registry& reg = Registry::global();
  reg.gauge("health.admission_reject_rate").set(reject_rate);
  reg.gauge("health.admissions").set(static_cast<double>(admissions_));

  if (admissions_ < config_.min_admissions) return;
  fire("admission_reject", "health.admission_reject", armed_admission_,
       config_.max_admission_reject_rate > 0.0 &&
           reject_rate > config_.max_admission_reject_rate,
       reject_rate, config_.max_admission_reject_rate);
}

void HealthMonitor::evaluate() {
  double window_hits = 0.0;
  for (std::size_t i = 0; i < hits_.size(); ++i) window_hits += hits_[i];
  const double availability =
      hits_.empty() ? 0.0 : window_hits / static_cast<double>(hits_.size());
  const double error_p95 = window_quantile(errors_, 0.95);
  const double latency_p99 = window_quantile(latencies_, 0.99);

  Registry& reg = Registry::global();
  reg.gauge("health.availability").set(availability);
  reg.gauge("health.error_p95_m").set(error_p95);
  reg.gauge("health.latency_p99_us").set(latency_p99);
  reg.gauge("health.miss_streak").set(static_cast<double>(miss_streak_));
  reg.gauge("health.alerts").set(static_cast<double>(alerts_.size()));

  if (samples_ < config_.min_samples) return;

  fire("availability", "health.availability", armed_availability_,
       config_.min_availability > 0.0 && availability < config_.min_availability,
       availability, config_.min_availability);
  fire("error_p95", "health.error_p95", armed_error_,
       config_.max_error_p95_m > 0.0 && !errors_.empty() &&
           error_p95 > config_.max_error_p95_m,
       error_p95, config_.max_error_p95_m);
  fire("latency_p99", "health.latency_p99", armed_latency_,
       config_.max_latency_p99_us > 0.0 &&
           latency_p99 > config_.max_latency_p99_us,
       latency_p99, config_.max_latency_p99_us);
  fire("miss_streak", "health.miss_streak", armed_streak_,
       config_.max_miss_streak > 0 && miss_streak_ >= config_.max_miss_streak,
       static_cast<double>(miss_streak_),
       static_cast<double>(config_.max_miss_streak));
}

void HealthMonitor::fire(const char* rule, const char* anomaly_label,
                         bool& armed, bool violated, double value,
                         double threshold) {
  if (!violated) {
    armed = true;  // excursion over; the rule may fire again
    return;
  }
  if (!armed) return;  // already reported this excursion
  armed = false;

  HealthAlert alert;
  alert.rule = rule;
  alert.value = value;
  alert.threshold = threshold;
  alert.ts_us = now_us();
  alert.sample_index = samples_;
  alerts_.push_back(alert);
  Registry::global().gauge("health.alerts").set(
      static_cast<double>(alerts_.size()));

  const std::string detail = std::string(rule) + " " + num(value) +
                             " violates threshold " + num(threshold) +
                             " at query " + std::to_string(samples_);
  FlightRecorder::global().anomaly(anomaly_label, detail);
  RUPS_LOG(kWarn) << "health alert: " << detail;
}

HealthReport HealthMonitor::report() const {
  HealthReport r;
  r.samples = samples_;
  double window_hits = 0.0;
  for (std::size_t i = 0; i < hits_.size(); ++i) window_hits += hits_[i];
  r.availability =
      hits_.empty() ? 0.0 : window_hits / static_cast<double>(hits_.size());
  r.error_p95_m = window_quantile(errors_, 0.95);
  r.latency_p99_us = window_quantile(latencies_, 0.99);
  r.miss_streak = miss_streak_;
  r.exchanges = exchanges_;
  double failures = 0.0;
  double degraded = 0.0;
  for (std::size_t i = 0; i < deliveries_.size(); ++i) {
    if (deliveries_[i] == 2) failures += 1.0;
    if (deliveries_[i] == 1) degraded += 1.0;
  }
  if (!deliveries_.empty()) {
    r.delivery_failure_rate =
        failures / static_cast<double>(deliveries_.size());
    r.degraded_rate = degraded / static_cast<double>(deliveries_.size());
  }
  r.admissions = admissions_;
  double rejected = 0.0;
  for (std::size_t i = 0; i < admitted_.size(); ++i) {
    if (admitted_[i] == 0) rejected += 1.0;
  }
  if (!admitted_.empty()) {
    r.admission_reject_rate =
        rejected / static_cast<double>(admitted_.size());
  }
  r.log_suppressed = Logger::global().total_suppressed();
  r.recorder_overwritten = FlightRecorder::global().overwritten();
  r.alerts = alerts_;
  return r;
}

}  // namespace rups::obs
