#pragma once

// Flight recorder: a fixed-capacity, thread-safe ring buffer of structured
// pipeline events (SYN seeks with scores, estimates with error-vs-truth,
// V2V exchanges with byte counts, anomaly markers). The recorder answers
// "why did this seek fail?" after the fact: when an anomaly fires (health
// rule violated, caller-detected fault) it dumps a JSON diagnostics bundle
// — the recent events, a full MetricsSnapshot, and the active config blob
// — to a directory for offline inspection.
//
//   obs::FlightRecorder::global().record(obs::EventType::kSeekAccepted,
//                                        "syn", correlation, window, thr);
//   ...
//   obs::FlightRecorder::global().anomaly("health.availability",
//                                         "availability 0.10 < 0.25");
//
// Like the rest of rups::obs, the whole class compiles to an inline no-op
// under RUPS_OBS_DISABLED; RecorderEvent itself stays available in both
// configurations so diagnostic tooling can share the type.

#include <cstdint>
#include <filesystem>
#include <mutex>
#include <string>
#include <vector>

namespace rups::obs {

enum class EventType : std::uint8_t {
  kSeekStarted = 0,    ///< v0 = context A metres, v1 = B metres, v2 = offset
  kSeekAccepted,       ///< v0 = correlation, v1 = window m, v2 = threshold
  kSeekRejected,       ///< v0 = best correlation, v1 = window m, v2 = threshold
  kEstimateEmitted,    ///< v0 = distance m, v1 = confidence, v2 = SYN count
  kEstimateMissing,    ///< v0 = ground truth m when known (else 0)
  kEstimateChecked,    ///< v0 = estimate m, v1 = truth m, v2 = |error| m
  kExchangeSent,       ///< v0 = payload bytes, v1 = packets, v2 = duration s
  kExchangeReceived,   ///< v0 = payload bytes, v1 = trajectory metres
  kAnomaly,            ///< v0 = anomaly ordinal; label names the trigger
  kTrackVerified,      ///< v0 = correlation, v1 = recency offset, v2 = window
  kTrackLost,          ///< v0 = best correlation seen, v1 = recency offset
  kExchangeDegraded,   ///< v0 = metres recovered, v1 = metres expected,
                       ///<   v2 = fragments missing; label = salvage kind
  kExchangeFailed,     ///< v0 = fragments received, v1 = fragments expected,
                       ///<   v2 = duration s; label = reject reason
};

/// Stable wire name of an event type ("seek_accepted", ...).
[[nodiscard]] const char* event_type_name(EventType type) noexcept;

/// One recorded event. `label` must point at a string with static storage
/// duration (instrumentation sites pass literals); `v0..v2` are typed per
/// EventType as documented above.
struct RecorderEvent {
  EventType type = EventType::kAnomaly;
  std::uint32_t tid = 0;   ///< dense thread id (obs::this_thread_tid)
  std::uint64_t seq = 0;   ///< global append order, monotone per recorder
  double ts_us = 0.0;      ///< microseconds since process start
  const char* label = "";
  double v0 = 0.0;
  double v1 = 0.0;
  double v2 = 0.0;
};

/// Serialize events oldest-first as a JSON array (used inside bundles and
/// available to tests/tools in both configurations).
[[nodiscard]] std::string events_to_json(
    const std::vector<RecorderEvent>& events);

#ifndef RUPS_OBS_DISABLED

class Counter;

class FlightRecorder {
 public:
  static constexpr std::size_t kDefaultCapacity = 4096;

  explicit FlightRecorder(std::size_t capacity = kDefaultCapacity);
  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// The process-wide recorder used by the built-in instrumentation.
  [[nodiscard]] static FlightRecorder& global();

  /// Append one event (stamps seq / ts_us / tid). Thread-safe; overwrites
  /// the oldest event when full. `label` must outlive the recorder.
  void record(EventType type, const char* label, double v0 = 0.0,
              double v1 = 0.0, double v2 = 0.0) noexcept;

  /// Consistent copy of the retained events, oldest-first.
  [[nodiscard]] std::vector<RecorderEvent> recent() const;

  /// Events ever recorded (including ones already overwritten).
  [[nodiscard]] std::uint64_t total_recorded() const noexcept;
  /// Events lost to ring overwrites (also the `recorder.overwritten`
  /// registry counter and a HealthReport field): how much history the
  /// next anomaly bundle is missing.
  [[nodiscard]] std::uint64_t overwritten() const noexcept;
  [[nodiscard]] std::size_t capacity() const noexcept;
  /// Resize the ring; retained events are dropped.
  void set_capacity(std::size_t capacity);
  void clear();

  /// Directory for diagnostics bundles; empty disables dumping (anomaly
  /// events are still recorded and counted).
  void set_dump_dir(std::filesystem::path dir);
  [[nodiscard]] std::filesystem::path dump_dir() const;
  /// Verbatim JSON blob embedded as "config" in every bundle (pass "{}" or
  /// a serialized config; empty embeds null).
  void set_config_text(std::string json);
  /// Upper bound on bundles written per process (default 16) — an anomaly
  /// storm must not fill the disk.
  void set_max_dumps(std::size_t max_dumps);
  [[nodiscard]] std::uint64_t anomalies() const noexcept;

  /// Record a kAnomaly event and, when a dump dir is configured and the
  /// dump budget allows, write a diagnostics bundle. Returns the bundle
  /// path (empty when no file was written).
  std::filesystem::path anomaly(const char* label, const std::string& detail);

 private:
  [[nodiscard]] std::vector<RecorderEvent> recent_locked() const;

  mutable std::mutex mutex_;
  std::vector<RecorderEvent> ring_;
  std::size_t capacity_;
  std::size_t head_ = 0;  ///< next write slot
  std::size_t size_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t overwritten_ = 0;
  Counter* overwritten_counter_ = nullptr;  ///< resolved once in the ctor
  std::uint64_t anomalies_ = 0;
  std::uint64_t dumps_written_ = 0;
  std::size_t max_dumps_ = 16;
  std::filesystem::path dump_dir_;
  std::string config_text_;
};

#else  // RUPS_OBS_DISABLED

namespace noop {

class FlightRecorder {
 public:
  static constexpr std::size_t kDefaultCapacity = 0;

  FlightRecorder() = default;
  explicit FlightRecorder(std::size_t) noexcept {}

  [[nodiscard]] static FlightRecorder& global() {
    static FlightRecorder r;
    return r;
  }

  void record(EventType, const char*, double = 0.0, double = 0.0,
              double = 0.0) noexcept {}
  [[nodiscard]] std::vector<RecorderEvent> recent() const { return {}; }
  [[nodiscard]] std::uint64_t total_recorded() const noexcept { return 0; }
  [[nodiscard]] std::uint64_t overwritten() const noexcept { return 0; }
  [[nodiscard]] std::size_t capacity() const noexcept { return 0; }
  void set_capacity(std::size_t) noexcept {}
  void clear() noexcept {}
  void set_dump_dir(std::filesystem::path) noexcept {}
  [[nodiscard]] std::filesystem::path dump_dir() const { return {}; }
  void set_config_text(std::string) noexcept {}
  void set_max_dumps(std::size_t) noexcept {}
  [[nodiscard]] std::uint64_t anomalies() const noexcept { return 0; }
  std::filesystem::path anomaly(const char*, const std::string&) {
    return {};
  }
};

}  // namespace noop

using FlightRecorder = noop::FlightRecorder;

#endif  // RUPS_OBS_DISABLED

}  // namespace rups::obs
