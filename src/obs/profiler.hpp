#pragma once

// Sampling span-stack profiler.
//
// A background thread wakes on a fixed, seeded cadence and snapshots every
// registered thread's active span stack (obs::sample_span_stacks — the
// PR-6 parent chains: campaign → fleet round → fleet.task → syncache →
// syn.kernel / v2v.arq_round), folding each observed stack into an
// aggregate keyed by "outer;inner;..." — the flamegraph *folded* format.
//
//   obs::SpanProfiler profiler;           // ~1 kHz default cadence
//   profiler.start();
//   ... workload ...
//   profiler.stop();                      // joins the sampler thread
//   std::ofstream("out.folded") << profiler.profile().to_folded();
//
// The folded output loads directly in speedscope.app or flamegraph.pl;
// attribution_table() renders per-stage self/total sample shares for
// terminal reports. Sample cadence is deterministic (seeded jitter
// sequence, steady-clock deadlines), so two runs of the same workload
// produce the same *stage set* even though sample counts vary with
// machine speed. With RUPS_OBS_DISABLED the profiler is an inert stub:
// no thread is spawned and profiles are empty.

#include <cstdint>
#include <string>
#include <vector>

#ifndef RUPS_OBS_DISABLED
#include <condition_variable>
#include <map>
#include <mutex>
#include <thread>
#endif

namespace rups::obs {

/// Aggregated folded-stack profile. Plain data in both configurations.
struct FoldedProfile {
  struct Row {
    std::string stack;          ///< "outer;inner;..." span names
    std::uint64_t samples = 0;  ///< times this exact stack was observed

    friend bool operator==(const Row&, const Row&) = default;
  };

  std::vector<Row> rows;            ///< sorted by stack
  std::uint64_t total_samples = 0;  ///< sum of row samples
  std::uint64_t ticks = 0;          ///< sampler wakeups (incl. idle ones)

  /// Flamegraph folded format: one "stack count" line per row.
  [[nodiscard]] std::string to_folded() const;

  /// Per-stage attribution: for every span name, `total` counts samples
  /// where the stage appears anywhere in the stack, `self` samples where
  /// it is the innermost frame. Rows sorted by self descending, then name.
  struct Attribution {
    std::string stage;
    std::uint64_t self = 0;
    std::uint64_t total = 0;

    friend bool operator==(const Attribution&, const Attribution&) = default;
  };
  [[nodiscard]] std::vector<Attribution> attribution() const;
  /// The attribution as an aligned text table (header + one row per stage,
  /// with self/total percentages of total_samples).
  [[nodiscard]] std::string attribution_table() const;
};

#ifndef RUPS_OBS_DISABLED

class SpanProfiler {
 public:
  struct Options {
    double period_us = 997.0;   ///< sample cadence (~1 kHz; off-harmonic)
    double jitter_frac = 0.1;   ///< +- fraction of period per tick
    std::uint64_t seed = 1;     ///< jitter sequence seed (deterministic)
  };

  SpanProfiler() : SpanProfiler(Options{}) {}
  explicit SpanProfiler(Options options);
  SpanProfiler(const SpanProfiler&) = delete;
  SpanProfiler& operator=(const SpanProfiler&) = delete;
  ~SpanProfiler();  ///< stops (joins) if still running

  /// Spawn the sampler thread; no-op when already running.
  void start();
  /// Join the sampler thread; idempotent. After stop() the profile is
  /// final — shutdown ordering is profiler first, then exporters, then
  /// trace sinks (see trace_tool).
  void stop();
  [[nodiscard]] bool running() const noexcept { return running_; }

  /// Aggregate of everything sampled so far (safe while running).
  [[nodiscard]] FoldedProfile profile() const;

 private:
  void run();

  Options options_;
  bool running_ = false;
  std::thread thread_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_requested_ = false;  ///< guarded by mutex_
  std::map<std::string, std::uint64_t> folded_;
  std::uint64_t total_samples_ = 0;
  std::uint64_t ticks_ = 0;
};

#else  // RUPS_OBS_DISABLED

namespace noop {
class SpanProfiler {
 public:
  struct Options {
    double period_us = 997.0;
    double jitter_frac = 0.1;
    std::uint64_t seed = 1;
  };
  SpanProfiler() noexcept = default;
  explicit SpanProfiler(Options) noexcept {}
  SpanProfiler(const SpanProfiler&) = delete;
  SpanProfiler& operator=(const SpanProfiler&) = delete;
  void start() noexcept {}
  void stop() noexcept {}
  [[nodiscard]] bool running() const noexcept { return false; }
  [[nodiscard]] FoldedProfile profile() const { return {}; }
};
}  // namespace noop

using SpanProfiler = noop::SpanProfiler;

#endif  // RUPS_OBS_DISABLED

}  // namespace rups::obs
