#pragma once

// Scoped timers and Chrome trace_event spans.
//
//   static obs::Histogram& h = obs::Registry::global().histogram("syn.seek_us");
//   {
//     obs::ObsTimer timer(&h, "syn.seek");   // span name optional
//     ... work ...
//   }                                        // records us + emits trace event
//
// Spans go to the process-wide TraceSink when one is installed
// (obs::set_trace_sink). ChromeTraceSink writes the trace_event JSON array
// format, one event per line, which loads directly in chrome://tracing or
// https://ui.perfetto.dev. With RUPS_OBS_DISABLED the timer is an empty
// stub and instrumented scopes pay nothing.

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <mutex>

#include "obs/metrics.hpp"

namespace rups::obs {

/// Microseconds since process start (steady clock).
[[nodiscard]] double now_us() noexcept;

/// Small dense id of the calling thread (0, 1, 2, ... in first-use order).
[[nodiscard]] std::uint32_t this_thread_tid() noexcept;

struct TraceEvent {
  const char* name = "";
  double ts_us = 0.0;
  double dur_us = 0.0;
  std::uint32_t tid = 0;
};

class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void emit(const TraceEvent& event) = 0;
};

/// Install/clear the process-wide span sink (not owned). Pass nullptr to
/// disable. Emission is already-running-span safe: timers read the pointer
/// once at destruction.
void set_trace_sink(TraceSink* sink) noexcept;
[[nodiscard]] TraceSink* trace_sink() noexcept;

/// chrome://tracing "JSON array format" file sink: one complete ("ph":"X")
/// event object per line, keyed by thread id. Thread-safe; the array is
/// closed by the destructor (chrome also tolerates a missing ']').
class ChromeTraceSink : public TraceSink {
 public:
  explicit ChromeTraceSink(const std::filesystem::path& path);
  ~ChromeTraceSink() override;

  void emit(const TraceEvent& event) override;

  [[nodiscard]] bool ok() const { return static_cast<bool>(out_); }
  [[nodiscard]] std::uint64_t events_written() const noexcept {
    return events_;
  }

 private:
  std::mutex mutex_;
  std::ofstream out_;
  std::uint64_t events_ = 0;
};

#ifndef RUPS_OBS_DISABLED

/// RAII scope timer: on destruction (or explicit stop()) records the
/// elapsed microseconds into `histogram` (if any) and emits a span named
/// `span_name` (if any) to the installed trace sink.
class ObsTimer {
 public:
  explicit ObsTimer(Histogram* histogram,
                    const char* span_name = nullptr) noexcept
      : histogram_(histogram), name_(span_name), start_us_(now_us()) {}

  ObsTimer(const ObsTimer&) = delete;
  ObsTimer& operator=(const ObsTimer&) = delete;

  ~ObsTimer() { stop(); }

  /// Record now instead of at scope exit; idempotent. Returns elapsed us.
  double stop() noexcept {
    if (stopped_) return dur_us_;
    stopped_ = true;
    dur_us_ = now_us() - start_us_;
    if (histogram_ != nullptr) histogram_->record(dur_us_);
    if (name_ != nullptr) {
      if (TraceSink* sink = trace_sink()) {
        sink->emit({name_, start_us_, dur_us_, this_thread_tid()});
      }
    }
    return dur_us_;
  }

 private:
  Histogram* histogram_;
  const char* name_;
  double start_us_;
  double dur_us_ = 0.0;
  bool stopped_ = false;
};

#else  // RUPS_OBS_DISABLED

namespace noop {
class ObsTimer {
 public:
  explicit ObsTimer(Histogram*, const char* = nullptr) noexcept {}
  ObsTimer(const ObsTimer&) = delete;
  ObsTimer& operator=(const ObsTimer&) = delete;
  double stop() noexcept { return 0.0; }
};
}  // namespace noop

using ObsTimer = noop::ObsTimer;

#endif  // RUPS_OBS_DISABLED

}  // namespace rups::obs
