#pragma once

// Scoped timers, causal spans, and Chrome trace_event output.
//
//   static obs::Histogram& h = obs::Registry::global().histogram("syn.seek_us");
//   {
//     obs::ObsTimer timer(&h, "syn.seek");   // span name optional
//     ... work ...
//   }                                        // records us + emits trace event
//
// Named timers form a causal span tree: each carries a fresh span id, the
// trace id of its root, and the span id of its parent — by default the
// innermost named timer currently open on the same thread. When work hops
// threads (FleetEngine handing per-neighbour tasks to the pool), the
// dispatching side captures obs::current_span() and passes it to the
// timer's explicit-parent constructor; the cross-thread edge is then
// emitted as a Chrome trace flow event ("ph":"s"/"f") so Perfetto draws
// the arrow from the fleet round into the worker-thread task.
//
// Spans go to the process-wide TraceSink when one is installed
// (obs::set_trace_sink). ChromeTraceSink writes the trace_event JSON array
// format, one event per line, which loads directly in chrome://tracing or
// https://ui.perfetto.dev. With RUPS_OBS_DISABLED the timer is an empty
// stub and instrumented scopes pay nothing.

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <set>
#include <vector>

#include "obs/metrics.hpp"

namespace rups::obs {

/// Microseconds since process start (steady clock).
[[nodiscard]] double now_us() noexcept;

/// Small dense id of the calling thread (0, 1, 2, ... in first-use order).
[[nodiscard]] std::uint32_t this_thread_tid() noexcept;

/// Human-readable name for the calling thread, shown by ChromeTraceSink as
/// thread-name metadata (defaults to "rups thread <tid>"). `label` must
/// have static storage duration. Available in both configurations.
void set_thread_label(const char* label) noexcept;
[[nodiscard]] const char* thread_label(std::uint32_t tid) noexcept;

/// Handle to a live span, capturable on one thread and usable as an
/// explicit parent on another. Plain data in both configurations.
struct SpanContext {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;   ///< 0 = "no span" (ambient parenting applies)
  std::uint32_t tid = 0;       ///< thread the context was captured on
  double ts_us = 0.0;          ///< capture time; anchors the flow arrow

  [[nodiscard]] bool valid() const noexcept { return span_id != 0; }
};

/// One entry of a thread's open-span stack, innermost last. The recorder
/// embeds the calling thread's chain in anomaly bundles.
struct SpanRecord {
  const char* name = "";
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  std::uint64_t parent_id = 0;
  double start_us = 0.0;
};

/// Innermost named timer currently open on the calling thread (invalid
/// context when none). Span ids are only assigned by enabled ObsTimers, so
/// under RUPS_OBS_DISABLED these return empty — but they stay callable.
[[nodiscard]] SpanContext current_span() noexcept;
[[nodiscard]] std::vector<SpanRecord> active_span_chain();
/// Process-unique non-zero span id.
[[nodiscard]] std::uint64_t next_span_id() noexcept;

/// One thread's active span stack as seen from another thread: dense tid
/// plus span names, outermost first. Names have static storage duration
/// (span names are literals), so a sample stays valid after the spans end.
struct SampledStack {
  std::uint32_t tid = 0;
  std::vector<const char*> frames;
};

/// Snapshot the active span stack of every thread that has ever opened a
/// named span. Safe to call from any thread: each thread mirrors its stack
/// into a seqlock-published fixed-depth buffer on push/pop, and the sampler
/// retries a bounded number of times per thread, dropping a thread whose
/// stack it cannot read consistently (or whose stack is empty). Stacks
/// deeper than the published depth are truncated innermost-first. Under
/// RUPS_OBS_DISABLED no spans are ever pushed, so this returns empty.
[[nodiscard]] std::vector<SampledStack> sample_span_stacks();

namespace detail {
/// Innermost open span name on the calling thread (nullptr when none).
/// Lock-free and allocation-free: safe from operator new interposition.
[[nodiscard]] const char* current_span_name() noexcept;
}  // namespace detail

struct TraceEvent {
  const char* name = "";
  double ts_us = 0.0;
  double dur_us = 0.0;
  std::uint32_t tid = 0;
  std::uint64_t trace_id = 0;  ///< 0 = span ids not tracked for this event
  std::uint64_t span_id = 0;
  std::uint64_t parent_id = 0;
};

/// Cross-thread causality arrow: a span on `src_tid` dispatched work that
/// ran as span `id` on `dst_tid`. Timestamps anchor the arrow endpoints
/// inside the enclosing slices.
struct FlowEvent {
  const char* name = "";
  std::uint64_t id = 0;        ///< destination span id (flow-unique)
  std::uint64_t trace_id = 0;
  double src_ts_us = 0.0;
  std::uint32_t src_tid = 0;
  double dst_ts_us = 0.0;
  std::uint32_t dst_tid = 0;
};

class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void emit(const TraceEvent& event) = 0;
  /// Cross-thread flow arrows; sinks that do not render causality may
  /// ignore them (the default drops them).
  virtual void emit_flow(const FlowEvent& /*event*/) {}
};

/// Install/clear the process-wide span sink (not owned). Pass nullptr to
/// disable. Emission is already-running-span safe: timers read the pointer
/// once at destruction.
void set_trace_sink(TraceSink* sink) noexcept;
[[nodiscard]] TraceSink* trace_sink() noexcept;

/// chrome://tracing "JSON array format" file sink: one event object per
/// line — complete spans ("ph":"X", with trace/span/parent ids in args),
/// flow arrows ("ph":"s"/"f"), and process/thread-name metadata ("ph":"M").
/// Thread-safe. The array is closed by close() (idempotent), by the
/// destructor, and — so an aborting campaign still leaves loadable JSON —
/// by an atexit hook covering every sink still open at process exit.
class ChromeTraceSink : public TraceSink {
 public:
  explicit ChromeTraceSink(const std::filesystem::path& path);
  ~ChromeTraceSink() override;

  void emit(const TraceEvent& event) override;
  void emit_flow(const FlowEvent& event) override;

  /// Write the closing ']' and flush; further events are dropped.
  void close();

  [[nodiscard]] bool ok() const { return static_cast<bool>(out_); }
  /// Span + flow events written (metadata lines are not counted).
  [[nodiscard]] std::uint64_t events_written() const noexcept {
    return events_.load(std::memory_order_relaxed);
  }

 private:
  void line_locked(const char* text);
  void thread_metadata_locked(std::uint32_t tid);

  std::mutex mutex_;
  std::ofstream out_;
  bool closed_ = false;
  std::uint64_t lines_ = 0;  ///< all lines incl. metadata (comma placement)
  std::atomic<std::uint64_t> events_{0};
  std::set<std::uint32_t> tids_named_;
};

#ifndef RUPS_OBS_DISABLED

namespace detail {
void span_push(const SpanRecord& record);
void span_pop() noexcept;
}  // namespace detail

/// RAII scope timer: on destruction (or explicit stop()) records the
/// elapsed microseconds into `histogram` (if any) and emits a span named
/// `span_name` (if any) to the installed trace sink. Named timers
/// participate in span parenting (see file comment); construct with an
/// explicit SpanContext to parent across threads.
class ObsTimer {
 public:
  explicit ObsTimer(Histogram* histogram,
                    const char* span_name = nullptr) noexcept
      : ObsTimer(histogram, span_name, SpanContext{}, false) {}

  /// Cross-thread child span: `parent` was captured via current_span() on
  /// the dispatching thread. A flow arrow parent -> this span is emitted
  /// when the threads differ.
  ObsTimer(Histogram* histogram, const char* span_name,
           const SpanContext& parent) noexcept
      : ObsTimer(histogram, span_name, parent, true) {}

  ObsTimer(const ObsTimer&) = delete;
  ObsTimer& operator=(const ObsTimer&) = delete;

  ~ObsTimer() { stop(); }

  [[nodiscard]] std::uint64_t span_id() const noexcept { return span_id_; }
  [[nodiscard]] std::uint64_t trace_id() const noexcept { return trace_id_; }

  /// Record now instead of at scope exit; idempotent. Returns elapsed us.
  double stop() noexcept {
    if (stopped_) return dur_us_;
    stopped_ = true;
    dur_us_ = now_us() - start_us_;
    if (histogram_ != nullptr) histogram_->record(dur_us_);
    if (name_ != nullptr) {
      detail::span_pop();
      if (TraceSink* sink = trace_sink()) {
        if (flow_) {
          sink->emit_flow({name_, span_id_, trace_id_, parent_.ts_us,
                           parent_.tid, start_us_, this_thread_tid()});
        }
        sink->emit({name_, start_us_, dur_us_, this_thread_tid(), trace_id_,
                    span_id_, parent_.span_id});
      }
    }
    return dur_us_;
  }

 private:
  ObsTimer(Histogram* histogram, const char* span_name,
           const SpanContext& parent, bool explicit_parent) noexcept
      : histogram_(histogram), name_(span_name), start_us_(now_us()) {
    if (name_ == nullptr) return;
    parent_ = explicit_parent && parent.valid() ? parent : current_span();
    span_id_ = next_span_id();
    trace_id_ = parent_.valid() ? parent_.trace_id : span_id_;
    flow_ = explicit_parent && parent.valid() &&
            parent.tid != this_thread_tid();
    detail::span_push({name_, trace_id_, span_id_, parent_.span_id,
                       start_us_});
  }

  Histogram* histogram_;
  const char* name_;
  double start_us_;
  double dur_us_ = 0.0;
  SpanContext parent_{};
  std::uint64_t trace_id_ = 0;
  std::uint64_t span_id_ = 0;
  bool flow_ = false;
  bool stopped_ = false;
};

#else  // RUPS_OBS_DISABLED

namespace noop {
class ObsTimer {
 public:
  explicit ObsTimer(Histogram*, const char* = nullptr) noexcept {}
  ObsTimer(Histogram*, const char*, const SpanContext&) noexcept {}
  ObsTimer(const ObsTimer&) = delete;
  ObsTimer& operator=(const ObsTimer&) = delete;
  [[nodiscard]] std::uint64_t span_id() const noexcept { return 0; }
  [[nodiscard]] std::uint64_t trace_id() const noexcept { return 0; }
  double stop() noexcept { return 0.0; }
};
}  // namespace noop

using ObsTimer = noop::ObsTimer;

#endif  // RUPS_OBS_DISABLED

}  // namespace rups::obs
