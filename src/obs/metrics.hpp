#pragma once

// Lock-cheap metrics for the RUPS pipeline: counters (per-thread sharded
// atomics), gauges, and fixed-bucket histograms, owned by a Registry that
// can snapshot everything into an obs::MetricsSnapshot.
//
// Usage at an instrumentation site (handles are resolved once, increments
// are wait-free relaxed atomics):
//
//   static obs::Counter& evals =
//       obs::Registry::global().counter("gsm.field_evals");
//   evals.inc();
//
// Defining RUPS_OBS_DISABLED swaps every type below for an inline no-op
// stub (namespace obs::noop), so instrumented hot paths compile to nothing.
// The stubs live under a distinct namespace and the real implementations
// are only compiled into rups_obs when enabled, so a program may mix
// translation units of both configurations without ODR clashes as long as
// only the always-on types (MetricsSnapshot, Logger, TraceSink) cross the
// boundary.

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

#include "obs/snapshot.hpp"

namespace rups::obs {

/// Default histogram bucketing for microsecond latencies: 1 us .. ~8.4 s in
/// x2 steps. Shared by enabled and disabled configurations so bucket maths
/// stays testable either way.
[[nodiscard]] std::vector<double> exponential_bounds(double start,
                                                     double factor,
                                                     std::size_t count);
[[nodiscard]] std::vector<double> default_latency_bounds_us();

/// Snapshot name of one labeled-family cell: `family{key="value"}`
/// (Prometheus text-format style; tooling splits on the first '{').
/// Shared by both configurations so diff tools parse either way.
[[nodiscard]] std::string family_cell_name(std::string_view family,
                                           std::string_view label_key,
                                           std::string_view label_value);
/// Decimal label value for integer-keyed cells (neighbour ids etc.).
[[nodiscard]] std::string label_of(std::uint64_t id);

/// Default per-family cardinality cap. Labels are meant to be small bounded
/// sets (outcome, stage, neighbour id); the cap bounds memory when one
/// turns out not to be.
inline constexpr std::size_t kDefaultMaxCells = 64;
/// Label value of the shared overflow cell past the cardinality cap.
inline constexpr const char* kOverflowLabel = "__overflow__";
/// Registry counter tallying label values routed into overflow cells.
inline constexpr const char* kLabelsDroppedCounter = "obs.labels.dropped";

#ifndef RUPS_OBS_DISABLED

namespace detail {
inline constexpr std::size_t kCounterShards = 8;
/// Stable per-thread shard slot (hashed thread id, cached thread_local).
[[nodiscard]] std::size_t shard_index() noexcept;
}  // namespace detail

/// Monotonic event counter. inc() is wait-free: one relaxed fetch_add on a
/// cache-line-private shard, so concurrent writers do not contend.
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void inc(std::uint64_t n = 1) noexcept {
    shards_[detail::shard_index()].v.fetch_add(n, std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint64_t value() const noexcept {
    std::uint64_t total = 0;
    for (const Shard& s : shards_) total += s.v.load(std::memory_order_relaxed);
    return total;
  }

  void reset() noexcept {
    for (Shard& s : shards_) s.v.store(0, std::memory_order_relaxed);
  }

 private:
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> v{0};
  };
  Shard shards_[detail::kCounterShards];
};

/// Last-write-wins instantaneous value (plus relaxed add()).
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void set(double v) noexcept { v_.store(v, std::memory_order_relaxed); }
  void add(double d) noexcept { v_.fetch_add(d, std::memory_order_relaxed); }
  [[nodiscard]] double value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { set(0.0); }

 private:
  std::atomic<double> v_{0.0};
};

/// Fixed-bucket histogram: bounds are upper edges, the final bucket is
/// unbounded. record() is lock-free (atomic bucket increment + atomic
/// sum/min/max); concurrent snapshots are approximate but never torn per
/// field.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void record(double value) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] const std::vector<double>& bounds() const noexcept {
    return bounds_;
  }
  [[nodiscard]] HistogramSample sample(std::string name) const;
  void reset() noexcept;

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;  // bounds_+1
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_;
  std::atomic<double> max_;
};

/// Bounded labeled family of metrics: one `Metric` cell per distinct value
/// of a single label key, snapshot as `name{key="value"}`. Looking up an
/// existing cell is a shared-lock map find; creating one takes the
/// exclusive lock once per new label. The returned reference is stable for
/// the registry's lifetime, so hot sites may cache per-label handles and
/// keep the existing sharded-atomic fast path.
///
/// Cardinality is hard-capped: once `max_cells` distinct labels exist,
/// every call with a NEW label routes to one shared `__overflow__` cell
/// and counts into the registry-wide `obs.labels.dropped` counter (one
/// count per routed call — the drop rate stays visible, memory stays
/// bounded).
template <typename Metric>
class MetricFamily {
 public:
  MetricFamily(std::string name, std::string label_key,
               std::size_t max_cells, Counter* dropped,
               std::vector<double> bounds = {})
      : name_(std::move(name)),
        label_key_(std::move(label_key)),
        max_cells_(max_cells == 0 ? 1 : max_cells),
        dropped_(dropped),
        bounds_(std::move(bounds)) {}
  MetricFamily(const MetricFamily&) = delete;
  MetricFamily& operator=(const MetricFamily&) = delete;

  [[nodiscard]] Metric& with(std::string_view label_value) {
    {
      std::shared_lock lock(mutex_);
      if (auto it = cells_.find(label_value); it != cells_.end()) {
        return *it->second;
      }
    }
    std::unique_lock lock(mutex_);
    if (auto it = cells_.find(label_value); it != cells_.end()) {
      return *it->second;
    }
    if (cells_.size() >= max_cells_ &&
        label_value != std::string_view(kOverflowLabel)) {
      if (dropped_ != nullptr) dropped_->inc();
      lock.unlock();
      return with(kOverflowLabel);
    }
    auto it =
        cells_.emplace(std::string(label_value), make_cell()).first;
    return *it->second;
  }
  [[nodiscard]] Metric& with(std::uint64_t id) { return with(label_of(id)); }

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] const std::string& label_key() const noexcept {
    return label_key_;
  }
  [[nodiscard]] std::size_t max_cells() const noexcept { return max_cells_; }
  [[nodiscard]] std::size_t cells() const {
    std::shared_lock lock(mutex_);
    return cells_.size();
  }

  /// Append one sample per cell (used by Registry::snapshot under its own
  /// lock; families never call back into the registry).
  void snapshot_into(MetricsSnapshot& snap) const {
    std::shared_lock lock(mutex_);
    for (const auto& [value, cell] : cells_) {
      std::string cell_name = family_cell_name(name_, label_key_, value);
      if constexpr (std::is_same_v<Metric, Counter>) {
        snap.counters.push_back({std::move(cell_name), cell->value()});
      } else if constexpr (std::is_same_v<Metric, Gauge>) {
        snap.gauges.push_back({std::move(cell_name), cell->value()});
      } else {
        snap.histograms.push_back(cell->sample(std::move(cell_name)));
      }
    }
  }

  void reset() {
    std::shared_lock lock(mutex_);
    for (auto& [value, cell] : cells_) cell->reset();
  }

 private:
  [[nodiscard]] std::unique_ptr<Metric> make_cell() const {
    if constexpr (std::is_same_v<Metric, Histogram>) {
      return std::make_unique<Histogram>(
          bounds_.empty() ? default_latency_bounds_us() : bounds_);
    } else {
      return std::make_unique<Metric>();
    }
  }

  std::string name_;
  std::string label_key_;
  std::size_t max_cells_;
  Counter* dropped_;
  std::vector<double> bounds_;
  mutable std::shared_mutex mutex_;
  std::map<std::string, std::unique_ptr<Metric>, std::less<>> cells_;
};

using CounterFamily = MetricFamily<Counter>;
using GaugeFamily = MetricFamily<Gauge>;
using HistogramFamily = MetricFamily<Histogram>;

/// Owner and namespace of all metrics. Lookup/creation takes a mutex once
/// per instrumentation site (cache the returned reference); the handles
/// themselves are stable for the registry's lifetime.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// The process-wide registry used by the built-in instrumentation.
  [[nodiscard]] static Registry& global();

  [[nodiscard]] Counter& counter(std::string_view name);
  [[nodiscard]] Gauge& gauge(std::string_view name);
  /// Bounds are fixed on first creation; later calls with the same name
  /// return the existing histogram regardless of `bounds`.
  [[nodiscard]] Histogram& histogram(std::string_view name,
                                     std::vector<double> bounds = {});

  /// Labeled families; like the flat handles, `label_key` / `max_cells` /
  /// `bounds` are fixed on first creation.
  [[nodiscard]] CounterFamily& counter_family(
      std::string_view name, std::string_view label_key,
      std::size_t max_cells = kDefaultMaxCells);
  [[nodiscard]] GaugeFamily& gauge_family(
      std::string_view name, std::string_view label_key,
      std::size_t max_cells = kDefaultMaxCells);
  [[nodiscard]] HistogramFamily& histogram_family(
      std::string_view name, std::string_view label_key,
      std::vector<double> bounds = {},
      std::size_t max_cells = kDefaultMaxCells);

  /// Deterministic (name-sorted) copy of every metric, family cells
  /// included.
  [[nodiscard]] MetricsSnapshot snapshot() const;

  /// Zero every metric (registration survives; handles stay valid).
  void reset();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
  std::map<std::string, std::unique_ptr<CounterFamily>, std::less<>>
      counter_families_;
  std::map<std::string, std::unique_ptr<GaugeFamily>, std::less<>>
      gauge_families_;
  std::map<std::string, std::unique_ptr<HistogramFamily>, std::less<>>
      histogram_families_;
};

#else  // RUPS_OBS_DISABLED

namespace noop {

class Counter {
 public:
  void inc(std::uint64_t = 1) noexcept {}
  [[nodiscard]] std::uint64_t value() const noexcept { return 0; }
  void reset() noexcept {}
};

class Gauge {
 public:
  void set(double) noexcept {}
  void add(double) noexcept {}
  [[nodiscard]] double value() const noexcept { return 0.0; }
  void reset() noexcept {}
};

class Histogram {
 public:
  Histogram() = default;
  explicit Histogram(std::vector<double> /*bounds*/) noexcept {}
  void record(double) noexcept {}
  [[nodiscard]] std::uint64_t count() const noexcept { return 0; }
  [[nodiscard]] double sum() const noexcept { return 0.0; }
  [[nodiscard]] const std::vector<double>& bounds() const noexcept {
    static const std::vector<double> empty;
    return empty;
  }
  [[nodiscard]] HistogramSample sample(std::string name) const {
    HistogramSample s;
    s.name = std::move(name);
    return s;
  }
  void reset() noexcept {}
};

/// All cells of a disabled family collapse onto one shared inert metric;
/// nothing is counted, capped or snapshot.
template <typename Metric>
class MetricFamily {
 public:
  [[nodiscard]] Metric& with(std::string_view) noexcept { return cell(); }
  [[nodiscard]] Metric& with(std::uint64_t) noexcept { return cell(); }
  [[nodiscard]] const std::string& name() const noexcept { return empty(); }
  [[nodiscard]] const std::string& label_key() const noexcept {
    return empty();
  }
  [[nodiscard]] std::size_t max_cells() const noexcept { return 0; }
  [[nodiscard]] std::size_t cells() const noexcept { return 0; }
  void snapshot_into(MetricsSnapshot&) const noexcept {}
  void reset() noexcept {}

 private:
  [[nodiscard]] static Metric& cell() noexcept {
    static Metric m;
    return m;
  }
  [[nodiscard]] static const std::string& empty() noexcept {
    static const std::string s;
    return s;
  }
};

using CounterFamily = MetricFamily<Counter>;
using GaugeFamily = MetricFamily<Gauge>;
using HistogramFamily = MetricFamily<Histogram>;

class Registry {
 public:
  [[nodiscard]] static Registry& global() {
    static Registry r;
    return r;
  }
  [[nodiscard]] Counter& counter(std::string_view) noexcept {
    static Counter c;
    return c;
  }
  [[nodiscard]] Gauge& gauge(std::string_view) noexcept {
    static Gauge g;
    return g;
  }
  [[nodiscard]] Histogram& histogram(std::string_view,
                                     std::vector<double> = {}) noexcept {
    static Histogram h;
    return h;
  }
  [[nodiscard]] CounterFamily& counter_family(
      std::string_view, std::string_view,
      std::size_t = kDefaultMaxCells) noexcept {
    static CounterFamily f;
    return f;
  }
  [[nodiscard]] GaugeFamily& gauge_family(
      std::string_view, std::string_view,
      std::size_t = kDefaultMaxCells) noexcept {
    static GaugeFamily f;
    return f;
  }
  [[nodiscard]] HistogramFamily& histogram_family(
      std::string_view, std::string_view, std::vector<double> = {},
      std::size_t = kDefaultMaxCells) noexcept {
    static HistogramFamily f;
    return f;
  }
  [[nodiscard]] MetricsSnapshot snapshot() const { return {}; }
  void reset() {}
};

}  // namespace noop

using Counter = noop::Counter;
using Gauge = noop::Gauge;
using Histogram = noop::Histogram;
template <typename Metric>
using MetricFamily = noop::MetricFamily<Metric>;
using CounterFamily = noop::CounterFamily;
using GaugeFamily = noop::GaugeFamily;
using HistogramFamily = noop::HistogramFamily;
using Registry = noop::Registry;

#endif  // RUPS_OBS_DISABLED

}  // namespace rups::obs
