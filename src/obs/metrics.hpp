#pragma once

// Lock-cheap metrics for the RUPS pipeline: counters (per-thread sharded
// atomics), gauges, and fixed-bucket histograms, owned by a Registry that
// can snapshot everything into an obs::MetricsSnapshot.
//
// Usage at an instrumentation site (handles are resolved once, increments
// are wait-free relaxed atomics):
//
//   static obs::Counter& evals =
//       obs::Registry::global().counter("gsm.field_evals");
//   evals.inc();
//
// Defining RUPS_OBS_DISABLED swaps every type below for an inline no-op
// stub (namespace obs::noop), so instrumented hot paths compile to nothing.
// The stubs live under a distinct namespace and the real implementations
// are only compiled into rups_obs when enabled, so a program may mix
// translation units of both configurations without ODR clashes as long as
// only the always-on types (MetricsSnapshot, Logger, TraceSink) cross the
// boundary.

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/snapshot.hpp"

namespace rups::obs {

/// Default histogram bucketing for microsecond latencies: 1 us .. ~8.4 s in
/// x2 steps. Shared by enabled and disabled configurations so bucket maths
/// stays testable either way.
[[nodiscard]] std::vector<double> exponential_bounds(double start,
                                                     double factor,
                                                     std::size_t count);
[[nodiscard]] std::vector<double> default_latency_bounds_us();

#ifndef RUPS_OBS_DISABLED

namespace detail {
inline constexpr std::size_t kCounterShards = 8;
/// Stable per-thread shard slot (hashed thread id, cached thread_local).
[[nodiscard]] std::size_t shard_index() noexcept;
}  // namespace detail

/// Monotonic event counter. inc() is wait-free: one relaxed fetch_add on a
/// cache-line-private shard, so concurrent writers do not contend.
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void inc(std::uint64_t n = 1) noexcept {
    shards_[detail::shard_index()].v.fetch_add(n, std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint64_t value() const noexcept {
    std::uint64_t total = 0;
    for (const Shard& s : shards_) total += s.v.load(std::memory_order_relaxed);
    return total;
  }

  void reset() noexcept {
    for (Shard& s : shards_) s.v.store(0, std::memory_order_relaxed);
  }

 private:
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> v{0};
  };
  Shard shards_[detail::kCounterShards];
};

/// Last-write-wins instantaneous value (plus relaxed add()).
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void set(double v) noexcept { v_.store(v, std::memory_order_relaxed); }
  void add(double d) noexcept { v_.fetch_add(d, std::memory_order_relaxed); }
  [[nodiscard]] double value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { set(0.0); }

 private:
  std::atomic<double> v_{0.0};
};

/// Fixed-bucket histogram: bounds are upper edges, the final bucket is
/// unbounded. record() is lock-free (atomic bucket increment + atomic
/// sum/min/max); concurrent snapshots are approximate but never torn per
/// field.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void record(double value) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] const std::vector<double>& bounds() const noexcept {
    return bounds_;
  }
  [[nodiscard]] HistogramSample sample(std::string name) const;
  void reset() noexcept;

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;  // bounds_+1
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_;
  std::atomic<double> max_;
};

/// Owner and namespace of all metrics. Lookup/creation takes a mutex once
/// per instrumentation site (cache the returned reference); the handles
/// themselves are stable for the registry's lifetime.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// The process-wide registry used by the built-in instrumentation.
  [[nodiscard]] static Registry& global();

  [[nodiscard]] Counter& counter(std::string_view name);
  [[nodiscard]] Gauge& gauge(std::string_view name);
  /// Bounds are fixed on first creation; later calls with the same name
  /// return the existing histogram regardless of `bounds`.
  [[nodiscard]] Histogram& histogram(std::string_view name,
                                     std::vector<double> bounds = {});

  /// Deterministic (name-sorted) copy of every metric.
  [[nodiscard]] MetricsSnapshot snapshot() const;

  /// Zero every metric (registration survives; handles stay valid).
  void reset();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

#else  // RUPS_OBS_DISABLED

namespace noop {

class Counter {
 public:
  void inc(std::uint64_t = 1) noexcept {}
  [[nodiscard]] std::uint64_t value() const noexcept { return 0; }
  void reset() noexcept {}
};

class Gauge {
 public:
  void set(double) noexcept {}
  void add(double) noexcept {}
  [[nodiscard]] double value() const noexcept { return 0.0; }
  void reset() noexcept {}
};

class Histogram {
 public:
  Histogram() = default;
  explicit Histogram(std::vector<double> /*bounds*/) noexcept {}
  void record(double) noexcept {}
  [[nodiscard]] std::uint64_t count() const noexcept { return 0; }
  [[nodiscard]] double sum() const noexcept { return 0.0; }
  [[nodiscard]] const std::vector<double>& bounds() const noexcept {
    static const std::vector<double> empty;
    return empty;
  }
  [[nodiscard]] HistogramSample sample(std::string name) const {
    HistogramSample s;
    s.name = std::move(name);
    return s;
  }
  void reset() noexcept {}
};

class Registry {
 public:
  [[nodiscard]] static Registry& global() {
    static Registry r;
    return r;
  }
  [[nodiscard]] Counter& counter(std::string_view) noexcept {
    static Counter c;
    return c;
  }
  [[nodiscard]] Gauge& gauge(std::string_view) noexcept {
    static Gauge g;
    return g;
  }
  [[nodiscard]] Histogram& histogram(std::string_view,
                                     std::vector<double> = {}) noexcept {
    static Histogram h;
    return h;
  }
  [[nodiscard]] MetricsSnapshot snapshot() const { return {}; }
  void reset() {}
};

}  // namespace noop

using Counter = noop::Counter;
using Gauge = noop::Gauge;
using Histogram = noop::Histogram;
using Registry = noop::Registry;

#endif  // RUPS_OBS_DISABLED

}  // namespace rups::obs
