#pragma once

// Sim-time windowed telemetry series.
//
// A campaign driver owns a TimeSeriesCollector and feeds it simulation
// time; on each window boundary the collector snapshots the registry and
// turns the delta against the previous snapshot into one columnar window:
//
//   counters   -> "<name>" kind "rate"   (increments per sim-second)
//   gauges     -> "<name>" kind "last"   (value at window close)
//   histograms -> "<name>" kind "count"  (records in the window)
//                 "<name>" kind "p50"/"p95"/"p99" (quantiles of the
//                 window's bucket delta)
//
// plus first-class estimate staleness: for every tracked neighbour, a
// "estimate.staleness_s{neighbour=\"<id>\"}" column of kind "staleness"
// holding the sim-time since that neighbour's last accepted estimate at
// window close. Windows are sim-time (deterministic under fixed seeds),
// not wall-clock; only histogram quantiles of timing metrics carry
// machine-dependent values.
//
// TimeSeriesConfig and TimeSeriesData are always-on plain data (embedded
// in campaign results in both configurations); the collector itself
// compiles to a no-op under RUPS_OBS_DISABLED.

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/snapshot.hpp"

namespace rups::util {
class CsvWriter;
}

namespace rups::obs {

struct TimeSeriesConfig {
  bool enabled = true;
  double window_s = 30.0;  ///< sim-time window cadence
  /// Collect only metrics whose name starts with one of these prefixes
  /// (empty = every metric). Staleness columns are always collected.
  std::vector<std::string> prefixes;
};

struct SeriesColumn {
  std::string name;  ///< source metric (family cells keep their {key="v"})
  std::string kind;  ///< "rate" | "last" | "count" | "p50" | "p95" | "p99"
                     ///< | "staleness"
  std::vector<double> values;  ///< one entry per window

  friend bool operator==(const SeriesColumn&, const SeriesColumn&) = default;
};

/// The collected windows, columnar. Columns are (name, kind)-sorted and
/// all share windows() entries; metrics that first appear mid-run are
/// zero-backfilled for earlier windows.
struct TimeSeriesData {
  double window_s = 0.0;
  std::vector<double> window_begin_s;
  std::vector<double> window_end_s;
  std::vector<SeriesColumn> columns;

  [[nodiscard]] std::size_t windows() const { return window_end_s.size(); }
  [[nodiscard]] bool empty() const { return window_end_s.empty(); }
  [[nodiscard]] const SeriesColumn* column(const std::string& name,
                                           const std::string& kind) const;

  [[nodiscard]] std::string to_json() const;
  /// Parse a document produced by to_json(); throws std::runtime_error on
  /// malformed input.
  [[nodiscard]] static TimeSeriesData from_json(const std::string& text);
  /// Wide plot-ready CSV: one row per window, one column per series
  /// column (headed "<name>#<kind>").
  void write_csv(util::CsvWriter& out) const;

  friend bool operator==(const TimeSeriesData&,
                         const TimeSeriesData&) = default;
};

/// Quantile of one window's bucket-count delta. Unlike
/// histogram_quantile() there is no per-window min/max to clamp against,
/// so the unbounded last bucket resolves to the largest finite bound.
[[nodiscard]] double window_quantile(const std::vector<double>& bounds,
                                     const std::vector<std::uint64_t>& buckets,
                                     double q);

#ifndef RUPS_OBS_DISABLED

/// One collector per campaign run. Not thread-safe: the single campaign
/// driver thread calls it between rounds (worker threads only touch
/// metrics, which snapshot atomically).
class TimeSeriesCollector {
 public:
  explicit TimeSeriesCollector(TimeSeriesConfig config = {});

  /// Start collecting: takes the baseline snapshot at sim-time `t`.
  void begin(double sim_time_s);
  /// Register a neighbour for the staleness series. Staleness counts from
  /// begin() until the first accepted estimate.
  void track(std::uint64_t neighbour_id);
  /// Feed: an estimate for `neighbour_id` was accepted at sim-time `t`.
  void note_estimate(std::uint64_t neighbour_id, double sim_time_s);
  /// Advance sim time; closes a window when a boundary was crossed (a
  /// window stretches when the driver observes less often than window_s).
  void observe(double sim_time_s);
  /// Close the final partial window and return everything collected.
  [[nodiscard]] TimeSeriesData finish(double sim_time_s);

  [[nodiscard]] bool active() const noexcept { return active_; }
  [[nodiscard]] const TimeSeriesConfig& config() const noexcept {
    return config_;
  }

 private:
  void close_window(double sim_time_s);
  [[nodiscard]] bool selected(const std::string& name) const;
  void set_value(const std::string& name, const char* kind, double value);

  TimeSeriesConfig config_;
  bool active_ = false;
  double begin_s_ = 0.0;
  double window_start_s_ = 0.0;
  MetricsSnapshot prev_;
  std::map<std::uint64_t, double> last_estimate_s_;
  TimeSeriesData data_;
  /// (name, kind) -> index into data_.columns.
  std::map<std::pair<std::string, std::string>, std::size_t> column_index_;
};

#else  // RUPS_OBS_DISABLED

namespace noop {

class TimeSeriesCollector {
 public:
  explicit TimeSeriesCollector(TimeSeriesConfig = {}) noexcept {}
  void begin(double) noexcept {}
  void track(std::uint64_t) noexcept {}
  void note_estimate(std::uint64_t, double) noexcept {}
  void observe(double) noexcept {}
  [[nodiscard]] TimeSeriesData finish(double) { return {}; }
  [[nodiscard]] bool active() const noexcept { return false; }
  [[nodiscard]] const TimeSeriesConfig& config() const noexcept {
    static const TimeSeriesConfig cfg;
    return cfg;
  }
};

}  // namespace noop

using TimeSeriesCollector = noop::TimeSeriesCollector;

#endif  // RUPS_OBS_DISABLED

}  // namespace rups::obs
