#include "obs/snapshot.hpp"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <sstream>
#include <stdexcept>

#include "util/csv.hpp"
#include "util/json.hpp"

namespace rups::obs {

namespace {

/// Print a double so it round-trips exactly through from_json.
std::string num(double v) {
  if (std::isnan(v)) return "0";  // snapshots never carry NaN; be safe
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

void append_escaped(std::string& out, const std::string& s) {
  out += util::json_quote(s);
}

/// Minimal recursive-descent parser for the subset of JSON that to_json
/// emits (objects, arrays, strings, numbers). Good enough for round-trips
/// and for reading snapshots back in tooling/tests.
class Parser {
 public:
  explicit Parser(const std::string& text) : s_(text) {}

  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
  }

  char peek() {
    skip_ws();
    if (pos_ >= s_.size()) fail("unexpected end of input");
    return s_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume(char c) {
    if (pos_ < s_.size() && peek() == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      char c = s_[pos_++];
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= s_.size()) fail("unterminated escape");
      char e = s_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > s_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = s_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              fail("bad \\u escape digit");
            }
          }
          // UTF-8 encode; surrogate halves kept verbatim (snapshots only
          // ever emit \u00XX for control characters).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: fail("unknown escape");
      }
    }
    if (pos_ >= s_.size()) fail("unterminated string");
    ++pos_;  // closing quote
    return out;
  }

  double parse_number() {
    skip_ws();
    const std::size_t start = pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '-' || s_[pos_] == '+' || s_[pos_] == '.' ||
            s_[pos_] == 'e' || s_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected number");
    double v = 0.0;
    const auto res = std::from_chars(s_.data() + start, s_.data() + pos_, v);
    if (res.ec != std::errc{}) fail("bad number");
    return v;
  }

  std::uint64_t parse_u64() {
    const double v = parse_number();
    if (v < 0) fail("expected unsigned value");
    return static_cast<std::uint64_t>(v);
  }

  /// Iterate "key": value pairs of an object; `field` dispatches on key.
  template <typename Fn>
  void parse_object(Fn&& field) {
    expect('{');
    if (consume('}')) return;
    do {
      const std::string key = parse_string();
      expect(':');
      field(key);
    } while (consume(','));
    expect('}');
  }

  template <typename Fn>
  void parse_array(Fn&& element) {
    expect('[');
    if (consume(']')) return;
    do {
      element();
    } while (consume(','));
    expect(']');
  }

  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("MetricsSnapshot::from_json: " + what +
                             " at offset " + std::to_string(pos_));
  }

 private:
  const std::string& s_;
  std::size_t pos_ = 0;
};

}  // namespace

double histogram_quantile(const HistogramSample& h, double q) {
  if (h.count == 0 || h.buckets.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double rank = q * static_cast<double>(h.count);

  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < h.buckets.size(); ++i) {
    cumulative += h.buckets[i];
    if (static_cast<double>(cumulative) < rank) continue;

    // The unbounded final bucket has no upper edge; the observed max is
    // the tightest honest answer there.
    if (i >= h.bounds.size()) return h.max;

    const double upper = h.bounds[i];
    const double lower = i == 0 ? std::min(h.min, upper) : h.bounds[i - 1];
    const std::uint64_t in_bucket = h.buckets[i];
    double value = upper;
    if (in_bucket > 0) {
      const double below =
          static_cast<double>(cumulative) - static_cast<double>(in_bucket);
      const double frac = (rank - below) / static_cast<double>(in_bucket);
      value = lower + (upper - lower) * std::clamp(frac, 0.0, 1.0);
    }
    return std::clamp(value, h.min, h.max);
  }
  return h.max;
}

std::string MetricsSnapshot::to_json() const {
  std::string out;
  out += "{\n  \"counters\": [";
  for (std::size_t i = 0; i < counters.size(); ++i) {
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"name\": ";
    append_escaped(out, counters[i].name);
    out += ", \"value\": " + std::to_string(counters[i].value) + "}";
  }
  out += counters.empty() ? "],\n" : "\n  ],\n";
  out += "  \"gauges\": [";
  for (std::size_t i = 0; i < gauges.size(); ++i) {
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"name\": ";
    append_escaped(out, gauges[i].name);
    out += ", \"value\": " + num(gauges[i].value) + "}";
  }
  out += gauges.empty() ? "],\n" : "\n  ],\n";
  out += "  \"histograms\": [";
  for (std::size_t i = 0; i < histograms.size(); ++i) {
    const HistogramSample& h = histograms[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"name\": ";
    append_escaped(out, h.name);
    out += ", \"count\": " + std::to_string(h.count);
    out += ", \"sum\": " + num(h.sum);
    out += ", \"min\": " + num(h.min);
    out += ", \"max\": " + num(h.max);
    out += ", \"bounds\": [";
    for (std::size_t b = 0; b < h.bounds.size(); ++b) {
      if (b > 0) out += ", ";
      out += num(h.bounds[b]);
    }
    out += "], \"buckets\": [";
    for (std::size_t b = 0; b < h.buckets.size(); ++b) {
      if (b > 0) out += ", ";
      out += std::to_string(h.buckets[b]);
    }
    out += "]}";
  }
  out += histograms.empty() ? "]\n}" : "\n  ]\n}";
  return out;
}

MetricsSnapshot MetricsSnapshot::from_json(const std::string& text) {
  MetricsSnapshot snap;
  Parser p(text);
  p.parse_object([&](const std::string& section) {
    if (section == "counters") {
      p.parse_array([&] {
        CounterSample c;
        p.parse_object([&](const std::string& key) {
          if (key == "name") {
            c.name = p.parse_string();
          } else if (key == "value") {
            c.value = p.parse_u64();
          } else {
            p.fail("unknown counter field '" + key + "'");
          }
        });
        snap.counters.push_back(std::move(c));
      });
    } else if (section == "gauges") {
      p.parse_array([&] {
        GaugeSample g;
        p.parse_object([&](const std::string& key) {
          if (key == "name") {
            g.name = p.parse_string();
          } else if (key == "value") {
            g.value = p.parse_number();
          } else {
            p.fail("unknown gauge field '" + key + "'");
          }
        });
        snap.gauges.push_back(std::move(g));
      });
    } else if (section == "histograms") {
      p.parse_array([&] {
        HistogramSample h;
        p.parse_object([&](const std::string& key) {
          if (key == "name") {
            h.name = p.parse_string();
          } else if (key == "count") {
            h.count = p.parse_u64();
          } else if (key == "sum") {
            h.sum = p.parse_number();
          } else if (key == "min") {
            h.min = p.parse_number();
          } else if (key == "max") {
            h.max = p.parse_number();
          } else if (key == "bounds") {
            p.parse_array([&] { h.bounds.push_back(p.parse_number()); });
          } else if (key == "buckets") {
            p.parse_array([&] { h.buckets.push_back(p.parse_u64()); });
          } else {
            p.fail("unknown histogram field '" + key + "'");
          }
        });
        snap.histograms.push_back(std::move(h));
      });
    } else {
      p.fail("unknown section '" + section + "'");
    }
  });
  return snap;
}

void MetricsSnapshot::write_csv(util::CsvWriter& out) const {
  out.row(std::vector<std::string>{"name", "kind", "value"});
  for (const CounterSample& c : counters) {
    out.row(std::vector<std::string>{c.name, "counter",
                                     std::to_string(c.value)});
  }
  for (const GaugeSample& g : gauges) {
    out.row(std::vector<std::string>{g.name, "gauge", num(g.value)});
  }
  for (const HistogramSample& h : histograms) {
    out.row(std::vector<std::string>{h.name + ".count", "histogram",
                                     std::to_string(h.count)});
    out.row(std::vector<std::string>{h.name + ".sum", "histogram", num(h.sum)});
    out.row(std::vector<std::string>{h.name + ".min", "histogram", num(h.min)});
    out.row(std::vector<std::string>{h.name + ".max", "histogram", num(h.max)});
    for (std::size_t b = 0; b < h.buckets.size(); ++b) {
      const std::string le =
          b < h.bounds.size() ? num(h.bounds[b]) : std::string("inf");
      out.row(std::vector<std::string>{h.name + ".le_" + le, "histogram",
                                       std::to_string(h.buckets[b])});
    }
  }
}

const CounterSample* MetricsSnapshot::counter(const std::string& name) const {
  const auto it = std::find_if(
      counters.begin(), counters.end(),
      [&](const CounterSample& c) { return c.name == name; });
  return it == counters.end() ? nullptr : &*it;
}

const GaugeSample* MetricsSnapshot::gauge(const std::string& name) const {
  const auto it =
      std::find_if(gauges.begin(), gauges.end(),
                   [&](const GaugeSample& g) { return g.name == name; });
  return it == gauges.end() ? nullptr : &*it;
}

const HistogramSample* MetricsSnapshot::histogram(
    const std::string& name) const {
  const auto it = std::find_if(
      histograms.begin(), histograms.end(),
      [&](const HistogramSample& h) { return h.name == name; });
  return it == histograms.end() ? nullptr : &*it;
}

}  // namespace rups::obs
