#pragma once

// Global allocation accounting for the zero-alloc steady-state ratchet.
//
// When compiled in (see availability rules below) every `operator new` /
// `operator delete` in the process is interposed: each allocation bumps
// plain thread-local counters (wait-free, no locks, no recursion risk) and
// process-wide relaxed atomics. An optional *census* additionally
// attributes each allocation to the innermost open obs span on the calling
// thread ("fleet.task", "syn.kernel", ...) in a fixed-size lock-free table,
// published to the registry as the gauge families `alloc.count{stage}` and
// `alloc.bytes{stage}`. The census is what `steady_alloc_gate` ratchets:
// the warm N=16 fleet round's allocation count must not creep up, and the
// future arena refactor drives it to zero.
//
// Interposition is compiled OUT (and every query returns zeros, with
// alloc_accounting_available() == false) when:
//   - RUPS_OBS_DISABLED is set: observability costs nothing, including this;
//   - AddressSanitizer is active: ASAN owns malloc and poisons redzones
//     around its own allocator; replacing operator new would bypass that
//     instrumentation, so accounting auto-disables with a logged reason.

#include <cstddef>
#include <cstdint>
#include <vector>

namespace rups::obs {

/// Monotonic allocation totals (since process start or last census reset —
/// the plain totals are never reset; deltas are the intended use).
struct AllocTotals {
  std::uint64_t count = 0;  ///< operator new calls
  std::uint64_t bytes = 0;  ///< bytes requested (not rounded to bin sizes)
  std::uint64_t frees = 0;  ///< operator delete calls

  friend AllocTotals operator-(const AllocTotals& a, const AllocTotals& b) {
    return {a.count - b.count, a.bytes - b.bytes, a.frees - b.frees};
  }
};

/// One census row: allocations attributed to an obs span stage. `stage` is
/// the span-name literal (static storage) or "(unattributed)" for
/// allocations made outside any span.
struct AllocCensusRow {
  const char* stage = "";
  std::uint64_t count = 0;
  std::uint64_t bytes = 0;
};

#ifndef RUPS_OBS_DISABLED

/// True when operator new/delete interposition is live in this build.
/// The first call in a build where ASAN forced it off logs the reason
/// (once, at kWarn) so CI lanes show *why* alloc metrics are absent.
[[nodiscard]] bool alloc_accounting_available() noexcept;

/// Totals for the calling thread only. Wait-free.
[[nodiscard]] AllocTotals thread_alloc_totals() noexcept;
/// Process-wide totals across all threads.
[[nodiscard]] AllocTotals process_alloc_totals() noexcept;

/// Turn span-stage attribution on/off (off by default: attribution adds a
/// thread-local stack peek plus two atomic adds per allocation).
void enable_alloc_census(bool on) noexcept;
[[nodiscard]] bool alloc_census_enabled() noexcept;
/// Zero every census cell (stage slots stay claimed).
void reset_alloc_census() noexcept;
/// Census contents, sorted by stage name; empty rows are skipped.
[[nodiscard]] std::vector<AllocCensusRow> alloc_census();
/// Mirror the census into the global registry as the gauge families
/// `alloc.count{stage}` / `alloc.bytes{stage}` (idempotent set per cell).
void publish_alloc_census();

#else  // RUPS_OBS_DISABLED

// Inline inert stubs in obs::noop (the shared mixed-configuration pattern:
// a disabled translation unit stays inert even when it links the enabled
// library, and a fully disabled build has no definitions to collide with).
namespace noop {
[[nodiscard]] inline bool alloc_accounting_available() noexcept {
  return false;
}
[[nodiscard]] inline AllocTotals thread_alloc_totals() noexcept { return {}; }
[[nodiscard]] inline AllocTotals process_alloc_totals() noexcept {
  return {};
}
inline void enable_alloc_census(bool) noexcept {}
[[nodiscard]] inline bool alloc_census_enabled() noexcept { return false; }
inline void reset_alloc_census() noexcept {}
[[nodiscard]] inline std::vector<AllocCensusRow> alloc_census() { return {}; }
inline void publish_alloc_census() {}
}  // namespace noop

using noop::alloc_accounting_available;
using noop::alloc_census;
using noop::alloc_census_enabled;
using noop::enable_alloc_census;
using noop::process_alloc_totals;
using noop::publish_alloc_census;
using noop::reset_alloc_census;
using noop::thread_alloc_totals;

#endif  // RUPS_OBS_DISABLED

}  // namespace rups::obs
