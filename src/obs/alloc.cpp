#include "obs/alloc.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <new>

#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/timer.hpp"

// Decide whether interposition is compiled in. The sanitizer allocators
// must stay in charge under their lanes (ASAN's redzone poisoning and
// TSAN's happens-before tracking live inside their malloc), so accounting
// compiles out there and availability reports why.
#if !defined(RUPS_OBS_DISABLED)
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define RUPS_ALLOC_ASAN_DISABLED 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define RUPS_ALLOC_ASAN_DISABLED 1
#endif
#endif
#if !defined(RUPS_ALLOC_ASAN_DISABLED)
#define RUPS_ALLOC_INTERPOSE 1
#endif
#endif

// Under RUPS_OBS_DISABLED the header supplies inline noop stubs and this
// translation unit compiles to nothing.
#ifndef RUPS_OBS_DISABLED

namespace rups::obs {

namespace {

#ifdef RUPS_ALLOC_INTERPOSE

// Plain constant-initialised thread_locals: safe to touch from inside
// operator new (no guarded dynamic init, no allocation, no registration).
thread_local std::uint64_t t_count = 0;
thread_local std::uint64_t t_bytes = 0;
thread_local std::uint64_t t_frees = 0;

std::atomic<std::uint64_t> g_count{0};
std::atomic<std::uint64_t> g_bytes{0};
std::atomic<std::uint64_t> g_frees{0};

std::atomic<bool> g_census_enabled{false};

// Fixed-size open-addressed census table keyed by span-name pointer (span
// names are string literals, so pointer identity is name identity). The
// last slot is a shared overflow cell. Lock-free: claim a slot by CASing
// the key from nullptr, then bump the per-slot atomics.
constexpr std::size_t kCensusSlots = 64;
constexpr const char* kUnattributed = "(unattributed)";
constexpr const char* kCensusOverflow = "(census-overflow)";

struct CensusSlot {
  std::atomic<const char*> key{nullptr};
  std::atomic<std::uint64_t> count{0};
  std::atomic<std::uint64_t> bytes{0};
};

CensusSlot g_census[kCensusSlots];

CensusSlot* census_slot(const char* stage) noexcept {
  const auto hash =
      reinterpret_cast<std::uintptr_t>(stage) * 0x9E3779B97F4A7C15ull;
  const std::size_t probe_limit = kCensusSlots - 1;  // last slot = overflow
  for (std::size_t i = 0; i < probe_limit; ++i) {
    const std::size_t idx =
        (static_cast<std::size_t>(hash >> 17) + i) % probe_limit;
    CensusSlot& slot = g_census[idx];
    const char* key = slot.key.load(std::memory_order_acquire);
    if (key == stage) return &slot;
    if (key == nullptr) {
      const char* expected = nullptr;
      if (slot.key.compare_exchange_strong(expected, stage,
                                           std::memory_order_acq_rel)) {
        return &slot;
      }
      if (expected == stage) return &slot;
    }
  }
  CensusSlot& overflow = g_census[kCensusSlots - 1];
  overflow.key.store(kCensusOverflow, std::memory_order_release);
  return &overflow;
}

void note_alloc(std::size_t size) noexcept {
  ++t_count;
  t_bytes += size;
  g_count.fetch_add(1, std::memory_order_relaxed);
  g_bytes.fetch_add(size, std::memory_order_relaxed);
  if (g_census_enabled.load(std::memory_order_relaxed)) {
    const char* stage = detail::current_span_name();
    if (stage == nullptr) stage = kUnattributed;
    CensusSlot* slot = census_slot(stage);
    slot->count.fetch_add(1, std::memory_order_relaxed);
    slot->bytes.fetch_add(size, std::memory_order_relaxed);
  }
}

void note_free() noexcept {
  ++t_frees;
  g_frees.fetch_add(1, std::memory_order_relaxed);
}

void* checked_alloc(std::size_t size, void* (*alloc)(std::size_t)) {
  for (;;) {
    if (void* p = alloc(size)) {
      note_alloc(size);
      return p;
    }
    const std::new_handler handler = std::get_new_handler();
    if (handler == nullptr) throw std::bad_alloc();
    handler();
  }
}

void* plain_alloc(std::size_t size) {
  return std::malloc(size == 0 ? 1 : size);
}

#endif  // RUPS_ALLOC_INTERPOSE

}  // namespace

bool alloc_accounting_available() noexcept {
#ifdef RUPS_ALLOC_INTERPOSE
  return true;
#else
#ifdef RUPS_ALLOC_ASAN_DISABLED
  static const bool logged = [] {
    RUPS_LOG(kWarn)
        << "alloc accounting disabled: a sanitizer owns the allocator "
           "(operator new interposition would bypass its bookkeeping)";
    return true;
  }();
  (void)logged;
#endif
  return false;
#endif
}

AllocTotals thread_alloc_totals() noexcept {
#ifdef RUPS_ALLOC_INTERPOSE
  return {t_count, t_bytes, t_frees};
#else
  return {};
#endif
}

AllocTotals process_alloc_totals() noexcept {
#ifdef RUPS_ALLOC_INTERPOSE
  return {g_count.load(std::memory_order_relaxed),
          g_bytes.load(std::memory_order_relaxed),
          g_frees.load(std::memory_order_relaxed)};
#else
  return {};
#endif
}

void enable_alloc_census(bool on) noexcept {
#ifdef RUPS_ALLOC_INTERPOSE
  g_census_enabled.store(on, std::memory_order_relaxed);
#else
  (void)on;
#endif
}

bool alloc_census_enabled() noexcept {
#ifdef RUPS_ALLOC_INTERPOSE
  return g_census_enabled.load(std::memory_order_relaxed);
#else
  return false;
#endif
}

void reset_alloc_census() noexcept {
#ifdef RUPS_ALLOC_INTERPOSE
  for (CensusSlot& slot : g_census) {
    slot.count.store(0, std::memory_order_relaxed);
    slot.bytes.store(0, std::memory_order_relaxed);
  }
#endif
}

std::vector<AllocCensusRow> alloc_census() {
  std::vector<AllocCensusRow> rows;
#ifdef RUPS_ALLOC_INTERPOSE
  for (CensusSlot& slot : g_census) {
    const char* key = slot.key.load(std::memory_order_acquire);
    if (key == nullptr) continue;
    const std::uint64_t count = slot.count.load(std::memory_order_relaxed);
    const std::uint64_t bytes = slot.bytes.load(std::memory_order_relaxed);
    if (count == 0 && bytes == 0) continue;
    rows.push_back({key, count, bytes});
  }
  std::sort(rows.begin(), rows.end(),
            [](const AllocCensusRow& a, const AllocCensusRow& b) {
              return std::string_view(a.stage) < std::string_view(b.stage);
            });
#endif
  return rows;
}

void publish_alloc_census() {
#ifdef RUPS_ALLOC_INTERPOSE
  static GaugeFamily& counts =
      Registry::global().gauge_family("alloc.count", "stage");
  static GaugeFamily& bytes =
      Registry::global().gauge_family("alloc.bytes", "stage");
  for (const AllocCensusRow& row : alloc_census()) {
    counts.with(row.stage).set(static_cast<double>(row.count));
    bytes.with(row.stage).set(static_cast<double>(row.bytes));
  }
#endif
}

}  // namespace rups::obs

#ifdef RUPS_ALLOC_INTERPOSE

// Global operator new/delete replacement. Every form forwards to malloc /
// free (glibc free() handles aligned_alloc pointers), with the throwing
// forms running the standard new_handler loop. Definitions live in this
// translation unit of the static rups_obs library; any binary that
// references an obs::alloc symbol (the pipeline wiring does) links them in
// and gets process-wide accounting.

namespace {

void* aligned_alloc_for(std::size_t size, std::align_val_t al) noexcept {
  const std::size_t alignment = static_cast<std::size_t>(al);
  // aligned_alloc requires size to be a multiple of alignment.
  const std::size_t rounded = (size + alignment - 1) / alignment * alignment;
  return std::aligned_alloc(alignment, rounded == 0 ? alignment : rounded);
}

}  // namespace

void* operator new(std::size_t size) {
  return rups::obs::checked_alloc(size, rups::obs::plain_alloc);
}

void* operator new[](std::size_t size) {
  return rups::obs::checked_alloc(size, rups::obs::plain_alloc);
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  void* p = rups::obs::plain_alloc(size);
  if (p != nullptr) rups::obs::note_alloc(size);
  return p;
}

void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  void* p = rups::obs::plain_alloc(size);
  if (p != nullptr) rups::obs::note_alloc(size);
  return p;
}

void* operator new(std::size_t size, std::align_val_t al) {
  for (;;) {
    if (void* p = aligned_alloc_for(size, al)) {
      rups::obs::note_alloc(size);
      return p;
    }
    const std::new_handler handler = std::get_new_handler();
    if (handler == nullptr) throw std::bad_alloc();
    handler();
  }
}

void* operator new[](std::size_t size, std::align_val_t al) {
  return operator new(size, al);
}

void* operator new(std::size_t size, std::align_val_t al,
                   const std::nothrow_t&) noexcept {
  void* p = aligned_alloc_for(size, al);
  if (p != nullptr) rups::obs::note_alloc(size);
  return p;
}

void* operator new[](std::size_t size, std::align_val_t al,
                     const std::nothrow_t&) noexcept {
  void* p = aligned_alloc_for(size, al);
  if (p != nullptr) rups::obs::note_alloc(size);
  return p;
}

void operator delete(void* p) noexcept {
  if (p == nullptr) return;
  rups::obs::note_free();
  std::free(p);
}

void operator delete[](void* p) noexcept { operator delete(p); }

void operator delete(void* p, std::size_t) noexcept { operator delete(p); }

void operator delete[](void* p, std::size_t) noexcept { operator delete(p); }

void operator delete(void* p, std::align_val_t) noexcept {
  operator delete(p);
}

void operator delete[](void* p, std::align_val_t) noexcept {
  operator delete(p);
}

void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  operator delete(p);
}

void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  operator delete(p);
}

void operator delete(void* p, const std::nothrow_t&) noexcept {
  operator delete(p);
}

void operator delete[](void* p, const std::nothrow_t&) noexcept {
  operator delete(p);
}

#endif  // RUPS_ALLOC_INTERPOSE

#endif  // RUPS_OBS_DISABLED
