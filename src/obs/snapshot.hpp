#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace rups::util {
class CsvWriter;
}

namespace rups::obs {

/// Point-in-time samples of the metrics registry. Plain data: these types
/// stay identical whether or not RUPS_OBS_DISABLED compiles the collection
/// machinery out, so they are safe to embed in public result structs
/// (e.g. sim::CampaignResult) in either configuration.
struct CounterSample {
  std::string name;
  std::uint64_t value = 0;

  friend bool operator==(const CounterSample&, const CounterSample&) = default;
};

struct GaugeSample {
  std::string name;
  double value = 0.0;

  friend bool operator==(const GaugeSample&, const GaugeSample&) = default;
};

struct HistogramSample {
  std::string name;
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;  ///< 0 when count == 0
  double max = 0.0;  ///< 0 when count == 0
  /// Upper bounds of the first bounds.size() buckets; the last bucket is
  /// unbounded, so buckets.size() == bounds.size() + 1.
  std::vector<double> bounds;
  std::vector<std::uint64_t> buckets;

  [[nodiscard]] double mean() const noexcept {
    return count == 0 ? 0.0 : sum / static_cast<double>(count);
  }

  friend bool operator==(const HistogramSample&,
                         const HistogramSample&) = default;
};

/// Prometheus-style quantile estimate from a histogram sample: finds the
/// bucket containing rank q*count and linearly interpolates within its
/// inclusive [lower, upper] edge range. q is clamped to [0, 1]; an empty
/// histogram yields 0. The result is clamped to the recorded [min, max],
/// which also resolves the unbounded +Inf bucket to the observed max.
[[nodiscard]] double histogram_quantile(const HistogramSample& h, double q);

/// A deterministic (name-sorted) snapshot of every metric in a registry.
struct MetricsSnapshot {
  std::vector<CounterSample> counters;
  std::vector<GaugeSample> gauges;
  std::vector<HistogramSample> histograms;

  /// Serialize to a stable, human-diffable JSON document.
  [[nodiscard]] std::string to_json() const;

  /// Parse a document produced by to_json(). Throws std::runtime_error on
  /// malformed input.
  [[nodiscard]] static MetricsSnapshot from_json(const std::string& text);

  /// Flat name,kind,value rows (histograms expand to count/sum/min/max and
  /// one row per bucket) — plot-ready via util::CsvWriter.
  void write_csv(util::CsvWriter& out) const;

  /// Lookup helpers (nullptr when absent).
  [[nodiscard]] const CounterSample* counter(const std::string& name) const;
  [[nodiscard]] const GaugeSample* gauge(const std::string& name) const;
  [[nodiscard]] const HistogramSample* histogram(const std::string& name) const;

  friend bool operator==(const MetricsSnapshot&,
                         const MetricsSnapshot&) = default;
};

}  // namespace rups::obs
