#include "obs/metrics.hpp"

#include <algorithm>
#include <cstdio>
#include <functional>
#include <thread>

namespace rups::obs {

std::vector<double> exponential_bounds(double start, double factor,
                                       std::size_t count) {
  std::vector<double> bounds;
  bounds.reserve(count);
  double b = start;
  for (std::size_t i = 0; i < count; ++i) {
    bounds.push_back(b);
    b *= factor;
  }
  return bounds;
}

std::vector<double> default_latency_bounds_us() {
  // 1 us .. ~8.4 s in x2 steps: covers per-sample ingest (sub-us..us),
  // SYN seeks (~ms) and whole campaigns.
  return exponential_bounds(1.0, 2.0, 24);
}

std::string family_cell_name(std::string_view family,
                             std::string_view label_key,
                             std::string_view label_value) {
  std::string out;
  out.reserve(family.size() + label_key.size() + label_value.size() + 5);
  out += family;
  out += '{';
  out += label_key;
  out += "=\"";
  out += label_value;
  out += "\"}";
  return out;
}

std::string label_of(std::uint64_t id) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%llu",
                static_cast<unsigned long long>(id));
  return buf;
}

#ifndef RUPS_OBS_DISABLED

namespace detail {

std::size_t shard_index() noexcept {
  thread_local const std::size_t slot =
      std::hash<std::thread::id>{}(std::this_thread::get_id()) %
      kCounterShards;
  return slot;
}

}  // namespace detail

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)),
      buckets_(new std::atomic<std::uint64_t>[bounds_.size() + 1]),
      min_(0.0),
      max_(0.0) {
  for (std::size_t i = 0; i <= bounds_.size(); ++i) buckets_[i].store(0);
}

void Histogram::record(double value) noexcept {
  // Inclusive upper edges (Prometheus "le"): bucket i counts value <=
  // bounds[i]; lower_bound yields the first bound >= value.
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  const auto idx = static_cast<std::size_t>(it - bounds_.begin());
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  // First record seeds min/max; afterwards classic CAS narrowing.
  if (count_.fetch_add(1, std::memory_order_relaxed) == 0) {
    min_.store(value, std::memory_order_relaxed);
    max_.store(value, std::memory_order_relaxed);
    return;
  }
  double cur = min_.load(std::memory_order_relaxed);
  while (value < cur &&
         !min_.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
  }
  cur = max_.load(std::memory_order_relaxed);
  while (value > cur &&
         !max_.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
  }
}

HistogramSample Histogram::sample(std::string name) const {
  HistogramSample s;
  s.name = std::move(name);
  s.count = count_.load(std::memory_order_relaxed);
  s.sum = sum_.load(std::memory_order_relaxed);
  s.min = s.count == 0 ? 0.0 : min_.load(std::memory_order_relaxed);
  s.max = s.count == 0 ? 0.0 : max_.load(std::memory_order_relaxed);
  s.bounds = bounds_;
  s.buckets.resize(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    s.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return s;
}

void Histogram::reset() noexcept {
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(0.0, std::memory_order_relaxed);
  max_.store(0.0, std::memory_order_relaxed);
}

Registry& Registry::global() {
  static Registry* r = new Registry();  // leaked: outlives static dtor order
  return *r;
}

Counter& Registry::counter(std::string_view name) {
  std::lock_guard lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& Registry::gauge(std::string_view name) {
  std::lock_guard lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& Registry::histogram(std::string_view name,
                               std::vector<double> bounds) {
  std::lock_guard lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    if (bounds.empty()) bounds = default_latency_bounds_us();
    it = histograms_
             .emplace(std::string(name),
                      std::make_unique<Histogram>(std::move(bounds)))
             .first;
  }
  return *it->second;
}

CounterFamily& Registry::counter_family(std::string_view name,
                                        std::string_view label_key,
                                        std::size_t max_cells) {
  // Resolve the drop counter before taking the registry lock: counter()
  // locks the same mutex.
  Counter& dropped = counter(kLabelsDroppedCounter);
  std::lock_guard lock(mutex_);
  auto it = counter_families_.find(name);
  if (it == counter_families_.end()) {
    it = counter_families_
             .emplace(std::string(name),
                      std::make_unique<CounterFamily>(
                          std::string(name), std::string(label_key),
                          max_cells, &dropped))
             .first;
  }
  return *it->second;
}

GaugeFamily& Registry::gauge_family(std::string_view name,
                                    std::string_view label_key,
                                    std::size_t max_cells) {
  Counter& dropped = counter(kLabelsDroppedCounter);
  std::lock_guard lock(mutex_);
  auto it = gauge_families_.find(name);
  if (it == gauge_families_.end()) {
    it = gauge_families_
             .emplace(std::string(name),
                      std::make_unique<GaugeFamily>(
                          std::string(name), std::string(label_key),
                          max_cells, &dropped))
             .first;
  }
  return *it->second;
}

HistogramFamily& Registry::histogram_family(std::string_view name,
                                            std::string_view label_key,
                                            std::vector<double> bounds,
                                            std::size_t max_cells) {
  Counter& dropped = counter(kLabelsDroppedCounter);
  std::lock_guard lock(mutex_);
  auto it = histogram_families_.find(name);
  if (it == histogram_families_.end()) {
    it = histogram_families_
             .emplace(std::string(name),
                      std::make_unique<HistogramFamily>(
                          std::string(name), std::string(label_key),
                          max_cells, &dropped, std::move(bounds)))
             .first;
  }
  return *it->second;
}

MetricsSnapshot Registry::snapshot() const {
  MetricsSnapshot snap;
  std::lock_guard lock(mutex_);
  snap.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) {
    snap.counters.push_back({name, c->value()});
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) {
    snap.gauges.push_back({name, g->value()});
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    snap.histograms.push_back(h->sample(name));
  }
  for (const auto& [name, f] : counter_families_) f->snapshot_into(snap);
  for (const auto& [name, f] : gauge_families_) f->snapshot_into(snap);
  for (const auto& [name, f] : histogram_families_) f->snapshot_into(snap);
  // Family cells append after the flat metrics, so restore the name-sorted
  // order MetricsSnapshot promises ('{' sorts after alphanumerics, keeping
  // a family's cells right after its own prefix).
  const auto by_name = [](const auto& a, const auto& b) {
    return a.name < b.name;
  };
  std::sort(snap.counters.begin(), snap.counters.end(), by_name);
  std::sort(snap.gauges.begin(), snap.gauges.end(), by_name);
  std::sort(snap.histograms.begin(), snap.histograms.end(), by_name);
  return snap;
}

void Registry::reset() {
  std::lock_guard lock(mutex_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
  for (auto& [name, f] : counter_families_) f->reset();
  for (auto& [name, f] : gauge_families_) f->reset();
  for (auto& [name, f] : histogram_families_) f->reset();
}

#endif  // RUPS_OBS_DISABLED

}  // namespace rups::obs
