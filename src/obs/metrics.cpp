#include "obs/metrics.hpp"

#include <algorithm>
#include <functional>
#include <thread>

namespace rups::obs {

std::vector<double> exponential_bounds(double start, double factor,
                                       std::size_t count) {
  std::vector<double> bounds;
  bounds.reserve(count);
  double b = start;
  for (std::size_t i = 0; i < count; ++i) {
    bounds.push_back(b);
    b *= factor;
  }
  return bounds;
}

std::vector<double> default_latency_bounds_us() {
  // 1 us .. ~8.4 s in x2 steps: covers per-sample ingest (sub-us..us),
  // SYN seeks (~ms) and whole campaigns.
  return exponential_bounds(1.0, 2.0, 24);
}

#ifndef RUPS_OBS_DISABLED

namespace detail {

std::size_t shard_index() noexcept {
  thread_local const std::size_t slot =
      std::hash<std::thread::id>{}(std::this_thread::get_id()) %
      kCounterShards;
  return slot;
}

}  // namespace detail

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)),
      buckets_(new std::atomic<std::uint64_t>[bounds_.size() + 1]),
      min_(0.0),
      max_(0.0) {
  for (std::size_t i = 0; i <= bounds_.size(); ++i) buckets_[i].store(0);
}

void Histogram::record(double value) noexcept {
  // Inclusive upper edges (Prometheus "le"): bucket i counts value <=
  // bounds[i]; lower_bound yields the first bound >= value.
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  const auto idx = static_cast<std::size_t>(it - bounds_.begin());
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  // First record seeds min/max; afterwards classic CAS narrowing.
  if (count_.fetch_add(1, std::memory_order_relaxed) == 0) {
    min_.store(value, std::memory_order_relaxed);
    max_.store(value, std::memory_order_relaxed);
    return;
  }
  double cur = min_.load(std::memory_order_relaxed);
  while (value < cur &&
         !min_.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
  }
  cur = max_.load(std::memory_order_relaxed);
  while (value > cur &&
         !max_.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
  }
}

HistogramSample Histogram::sample(std::string name) const {
  HistogramSample s;
  s.name = std::move(name);
  s.count = count_.load(std::memory_order_relaxed);
  s.sum = sum_.load(std::memory_order_relaxed);
  s.min = s.count == 0 ? 0.0 : min_.load(std::memory_order_relaxed);
  s.max = s.count == 0 ? 0.0 : max_.load(std::memory_order_relaxed);
  s.bounds = bounds_;
  s.buckets.resize(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    s.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return s;
}

void Histogram::reset() noexcept {
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(0.0, std::memory_order_relaxed);
  max_.store(0.0, std::memory_order_relaxed);
}

Registry& Registry::global() {
  static Registry* r = new Registry();  // leaked: outlives static dtor order
  return *r;
}

Counter& Registry::counter(std::string_view name) {
  std::lock_guard lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& Registry::gauge(std::string_view name) {
  std::lock_guard lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& Registry::histogram(std::string_view name,
                               std::vector<double> bounds) {
  std::lock_guard lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    if (bounds.empty()) bounds = default_latency_bounds_us();
    it = histograms_
             .emplace(std::string(name),
                      std::make_unique<Histogram>(std::move(bounds)))
             .first;
  }
  return *it->second;
}

MetricsSnapshot Registry::snapshot() const {
  MetricsSnapshot snap;
  std::lock_guard lock(mutex_);
  snap.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) {
    snap.counters.push_back({name, c->value()});
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) {
    snap.gauges.push_back({name, g->value()});
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    snap.histograms.push_back(h->sample(name));
  }
  return snap;  // std::map iteration order == sorted by name
}

void Registry::reset() {
  std::lock_guard lock(mutex_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

#endif  // RUPS_OBS_DISABLED

}  // namespace rups::obs
