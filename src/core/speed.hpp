#pragma once

#include <optional>

#include "sensors/types.hpp"

namespace rups::core {

/// Speed state from sparse OBD samples (paper: ~0.3 Hz). Holds the last two
/// samples; speed between samples is linearly extrapolated/interpolated and
/// the odometer integrates it trapezoidally. Also exposes the speed trend
/// used by Reorientation to sign acceleration events.
class SpeedEstimator {
 public:
  void add_sample(const sensors::SpeedSample& sample) noexcept;

  /// Best estimate of the speed at time t (clamped >= 0).
  [[nodiscard]] double speed_at(double time_s) const noexcept;

  /// +1 / -1 / 0: is the vehicle accelerating, braking, or unknown/steady.
  [[nodiscard]] int trend() const noexcept;

  [[nodiscard]] bool has_data() const noexcept { return has_last_; }

  /// Integrated distance (m) of the piecewise-linear speed profile from the
  /// first sample up to time t.
  [[nodiscard]] double integrate_distance(double from_s,
                                          double to_s) const noexcept;

 private:
  sensors::SpeedSample last_{};
  sensors::SpeedSample prev_{};
  bool has_last_ = false;
  bool has_prev_ = false;
};

}  // namespace rups::core
