#include "core/channel_select.hpp"

#include <algorithm>

namespace rups::core {

void select_top_channels_into(const ContextTrajectory& trajectory,
                              std::size_t window_start, std::size_t window_m,
                              std::size_t k, ChannelSelectScratch& scratch,
                              std::vector<std::size_t>& out,
                              double min_coverage) {
  out.clear();
  if (trajectory.empty() || window_m == 0 ||
      window_start >= trajectory.size()) {
    return;
  }
  const std::size_t end =
      std::min(window_start + window_m, trajectory.size());
  const std::size_t len = end - window_start;
  const std::size_t channels = trajectory.channels();

  std::vector<ChannelRank>& ranks = scratch.ranks;
  ranks.clear();
  ranks.reserve(channels);
  for (std::size_t c = 0; c < channels; ++c) {
    double sum = 0.0;
    std::size_t n = 0;
    for (std::size_t i = window_start; i < end; ++i) {
      const PowerVector& pv = trajectory.power(i);
      if (pv.usable(c)) {
        sum += pv.at(c);
        ++n;
      }
    }
    if (static_cast<double>(n) < min_coverage * static_cast<double>(len)) {
      continue;
    }
    ranks.push_back({c, sum / static_cast<double>(n)});
  }
  const std::size_t take = std::min(k, ranks.size());
  std::partial_sort(ranks.begin(), ranks.begin() + static_cast<long>(take),
                    ranks.end(), [](const ChannelRank& a, const ChannelRank& b) {
                      if (a.mean != b.mean) return a.mean > b.mean;
                      return a.channel < b.channel;
                    });
  out.reserve(take);
  for (std::size_t i = 0; i < take; ++i) out.push_back(ranks[i].channel);
  std::sort(out.begin(), out.end());
}

std::vector<std::size_t> select_top_channels(
    const ContextTrajectory& trajectory, std::size_t window_start,
    std::size_t window_m, std::size_t k, double min_coverage) {
  ChannelSelectScratch scratch;
  std::vector<std::size_t> out;
  select_top_channels_into(trajectory, window_start, window_m, k, scratch, out,
                           min_coverage);
  return out;
}

std::vector<std::size_t> select_top_channels_recent(
    const ContextTrajectory& trajectory, std::size_t window_m, std::size_t k,
    double min_coverage) {
  if (trajectory.size() < window_m) {
    return select_top_channels(trajectory, 0, trajectory.size(), k,
                               min_coverage);
  }
  return select_top_channels(trajectory, trajectory.size() - window_m,
                             window_m, k, min_coverage);
}

}  // namespace rups::core
