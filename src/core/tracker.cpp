#include "core/tracker.hpp"

#include <algorithm>
#include <cmath>

#include "core/channel_select.hpp"
#include "core/correlation.hpp"

namespace rups::core {

NeighbourTracker::NeighbourTracker() : NeighbourTracker(Config{}) {}

NeighbourTracker::NeighbourTracker(Config config) : config_(config) {}

void NeighbourTracker::lock_from_syn(const ContextTrajectory& local,
                                     const SynPoint& syn) {
  const double local_syn =
      local.distance_at(syn.index_a + syn.window_m - 1);
  const double neigh_syn =
      neighbour_->distance_at(syn.index_b + syn.window_m - 1);
  offset_m_ = local_syn - neigh_syn;
  local_end_at_lock_m_ = local.end_distance_m();
  local_end_at_verify_m_ = local.end_distance_m();
  drift_estimate_m_ = 0.0;
  lock_correlation_ = syn.correlation;
  locked_ = true;
  needs_refresh_ = false;
}

bool NeighbourTracker::initialize(const ContextTrajectory& local,
                                  const ContextTrajectory& neighbour_full) {
  neighbour_.emplace(neighbour_full);
  // Consensus lock: several independent recent segments must agree on the
  // alignment; a single ambiguous match must not become a confident lock.
  SynConfig syn_cfg = config_.syn;
  syn_cfg.syn_points =
      std::max<std::size_t>(syn_cfg.syn_points, config_.init_syn_candidates);
  const SynSeeker seeker(syn_cfg);
  const auto syns = seeker.find(local, *neighbour_);
  if (syns.empty()) {
    locked_ = false;
    needs_refresh_ = true;
    return false;
  }
  if (syns.size() >= 2) {
    double lo = 1e18, hi = -1e18;
    for (const SynPoint& s : syns) {
      const double d = resolve_distance(local, *neighbour_, s);
      lo = std::min(lo, d);
      hi = std::max(hi, d);
    }
    if (hi - lo > config_.consensus_tolerance_m) {
      locked_ = false;
      needs_refresh_ = true;
      return false;
    }
  }
  lock_from_syn(local, syns.front());
  return true;
}

bool NeighbourTracker::ingest_tail(const ContextTrajectory& tail) {
  if (!neighbour_.has_value()) return false;
  const std::uint64_t cached_next =
      neighbour_->first_metre() + neighbour_->size();
  if (tail.first_metre() > cached_next) {
    needs_refresh_ = true;  // gap — we missed updates
    return false;
  }
  for (std::size_t i = 0; i < tail.size(); ++i) {
    const std::uint64_t metre = tail.first_metre() + i;
    if (metre < cached_next) continue;  // duplicate overlap
    neighbour_->append(tail.geo(i), tail.power(i));
  }
  return true;
}

std::optional<RelativeDistanceEstimate> NeighbourTracker::estimate(
    const ContextTrajectory& local) const {
  if (!locked_ || !neighbour_.has_value()) return std::nullopt;
  // d_r = (local travel since SYN) - (neighbour travel since SYN)
  //     = local_end - neighbour_end - offset.
  RelativeDistanceEstimate out;
  out.distance_m =
      local.end_distance_m() - neighbour_->end_distance_m() - offset_m_;
  out.confidence = lock_correlation_;
  out.syn_count = 1;
  return out;
}

bool NeighbourTracker::maintain(const ContextTrajectory& local) {
  if (!locked_ || !neighbour_.has_value()) return false;

  // Drift model: both odometers drift as the cars move.
  const double travelled = local.end_distance_m() - local_end_at_verify_m_;
  if (travelled < config_.verify_interval_m) {
    drift_estimate_m_ =
        config_.drift_per_metre *
        (local.end_distance_m() - local_end_at_lock_m_);
    if (drift_estimate_m_ > config_.refresh_threshold_m) {
      needs_refresh_ = true;
    }
    return !needs_refresh_;
  }

  // Narrow re-verification: slide the most recent local window over the
  // cached neighbour context only around the PREDICTED position.
  const std::size_t window = config_.syn.window_m;
  if (local.size() < window || neighbour_->size() < window) {
    return !needs_refresh_;
  }
  const std::size_t local_start = local.size() - window;
  const double predicted_neigh_end_metre =
      local.distance_at(local_start + window - 1) - offset_m_;
  const double predicted_index =
      predicted_neigh_end_metre - static_cast<double>(neighbour_->first_metre()) -
      static_cast<double>(window - 1);

  const auto channels =
      select_top_channels(local, local_start, window, config_.syn.top_channels);
  if (channels.empty()) return !needs_refresh_;

  double best_corr = -2.0;
  std::size_t best_pos = 0;
  const auto radius = static_cast<std::ptrdiff_t>(config_.verify_radius_m);
  const auto centre = static_cast<std::ptrdiff_t>(std::llround(predicted_index));
  for (std::ptrdiff_t p = centre - radius; p <= centre + radius; ++p) {
    if (p < 0 ||
        static_cast<std::size_t>(p) + window > neighbour_->size()) {
      continue;
    }
    const double r = trajectory_correlation(
        WindowRef{&local, local_start},
        WindowRef{&*neighbour_, static_cast<std::size_t>(p)}, window, channels,
        config_.syn.correlation);
    if (r > best_corr) {
      best_corr = r;
      best_pos = static_cast<std::size_t>(p);
    }
  }

  if (best_corr < config_.syn.coherency_threshold) {
    needs_refresh_ = true;
    locked_ = false;
    return false;
  }
  // A verification that wants to move the alignment far from the predicted
  // position means the narrow search latched onto ambiguity — escalate to
  // a full refresh rather than silently jumping the lock.
  const double new_offset =
      local.distance_at(local_start + window - 1) -
      neighbour_->distance_at(best_pos + window - 1);
  if (std::abs(new_offset - offset_m_) >
      config_.max_verify_jump_m + drift_estimate_m_) {
    needs_refresh_ = true;
    return false;
  }
  // Re-lock on the refined match.
  SynPoint refined;
  refined.index_a = local_start;
  refined.index_b = best_pos;
  refined.window_m = window;
  refined.correlation = best_corr;
  lock_from_syn(local, refined);
  return true;
}

}  // namespace rups::core
