#pragma once

#include <cstddef>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "core/channel_select.hpp"
#include "core/correlation.hpp"
#include "core/packed.hpp"
#include "core/quant.hpp"
#include "core/types.hpp"
#include "util/thread_pool.hpp"

namespace rups::core {

/// Largest metre-stride at which best_over_grid scores a strided grid by
/// batching the contiguous COVERING metre range (discarding off-grid
/// lanes) instead of scoring grid points one by one. Measured crossover,
/// not the old hardcoded kLagBlock/2 rule: `bench_syn_kernel
/// --stride-crossover` times both strategies per stride at the paper
/// point and this default records where per-position wins (DESIGN §11).
inline constexpr std::size_t kCoveringScanMaxStrideM = 6;

/// Parameters of the SYN-point search (paper Secs. IV-D, V-C, VI-B).
struct SynConfig {
  /// Checking-window length in metres (paper evaluates with 85 m and the
  /// complexity analysis uses 100 m).
  std::size_t window_m = 85;
  /// Checking-window width: number of strongest channels used (paper: 45).
  std::size_t top_channels = 45;
  /// Coherency threshold on the eq.(2) scale [-2, 2] (paper: 1.2).
  double coherency_threshold = 1.2;
  /// Slide stride in metres (1 = exhaustive, the paper's search).
  std::size_t stride_m = 1;
  /// Number of SYN points sought from successively older recent segments
  /// (Sec. VI-C: multiple SYN points tame passing-vehicle outliers).
  std::size_t syn_points = 1;
  /// Spacing between the recent segments used for multi-SYN (m).
  std::size_t syn_segment_spacing_m = 25;
  /// Adaptive window (Sec. V-C): when a context is shorter than window_m,
  /// shrink the window down to min_window_m and scale the threshold.
  bool adaptive_window = true;
  std::size_t min_window_m = 10;
  /// Treat only the post-turn straight tail of each context as usable for
  /// the RECENT fixed segment (Sec. V-C: after turning onto a new road the
  /// older context belongs to a different segment). Uses TurnDetector;
  /// combines with adaptive_window to answer fast right after a turn.
  bool respect_turns = false;
  /// Coarse-to-fine search: scan positions at coarse_stride_m, then refine
  /// exhaustively around the best coarse hit. Cuts the O(m*w*k) sweep by
  /// ~coarse_stride while finding the same peak when the correlation
  /// surface is unimodal near the optimum (it is: the field decorrelates
  /// within metres). 0/1 disables.
  std::size_t coarse_stride_m = 0;
  /// Threshold multiplier applied at min_window_m (linear in window size up
  /// to 1.0 at window_m). "Combined with a smaller threshold" — Sec. V-C.
  double adaptive_threshold_floor = 0.75;
  /// Kernel precision for every correlation scan this seeker issues.
  /// kFloat32 (default) is the strict bit-identical path; kInt16 / kInt8
  /// run the quantized GEMM-shaped kernel (bounded score error, DESIGN
  /// §15). Accept/reject plumbing (plan, thresholds, tie-breaks) is shared,
  /// so precision only changes scores, never search structure.
  KernelPrecision precision = KernelPrecision::kFloat32;
  /// Strided-grid strategy crossover (see kCoveringScanMaxStrideM).
  /// Exposed so the bench can sweep it; float path only — the quantized
  /// kernel scores strided lanes at contiguous cost and ignores it.
  std::size_t covering_scan_max_stride_m = kCoveringScanMaxStrideM;
  TrajectoryCorrelationConfig correlation{};
};

/// One matched overlap between two context trajectories. Indices are the
/// START entries of the matched windows; the SYN location is the window
/// end. `correlation` is on the eq.(2) scale.
struct SynPoint {
  std::size_t index_a = 0;
  std::size_t index_b = 0;
  std::size_t window_m = 0;
  double correlation = -2.0;
};

/// Double-sliding cross-correlation search for SYN points (paper Fig 7):
/// the most recent window of trajectory A slides over all of B, then the
/// most recent window of B slides over all of A; the best position at or
/// above the coherency threshold wins. Complexity O(m * w * k) per recent
/// segment; optionally parallelized over slide positions with a ThreadPool.
///
/// Callers that query repeatedly against slowly-growing trajectories should
/// pass pre-synced PackedContexts to find()/find_one() — the search then
/// skips the per-query dense extraction entirely (and a shared ego pack can
/// serve every neighbour in a batch, see FleetEngine).
class SynSeeker {
 public:
  struct Candidate {
    double correlation = -2.0;
    std::size_t position = 0;
    bool valid = false;
  };

  /// Window sizing, threshold and channel selection for one recency offset
  /// — exactly the accept/reject preamble of find_one(), factored out so
  /// SynCache's tracking mode reproduces the full search's semantics.
  /// `reject != nullptr` means the search cannot run; the label is the
  /// flight-recorder reason ("syn.empty", "syn.no_window", ...).
  struct SeekPlan {
    std::size_t window = 0;
    double threshold = 0.0;
    std::size_t a_start = 0;
    std::size_t b_start = 0;
    std::vector<std::size_t> channels_a;
    std::vector<std::size_t> channels_b;
    const char* reject = nullptr;
    double reject_v1 = 0.0;
    double reject_v2 = 0.0;
  };

  explicit SynSeeker(SynConfig config = {}, util::ThreadPool* pool = nullptr);

  /// Find up to config.syn_points SYN points between two trajectories,
  /// best-correlation first. Empty if the trajectories are unrelated.
  /// The 4-argument overload reuses caller-maintained packs (packed once,
  /// shared by both slide passes and all recency offsets); pass nullptr —
  /// or an out-of-sync pack — and a temporary pack is built per call.
  /// The 6-argument overload additionally reuses caller-maintained
  /// quantized mirrors when config.precision != kFloat32 (a stale or
  /// wrong-width mirror is ignored; the seek then quantizes the scanned
  /// spans one-shot per call — correct, just not amortized).
  [[nodiscard]] std::vector<SynPoint> find(const ContextTrajectory& a,
                                           const ContextTrajectory& b) const;
  [[nodiscard]] std::vector<SynPoint> find(const ContextTrajectory& a,
                                           const ContextTrajectory& b,
                                           const PackedContext* pack_a,
                                           const PackedContext* pack_b) const;
  [[nodiscard]] std::vector<SynPoint> find(
      const ContextTrajectory& a, const ContextTrajectory& b,
      const PackedContext* pack_a, const PackedContext* pack_b,
      const QuantizedPack* qpack_a, const QuantizedPack* qpack_b) const;

  /// One double-sliding pass where the fixed recent segments END
  /// `recency_offset_m` metres before the newest entry.
  [[nodiscard]] std::optional<SynPoint> find_one(
      const ContextTrajectory& a, const ContextTrajectory& b,
      std::size_t recency_offset_m = 0) const;
  [[nodiscard]] std::optional<SynPoint> find_one(
      const ContextTrajectory& a, const ContextTrajectory& b,
      std::size_t recency_offset_m, const PackedContext* pack_a,
      const PackedContext* pack_b) const;
  [[nodiscard]] std::optional<SynPoint> find_one(
      const ContextTrajectory& a, const ContextTrajectory& b,
      std::size_t recency_offset_m, const PackedContext* pack_a,
      const PackedContext* pack_b, const QuantizedPack* qpack_a,
      const QuantizedPack* qpack_b) const;
  /// Scratch-reusing form: plans through the caller's SeekPlan and channel
  /// workspace (see plan_into), so a steady-state full search against
  /// stable-width trajectories performs no dynamic allocation. Identical
  /// results to the allocating overloads.
  [[nodiscard]] std::optional<SynPoint> find_one(
      const ContextTrajectory& a, const ContextTrajectory& b,
      std::size_t recency_offset_m, const PackedContext* pack_a,
      const PackedContext* pack_b, const QuantizedPack* qpack_a,
      const QuantizedPack* qpack_b, SeekPlan& plan_scratch,
      ChannelSelectScratch& chan_scratch) const;

  [[nodiscard]] SeekPlan plan(const ContextTrajectory& a,
                              const ContextTrajectory& b,
                              std::size_t recency_offset_m) const;

  /// Scratch-reusing form of plan(): resets every field of `out` but keeps
  /// the channel vectors' capacity, and ranks through the caller's
  /// workspace — repeated planning against stable-width trajectories is
  /// allocation-free once warm. Identical selection arithmetic to plan().
  void plan_into(const ContextTrajectory& a, const ContextTrajectory& b,
                 std::size_t recency_offset_m, SeekPlan& out,
                 ChannelSelectScratch& scratch) const;

  /// Effective window and threshold after the adaptive-window rule
  /// (window 0 = cannot search).
  [[nodiscard]] std::pair<std::size_t, double> effective_window(
      std::size_t available_a, std::size_t available_b) const;

  /// Best correlation over the slide-position indices [pos_lo, pos_hi) on
  /// the stride grid (position metres = index * stride_m); scored through
  /// the precision-dispatched kernel (pair.precision) in ascending
  /// kLagBlock-position blocks, ties resolve to the lowest position
  /// (bit-identical to a serial per-position scan at every precision).
  /// pos_hi is clamped to the valid position count. Used by the pool
  /// chunks, the coarse-to-fine refinement, and SynCache's narrow tracking
  /// re-verification (whose ±verify_radius band is a single natural batch).
  [[nodiscard]] Candidate best_over_positions(const ScanPair& pair,
                                              std::size_t window,
                                              std::size_t pos_lo,
                                              std::size_t pos_hi) const;

  [[nodiscard]] const SynConfig& config() const noexcept { return config_; }

 private:
  /// Slide a fixed window (starting at pair.fixed_start in the fixed pack)
  /// across all of the sliding pack; returns the best position in metres.
  [[nodiscard]] Candidate slide(const ScanPair& pair,
                                std::size_t window) const;

  /// Shared scan core: best over grid indices [grid_lo, grid_hi), where
  /// grid index q scores slide position q * metre_step metres and reports
  /// Candidate::position = q * index_step. The fine scan uses metre_step =
  /// index_step = stride_m (position in metres); the coarse scan uses
  /// metre_step = coarse*stride_m with index_step = coarse (position as a
  /// fine-grid INDEX, which is what the refinement stage consumes).
  /// Ascending blocks of kLagBlock positions through
  /// scan_correlation_batch; the trailing partial block is rescored as an
  /// overlapped full block — recomputed lanes are bit-identical and an
  /// equal score can never displace an earlier (lower) position, so the
  /// lowest-position tie-break survives.
  [[nodiscard]] Candidate best_over_grid(const ScanPair& pair,
                                         std::size_t window,
                                         std::size_t grid_lo,
                                         std::size_t grid_hi,
                                         std::size_t metre_step,
                                         std::size_t index_step) const;

  SynConfig config_;
  util::ThreadPool* pool_;
  /// Identity row map 0..top_channels-1, built once so fallback seeks
  /// (SubsetPack views) don't heap-allocate per call; find_one takes
  /// prefix subspans of it.
  std::vector<std::size_t> identity_rows_;
};

}  // namespace rups::core
