#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "core/correlation.hpp"
#include "core/types.hpp"
#include "util/thread_pool.hpp"

namespace rups::core {

/// Parameters of the SYN-point search (paper Secs. IV-D, V-C, VI-B).
struct SynConfig {
  /// Checking-window length in metres (paper evaluates with 85 m and the
  /// complexity analysis uses 100 m).
  std::size_t window_m = 85;
  /// Checking-window width: number of strongest channels used (paper: 45).
  std::size_t top_channels = 45;
  /// Coherency threshold on the eq.(2) scale [-2, 2] (paper: 1.2).
  double coherency_threshold = 1.2;
  /// Slide stride in metres (1 = exhaustive, the paper's search).
  std::size_t stride_m = 1;
  /// Number of SYN points sought from successively older recent segments
  /// (Sec. VI-C: multiple SYN points tame passing-vehicle outliers).
  std::size_t syn_points = 1;
  /// Spacing between the recent segments used for multi-SYN (m).
  std::size_t syn_segment_spacing_m = 25;
  /// Adaptive window (Sec. V-C): when a context is shorter than window_m,
  /// shrink the window down to min_window_m and scale the threshold.
  bool adaptive_window = true;
  std::size_t min_window_m = 10;
  /// Treat only the post-turn straight tail of each context as usable for
  /// the RECENT fixed segment (Sec. V-C: after turning onto a new road the
  /// older context belongs to a different segment). Uses TurnDetector;
  /// combines with adaptive_window to answer fast right after a turn.
  bool respect_turns = false;
  /// Coarse-to-fine search: scan positions at coarse_stride_m, then refine
  /// exhaustively around the best coarse hit. Cuts the O(m*w*k) sweep by
  /// ~coarse_stride while finding the same peak when the correlation
  /// surface is unimodal near the optimum (it is: the field decorrelates
  /// within metres). 0/1 disables.
  std::size_t coarse_stride_m = 0;
  /// Threshold multiplier applied at min_window_m (linear in window size up
  /// to 1.0 at window_m). "Combined with a smaller threshold" — Sec. V-C.
  double adaptive_threshold_floor = 0.75;
  TrajectoryCorrelationConfig correlation{};
};

/// One matched overlap between two context trajectories. Indices are the
/// START entries of the matched windows; the SYN location is the window
/// end. `correlation` is on the eq.(2) scale.
struct SynPoint {
  std::size_t index_a = 0;
  std::size_t index_b = 0;
  std::size_t window_m = 0;
  double correlation = -2.0;
};

/// Double-sliding cross-correlation search for SYN points (paper Fig 7):
/// the most recent window of trajectory A slides over all of B, then the
/// most recent window of B slides over all of A; the best position at or
/// above the coherency threshold wins. Complexity O(m * w * k) per recent
/// segment; optionally parallelized over slide positions with a ThreadPool.
class SynSeeker {
 public:
  explicit SynSeeker(SynConfig config = {},
                     util::ThreadPool* pool = nullptr) noexcept;

  /// Find up to config.syn_points SYN points between two trajectories,
  /// best-correlation first. Empty if the trajectories are unrelated.
  [[nodiscard]] std::vector<SynPoint> find(const ContextTrajectory& a,
                                           const ContextTrajectory& b) const;

  /// One double-sliding pass where the fixed recent segments END
  /// `recency_offset_m` metres before the newest entry.
  [[nodiscard]] std::optional<SynPoint> find_one(
      const ContextTrajectory& a, const ContextTrajectory& b,
      std::size_t recency_offset_m = 0) const;

  [[nodiscard]] const SynConfig& config() const noexcept { return config_; }

 private:
  struct Candidate {
    double correlation = -2.0;
    std::size_t position = 0;
    bool valid = false;
  };

  /// Slide a fixed window of `fixed` (starting at fixed_start) across all
  /// of `sliding`; returns the best position.
  [[nodiscard]] Candidate slide(const ContextTrajectory& fixed,
                                std::size_t fixed_start,
                                const ContextTrajectory& sliding,
                                std::size_t window,
                                std::span<const std::size_t> channels) const;

  /// Effective window and threshold after the adaptive-window rule.
  [[nodiscard]] std::pair<std::size_t, double> effective_window(
      std::size_t available_a, std::size_t available_b) const;

  SynConfig config_;
  util::ThreadPool* pool_;
};

}  // namespace rups::core
