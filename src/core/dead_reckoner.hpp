#pragma once

#include <optional>
#include <vector>

#include "core/types.hpp"

namespace rups::core {

/// Integrates estimated speed along the estimated heading and emits one
/// GeoSample per metre of estimated travel (the paper's T^m geographical
/// trajectory: (theta_i, t_i) at each metre mark, Sec. IV-B).
class DeadReckoner {
 public:
  /// Advance to `time_s` with the current heading and speed estimates;
  /// returns the metre marks crossed during this step (usually 0 or 1).
  std::vector<GeoSample> advance(double time_s, double heading_rad,
                                 double speed_mps);

  /// Estimated odometer (m).
  [[nodiscard]] double odometer_m() const noexcept { return distance_; }

  /// Estimated odometer at an earlier instant, back-extrapolated with the
  /// last known speed (used to place asynchronous RSSI measurements).
  [[nodiscard]] double odometer_at(double time_s) const noexcept;

  /// Metre marks emitted so far.
  [[nodiscard]] std::uint64_t marks_emitted() const noexcept { return marks_; }

 private:
  double distance_ = 0.0;
  double last_time_ = 0.0;
  double last_speed_ = 0.0;
  bool started_ = false;
  std::uint64_t marks_ = 0;
};

}  // namespace rups::core
