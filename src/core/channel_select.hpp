#pragma once

#include <cstddef>
#include <vector>

#include "core/types.hpp"

namespace rups::core {

/// One coverage-qualified channel with its window-mean RSSI.
struct ChannelRank {
  std::size_t channel;
  double mean;
};

/// Reusable ranking workspace: holding one per long-lived session keeps
/// repeated selections allocation-free once the vector reaches the
/// trajectory's channel count.
struct ChannelSelectScratch {
  std::vector<ChannelRank> ranks;
};

/// Select the `k` strongest channels over a window of a trajectory —
/// the paper's checking window is "top 45 channels wide" (Sec. VI-B).
/// Channels are ranked by mean usable RSSI over the window; channels with
/// coverage below `min_coverage` (fraction of window positions usable) are
/// excluded. Returned indices are sorted ascending.
[[nodiscard]] std::vector<std::size_t> select_top_channels(
    const ContextTrajectory& trajectory, std::size_t window_start,
    std::size_t window_m, std::size_t k, double min_coverage = 0.3);

/// Scratch-reusing form: writes the selection into `out` (cleared first,
/// capacity retained). Identical ranking arithmetic and ordering to
/// select_top_channels.
void select_top_channels_into(const ContextTrajectory& trajectory,
                              std::size_t window_start, std::size_t window_m,
                              std::size_t k, ChannelSelectScratch& scratch,
                              std::vector<std::size_t>& out,
                              double min_coverage = 0.3);

/// Convenience: top channels over the most recent `window_m` metres.
[[nodiscard]] std::vector<std::size_t> select_top_channels_recent(
    const ContextTrajectory& trajectory, std::size_t window_m, std::size_t k,
    double min_coverage = 0.3);

}  // namespace rups::core
