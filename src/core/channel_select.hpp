#pragma once

#include <cstddef>
#include <vector>

#include "core/types.hpp"

namespace rups::core {

/// Select the `k` strongest channels over a window of a trajectory —
/// the paper's checking window is "top 45 channels wide" (Sec. VI-B).
/// Channels are ranked by mean usable RSSI over the window; channels with
/// coverage below `min_coverage` (fraction of window positions usable) are
/// excluded. Returned indices are sorted ascending.
[[nodiscard]] std::vector<std::size_t> select_top_channels(
    const ContextTrajectory& trajectory, std::size_t window_start,
    std::size_t window_m, std::size_t k, double min_coverage = 0.3);

/// Convenience: top channels over the most recent `window_m` metres.
[[nodiscard]] std::vector<std::size_t> select_top_channels_recent(
    const ContextTrajectory& trajectory, std::size_t window_m, std::size_t k,
    double min_coverage = 0.3);

}  // namespace rups::core
