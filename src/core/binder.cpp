#include "core/binder.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace rups::core {

TrajectoryBinder::TrajectoryBinder(std::size_t channels)
    : TrajectoryBinder(channels, Config{}) {}

TrajectoryBinder::TrajectoryBinder(std::size_t channels, Config config)
    : channels_(channels),
      config_(config),
      open_(channels),
      last_seen_(channels) {
  if (channels == 0) throw std::invalid_argument("TrajectoryBinder: 0 ch");
}

void TrajectoryBinder::add_measurement(std::size_t channel, double distance_m,
                                       float rssi_dbm,
                                       ContextTrajectory& trajectory) {
  if (channel >= channels_) throw std::out_of_range("binder channel");
  const auto metre =
      static_cast<std::uint64_t>(std::max(0.0, std::floor(distance_m)));
  if (metre == next_metre_) {
    open_.set(channel, rssi_dbm, ChannelState::kMeasured);
  } else if (metre > next_metre_) {
    future_.push_back({metre, channel, rssi_dbm});
  } else {
    // Late measurement for an already-finalized metre: retro-fill if the
    // entry is retained and the slot is not already measured.
    place(metre, channel, rssi_dbm, trajectory);
  }
}

void TrajectoryBinder::place(std::uint64_t metre, std::size_t channel,
                             float rssi, ContextTrajectory& trajectory) {
  if (!trajectory.contains_metre(metre)) return;
  PowerVector& pv =
      trajectory.mutable_power(trajectory.index_of_metre(metre));
  if (!pv.measured(channel)) {
    pv.set(channel, rssi, ChannelState::kMeasured);
  }
}

void TrajectoryBinder::interpolate_channel(std::size_t channel,
                                           std::uint64_t from_metre,
                                           float from_rssi,
                                           std::uint64_t to_metre,
                                           float to_rssi,
                                           ContextTrajectory& trajectory) {
  const double span = static_cast<double>(to_metre - from_metre);
  for (std::uint64_t m = from_metre + 1; m < to_metre; ++m) {
    if (!trajectory.contains_metre(m)) continue;
    PowerVector& pv = trajectory.mutable_power(trajectory.index_of_metre(m));
    if (pv.state(channel) != ChannelState::kMissing) continue;
    const double t = static_cast<double>(m - from_metre) / span;
    pv.set(channel,
           static_cast<float>(from_rssi + (to_rssi - from_rssi) * t),
           ChannelState::kInterpolated);
  }
}

void TrajectoryBinder::bind_metre(std::uint64_t metre_index, GeoSample geo,
                                  ContextTrajectory& trajectory) {
  if (metre_index < next_metre_) {
    throw std::invalid_argument("bind_metre: metres must be monotone");
  }
  // Finalize every metre up to and including metre_index. Intermediate
  // metres (if the caller skipped marks) get empty power vectors.
  while (next_metre_ <= metre_index) {
    PowerVector finished(channels_);
    std::swap(finished, open_);

    // Interpolation bookkeeping BEFORE appending, so the fill targets the
    // already-retained gap metres.
    const std::uint64_t m = next_metre_;
    for (std::size_t c = 0; c < channels_; ++c) {
      if (!finished.measured(c)) continue;
      LastSeen& seen = last_seen_[c];
      if (config_.interpolate && seen.any && m > seen.metre + 1 &&
          m - seen.metre <= config_.max_interpolation_gap_m) {
        interpolate_channel(c, seen.metre, seen.rssi, m, finished.at(c),
                            trajectory);
      }
      seen = {m, finished.at(c), true};
    }

    trajectory.append(geo, std::move(finished));
    ++next_metre_;

    // Pull forward any buffered measurements that now belong to the newly
    // opened metre.
    auto it = std::remove_if(future_.begin(), future_.end(),
                             [&](const Pending& p) {
                               if (p.metre == next_metre_) {
                                 open_.set(p.channel, p.rssi,
                                           ChannelState::kMeasured);
                                 return true;
                               }
                               return false;
                             });
    future_.erase(it, future_.end());
  }
}

}  // namespace rups::core
