#pragma once

// Packed, reusable representation of a ContextTrajectory for the SYN-search
// kernel. Historically SynSeeker::slide() re-extracted a dense channel-major
// copy of BOTH trajectories on every call — per query, per pass, per recency
// offset — even when the trajectory had only grown by a metre since the last
// query. PackedContext packs ALL channels once (so the pack is valid for any
// checking-window channel subset) and extends incrementally as the
// trajectory grows, which is what makes SYN caching and fleet-scale batching
// (one ego pack shared by N neighbour queries) cheap.
//
// The correlation kernels live in packed.cpp and are LAG-BATCHED: one
// traversal of the checking window scores a block of kLagBlock sliding
// positions, with the fixed-row values loaded once and broadcast while the
// sliding-side loads are contiguous across the block (SIMD lanes across
// lags). Every entry point — packed_correlation, packed_correlation_batch,
// the tuning widths — funnels into the same per-lane accumulation loop,
// compiled WITHOUT value-changing FP options (no -ffast-math, and
// -ffp-contract=off), so each lag's moment sums accumulate over the window
// metres in source order regardless of batch shape. Bit-identical scores
// for identical inputs are therefore a language-level guarantee, not a
// compiler accident (see DESIGN.md §11 "Kernel layout").

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "core/correlation.hpp"
#include "core/types.hpp"

namespace rups::core {

/// RSSI values are shifted by this at pack time so the float moment sums in
/// the kernel centre near zero — without it, sxx - sx^2/n cancels
/// catastrophically in single precision (values ~-90 dBm, windows of ~100
/// samples) and near-constant channels produce garbage correlations.
inline constexpr float kPackShiftDbm = 80.0f;

/// Borrowed view of a packed trajectory region: channel-major rows of
/// pre-masked values (0 where unusable), their squares, and 0/1 validity.
/// Row of channel c starts at x + c*stride; columns are metres.
struct PackedSpan {
  const float* x = nullptr;
  const float* x2 = nullptr;
  const float* v = nullptr;
  std::size_t stride = 0;    ///< floats between consecutive channel rows
  std::size_t metres = 0;    ///< columns in the view
  std::size_t channels = 0;  ///< rows
};

/// Owning, incrementally-maintained pack of one trajectory. sync() mirrors
/// the trajectory's current retained range:
///   * pure growth appends new columns (O(channels) per new metre),
///   * front eviction just advances the view base (no data movement),
///   * a trailing `volatile_suffix_m` region is unconditionally re-packed —
///     the TrajectoryBinder retro-fills interpolated channels up to its
///     interpolation gap behind the newest metre, so those columns may have
///     changed since the last sync,
///   * anything else (width change, shrink, gap, rebase) falls back to a
///     full repack.
/// The backing buffer over-allocates by ~25% so eviction-driven compaction
/// is amortized O(channels) per appended metre.
class PackedContext {
 public:
  /// Default re-pack horizon; must cover the binder's retro-fill reach
  /// (TrajectoryBinder::Config::max_interpolation_gap_m, default 40).
  static constexpr std::size_t kDefaultVolatileSuffixM = 48;

  PackedContext() = default;

  /// Bring the pack in sync with `t`. Returns the number of columns
  /// (re)packed — size() on a full repack, ~volatile_suffix_m + growth in
  /// steady state.
  std::size_t sync(const ContextTrajectory& t,
                   std::size_t volatile_suffix_m = kDefaultVolatileSuffixM);

  [[nodiscard]] PackedSpan span() const noexcept {
    return {x_.data() + base_, x2_.data() + base_, v_.data() + base_,
            stride_,           metres_,            channels_};
  }

  [[nodiscard]] bool empty() const noexcept { return metres_ == 0; }
  [[nodiscard]] std::size_t size() const noexcept { return metres_; }
  [[nodiscard]] std::size_t channels() const noexcept { return channels_; }
  [[nodiscard]] std::uint64_t first_metre() const noexcept {
    return first_metre_;
  }
  /// True when the pack currently mirrors `t`'s retained range.
  [[nodiscard]] bool in_sync_with(const ContextTrajectory& t) const noexcept {
    return channels_ == t.channels() && metres_ == t.size() &&
           (t.empty() || first_metre_ == t.first_metre());
  }

  void clear() noexcept {
    base_ = metres_ = 0;
    first_metre_ = 0;
  }

 private:
  void pack_column(const ContextTrajectory& t, std::size_t index);
  void compact() noexcept;

  std::size_t channels_ = 0;
  std::size_t stride_ = 0;
  std::uint64_t first_metre_ = 0;  ///< odometer metre of column `base_`
  std::size_t base_ = 0;           ///< first live column in the buffer
  std::size_t metres_ = 0;         ///< live columns
  std::vector<float> x_, x2_, v_;
};

/// One-shot dense pack of a channel subset over one stretch — the
/// historical per-query layout: row i holds channels[i] restricted to
/// [from, from+len). Cheap to build exactly once per slide pass; callers
/// without a maintained PackedContext use this.
class SubsetPack {
 public:
  SubsetPack() = default;
  SubsetPack(const ContextTrajectory& t, std::span<const std::size_t> channels,
             std::size_t from, std::size_t len);

  /// View with stride == len and channels == subset size (row indices are
  /// subset positions, not channel ids).
  [[nodiscard]] PackedSpan span() const noexcept {
    return {x_.data(), x2_.data(), v_.data(), metres_, metres_, k_};
  }

 private:
  std::size_t metres_ = 0;
  std::size_t k_ = 0;
  std::vector<float> x_, x2_, v_;
};

/// A pack plus its row map: rows[kk] is the row index of the kk-th checking
/// channel inside `span`. For an all-channel PackedContext the rows are the
/// selected channel ids themselves; for a SubsetPack they are 0..k-1. The
/// kernel below only ever sees (span, rows) pairs, so both layouts run the
/// same compiled loop over the same values.
struct PackedView {
  PackedSpan span{};
  std::span<const std::size_t> rows{};
};

/// Lane width of the production lag-batched kernel: one window traversal
/// scores this many sliding positions. 16 keeps the per-channel float
/// accumulator working set (6 sums x 16 lanes) inside the vector register
/// file on AVX2 and x86-64-v4 targets while still amortizing the fixed-row
/// loads 16x; callers that chunk scans should align chunk lengths to this
/// so only the final chunk pays a partial block.
inline constexpr std::size_t kLagBlock = 16;

/// Trajectory correlation (paper eq. (2)) between the fixed window
/// [fixed_start, fixed_start+window) of `fixed` and the sliding window
/// [pos, pos+window) of `sliding`, over fixed.rows/sliding.rows (must have
/// equal length: entry kk of each names the kk-th checking channel's row).
/// Identical semantics to trajectory_correlation(); this is the float fast
/// path the SYN search runs on. Single-position wrapper over the lane
/// kernel — bit-identical to any packed_correlation_batch() lane scoring
/// the same position.
[[nodiscard]] double packed_correlation(
    const PackedView& fixed, std::size_t fixed_start, const PackedView& sliding,
    std::size_t pos, std::size_t window,
    const TrajectoryCorrelationConfig& config);

/// Lag-batched correlation: scores `pos_count` sliding positions
///   pos_lo + q * pos_stride_m   for q in [0, pos_count)
/// into out_scores[q], each exactly equal (bit-identical) to the
/// corresponding packed_correlation() call. One traversal of the checking
/// window scores kLagBlock positions at a time: fixed-row values are loaded
/// once and broadcast, the B sliding-side loads per metre are contiguous
/// across the block (stride 1) or strided by pos_stride_m — SIMD lanes
/// across lags instead of across metres, which is why no value-changing FP
/// flags are needed to vectorize. A trailing partial block is rescored as
/// an overlapped full block ending at the last position (same stride grid,
/// so recomputed lanes reproduce the same bits); when pos_count < kLagBlock
/// each position runs as a degenerate single-position block.
/// Caller must guarantee every scored window fits: pos_lo +
/// (pos_count-1)*pos_stride_m + window <= sliding.span.metres.
void packed_correlation_batch(const PackedView& fixed, std::size_t fixed_start,
                              const PackedView& sliding, std::size_t pos_lo,
                              std::size_t pos_count, std::size_t window,
                              const TrajectoryCorrelationConfig& config,
                              double* out_scores,
                              std::size_t pos_stride_m = 1);

/// Tuning/bench surface: packed_correlation_batch with an explicit lane
/// width. lanes must be 1, 4, 8 or 16 (1 = per-position scalar path, the
/// baseline the bench sweep compares against). All widths produce
/// bit-identical scores — the per-lane accumulation order never depends on
/// the block shape. Production callers use packed_correlation_batch().
void packed_correlation_batch_lanes(
    std::size_t lanes, const PackedView& fixed, std::size_t fixed_start,
    const PackedView& sliding, std::size_t pos_lo, std::size_t pos_count,
    std::size_t window, const TrajectoryCorrelationConfig& config,
    double* out_scores, std::size_t pos_stride_m = 1);

}  // namespace rups::core
