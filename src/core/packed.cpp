#include "core/packed.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

// NOTE: this translation unit is compiled WITHOUT value-changing FP options
// (no -ffast-math; -ffp-contract=off — see src/core/CMakeLists.txt), so the
// lane kernel below evaluates IEEE source-order semantics exactly. That is
// what upgrades the repo's determinism invariant from "single TU, same
// flags" (bit-identity by compiler accident) to a language-level guarantee:
// every lane accumulates its moment sums over the window metres in source
// order, independent of the block width or how the compiler vectorizes
// ACROSS lanes. Speed comes from batching lags, not from reassociation.

namespace rups::core {

std::size_t PackedContext::sync(const ContextTrajectory& t,
                                std::size_t volatile_suffix_m) {
  if (t.empty()) {
    channels_ = t.channels();
    clear();
    return 0;
  }
  const std::uint64_t t_first = t.first_metre();
  const std::uint64_t t_end = t_first + t.size();
  const std::uint64_t packed_end = first_metre_ + metres_;

  // Incremental only when the trajectory is the packed range plus front
  // evictions and/or appended metres; anything else (width change, rebase,
  // shrink, gap) falls back to a full repack.
  const bool incremental = metres_ != 0 && channels_ == t.channels() &&
                           t_first >= first_metre_ && t_first <= packed_end &&
                           t_end >= packed_end && t.size() <= stride_;
  if (!incremental) {
    channels_ = t.channels();
    // Slack so eviction-driven compaction is amortized across appends.
    const std::size_t want = std::max(t.capacity_m(), t.size());
    stride_ = want + std::max<std::size_t>(64, want / 4);
    x_.assign(channels_ * stride_, 0.0f);
    x2_.assign(channels_ * stride_, 0.0f);
    v_.assign(channels_ * stride_, 0.0f);
    base_ = 0;
    first_metre_ = t_first;
    metres_ = t.size();
    for (std::size_t i = 0; i < metres_; ++i) pack_column(t, i);
    return metres_;
  }

  // Front eviction: advance the view base, no data movement.
  const auto evicted = static_cast<std::size_t>(t_first - first_metre_);
  base_ += evicted;
  metres_ -= evicted;
  first_metre_ = t_first;

  if (base_ + t.size() > stride_) compact();

  // Append the new columns plus the trailing volatile region — the binder
  // retro-fills interpolated channels behind the newest metre, so recently
  // packed columns may be stale.
  const std::size_t keep =
      metres_ > volatile_suffix_m ? metres_ - volatile_suffix_m : 0;
  metres_ = t.size();
  for (std::size_t i = keep; i < metres_; ++i) pack_column(t, i);
  return metres_ - keep;
}

void PackedContext::compact() noexcept {
  if (base_ == 0) return;
  const std::size_t bytes = metres_ * sizeof(float);
  for (std::size_t c = 0; c < channels_; ++c) {
    std::memmove(x_.data() + c * stride_, x_.data() + c * stride_ + base_,
                 bytes);
    std::memmove(x2_.data() + c * stride_, x2_.data() + c * stride_ + base_,
                 bytes);
    std::memmove(v_.data() + c * stride_, v_.data() + c * stride_ + base_,
                 bytes);
  }
  base_ = 0;
}

void PackedContext::pack_column(const ContextTrajectory& t, std::size_t index) {
  const std::size_t col = base_ + index;
  const PowerVector& pv = t.power(index);
  const std::size_t width = pv.channels();
  for (std::size_t c = 0; c < channels_; ++c) {
    float val = 0.0f;
    float sq = 0.0f;
    float mask = 0.0f;
    if (c < width && pv.usable(c)) {
      val = pv.at(c) + kPackShiftDbm;
      sq = val * val;
      mask = 1.0f;
    }
    x_[c * stride_ + col] = val;
    x2_[c * stride_ + col] = sq;
    v_[c * stride_ + col] = mask;
  }
}

SubsetPack::SubsetPack(const ContextTrajectory& t,
                       std::span<const std::size_t> channels, std::size_t from,
                       std::size_t len)
    : metres_(len), k_(channels.size()) {
  x_.assign(k_ * len, 0.0f);
  x2_.assign(k_ * len, 0.0f);
  v_.assign(k_ * len, 0.0f);
  const std::size_t width = t.channels();
  for (std::size_t i = 0; i < len; ++i) {
    const PowerVector& pv = t.power(from + i);
    for (std::size_t kk = 0; kk < k_; ++kk) {
      const std::size_t c = channels[kk];
      if (c < width && pv.usable(c)) {
        const float val = pv.at(c) + kPackShiftDbm;
        x_[kk * len + i] = val;
        x2_[kk * len + i] = val * val;
        v_[kk * len + i] = 1.0f;
      }
    }
  }
}

namespace {

// ---------------------------------------------------------------------------
// Lane kernel. lag_block_body<B> scores the B sliding positions
//   pos0, pos0 + step, ..., pos0 + (B-1)*step     (in metres)
// in one traversal of the checking window. The outer loop runs over window
// metres i; fixed-row values fv[i]/fx[i]/fx2[i] are loaded once per metre
// and broadcast; the B sliding-side loads sx_[i + b*step] are contiguous
// across the block when step == 1 (SIMD lanes across lags). Each lane's six
// float moment sums accumulate over i in source order, which is the SAME
// order the historical per-position kernel used — so every lane is
// bit-identical to a single-position call regardless of B, step, or target
// ISA (the TU is compiled without value-changing FP options).
//
// step == 0 is the degenerate single-position block (all lanes score pos0;
// lane 0 is the answer) — packed_correlation() routes through it so there
// is exactly ONE compiled accumulation loop in the whole system.
//
// The per-channel epilogue is branchless on purpose: every lane computes
// the variance/covariance reduction with a safe denominator (dn = 1 when
// the lane's overlap is below min_channel_overlap) and then SELECTS either
// the real contribution or 0.0 / +0. Adding a selected +0.0 to a lane's
// running double sums cannot change their bits (the sums are never -0.0:
// they start at +0.0 and x + (-0.0) == x for any x != -0.0), so an
// excluded lane's sums stay bit-equal to the scalar path that skipped the
// channel with `continue`. A lane whose guard fails may compute NaN/Inf in
// `r`; the select discards it before it can touch an accumulator.
// ---------------------------------------------------------------------------
template <int B>
[[gnu::always_inline]] inline void lag_block_body(
    const PackedView& fixed, std::size_t fixed_start, const PackedView& sliding,
    std::size_t pos0, std::size_t step, std::size_t window,
    const TrajectoryCorrelationConfig& config, double* out) {
  double channel_corr_sum[B] = {};
  std::size_t channels_used[B] = {};
  double pn[B] = {}, psx[B] = {}, psy[B] = {}, psxx[B] = {}, psyy[B] = {},
         psxy[B] = {};
  const float min_overlap = static_cast<float>(config.min_channel_overlap);

  const std::size_t k = std::min(fixed.rows.size(), sliding.rows.size());
  for (std::size_t kk = 0; kk < k; ++kk) {
    const std::size_t fc = fixed.rows[kk];
    const std::size_t sc = sliding.rows[kk];
    // A channel outside either pack contributes nothing (an all-masked row
    // would be skipped by min_channel_overlap below anyway).
    if (fc >= fixed.span.channels || sc >= sliding.span.channels) continue;
    const float* fx = fixed.span.x + fc * fixed.span.stride + fixed_start;
    const float* fx2 = fixed.span.x2 + fc * fixed.span.stride + fixed_start;
    const float* fv = fixed.span.v + fc * fixed.span.stride + fixed_start;
    const float* sx_ = sliding.span.x + sc * sliding.span.stride + pos0;
    const float* sx2_ = sliding.span.x2 + sc * sliding.span.stride + pos0;
    const float* sv_ = sliding.span.v + sc * sliding.span.stride + pos0;

    float n[B] = {}, sx[B] = {}, sy[B] = {}, sxx[B] = {}, syy[B] = {},
          sxy[B] = {};
    if (step == 1) {
      // Contiguous lanes: per metre i the block reads sliding columns
      // [i, i+B) — one unaligned vector load per stream.
      for (std::size_t i = 0; i < window; ++i) {
        const float fvi = fv[i];
        const float fxi = fx[i];
        const float fx2i = fx2[i];
        for (int b = 0; b < B; ++b) {
          const std::size_t j = i + static_cast<std::size_t>(b);
          const float m = fvi * sv_[j];
          n[b] += m;
          sx[b] += m * fxi;
          sy[b] += m * sx_[j];
          sxx[b] += m * fx2i;
          syy[b] += m * sx2_[j];
          sxy[b] += m * fxi * sx_[j];
        }
      }
    } else {
      // Strided (coarse-scan) or degenerate (step == 0) lanes: gathered
      // loads, same per-lane arithmetic and order.
      for (std::size_t i = 0; i < window; ++i) {
        const float fvi = fv[i];
        const float fxi = fx[i];
        const float fx2i = fx2[i];
        for (int b = 0; b < B; ++b) {
          const std::size_t j = i + static_cast<std::size_t>(b) * step;
          const float m = fvi * sv_[j];
          n[b] += m;
          sx[b] += m * fxi;
          sy[b] += m * sx_[j];
          sxx[b] += m * fx2i;
          syy[b] += m * sx2_[j];
          sxy[b] += m * fxi * sx_[j];
        }
      }
    }
    for (int b = 0; b < B; ++b) {
      const bool use = n[b] >= min_overlap;
      const double dn = use ? static_cast<double>(n[b]) : 1.0;
      const double vx =
          static_cast<double>(sxx[b]) - static_cast<double>(sx[b]) * sx[b] / dn;
      const double vy =
          static_cast<double>(syy[b]) - static_cast<double>(sy[b]) * sy[b] / dn;
      const double cov =
          static_cast<double>(sxy[b]) - static_cast<double>(sx[b]) * sy[b] / dn;
      // Variance guard: a (near-)constant channel carries no alignment
      // information, and float residues below ~1e-2 dB^2 are pure rounding
      // noise — count the channel with zero correlation.
      const bool informative = use && vx > 1e-2 && vy > 1e-2;
      const double r = std::clamp(cov / std::sqrt(vx * vy), -1.0, 1.0);
      channel_corr_sum[b] += informative ? r : 0.0;
      channels_used[b] += use ? 1u : 0u;
      const double ma = sx[b] / dn;
      const double mb = sy[b] / dn;
      pn[b] += use ? 1.0 : 0.0;
      psx[b] += use ? ma : 0.0;
      psy[b] += use ? mb : 0.0;
      psxx[b] += use ? ma * ma : 0.0;
      psyy[b] += use ? mb * mb : 0.0;
      psxy[b] += use ? ma * mb : 0.0;
    }
  }

  for (int b = 0; b < B; ++b) {
    if (channels_used[b] < config.min_channels) {
      out[b] = -2.0;
      continue;
    }
    double profile_corr = 0.0;
    if (pn[b] >= 2.0) {
      const double vx = psxx[b] - psx[b] * psx[b] / pn[b];
      const double vy = psyy[b] - psy[b] * psy[b] / pn[b];
      const double cov = psxy[b] - psx[b] * psy[b] / pn[b];
      if (vx > 0.0 && vy > 0.0) profile_corr = cov / std::sqrt(vx * vy);
    }
    out[b] =
        channel_corr_sum[b] / static_cast<double>(channels_used[b]) +
        profile_corr;
  }
}

// Runtime ISA dispatch: GCC emits default/AVX2/AVX-512 clones of each block
// width and an ifunc resolver picks once at load time. The clone attribute
// must sit on a concrete (non-template) function, hence the macro. Every
// caller of a given width runs the same resolved clone, and all clones
// evaluate the same strict-FP source semantics, so dispatch cannot break
// bit-identity. TSan builds drop the clones: ifunc resolvers run during
// relocation, before the sanitizer runtime is initialised, and the
// instrumented resolver path segfaults there.
#if defined(__x86_64__) && defined(__GNUC__) && !defined(__clang__) && \
    !defined(__SANITIZE_THREAD__)
#define RUPS_KERNEL_CLONES \
  __attribute__((target_clones("default", "avx2", "arch=x86-64-v4")))
#else
#define RUPS_KERNEL_CLONES
#endif

#define RUPS_DEFINE_LAG_BLOCK(B)                                          \
  RUPS_KERNEL_CLONES __attribute__((noinline)) void lag_block_##B(        \
      const PackedView& fixed, std::size_t fixed_start,                   \
      const PackedView& sliding, std::size_t pos0, std::size_t step,      \
      std::size_t window, const TrajectoryCorrelationConfig& config,      \
      double* out) {                                                      \
    lag_block_body<B>(fixed, fixed_start, sliding, pos0, step, window,    \
                      config, out);                                       \
  }

RUPS_DEFINE_LAG_BLOCK(1)
RUPS_DEFINE_LAG_BLOCK(4)
RUPS_DEFINE_LAG_BLOCK(8)
RUPS_DEFINE_LAG_BLOCK(16)
#undef RUPS_DEFINE_LAG_BLOCK
#undef RUPS_KERNEL_CLONES

/// Full blocks of B ascending positions, then either an overlapped tail
/// block (recomputes up to B-1 already-scored positions on the same stride
/// grid — bit-identical, so harmless) or, when the whole batch is smaller
/// than B, degenerate single-position blocks.
template <int B>
void batch_blocks(const PackedView& fixed, std::size_t fixed_start,
                  const PackedView& sliding, std::size_t pos_lo,
                  std::size_t pos_count, std::size_t window,
                  const TrajectoryCorrelationConfig& config,
                  double* out_scores, std::size_t pos_stride) {
  const auto block = [&](std::size_t pos0, std::size_t step, double* out) {
    if constexpr (B == 4) {
      lag_block_4(fixed, fixed_start, sliding, pos0, step, window, config,
                  out);
    } else if constexpr (B == 8) {
      lag_block_8(fixed, fixed_start, sliding, pos0, step, window, config,
                  out);
    } else {
      lag_block_16(fixed, fixed_start, sliding, pos0, step, window, config,
                   out);
    }
  };
  constexpr auto kB = static_cast<std::size_t>(B);
  std::size_t q = 0;
  for (; q + kB <= pos_count; q += kB) {
    block(pos_lo + q * pos_stride, pos_stride, out_scores + q);
  }
  if (q == pos_count) return;
  double tmp[kB];
  if (pos_count >= kB) {
    const std::size_t start = pos_count - kB;
    block(pos_lo + start * pos_stride, pos_stride, tmp);
    for (std::size_t b = q - start; b < kB; ++b) {
      out_scores[start + b] = tmp[b];
    }
  } else {
    // Fewer positions than lanes: score one at a time through the B=1
    // block (identical per-lane arithmetic, so still bit-exact). Running
    // the wide block at step 0 instead would compute the same position in
    // every lane — B× redundant work through the slow generic nest.
    for (; q < pos_count; ++q) {
      lag_block_1(fixed, fixed_start, sliding, pos_lo + q * pos_stride, 0,
                  window, config, tmp);
      out_scores[q] = tmp[0];
    }
  }
}

}  // namespace

double packed_correlation(const PackedView& fixed, std::size_t fixed_start,
                          const PackedView& sliding, std::size_t pos,
                          std::size_t window,
                          const TrajectoryCorrelationConfig& config) {
  double out[1];
  lag_block_1(fixed, fixed_start, sliding, pos, 0, window, config, out);
  return out[0];
}

void packed_correlation_batch(const PackedView& fixed, std::size_t fixed_start,
                              const PackedView& sliding, std::size_t pos_lo,
                              std::size_t pos_count, std::size_t window,
                              const TrajectoryCorrelationConfig& config,
                              double* out_scores, std::size_t pos_stride_m) {
  batch_blocks<16>(fixed, fixed_start, sliding, pos_lo, pos_count, window,
                   config, out_scores, pos_stride_m);
}

void packed_correlation_batch_lanes(
    std::size_t lanes, const PackedView& fixed, std::size_t fixed_start,
    const PackedView& sliding, std::size_t pos_lo, std::size_t pos_count,
    std::size_t window, const TrajectoryCorrelationConfig& config,
    double* out_scores, std::size_t pos_stride_m) {
  switch (lanes) {
    case 1:
      for (std::size_t q = 0; q < pos_count; ++q) {
        out_scores[q] = packed_correlation(
            fixed, fixed_start, sliding, pos_lo + q * pos_stride_m, window,
            config);
      }
      break;
    case 4:
      batch_blocks<4>(fixed, fixed_start, sliding, pos_lo, pos_count, window,
                      config, out_scores, pos_stride_m);
      break;
    case 8:
      batch_blocks<8>(fixed, fixed_start, sliding, pos_lo, pos_count, window,
                      config, out_scores, pos_stride_m);
      break;
    default:
      batch_blocks<16>(fixed, fixed_start, sliding, pos_lo, pos_count, window,
                       config, out_scores, pos_stride_m);
      break;
  }
}

}  // namespace rups::core
