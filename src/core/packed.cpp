#include "core/packed.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

// NOTE: this translation unit carries the same vectorization flags as
// syn_seeker.cpp (see src/core/CMakeLists.txt). packed_correlation() must
// have exactly one compiled definition so the full search, the SynCache
// tracking verify, and the tests all score identical inputs bit-identically.

namespace rups::core {

std::size_t PackedContext::sync(const ContextTrajectory& t,
                                std::size_t volatile_suffix_m) {
  if (t.empty()) {
    channels_ = t.channels();
    clear();
    return 0;
  }
  const std::uint64_t t_first = t.first_metre();
  const std::uint64_t t_end = t_first + t.size();
  const std::uint64_t packed_end = first_metre_ + metres_;

  // Incremental only when the trajectory is the packed range plus front
  // evictions and/or appended metres; anything else (width change, rebase,
  // shrink, gap) falls back to a full repack.
  const bool incremental = metres_ != 0 && channels_ == t.channels() &&
                           t_first >= first_metre_ && t_first <= packed_end &&
                           t_end >= packed_end && t.size() <= stride_;
  if (!incremental) {
    channels_ = t.channels();
    // Slack so eviction-driven compaction is amortized across appends.
    const std::size_t want = std::max(t.capacity_m(), t.size());
    stride_ = want + std::max<std::size_t>(64, want / 4);
    x_.assign(channels_ * stride_, 0.0f);
    x2_.assign(channels_ * stride_, 0.0f);
    v_.assign(channels_ * stride_, 0.0f);
    base_ = 0;
    first_metre_ = t_first;
    metres_ = t.size();
    for (std::size_t i = 0; i < metres_; ++i) pack_column(t, i);
    return metres_;
  }

  // Front eviction: advance the view base, no data movement.
  const auto evicted = static_cast<std::size_t>(t_first - first_metre_);
  base_ += evicted;
  metres_ -= evicted;
  first_metre_ = t_first;

  if (base_ + t.size() > stride_) compact();

  // Append the new columns plus the trailing volatile region — the binder
  // retro-fills interpolated channels behind the newest metre, so recently
  // packed columns may be stale.
  const std::size_t keep =
      metres_ > volatile_suffix_m ? metres_ - volatile_suffix_m : 0;
  metres_ = t.size();
  for (std::size_t i = keep; i < metres_; ++i) pack_column(t, i);
  return metres_ - keep;
}

void PackedContext::compact() noexcept {
  if (base_ == 0) return;
  const std::size_t bytes = metres_ * sizeof(float);
  for (std::size_t c = 0; c < channels_; ++c) {
    std::memmove(x_.data() + c * stride_, x_.data() + c * stride_ + base_,
                 bytes);
    std::memmove(x2_.data() + c * stride_, x2_.data() + c * stride_ + base_,
                 bytes);
    std::memmove(v_.data() + c * stride_, v_.data() + c * stride_ + base_,
                 bytes);
  }
  base_ = 0;
}

void PackedContext::pack_column(const ContextTrajectory& t, std::size_t index) {
  const std::size_t col = base_ + index;
  const PowerVector& pv = t.power(index);
  const std::size_t width = pv.channels();
  for (std::size_t c = 0; c < channels_; ++c) {
    float val = 0.0f;
    float sq = 0.0f;
    float mask = 0.0f;
    if (c < width && pv.usable(c)) {
      val = pv.at(c) + kPackShiftDbm;
      sq = val * val;
      mask = 1.0f;
    }
    x_[c * stride_ + col] = val;
    x2_[c * stride_ + col] = sq;
    v_[c * stride_ + col] = mask;
  }
}

SubsetPack::SubsetPack(const ContextTrajectory& t,
                       std::span<const std::size_t> channels, std::size_t from,
                       std::size_t len)
    : metres_(len), k_(channels.size()) {
  x_.assign(k_ * len, 0.0f);
  x2_.assign(k_ * len, 0.0f);
  v_.assign(k_ * len, 0.0f);
  const std::size_t width = t.channels();
  for (std::size_t i = 0; i < len; ++i) {
    const PowerVector& pv = t.power(from + i);
    for (std::size_t kk = 0; kk < k_; ++kk) {
      const std::size_t c = channels[kk];
      if (c < width && pv.usable(c)) {
        const float val = pv.at(c) + kPackShiftDbm;
        x_[kk * len + i] = val;
        x2_[kk * len + i] = val * val;
        v_[kk * len + i] = 1.0f;
      }
    }
  }
}

double packed_correlation(const PackedView& fixed, std::size_t fixed_start,
                          const PackedView& sliding, std::size_t pos,
                          std::size_t window,
                          const TrajectoryCorrelationConfig& config) {
  const std::size_t w = window;
  double channel_corr_sum = 0.0;
  std::size_t channels_used = 0;
  double pn = 0, psx = 0, psy = 0, psxx = 0, psyy = 0, psxy = 0;

  const std::size_t k = std::min(fixed.rows.size(), sliding.rows.size());
  for (std::size_t kk = 0; kk < k; ++kk) {
    const std::size_t fc = fixed.rows[kk];
    const std::size_t sc = sliding.rows[kk];
    // A channel outside either pack contributes nothing (an all-masked row
    // would be skipped by min_channel_overlap below anyway).
    if (fc >= fixed.span.channels || sc >= sliding.span.channels) continue;
    const float* fx = fixed.span.x + fc * fixed.span.stride + fixed_start;
    const float* fx2 = fixed.span.x2 + fc * fixed.span.stride + fixed_start;
    const float* fv = fixed.span.v + fc * fixed.span.stride + fixed_start;
    const float* sx_ = sliding.span.x + sc * sliding.span.stride + pos;
    const float* sx2_ = sliding.span.x2 + sc * sliding.span.stride + pos;
    const float* sv_ = sliding.span.v + sc * sliding.span.stride + pos;

    float n = 0, sx = 0, sy = 0, sxx = 0, syy = 0, sxy = 0;
    for (std::size_t i = 0; i < w; ++i) {
      const float m = fv[i] * sv_[i];
      n += m;
      sx += m * fx[i];
      sy += m * sx_[i];
      sxx += m * fx2[i];
      syy += m * sx2_[i];
      sxy += m * fx[i] * sx_[i];
    }
    if (n < static_cast<float>(config.min_channel_overlap)) continue;
    const double dn = n;
    const double vx =
        static_cast<double>(sxx) - static_cast<double>(sx) * sx / dn;
    const double vy =
        static_cast<double>(syy) - static_cast<double>(sy) * sy / dn;
    const double cov =
        static_cast<double>(sxy) - static_cast<double>(sx) * sy / dn;
    // Variance guard: a (near-)constant channel carries no alignment
    // information, and float residues below ~1e-2 dB^2 are pure rounding
    // noise — count the channel with zero correlation.
    if (vx > 1e-2 && vy > 1e-2) {
      channel_corr_sum += std::clamp(cov / std::sqrt(vx * vy), -1.0, 1.0);
    }
    ++channels_used;
    const double ma = sx / dn;
    const double mb = sy / dn;
    pn += 1.0;
    psx += ma;
    psy += mb;
    psxx += ma * ma;
    psyy += mb * mb;
    psxy += ma * mb;
  }

  if (channels_used < config.min_channels) return -2.0;
  double profile_corr = 0.0;
  if (pn >= 2.0) {
    const double vx = psxx - psx * psx / pn;
    const double vy = psyy - psy * psy / pn;
    const double cov = psxy - psx * psy / pn;
    if (vx > 0.0 && vy > 0.0) profile_corr = cov / std::sqrt(vx * vy);
  }
  return channel_corr_sum / static_cast<double>(channels_used) + profile_corr;
}

}  // namespace rups::core
