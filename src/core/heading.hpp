#pragma once

#include "util/vec3.hpp"

namespace rups::core {

/// Heading from a vehicle-frame magnetometer reading (paper Sec. IV-B):
/// the angle between the vehicle's y-axis (forward) and magnetic north,
/// expressed in the world convention used throughout (0 = +x east, CCW
/// positive). Pure function; see HeadingEstimator for the filtered version.
[[nodiscard]] double heading_from_mag(const util::Vec3& mag_vehicle) noexcept;

/// Complementary filter fusing gyro yaw-rate integration (smooth,
/// drifting) with magnetometer headings (absolute, noisy).
class HeadingEstimator {
 public:
  /// @param mag_gain  per-second correction gain toward the mag heading
  explicit HeadingEstimator(double mag_gain = 0.5) noexcept;

  /// Advance by dt with the vehicle-frame yaw rate; optionally correct with
  /// a vehicle-frame magnetometer reading.
  void update(double gyro_z_rps, double dt,
              const util::Vec3* mag_vehicle = nullptr) noexcept;

  [[nodiscard]] double heading_rad() const noexcept { return heading_; }
  [[nodiscard]] bool initialized() const noexcept { return initialized_; }

 private:
  double mag_gain_;
  double heading_ = 0.0;
  bool initialized_ = false;
};

}  // namespace rups::core
