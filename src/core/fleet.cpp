#include "core/fleet.hpp"

#include <chrono>
#include <stdexcept>

#include "obs/alloc.hpp"
#include "obs/metrics.hpp"
#include "obs/timer.hpp"

namespace rups::core {

namespace {

struct FleetMetrics {
  obs::Counter& batches = obs::Registry::global().counter("fleet.batches");
  obs::Counter& queries = obs::Registry::global().counter("fleet.queries");
  obs::Counter& pooled_batches =
      obs::Registry::global().counter("fleet.pooled_batches");
  obs::Gauge& neighbours = obs::Registry::global().gauge("fleet.neighbours");
  obs::Gauge& hit_rate =
      obs::Registry::global().gauge("fleet.cache_hit_rate");
  obs::Histogram& batch_us =
      obs::Registry::global().histogram("fleet.batch_us");
  obs::Histogram& task_us =
      obs::Registry::global().histogram("fleet.task_us");
  /// Per-neighbour task latency and hit/miss split: the per-entity axes
  /// the streaming/service-scale gates are measured on.
  obs::HistogramFamily& task_by_neighbour =
      obs::Registry::global().histogram_family("fleet.task_us", "neighbour");
  obs::CounterFamily& outcomes =
      obs::Registry::global().counter_family("fleet.query_outcome", "outcome");
  /// operator new calls per fleet task on the worker thread — the per-task
  /// axis of the ROADMAP zero-alloc steady-state target (steady_alloc_gate
  /// ratchets the campaign-level census; this histogram localises creep).
  obs::Histogram& task_allocs =
      obs::Registry::global().histogram("fleet.task_allocs");
};

FleetMetrics& fleet_metrics() {
  static FleetMetrics m;
  return m;
}

}  // namespace

FleetEngine::FleetEngine(FleetConfig config) : config_(config) {
  config_.cache.enabled = config_.use_cache;
}

void FleetEngine::forget(std::uint64_t id) { shards_.erase(id); }

void FleetEngine::clear() {
  shards_.clear();
  ego_pack_.clear();
  ego_qpack_.clear();
}

SynCache::Stats FleetEngine::cache_stats() const noexcept {
  SynCache::Stats total;
  for (const auto& [id, shard] : shards_) {
    const SynCache::Stats& s = shard->stats();
    total.queries += s.queries;
    total.tracking_hits += s.tracking_hits;
    total.tracking_misses += s.tracking_misses;
    total.full_searches += s.full_searches;
    total.invalidations += s.invalidations;
  }
  return total;
}

std::vector<FleetEngine::NeighbourResult> FleetEngine::estimate_batch(
    const ContextTrajectory& ego,
    std::span<const ContextTrajectory* const> neighbours,
    std::span<const std::uint64_t> ids, util::ThreadPool* pool) {
  std::vector<NeighbourResult> results;
  estimate_batch_into(ego, neighbours, ids, pool, results);
  return results;
}

void FleetEngine::estimate_batch_into(
    const ContextTrajectory& ego,
    std::span<const ContextTrajectory* const> neighbours,
    std::span<const std::uint64_t> ids, util::ThreadPool* pool,
    std::vector<NeighbourResult>& results) {
  if (neighbours.size() != ids.size()) {
    throw std::invalid_argument("FleetEngine: neighbours/ids size mismatch");
  }
  FleetMetrics& m = fleet_metrics();
  m.batches.inc();
  m.queries.inc(neighbours.size());
  m.neighbours.set(static_cast<double>(neighbours.size()));
  obs::ObsTimer timer(&m.batch_us, "fleet.batch");

  // The ego pack is synced once, single-threaded, then read-only for the
  // whole batch; per-id shards are materialized up front because the map
  // must not be mutated from worker threads.
  ego_pack_.sync(ego, config_.cache.volatile_suffix_m);
  const KernelPrecision prec = config_.rups.syn.precision;
  const QuantizedPack* ego_q = nullptr;
  if (prec != KernelPrecision::kFloat32) {
    ego_qpack_.sync(ego_pack_,
                    prec == KernelPrecision::kInt8 ? QuantBits::kInt8
                                                   : QuantBits::kInt16,
                    config_.cache.volatile_suffix_m);
    ego_q = &ego_qpack_;
  }
  for (std::size_t i = 0; i < ids.size(); ++i) {
    auto [it, inserted] = shards_.try_emplace(ids[i]);
    if (inserted) {
      it->second =
          std::make_unique<SynCache>(config_.rups.syn, config_.cache);
    }
  }
  // Duplicate ids would race two workers on one shard — reject them.
  for (std::size_t i = 0; i < ids.size(); ++i) {
    for (std::size_t j = i + 1; j < ids.size(); ++j) {
      if (ids[i] == ids[j]) {
        throw std::invalid_argument("FleetEngine: duplicate neighbour id");
      }
    }
  }

  // Captured on the dispatching thread: per-neighbour task spans parent to
  // the batch span even when they run on pool workers, and the hop is
  // emitted as a trace flow arrow.
  const obs::SpanContext batch_span = obs::current_span();

  results.resize(neighbours.size());
  const bool count_allocs = obs::alloc_accounting_available();
  const auto query_one = [&](std::size_t i) {
    const auto t0 = std::chrono::steady_clock::now();
    const obs::AllocTotals allocs_before = obs::thread_alloc_totals();
    obs::ObsTimer task_timer(&m.task_us, "fleet.task", batch_span);
    SynCache& shard = *shards_.find(ids[i])->second;
    NeighbourResult& r = results[i];
    shard.find_into(ego, *neighbours[i], &ego_pack_, ego_q, r.syn_points);
    r.estimate = aggregate_estimates(ego, *neighbours[i], r.syn_points,
                                     config_.rups.aggregation);
    task_timer.stop();
    if (count_allocs) {
      m.task_allocs.record(static_cast<double>(
          (obs::thread_alloc_totals() - allocs_before).count));
    }
    r.latency_us = std::chrono::duration<double, std::micro>(
                       std::chrono::steady_clock::now() - t0)
                       .count();
    if (config_.per_neighbour_latency) {
      m.task_by_neighbour.with(ids[i]).record(r.latency_us);
    }
    m.outcomes.with(r.estimate.has_value() ? "hit" : "miss").inc();
  };

  if (pool != nullptr && neighbours.size() > 1) {
    m.pooled_batches.inc();
    pool->parallel_for(0, neighbours.size(), query_one);
  } else {
    for (std::size_t i = 0; i < neighbours.size(); ++i) query_one(i);
  }

  const SynCache::Stats stats = cache_stats();
  const std::uint64_t resolved =
      stats.tracking_hits + stats.tracking_misses + stats.full_searches;
  if (resolved > 0) {
    m.hit_rate.set(static_cast<double>(stats.tracking_hits) /
                   static_cast<double>(resolved));
  }
}

}  // namespace rups::core
