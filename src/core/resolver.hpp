#pragma once

#include <optional>
#include <vector>

#include "core/syn_seeker.hpp"
#include "core/types.hpp"

namespace rups::core {

/// A resolved front–rear distance between the local vehicle (A) and a
/// neighbour (B). Positive = A is in front of B by that many metres.
struct RelativeDistanceEstimate {
  double distance_m = 0.0;
  /// Best eq.(2) correlation among the SYN points that contributed.
  double confidence = -2.0;
  /// Number of SYN points aggregated into the value.
  std::size_t syn_count = 0;
};

/// How multiple per-SYN estimates are combined (paper Sec. VI-C, Fig 10).
enum class Aggregation {
  kSingleBest,     ///< original RUPS: the highest-correlation SYN only
  kMean,           ///< simple average of all estimates
  kSelectiveMean,  ///< drop min & max, average the rest (paper's best)
  kMedian,
};

/// Distance implied by one SYN point: each vehicle's travel since the SYN
/// location (window end), differenced (paper Sec. IV-E, Fig 8):
///   d_r = d1 - d2,  d1 = dist(current_a) - dist(syn on a), likewise d2.
[[nodiscard]] double resolve_distance(const ContextTrajectory& a,
                                      const ContextTrajectory& b,
                                      const SynPoint& syn);

/// Combine the per-SYN estimates under an aggregation scheme. Returns
/// nullopt when `syns` is empty.
[[nodiscard]] std::optional<RelativeDistanceEstimate> aggregate_estimates(
    const ContextTrajectory& a, const ContextTrajectory& b,
    const std::vector<SynPoint>& syns, Aggregation scheme);

}  // namespace rups::core
