#include "core/syn_cache.hpp"

#include <algorithm>

#include "obs/metrics.hpp"
#include "obs/recorder.hpp"
#include "obs/timer.hpp"

namespace rups::core {

namespace {

/// Cache-effectiveness accounting: hit rate = tracking_hits /
/// (tracking_hits + tracking_misses + full_searches); the track_us/full_us
/// histograms expose the tracking-vs-full cost split.
struct CacheMetrics {
  obs::Counter& queries = obs::Registry::global().counter("syncache.queries");
  obs::Counter& hits =
      obs::Registry::global().counter("syncache.tracking_hits");
  obs::Counter& misses =
      obs::Registry::global().counter("syncache.tracking_misses");
  obs::Counter& full =
      obs::Registry::global().counter("syncache.full_searches");
  obs::Counter& invalidations =
      obs::Registry::global().counter("syncache.invalidations");
  obs::Histogram& track_us =
      obs::Registry::global().histogram("syncache.track_us");
  obs::Histogram& full_us =
      obs::Registry::global().histogram("syncache.full_us");
  /// How each point got resolved: "track_hit", "track_miss" (fell back to
  /// a full seek) or "full" (cold / tracking disabled).
  obs::CounterFamily& resolution = obs::Registry::global().counter_family(
      "syncache.resolution", "outcome");
};

CacheMetrics& cache_metrics() {
  static CacheMetrics m;
  return m;
}

}  // namespace

SynCache::SynCache(SynConfig syn, SynCacheConfig config)
    : config_(config), seeker_(syn) {}

void SynCache::invalidate() noexcept {
  if (locked_) {
    ++stats_.invalidations;
    cache_metrics().invalidations.inc();
  }
  locked_ = false;
}

SynCache::TrackOutcome SynCache::verify_tracked(
    const ContextTrajectory& local, const ContextTrajectory& neighbour,
    std::size_t recency_offset_m, const PackedSpan& local_span,
    const PackedSpan& neighbour_span, const QuantizedPack* local_q,
    const QuantizedPack* neighbour_q) {
  seeker_.plan_into(local, neighbour, recency_offset_m, plan_scratch_,
                    chan_scratch_);
  const SynSeeker::SeekPlan& p = plan_scratch_;
  if (p.reject != nullptr) {
    // The full search would reject identically before any sliding — the
    // offset is resolved (no SYN point) without falling back.
    return {true, std::nullopt};
  }

  // Band of slide positions around the locked alignment, on the same
  // stride grid the full search scans.
  const auto band = [&](std::int64_t pred_m, std::size_t slide_metres)
      -> std::pair<std::size_t, std::size_t> {
    if (slide_metres < p.window) return {0, 0};
    const auto stride =
        static_cast<std::int64_t>(std::max<std::size_t>(1,
            seeker_.config().stride_m));
    const auto max_pos = static_cast<std::int64_t>(
        (slide_metres - p.window) / static_cast<std::size_t>(stride));
    const auto r = static_cast<std::int64_t>(config_.verify_radius_m);
    const std::int64_t lo_m = pred_m - r;
    const std::int64_t hi_m = pred_m + r;
    if (hi_m < 0) return {0, 0};
    const std::int64_t lo =
        lo_m <= 0 ? 0 : (lo_m + stride - 1) / stride;  // ceil, lo_m > 0
    const std::int64_t hi = std::min(hi_m / stride, max_pos);
    if (lo > hi) return {0, 0};
    return {static_cast<std::size_t>(lo), static_cast<std::size_t>(hi) + 1};
  };

  const auto l_first = static_cast<std::int64_t>(local.first_metre());
  const auto n_first = static_cast<std::int64_t>(neighbour.first_metre());
  // Pass 1: where the local fixed window should land in the neighbour.
  const std::int64_t pred_b =
      l_first + static_cast<std::int64_t>(p.a_start) - lock_offset_m_ -
      n_first;
  // Pass 2: where the neighbour fixed window should land locally.
  const std::int64_t pred_a =
      n_first + static_cast<std::int64_t>(p.b_start) + lock_offset_m_ -
      l_first;

  // Same ScanPair shape as the full search's two passes, so the band scan
  // runs the exact kernel (and precision) a full seek would.
  const KernelPrecision prec = seeker_.config().precision;
  ScanPair pass1{prec,
                 {local_span, p.channels_a},
                 p.a_start,
                 {neighbour_span, p.channels_a},
                 {},
                 {},
                 {},
                 {}};
  ScanPair pass2{prec,
                 {neighbour_span, p.channels_b},
                 p.b_start,
                 {local_span, p.channels_b},
                 {},
                 {},
                 {},
                 {}};
  if (prec == KernelPrecision::kInt16) {
    pass1.qfixed16 = {local_q->span16(), p.channels_a};
    pass1.qsliding16 = {neighbour_q->span16(), p.channels_a};
    pass2.qfixed16 = {neighbour_q->span16(), p.channels_b};
    pass2.qsliding16 = {local_q->span16(), p.channels_b};
  } else if (prec == KernelPrecision::kInt8) {
    pass1.qfixed8 = {local_q->span8(), p.channels_a};
    pass1.qsliding8 = {neighbour_q->span8(), p.channels_a};
    pass2.qfixed8 = {neighbour_q->span8(), p.channels_b};
    pass2.qsliding8 = {local_q->span8(), p.channels_b};
  }

  SynSeeker::Candidate on_b;
  SynSeeker::Candidate on_a;
  if (const auto [lo, hi] = band(pred_b, neighbour_span.metres); lo < hi) {
    on_b = seeker_.best_over_positions(pass1, p.window, lo, hi);
  }
  if (const auto [lo, hi] = band(pred_a, local_span.metres); lo < hi) {
    on_a = seeker_.best_over_positions(pass2, p.window, lo, hi);
  }

  // Same accept/reject semantics as the full search: best position at or
  // above the (possibly adaptive) coherency threshold wins, pass 2 only on
  // strictly greater correlation.
  SynPoint best;
  bool found = false;
  if (on_b.valid && on_b.correlation >= p.threshold) {
    best = {p.a_start, on_b.position, p.window, on_b.correlation};
    found = true;
  }
  if (on_a.valid && on_a.correlation >= p.threshold &&
      (!found || on_a.correlation > best.correlation)) {
    best = {on_a.position, p.b_start, p.window, on_a.correlation};
    found = true;
  }
  if (!found) return {false, std::nullopt};  // miss -> full fallback
  return {true, best};
}

void SynCache::update_lock(const ContextTrajectory& local,
                           const ContextTrajectory& neighbour,
                           const std::vector<SynPoint>& syns) noexcept {
  if (!syns.empty()) {
    const SynPoint& s = syns.front();  // best correlation after the sort
    locked_ = true;
    lock_offset_m_ =
        static_cast<std::int64_t>(local.first_metre() + s.index_a) -
        static_cast<std::int64_t>(neighbour.first_metre() + s.index_b);
  } else if (locked_) {
    locked_ = false;
    ++stats_.invalidations;
    cache_metrics().invalidations.inc();
  }
}

std::vector<SynPoint> SynCache::find(const ContextTrajectory& local,
                                     const ContextTrajectory& neighbour,
                                     const PackedContext* local_pack,
                                     const QuantizedPack* local_qpack) {
  std::vector<SynPoint> out;
  find_into(local, neighbour, local_pack, local_qpack, out);
  return out;
}

void SynCache::find_into(const ContextTrajectory& local,
                         const ContextTrajectory& neighbour,
                         const PackedContext* local_pack,
                         const QuantizedPack* local_qpack,
                         std::vector<SynPoint>& out) {
  out.clear();
  CacheMetrics& m = cache_metrics();
  ++stats_.queries;
  m.queries.inc();
  const std::size_t points =
      std::max<std::size_t>(1, seeker_.config().syn_points);

  // Sync packs; a fresh caller-shared ego pack wins over our own copy.
  const PackedContext* lp = local_pack;
  if (lp == nullptr || !lp->in_sync_with(local)) {
    local_pack_.sync(local, config_.volatile_suffix_m);
    lp = &local_pack_;
  }
  neighbour_pack_.sync(neighbour, config_.volatile_suffix_m);

  // Quantized mirrors of whatever packs the scans will read. A fresh
  // caller-shared ego mirror (FleetEngine's, synced once per batch) wins
  // over our own copy, same rule as the float pack above.
  const KernelPrecision prec = seeker_.config().precision;
  const QuantizedPack* lq = nullptr;
  const QuantizedPack* nq = nullptr;
  if (prec != KernelPrecision::kFloat32) {
    const QuantBits bits = prec == KernelPrecision::kInt8 ? QuantBits::kInt8
                                                          : QuantBits::kInt16;
    if (local_qpack != nullptr && local_qpack->mirrors(*lp, bits)) {
      lq = local_qpack;
    } else {
      local_q_.sync(*lp, bits, config_.volatile_suffix_m);
      lq = &local_q_;
    }
    neighbour_q_.sync(neighbour_pack_, bits, config_.volatile_suffix_m);
    nq = &neighbour_q_;
  }

  if (!config_.enabled || !locked_) {
    // Cold (or tracking disabled): full multi-offset search through the
    // member scratch — same offsets, same arithmetic and the same sort as
    // SynSeeker::find, but a steady never-matching pair (out of radio
    // range) re-searches every round without heap allocation.
    obs::ObsTimer timer(&m.full_us, "syncache.full");
    stats_.full_searches += points;
    m.full.inc(points);
    m.resolution.with("full").inc(points);
    for (std::size_t k = 0; k < points; ++k) {
      const std::size_t offset = k * seeker_.config().syn_segment_spacing_m;
      const auto syn =
          seeker_.find_one(local, neighbour, offset, lp, &neighbour_pack_, lq,
                           nq, plan_scratch_, chan_scratch_);
      if (syn.has_value()) out.push_back(*syn);
    }
    std::sort(out.begin(), out.end(),
              [](const SynPoint& x, const SynPoint& y) {
                return x.correlation > y.correlation;
              });
    if (config_.enabled) update_lock(local, neighbour, out);
    return;
  }

  const PackedSpan local_span = lp->span();
  const PackedSpan neighbour_span = neighbour_pack_.span();
  obs::FlightRecorder& recorder = obs::FlightRecorder::global();
  for (std::size_t k = 0; k < points; ++k) {
    const std::size_t offset = k * seeker_.config().syn_segment_spacing_m;
    TrackOutcome outcome;
    {
      obs::ObsTimer timer(&m.track_us, "syncache.track");
      outcome = verify_tracked(local, neighbour, offset, local_span,
                               neighbour_span, lq, nq);
    }
    if (outcome.resolved) {
      ++stats_.tracking_hits;
      m.hits.inc();
      m.resolution.with("track_hit").inc();
      if (outcome.syn.has_value()) {
        recorder.record(obs::EventType::kTrackVerified, "syncache.track",
                        outcome.syn->correlation, static_cast<double>(offset),
                        static_cast<double>(outcome.syn->window_m));
        out.push_back(*outcome.syn);
      }
      continue;
    }
    ++stats_.tracking_misses;
    m.misses.inc();
    m.resolution.with("track_miss").inc();
    recorder.record(obs::EventType::kTrackLost, "syncache.lost", 0.0,
                    static_cast<double>(offset));
    ++stats_.full_searches;
    m.full.inc();
    obs::ObsTimer timer(&m.full_us, "syncache.full");
    const auto syn = seeker_.find_one(local, neighbour, offset, lp,
                                      &neighbour_pack_, lq, nq, plan_scratch_,
                                      chan_scratch_);
    if (syn.has_value()) out.push_back(*syn);
  }
  std::sort(out.begin(), out.end(), [](const SynPoint& x, const SynPoint& y) {
    return x.correlation > y.correlation;
  });
  update_lock(local, neighbour, out);
}

}  // namespace rups::core
