#include "core/engine.hpp"

#include "obs/metrics.hpp"
#include "obs/recorder.hpp"
#include "obs/timer.hpp"

namespace rups::core {

namespace {

/// Front-end ingest and query-path accounting (paper Sec. V-A argues the
/// perception overhead is negligible; these counters let benches verify).
struct EngineMetrics {
  obs::Counter& imu_samples =
      obs::Registry::global().counter("engine.imu_samples");
  obs::Counter& speed_samples =
      obs::Registry::global().counter("engine.speed_samples");
  obs::Counter& rssi_measurements =
      obs::Registry::global().counter("engine.rssi_measurements");
  obs::Counter& metres_emitted =
      obs::Registry::global().counter("engine.metres_emitted");
  obs::Counter& queries = obs::Registry::global().counter("engine.queries");
  obs::Histogram& estimate_us =
      obs::Registry::global().histogram("engine.estimate_us");
};

EngineMetrics& engine_metrics() {
  static EngineMetrics m;
  return m;
}

}  // namespace

RupsEngine::RupsEngine(RupsConfig config)
    : config_(config),
      reorientation_(config.reorientation),
      heading_(config.heading_mag_gain),
      binder_(config.channels, config.binder),
      context_(config.channels, config.context_capacity_m) {}

void RupsEngine::on_imu(const sensors::ImuSample& imu) {
  engine_metrics().imu_samples.inc();
  double dt = 0.0;
  if (have_imu_time_) {
    dt = imu.time_s - last_imu_time_;
    if (dt < 0.0) dt = 0.0;
  }
  last_imu_time_ = imu.time_s;
  have_imu_time_ = true;

  if (!config_.assume_aligned_sensors) {
    reorientation_.add_sample(imu, speed_.trend());
    if (!reorientation_.calibrated()) return;
  }
  const util::Mat3 r = config_.assume_aligned_sensors
                           ? util::Mat3::identity()
                           : reorientation_.rotation();
  const util::Vec3 gyro_vehicle = r * imu.gyro_rps;
  const util::Vec3 mag_vehicle = r * imu.mag_ut;
  heading_.update(gyro_vehicle.z, dt, &mag_vehicle);
  if (!heading_.initialized()) return;

  const double speed = speed_.speed_at(imu.time_s);
  const auto marks =
      reckoner_.advance(imu.time_s, heading_.heading_rad(), speed);
  if (!marks.empty()) engine_metrics().metres_emitted.inc(marks.size());
  for (const GeoSample& geo : marks) {
    binder_.bind_metre(next_metre_++, geo, context_);
  }
}

void RupsEngine::on_speed(const sensors::SpeedSample& sample) {
  engine_metrics().speed_samples.inc();
  speed_.add_sample(sample);
}

void RupsEngine::on_rssi(const sensors::RssiMeasurement& measurement) {
  engine_metrics().rssi_measurements.inc();
  const double distance = reckoner_.odometer_at(measurement.time_s);
  binder_.add_measurement(measurement.channel_index, distance,
                          static_cast<float>(measurement.rssi_dbm), context_);
}

std::vector<SynPoint> RupsEngine::find_syn_points(
    const ContextTrajectory& neighbour, util::ThreadPool* pool) const {
  const SynSeeker seeker(config_.syn, pool);
  // The local pack only changes by the metres driven since the last query;
  // sync extends it incrementally instead of re-extracting per query.
  context_pack_.sync(context_);
  return seeker.find(context_, neighbour, &context_pack_, nullptr);
}

std::optional<RelativeDistanceEstimate> RupsEngine::estimate_distance(
    const ContextTrajectory& neighbour, util::ThreadPool* pool) const {
  engine_metrics().queries.inc();
  obs::ObsTimer timer(&engine_metrics().estimate_us, "engine.estimate");
  const auto syns = find_syn_points(neighbour, pool);
  auto estimate =
      aggregate_estimates(context_, neighbour, syns, config_.aggregation);
  if (estimate.has_value()) {
    obs::FlightRecorder::global().record(
        obs::EventType::kEstimateEmitted, "engine.estimate",
        estimate->distance_m, estimate->confidence,
        static_cast<double>(syns.size()));
  } else {
    obs::FlightRecorder::global().record(obs::EventType::kEstimateMissing,
                                         "engine.estimate", 0.0, 0.0,
                                         static_cast<double>(syns.size()));
  }
  return estimate;
}

}  // namespace rups::core
