#pragma once

#include <cstdint>

#include "core/types.hpp"

namespace rups::core {

/// Detects turns onto new road segments from the per-metre heading stream
/// (paper Sec. V-C: after a turn the vehicle has "insufficient context
/// about the newly-entered road segment", so the SYN search should use the
/// adaptive short window until enough post-turn context accumulates).
///
/// A turn is a cumulative heading change above `turn_threshold_rad` within
/// a `turn_window_m` stretch of travel. The detector exposes the distance
/// travelled since the last turn — the amount of context that actually
/// belongs to the current road segment.
class TurnDetector {
 public:
  struct Config {
    double turn_threshold_rad = 0.6;  ///< ~35 degrees
    std::size_t turn_window_m = 15;   ///< stretch the change accumulates over
  };

  TurnDetector();
  explicit TurnDetector(Config config);

  /// Feed the heading of the next metre mark.
  void on_metre(double heading_rad);

  /// Metres travelled since the most recent detected turn (equals total
  /// metres fed if no turn was ever detected).
  [[nodiscard]] std::uint64_t metres_since_turn() const noexcept {
    return metres_since_turn_;
  }

  /// Total turns detected.
  [[nodiscard]] std::size_t turn_count() const noexcept { return turns_; }

  /// Convenience: scan an existing trajectory's most recent metres and
  /// report how much tail context is post-turn (bounded by traj size).
  [[nodiscard]] static std::uint64_t straight_tail_metres(
      const ContextTrajectory& trajectory);
  [[nodiscard]] static std::uint64_t straight_tail_metres(
      const ContextTrajectory& trajectory, Config config);

 private:
  Config config_;
  std::vector<double> recent_;  ///< ring of last turn_window_m headings
  std::size_t next_ = 0;
  bool full_ = false;
  std::uint64_t metres_since_turn_ = 0;
  std::size_t turns_ = 0;
};

}  // namespace rups::core
