#include "core/reorientation.hpp"

#include <cmath>

namespace rups::core {

Reorientation::Reorientation() : Reorientation(Config{}) {}

Reorientation::Reorientation(Config config) : config_(config) {}

void Reorientation::add_sample(const sensors::ImuSample& imu,
                               int speed_trend) {
  // Gravity low-pass over quasi-static samples only: when the specific
  // force magnitude is ~g the vehicle is neither accelerating nor braking
  // hard, so the reading is (almost) pure gravity reaction. Without the
  // gate, longitudinal acceleration tilts the estimate systematically.
  constexpr double kG = 9.80665;
  const bool quasi_static =
      std::abs(imu.accel_mps2.norm() - kG) < config_.gravity_gate_mps2;
  if (quasi_static) {
    if (!gravity_init_) {
      gravity_lp_ = imu.accel_mps2;
      gravity_init_ = true;
    } else {
      gravity_lp_ = gravity_lp_ * (1.0 - config_.gravity_alpha) +
                    imu.accel_mps2 * config_.gravity_alpha;
    }
  }
  if (!gravity_init_) return;

  if (speed_trend == 0) return;
  if (imu.gyro_rps.norm() > config_.max_turn_rate_rps) return;

  // Horizontal (gravity-orthogonal) component of the instantaneous
  // specific force.
  const util::Vec3 g_dir = gravity_lp_.normalized();
  if (g_dir.norm() < 0.5) return;
  const util::Vec3 linear = imu.accel_mps2 - gravity_lp_;
  const util::Vec3 horizontal = linear - g_dir * linear.dot(g_dir);
  if (horizontal.norm() < config_.event_threshold_mps2) return;

  // During acceleration the specific force points forward (+y vehicle);
  // during braking it points backward — flip by the trend sign.
  forward_acc_ +=
      horizontal.normalized() * (speed_trend > 0 ? 1.0 : -1.0);
  ++events_;
}

bool Reorientation::calibrated() const noexcept {
  return events_ >= config_.min_events && forward_acc_.norm() > 1e-6;
}

util::Vec3 Reorientation::gravity_sensor() const noexcept {
  return gravity_lp_.normalized();
}

util::Mat3 Reorientation::rotation() const {
  if (!calibrated()) return util::Mat3::identity();
  const util::Vec3 z0 = gravity_lp_.normalized();
  // Project the forward vote onto the horizontal plane and normalize.
  util::Vec3 y = forward_acc_ - z0 * forward_acc_.dot(z0);
  y = y.normalized();
  const util::Vec3 x = y.cross(z0).normalized();
  // Slope recalibration (paper: z = x cross y).
  const util::Vec3 z = x.cross(y).normalized();
  return util::Mat3::from_rows(x, y, z);
}

}  // namespace rups::core
