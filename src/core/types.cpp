#include "core/types.hpp"

#include <stdexcept>

namespace rups::core {

PowerVector::PowerVector(std::size_t channels)
    : rssi_(channels, 0.0f),
      state_(channels, static_cast<std::uint8_t>(ChannelState::kMissing)) {}

void PowerVector::set(std::size_t channel, float dbm, ChannelState state) {
  if (channel >= rssi_.size()) throw std::out_of_range("PowerVector::set");
  rssi_[channel] = dbm;
  state_[channel] = static_cast<std::uint8_t>(state);
}

std::size_t PowerVector::usable_count() const noexcept {
  std::size_t n = 0;
  for (std::uint8_t s : state_) {
    if (s != static_cast<std::uint8_t>(ChannelState::kMissing)) ++n;
  }
  return n;
}

std::size_t PowerVector::measured_count() const noexcept {
  std::size_t n = 0;
  for (std::uint8_t s : state_) {
    if (s == static_cast<std::uint8_t>(ChannelState::kMeasured)) ++n;
  }
  return n;
}

double PowerVector::mean_usable() const noexcept {
  double sum = 0.0;
  std::size_t n = 0;
  for (std::size_t c = 0; c < rssi_.size(); ++c) {
    if (usable(c)) {
      sum += rssi_[c];
      ++n;
    }
  }
  return n ? sum / static_cast<double>(n) : 0.0;
}

ContextTrajectory::ContextTrajectory(std::size_t channels,
                                     std::size_t capacity_m)
    : channels_(channels), capacity_(capacity_m) {
  if (channels == 0 || capacity_m == 0) {
    throw std::invalid_argument("ContextTrajectory: zero channels/capacity");
  }
  geo_.reserve(capacity_m);
  power_.reserve(capacity_m);
}

void ContextTrajectory::append(GeoSample geo, PowerVector power) {
  if (power.channels() != channels_) {
    throw std::invalid_argument("ContextTrajectory::append: width mismatch");
  }
  if (geo_.size() == capacity_) {
    geo_.erase(geo_.begin());
    power_.erase(power_.begin());
    ++first_seq_;
  }
  geo_.push_back(geo);
  power_.push_back(std::move(power));
}

double ContextTrajectory::measured_fraction() const noexcept {
  if (empty()) return 0.0;
  std::size_t measured = 0;
  for (const auto& pv : power_) measured += pv.measured_count();
  return static_cast<double>(measured) /
         (static_cast<double>(size()) * static_cast<double>(channels_));
}

}  // namespace rups::core
