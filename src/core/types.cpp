#include "core/types.hpp"

#include <algorithm>
#include <stdexcept>

namespace rups::core {

PowerVector::PowerVector(std::size_t channels)
    : rssi_(channels, 0.0f),
      state_(channels, static_cast<std::uint8_t>(ChannelState::kMissing)) {}

void PowerVector::set(std::size_t channel, float dbm, ChannelState state) {
  if (channel >= rssi_.size()) throw std::out_of_range("PowerVector::set");
  rssi_[channel] = dbm;
  state_[channel] = static_cast<std::uint8_t>(state);
}

std::size_t PowerVector::usable_count() const noexcept {
  std::size_t n = 0;
  for (std::uint8_t s : state_) {
    if (s != static_cast<std::uint8_t>(ChannelState::kMissing)) ++n;
  }
  return n;
}

std::size_t PowerVector::measured_count() const noexcept {
  std::size_t n = 0;
  for (std::uint8_t s : state_) {
    if (s == static_cast<std::uint8_t>(ChannelState::kMeasured)) ++n;
  }
  return n;
}

void PowerVector::reset() noexcept {
  std::fill(rssi_.begin(), rssi_.end(), 0.0f);
  std::fill(state_.begin(), state_.end(),
            static_cast<std::uint8_t>(ChannelState::kMissing));
}

double PowerVector::mean_usable() const noexcept {
  double sum = 0.0;
  std::size_t n = 0;
  for (std::size_t c = 0; c < rssi_.size(); ++c) {
    if (usable(c)) {
      sum += rssi_[c];
      ++n;
    }
  }
  return n ? sum / static_cast<double>(n) : 0.0;
}

ContextTrajectory::ContextTrajectory(std::size_t channels,
                                     std::size_t capacity_m)
    : channels_(channels), capacity_(capacity_m) {
  if (channels == 0 || capacity_m == 0) {
    throw std::invalid_argument("ContextTrajectory: zero channels/capacity");
  }
  geo_.reserve(capacity_m);
  power_.reserve(capacity_m);
}

void ContextTrajectory::append(GeoSample geo, PowerVector power) {
  (void)append_evict(geo, std::move(power));
}

PowerVector ContextTrajectory::append_evict(GeoSample geo, PowerVector power) {
  if (power.channels() != channels_) {
    throw std::invalid_argument("ContextTrajectory::append: width mismatch");
  }
  PowerVector evicted;
  if (geo_.size() == capacity_) {
    evicted = std::move(power_.front());
    geo_.erase(geo_.begin());
    power_.erase(power_.begin());
    ++first_seq_;
  }
  geo_.push_back(geo);
  power_.push_back(std::move(power));
  return evicted;
}

bool ContextTrajectory::splice_tail(const ContextTrajectory& tail) {
  if (tail.channels() != channels_) return false;
  if (tail.empty()) return true;
  if (empty()) {
    // Adopt the tail wholesale. The retained window is the tail's newest
    // min(size, capacity) entries, so entry 0 sits at the tail's indexing
    // plus whatever the appends evicted. Computed absolutely — NOT by
    // adding to the previous first_seq_: an empty trajectory may still
    // carry a non-zero odometer base (rebase(), or a fully-evicted cache),
    // and accumulating on top of it would desynchronize every subsequent
    // metre index.
    for (std::size_t i = 0; i < tail.size(); ++i) {
      append(tail.geo(i), tail.power(i));
    }
    first_seq_ = tail.first_metre() + (tail.size() - size());
    return true;
  }
  const std::uint64_t next = first_seq_ + size();
  if (tail.first_metre() > next) return false;  // gap — cannot splice
  // Overlapping metres keep our copies, so a duplicate tail re-delivered
  // after channel reorder appends nothing: the loop below only touches
  // metres at or beyond `next`, in consecutive order.
  for (std::size_t i = 0; i < tail.size(); ++i) {
    const std::uint64_t metre = tail.first_metre() + i;
    if (metre < next) continue;  // overlap: keep our copy
    append(tail.geo(i), tail.power(i));
  }
  return true;
}

double ContextTrajectory::measured_fraction() const noexcept {
  if (empty()) return 0.0;
  std::size_t measured = 0;
  for (const auto& pv : power_) measured += pv.measured_count();
  return static_cast<double>(measured) /
         (static_cast<double>(size()) * static_cast<double>(channels_));
}

}  // namespace rups::core
