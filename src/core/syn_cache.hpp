#pragma once

// SYN caching (tracking mode). The paper re-runs the full double-sliding
// search for every query; between two queries a few seconds apart the
// matched alignment between two trajectories barely moves — both vehicles
// simply appended metres, so the locked (local − neighbour) odometer offset
// of the last accepted SYN point is an excellent predictor of where the
// next one lands. SynCache remembers that offset plus incrementally-packed
// correlation windows and, on the next query, re-verifies the correlation
// peak in a narrow band around the prediction. The re-verification uses
// the exact search plan (adaptive window, threshold, channel selection) and
// the exact kernel of the full search, so an accepted tracked SYN point is
// one the full search could also have produced, judged against the same
// coherency threshold (1.2 by default). Any miss — band empty, peak below
// threshold — falls back to the full SynSeeker search for that offset.
// Steady-state per-query cost drops from O(m·w·k) to O(radius·w·k).

#include <cstdint>
#include <optional>
#include <vector>

#include "core/packed.hpp"
#include "core/syn_seeker.hpp"

namespace rups::core {

struct SynCacheConfig {
  /// Half-width (in slide positions) of the re-verification band around the
  /// predicted alignment. Covers inter-query odometer drift; the existing
  /// NeighbourTracker uses the same 12 m figure.
  std::size_t verify_radius_m = 12;
  /// Trailing region of each pack re-packed every sync (binder retro-fill
  /// reach; see PackedContext).
  std::size_t volatile_suffix_m = PackedContext::kDefaultVolatileSuffixM;
  /// When false every query runs the full search (packs are still reused).
  bool enabled = true;
};

/// Per-neighbour SYN search cache. Not thread-safe: one instance serves one
/// (local, neighbour) pair from one thread at a time — FleetEngine shards
/// one SynCache per neighbour id.
class SynCache {
 public:
  struct Stats {
    std::uint64_t queries = 0;
    std::uint64_t tracking_hits = 0;    ///< offsets resolved by the band
    std::uint64_t tracking_misses = 0;  ///< band failed -> full fallback
    std::uint64_t full_searches = 0;    ///< full find_one runs (incl. cold)
    std::uint64_t invalidations = 0;    ///< lock dropped (query found no SYN)
  };

  explicit SynCache(SynConfig syn = {}, SynCacheConfig config = {});

  /// Drop-in equivalent of SynSeeker(syn).find(local, neighbour): up to
  /// syn_points SYN points, best-correlation first. `local_pack`, when
  /// supplied and in sync with `local`, is reused (FleetEngine shares one
  /// ego pack across all neighbour shards); otherwise the cache maintains
  /// its own. `local_qpack` is the analogous shared quantized mirror of
  /// `local_pack`, consulted only when syn.precision != kFloat32; when
  /// absent or stale the cache maintains its own quantized mirrors too.
  [[nodiscard]] std::vector<SynPoint> find(
      const ContextTrajectory& local, const ContextTrajectory& neighbour,
      const PackedContext* local_pack = nullptr,
      const QuantizedPack* local_qpack = nullptr);

  /// Scratch-reusing form of find(): writes the SYN points into `out`
  /// (cleared first, capacity retained). On the warm tracking path —
  /// every offset resolved by the band — this performs no dynamic
  /// allocation once the session's scratch vectors are warm; only the
  /// cold / fallback full searches allocate.
  void find_into(const ContextTrajectory& local,
                 const ContextTrajectory& neighbour,
                 const PackedContext* local_pack,
                 const QuantizedPack* local_qpack,
                 std::vector<SynPoint>& out);

  /// Tracking lock held from a previous accepted SYN point?
  [[nodiscard]] bool locked() const noexcept { return locked_; }
  /// Locked (local − neighbour) odometer-metre alignment offset.
  [[nodiscard]] std::int64_t lock_offset_m() const noexcept {
    return lock_offset_m_;
  }
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }
  [[nodiscard]] const SynCacheConfig& config() const noexcept {
    return config_;
  }
  [[nodiscard]] const SynConfig& syn_config() const noexcept {
    return seeker_.config();
  }

  /// Drop the tracking lock (the next query runs the full search).
  void invalidate() noexcept;

 private:
  struct TrackOutcome {
    bool resolved = false;  ///< false = fall back to the full search
    std::optional<SynPoint> syn;
  };

  /// `local_q` / `neighbour_q` are quantized mirrors of the spans (null at
  /// kFloat32): the band re-verification then runs the same quantized
  /// kernel as the full search, so precision cannot split the two paths.
  /// Non-const: plans through the member scratch (plan_scratch_ /
  /// chan_scratch_) so warm re-verification never heap-allocates.
  [[nodiscard]] TrackOutcome verify_tracked(const ContextTrajectory& local,
                                            const ContextTrajectory& neighbour,
                                            std::size_t recency_offset_m,
                                            const PackedSpan& local_span,
                                            const PackedSpan& neighbour_span,
                                            const QuantizedPack* local_q,
                                            const QuantizedPack* neighbour_q);

  void update_lock(const ContextTrajectory& local,
                   const ContextTrajectory& neighbour,
                   const std::vector<SynPoint>& syns) noexcept;

  SynCacheConfig config_;
  SynSeeker seeker_;
  PackedContext local_pack_;
  PackedContext neighbour_pack_;
  /// Quantized mirrors, synced only when syn.precision != kFloat32.
  QuantizedPack local_q_;
  QuantizedPack neighbour_q_;
  bool locked_ = false;
  std::int64_t lock_offset_m_ = 0;
  Stats stats_;
  /// Reusable planning workspace for the warm tracking path.
  SynSeeker::SeekPlan plan_scratch_;
  ChannelSelectScratch chan_scratch_;
};

}  // namespace rups::core
