#pragma once

#include <cstdint>
#include <optional>

#include "core/resolver.hpp"
#include "core/syn_seeker.hpp"
#include "core/types.hpp"

namespace rups::core {

/// Continuous relative-distance tracking of one neighbour (paper Sec. V-B:
/// "only transfer trajectory information after a SYN point has been
/// identified and transfer the complete journey context when the estimated
/// accumulative error is beyond a threshold").
///
/// After an initial full-context exchange locks the odometer OFFSET between
/// the two vehicles (their odometer frames are arbitrary but the SYN point
/// aligns them), subsequent high-rate estimates only need each side's
/// current odometer plus cheap tail updates of the neighbour's trajectory.
/// The tracker:
///   * splices incoming tail updates onto its cached neighbour context,
///   * re-verifies the lock with a NARROW window search around the
///     predicted offset (O(r*w*k), r = search radius, instead of the full
///     O(m*w*k) sweep),
///   * models odometry drift and requests a full re-exchange + full search
///     when the estimated accumulated error exceeds the threshold.
class NeighbourTracker {
 public:
  struct Config {
    SynConfig syn{};
    Aggregation aggregation = Aggregation::kSelectiveMean;
    /// Odometry drift model: accumulated error grows by this fraction of
    /// the distance both cars travel past the lock.
    double drift_per_metre = 0.01;
    /// Estimated accumulated error that triggers a full refresh (m).
    double refresh_threshold_m = 6.0;
    /// Half-width of the narrow re-verification search (m).
    std::size_t verify_radius_m = 12;
    /// Re-verify after this much local travel since the last verify (m).
    double verify_interval_m = 50.0;
    /// Number of SYN candidates required to agree at initialization; their
    /// implied offsets must fall within consensus_tolerance_m or the lock
    /// is refused (prevents confidently-wrong single-SYN locks).
    std::size_t init_syn_candidates = 3;
    double consensus_tolerance_m = 8.0;
    /// A re-verification that moves the offset by more than this is
    /// treated as ambiguity -> full refresh instead of a silent jump.
    double max_verify_jump_m = 6.0;
  };

  NeighbourTracker();
  explicit NeighbourTracker(Config config);

  /// Seed the tracker with a full neighbour context; runs the full SYN
  /// search. Returns false if no SYN point clears the threshold.
  bool initialize(const ContextTrajectory& local,
                  const ContextTrajectory& neighbour_full);

  /// Splice a tail update (metres at/after the cached end) onto the cached
  /// neighbour context. Returns false on a gap (a full refresh is needed).
  bool ingest_tail(const ContextTrajectory& tail);

  /// Current estimate from the locked offset (cheap; no search).
  [[nodiscard]] std::optional<RelativeDistanceEstimate> estimate(
      const ContextTrajectory& local) const;

  /// Maintenance step: narrow re-verification around the predicted offset
  /// when due; updates the lock and resets the drift model. Returns true if
  /// the lock is still healthy, false if a full refresh is required.
  bool maintain(const ContextTrajectory& local);

  /// True when drift exceeded the refresh threshold or the lock was lost.
  [[nodiscard]] bool needs_full_refresh() const noexcept {
    return needs_refresh_;
  }
  [[nodiscard]] bool locked() const noexcept { return locked_; }

  /// Estimated accumulated error of the current lock (m).
  [[nodiscard]] double estimated_drift_m() const noexcept {
    return drift_estimate_m_;
  }

  /// Neighbour metres cached so far.
  [[nodiscard]] const ContextTrajectory* neighbour() const noexcept {
    return neighbour_ ? &*neighbour_ : nullptr;
  }

 private:
  void lock_from_syn(const ContextTrajectory& local, const SynPoint& syn);

  Config config_;
  std::optional<ContextTrajectory> neighbour_;
  bool locked_ = false;
  bool needs_refresh_ = false;
  /// Locked alignment: local odometer metre - neighbour odometer metre at
  /// the SYN location.
  double offset_m_ = 0.0;
  double local_end_at_lock_m_ = 0.0;
  double local_end_at_verify_m_ = 0.0;
  double drift_estimate_m_ = 0.0;
  double lock_correlation_ = -2.0;
};

}  // namespace rups::core
