#include "core/heading.hpp"

#include <cmath>

#include "util/angle.hpp"

namespace rups::core {

double heading_from_mag(const util::Vec3& mag_vehicle) noexcept {
  // Inverse of the field projection (see sensors::ImuModel): with heading
  // theta (0 = +x east, CCW), the horizontal geomagnetic field (pointing
  // north, +y world) projects to m_x = -B_h cos(theta) on the vehicle's
  // right axis and m_y = B_h sin(theta) on the forward axis.
  return std::atan2(mag_vehicle.y, -mag_vehicle.x);
}

HeadingEstimator::HeadingEstimator(double mag_gain) noexcept
    : mag_gain_(mag_gain) {}

void HeadingEstimator::update(double gyro_z_rps, double dt,
                              const util::Vec3* mag_vehicle) noexcept {
  if (!initialized_) {
    if (mag_vehicle != nullptr) {
      heading_ = heading_from_mag(*mag_vehicle);
      initialized_ = true;
    }
    return;
  }
  heading_ = util::wrap_pi(heading_ + gyro_z_rps * dt);
  if (mag_vehicle != nullptr) {
    const double mag_heading = heading_from_mag(*mag_vehicle);
    const double err = util::angle_diff(mag_heading, heading_);
    heading_ = util::wrap_pi(heading_ + mag_gain_ * dt * err);
  }
}

}  // namespace rups::core
