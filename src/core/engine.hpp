#pragma once

#include <cstdint>
#include <optional>

#include "core/binder.hpp"
#include "core/dead_reckoner.hpp"
#include "core/heading.hpp"
#include "core/reorientation.hpp"
#include "core/resolver.hpp"
#include "core/speed.hpp"
#include "core/syn_seeker.hpp"
#include "core/types.hpp"
#include "sensors/types.hpp"
#include "util/thread_pool.hpp"

namespace rups::core {

/// End-to-end RUPS configuration. Defaults follow the paper's evaluation
/// setup: 1000 m journey context, 85 m x top-45-channel checking window,
/// coherency threshold 1.2, selective average over 5 SYN points.
struct RupsConfig {
  std::size_t channels = 115;
  std::size_t context_capacity_m = 1000;
  SynConfig syn{};
  TrajectoryBinder::Config binder{};
  Aggregation aggregation = Aggregation::kSelectiveMean;
  Reorientation::Config reorientation{};
  /// Complementary-filter gain of the heading estimator.
  double heading_mag_gain = 0.5;
  /// Skip sensor-to-vehicle reorientation and treat IMU samples as already
  /// vehicle-frame (pre-calibrated mounts, synthetic traces).
  bool assume_aligned_sensors = false;
};

/// The on-vehicle RUPS stack (paper Fig 5): consumes raw sensor streams,
/// maintains the vehicle's context-aware trajectory, and answers relative
/// distance queries against a neighbour's exchanged trajectory.
///
///   IMU 200 Hz ──> Reorientation ──> HeadingEstimator ─┐
///   OBD speed  ──> SpeedEstimator ───> DeadReckoner ───┴─> per-metre T^m
///   GSM dwells ──> TrajectoryBinder ───────────────────────> ST^m
///   neighbour ST^m ──> SynSeeker ──> resolve + aggregate ──> d_r
class RupsEngine {
 public:
  explicit RupsEngine(RupsConfig config = {});

  /// Feed one inertial sample (drives calibration, heading, and the
  /// per-metre trajectory emission).
  void on_imu(const sensors::ImuSample& imu);

  /// Feed one OBD speed report.
  void on_speed(const sensors::SpeedSample& sample);

  /// Feed one completed GSM dwell.
  void on_rssi(const sensors::RssiMeasurement& measurement);

  /// The local context-aware trajectory (what a neighbour would receive).
  [[nodiscard]] const ContextTrajectory& context() const noexcept {
    return context_;
  }

  /// Estimated odometer (m) of the dead reckoner.
  [[nodiscard]] double odometer_m() const noexcept {
    return reckoner_.odometer_m();
  }

  /// Sensor-to-vehicle reorientation converged (or bypassed)?
  [[nodiscard]] bool calibrated() const noexcept {
    return config_.assume_aligned_sensors || reorientation_.calibrated();
  }

  /// Current heading estimate (rad).
  [[nodiscard]] double heading_rad() const noexcept {
    return heading_.heading_rad();
  }

  /// Answer a relative-distance query against a neighbour's exchanged
  /// trajectory. Positive distance = this vehicle is in front. Nullopt when
  /// no SYN point clears the coherency threshold (unrelated vehicles).
  [[nodiscard]] std::optional<RelativeDistanceEstimate> estimate_distance(
      const ContextTrajectory& neighbour,
      util::ThreadPool* pool = nullptr) const;

  /// The SYN points themselves (diagnostics / experiments).
  [[nodiscard]] std::vector<SynPoint> find_syn_points(
      const ContextTrajectory& neighbour,
      util::ThreadPool* pool = nullptr) const;

  [[nodiscard]] const RupsConfig& config() const noexcept { return config_; }

 private:
  RupsConfig config_;
  Reorientation reorientation_;
  HeadingEstimator heading_;
  SpeedEstimator speed_;
  DeadReckoner reckoner_;
  TrajectoryBinder binder_;
  ContextTrajectory context_;
  /// Packed copy of context_, extended incrementally at query time instead
  /// of being rebuilt per query (mutable: packing is a cache, queries stay
  /// const).
  mutable PackedContext context_pack_;
  std::uint64_t next_metre_ = 0;
  double last_imu_time_ = 0.0;
  bool have_imu_time_ = false;
};

}  // namespace rups::core
