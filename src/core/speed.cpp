#include "core/speed.hpp"

#include <algorithm>

namespace rups::core {

void SpeedEstimator::add_sample(const sensors::SpeedSample& sample) noexcept {
  if (has_last_) {
    prev_ = last_;
    has_prev_ = true;
  }
  last_ = sample;
  has_last_ = true;
}

double SpeedEstimator::speed_at(double time_s) const noexcept {
  if (!has_last_) return 0.0;
  if (!has_prev_) return std::max(0.0, last_.speed_mps);
  const double dt = last_.time_s - prev_.time_s;
  if (dt <= 0.0) return std::max(0.0, last_.speed_mps);
  const double slope = (last_.speed_mps - prev_.speed_mps) / dt;
  // Linear inter/extrapolation, but cap extrapolation at one sample period
  // to avoid running away when OBD stalls.
  const double t = std::clamp(time_s, prev_.time_s, last_.time_s + dt);
  return std::max(0.0, last_.speed_mps + slope * (t - last_.time_s));
}

int SpeedEstimator::trend() const noexcept {
  if (!has_prev_) return 0;
  const double dv = last_.speed_mps - prev_.speed_mps;
  if (dv > 0.3) return 1;
  if (dv < -0.3) return -1;
  return 0;
}

double SpeedEstimator::integrate_distance(double from_s,
                                          double to_s) const noexcept {
  if (!has_last_ || to_s <= from_s) return 0.0;
  // Trapezoid on the estimated speed at the endpoints — adequate for the
  // short intervals (sensor tick) the engine integrates over.
  const double v0 = speed_at(from_s);
  const double v1 = speed_at(to_s);
  return 0.5 * (v0 + v1) * (to_s - from_s);
}

}  // namespace rups::core
