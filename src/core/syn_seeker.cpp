#include "core/syn_seeker.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <mutex>

#include "core/channel_select.hpp"
#include "core/turn_detector.hpp"
#include "obs/metrics.hpp"
#include "obs/recorder.hpp"
#include "obs/timer.hpp"

namespace rups::core {

namespace {

/// Sec. V-A / VI-E cost accounting for the SYN search. Handles resolve
/// once; increments happen in bulk per slide/seek, never per position, so
/// the packed kernel stays untouched.
struct SynMetrics {
  obs::Counter& seeks = obs::Registry::global().counter("syn.seeks");
  obs::Counter& windows =
      obs::Registry::global().counter("syn.windows_scanned");
  obs::Counter& accepted =
      obs::Registry::global().counter("syn.candidates_accepted");
  obs::Counter& rejected =
      obs::Registry::global().counter("syn.candidates_rejected");
  obs::Counter& coherency_pass =
      obs::Registry::global().counter("syn.coherency_pass");
  obs::Counter& coherency_fail =
      obs::Registry::global().counter("syn.coherency_fail");
  obs::Histogram& seek_us =
      obs::Registry::global().histogram("syn.seek_us");
};

SynMetrics& syn_metrics() {
  static SynMetrics m;
  return m;
}

/// Dense channel-major extraction of a trajectory stretch: values are
/// pre-masked (0 where unusable) and the mask is carried as 0/1 floats, so
/// the sliding correlation kernel below is branch-free and vectorizable.
/// This packed path is what makes the O(m*w*k) search run at the paper's
/// ~millisecond scale (Sec. V-A).
struct Packed {
  std::size_t metres = 0;
  std::size_t k = 0;
  std::vector<float> x;   // x[c*metres + i], masked
  std::vector<float> x2;  // squares, masked
  std::vector<float> v;   // validity 1/0
};

/// RSSI values are shifted by this at pack time so the float moment sums
/// below centre near zero — without it, sxx - sx^2/n cancels catastrophically
/// in single precision (values ~-90 dBm, windows of ~100 samples) and
/// near-constant channels produce garbage correlations.
constexpr float kPackShiftDbm = 80.0f;

Packed pack(const ContextTrajectory& t, std::span<const std::size_t> channels,
            std::size_t from, std::size_t len) {
  Packed p;
  p.metres = len;
  p.k = channels.size();
  p.x.assign(p.k * len, 0.0f);
  p.x2.assign(p.k * len, 0.0f);
  p.v.assign(p.k * len, 0.0f);
  const std::size_t width = t.channels();
  for (std::size_t i = 0; i < len; ++i) {
    const PowerVector& pv = t.power(from + i);
    for (std::size_t kk = 0; kk < p.k; ++kk) {
      const std::size_t c = channels[kk];
      if (c < width && pv.usable(c)) {
        const float val = pv.at(c) + kPackShiftDbm;
        p.x[kk * len + i] = val;
        p.x2[kk * len + i] = val * val;
        p.v[kk * len + i] = 1.0f;
      }
    }
  }
  return p;
}

/// eq.(2) between the (whole) fixed pack and the sliding pack's window
/// starting at `pos`. Identical semantics to trajectory_correlation().
double packed_correlation(const Packed& fixed, const Packed& sliding,
                          std::size_t pos,
                          const TrajectoryCorrelationConfig& config) {
  const std::size_t w = fixed.metres;
  double channel_corr_sum = 0.0;
  std::size_t channels_used = 0;
  double pn = 0, psx = 0, psy = 0, psxx = 0, psyy = 0, psxy = 0;

  for (std::size_t kk = 0; kk < fixed.k; ++kk) {
    const float* fx = &fixed.x[kk * w];
    const float* fx2 = &fixed.x2[kk * w];
    const float* fv = &fixed.v[kk * w];
    const float* sx_ = &sliding.x[kk * sliding.metres + pos];
    const float* sx2_ = &sliding.x2[kk * sliding.metres + pos];
    const float* sv_ = &sliding.v[kk * sliding.metres + pos];

    float n = 0, sx = 0, sy = 0, sxx = 0, syy = 0, sxy = 0;
    for (std::size_t i = 0; i < w; ++i) {
      const float m = fv[i] * sv_[i];
      n += m;
      sx += m * fx[i];
      sy += m * sx_[i];
      sxx += m * fx2[i];
      syy += m * sx2_[i];
      sxy += m * fx[i] * sx_[i];
    }
    if (n < static_cast<float>(config.min_channel_overlap)) continue;
    const double dn = n;
    const double vx = static_cast<double>(sxx) - static_cast<double>(sx) * sx / dn;
    const double vy = static_cast<double>(syy) - static_cast<double>(sy) * sy / dn;
    const double cov =
        static_cast<double>(sxy) - static_cast<double>(sx) * sy / dn;
    // Variance guard: a (near-)constant channel carries no alignment
    // information, and float residues below ~1e-2 dB^2 are pure rounding
    // noise — count the channel with zero correlation.
    if (vx > 1e-2 && vy > 1e-2) {
      channel_corr_sum += std::clamp(cov / std::sqrt(vx * vy), -1.0, 1.0);
    }
    ++channels_used;
    const double ma = sx / dn;
    const double mb = sy / dn;
    pn += 1.0;
    psx += ma;
    psy += mb;
    psxx += ma * ma;
    psyy += mb * mb;
    psxy += ma * mb;
  }

  if (channels_used < config.min_channels) return -2.0;
  double profile_corr = 0.0;
  if (pn >= 2.0) {
    const double vx = psxx - psx * psx / pn;
    const double vy = psyy - psy * psy / pn;
    const double cov = psxy - psx * psy / pn;
    if (vx > 0.0 && vy > 0.0) profile_corr = cov / std::sqrt(vx * vy);
  }
  return channel_corr_sum / static_cast<double>(channels_used) + profile_corr;
}

}  // namespace

SynSeeker::SynSeeker(SynConfig config, util::ThreadPool* pool) noexcept
    : config_(config), pool_(pool) {}

std::pair<std::size_t, double> SynSeeker::effective_window(
    std::size_t available_a, std::size_t available_b) const {
  const std::size_t avail = std::min(available_a, available_b);
  if (avail >= config_.window_m) {
    return {config_.window_m, config_.coherency_threshold};
  }
  if (!config_.adaptive_window || avail < config_.min_window_m) {
    return {0, config_.coherency_threshold};  // 0 = cannot search
  }
  // Linear threshold relaxation between min_window_m and window_m.
  const double t =
      static_cast<double>(avail - config_.min_window_m) /
      static_cast<double>(config_.window_m - config_.min_window_m);
  const double scale =
      config_.adaptive_threshold_floor +
      (1.0 - config_.adaptive_threshold_floor) * std::clamp(t, 0.0, 1.0);
  return {avail, config_.coherency_threshold * scale};
}

SynSeeker::Candidate SynSeeker::slide(
    const ContextTrajectory& fixed, std::size_t fixed_start,
    const ContextTrajectory& sliding, std::size_t window,
    std::span<const std::size_t> channels) const {
  Candidate best;
  if (sliding.size() < window) return best;
  const std::size_t positions = (sliding.size() - window) / config_.stride_m + 1;

  const Packed fixed_pack = pack(fixed, channels, fixed_start, window);
  const Packed sliding_pack = pack(sliding, channels, 0, sliding.size());

  auto eval = [&](std::size_t p) {
    return packed_correlation(fixed_pack, sliding_pack, p * config_.stride_m,
                              config_.correlation);
  };

  // Coarse-to-fine: scan every coarse_stride-th position, then refine the
  // neighbourhood of the best coarse hit exhaustively.
  if (config_.coarse_stride_m > 1 &&
      positions > 4 * config_.coarse_stride_m) {
    const std::size_t coarse = config_.coarse_stride_m;
    syn_metrics().windows.inc((positions + coarse - 1) / coarse);
    Candidate coarse_best;
    for (std::size_t p = 0; p < positions; p += coarse) {
      const double r = eval(p);
      if (!coarse_best.valid || r > coarse_best.correlation) {
        coarse_best = {r, p, true};  // position index, not metres
      }
    }
    if (!coarse_best.valid) return best;
    const std::size_t lo =
        coarse_best.position > coarse ? coarse_best.position - coarse : 0;
    const std::size_t hi = std::min(positions, coarse_best.position + coarse + 1);
    syn_metrics().windows.inc(hi - lo);
    for (std::size_t p = lo; p < hi; ++p) {
      const double r = eval(p);
      if (!best.valid || r > best.correlation) {
        best = {r, p * config_.stride_m, true};
      }
    }
    return best;
  }

  syn_metrics().windows.inc(positions);
  if (pool_ == nullptr || positions < 64) {
    for (std::size_t p = 0; p < positions; ++p) {
      const double r = eval(p);
      if (!best.valid || r > best.correlation) {
        best = {r, p * config_.stride_m, true};
      }
    }
    return best;
  }

  // Parallel: per-chunk maxima reduced deterministically (ties resolve to
  // the lowest position, matching the sequential scan).
  const std::size_t chunks = std::min<std::size_t>(pool_->size(), positions);
  std::vector<Candidate> chunk_best(chunks);
  const std::size_t chunk_len = (positions + chunks - 1) / chunks;
  pool_->parallel_for(0, chunks, [&](std::size_t ci) {
    const std::size_t lo = ci * chunk_len;
    const std::size_t hi = std::min(positions, lo + chunk_len);
    Candidate local;
    for (std::size_t p = lo; p < hi; ++p) {
      const double r = eval(p);
      if (!local.valid || r > local.correlation) {
        local = {r, p * config_.stride_m, true};
      }
    }
    chunk_best[ci] = local;
  });
  for (const Candidate& c : chunk_best) {
    if (!c.valid) continue;
    if (!best.valid || c.correlation > best.correlation ||
        (c.correlation == best.correlation && c.position < best.position)) {
      best = c;
    }
  }
  return best;
}

std::optional<SynPoint> SynSeeker::find_one(
    const ContextTrajectory& a, const ContextTrajectory& b,
    std::size_t recency_offset_m) const {
  SynMetrics& metrics = syn_metrics();
  metrics.seeks.inc();
  obs::ObsTimer timer(&metrics.seek_us, "syn.seek");
  obs::FlightRecorder& recorder = obs::FlightRecorder::global();
  recorder.record(obs::EventType::kSeekStarted, "syn.seek",
                  static_cast<double>(a.size()), static_cast<double>(b.size()),
                  static_cast<double>(recency_offset_m));
  if (a.empty() || b.empty()) {
    recorder.record(obs::EventType::kSeekRejected, "syn.empty");
    return std::nullopt;
  }
  if (a.size() <= recency_offset_m || b.size() <= recency_offset_m) {
    recorder.record(obs::EventType::kSeekRejected, "syn.recency_overflow");
    return std::nullopt;
  }
  // Post-turn limiting (Sec. V-C): the RECENT fixed segment must not span
  // a turn — the metres before it belong to a different road.
  std::size_t avail_a = a.size() - recency_offset_m;
  std::size_t avail_b = b.size() - recency_offset_m;
  if (config_.respect_turns) {
    const auto tail_a =
        static_cast<std::size_t>(TurnDetector::straight_tail_metres(a));
    const auto tail_b =
        static_cast<std::size_t>(TurnDetector::straight_tail_metres(b));
    if (tail_a <= recency_offset_m || tail_b <= recency_offset_m) {
      recorder.record(obs::EventType::kSeekRejected, "syn.turn_limited");
      return std::nullopt;
    }
    avail_a = std::min(avail_a, tail_a - recency_offset_m);
    avail_b = std::min(avail_b, tail_b - recency_offset_m);
  }
  const auto [window, threshold] = effective_window(avail_a, avail_b);
  if (window == 0) {
    recorder.record(obs::EventType::kSeekRejected, "syn.no_window", 0.0,
                    static_cast<double>(std::min(avail_a, avail_b)),
                    threshold);
    return std::nullopt;
  }

  const std::size_t a_start = a.size() - recency_offset_m - window;
  const std::size_t b_start = b.size() - recency_offset_m - window;

  // Channel selection from the fixed segments (top-k strongest).
  const auto channels_a =
      select_top_channels(a, a_start, window, config_.top_channels);
  const auto channels_b =
      select_top_channels(b, b_start, window, config_.top_channels);
  if (channels_a.empty() || channels_b.empty()) {
    recorder.record(obs::EventType::kSeekRejected, "syn.no_channels", 0.0,
                    static_cast<double>(window), threshold);
    return std::nullopt;
  }

  // Pass 1 (Fig 7 left): recent segment of A slides over B.
  const Candidate on_b = slide(a, a_start, b, window, channels_a);
  // Pass 2 (Fig 7 right): recent segment of B slides over A.
  const Candidate on_a = slide(b, b_start, a, window, channels_b);

  for (const Candidate& c : {on_b, on_a}) {
    if (!c.valid) continue;
    (c.correlation >= threshold ? metrics.accepted : metrics.rejected).inc();
  }

  SynPoint best;
  bool found = false;
  if (on_b.valid && on_b.correlation >= threshold) {
    best = {a_start, on_b.position, window, on_b.correlation};
    found = true;
  }
  if (on_a.valid && on_a.correlation >= threshold &&
      (!found || on_a.correlation > best.correlation)) {
    best = {on_a.position, b_start, window, on_a.correlation};
    found = true;
  }
  (found ? metrics.coherency_pass : metrics.coherency_fail).inc();
  if (!found) {
    const double best_corr = std::max(on_b.valid ? on_b.correlation : -2.0,
                                      on_a.valid ? on_a.correlation : -2.0);
    recorder.record(obs::EventType::kSeekRejected, "syn.below_threshold",
                    best_corr, static_cast<double>(window), threshold);
    return std::nullopt;
  }
  recorder.record(obs::EventType::kSeekAccepted, "syn.seek", best.correlation,
                  static_cast<double>(window), threshold);
  return best;
}

std::vector<SynPoint> SynSeeker::find(const ContextTrajectory& a,
                                      const ContextTrajectory& b) const {
  std::vector<SynPoint> out;
  for (std::size_t k = 0; k < std::max<std::size_t>(1, config_.syn_points);
       ++k) {
    const std::size_t offset = k * config_.syn_segment_spacing_m;
    const auto syn = find_one(a, b, offset);
    if (syn.has_value()) out.push_back(*syn);
  }
  std::sort(out.begin(), out.end(), [](const SynPoint& x, const SynPoint& y) {
    return x.correlation > y.correlation;
  });
  return out;
}

}  // namespace rups::core
