#include "core/syn_seeker.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <mutex>
#include <numeric>

#include "core/channel_select.hpp"
#include "core/turn_detector.hpp"
#include "obs/metrics.hpp"
#include "obs/recorder.hpp"
#include "obs/timer.hpp"

namespace rups::core {

namespace {

/// Sec. V-A / VI-E cost accounting for the SYN search. Handles resolve
/// once; increments happen in bulk per scan call, never per position, so
/// the packed kernel stays untouched.
struct SynMetrics {
  obs::Counter& seeks = obs::Registry::global().counter("syn.seeks");
  obs::Counter& windows =
      obs::Registry::global().counter("syn.windows_scanned");
  obs::Counter& kernel_blocks =
      obs::Registry::global().counter("syn.kernel_blocks");
  obs::Counter& accepted =
      obs::Registry::global().counter("syn.candidates_accepted");
  obs::Counter& rejected =
      obs::Registry::global().counter("syn.candidates_rejected");
  obs::Counter& coherency_pass =
      obs::Registry::global().counter("syn.coherency_pass");
  obs::Counter& coherency_fail =
      obs::Registry::global().counter("syn.coherency_fail");
  obs::Histogram& seek_us =
      obs::Registry::global().histogram("syn.seek_us");
  obs::Histogram& kernel_us =
      obs::Registry::global().histogram("syn.kernel_us");
  /// Per-outcome seek split: "accepted", "below_threshold", or the plan's
  /// reject reason literal.
  obs::CounterFamily& outcomes =
      obs::Registry::global().counter_family("syn.seek_outcome", "outcome");
};

SynMetrics& syn_metrics() {
  static SynMetrics m;
  return m;
}

/// Deterministic merge of per-chunk scan results: ties resolve to the
/// lowest position, matching what one ascending serial scan would return.
SynSeeker::Candidate reduce_chunks(
    const std::vector<SynSeeker::Candidate>& chunk_best) {
  SynSeeker::Candidate best;
  for (const SynSeeker::Candidate& c : chunk_best) {
    if (!c.valid) continue;
    if (!best.valid || c.correlation > best.correlation ||
        (c.correlation == best.correlation && c.position < best.position)) {
      best = c;
    }
  }
  return best;
}

}  // namespace

SynSeeker::SynSeeker(SynConfig config, util::ThreadPool* pool)
    : config_(config),
      pool_(pool),
      identity_rows_(std::max<std::size_t>(config.top_channels, 1)) {
  std::iota(identity_rows_.begin(), identity_rows_.end(), std::size_t{0});
}

std::pair<std::size_t, double> SynSeeker::effective_window(
    std::size_t available_a, std::size_t available_b) const {
  const std::size_t avail = std::min(available_a, available_b);
  if (avail >= config_.window_m) {
    return {config_.window_m, config_.coherency_threshold};
  }
  if (!config_.adaptive_window || avail < config_.min_window_m) {
    return {0, config_.coherency_threshold};  // 0 = cannot search
  }
  // Linear threshold relaxation between min_window_m and window_m.
  const double t =
      static_cast<double>(avail - config_.min_window_m) /
      static_cast<double>(config_.window_m - config_.min_window_m);
  const double scale =
      config_.adaptive_threshold_floor +
      (1.0 - config_.adaptive_threshold_floor) * std::clamp(t, 0.0, 1.0);
  return {avail, config_.coherency_threshold * scale};
}

SynSeeker::SeekPlan SynSeeker::plan(const ContextTrajectory& a,
                                    const ContextTrajectory& b,
                                    std::size_t recency_offset_m) const {
  SeekPlan p;
  ChannelSelectScratch scratch;
  plan_into(a, b, recency_offset_m, p, scratch);
  return p;
}

void SynSeeker::plan_into(const ContextTrajectory& a,
                          const ContextTrajectory& b,
                          std::size_t recency_offset_m, SeekPlan& p,
                          ChannelSelectScratch& scratch) const {
  p.window = 0;
  p.threshold = 0.0;
  p.a_start = 0;
  p.b_start = 0;
  p.channels_a.clear();
  p.channels_b.clear();
  p.reject = nullptr;
  p.reject_v1 = 0.0;
  p.reject_v2 = 0.0;
  if (a.empty() || b.empty()) {
    p.reject = "syn.empty";
    return;
  }
  if (a.size() <= recency_offset_m || b.size() <= recency_offset_m) {
    p.reject = "syn.recency_overflow";
    return;
  }
  // Post-turn limiting (Sec. V-C): the RECENT fixed segment must not span
  // a turn — the metres before it belong to a different road.
  std::size_t avail_a = a.size() - recency_offset_m;
  std::size_t avail_b = b.size() - recency_offset_m;
  if (config_.respect_turns) {
    const auto tail_a =
        static_cast<std::size_t>(TurnDetector::straight_tail_metres(a));
    const auto tail_b =
        static_cast<std::size_t>(TurnDetector::straight_tail_metres(b));
    if (tail_a <= recency_offset_m || tail_b <= recency_offset_m) {
      p.reject = "syn.turn_limited";
      return;
    }
    avail_a = std::min(avail_a, tail_a - recency_offset_m);
    avail_b = std::min(avail_b, tail_b - recency_offset_m);
  }
  const auto [window, threshold] = effective_window(avail_a, avail_b);
  p.threshold = threshold;
  if (window == 0) {
    p.reject = "syn.no_window";
    p.reject_v1 = static_cast<double>(std::min(avail_a, avail_b));
    p.reject_v2 = threshold;
    return;
  }
  p.window = window;
  p.a_start = a.size() - recency_offset_m - window;
  p.b_start = b.size() - recency_offset_m - window;

  // Channel selection from the fixed segments (top-k strongest).
  select_top_channels_into(a, p.a_start, window, config_.top_channels, scratch,
                           p.channels_a);
  select_top_channels_into(b, p.b_start, window, config_.top_channels, scratch,
                           p.channels_b);
  if (p.channels_a.empty() || p.channels_b.empty()) {
    p.reject = "syn.no_channels";
    p.reject_v1 = static_cast<double>(window);
    p.reject_v2 = threshold;
    return;
  }
}

SynSeeker::Candidate SynSeeker::best_over_positions(
    const ScanPair& pair, std::size_t window, std::size_t pos_lo,
    std::size_t pos_hi) const {
  Candidate best;
  if (pair.sliding.span.metres < window) return best;
  const std::size_t positions =
      (pair.sliding.span.metres - window) / config_.stride_m + 1;
  pos_hi = std::min(pos_hi, positions);
  if (pos_lo >= pos_hi) return best;
  return best_over_grid(pair, window, pos_lo, pos_hi, config_.stride_m,
                        config_.stride_m);
}

SynSeeker::Candidate SynSeeker::best_over_grid(
    const ScanPair& pair, std::size_t window, std::size_t grid_lo,
    std::size_t grid_hi, std::size_t metre_step,
    std::size_t index_step) const {
  Candidate best;
  if (grid_lo >= grid_hi) return best;
  const auto reduce = [&best, index_step](const double* scores,
                                          std::size_t first,
                                          std::size_t count) {
    for (std::size_t b = 0; b < count; ++b) {
      if (!best.valid || scores[b] > best.correlation) {
        best = {scores[b], (first + b) * index_step, true};
      }
    }
  };

  double scores[kLagBlock];

  // Strided grids (metre_step > 1) never use the FLOAT kernel's
  // strided-lane nest for big scans: its lane loads are non-contiguous,
  // the auto-vectorizer gives up, and the 6×kLagBlock live accumulators
  // then cost more than per-position scoring. Instead:
  //  - small strides (≤ covering_scan_max_stride_m, measured — DESIGN
  //    §11): score the *contiguous covering metre range* at full block
  //    width and reduce only the lanes landing on the grid. Scores are
  //    bit-identical however they are batched, so the extra lanes are
  //    semantically free, and at batch speed this beats per-position
  //    scoring up to the measured crossover stride.
  //  - larger strides: per-position scoring (the covering range would
  //    spend most lanes between grid points).
  // The quantized kernel needs neither: its along-window integer pass
  // scores strided lanes at contiguous cost, so every quantized grid
  // takes the generic batched loop below.
  if (metre_step > 1 && pair.precision == KernelPrecision::kFloat32) {
    const std::size_t m_lo = grid_lo * metre_step;
    const std::size_t m_last = (grid_hi - 1) * metre_step;
    if (metre_step <= config_.covering_scan_max_stride_m &&
        m_last - m_lo + 1 >= kLagBlock) {
      std::size_t blocks = 0;
      const auto reduce_cover = [&](std::size_t m0) {
        for (std::size_t b = 0; b < kLagBlock; ++b) {
          const std::size_t m = m0 + b;
          if (m > m_last || m % metre_step != 0) continue;
          if (!best.valid || scores[b] > best.correlation) {
            best = {scores[b], (m / metre_step) * index_step, true};
          }
        }
      };
      std::size_t m = m_lo;
      for (; m + kLagBlock <= m_last + 1; m += kLagBlock) {
        packed_correlation_batch(pair.fixed, pair.fixed_start, pair.sliding,
                                 m, kLagBlock, window, config_.correlation,
                                 scores);
        reduce_cover(m);
        ++blocks;
      }
      if (m <= m_last) {
        // Overlapped tail on the metre axis (same argument as below: a
        // re-scored lane is bit-identical and cannot displace `best`).
        const std::size_t start = m_last + 1 - kLagBlock;
        packed_correlation_batch(pair.fixed, pair.fixed_start, pair.sliding,
                                 start, kLagBlock, window,
                                 config_.correlation, scores);
        reduce_cover(start);
        ++blocks;
      }
      syn_metrics().kernel_blocks.inc(blocks);
      return best;
    }
    if (metre_step > config_.covering_scan_max_stride_m) {
      for (std::size_t g = grid_lo; g < grid_hi; ++g) {
        const double s = packed_correlation(pair.fixed, pair.fixed_start,
                                            pair.sliding, g * metre_step,
                                            window, config_.correlation);
        if (!best.valid || s > best.correlation) {
          best = {s, g * index_step, true};
        }
      }
      syn_metrics().kernel_blocks.inc(grid_hi - grid_lo);
      return best;
    }
    // Small-span strided grid: fall through — the generic loop below ends
    // in degenerate per-position blocks for counts under kLagBlock.
  }

  std::size_t q = grid_lo;
  for (; q + kLagBlock <= grid_hi; q += kLagBlock) {
    scan_correlation_batch(pair, q * metre_step, kLagBlock, window,
                           config_.correlation, scores, metre_step);
    reduce(scores, q, kLagBlock);
  }
  std::size_t blocks = (q - grid_lo) / kLagBlock;
  if (q < grid_hi) {
    if (grid_hi - grid_lo >= kLagBlock) {
      // Overlapped tail: rescore the last kLagBlock grid points. The
      // re-seen lanes are bit-identical to their full-block scores, and an
      // equal score can never displace `best` (strict >), so the
      // lowest-position tie-break is untouched.
      const std::size_t start = grid_hi - kLagBlock;
      scan_correlation_batch(pair, start * metre_step, kLagBlock, window,
                             config_.correlation, scores, metre_step);
      reduce(scores, start, kLagBlock);
      blocks += 1;
    } else {
      scan_correlation_batch(pair, q * metre_step, grid_hi - q, window,
                             config_.correlation, scores, metre_step);
      reduce(scores, q, grid_hi - q);
      blocks += grid_hi - q;  // degenerate single-position blocks
    }
  }
  syn_metrics().kernel_blocks.inc(blocks);
  return best;
}

SynSeeker::Candidate SynSeeker::slide(const ScanPair& pair,
                                      std::size_t window) const {
  Candidate best;
  if (pair.sliding.span.metres < window) return best;
  const std::size_t positions =
      (pair.sliding.span.metres - window) / config_.stride_m + 1;

  // Chunk a grid of `count` scan points for the pool: chunk lengths are
  // rounded up to whole kLagBlock batches so only each chunk's final block
  // can be partial, and the per-chunk scans stay bit-identical to one
  // serial ascending scan (so the deterministic reduction is exact).
  const auto aligned_chunks = [this](std::size_t count) {
    std::size_t chunk_len =
        (count + pool_->size() - 1) / std::max<std::size_t>(pool_->size(), 1);
    chunk_len = ((chunk_len + kLagBlock - 1) / kLagBlock) * kLagBlock;
    const std::size_t chunks = (count + chunk_len - 1) / chunk_len;
    return std::pair{chunks, chunk_len};
  };

  // Coarse-to-fine: scan every coarse_stride-th position, then refine the
  // neighbourhood of the best coarse hit exhaustively. Like the fine scan
  // it is parallelized over the pool with the lowest-position tie-break
  // reduction. Only engaged when the stride is wide enough to beat the
  // exhaustive batched scan: below the measured covering crossover the
  // cheapest way to score a strided grid IS the contiguous covering scan
  // (see best_over_grid), which costs the same as scoring every position —
  // so a sparse pre-pass would only add its refine pass on top. The
  // quantized kernel scores any stride at batch cost, so it engages
  // coarse-to-fine for every stride > 1.
  const std::size_t coarse_floor =
      pair.precision == KernelPrecision::kFloat32
          ? config_.covering_scan_max_stride_m
          : 1;
  if (config_.coarse_stride_m > 1 &&
      config_.coarse_stride_m * config_.stride_m > coarse_floor &&
      positions > 4 * config_.coarse_stride_m) {
    const std::size_t coarse = config_.coarse_stride_m;
    const std::size_t coarse_count = (positions + coarse - 1) / coarse;
    syn_metrics().windows.inc(coarse_count);
    const std::size_t metre_step = coarse * config_.stride_m;
    Candidate coarse_best;  // position = fine-grid index, not metres
    if (pool_ == nullptr || coarse_count < 64) {
      coarse_best =
          best_over_grid(pair, window, 0, coarse_count, metre_step, coarse);
    } else {
      const auto [chunks, chunk_len] = aligned_chunks(coarse_count);
      std::vector<Candidate> chunk_best(chunks);
      pool_->parallel_for(0, chunks, [&](std::size_t ci) {
        const std::size_t lo = ci * chunk_len;
        const std::size_t hi = std::min(coarse_count, lo + chunk_len);
        chunk_best[ci] =
            best_over_grid(pair, window, lo, hi, metre_step, coarse);
      });
      coarse_best = reduce_chunks(chunk_best);
    }
    if (!coarse_best.valid) return best;
    const std::size_t lo =
        coarse_best.position > coarse ? coarse_best.position - coarse : 0;
    const std::size_t hi =
        std::min(positions, coarse_best.position + coarse + 1);
    syn_metrics().windows.inc(hi - lo);
    return best_over_positions(pair, window, lo, hi);
  }

  syn_metrics().windows.inc(positions);
  if (pool_ == nullptr || positions < 64) {
    return best_over_positions(pair, window, 0, positions);
  }

  // Parallel: per-chunk maxima reduced deterministically (ties resolve to
  // the lowest position, matching the sequential scan).
  const auto [chunks, chunk_len] = aligned_chunks(positions);
  std::vector<Candidate> chunk_best(chunks);
  pool_->parallel_for(0, chunks, [&](std::size_t ci) {
    const std::size_t lo = ci * chunk_len;
    const std::size_t hi = std::min(positions, lo + chunk_len);
    chunk_best[ci] = best_over_positions(pair, window, lo, hi);
  });
  return reduce_chunks(chunk_best);
}

std::optional<SynPoint> SynSeeker::find_one(
    const ContextTrajectory& a, const ContextTrajectory& b,
    std::size_t recency_offset_m) const {
  return find_one(a, b, recency_offset_m, nullptr, nullptr, nullptr, nullptr);
}

std::optional<SynPoint> SynSeeker::find_one(
    const ContextTrajectory& a, const ContextTrajectory& b,
    std::size_t recency_offset_m, const PackedContext* pack_a,
    const PackedContext* pack_b) const {
  return find_one(a, b, recency_offset_m, pack_a, pack_b, nullptr, nullptr);
}

std::optional<SynPoint> SynSeeker::find_one(
    const ContextTrajectory& a, const ContextTrajectory& b,
    std::size_t recency_offset_m, const PackedContext* pack_a,
    const PackedContext* pack_b, const QuantizedPack* qpack_a,
    const QuantizedPack* qpack_b) const {
  SeekPlan plan_scratch;
  ChannelSelectScratch chan_scratch;
  return find_one(a, b, recency_offset_m, pack_a, pack_b, qpack_a, qpack_b,
                  plan_scratch, chan_scratch);
}

std::optional<SynPoint> SynSeeker::find_one(
    const ContextTrajectory& a, const ContextTrajectory& b,
    std::size_t recency_offset_m, const PackedContext* pack_a,
    const PackedContext* pack_b, const QuantizedPack* qpack_a,
    const QuantizedPack* qpack_b, SeekPlan& plan_scratch,
    ChannelSelectScratch& chan_scratch) const {
  SynMetrics& metrics = syn_metrics();
  metrics.seeks.inc();
  obs::ObsTimer timer(&metrics.seek_us, "syn.seek");
  obs::FlightRecorder& recorder = obs::FlightRecorder::global();
  recorder.record(obs::EventType::kSeekStarted, "syn.seek",
                  static_cast<double>(a.size()), static_cast<double>(b.size()),
                  static_cast<double>(recency_offset_m));
  plan_into(a, b, recency_offset_m, plan_scratch, chan_scratch);
  const SeekPlan& p = plan_scratch;
  if (p.reject != nullptr) {
    metrics.outcomes.with(p.reject).inc();
    recorder.record(obs::EventType::kSeekRejected, p.reject, 0.0, p.reject_v1,
                    p.reject_v2);
    return std::nullopt;
  }

  // Each side either reuses a caller-maintained all-channel pack (row map =
  // selected channel ids) or falls back to the historical per-pass subset
  // packs (row map = 0..k-1, a prefix of the cached identity map — no
  // per-seek allocation). A stale caller pack is ignored — correctness
  // never depends on the caller keeping packs fresh.
  const bool have_a = pack_a != nullptr && pack_a->in_sync_with(a);
  const bool have_b = pack_b != nullptr && pack_b->in_sync_with(b);
  std::span<const std::size_t> identity(identity_rows_);
  std::vector<std::size_t> overflow;  // select_top_channels caps at
                                      // top_channels, so this stays empty
  const std::size_t need =
      std::max(p.channels_a.size(), p.channels_b.size());
  if (need > identity.size()) {
    overflow.resize(need);
    std::iota(overflow.begin(), overflow.end(), std::size_t{0});
    identity = overflow;
  }
  const std::span<const std::size_t> rows_ka =
      identity.first(p.channels_a.size());
  const std::span<const std::size_t> rows_kb =
      identity.first(p.channels_b.size());

  SubsetPack fixed_a, slide_b, fixed_b, slide_a;
  PackedView f1, s1, f2, s2;
  std::size_t f1_start = 0;
  std::size_t f2_start = 0;
  if (have_a) {
    f1 = {pack_a->span(), p.channels_a};
    f1_start = p.a_start;
    s2 = {pack_a->span(), p.channels_b};
  } else {
    fixed_a = SubsetPack(a, p.channels_a, p.a_start, p.window);
    f1 = {fixed_a.span(), rows_ka};
    slide_a = SubsetPack(a, p.channels_b, 0, a.size());
    s2 = {slide_a.span(), rows_kb};
  }
  if (have_b) {
    s1 = {pack_b->span(), p.channels_a};
    f2 = {pack_b->span(), p.channels_b};
    f2_start = p.b_start;
  } else {
    slide_b = SubsetPack(b, p.channels_a, 0, b.size());
    s1 = {slide_b.span(), rows_ka};
    fixed_b = SubsetPack(b, p.channels_b, p.b_start, p.window);
    f2 = {fixed_b.span(), rows_kb};
  }

  ScanPair pass1{config_.precision, f1, f1_start, s1, {}, {}, {}, {}};
  ScanPair pass2{config_.precision, f2, f2_start, s2, {}, {}, {}, {}};
  // Quantized operands. A pack-backed side reuses the caller's mirror when
  // it mirrors the SAME pack state the float views were taken from;
  // otherwise (and for every SubsetPack fallback operand) the scanned span
  // is quantized one-shot here — the scratch packs must outlive the scans.
  QuantizedPack q_scratch[4];
  if (config_.precision != KernelPrecision::kFloat32) {
    const QuantBits bits = config_.precision == KernelPrecision::kInt8
                               ? QuantBits::kInt8
                               : QuantBits::kInt16;
    std::size_t scratch_used = 0;
    const auto quant_of = [&](const PackedSpan& span, bool pack_backed,
                              const PackedContext* pack,
                              const QuantizedPack* mirror)
        -> const QuantizedPack* {
      if (pack_backed && mirror != nullptr && mirror->mirrors(*pack, bits)) {
        return mirror;
      }
      QuantizedPack& scratch = q_scratch[scratch_used++];
      scratch.build(span, bits);
      return &scratch;
    };
    // One quant pack per underlying span: a pack-backed side serves both
    // its fixed and sliding roles from the same object.
    const QuantizedPack* qa =
        quant_of(have_a ? pack_a->span() : fixed_a.span(), have_a, pack_a,
                 qpack_a);
    const QuantizedPack* qa_slide =
        have_a ? qa : quant_of(slide_a.span(), false, nullptr, nullptr);
    const QuantizedPack* qb =
        quant_of(have_b ? pack_b->span() : slide_b.span(), have_b, pack_b,
                 qpack_b);
    const QuantizedPack* qb_fixed =
        have_b ? qb : quant_of(fixed_b.span(), false, nullptr, nullptr);
    if (bits == QuantBits::kInt16) {
      pass1.qfixed16 = {qa->span16(), f1.rows};
      pass1.qsliding16 = {qb->span16(), s1.rows};
      pass2.qfixed16 = {qb_fixed->span16(), f2.rows};
      pass2.qsliding16 = {qa_slide->span16(), s2.rows};
    } else {
      pass1.qfixed8 = {qa->span8(), f1.rows};
      pass1.qsliding8 = {qb->span8(), s1.rows};
      pass2.qfixed8 = {qb_fixed->span8(), f2.rows};
      pass2.qsliding8 = {qa_slide->span8(), s2.rows};
    }
  }

  // Both correlation-scan passes share one kernel span: the child of
  // "syn.seek" that shows up in the paper's Fig. 10-12 cost breakdowns.
  obs::ObsTimer kernel_timer(&metrics.kernel_us, "syn.kernel");
  // Pass 1 (Fig 7 left): recent segment of A slides over B.
  const Candidate on_b = slide(pass1, p.window);
  // Pass 2 (Fig 7 right): recent segment of B slides over A.
  const Candidate on_a = slide(pass2, p.window);
  kernel_timer.stop();

  for (const Candidate& c : {on_b, on_a}) {
    if (!c.valid) continue;
    (c.correlation >= p.threshold ? metrics.accepted : metrics.rejected).inc();
  }

  SynPoint best;
  bool found = false;
  if (on_b.valid && on_b.correlation >= p.threshold) {
    best = {p.a_start, on_b.position, p.window, on_b.correlation};
    found = true;
  }
  if (on_a.valid && on_a.correlation >= p.threshold &&
      (!found || on_a.correlation > best.correlation)) {
    best = {on_a.position, p.b_start, p.window, on_a.correlation};
    found = true;
  }
  (found ? metrics.coherency_pass : metrics.coherency_fail).inc();
  if (!found) {
    const double best_corr = std::max(on_b.valid ? on_b.correlation : -2.0,
                                      on_a.valid ? on_a.correlation : -2.0);
    metrics.outcomes.with("below_threshold").inc();
    recorder.record(obs::EventType::kSeekRejected, "syn.below_threshold",
                    best_corr, static_cast<double>(p.window), p.threshold);
    return std::nullopt;
  }
  metrics.outcomes.with("accepted").inc();
  recorder.record(obs::EventType::kSeekAccepted, "syn.seek", best.correlation,
                  static_cast<double>(p.window), p.threshold);
  return best;
}

std::vector<SynPoint> SynSeeker::find(const ContextTrajectory& a,
                                      const ContextTrajectory& b) const {
  return find(a, b, nullptr, nullptr, nullptr, nullptr);
}

std::vector<SynPoint> SynSeeker::find(const ContextTrajectory& a,
                                      const ContextTrajectory& b,
                                      const PackedContext* pack_a,
                                      const PackedContext* pack_b) const {
  return find(a, b, pack_a, pack_b, nullptr, nullptr);
}

std::vector<SynPoint> SynSeeker::find(const ContextTrajectory& a,
                                      const ContextTrajectory& b,
                                      const PackedContext* pack_a,
                                      const PackedContext* pack_b,
                                      const QuantizedPack* qpack_a,
                                      const QuantizedPack* qpack_b) const {
  std::vector<SynPoint> out;
  for (std::size_t k = 0; k < std::max<std::size_t>(1, config_.syn_points);
       ++k) {
    const std::size_t offset = k * config_.syn_segment_spacing_m;
    const auto syn = find_one(a, b, offset, pack_a, pack_b, qpack_a, qpack_b);
    if (syn.has_value()) out.push_back(*syn);
  }
  std::sort(out.begin(), out.end(), [](const SynPoint& x, const SynPoint& y) {
    return x.correlation > y.correlation;
  });
  return out;
}

}  // namespace rups::core
