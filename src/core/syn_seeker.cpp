#include "core/syn_seeker.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <mutex>

#include "core/channel_select.hpp"
#include "core/turn_detector.hpp"
#include "obs/metrics.hpp"
#include "obs/recorder.hpp"
#include "obs/timer.hpp"

namespace rups::core {

namespace {

/// Sec. V-A / VI-E cost accounting for the SYN search. Handles resolve
/// once; increments happen in bulk per slide/seek, never per position, so
/// the packed kernel stays untouched.
struct SynMetrics {
  obs::Counter& seeks = obs::Registry::global().counter("syn.seeks");
  obs::Counter& windows =
      obs::Registry::global().counter("syn.windows_scanned");
  obs::Counter& accepted =
      obs::Registry::global().counter("syn.candidates_accepted");
  obs::Counter& rejected =
      obs::Registry::global().counter("syn.candidates_rejected");
  obs::Counter& coherency_pass =
      obs::Registry::global().counter("syn.coherency_pass");
  obs::Counter& coherency_fail =
      obs::Registry::global().counter("syn.coherency_fail");
  obs::Histogram& seek_us =
      obs::Registry::global().histogram("syn.seek_us");
};

SynMetrics& syn_metrics() {
  static SynMetrics m;
  return m;
}

/// Identity row map 0..k-1 for SubsetPack views.
std::vector<std::size_t> iota_rows(std::size_t k) {
  std::vector<std::size_t> rows(k);
  for (std::size_t i = 0; i < k; ++i) rows[i] = i;
  return rows;
}

}  // namespace

SynSeeker::SynSeeker(SynConfig config, util::ThreadPool* pool) noexcept
    : config_(config), pool_(pool) {}

std::pair<std::size_t, double> SynSeeker::effective_window(
    std::size_t available_a, std::size_t available_b) const {
  const std::size_t avail = std::min(available_a, available_b);
  if (avail >= config_.window_m) {
    return {config_.window_m, config_.coherency_threshold};
  }
  if (!config_.adaptive_window || avail < config_.min_window_m) {
    return {0, config_.coherency_threshold};  // 0 = cannot search
  }
  // Linear threshold relaxation between min_window_m and window_m.
  const double t =
      static_cast<double>(avail - config_.min_window_m) /
      static_cast<double>(config_.window_m - config_.min_window_m);
  const double scale =
      config_.adaptive_threshold_floor +
      (1.0 - config_.adaptive_threshold_floor) * std::clamp(t, 0.0, 1.0);
  return {avail, config_.coherency_threshold * scale};
}

SynSeeker::SeekPlan SynSeeker::plan(const ContextTrajectory& a,
                                    const ContextTrajectory& b,
                                    std::size_t recency_offset_m) const {
  SeekPlan p;
  if (a.empty() || b.empty()) {
    p.reject = "syn.empty";
    return p;
  }
  if (a.size() <= recency_offset_m || b.size() <= recency_offset_m) {
    p.reject = "syn.recency_overflow";
    return p;
  }
  // Post-turn limiting (Sec. V-C): the RECENT fixed segment must not span
  // a turn — the metres before it belong to a different road.
  std::size_t avail_a = a.size() - recency_offset_m;
  std::size_t avail_b = b.size() - recency_offset_m;
  if (config_.respect_turns) {
    const auto tail_a =
        static_cast<std::size_t>(TurnDetector::straight_tail_metres(a));
    const auto tail_b =
        static_cast<std::size_t>(TurnDetector::straight_tail_metres(b));
    if (tail_a <= recency_offset_m || tail_b <= recency_offset_m) {
      p.reject = "syn.turn_limited";
      return p;
    }
    avail_a = std::min(avail_a, tail_a - recency_offset_m);
    avail_b = std::min(avail_b, tail_b - recency_offset_m);
  }
  const auto [window, threshold] = effective_window(avail_a, avail_b);
  p.threshold = threshold;
  if (window == 0) {
    p.reject = "syn.no_window";
    p.reject_v1 = static_cast<double>(std::min(avail_a, avail_b));
    p.reject_v2 = threshold;
    return p;
  }
  p.window = window;
  p.a_start = a.size() - recency_offset_m - window;
  p.b_start = b.size() - recency_offset_m - window;

  // Channel selection from the fixed segments (top-k strongest).
  p.channels_a =
      select_top_channels(a, p.a_start, window, config_.top_channels);
  p.channels_b =
      select_top_channels(b, p.b_start, window, config_.top_channels);
  if (p.channels_a.empty() || p.channels_b.empty()) {
    p.reject = "syn.no_channels";
    p.reject_v1 = static_cast<double>(window);
    p.reject_v2 = threshold;
    return p;
  }
  return p;
}

SynSeeker::Candidate SynSeeker::best_over_positions(
    const PackedView& fixed, std::size_t fixed_start, const PackedView& sliding,
    std::size_t window, std::size_t pos_lo, std::size_t pos_hi) const {
  Candidate best;
  if (sliding.span.metres < window) return best;
  const std::size_t positions =
      (sliding.span.metres - window) / config_.stride_m + 1;
  pos_hi = std::min(pos_hi, positions);
  for (std::size_t p = pos_lo; p < pos_hi; ++p) {
    const double r =
        packed_correlation(fixed, fixed_start, sliding, p * config_.stride_m,
                           window, config_.correlation);
    if (!best.valid || r > best.correlation) {
      best = {r, p * config_.stride_m, true};
    }
  }
  return best;
}

SynSeeker::Candidate SynSeeker::slide(const PackedView& fixed,
                                      std::size_t fixed_start,
                                      const PackedView& sliding,
                                      std::size_t window) const {
  Candidate best;
  if (sliding.span.metres < window) return best;
  const std::size_t positions =
      (sliding.span.metres - window) / config_.stride_m + 1;

  // Coarse-to-fine: scan every coarse_stride-th position, then refine the
  // neighbourhood of the best coarse hit exhaustively.
  if (config_.coarse_stride_m > 1 &&
      positions > 4 * config_.coarse_stride_m) {
    const std::size_t coarse = config_.coarse_stride_m;
    syn_metrics().windows.inc((positions + coarse - 1) / coarse);
    Candidate coarse_best;
    for (std::size_t p = 0; p < positions; p += coarse) {
      const double r =
          packed_correlation(fixed, fixed_start, sliding, p * config_.stride_m,
                             window, config_.correlation);
      if (!coarse_best.valid || r > coarse_best.correlation) {
        coarse_best = {r, p, true};  // position index, not metres
      }
    }
    if (!coarse_best.valid) return best;
    const std::size_t lo =
        coarse_best.position > coarse ? coarse_best.position - coarse : 0;
    const std::size_t hi =
        std::min(positions, coarse_best.position + coarse + 1);
    syn_metrics().windows.inc(hi - lo);
    return best_over_positions(fixed, fixed_start, sliding, window, lo, hi);
  }

  syn_metrics().windows.inc(positions);
  if (pool_ == nullptr || positions < 64) {
    return best_over_positions(fixed, fixed_start, sliding, window, 0,
                               positions);
  }

  // Parallel: per-chunk maxima reduced deterministically (ties resolve to
  // the lowest position, matching the sequential scan).
  const std::size_t chunks = std::min<std::size_t>(pool_->size(), positions);
  std::vector<Candidate> chunk_best(chunks);
  const std::size_t chunk_len = (positions + chunks - 1) / chunks;
  pool_->parallel_for(0, chunks, [&](std::size_t ci) {
    const std::size_t lo = ci * chunk_len;
    const std::size_t hi = std::min(positions, lo + chunk_len);
    chunk_best[ci] =
        best_over_positions(fixed, fixed_start, sliding, window, lo, hi);
  });
  for (const Candidate& c : chunk_best) {
    if (!c.valid) continue;
    if (!best.valid || c.correlation > best.correlation ||
        (c.correlation == best.correlation && c.position < best.position)) {
      best = c;
    }
  }
  return best;
}

std::optional<SynPoint> SynSeeker::find_one(
    const ContextTrajectory& a, const ContextTrajectory& b,
    std::size_t recency_offset_m) const {
  return find_one(a, b, recency_offset_m, nullptr, nullptr);
}

std::optional<SynPoint> SynSeeker::find_one(
    const ContextTrajectory& a, const ContextTrajectory& b,
    std::size_t recency_offset_m, const PackedContext* pack_a,
    const PackedContext* pack_b) const {
  SynMetrics& metrics = syn_metrics();
  metrics.seeks.inc();
  obs::ObsTimer timer(&metrics.seek_us, "syn.seek");
  obs::FlightRecorder& recorder = obs::FlightRecorder::global();
  recorder.record(obs::EventType::kSeekStarted, "syn.seek",
                  static_cast<double>(a.size()), static_cast<double>(b.size()),
                  static_cast<double>(recency_offset_m));
  const SeekPlan p = plan(a, b, recency_offset_m);
  if (p.reject != nullptr) {
    recorder.record(obs::EventType::kSeekRejected, p.reject, 0.0, p.reject_v1,
                    p.reject_v2);
    return std::nullopt;
  }

  // Each side either reuses a caller-maintained all-channel pack (row map =
  // selected channel ids) or falls back to the historical per-pass subset
  // packs (row map = 0..k-1). A stale caller pack is ignored — correctness
  // never depends on the caller keeping packs fresh.
  const bool have_a = pack_a != nullptr && pack_a->in_sync_with(a);
  const bool have_b = pack_b != nullptr && pack_b->in_sync_with(b);
  const std::vector<std::size_t> rows_ka =
      have_a && have_b ? std::vector<std::size_t>{}
                       : iota_rows(p.channels_a.size());
  const std::vector<std::size_t> rows_kb =
      have_a && have_b ? std::vector<std::size_t>{}
                       : iota_rows(p.channels_b.size());

  SubsetPack fixed_a, slide_b, fixed_b, slide_a;
  PackedView f1, s1, f2, s2;
  std::size_t f1_start = 0;
  std::size_t f2_start = 0;
  if (have_a) {
    f1 = {pack_a->span(), p.channels_a};
    f1_start = p.a_start;
    s2 = {pack_a->span(), p.channels_b};
  } else {
    fixed_a = SubsetPack(a, p.channels_a, p.a_start, p.window);
    f1 = {fixed_a.span(), rows_ka};
    slide_a = SubsetPack(a, p.channels_b, 0, a.size());
    s2 = {slide_a.span(), rows_kb};
  }
  if (have_b) {
    s1 = {pack_b->span(), p.channels_a};
    f2 = {pack_b->span(), p.channels_b};
    f2_start = p.b_start;
  } else {
    slide_b = SubsetPack(b, p.channels_a, 0, b.size());
    s1 = {slide_b.span(), rows_ka};
    fixed_b = SubsetPack(b, p.channels_b, p.b_start, p.window);
    f2 = {fixed_b.span(), rows_kb};
  }

  // Pass 1 (Fig 7 left): recent segment of A slides over B.
  const Candidate on_b = slide(f1, f1_start, s1, p.window);
  // Pass 2 (Fig 7 right): recent segment of B slides over A.
  const Candidate on_a = slide(f2, f2_start, s2, p.window);

  for (const Candidate& c : {on_b, on_a}) {
    if (!c.valid) continue;
    (c.correlation >= p.threshold ? metrics.accepted : metrics.rejected).inc();
  }

  SynPoint best;
  bool found = false;
  if (on_b.valid && on_b.correlation >= p.threshold) {
    best = {p.a_start, on_b.position, p.window, on_b.correlation};
    found = true;
  }
  if (on_a.valid && on_a.correlation >= p.threshold &&
      (!found || on_a.correlation > best.correlation)) {
    best = {on_a.position, p.b_start, p.window, on_a.correlation};
    found = true;
  }
  (found ? metrics.coherency_pass : metrics.coherency_fail).inc();
  if (!found) {
    const double best_corr = std::max(on_b.valid ? on_b.correlation : -2.0,
                                      on_a.valid ? on_a.correlation : -2.0);
    recorder.record(obs::EventType::kSeekRejected, "syn.below_threshold",
                    best_corr, static_cast<double>(p.window), p.threshold);
    return std::nullopt;
  }
  recorder.record(obs::EventType::kSeekAccepted, "syn.seek", best.correlation,
                  static_cast<double>(p.window), p.threshold);
  return best;
}

std::vector<SynPoint> SynSeeker::find(const ContextTrajectory& a,
                                      const ContextTrajectory& b) const {
  return find(a, b, nullptr, nullptr);
}

std::vector<SynPoint> SynSeeker::find(const ContextTrajectory& a,
                                      const ContextTrajectory& b,
                                      const PackedContext* pack_a,
                                      const PackedContext* pack_b) const {
  std::vector<SynPoint> out;
  for (std::size_t k = 0; k < std::max<std::size_t>(1, config_.syn_points);
       ++k) {
    const std::size_t offset = k * config_.syn_segment_spacing_m;
    const auto syn = find_one(a, b, offset, pack_a, pack_b);
    if (syn.has_value()) out.push_back(*syn);
  }
  std::sort(out.begin(), out.end(), [](const SynPoint& x, const SynPoint& y) {
    return x.correlation > y.correlation;
  });
  return out;
}

}  // namespace rups::core
