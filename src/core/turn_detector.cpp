#include "core/turn_detector.hpp"

#include <cmath>

#include "util/angle.hpp"

namespace rups::core {

TurnDetector::TurnDetector() : TurnDetector(Config{}) {}

TurnDetector::TurnDetector(Config config) : config_(config) {
  recent_.resize(config_.turn_window_m, 0.0);
}

void TurnDetector::on_metre(double heading_rad) {
  const std::size_t w = recent_.size();
  if (!full_) {
    recent_[next_] = heading_rad;
    ++next_;
    ++metres_since_turn_;
    if (next_ == w) {
      full_ = true;
      next_ = 0;
    }
    return;
  }
  // Oldest retained heading is at next_ (about to be overwritten).
  const double oldest = recent_[next_];
  recent_[next_] = heading_rad;
  next_ = (next_ + 1) % w;
  ++metres_since_turn_;

  if (std::abs(util::angle_diff(heading_rad, oldest)) >=
      config_.turn_threshold_rad) {
    ++turns_;
    metres_since_turn_ = 0;
    // Reset the window so the same turn does not retrigger while it
    // drains out of the ring.
    full_ = false;
    next_ = 0;
  }
}

std::uint64_t TurnDetector::straight_tail_metres(
    const ContextTrajectory& trajectory) {
  return straight_tail_metres(trajectory, Config{});
}

std::uint64_t TurnDetector::straight_tail_metres(
    const ContextTrajectory& trajectory, Config config) {
  TurnDetector detector(config);
  for (std::size_t i = 0; i < trajectory.size(); ++i) {
    detector.on_metre(trajectory.geo(i).heading_rad);
  }
  return std::min<std::uint64_t>(detector.metres_since_turn(),
                                 trajectory.size());
}

}  // namespace rups::core
