#pragma once

#include <cstddef>

#include "sensors/types.hpp"
#include "util/vec3.hpp"

namespace rups::core {

/// Coordinate reorientation (paper Sec. IV-B, following Han et al. [31]):
/// estimates the rotation matrix R = [x; y; z] aligning SENSOR-frame
/// readings to the VEHICLE frame (x right, y forward, z up).
///
///  * z comes from the gravity direction (low-passed accelerometer),
///  * y (forward) comes from the horizontal direction of specific force
///    during longitudinal accelerations/brakings, with the sign taken from
///    a speed-change hint (OBD),
///  * x = y cross z, and z is recalibrated as x cross y to cancel slope
///    effects — exactly the paper's recipe.
class Reorientation {
 public:
  struct Config {
    /// Low-pass constant for the gravity estimate (per-sample IIR alpha).
    double gravity_alpha = 0.01;
    /// Gravity updates only when | |accel| - g | is below this gate
    /// (quasi-static samples) — otherwise longitudinal acceleration would
    /// tilt the gravity estimate systematically.
    double gravity_gate_mps2 = 0.12;
    /// Minimum horizontal specific force (m/s^2) for a sample to count as
    /// a longitudinal-acceleration event.
    double event_threshold_mps2 = 0.6;
    /// Maximum |gyro| (rad/s) during an event — excludes turns.
    double max_turn_rate_rps = 0.05;
    /// Events needed before the estimate is considered calibrated.
    std::size_t min_events = 120;
  };

  Reorientation();
  explicit Reorientation(Config config);

  /// Feed one IMU sample. `speed_trend` is the sign of the vehicle's speed
  /// change around this instant (+1 accelerating, -1 braking, 0 unknown);
  /// it resolves the forward/backward ambiguity of acceleration events.
  void add_sample(const sensors::ImuSample& imu, int speed_trend);

  /// True once enough events were observed to trust rotation().
  [[nodiscard]] bool calibrated() const noexcept;

  /// vehicle_from_sensor rotation: rotation() * sensor_vec = vehicle_vec.
  /// Identity until calibrated.
  [[nodiscard]] util::Mat3 rotation() const;

  /// Gravity direction estimate in the sensor frame (unit when available).
  [[nodiscard]] util::Vec3 gravity_sensor() const noexcept;

  [[nodiscard]] std::size_t event_count() const noexcept { return events_; }

 private:
  Config config_;
  util::Vec3 gravity_lp_{};
  bool gravity_init_ = false;
  util::Vec3 forward_acc_{};  ///< accumulated forward votes (sensor frame)
  std::size_t events_ = 0;
};

}  // namespace rups::core
