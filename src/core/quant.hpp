#pragma once

// Quantized (int16 / int8) companion of the packed float correlation
// kernel. RSSI is dBm in a narrow physical range, and the paper's eq. (2)
// score is built from Pearson correlations — which are invariant under
// positive affine maps of either operand. So each pack can be quantized
// with one affine (offset, step) pair, q = round((x - offset) / step), and
// the kernel can run on small integers: the integer moment sums it needs
// (n, Σx, Σy, Σx², Σy², Σxy) are then EXACT, which buys two things the
// float kernel can never have:
//   * the reduction over window metres is freely reassociable — the
//     compiler/intrinsics may vectorize ALONG the window (vpmaddwd-style
//     dot products) instead of across lags, so each slide position is an
//     independent small-GEMM row C[b] = A · B[b..b+w) over the implicit
//     Toeplitz operand of the sliding pack;
//   * any batch shape, stride, chunking or ISA produces bit-identical
//     integer sums, so the quantized path is deterministic by construction
//     (the only FP arithmetic is the per-channel epilogue, identical in
//     structure to the float kernel's and compiled with the same strict
//     flags).
// The cost is a bounded score perturbation from rounding; DESIGN.md §15
// derives the bound and tests/test_quant_kernel.cpp asserts it
// differentially against the float path. The float path itself is
// untouched (packed.{hpp,cpp}) and remains the strict default.

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "core/correlation.hpp"
#include "core/packed.hpp"

namespace rups::core {

/// Kernel precision knob (SynConfig::precision). kFloat32 is the strict
/// bit-identical reference path; the integer paths trade a bounded score
/// error (see DESIGN §15) for ~2.2-2.5x kernel throughput over the float
/// batch kernel (measured at the paper point on the reference container).
enum class KernelPrecision : std::uint8_t { kFloat32, kInt16, kInt8 };

enum class QuantBits : std::uint8_t { kInt16, kInt8 };

/// Quantized magnitude caps. int16 uses ±1023 (not ±32767) so that every
/// per-window integer moment sum fits int32 even at the maximum supported
/// window — which lets the SIMD kernels accumulate and reduce entirely in
/// 32-bit lanes: |Σ q_a·q_b| <= kQuantMaxWindowM * 1023² < 2³¹.
inline constexpr int kQuantMax16 = 1023;
inline constexpr int kQuantMax8 = 127;
/// Largest window (metres) the quantized kernels accept (int32 overflow
/// bound for the int16 grid; RUPS windows are ~100).
inline constexpr std::size_t kQuantMaxWindowM = 2047;

/// Per-pack affine quantization map: q = round((x - offset) / step),
/// clamped to the grid. `x` here is the pack-shifted dB value (see
/// kPackShiftDbm), so `offset` is also in shifted dB.
struct QuantParams {
  double offset = 0.0;
  double step = 1.0;
};

/// Borrowed view of a quantized pack region: channel-major rows of
/// pre-masked quantized values (0 where unusable) and 0/1 validity, plus
/// the pack's affine map. Mirrors PackedSpan column-for-column.
template <typename T>
struct QuantSpanT {
  const T* q = nullptr;
  const T* v = nullptr;
  std::size_t stride = 0;
  std::size_t metres = 0;
  std::size_t channels = 0;
  QuantParams params{};
};
using QuantSpan16 = QuantSpanT<std::int16_t>;
using QuantSpan8 = QuantSpanT<std::int8_t>;

/// Span plus row map, the quantized analogue of PackedView.
template <typename T>
struct QuantViewT {
  QuantSpanT<T> span{};
  std::span<const std::size_t> rows{};
};
using QuantView16 = QuantViewT<std::int16_t>;
using QuantView8 = QuantViewT<std::int8_t>;

/// Owning quantized mirror of a pack. Either built one-shot from any
/// PackedSpan (SubsetPack fallbacks, tests) or maintained incrementally
/// against a PackedContext: sync() re-quantizes only the grown/volatile
/// tail and advances the base on front eviction, exactly like the float
/// pack — EXCEPT when new data leaves the quantization grid, which forces
/// a full requantize with fresh params. The grid is built with ~25%
/// range headroom so steady-state appends essentially never trigger that.
class QuantizedPack {
 public:
  QuantizedPack() = default;

  /// Full one-shot (re)quantization of `s` at the given width. Non-finite
  /// values (fuzzed NaN/±inf inputs) are masked invalid; everything else
  /// is clamped onto the grid.
  void build(const PackedSpan& s, QuantBits bits);

  /// Mirror `pack`'s current span incrementally; returns the number of
  /// columns (re)quantized (everything on a full rebuild). Pass the same
  /// volatile_suffix_m the float pack is synced with.
  std::size_t sync(const PackedContext& pack, QuantBits bits,
                   std::size_t volatile_suffix_m =
                       PackedContext::kDefaultVolatileSuffixM);

  /// True when this mirror matches `pack`'s shape at the given width —
  /// i.e. it was sync()ed against the pack's current state.
  [[nodiscard]] bool mirrors(const PackedContext& pack,
                             QuantBits bits) const noexcept;

  [[nodiscard]] QuantBits bits() const noexcept { return bits_; }
  [[nodiscard]] const QuantParams& params() const noexcept { return params_; }
  [[nodiscard]] bool empty() const noexcept { return metres_ == 0; }
  [[nodiscard]] std::size_t size() const noexcept { return metres_; }
  [[nodiscard]] std::size_t channels() const noexcept { return channels_; }

  /// Views; only the width matching bits() has data.
  [[nodiscard]] QuantSpan16 span16() const noexcept {
    return {q16_.data() + base_, v16_.data() + base_, stride_,
            metres_,             channels_,           params_};
  }
  [[nodiscard]] QuantSpan8 span8() const noexcept {
    return {q8_.data() + base_, v8_.data() + base_, stride_,
            metres_,            channels_,          params_};
  }

  void clear() noexcept {
    base_ = metres_ = 0;
    first_metre_ = 0;
  }

 private:
  template <typename T>
  void quantize_column(const PackedSpan& s, std::size_t col, int qmax,
                       std::vector<T>& q, std::vector<T>& v);
  void rebuild(const PackedSpan& s, std::uint64_t first_metre, QuantBits bits,
               std::size_t slack);
  void compact() noexcept;
  /// True when every finite valid value in columns [from, to) of `s` lands
  /// inside the current grid without clamping.
  [[nodiscard]] bool tail_in_range(const PackedSpan& s, std::size_t from,
                                   std::size_t to) const noexcept;

  QuantBits bits_ = QuantBits::kInt16;
  /// Set by sync(), cleared by build(): only a sync()ed pack may report
  /// mirrors() == true (a one-shot build has no trajectory identity).
  bool synced_shape_ = false;
  QuantParams params_{};
  std::size_t channels_ = 0;
  std::size_t stride_ = 0;
  std::uint64_t first_metre_ = 0;
  std::size_t base_ = 0;
  std::size_t metres_ = 0;
  std::vector<std::int16_t> q16_, v16_;
  std::vector<std::int8_t> q8_, v8_;
};

/// Quantized trajectory correlation: same windowing, row-map, overlap and
/// variance-guard semantics as packed_correlation(), evaluated on the
/// quantized operands. The variance guard compares the DEQUANTIZED
/// variances (vq · step²) against the same 1e-2 dB² threshold, and the
/// overlap/min_channels decisions are exact integer counts — identical to
/// the float path's decisions on the same mask data. Requires
/// window <= kQuantMaxWindowM.
template <typename T>
[[nodiscard]] double quantized_correlation(
    const QuantViewT<T>& fixed, std::size_t fixed_start,
    const QuantViewT<T>& sliding, std::size_t pos, std::size_t window,
    const TrajectoryCorrelationConfig& config);

/// Batched quantized scan: scores pos_lo + q*pos_stride_m for q in
/// [0, pos_count) into out_scores[q]. Unlike the float kernel there is no
/// lane-shape caveat: every position is an independent exact-integer dot
/// along the window, so any batch/stride/chunk shape is bit-identical to
/// per-position quantized_correlation() calls — strided grids cost the
/// same per position as contiguous ones. Caller guarantees every window
/// fits: pos_lo + (pos_count-1)*pos_stride_m + window <= span metres.
template <typename T>
void quantized_correlation_batch(const QuantViewT<T>& fixed,
                                 std::size_t fixed_start,
                                 const QuantViewT<T>& sliding,
                                 std::size_t pos_lo, std::size_t pos_count,
                                 std::size_t window,
                                 const TrajectoryCorrelationConfig& config,
                                 double* out_scores,
                                 std::size_t pos_stride_m = 1);

/// One sliding-scan request against a shared fixed operand.
template <typename T>
struct QuantScanTaskT {
  QuantViewT<T> sliding{};
  std::size_t pos_lo = 0;
  std::size_t pos_count = 0;
  std::size_t pos_stride_m = 1;
  double* out_scores = nullptr;
};
using QuantScanTask16 = QuantScanTaskT<std::int16_t>;
using QuantScanTask8 = QuantScanTaskT<std::int8_t>;

/// GEMM-shaped fleet scan: score MANY neighbours' sliding windows against
/// ONE ego fixed window in a single call. The ego operand (a few hundred
/// bytes quantized) stays L1-resident across all tasks — this is
/// FleetEngine's task-level batching pushed down into the kernel. Results
/// are bit-identical to running quantized_correlation_batch per task.
template <typename T>
void quantized_correlation_multi(const QuantViewT<T>& fixed,
                                 std::size_t fixed_start,
                                 std::span<const QuantScanTaskT<T>> tasks,
                                 std::size_t window,
                                 const TrajectoryCorrelationConfig& config);

/// One fixed/sliding operand pair at the precision a seek runs at. The
/// float views are always populated (they carry the authoritative shapes
/// and serve the strict default); the quantized views of the matching
/// width are populated iff precision != kFloat32. SynSeeker's scan core,
/// SynCache's re-verification band and the pool chunks all consume this,
/// so one seek switches precision in exactly one place.
struct ScanPair {
  KernelPrecision precision = KernelPrecision::kFloat32;
  PackedView fixed{};
  std::size_t fixed_start = 0;
  PackedView sliding{};
  QuantView16 qfixed16{};
  QuantView16 qsliding16{};
  QuantView8 qfixed8{};
  QuantView8 qsliding8{};
};

/// Precision-dispatching scan: packed_correlation_batch at kFloat32,
/// quantized_correlation_batch<T> otherwise.
void scan_correlation_batch(const ScanPair& pair, std::size_t pos_lo,
                            std::size_t pos_count, std::size_t window,
                            const TrajectoryCorrelationConfig& config,
                            double* out_scores, std::size_t pos_stride_m = 1);

}  // namespace rups::core
