#include "core/quant.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <stdexcept>
#include <type_traits>

#if defined(__x86_64__)
#include <immintrin.h>
#endif

// Like packed.cpp this TU is compiled without value-changing FP options
// (-ffp-contract=off, no -ffast-math) — but here that only matters for the
// per-channel double epilogue: the window reduction itself is exact integer
// arithmetic, so the ISA variants below are free to vectorize ALONG the
// window and still produce bit-identical moment sums. Determinism of the
// quantized path therefore never depends on which variant the dispatcher
// picks.

namespace rups::core {

namespace {

[[nodiscard]] int qmax_for(QuantBits bits) noexcept {
  return bits == QuantBits::kInt8 ? kQuantMax8 : kQuantMax16;
}

}  // namespace

// ---------------------------------------------------------------------------
// QuantizedPack
// ---------------------------------------------------------------------------

template <typename T>
void QuantizedPack::quantize_column(const PackedSpan& s, std::size_t col,
                                    int qmax, std::vector<T>& q,
                                    std::vector<T>& v) {
  const double offset = params_.offset;
  const double step = params_.step;
  const std::size_t dst = base_ + col;
  for (std::size_t c = 0; c < channels_; ++c) {
    const float x = s.x[c * s.stride + col];
    const bool valid = s.v[c * s.stride + col] != 0.0f && std::isfinite(x);
    T qi = 0;
    if (valid) {
      // Clamp BEFORE rounding: lround on an out-of-range or non-finite
      // argument is unspecified, and fuzzed inputs can put d anywhere.
      const double d = (static_cast<double>(x) - offset) / step;
      if (d >= static_cast<double>(qmax)) {
        qi = static_cast<T>(qmax);
      } else if (d <= static_cast<double>(-qmax)) {
        qi = static_cast<T>(-qmax);
      } else {
        qi = static_cast<T>(std::lround(d));
      }
    }
    q[c * stride_ + dst] = qi;
    v[c * stride_ + dst] = valid ? T{1} : T{0};
  }
}

void QuantizedPack::rebuild(const PackedSpan& s, std::uint64_t first_metre,
                            QuantBits bits, std::size_t slack) {
  bits_ = bits;
  channels_ = s.channels;
  const std::size_t want = s.metres + slack;
  stride_ = want + std::max<std::size_t>(64, want / 4);
  base_ = 0;
  first_metre_ = first_metre;
  metres_ = s.metres;

  // Grid: midpoint offset, half-range + 25% headroom + 0.5 dB margin so
  // steady-state appends stay on the grid (and step can never be 0).
  float lo = 0.0f;
  float hi = 0.0f;
  bool any = false;
  for (std::size_t c = 0; c < s.channels; ++c) {
    const float* x = s.x + c * s.stride;
    const float* v = s.v + c * s.stride;
    for (std::size_t i = 0; i < s.metres; ++i) {
      if (v[i] == 0.0f || !std::isfinite(x[i])) continue;
      if (!any) {
        lo = hi = x[i];
        any = true;
      } else {
        lo = std::min(lo, x[i]);
        hi = std::max(hi, x[i]);
      }
    }
  }
  const int qmax = qmax_for(bits);
  if (any) {
    params_.offset =
        (static_cast<double>(lo) + static_cast<double>(hi)) * 0.5;
    const double half =
        (static_cast<double>(hi) - static_cast<double>(lo)) * 0.5;
    params_.step = (half * 1.25 + 0.5) / static_cast<double>(qmax);
  } else {
    params_ = {};
  }

  if (bits == QuantBits::kInt8) {
    q16_.clear();
    v16_.clear();
    q8_.assign(channels_ * stride_, 0);
    v8_.assign(channels_ * stride_, 0);
    for (std::size_t i = 0; i < metres_; ++i) {
      quantize_column(s, i, qmax, q8_, v8_);
    }
  } else {
    q8_.clear();
    v8_.clear();
    q16_.assign(channels_ * stride_, 0);
    v16_.assign(channels_ * stride_, 0);
    for (std::size_t i = 0; i < metres_; ++i) {
      quantize_column(s, i, qmax, q16_, v16_);
    }
  }
}

void QuantizedPack::build(const PackedSpan& s, QuantBits bits) {
  rebuild(s, 0, bits, 0);
  synced_shape_ = false;
}

bool QuantizedPack::mirrors(const PackedContext& pack,
                            QuantBits bits) const noexcept {
  return synced_shape_ && bits_ == bits && channels_ == pack.channels() &&
         metres_ == pack.size() &&
         (pack.empty() || first_metre_ == pack.first_metre());
}

bool QuantizedPack::tail_in_range(const PackedSpan& s, std::size_t from,
                                  std::size_t to) const noexcept {
  // Values past the grid edge would clamp — round-trip error is then
  // unbounded, so the caller must requantize with fresh params instead.
  const double reach =
      params_.step * (static_cast<double>(qmax_for(bits_)) + 0.5);
  for (std::size_t c = 0; c < channels_; ++c) {
    const float* x = s.x + c * s.stride;
    const float* v = s.v + c * s.stride;
    for (std::size_t i = from; i < to; ++i) {
      if (v[i] == 0.0f || !std::isfinite(x[i])) continue;
      if (std::fabs(static_cast<double>(x[i]) - params_.offset) >= reach) {
        return false;
      }
    }
  }
  return true;
}

void QuantizedPack::compact() noexcept {
  if (base_ == 0) return;
  const auto move = [&](auto& buf) {
    if (buf.empty()) return;
    using Elem = typename std::remove_reference_t<decltype(buf)>::value_type;
    for (std::size_t c = 0; c < channels_; ++c) {
      std::memmove(buf.data() + c * stride_,
                   buf.data() + c * stride_ + base_, metres_ * sizeof(Elem));
    }
  };
  move(q16_);
  move(v16_);
  move(q8_);
  move(v8_);
  base_ = 0;
}

std::size_t QuantizedPack::sync(const PackedContext& pack, QuantBits bits,
                                std::size_t volatile_suffix_m) {
  const PackedSpan s = pack.span();
  if (pack.empty()) {
    bits_ = bits;
    channels_ = pack.channels();
    clear();
    synced_shape_ = true;
    return 0;
  }
  const std::uint64_t t_first = pack.first_metre();
  const std::uint64_t t_end = t_first + s.metres;
  const std::uint64_t packed_end = first_metre_ + metres_;

  const bool incremental =
      synced_shape_ && bits_ == bits && metres_ != 0 &&
      channels_ == s.channels && t_first >= first_metre_ &&
      t_first <= packed_end && t_end >= packed_end && s.metres <= stride_;
  if (!incremental) {
    rebuild(s, t_first, bits, 0);
    synced_shape_ = true;
    return metres_;
  }

  const auto evicted = static_cast<std::size_t>(t_first - first_metre_);
  base_ += evicted;
  metres_ -= evicted;
  first_metre_ = t_first;
  if (base_ + s.metres > stride_) compact();

  const std::size_t keep =
      metres_ > volatile_suffix_m ? metres_ - volatile_suffix_m : 0;
  metres_ = s.metres;
  if (!tail_in_range(s, keep, metres_)) {
    rebuild(s, t_first, bits, 0);
    return metres_;
  }
  const int qmax = qmax_for(bits_);
  if (bits_ == QuantBits::kInt8) {
    for (std::size_t i = keep; i < metres_; ++i) {
      quantize_column(s, i, qmax, q8_, v8_);
    }
  } else {
    for (std::size_t i = keep; i < metres_; ++i) {
      quantize_column(s, i, qmax, q16_, v16_);
    }
  }
  return metres_ - keep;
}

// ---------------------------------------------------------------------------
// Integer window kernels. Two families, both computing the same six exact
// moment sums per (channel, lag) over the window:
//   n   = Σ fv·sv        sx  = Σ (fq·sv)       sy  = Σ (sq·fv)
//   sxx = Σ (fq·sv)·fq   syy = Σ (sq·fv)·sq    sxy = Σ fq·sq
// (fq/sq are pre-masked — 0 where invalid — so every product already runs
// over the jointly-valid metres.) Results are written SUM-MAJOR,
// sums[j * kLagBlock + b], so the double epilogue walks each sum with unit
// stride across lags and auto-vectorizes.
//
//   * lag_pass_*: the GEMM-shaped path for kLagBlock CONSECUTIVE lags.
//     vpmaddwd consumes metre PAIRS: broadcast the fixed pair
//     (fq[i], fq[i+1]) across dword lanes and load the sliding operand at
//     two byte-staggered offsets, so even lags accumulate in one half of
//     the register and odd lags in the other — each dword lane IS one
//     lag's running sum, and the pass ends with plain (deinterleaving)
//     stores instead of six horizontal reductions per lag. This is where
//     the quantized speedup over the float kernel comes from.
//   * channel_pass_*: the along-window path for strided grids (lag step
//     > 1, where adjacent lags share no bytes) and short remainders; it
//     vectorizes one lag's window reduction and reduces horizontally.
//
// Every variant accumulates identical integers: with window <=
// kQuantMaxWindowM and |q| <= kQuantMax16 every sum fits int32
// (DESIGN §15), so chunk shape, ISA and path choice can never change a
// score bit.
// ---------------------------------------------------------------------------

namespace {

/// Six sums for `count` lags at lag stride `step`, written sum-major:
/// sums[j * kLagBlock + b] for j in (n, sx, sy, sxx, syy, sxy).
template <typename T>
void channel_pass_generic(const T* fq, const T* fv, const T* sq0,
                          const T* sv0, std::size_t step, std::size_t count,
                          std::size_t window, std::int32_t* sums) {
  for (std::size_t b = 0; b < count; ++b) {
    const T* sq = sq0 + b * step;
    const T* sv = sv0 + b * step;
    std::int32_t n = 0, sx = 0, sy = 0, sxx = 0, syy = 0, sxy = 0;
    for (std::size_t i = 0; i < window; ++i) {
      const std::int32_t mf = static_cast<std::int32_t>(fq[i]) * sv[i];
      const std::int32_t ms = static_cast<std::int32_t>(sq[i]) * fv[i];
      n += static_cast<std::int32_t>(fv[i]) * sv[i];
      sx += mf;
      sy += ms;
      sxx += mf * fq[i];
      syy += ms * sq[i];
      sxy += mf * sq[i];
    }
    sums[0 * kLagBlock + b] = n;
    sums[1 * kLagBlock + b] = sx;
    sums[2 * kLagBlock + b] = sy;
    sums[3 * kLagBlock + b] = sxx;
    sums[4 * kLagBlock + b] = syy;
    sums[5 * kLagBlock + b] = sxy;
  }
}

/// kLagBlock consecutive lags, generic fallback for the GEMM-shaped path.
template <typename T>
void lag_pass_generic(const T* fq, const T* fv, const T* sq0, const T* sv0,
                      std::size_t window, std::int32_t* sums) {
  channel_pass_generic(fq, fv, sq0, sv0, 1, kLagBlock, window, sums);
}

/// Folds one (odd, final) window metre into all kLagBlock lag sums —
/// scalar and exact, so splitting it off the vector pair loop can never
/// change the totals.
template <typename T>
inline void lag_tail_metre(const T* fq, const T* fv, const T* sq0,
                           const T* sv0, std::size_t i, std::int32_t* sums) {
  for (std::size_t b = 0; b < kLagBlock; ++b) {
    const std::int32_t mf = static_cast<std::int32_t>(fq[i]) * sv0[b + i];
    const std::int32_t ms = static_cast<std::int32_t>(sq0[b + i]) * fv[i];
    sums[0 * kLagBlock + b] += static_cast<std::int32_t>(fv[i]) * sv0[b + i];
    sums[1 * kLagBlock + b] += mf;
    sums[2 * kLagBlock + b] += ms;
    sums[3 * kLagBlock + b] += mf * fq[i];
    sums[4 * kLagBlock + b] += ms * sq0[b + i];
    sums[5 * kLagBlock + b] += mf * sq0[b + i];
  }
}

/// The fixed metre pair (p[0], p[1]) packed little-endian into one dword,
/// ready for vpbroadcastd (the int8 overload widens to int16 first).
inline std::int32_t pack_pair(const std::int16_t* p) {
  std::int32_t d;
  std::memcpy(&d, p, sizeof(d));
  return d;
}
inline std::int32_t pack_pair(const std::int8_t* p) {
  const auto lo = static_cast<std::uint16_t>(static_cast<std::int16_t>(p[0]));
  return static_cast<std::int32_t>(lo) |
         (static_cast<std::int32_t>(p[1]) << 16);
}

#if defined(__x86_64__) && defined(__GNUC__)

// GCC 12 reports a spurious -Wmaybe-uninitialized from the masked/unaligned
// AVX-512 load intrinsics' internal temporary (GCC PR105593), and a
// spurious -Wuninitialized for _mm512_castsi256_si512's intentionally
// undefined upper half (immediately overwritten by inserti64x4); the code
// is pure loads into fresh __m512i values.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#pragma GCC diagnostic ignored "-Wuninitialized"

/// Scalar remainder shared by the along-window SIMD variants: integer
/// addition is associative, so folding the tail into the vector totals
/// afterwards is exact — the split point never changes the sums. Adds into
/// lag b's sum-major slots.
template <typename T>
inline void scalar_tail(const T* fq, const T* fv, const T* sq, const T* sv,
                        std::size_t from, std::size_t window,
                        std::int32_t* sums, std::size_t b) {
  for (std::size_t i = from; i < window; ++i) {
    const std::int32_t mf = static_cast<std::int32_t>(fq[i]) * sv[i];
    const std::int32_t ms = static_cast<std::int32_t>(sq[i]) * fv[i];
    sums[0 * kLagBlock + b] += static_cast<std::int32_t>(fv[i]) * sv[i];
    sums[1 * kLagBlock + b] += mf;
    sums[2 * kLagBlock + b] += ms;
    sums[3 * kLagBlock + b] += mf * fq[i];
    sums[4 * kLagBlock + b] += ms * sq[i];
    sums[5 * kLagBlock + b] += mf * sq[i];
  }
}

__attribute__((target("avx2"))) inline std::int32_t hsum_epi32(__m256i v) {
  const __m128i s =
      _mm_add_epi32(_mm256_castsi256_si128(v), _mm256_extracti128_si256(v, 1));
  const __m128i s2 =
      _mm_add_epi32(s, _mm_shuffle_epi32(s, _MM_SHUFFLE(1, 0, 3, 2)));
  const __m128i s3 =
      _mm_add_epi32(s2, _mm_shuffle_epi32(s2, _MM_SHUFFLE(2, 3, 0, 1)));
  return _mm_cvtsi128_si32(s3);
}

/// One 16-wide int16 step of the six-sum accumulation (AVX2). The same
/// formulas serve both kernel families: along the window the int16 lanes
/// are metres of ONE lag (reduced horizontally afterwards), across lags
/// each dword lane is a metre PAIR of ONE lag (vpmaddwd's pairwise add IS
/// the window reduction).
#define RUPS_QUANT_STEP_256(vfq, vfv, vsq, vsv)                         \
  do {                                                                  \
    const __m256i mf = _mm256_mullo_epi16(vfq, vsv);                    \
    const __m256i ms = _mm256_mullo_epi16(vsq, vfv);                    \
    an = _mm256_add_epi32(an, _mm256_madd_epi16(vfv, vsv));             \
    asx = _mm256_add_epi32(asx, _mm256_madd_epi16(vfq, vsv));           \
    asy = _mm256_add_epi32(asy, _mm256_madd_epi16(vsq, vfv));           \
    asxx = _mm256_add_epi32(asxx, _mm256_madd_epi16(mf, vfq));          \
    asyy = _mm256_add_epi32(asyy, _mm256_madd_epi16(ms, vsq));          \
    asxy = _mm256_add_epi32(asxy, _mm256_madd_epi16(vfq, vsq));         \
  } while (0)

__attribute__((target("avx2"), noinline)) void channel_pass_avx2_i16(
    const std::int16_t* fq, const std::int16_t* fv, const std::int16_t* sq0,
    const std::int16_t* sv0, std::size_t step, std::size_t count,
    std::size_t window, std::int32_t* sums) {
  for (std::size_t b = 0; b < count; ++b) {
    const std::int16_t* sq = sq0 + b * step;
    const std::int16_t* sv = sv0 + b * step;
    __m256i an = _mm256_setzero_si256(), asx = an, asy = an, asxx = an,
            asyy = an, asxy = an;
    std::size_t i = 0;
    for (; i + 16 <= window; i += 16) {
      const __m256i vfq =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(fq + i));
      const __m256i vfv =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(fv + i));
      const __m256i vsq =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(sq + i));
      const __m256i vsv =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(sv + i));
      RUPS_QUANT_STEP_256(vfq, vfv, vsq, vsv);
    }
    sums[0 * kLagBlock + b] = hsum_epi32(an);
    sums[1 * kLagBlock + b] = hsum_epi32(asx);
    sums[2 * kLagBlock + b] = hsum_epi32(asy);
    sums[3 * kLagBlock + b] = hsum_epi32(asxx);
    sums[4 * kLagBlock + b] = hsum_epi32(asyy);
    sums[5 * kLagBlock + b] = hsum_epi32(asxy);
    scalar_tail(fq, fv, sq, sv, i, window, sums, b);
  }
}

__attribute__((target("avx2"), noinline)) void channel_pass_avx2_i8(
    const std::int8_t* fq, const std::int8_t* fv, const std::int8_t* sq0,
    const std::int8_t* sv0, std::size_t step, std::size_t count,
    std::size_t window, std::int32_t* sums) {
  for (std::size_t b = 0; b < count; ++b) {
    const std::int8_t* sq = sq0 + b * step;
    const std::int8_t* sv = sv0 + b * step;
    __m256i an = _mm256_setzero_si256(), asx = an, asy = an, asxx = an,
            asyy = an, asxy = an;
    std::size_t i = 0;
    for (; i + 16 <= window; i += 16) {
      const __m256i vfq = _mm256_cvtepi8_epi16(
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(fq + i)));
      const __m256i vfv = _mm256_cvtepi8_epi16(
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(fv + i)));
      const __m256i vsq = _mm256_cvtepi8_epi16(
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(sq + i)));
      const __m256i vsv = _mm256_cvtepi8_epi16(
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(sv + i)));
      RUPS_QUANT_STEP_256(vfq, vfv, vsq, vsv);
    }
    sums[0 * kLagBlock + b] = hsum_epi32(an);
    sums[1 * kLagBlock + b] = hsum_epi32(asx);
    sums[2 * kLagBlock + b] = hsum_epi32(asy);
    sums[3 * kLagBlock + b] = hsum_epi32(asxx);
    sums[4 * kLagBlock + b] = hsum_epi32(asyy);
    sums[5 * kLagBlock + b] = hsum_epi32(asxy);
    scalar_tail(fq, fv, sq, sv, i, window, sums, b);
  }
}

/// Stores one accumulator's 8 even- or odd-parity lags into their
/// interleaved sum-major slots.
#define RUPS_LAG_SCATTER_256(acc, j)                                    \
  do {                                                                  \
    alignas(32) std::int32_t t[8];                                      \
    _mm256_store_si256(reinterpret_cast<__m256i*>(t), (acc));           \
    for (std::size_t g = 0; g < 8; ++g) {                               \
      sums[(j) * kLagBlock + parity + 2 * g] = t[g];                    \
    }                                                                   \
  } while (0)

/// GEMM-shaped pass, AVX2, one parity: the 8 lags parity, parity+2, ...,
/// parity+14 of a 16-lag block live in the dword lanes of ymm
/// accumulators; each vpmaddwd consumes the window metre pair (i, i+1).
/// Split by parity because consecutive lags sit 2 bytes apart while dword
/// lanes step 4 — the odd lags are the same loads shifted one element.
__attribute__((target("avx2"), noinline)) void lag_parity_avx2_i16(
    const std::int16_t* fq, const std::int16_t* fv, const std::int16_t* sq0,
    const std::int16_t* sv0, std::size_t window, std::int32_t* sums,
    std::size_t parity) {
  const std::int16_t* sq = sq0 + parity;
  const std::int16_t* sv = sv0 + parity;
  __m256i an = _mm256_setzero_si256(), asx = an, asy = an, asxx = an,
          asyy = an, asxy = an;
  for (std::size_t i = 0; i + 1 < window; i += 2) {
    const __m256i vfq = _mm256_set1_epi32(pack_pair(fq + i));
    const __m256i vfv = _mm256_set1_epi32(pack_pair(fv + i));
    const __m256i vsq =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(sq + i));
    const __m256i vsv =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(sv + i));
    RUPS_QUANT_STEP_256(vfq, vfv, vsq, vsv);
  }
  RUPS_LAG_SCATTER_256(an, 0);
  RUPS_LAG_SCATTER_256(asx, 1);
  RUPS_LAG_SCATTER_256(asy, 2);
  RUPS_LAG_SCATTER_256(asxx, 3);
  RUPS_LAG_SCATTER_256(asyy, 4);
  RUPS_LAG_SCATTER_256(asxy, 5);
}

__attribute__((target("avx2"), noinline)) void lag_parity_avx2_i8(
    const std::int8_t* fq, const std::int8_t* fv, const std::int8_t* sq0,
    const std::int8_t* sv0, std::size_t window, std::int32_t* sums,
    std::size_t parity) {
  const std::int8_t* sq = sq0 + parity;
  const std::int8_t* sv = sv0 + parity;
  __m256i an = _mm256_setzero_si256(), asx = an, asy = an, asxx = an,
          asyy = an, asxy = an;
  for (std::size_t i = 0; i + 1 < window; i += 2) {
    const __m256i vfq = _mm256_set1_epi32(pack_pair(fq + i));
    const __m256i vfv = _mm256_set1_epi32(pack_pair(fv + i));
    const __m256i vsq = _mm256_cvtepi8_epi16(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(sq + i)));
    const __m256i vsv = _mm256_cvtepi8_epi16(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(sv + i)));
    RUPS_QUANT_STEP_256(vfq, vfv, vsq, vsv);
  }
  RUPS_LAG_SCATTER_256(an, 0);
  RUPS_LAG_SCATTER_256(asx, 1);
  RUPS_LAG_SCATTER_256(asy, 2);
  RUPS_LAG_SCATTER_256(asxx, 3);
  RUPS_LAG_SCATTER_256(asyy, 4);
  RUPS_LAG_SCATTER_256(asxy, 5);
}

#undef RUPS_LAG_SCATTER_256

void lag_pass_avx2_i16(const std::int16_t* fq, const std::int16_t* fv,
                       const std::int16_t* sq0, const std::int16_t* sv0,
                       std::size_t window, std::int32_t* sums) {
  lag_parity_avx2_i16(fq, fv, sq0, sv0, window, sums, 0);
  lag_parity_avx2_i16(fq, fv, sq0, sv0, window, sums, 1);
  if (window & 1) lag_tail_metre(fq, fv, sq0, sv0, window - 1, sums);
}

void lag_pass_avx2_i8(const std::int8_t* fq, const std::int8_t* fv,
                      const std::int8_t* sq0, const std::int8_t* sv0,
                      std::size_t window, std::int32_t* sums) {
  lag_parity_avx2_i8(fq, fv, sq0, sv0, window, sums, 0);
  lag_parity_avx2_i8(fq, fv, sq0, sv0, window, sums, 1);
  if (window & 1) lag_tail_metre(fq, fv, sq0, sv0, window - 1, sums);
}

#undef RUPS_QUANT_STEP_256

/// One 32-wide int16 step of the six-sum accumulation (AVX-512BW); same
/// dual-use formulas as the 256-bit step.
#define RUPS_QUANT_STEP_512(vfq, vfv, vsq, vsv)                         \
  do {                                                                  \
    const __m512i mf = _mm512_mullo_epi16(vfq, vsv);                    \
    const __m512i ms = _mm512_mullo_epi16(vsq, vfv);                    \
    an = _mm512_add_epi32(an, _mm512_madd_epi16(vfv, vsv));             \
    asx = _mm512_add_epi32(asx, _mm512_madd_epi16(vfq, vsv));           \
    asy = _mm512_add_epi32(asy, _mm512_madd_epi16(vsq, vfv));           \
    asxx = _mm512_add_epi32(asxx, _mm512_madd_epi16(mf, vfq));          \
    asyy = _mm512_add_epi32(asyy, _mm512_madd_epi16(ms, vsq));          \
    asxy = _mm512_add_epi32(asxy, _mm512_madd_epi16(vfq, vsq));         \
  } while (0)

__attribute__((target("avx512bw"), noinline)) void channel_pass_512_i16(
    const std::int16_t* fq, const std::int16_t* fv, const std::int16_t* sq0,
    const std::int16_t* sv0, std::size_t step, std::size_t count,
    std::size_t window, std::int32_t* sums) {
  for (std::size_t b = 0; b < count; ++b) {
    const std::int16_t* sq = sq0 + b * step;
    const std::int16_t* sv = sv0 + b * step;
    __m512i an = _mm512_setzero_si512(), asx = an, asy = an, asxx = an,
            asyy = an, asxy = an;
    std::size_t i = 0;
    for (; i + 32 <= window; i += 32) {
      const __m512i vfq = _mm512_loadu_si512(fq + i);
      const __m512i vfv = _mm512_loadu_si512(fv + i);
      const __m512i vsq = _mm512_loadu_si512(sq + i);
      const __m512i vsv = _mm512_loadu_si512(sv + i);
      RUPS_QUANT_STEP_512(vfq, vfv, vsq, vsv);
    }
    if (i < window) {
      // Masked-out lanes load 0 and contribute 0 to every sum, so one
      // masked step finishes the window exactly. window - i is in [1,31]
      // so the shift below never hits the UB width.
      const __mmask32 k =
          (static_cast<__mmask32>(1) << (window - i)) - 1;
      const __m512i vfq = _mm512_maskz_loadu_epi16(k, fq + i);
      const __m512i vfv = _mm512_maskz_loadu_epi16(k, fv + i);
      const __m512i vsq = _mm512_maskz_loadu_epi16(k, sq + i);
      const __m512i vsv = _mm512_maskz_loadu_epi16(k, sv + i);
      RUPS_QUANT_STEP_512(vfq, vfv, vsq, vsv);
    }
    sums[0 * kLagBlock + b] = _mm512_reduce_add_epi32(an);
    sums[1 * kLagBlock + b] = _mm512_reduce_add_epi32(asx);
    sums[2 * kLagBlock + b] = _mm512_reduce_add_epi32(asy);
    sums[3 * kLagBlock + b] = _mm512_reduce_add_epi32(asxx);
    sums[4 * kLagBlock + b] = _mm512_reduce_add_epi32(asyy);
    sums[5 * kLagBlock + b] = _mm512_reduce_add_epi32(asxy);
  }
}

__attribute__((target("avx512bw"), noinline)) void channel_pass_512_i8(
    const std::int8_t* fq, const std::int8_t* fv, const std::int8_t* sq0,
    const std::int8_t* sv0, std::size_t step, std::size_t count,
    std::size_t window, std::int32_t* sums) {
// Widening 32-byte load; a macro because lambdas would not inherit the
// enclosing function's target attribute.
#define RUPS_LOAD32_I8(p)    \
  _mm512_cvtepi8_epi16(      \
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p)))
#define RUPS_LOADT_I8(p)     \
  _mm512_cvtepi8_epi16(      \
      _mm512_castsi512_si256(_mm512_maskz_loadu_epi8(k, (p))))
  for (std::size_t b = 0; b < count; ++b) {
    const std::int8_t* sq = sq0 + b * step;
    const std::int8_t* sv = sv0 + b * step;
    __m512i an = _mm512_setzero_si512(), asx = an, asy = an, asxx = an,
            asyy = an, asxy = an;
    std::size_t i = 0;
    for (; i + 32 <= window; i += 32) {
      const __m512i vfq = RUPS_LOAD32_I8(fq + i);
      const __m512i vfv = RUPS_LOAD32_I8(fv + i);
      const __m512i vsq = RUPS_LOAD32_I8(sq + i);
      const __m512i vsv = RUPS_LOAD32_I8(sv + i);
      RUPS_QUANT_STEP_512(vfq, vfv, vsq, vsv);
    }
    if (i < window) {
      // 64-lane byte-masked load (plain AVX-512BW), widened from its low
      // half; window - i <= 31 keeps the mask inside those 32 bytes.
      const __mmask64 k =
          (static_cast<__mmask64>(1) << (window - i)) - 1;
      const __m512i vfq = RUPS_LOADT_I8(fq + i);
      const __m512i vfv = RUPS_LOADT_I8(fv + i);
      const __m512i vsq = RUPS_LOADT_I8(sq + i);
      const __m512i vsv = RUPS_LOADT_I8(sv + i);
      RUPS_QUANT_STEP_512(vfq, vfv, vsq, vsv);
    }
    sums[0 * kLagBlock + b] = _mm512_reduce_add_epi32(an);
    sums[1 * kLagBlock + b] = _mm512_reduce_add_epi32(asx);
    sums[2 * kLagBlock + b] = _mm512_reduce_add_epi32(asy);
    sums[3 * kLagBlock + b] = _mm512_reduce_add_epi32(asxx);
    sums[4 * kLagBlock + b] = _mm512_reduce_add_epi32(asyy);
    sums[5 * kLagBlock + b] = _mm512_reduce_add_epi32(asxy);
  }
}

#undef RUPS_LOAD32_I8
#undef RUPS_LOADT_I8

/// Byte-staggered even/odd load for the GEMM-shaped pass: even lags' metre
/// pairs in the low ymm half (loads at pair base i), odd lags' in the high
/// half (same loads shifted one element). The int8 variant widens each
/// half to int16 on the way in.
#define RUPS_LAG_EO_I16(p)                                                  \
  _mm512_inserti64x4(                                                       \
      _mm512_castsi256_si512(                                               \
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p))),         \
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>((p) + 1)), 1)
#define RUPS_LAG_EO_I8(p)                                                   \
  _mm512_inserti64x4(                                                       \
      _mm512_castsi256_si512(_mm256_cvtepi8_epi16(_mm_loadu_si128(          \
          reinterpret_cast<const __m128i*>(p)))),                           \
      _mm256_cvtepi8_epi16(                                                 \
          _mm_loadu_si128(reinterpret_cast<const __m128i*>((p) + 1))),      \
      1)

/// Deinterleaving store: dword lane g of an accumulator is lag 2g (g < 8)
/// or lag 2(g-8)+1, so one permute puts the block in lag order.
#define RUPS_LAG_STORE_512(acc, j)                                          \
  _mm512_storeu_si512(sums + (j) * kLagBlock,                               \
                      _mm512_permutexvar_epi32(deint, acc))

/// GEMM-shaped pass, AVX-512BW: all 16 consecutive lags of a block in one
/// zmm accumulator set — even lags in lanes 0-7, odd lags in lanes 8-15 —
/// so the whole block costs one fused pair loop and six stores, with no
/// horizontal reductions anywhere.
__attribute__((target("avx512bw"), noinline)) void lag_pass_512_i16(
    const std::int16_t* fq, const std::int16_t* fv, const std::int16_t* sq0,
    const std::int16_t* sv0, std::size_t window, std::int32_t* sums) {
  __m512i an = _mm512_setzero_si512(), asx = an, asy = an, asxx = an,
          asyy = an, asxy = an;
  std::size_t i = 0;
  for (; i + 1 < window; i += 2) {
    const __m512i vfq = _mm512_set1_epi32(pack_pair(fq + i));
    const __m512i vfv = _mm512_set1_epi32(pack_pair(fv + i));
    const __m512i vsq = RUPS_LAG_EO_I16(sq0 + i);
    const __m512i vsv = RUPS_LAG_EO_I16(sv0 + i);
    RUPS_QUANT_STEP_512(vfq, vfv, vsq, vsv);
  }
  const __m512i deint = _mm512_set_epi32(15, 7, 14, 6, 13, 5, 12, 4, 11, 3,
                                         10, 2, 9, 1, 8, 0);
  RUPS_LAG_STORE_512(an, 0);
  RUPS_LAG_STORE_512(asx, 1);
  RUPS_LAG_STORE_512(asy, 2);
  RUPS_LAG_STORE_512(asxx, 3);
  RUPS_LAG_STORE_512(asyy, 4);
  RUPS_LAG_STORE_512(asxy, 5);
  if (i < window) lag_tail_metre(fq, fv, sq0, sv0, i, sums);
}

__attribute__((target("avx512bw"), noinline)) void lag_pass_512_i8(
    const std::int8_t* fq, const std::int8_t* fv, const std::int8_t* sq0,
    const std::int8_t* sv0, std::size_t window, std::int32_t* sums) {
  __m512i an = _mm512_setzero_si512(), asx = an, asy = an, asxx = an,
          asyy = an, asxy = an;
  std::size_t i = 0;
  for (; i + 1 < window; i += 2) {
    const __m512i vfq = _mm512_set1_epi32(pack_pair(fq + i));
    const __m512i vfv = _mm512_set1_epi32(pack_pair(fv + i));
    const __m512i vsq = RUPS_LAG_EO_I8(sq0 + i);
    const __m512i vsv = RUPS_LAG_EO_I8(sv0 + i);
    RUPS_QUANT_STEP_512(vfq, vfv, vsq, vsv);
  }
  const __m512i deint = _mm512_set_epi32(15, 7, 14, 6, 13, 5, 12, 4, 11, 3,
                                         10, 2, 9, 1, 8, 0);
  RUPS_LAG_STORE_512(an, 0);
  RUPS_LAG_STORE_512(asx, 1);
  RUPS_LAG_STORE_512(asy, 2);
  RUPS_LAG_STORE_512(asxx, 3);
  RUPS_LAG_STORE_512(asyy, 4);
  RUPS_LAG_STORE_512(asxy, 5);
  if (i < window) lag_tail_metre(fq, fv, sq0, sv0, i, sums);
}

#undef RUPS_LAG_STORE_512
#undef RUPS_LAG_EO_I16
#undef RUPS_LAG_EO_I8
#undef RUPS_QUANT_STEP_512

#pragma GCC diagnostic pop

#endif  // __x86_64__ && __GNUC__

/// Runtime ISA pick, resolved once per family. Dispatch cannot affect
/// results — all variants compute identical integer sums — so it is a
/// pure speed knob.
template <typename T>
using ChannelPassFn = void (*)(const T*, const T*, const T*, const T*,
                               std::size_t, std::size_t, std::size_t,
                               std::int32_t*);
template <typename T>
using LagPassFn = void (*)(const T*, const T*, const T*, const T*,
                           std::size_t, std::int32_t*);

template <typename T>
ChannelPassFn<T> resolve_channel_pass() {
#if defined(__x86_64__) && defined(__GNUC__)
  if (__builtin_cpu_supports("avx512bw")) {
    if constexpr (std::is_same_v<T, std::int16_t>) return channel_pass_512_i16;
    else return channel_pass_512_i8;
  }
  if (__builtin_cpu_supports("avx2")) {
    if constexpr (std::is_same_v<T, std::int16_t>) return channel_pass_avx2_i16;
    else return channel_pass_avx2_i8;
  }
#endif
  return channel_pass_generic<T>;
}

template <typename T>
ChannelPassFn<T> channel_pass() {
  static const ChannelPassFn<T> fn = resolve_channel_pass<T>();
  return fn;
}

template <typename T>
LagPassFn<T> resolve_lag_pass() {
#if defined(__x86_64__) && defined(__GNUC__)
  if (__builtin_cpu_supports("avx512bw")) {
    if constexpr (std::is_same_v<T, std::int16_t>) return lag_pass_512_i16;
    else return lag_pass_512_i8;
  }
  if (__builtin_cpu_supports("avx2")) {
    if constexpr (std::is_same_v<T, std::int16_t>) return lag_pass_avx2_i16;
    else return lag_pass_avx2_i8;
  }
#endif
  return lag_pass_generic<T>;
}

template <typename T>
LagPassFn<T> lag_pass() {
  static const LagPassFn<T> fn = resolve_lag_pass<T>();
  return fn;
}

/// Per-lag double accumulators threaded through the channel loop; one
/// instance per chunk, folded by quant_lane_accum once per channel.
struct QuantLaneAcc {
  double channel_corr_sum[kLagBlock];
  std::size_t channels_used[kLagBlock];
  double pn[kLagBlock], psx[kLagBlock], psy[kLagBlock];
  double psxx[kLagBlock], psyy[kLagBlock], psxy[kLagBlock];
};

// Same clone discipline as packed.cpp: the attribute must sit on a
// concrete (non-template) function, an ifunc resolver picks one clone at
// load time, and every clone evaluates identical per-lane IEEE semantics —
// so dispatch is a pure speed knob, never a value knob. Dropped under
// TSan for the same reason as packed.cpp (resolvers outrun the runtime).
#if defined(__x86_64__) && defined(__GNUC__) && !defined(__clang__) && \
    !defined(__SANITIZE_THREAD__)
#define RUPS_QUANT_CLONES \
  __attribute__((target_clones("default", "avx2", "arch=x86-64-v4")))
#else
#define RUPS_QUANT_CLONES
#endif

/// Branchless per-lane epilogue fold: one channel's integer moment sums
/// (sum-major, 6 x kLagBlock) into the chunk accumulators. Extracted from
/// quant_chunk so it is T-independent, can carry target_clones (AVX2 /
/// AVX-512 width instead of baseline SSE2), and so the `omp simd` pragma
/// plus -fno-trapping-math if-convert the selects into masked packed
/// div/sqrt. Lanes are independent and packed IEEE ops are bit-identical
/// to their scalar forms, so neither the clone picked nor the vector width
/// can diverge from a scalar evaluation of the same source.
RUPS_QUANT_CLONES __attribute__((noinline)) void quant_lane_accum(
    const std::int32_t* sums, std::size_t count, std::int64_t min_overlap,
    double sf, double ss, QuantLaneAcc& acc) {
  // One reciprocal replaces the three per-lane divides; bitwise & and
  // select-clamp instead of && / std::clamp keep the body branch-free.
  // Both are legal because the quantized epilogue defines its own
  // deterministic rounding — it only has to match itself across paths,
  // the float comparison is bounded, not bitwise.
#pragma omp simd
  for (std::size_t b = 0; b < count; ++b) {
    const std::int32_t sn = sums[0 * kLagBlock + b];
    const bool use = sn >= min_overlap;
    const double inv = 1.0 / (use ? static_cast<double>(sn) : 1.0);
    const double dsx = static_cast<double>(sums[1 * kLagBlock + b]);
    const double dsy = static_cast<double>(sums[2 * kLagBlock + b]);
    const double vx =
        (static_cast<double>(sums[3 * kLagBlock + b]) - dsx * dsx * inv) *
        (sf * sf);
    const double vy =
        (static_cast<double>(sums[4 * kLagBlock + b]) - dsy * dsy * inv) *
        (ss * ss);
    const double cov =
        (static_cast<double>(sums[5 * kLagBlock + b]) - dsx * dsy * inv) *
        (sf * ss);
    const bool informative = use & (vx > 1e-2) & (vy > 1e-2);
    double r = cov / std::sqrt(vx * vy);
    r = r < -1.0 ? -1.0 : r;
    r = r > 1.0 ? 1.0 : r;
    acc.channel_corr_sum[b] += informative ? r : 0.0;
    acc.channels_used[b] += use ? 1u : 0u;
    // Profile means deliberately OMIT the affine offsets: Pearson across
    // channels is invariant under a per-series constant shift, so leaving
    // the offsets out changes nothing mathematically while making the
    // score a function of (q, step) alone — a fleet-wide dBm shift that
    // lands exactly on the float grid then reproduces bit-identical
    // scores, and the centered sums cancel less (means sit in [0, range]
    // instead of around the raw offset).
    const double ma = (dsx * inv) * sf;
    const double mb = (dsy * inv) * ss;
    acc.pn[b] += use ? 1.0 : 0.0;
    acc.psx[b] += use ? ma : 0.0;
    acc.psy[b] += use ? mb : 0.0;
    acc.psxx[b] += use ? ma * ma : 0.0;
    acc.psyy[b] += use ? mb * mb : 0.0;
    acc.psxy[b] += use ? ma * mb : 0.0;
  }
}

#undef RUPS_QUANT_CLONES

/// Scores one chunk of `count` <= kLagBlock lags. Structure mirrors the
/// float lag_block_body: integer moment sums per (channel, lag), then the
/// same branchless-select epilogue — overlap (`use`) and min_channels
/// decisions are exact integer counts identical to the float path's on the
/// same masks; the variance guard compares DEQUANTIZED variances against
/// the same 1e-2 dB² threshold. Chunk shape cannot change results (exact
/// sums), so overlapping or splitting blocks is always safe.
template <typename T>
void quant_chunk(const QuantViewT<T>& fixed, std::size_t fixed_start,
                 const QuantViewT<T>& sliding, std::size_t pos0,
                 std::size_t step, std::size_t count, std::size_t window,
                 const TrajectoryCorrelationConfig& config, double* out) {
  QuantLaneAcc acc{};
  const auto min_overlap =
      static_cast<std::int64_t>(config.min_channel_overlap);
  const double sf = fixed.span.params.step;
  const double ss = sliding.span.params.step;
  std::int32_t sums[6 * kLagBlock];
  // Full stride-1 blocks take the GEMM-shaped lag pass; strided grids and
  // short remainders take the along-window pass. Both produce identical
  // integer sums, so the route is timing-only.
  const bool contiguous = step == 1 && count == kLagBlock;
  const LagPassFn<T> lpass = contiguous ? lag_pass<T>() : nullptr;
  const ChannelPassFn<T> cpass = contiguous ? nullptr : channel_pass<T>();

  const std::size_t k = std::min(fixed.rows.size(), sliding.rows.size());
  for (std::size_t kk = 0; kk < k; ++kk) {
    const std::size_t fc = fixed.rows[kk];
    const std::size_t sc = sliding.rows[kk];
    if (fc >= fixed.span.channels || sc >= sliding.span.channels) continue;
    const T* fqp = fixed.span.q + fc * fixed.span.stride + fixed_start;
    const T* fvp = fixed.span.v + fc * fixed.span.stride + fixed_start;
    const T* sqp = sliding.span.q + sc * sliding.span.stride + pos0;
    const T* svp = sliding.span.v + sc * sliding.span.stride + pos0;
    if (contiguous) {
      lpass(fqp, fvp, sqp, svp, window, sums);
    } else {
      cpass(fqp, fvp, sqp, svp, step, count, window, sums);
    }
    quant_lane_accum(sums, count, min_overlap, sf, ss, acc);
  }

  for (std::size_t b = 0; b < count; ++b) {
    if (acc.channels_used[b] < config.min_channels) {
      out[b] = -2.0;
      continue;
    }
    double profile_corr = 0.0;
    if (acc.pn[b] >= 2.0) {
      const double vx = acc.psxx[b] - acc.psx[b] * acc.psx[b] / acc.pn[b];
      const double vy = acc.psyy[b] - acc.psy[b] * acc.psy[b] / acc.pn[b];
      const double cov = acc.psxy[b] - acc.psx[b] * acc.psy[b] / acc.pn[b];
      if (vx > 0.0 && vy > 0.0) profile_corr = cov / std::sqrt(vx * vy);
    }
    out[b] =
        acc.channel_corr_sum[b] / static_cast<double>(acc.channels_used[b]) +
        profile_corr;
  }
}

}  // namespace

template <typename T>
void quantized_correlation_batch(const QuantViewT<T>& fixed,
                                 std::size_t fixed_start,
                                 const QuantViewT<T>& sliding,
                                 std::size_t pos_lo, std::size_t pos_count,
                                 std::size_t window,
                                 const TrajectoryCorrelationConfig& config,
                                 double* out_scores,
                                 std::size_t pos_stride_m) {
  if (window > kQuantMaxWindowM) {
    throw std::invalid_argument(
        "quantized_correlation: window exceeds kQuantMaxWindowM");
  }
  if (pos_stride_m == 1 && pos_count >= kLagBlock) {
    // Keep every chunk a full block so the GEMM-shaped lag pass runs
    // throughout: the last chunk overlaps backwards instead of shrinking.
    // Recomputed lags are bit-identical (exact integer sums), so overlap
    // is free of the float kernel's lane-shape concerns.
    std::size_t q = 0;
    for (; q + kLagBlock <= pos_count; q += kLagBlock) {
      quant_chunk(fixed, fixed_start, sliding, pos_lo + q, 1, kLagBlock,
                  window, config, out_scores + q);
    }
    if (q < pos_count) {
      const std::size_t q0 = pos_count - kLagBlock;
      quant_chunk(fixed, fixed_start, sliding, pos_lo + q0, 1, kLagBlock,
                  window, config, out_scores + q0);
    }
    return;
  }
  for (std::size_t q = 0; q < pos_count; q += kLagBlock) {
    const std::size_t n = std::min(kLagBlock, pos_count - q);
    quant_chunk(fixed, fixed_start, sliding, pos_lo + q * pos_stride_m,
                pos_stride_m, n, window, config, out_scores + q);
  }
}

template <typename T>
double quantized_correlation(const QuantViewT<T>& fixed,
                             std::size_t fixed_start,
                             const QuantViewT<T>& sliding, std::size_t pos,
                             std::size_t window,
                             const TrajectoryCorrelationConfig& config) {
  double out;
  quantized_correlation_batch(fixed, fixed_start, sliding, pos, 1, window,
                              config, &out, 1);
  return out;
}

template <typename T>
void quantized_correlation_multi(const QuantViewT<T>& fixed,
                                 std::size_t fixed_start,
                                 std::span<const QuantScanTaskT<T>> tasks,
                                 std::size_t window,
                                 const TrajectoryCorrelationConfig& config) {
  // The shared fixed operand (k rows × window × 2 small ints) stays
  // cache-resident from task to task — the fleet's neighbours axis of the
  // GEMM. Each task is scored by the exact batch kernel, so multi results
  // are bit-identical to per-task calls.
  for (const QuantScanTaskT<T>& t : tasks) {
    quantized_correlation_batch(fixed, fixed_start, t.sliding, t.pos_lo,
                                t.pos_count, window, config, t.out_scores,
                                t.pos_stride_m);
  }
}

template void quantized_correlation_batch<std::int16_t>(
    const QuantView16&, std::size_t, const QuantView16&, std::size_t,
    std::size_t, std::size_t, const TrajectoryCorrelationConfig&, double*,
    std::size_t);
template void quantized_correlation_batch<std::int8_t>(
    const QuantView8&, std::size_t, const QuantView8&, std::size_t,
    std::size_t, std::size_t, const TrajectoryCorrelationConfig&, double*,
    std::size_t);
template double quantized_correlation<std::int16_t>(
    const QuantView16&, std::size_t, const QuantView16&, std::size_t,
    std::size_t, const TrajectoryCorrelationConfig&);
template double quantized_correlation<std::int8_t>(
    const QuantView8&, std::size_t, const QuantView8&, std::size_t,
    std::size_t, const TrajectoryCorrelationConfig&);
template void quantized_correlation_multi<std::int16_t>(
    const QuantView16&, std::size_t, std::span<const QuantScanTask16>,
    std::size_t, const TrajectoryCorrelationConfig&);
template void quantized_correlation_multi<std::int8_t>(
    const QuantView8&, std::size_t, std::span<const QuantScanTask8>,
    std::size_t, const TrajectoryCorrelationConfig&);

void scan_correlation_batch(const ScanPair& pair, std::size_t pos_lo,
                            std::size_t pos_count, std::size_t window,
                            const TrajectoryCorrelationConfig& config,
                            double* out_scores, std::size_t pos_stride_m) {
  switch (pair.precision) {
    case KernelPrecision::kInt16:
      quantized_correlation_batch(pair.qfixed16, pair.fixed_start,
                                  pair.qsliding16, pos_lo, pos_count, window,
                                  config, out_scores, pos_stride_m);
      return;
    case KernelPrecision::kInt8:
      quantized_correlation_batch(pair.qfixed8, pair.fixed_start,
                                  pair.qsliding8, pos_lo, pos_count, window,
                                  config, out_scores, pos_stride_m);
      return;
    case KernelPrecision::kFloat32:
      break;
  }
  packed_correlation_batch(pair.fixed, pair.fixed_start, pair.sliding, pos_lo,
                           pos_count, window, config, out_scores,
                           pos_stride_m);
}

}  // namespace rups::core
