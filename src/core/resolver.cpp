#include "core/resolver.hpp"

#include <algorithm>
#include <numeric>

namespace rups::core {

double resolve_distance(const ContextTrajectory& a, const ContextTrajectory& b,
                        const SynPoint& syn) {
  // SYN location = matched window END on each trajectory.
  const std::size_t end_a = syn.index_a + syn.window_m - 1;
  const std::size_t end_b = syn.index_b + syn.window_m - 1;
  const double d1 = a.end_distance_m() - a.distance_at(end_a);
  const double d2 = b.end_distance_m() - b.distance_at(end_b);
  return d1 - d2;
}

std::optional<RelativeDistanceEstimate> aggregate_estimates(
    const ContextTrajectory& a, const ContextTrajectory& b,
    const std::vector<SynPoint>& syns, Aggregation scheme) {
  if (syns.empty()) return std::nullopt;

  std::vector<double> estimates;
  estimates.reserve(syns.size());
  double best_corr = -2.0;
  for (const SynPoint& s : syns) {
    estimates.push_back(resolve_distance(a, b, s));
    best_corr = std::max(best_corr, s.correlation);
  }

  RelativeDistanceEstimate out;
  out.confidence = best_corr;
  out.syn_count = estimates.size();

  switch (scheme) {
    case Aggregation::kSingleBest: {
      // syns arrive sorted best-first from SynSeeker::find, but do not rely
      // on it — pick the max-correlation entry explicitly.
      std::size_t best_idx = 0;
      for (std::size_t i = 1; i < syns.size(); ++i) {
        if (syns[i].correlation > syns[best_idx].correlation) best_idx = i;
      }
      out.distance_m = estimates[best_idx];
      out.syn_count = 1;
      break;
    }
    case Aggregation::kMean: {
      out.distance_m =
          std::accumulate(estimates.begin(), estimates.end(), 0.0) /
          static_cast<double>(estimates.size());
      break;
    }
    case Aggregation::kSelectiveMean: {
      if (estimates.size() <= 2) {
        out.distance_m =
            std::accumulate(estimates.begin(), estimates.end(), 0.0) /
            static_cast<double>(estimates.size());
        break;
      }
      std::vector<double> sorted = estimates;
      std::sort(sorted.begin(), sorted.end());
      const double sum =
          std::accumulate(sorted.begin() + 1, sorted.end() - 1, 0.0);
      out.distance_m = sum / static_cast<double>(sorted.size() - 2);
      break;
    }
    case Aggregation::kMedian: {
      std::vector<double> sorted = estimates;
      std::sort(sorted.begin(), sorted.end());
      const std::size_t n = sorted.size();
      out.distance_m = (n % 2 == 1)
                           ? sorted[n / 2]
                           : 0.5 * (sorted[n / 2 - 1] + sorted[n / 2]);
      break;
    }
  }
  return out;
}

}  // namespace rups::core
