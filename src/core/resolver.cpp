#include "core/resolver.hpp"

#include <algorithm>
#include <numeric>

namespace rups::core {

double resolve_distance(const ContextTrajectory& a, const ContextTrajectory& b,
                        const SynPoint& syn) {
  // SYN location = matched window END on each trajectory.
  const std::size_t end_a = syn.index_a + syn.window_m - 1;
  const std::size_t end_b = syn.index_b + syn.window_m - 1;
  const double d1 = a.end_distance_m() - a.distance_at(end_a);
  const double d2 = b.end_distance_m() - b.distance_at(end_b);
  return d1 - d2;
}

std::optional<RelativeDistanceEstimate> aggregate_estimates(
    const ContextTrajectory& a, const ContextTrajectory& b,
    const std::vector<SynPoint>& syns, Aggregation scheme) {
  if (syns.empty()) return std::nullopt;

  // syn_points is a handful (default 1, paper sweeps to 5); a stack buffer
  // keeps aggregation allocation-free on the hot path, with a heap
  // fallback preserving correctness for oversized inputs.
  constexpr std::size_t kInline = 8;
  double inline_buf[kInline];
  std::vector<double> heap_buf;
  double* estimates = inline_buf;
  if (syns.size() > kInline) {
    heap_buf.resize(syns.size());
    estimates = heap_buf.data();
  }
  const std::size_t n_est = syns.size();
  double best_corr = -2.0;
  for (std::size_t i = 0; i < n_est; ++i) {
    estimates[i] = resolve_distance(a, b, syns[i]);
    best_corr = std::max(best_corr, syns[i].correlation);
  }

  RelativeDistanceEstimate out;
  out.confidence = best_corr;
  out.syn_count = n_est;

  switch (scheme) {
    case Aggregation::kSingleBest: {
      // syns arrive sorted best-first from SynSeeker::find, but do not rely
      // on it — pick the max-correlation entry explicitly.
      std::size_t best_idx = 0;
      for (std::size_t i = 1; i < syns.size(); ++i) {
        if (syns[i].correlation > syns[best_idx].correlation) best_idx = i;
      }
      out.distance_m = estimates[best_idx];
      out.syn_count = 1;
      break;
    }
    case Aggregation::kMean: {
      out.distance_m = std::accumulate(estimates, estimates + n_est, 0.0) /
                       static_cast<double>(n_est);
      break;
    }
    case Aggregation::kSelectiveMean: {
      if (n_est <= 2) {
        out.distance_m = std::accumulate(estimates, estimates + n_est, 0.0) /
                         static_cast<double>(n_est);
        break;
      }
      double sorted_inline[kInline];
      std::vector<double> sorted_heap;
      double* sorted = sorted_inline;
      if (n_est > kInline) {
        sorted_heap.resize(n_est);
        sorted = sorted_heap.data();
      }
      std::copy(estimates, estimates + n_est, sorted);
      std::sort(sorted, sorted + n_est);
      const double sum = std::accumulate(sorted + 1, sorted + n_est - 1, 0.0);
      out.distance_m = sum / static_cast<double>(n_est - 2);
      break;
    }
    case Aggregation::kMedian: {
      double sorted_inline[kInline];
      std::vector<double> sorted_heap;
      double* sorted = sorted_inline;
      if (n_est > kInline) {
        sorted_heap.resize(n_est);
        sorted = sorted_heap.data();
      }
      std::copy(estimates, estimates + n_est, sorted);
      std::sort(sorted, sorted + n_est);
      out.distance_m = (n_est % 2 == 1)
                           ? sorted[n_est / 2]
                           : 0.5 * (sorted[n_est / 2 - 1] + sorted[n_est / 2]);
      break;
    }
  }
  return out;
}

}  // namespace rups::core
