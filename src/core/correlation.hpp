#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "core/types.hpp"

namespace rups::core {

/// Pearson's correlation coefficient between two power vectors over the
/// channels usable in BOTH (paper eq. (1)). Returns 0 when fewer than
/// `min_overlap` channels overlap or either side is constant.
[[nodiscard]] double power_vector_correlation(const PowerVector& a,
                                              const PowerVector& b,
                                              std::size_t min_overlap = 3);

/// Relative change of a pair of power vectors (paper eq. (3)):
///   d = ||X - X'|| / ||X||
/// computed on LINEAR power (mW) over channels usable in both.
[[nodiscard]] double relative_change_linear(const PowerVector& a,
                                            const PowerVector& b);

/// One operand of the windowed trajectory correlation: trajectory +
/// starting entry index of a `window_m`-long segment.
struct WindowRef {
  const ContextTrajectory* trajectory = nullptr;
  std::size_t start = 0;
};

/// Parameters of the trajectory correlation (paper eq. (2)).
struct TrajectoryCorrelationConfig {
  /// Minimum number of positions where a channel is usable in both windows
  /// for its per-channel correlation to count.
  std::size_t min_channel_overlap = 8;
  /// Minimum number of channels contributing for the result to be valid.
  std::size_t min_channels = 5;
};

/// Trajectory correlation coefficient (paper eq. (2)) between two
/// same-length windows, restricted to the given channel subset:
///
///   r = (1/n) * sum_i r(C1_i, C2_i)  +  r(mean-profile1, mean-profile2)
///
/// where C_i is channel i's along-window RSSI series and the mean profile is
/// the per-channel average vector. Result range is [-2, 2]; the paper's
/// coherency threshold (1.2) lives on this scale. Returns -2 (definitely
/// unrelated) when there is not enough usable data.
[[nodiscard]] double trajectory_correlation(
    const WindowRef& a, const WindowRef& b, std::size_t window_m,
    std::span<const std::size_t> channels,
    const TrajectoryCorrelationConfig& config = {});

}  // namespace rups::core
