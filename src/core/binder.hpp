#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/types.hpp"

namespace rups::core {

/// Trajectory binding (paper Sec. IV-C): converts time-domain RSSI
/// measurements into the distance-domain GSM-aware trajectory by assigning
/// each measurement to the metre of estimated travel where it was taken,
/// and estimates missing channels by linear interpolation between the
/// nearest measured values over distance (the paper's Fig 6 recipe).
class TrajectoryBinder {
 public:
  struct Config {
    /// Longest distance gap (m) interpolation may bridge. Beyond this the
    /// channel stays missing (stale values would lie).
    std::size_t max_interpolation_gap_m = 40;
    /// Enable/disable interpolation (ablation; paper always interpolates).
    bool interpolate = true;
  };

  explicit TrajectoryBinder(std::size_t channels);
  TrajectoryBinder(std::size_t channels, Config config);

  /// Record a dwell result taken at estimated odometer `distance_m`.
  /// Measurements for metres already finalized retro-fill the trajectory if
  /// that metre is still retained; measurements ahead of the open metre are
  /// buffered.
  void add_measurement(std::size_t channel, double distance_m, float rssi_dbm,
                       ContextTrajectory& trajectory);

  /// Finalize metre `metre_index` with its geographic annotation: appends
  /// the entry (with all measurements collected for that metre) to the
  /// trajectory and runs gap interpolation.
  void bind_metre(std::uint64_t metre_index, GeoSample geo,
                  ContextTrajectory& trajectory);

  [[nodiscard]] std::size_t channels() const noexcept { return channels_; }
  [[nodiscard]] const Config& config() const noexcept { return config_; }

 private:
  struct Pending {
    std::uint64_t metre = 0;
    std::size_t channel = 0;
    float rssi = 0.0f;
  };
  struct LastSeen {
    std::uint64_t metre = 0;
    float rssi = 0.0f;
    bool any = false;
  };

  void place(std::uint64_t metre, std::size_t channel, float rssi,
             ContextTrajectory& trajectory);
  void interpolate_channel(std::size_t channel, std::uint64_t from_metre,
                           float from_rssi, std::uint64_t to_metre,
                           float to_rssi, ContextTrajectory& trajectory);

  std::size_t channels_;
  Config config_;
  std::uint64_t next_metre_ = 0;  ///< first metre not yet finalized
  PowerVector open_;              ///< accumulating vector for next_metre_
  std::vector<Pending> future_;   ///< measurements beyond the open metre
  std::vector<LastSeen> last_seen_;
};

}  // namespace rups::core
