#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace rups::core {

/// How a per-metre channel value came to be.
enum class ChannelState : std::uint8_t {
  kMissing = 0,       ///< never measured and not yet interpolable
  kMeasured = 1,      ///< a scanner dwell landed on this metre
  kInterpolated = 2,  ///< filled by linear interpolation over distance
};

/// RSSI over all plan channels at one metre mark of a trajectory
/// (the paper's "power vector"), with a per-channel provenance mask —
/// vehicles in motion only measure a subset of channels per metre
/// (Sec. IV-C, missing channels).
class PowerVector {
 public:
  PowerVector() = default;
  explicit PowerVector(std::size_t channels);

  [[nodiscard]] std::size_t channels() const noexcept { return rssi_.size(); }

  void set(std::size_t channel, float dbm,
           ChannelState state = ChannelState::kMeasured);

  [[nodiscard]] float at(std::size_t channel) const {
    return rssi_[channel];
  }
  [[nodiscard]] ChannelState state(std::size_t channel) const {
    return static_cast<ChannelState>(state_[channel]);
  }
  /// Usable for comparison: measured or interpolated.
  [[nodiscard]] bool usable(std::size_t channel) const {
    return state_[channel] != static_cast<std::uint8_t>(ChannelState::kMissing);
  }
  [[nodiscard]] bool measured(std::size_t channel) const {
    return state_[channel] ==
           static_cast<std::uint8_t>(ChannelState::kMeasured);
  }

  [[nodiscard]] std::size_t usable_count() const noexcept;
  [[nodiscard]] std::size_t measured_count() const noexcept;

  /// Mean over usable channels (0 if none).
  [[nodiscard]] double mean_usable() const noexcept;

  /// Zero every channel back to kMissing, keeping the buffers — a recycled
  /// vector is indistinguishable from PowerVector(channels()).
  void reset() noexcept;

 private:
  std::vector<float> rssi_;
  std::vector<std::uint8_t> state_;
};

/// Per-metre geographic annotation: the paper's trajectory element
/// (theta_i, t_i) — heading angle and timestamp at the i-th metre.
struct GeoSample {
  double heading_rad = 0.0;
  double time_s = 0.0;
};

/// The context-aware trajectory ST^m: a bounded, most-recent window of
/// per-metre entries, each a GeoSample bound to a PowerVector. Entry
/// distances are in the vehicle's OWN estimated odometer metres; index 0 is
/// the oldest retained metre.
class ContextTrajectory {
 public:
  /// @param channels     width (number of plan channels)
  /// @param capacity_m   retained journey-context length (paper: 1000 m)
  ContextTrajectory(std::size_t channels, std::size_t capacity_m);

  /// Append the next metre mark. Entries must be appended in odometer order.
  void append(GeoSample geo, PowerVector power);

  /// Append, returning the evicted oldest entry (empty PowerVector while
  /// still below capacity). Long-lived ingest loops reset() and refill the
  /// returned vector for the next metre, so a full ring recycles buffers
  /// instead of allocating per append.
  [[nodiscard]] PowerVector append_evict(GeoSample geo, PowerVector power);

  [[nodiscard]] std::size_t size() const noexcept { return geo_.size(); }
  [[nodiscard]] bool empty() const noexcept { return geo_.empty(); }
  [[nodiscard]] std::size_t channels() const noexcept { return channels_; }
  [[nodiscard]] std::size_t capacity_m() const noexcept { return capacity_; }

  [[nodiscard]] const GeoSample& geo(std::size_t i) const { return geo_[i]; }
  [[nodiscard]] const PowerVector& power(std::size_t i) const {
    return power_[i];
  }
  /// Mutable access (the binder retro-fills interpolated channels).
  [[nodiscard]] PowerVector& mutable_power(std::size_t i) { return power_[i]; }

  /// Estimated odometer distance (m) of entry i: metre marks are 1 m apart.
  [[nodiscard]] double distance_at(std::size_t i) const noexcept {
    return static_cast<double>(first_seq_ + i);
  }
  /// Odometer distance of the newest entry (0 if empty).
  [[nodiscard]] double end_distance_m() const noexcept {
    return empty() ? 0.0 : distance_at(size() - 1);
  }

  /// Odometer metre index of entry 0.
  [[nodiscard]] std::uint64_t first_metre() const noexcept {
    return first_seq_;
  }

  /// Re-base the odometer indexing so entry 0 sits at `first_metre`
  /// (used by the V2V codec to reconstruct the sender's indexing).
  void rebase(std::uint64_t first_metre) noexcept { first_seq_ = first_metre; }

  /// Index of the entry whose odometer metre is `metre`, if retained.
  [[nodiscard]] bool contains_metre(std::uint64_t metre) const noexcept {
    return metre >= first_seq_ && metre < first_seq_ + size();
  }
  [[nodiscard]] std::size_t index_of_metre(std::uint64_t metre) const {
    return static_cast<std::size_t>(metre - first_seq_);
  }

  /// Splice a received update onto this trajectory (the V2V receiver-side
  /// cache). Entries of `tail` that extend past our newest metre are
  /// appended (evicting the oldest as usual); overlapping metres keep our
  /// existing entries. Returns false — leaving this trajectory untouched —
  /// when the widths differ or `tail` starts beyond our end+1 (a gap from
  /// failed exchanges: the caller must fall back to a full transfer).
  bool splice_tail(const ContextTrajectory& tail);

  /// Fraction of channel slots measured (not missing/interpolated) over the
  /// whole retained context — a scanner coverage diagnostic.
  [[nodiscard]] double measured_fraction() const noexcept;

 private:
  std::size_t channels_;
  std::size_t capacity_;
  std::uint64_t first_seq_ = 0;  ///< odometer metre index of entry 0
  std::vector<GeoSample> geo_;
  std::vector<PowerVector> power_;
};

}  // namespace rups::core
