#pragma once

#include <cstdint>
#include <optional>

#include "sensors/types.hpp"

namespace rups::core {

/// Pedestrian speed source (paper Sec. VII future work: "extend RUPS to
/// users of mobile devices such as pedestrians and bicyclists"). Walkers
/// have no OBD port; speed comes from step detection on the accelerometer:
/// each step is a vertical-acceleration peak, and distance = steps x stride
/// length. The produced SpeedSamples plug into the unchanged RUPS engine —
/// the rest of the pipeline (binding, SYN search, resolution) is
/// speed-source agnostic.
class StepCounter {
 public:
  struct Config {
    /// Peak threshold above gravity (m/s^2) for a step candidate.
    double peak_threshold_mps2 = 1.5;
    /// Refractory period between steps (s); caps cadence at ~4 Hz.
    double min_step_interval_s = 0.25;
    /// Stride length (m); calibrated per user in a real deployment.
    double stride_m = 0.7;
    /// Low-pass constant for the gravity magnitude estimate.
    double gravity_alpha = 0.02;
    /// Emit a speed sample every this many seconds.
    double report_interval_s = 1.0;
  };

  StepCounter();
  explicit StepCounter(Config config);

  /// Feed one accelerometer sample (any frame — only |accel| is used, so
  /// no reorientation is required). Returns a speed report when one is due.
  std::optional<sensors::SpeedSample> on_accel(double time_s,
                                               double accel_norm_mps2);

  [[nodiscard]] std::uint64_t steps() const noexcept { return steps_; }
  [[nodiscard]] double distance_m() const noexcept {
    return static_cast<double>(steps_) * config_.stride_m;
  }

 private:
  Config config_;
  double gravity_lp_ = 9.80665;
  double last_step_s_ = -1e9;
  bool above_ = false;
  std::uint64_t steps_ = 0;
  std::uint64_t steps_at_report_ = 0;
  double next_report_s_ = 0.0;
  bool started_ = false;
};

}  // namespace rups::core
