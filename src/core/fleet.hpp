#pragma once

// Fleet-scale batched estimation. In the paper's DSRC setting every vehicle
// hears periodic broadcasts from MANY neighbours, so the practical query
// shape is one ego context against N neighbour contexts per beacon round
// (cf. Niesen et al., "Inter-Vehicle Range Estimation from Periodic
// Broadcasts"). FleetEngine answers that batch:
//   * the ego trajectory is packed ONCE per batch and shared read-only by
//     every neighbour query;
//   * each neighbour id owns a SynCache shard (tracking lock + packed
//     neighbour context), so steady-state queries are narrow
//     re-verifications instead of full O(m·w·k) searches;
//   * independent neighbour queries are sharded across util::ThreadPool.
// Results are returned in input order and are bit-identical to running the
// serial per-neighbour estimate path (same kernel, same plan, per-neighbour
// work never crosses a shard boundary).

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "core/engine.hpp"
#include "core/resolver.hpp"
#include "core/syn_cache.hpp"
#include "util/thread_pool.hpp"

namespace rups::core {

struct FleetConfig {
  RupsConfig rups{};
  SynCacheConfig cache{};
  /// When false, every query runs the full SYN search (the per-neighbour
  /// shards then only provide pack reuse). Mirrors SynCacheConfig::enabled.
  bool use_cache = true;
  /// Record per-neighbour latency cells (fleet.task_us{neighbour=...}).
  /// The uint64-labeled family lookup formats the label per call, which
  /// heap-allocates; zero-alloc callers (the matcher service) turn this
  /// off and keep only the unlabeled task_us histogram.
  bool per_neighbour_latency = true;
};

/// One ego vehicle's batched distance-query front end. Not thread-safe as a
/// whole (one batch at a time); internally parallel across neighbours.
class FleetEngine {
 public:
  struct NeighbourResult {
    std::optional<RelativeDistanceEstimate> estimate;
    std::vector<SynPoint> syn_points;
    /// Serial compute time of this neighbour's query (microseconds).
    double latency_us = 0.0;
  };

  explicit FleetEngine(FleetConfig config = {});

  /// Answer one ego-vs-N batch. `neighbours[i]` is identified by `ids[i]`
  /// (ids must be unique within a batch — each id addresses one cache
  /// shard); results come back in input order. Passing a pool shards the
  /// independent per-neighbour queries across it; results are identical
  /// with or without one.
  [[nodiscard]] std::vector<NeighbourResult> estimate_batch(
      const ContextTrajectory& ego,
      std::span<const ContextTrajectory* const> neighbours,
      std::span<const std::uint64_t> ids,
      util::ThreadPool* pool = nullptr);

  /// Scratch-reusing form: resizes `results` to the batch and reuses each
  /// slot's syn_points capacity. With warm caches (and
  /// per_neighbour_latency off) a steady-state batch performs no dynamic
  /// allocation. Identical results to estimate_batch.
  void estimate_batch_into(const ContextTrajectory& ego,
                           std::span<const ContextTrajectory* const> neighbours,
                           std::span<const std::uint64_t> ids,
                           util::ThreadPool* pool,
                           std::vector<NeighbourResult>& results);

  /// Drop the cache shard of one neighbour (e.g. it left radio range).
  void forget(std::uint64_t id);
  void clear();

  [[nodiscard]] std::size_t shard_count() const noexcept {
    return shards_.size();
  }
  /// Aggregated tracking stats across all shards.
  [[nodiscard]] SynCache::Stats cache_stats() const noexcept;
  [[nodiscard]] const FleetConfig& config() const noexcept { return config_; }

 private:
  FleetConfig config_;
  PackedContext ego_pack_;
  /// Quantized mirror of ego_pack_, synced once per batch and shared
  /// read-only by every shard — only when rups.syn.precision != kFloat32.
  QuantizedPack ego_qpack_;
  std::map<std::uint64_t, std::unique_ptr<SynCache>> shards_;
};

}  // namespace rups::core
