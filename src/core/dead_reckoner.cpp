#include "core/dead_reckoner.hpp"

#include <algorithm>
#include <cmath>

namespace rups::core {

std::vector<GeoSample> DeadReckoner::advance(double time_s, double heading_rad,
                                             double speed_mps) {
  std::vector<GeoSample> out;
  if (!started_) {
    started_ = true;
    last_time_ = time_s;
    last_speed_ = speed_mps;
    return out;
  }
  const double dt = time_s - last_time_;
  if (dt <= 0.0) return out;
  // Trapezoidal speed integration over the step.
  distance_ += 0.5 * (last_speed_ + speed_mps) * dt;
  last_time_ = time_s;
  last_speed_ = speed_mps;

  while (static_cast<double>(marks_ + 1) <= distance_) {
    ++marks_;
    out.push_back(GeoSample{heading_rad, time_s});
  }
  return out;
}

double DeadReckoner::odometer_at(double time_s) const noexcept {
  const double dt = time_s - last_time_;
  return std::max(0.0, distance_ + last_speed_ * dt);
}

}  // namespace rups::core
