#include "core/step_counter.hpp"

namespace rups::core {

StepCounter::StepCounter() : StepCounter(Config{}) {}

StepCounter::StepCounter(Config config) : config_(config) {}

std::optional<sensors::SpeedSample> StepCounter::on_accel(
    double time_s, double accel_norm_mps2) {
  if (!started_) {
    started_ = true;
    next_report_s_ = time_s + config_.report_interval_s;
  }
  gravity_lp_ += config_.gravity_alpha * (accel_norm_mps2 - gravity_lp_);

  // Rising-edge peak detection with a refractory interval.
  const bool over =
      accel_norm_mps2 > gravity_lp_ + config_.peak_threshold_mps2;
  if (over && !above_ && time_s - last_step_s_ >= config_.min_step_interval_s) {
    ++steps_;
    last_step_s_ = time_s;
  }
  above_ = over;

  if (time_s < next_report_s_) return std::nullopt;
  const double interval = config_.report_interval_s;
  const auto new_steps = steps_ - steps_at_report_;
  steps_at_report_ = steps_;
  next_report_s_ = time_s + interval;
  sensors::SpeedSample out;
  out.time_s = time_s;
  out.speed_mps = static_cast<double>(new_steps) * config_.stride_m / interval;
  return out;
}

}  // namespace rups::core
