#include "core/correlation.hpp"

#include <algorithm>
#include <cmath>

namespace rups::core {

namespace {

/// Pearson over pre-gathered pairs; 0 when degenerate.
double pearson_pairs(const std::vector<double>& xs,
                     const std::vector<double>& ys) {
  const std::size_t n = xs.size();
  if (n < 2) return 0.0;
  double mx = 0.0, my = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    mx += xs[i];
    my += ys[i];
  }
  mx /= static_cast<double>(n);
  my /= static_cast<double>(n);
  double num = 0.0, dx = 0.0, dy = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double a = xs[i] - mx;
    const double b = ys[i] - my;
    num += a * b;
    dx += a * a;
    dy += b * b;
  }
  if (dx <= 0.0 || dy <= 0.0) return 0.0;
  return num / std::sqrt(dx * dy);
}

}  // namespace

double power_vector_correlation(const PowerVector& a, const PowerVector& b,
                                std::size_t min_overlap) {
  const std::size_t n = std::min(a.channels(), b.channels());
  std::vector<double> xs, ys;
  xs.reserve(n);
  ys.reserve(n);
  for (std::size_t c = 0; c < n; ++c) {
    if (a.usable(c) && b.usable(c)) {
      xs.push_back(a.at(c));
      ys.push_back(b.at(c));
    }
  }
  if (xs.size() < min_overlap) return 0.0;
  return pearson_pairs(xs, ys);
}

double relative_change_linear(const PowerVector& a, const PowerVector& b) {
  const std::size_t n = std::min(a.channels(), b.channels());
  double diff_sq = 0.0, base_sq = 0.0;
  for (std::size_t c = 0; c < n; ++c) {
    if (!a.usable(c) || !b.usable(c)) continue;
    const double la = std::pow(10.0, a.at(c) / 10.0);
    const double lb = std::pow(10.0, b.at(c) / 10.0);
    diff_sq += (la - lb) * (la - lb);
    base_sq += la * la;
  }
  if (base_sq <= 0.0) return 0.0;
  return std::sqrt(diff_sq) / std::sqrt(base_sq);
}

double trajectory_correlation(const WindowRef& a, const WindowRef& b,
                              std::size_t window_m,
                              std::span<const std::size_t> channels,
                              const TrajectoryCorrelationConfig& config) {
  const ContextTrajectory& ta = *a.trajectory;
  const ContextTrajectory& tb = *b.trajectory;
  if (a.start + window_m > ta.size() || b.start + window_m > tb.size()) {
    return -2.0;
  }
  const std::size_t width = std::min(ta.channels(), tb.channels());

  // Hot path of the O(m*w*k) SYN search: one metre-outer pass accumulating
  // per-channel moment sums — no allocations, row-local memory access.
  struct Acc {
    double n = 0, sx = 0, sy = 0, sxx = 0, syy = 0, sxy = 0;
  };
  constexpr std::size_t kStackChannels = 128;
  Acc stack_acc[kStackChannels];
  std::vector<Acc> heap_acc;
  Acc* acc = stack_acc;
  if (channels.size() > kStackChannels) {
    heap_acc.resize(channels.size());
    acc = heap_acc.data();
  } else {
    for (std::size_t k = 0; k < channels.size(); ++k) acc[k] = Acc{};
  }

  for (std::size_t i = 0; i < window_m; ++i) {
    const PowerVector& pa = ta.power(a.start + i);
    const PowerVector& pb = tb.power(b.start + i);
    for (std::size_t k = 0; k < channels.size(); ++k) {
      const std::size_t c = channels[k];
      if (c >= width || !pa.usable(c) || !pb.usable(c)) continue;
      const double x = pa.at(c);
      const double y = pb.at(c);
      Acc& s = acc[k];
      s.n += 1.0;
      s.sx += x;
      s.sy += y;
      s.sxx += x * x;
      s.syy += y * y;
      s.sxy += x * y;
    }
  }

  double channel_corr_sum = 0.0;
  std::size_t channels_used = 0;
  // Profile (per-channel mean) correlation accumulated the same way.
  Acc profile;
  for (std::size_t k = 0; k < channels.size(); ++k) {
    const Acc& s = acc[k];
    if (s.n < static_cast<double>(config.min_channel_overlap)) continue;
    const double vx = s.sxx - s.sx * s.sx / s.n;
    const double vy = s.syy - s.sy * s.sy / s.n;
    const double cov = s.sxy - s.sx * s.sy / s.n;
    // Same variance guard and clamp as the packed float kernel: a
    // (near-)constant channel carries no alignment information and residues
    // below ~1e-2 dB^2 are rounding noise, so the channel counts with zero
    // correlation; the clamp bounds cancellation-induced excursions so the
    // per-channel term stays a true Pearson coefficient. Keeping reference
    // and kernel semantics identical means they agree to float precision.
    if (vx > 1e-2 && vy > 1e-2) {
      channel_corr_sum += std::clamp(cov / std::sqrt(vx * vy), -1.0, 1.0);
    }
    ++channels_used;
    const double ma = s.sx / s.n;
    const double mb = s.sy / s.n;
    profile.n += 1.0;
    profile.sx += ma;
    profile.sy += mb;
    profile.sxx += ma * ma;
    profile.syy += mb * mb;
    profile.sxy += ma * mb;
  }

  if (channels_used < config.min_channels) return -2.0;
  const double per_channel =
      channel_corr_sum / static_cast<double>(channels_used);
  double profile_corr = 0.0;
  if (profile.n >= 2.0) {
    const double vx = profile.sxx - profile.sx * profile.sx / profile.n;
    const double vy = profile.syy - profile.sy * profile.sy / profile.n;
    const double cov = profile.sxy - profile.sx * profile.sy / profile.n;
    if (vx > 0.0 && vy > 0.0) profile_corr = cov / std::sqrt(vx * vy);
  }
  return per_channel + profile_corr;
}

}  // namespace rups::core
