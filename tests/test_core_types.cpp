#include "core/types.hpp"

#include <gtest/gtest.h>

namespace rups::core {
namespace {

TEST(PowerVector, StartsAllMissing) {
  PowerVector pv(10);
  EXPECT_EQ(pv.channels(), 10u);
  EXPECT_EQ(pv.usable_count(), 0u);
  for (std::size_t c = 0; c < 10; ++c) {
    EXPECT_FALSE(pv.usable(c));
    EXPECT_EQ(pv.state(c), ChannelState::kMissing);
  }
}

TEST(PowerVector, SetAndStates) {
  PowerVector pv(5);
  pv.set(0, -70.0f);
  pv.set(2, -80.0f, ChannelState::kInterpolated);
  EXPECT_TRUE(pv.usable(0));
  EXPECT_TRUE(pv.measured(0));
  EXPECT_TRUE(pv.usable(2));
  EXPECT_FALSE(pv.measured(2));
  EXPECT_EQ(pv.usable_count(), 2u);
  EXPECT_EQ(pv.measured_count(), 1u);
  EXPECT_FLOAT_EQ(pv.at(0), -70.0f);
}

TEST(PowerVector, SetOutOfRangeThrows) {
  PowerVector pv(3);
  EXPECT_THROW(pv.set(3, -70.0f), std::out_of_range);
}

TEST(PowerVector, MeanUsable) {
  PowerVector pv(4);
  EXPECT_DOUBLE_EQ(pv.mean_usable(), 0.0);
  pv.set(0, -60.0f);
  pv.set(1, -80.0f);
  EXPECT_DOUBLE_EQ(pv.mean_usable(), -70.0);
}

TEST(ContextTrajectory, RejectsZeroDims) {
  EXPECT_THROW(ContextTrajectory(0, 10), std::invalid_argument);
  EXPECT_THROW(ContextTrajectory(10, 0), std::invalid_argument);
}

TEST(ContextTrajectory, AppendAndIndex) {
  ContextTrajectory traj(4, 100);
  EXPECT_TRUE(traj.empty());
  traj.append(GeoSample{0.1, 1.0}, PowerVector(4));
  traj.append(GeoSample{0.2, 2.0}, PowerVector(4));
  EXPECT_EQ(traj.size(), 2u);
  EXPECT_DOUBLE_EQ(traj.geo(1).heading_rad, 0.2);
  EXPECT_DOUBLE_EQ(traj.distance_at(0), 0.0);
  EXPECT_DOUBLE_EQ(traj.distance_at(1), 1.0);
  EXPECT_DOUBLE_EQ(traj.end_distance_m(), 1.0);
}

TEST(ContextTrajectory, WidthMismatchThrows) {
  ContextTrajectory traj(4, 100);
  EXPECT_THROW(traj.append(GeoSample{}, PowerVector(5)),
               std::invalid_argument);
}

TEST(ContextTrajectory, CapacityEvictsOldest) {
  ContextTrajectory traj(2, 3);
  for (int i = 0; i < 5; ++i) {
    PowerVector pv(2);
    pv.set(0, static_cast<float>(-100 + i));
    traj.append(GeoSample{0.0, static_cast<double>(i)}, std::move(pv));
  }
  EXPECT_EQ(traj.size(), 3u);
  EXPECT_EQ(traj.first_metre(), 2u);
  EXPECT_FLOAT_EQ(traj.power(0).at(0), -98.0f);  // entry for metre 2
  EXPECT_DOUBLE_EQ(traj.distance_at(0), 2.0);
  EXPECT_DOUBLE_EQ(traj.end_distance_m(), 4.0);
}

TEST(ContextTrajectory, MetreLookup) {
  ContextTrajectory traj(2, 3);
  for (int i = 0; i < 5; ++i) traj.append(GeoSample{}, PowerVector(2));
  EXPECT_FALSE(traj.contains_metre(1));
  EXPECT_TRUE(traj.contains_metre(2));
  EXPECT_TRUE(traj.contains_metre(4));
  EXPECT_FALSE(traj.contains_metre(5));
  EXPECT_EQ(traj.index_of_metre(3), 1u);
}

TEST(ContextTrajectory, MeasuredFraction) {
  ContextTrajectory traj(2, 10);
  PowerVector full(2);
  full.set(0, -70.0f);
  full.set(1, -70.0f);
  PowerVector half(2);
  half.set(0, -70.0f);
  half.set(1, -70.0f, ChannelState::kInterpolated);  // not "measured"
  traj.append(GeoSample{}, std::move(full));
  traj.append(GeoSample{}, std::move(half));
  EXPECT_DOUBLE_EQ(traj.measured_fraction(), 0.75);
}

TEST(ContextTrajectory, MutablePowerRetrofill) {
  ContextTrajectory traj(2, 10);
  traj.append(GeoSample{}, PowerVector(2));
  traj.mutable_power(0).set(1, -55.0f);
  EXPECT_TRUE(traj.power(0).usable(1));
  EXPECT_FLOAT_EQ(traj.power(0).at(1), -55.0f);
}

TEST(PowerVector, ResetRecyclesToAllMissing) {
  PowerVector pv(3);
  pv.set(0, -60.0f);
  pv.set(2, -70.0f, ChannelState::kInterpolated);
  pv.reset();
  EXPECT_EQ(pv.channels(), 3u);
  for (std::size_t c = 0; c < 3; ++c) {
    EXPECT_FALSE(pv.usable(c));
    EXPECT_EQ(pv.state(c), ChannelState::kMissing);
  }
  // A reset vector behaves like a fresh one.
  pv.set(1, -50.0f);
  EXPECT_TRUE(pv.usable(1));
  EXPECT_FLOAT_EQ(pv.at(1), -50.0f);
}

TEST(ContextTrajectory, AppendEvictReturnsDisplacedBuffer) {
  ContextTrajectory traj(2, 3);
  // Below capacity: nothing is displaced; the returned vector is empty-width.
  for (int i = 0; i < 3; ++i) {
    PowerVector pv(2);
    pv.set(0, static_cast<float>(-60 - i));
    const PowerVector evicted =
        traj.append_evict(GeoSample{0.0, static_cast<double>(i)},
                          std::move(pv));
    EXPECT_EQ(evicted.channels(), 0u);
  }
  // At capacity: the oldest metre's vector comes back (content intact —
  // callers recycle it by copy-assigning the next sample over it).
  PowerVector pv(2);
  pv.set(0, -70.0f);
  PowerVector evicted = traj.append_evict(GeoSample{0.0, 3.0}, std::move(pv));
  EXPECT_EQ(evicted.channels(), 2u);
  EXPECT_FLOAT_EQ(evicted.at(0), -60.0f);
  EXPECT_EQ(traj.size(), 3u);
  EXPECT_FLOAT_EQ(traj.power(2).at(0), -70.0f);
  EXPECT_FLOAT_EQ(traj.power(0).at(0), -61.0f);
  // reset() makes the recycled buffer indistinguishable from a fresh one.
  evicted.reset();
  EXPECT_FALSE(evicted.usable(0));
  EXPECT_EQ(evicted.channels(), 2u);
}

// --- splice_tail: beacon-diff redelivery semantics -------------------------
//
// The streaming beacon protocol re-delivers tails after channel reorder and
// duplication, so splice_tail must be idempotent under overlap and must keep
// first_seq_ consistent with absolute odometer metres in every adopt path.

namespace {

/// Tail [first, first + n) with a recognisable per-metre value.
ContextTrajectory make_tail(std::size_t channels, std::size_t capacity,
                            std::uint64_t first, std::size_t n) {
  ContextTrajectory tail(channels, capacity);
  for (std::size_t i = 0; i < n; ++i) {
    PowerVector pv(channels);
    pv.set(0, static_cast<float>(-(100.0 + static_cast<double>(first + i))));
    tail.append(GeoSample{0.0, static_cast<double>(first + i)}, std::move(pv));
  }
  tail.rebase(first);
  return tail;
}

/// Trajectory metre-for-metre equal (geo time, power ch0, indexing)?
void expect_same(const ContextTrajectory& a, const ContextTrajectory& b) {
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(a.first_metre(), b.first_metre());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.geo(i).time_s, b.geo(i).time_s) << "metre " << i;
    EXPECT_FLOAT_EQ(a.power(i).at(0), b.power(i).at(0)) << "metre " << i;
  }
}

}  // namespace

TEST(SpliceTail, DuplicateRedeliveryIsIdempotent) {
  ContextTrajectory cache(2, 100);
  ASSERT_TRUE(cache.splice_tail(make_tail(2, 100, 0, 20)));
  const ContextTrajectory tail = make_tail(2, 100, 12, 8);
  ASSERT_TRUE(cache.splice_tail(tail));  // fully-overlapping duplicate
  EXPECT_EQ(cache.size(), 20u);
  EXPECT_EQ(cache.first_metre(), 0u);
  ASSERT_TRUE(cache.splice_tail(tail));  // re-delivered again
  EXPECT_EQ(cache.size(), 20u);
  expect_same(cache, make_tail(2, 100, 0, 20));
}

TEST(SpliceTail, OverlappingTailKeepsOursAppendsRest) {
  ContextTrajectory cache(2, 100);
  ASSERT_TRUE(cache.splice_tail(make_tail(2, 100, 0, 10)));
  // Mark our copy of metre 8 so we can prove the overlap kept it.
  cache.mutable_power(8).set(1, -42.0f);
  ASSERT_TRUE(cache.splice_tail(make_tail(2, 100, 6, 10)));  // [6, 16)
  EXPECT_EQ(cache.size(), 16u);
  EXPECT_EQ(cache.first_metre(), 0u);
  EXPECT_FLOAT_EQ(cache.power(8).at(1), -42.0f);  // ours survived
  EXPECT_FLOAT_EQ(cache.power(15).at(0), -115.0f);
}

TEST(SpliceTail, GapRejectsAndLeavesCacheUntouched) {
  ContextTrajectory cache(2, 100);
  ASSERT_TRUE(cache.splice_tail(make_tail(2, 100, 0, 10)));
  EXPECT_FALSE(cache.splice_tail(make_tail(2, 100, 11, 5)));  // hole at 10
  EXPECT_EQ(cache.size(), 10u);
  EXPECT_EQ(cache.first_metre(), 0u);
}

TEST(SpliceTail, AdoptIntoEmptyTakesTailIndexing) {
  ContextTrajectory cache(2, 100);
  ASSERT_TRUE(cache.splice_tail(make_tail(2, 100, 500, 10)));
  EXPECT_EQ(cache.first_metre(), 500u);
  EXPECT_EQ(cache.size(), 10u);
  EXPECT_DOUBLE_EQ(cache.end_distance_m(), 509.0);
}

TEST(SpliceTail, AdoptIntoEmptyOversizedTailKeepsNewestWindow) {
  ContextTrajectory cache(2, 8);  // capacity below the tail length
  ASSERT_TRUE(cache.splice_tail(make_tail(2, 100, 40, 20)));  // [40, 60)
  EXPECT_EQ(cache.size(), 8u);
  EXPECT_EQ(cache.first_metre(), 52u);  // newest 8 of [40, 60)
  EXPECT_FLOAT_EQ(cache.power(0).at(0), -152.0f);
  EXPECT_FLOAT_EQ(cache.power(7).at(0), -159.0f);
}

// Regression: an EMPTY trajectory with a non-zero odometer base (rebase(),
// the codec's receiver-side reconstruction path) adopted a tail by ADDING
// the tail's first metre to the stale base instead of replacing it,
// desynchronizing first_seq_ — every later distance_at/contains_metre and
// watermark computed from the splice was shifted by the stale base.
TEST(SpliceTail, AdoptIntoRebasedEmptyDoesNotDoubleCountBase) {
  ContextTrajectory cache(2, 100);
  cache.rebase(300);  // empty but with a non-zero odometer base
  ASSERT_TRUE(cache.splice_tail(make_tail(2, 100, 500, 10)));
  EXPECT_EQ(cache.first_metre(), 500u);  // was 800 before the fix
  EXPECT_TRUE(cache.contains_metre(505));
  EXPECT_DOUBLE_EQ(cache.end_distance_m(), 509.0);
}

TEST(SpliceTail, AtCapacityDuplicateThenExtension) {
  ContextTrajectory cache(2, 10);
  ASSERT_TRUE(cache.splice_tail(make_tail(2, 100, 0, 10)));  // full window
  const ContextTrajectory dup = make_tail(2, 100, 4, 6);     // stale dup
  ASSERT_TRUE(cache.splice_tail(dup));
  EXPECT_EQ(cache.first_metre(), 0u);  // duplicate must not advance window
  EXPECT_EQ(cache.size(), 10u);
  // Extension past capacity advances the window exactly by the new metres.
  ASSERT_TRUE(cache.splice_tail(make_tail(2, 100, 8, 6)));  // [8, 14)
  EXPECT_EQ(cache.size(), 10u);
  EXPECT_EQ(cache.first_metre(), 4u);
  EXPECT_FLOAT_EQ(cache.power(9).at(0), -113.0f);
}

TEST(SpliceTail, ReorderedRedeliveryConvergesToInOrderResult) {
  // Deliver tails out of order with duplicates, as the fault channel's
  // reorder/duplicate impairments produce them; the cache must converge to
  // the same window an in-order append stream yields.
  ContextTrajectory cache(2, 12);
  ASSERT_TRUE(cache.splice_tail(make_tail(2, 100, 0, 8)));    // [0, 8)
  ASSERT_TRUE(cache.splice_tail(make_tail(2, 100, 6, 6)));    // [6, 12)
  ASSERT_TRUE(cache.splice_tail(make_tail(2, 100, 2, 4)));    // stale dup
  ASSERT_TRUE(cache.splice_tail(make_tail(2, 100, 6, 6)));    // dup again
  ASSERT_TRUE(cache.splice_tail(make_tail(2, 100, 12, 4)));   // [12, 16)
  expect_same(cache, make_tail(2, 12, 4, 12));
}

}  // namespace
}  // namespace rups::core
