#include "core/types.hpp"

#include <gtest/gtest.h>

namespace rups::core {
namespace {

TEST(PowerVector, StartsAllMissing) {
  PowerVector pv(10);
  EXPECT_EQ(pv.channels(), 10u);
  EXPECT_EQ(pv.usable_count(), 0u);
  for (std::size_t c = 0; c < 10; ++c) {
    EXPECT_FALSE(pv.usable(c));
    EXPECT_EQ(pv.state(c), ChannelState::kMissing);
  }
}

TEST(PowerVector, SetAndStates) {
  PowerVector pv(5);
  pv.set(0, -70.0f);
  pv.set(2, -80.0f, ChannelState::kInterpolated);
  EXPECT_TRUE(pv.usable(0));
  EXPECT_TRUE(pv.measured(0));
  EXPECT_TRUE(pv.usable(2));
  EXPECT_FALSE(pv.measured(2));
  EXPECT_EQ(pv.usable_count(), 2u);
  EXPECT_EQ(pv.measured_count(), 1u);
  EXPECT_FLOAT_EQ(pv.at(0), -70.0f);
}

TEST(PowerVector, SetOutOfRangeThrows) {
  PowerVector pv(3);
  EXPECT_THROW(pv.set(3, -70.0f), std::out_of_range);
}

TEST(PowerVector, MeanUsable) {
  PowerVector pv(4);
  EXPECT_DOUBLE_EQ(pv.mean_usable(), 0.0);
  pv.set(0, -60.0f);
  pv.set(1, -80.0f);
  EXPECT_DOUBLE_EQ(pv.mean_usable(), -70.0);
}

TEST(ContextTrajectory, RejectsZeroDims) {
  EXPECT_THROW(ContextTrajectory(0, 10), std::invalid_argument);
  EXPECT_THROW(ContextTrajectory(10, 0), std::invalid_argument);
}

TEST(ContextTrajectory, AppendAndIndex) {
  ContextTrajectory traj(4, 100);
  EXPECT_TRUE(traj.empty());
  traj.append(GeoSample{0.1, 1.0}, PowerVector(4));
  traj.append(GeoSample{0.2, 2.0}, PowerVector(4));
  EXPECT_EQ(traj.size(), 2u);
  EXPECT_DOUBLE_EQ(traj.geo(1).heading_rad, 0.2);
  EXPECT_DOUBLE_EQ(traj.distance_at(0), 0.0);
  EXPECT_DOUBLE_EQ(traj.distance_at(1), 1.0);
  EXPECT_DOUBLE_EQ(traj.end_distance_m(), 1.0);
}

TEST(ContextTrajectory, WidthMismatchThrows) {
  ContextTrajectory traj(4, 100);
  EXPECT_THROW(traj.append(GeoSample{}, PowerVector(5)),
               std::invalid_argument);
}

TEST(ContextTrajectory, CapacityEvictsOldest) {
  ContextTrajectory traj(2, 3);
  for (int i = 0; i < 5; ++i) {
    PowerVector pv(2);
    pv.set(0, static_cast<float>(-100 + i));
    traj.append(GeoSample{0.0, static_cast<double>(i)}, std::move(pv));
  }
  EXPECT_EQ(traj.size(), 3u);
  EXPECT_EQ(traj.first_metre(), 2u);
  EXPECT_FLOAT_EQ(traj.power(0).at(0), -98.0f);  // entry for metre 2
  EXPECT_DOUBLE_EQ(traj.distance_at(0), 2.0);
  EXPECT_DOUBLE_EQ(traj.end_distance_m(), 4.0);
}

TEST(ContextTrajectory, MetreLookup) {
  ContextTrajectory traj(2, 3);
  for (int i = 0; i < 5; ++i) traj.append(GeoSample{}, PowerVector(2));
  EXPECT_FALSE(traj.contains_metre(1));
  EXPECT_TRUE(traj.contains_metre(2));
  EXPECT_TRUE(traj.contains_metre(4));
  EXPECT_FALSE(traj.contains_metre(5));
  EXPECT_EQ(traj.index_of_metre(3), 1u);
}

TEST(ContextTrajectory, MeasuredFraction) {
  ContextTrajectory traj(2, 10);
  PowerVector full(2);
  full.set(0, -70.0f);
  full.set(1, -70.0f);
  PowerVector half(2);
  half.set(0, -70.0f);
  half.set(1, -70.0f, ChannelState::kInterpolated);  // not "measured"
  traj.append(GeoSample{}, std::move(full));
  traj.append(GeoSample{}, std::move(half));
  EXPECT_DOUBLE_EQ(traj.measured_fraction(), 0.75);
}

TEST(ContextTrajectory, MutablePowerRetrofill) {
  ContextTrajectory traj(2, 10);
  traj.append(GeoSample{}, PowerVector(2));
  traj.mutable_power(0).set(1, -55.0f);
  EXPECT_TRUE(traj.power(0).usable(1));
  EXPECT_FLOAT_EQ(traj.power(0).at(1), -55.0f);
}

TEST(PowerVector, ResetRecyclesToAllMissing) {
  PowerVector pv(3);
  pv.set(0, -60.0f);
  pv.set(2, -70.0f, ChannelState::kInterpolated);
  pv.reset();
  EXPECT_EQ(pv.channels(), 3u);
  for (std::size_t c = 0; c < 3; ++c) {
    EXPECT_FALSE(pv.usable(c));
    EXPECT_EQ(pv.state(c), ChannelState::kMissing);
  }
  // A reset vector behaves like a fresh one.
  pv.set(1, -50.0f);
  EXPECT_TRUE(pv.usable(1));
  EXPECT_FLOAT_EQ(pv.at(1), -50.0f);
}

TEST(ContextTrajectory, AppendEvictReturnsDisplacedBuffer) {
  ContextTrajectory traj(2, 3);
  // Below capacity: nothing is displaced; the returned vector is empty-width.
  for (int i = 0; i < 3; ++i) {
    PowerVector pv(2);
    pv.set(0, static_cast<float>(-60 - i));
    const PowerVector evicted =
        traj.append_evict(GeoSample{0.0, static_cast<double>(i)},
                          std::move(pv));
    EXPECT_EQ(evicted.channels(), 0u);
  }
  // At capacity: the oldest metre's vector comes back (content intact —
  // callers recycle it by copy-assigning the next sample over it).
  PowerVector pv(2);
  pv.set(0, -70.0f);
  PowerVector evicted = traj.append_evict(GeoSample{0.0, 3.0}, std::move(pv));
  EXPECT_EQ(evicted.channels(), 2u);
  EXPECT_FLOAT_EQ(evicted.at(0), -60.0f);
  EXPECT_EQ(traj.size(), 3u);
  EXPECT_FLOAT_EQ(traj.power(2).at(0), -70.0f);
  EXPECT_FLOAT_EQ(traj.power(0).at(0), -61.0f);
  // reset() makes the recycled buffer indistinguishable from a fresh one.
  evicted.reset();
  EXPECT_FALSE(evicted.usable(0));
  EXPECT_EQ(evicted.channels(), 2u);
}

}  // namespace
}  // namespace rups::core
