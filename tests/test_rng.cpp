#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

namespace rups::util {
namespace {

TEST(SplitMix64, DeterministicSequence) {
  SplitMix64 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DifferentSeedsDiffer) {
  SplitMix64 a(1), b(2);
  EXPECT_NE(a.next(), b.next());
}

TEST(Mix64, IsDeterministicAndSpreads) {
  EXPECT_EQ(mix64(123), mix64(123));
  std::set<std::uint64_t> seen;
  for (std::uint64_t i = 0; i < 1000; ++i) seen.insert(mix64(i));
  EXPECT_EQ(seen.size(), 1000u);  // no collisions among consecutive keys
}

TEST(HashCombine, OrderSensitive) {
  EXPECT_NE(hash_combine(1, 2), hash_combine(2, 1));
  EXPECT_EQ(hash_combine(7, 9), hash_combine(7, 9));
}

TEST(Xoshiro256, Reproducible) {
  Xoshiro256 a(7), b(7);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Xoshiro256, JumpDecorrelates) {
  Xoshiro256 a(7), b(7);
  b.jump();
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(Rng, UniformInRange) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformBoundsRespected) {
  Rng rng(4);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformIntInclusive) {
  Rng rng(5);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.uniform_int(-2, 3);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 6u);  // all six values hit
}

TEST(Rng, GaussianMoments) {
  Rng rng(6);
  double sum = 0.0, sumsq = 0.0;
  constexpr int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.gaussian();
    sum += g;
    sumsq += g * g;
  }
  const double mean = sum / n;
  const double var = sumsq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(Rng, GaussianWithParams) {
  Rng rng(7);
  double sum = 0.0;
  constexpr int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.gaussian(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.1);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(8);
  int hits = 0;
  constexpr int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, ExponentialMean) {
  Rng rng(9);
  double sum = 0.0;
  constexpr int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(2.0);
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Rng, ForkIsIndependent) {
  Rng a(11);
  Rng b = a.fork();
  // The fork advanced `a`; both still produce valid but different streams.
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a.generator()() == b.generator()()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

class RngSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngSeedSweep, UniformMeanNearHalf) {
  Rng rng(GetParam());
  double sum = 0.0;
  constexpr int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngSeedSweep,
                         ::testing::Values(0ULL, 1ULL, 42ULL, 1234567ULL,
                                           0xffffffffffffffffULL));

}  // namespace
}  // namespace rups::util
