#include <gtest/gtest.h>

#include <cmath>

#include "core/dead_reckoner.hpp"
#include "core/heading.hpp"
#include "core/speed.hpp"
#include "util/angle.hpp"

namespace rups::core {
namespace {

TEST(HeadingFromMag, CardinalDirections) {
  const double bh = 30.0;
  // theta = 0 (east): m = (-bh, 0, z).
  EXPECT_NEAR(heading_from_mag({-bh, 0.0, -35.0}), 0.0, 1e-12);
  // theta = pi/2 (north): m = (0, bh, z).
  EXPECT_NEAR(heading_from_mag({0.0, bh, -35.0}), M_PI / 2, 1e-12);
  // theta = pi (west): m = (bh, 0, z).
  EXPECT_NEAR(std::abs(heading_from_mag({bh, 0.0, -35.0})), M_PI, 1e-12);
}

TEST(HeadingFromMag, RoundTripAllAngles) {
  const double bh = 30.0;
  for (double th = -3.1; th <= 3.1; th += 0.17) {
    const util::Vec3 m{-bh * std::cos(th), bh * std::sin(th), -35.0};
    EXPECT_NEAR(util::angle_diff(heading_from_mag(m), th), 0.0, 1e-9);
  }
}

TEST(HeadingEstimator, InitializesFromFirstMag) {
  HeadingEstimator est;
  EXPECT_FALSE(est.initialized());
  est.update(0.0, 0.005, nullptr);
  EXPECT_FALSE(est.initialized());
  const util::Vec3 m{-30.0, 0.0, -35.0};  // east
  est.update(0.0, 0.005, &m);
  EXPECT_TRUE(est.initialized());
  EXPECT_NEAR(est.heading_rad(), 0.0, 1e-9);
}

TEST(HeadingEstimator, IntegratesGyro) {
  HeadingEstimator est(/*mag_gain=*/0.0);
  const util::Vec3 m{-30.0, 0.0, -35.0};
  est.update(0.0, 0.005, &m);
  for (int i = 0; i < 200; ++i) est.update(0.5, 0.005);  // 1 s at 0.5 rad/s
  EXPECT_NEAR(est.heading_rad(), 0.5, 1e-9);
}

TEST(HeadingEstimator, MagCorrectsGyroDrift) {
  HeadingEstimator est(/*mag_gain=*/2.0);
  const double true_heading = 1.0;
  const util::Vec3 m{-30.0 * std::cos(true_heading),
                     30.0 * std::sin(true_heading), -35.0};
  est.update(0.0, 0.005, &m);
  // Biased gyro (drift 0.05 rad/s) with mag correction for 20 s.
  for (int i = 0; i < 4000; ++i) est.update(0.05, 0.005, &m);
  EXPECT_NEAR(est.heading_rad(), true_heading, 0.05);
}

TEST(SpeedEstimator, NoDataIsZero) {
  SpeedEstimator est;
  EXPECT_FALSE(est.has_data());
  EXPECT_DOUBLE_EQ(est.speed_at(10.0), 0.0);
  EXPECT_EQ(est.trend(), 0);
}

TEST(SpeedEstimator, SingleSampleHolds) {
  SpeedEstimator est;
  est.add_sample({5.0, 12.0});
  EXPECT_DOUBLE_EQ(est.speed_at(5.0), 12.0);
  EXPECT_DOUBLE_EQ(est.speed_at(9.0), 12.0);
}

TEST(SpeedEstimator, InterpolatesBetweenSamples) {
  SpeedEstimator est;
  est.add_sample({0.0, 10.0});
  est.add_sample({2.0, 14.0});
  EXPECT_DOUBLE_EQ(est.speed_at(1.0), 12.0);  // clamped interp inside range
  EXPECT_DOUBLE_EQ(est.speed_at(2.0), 14.0);
  // Extrapolation capped at one period beyond the last sample.
  EXPECT_DOUBLE_EQ(est.speed_at(4.0), 18.0);
  EXPECT_DOUBLE_EQ(est.speed_at(100.0), 18.0);
}

TEST(SpeedEstimator, TrendDetection) {
  SpeedEstimator est;
  est.add_sample({0.0, 10.0});
  est.add_sample({2.0, 12.0});
  EXPECT_EQ(est.trend(), 1);
  est.add_sample({4.0, 9.0});
  EXPECT_EQ(est.trend(), -1);
  est.add_sample({6.0, 9.1});
  EXPECT_EQ(est.trend(), 0);
}

TEST(SpeedEstimator, NeverNegative) {
  SpeedEstimator est;
  est.add_sample({0.0, 2.0});
  est.add_sample({1.0, 0.0});
  EXPECT_GE(est.speed_at(3.0), 0.0);
}

TEST(DeadReckoner, EmitsOneMarkPerMetre) {
  DeadReckoner dr;
  dr.advance(0.0, 0.0, 10.0);  // first call initializes
  std::size_t marks = 0;
  for (int i = 1; i <= 100; ++i) {
    marks += dr.advance(i * 0.1, 0.5, 10.0).size();  // 10 s at 10 m/s
  }
  EXPECT_NEAR(dr.odometer_m(), 100.0, 1e-6);
  EXPECT_EQ(marks, 100u);
  EXPECT_EQ(dr.marks_emitted(), 100u);
}

TEST(DeadReckoner, MarksCarryHeadingAndTime) {
  DeadReckoner dr;
  dr.advance(0.0, 0.0, 0.0);
  const auto marks = dr.advance(1.0, 0.7, 3.0);  // crossed 1.5 m
  ASSERT_EQ(marks.size(), 1u);
  EXPECT_DOUBLE_EQ(marks[0].heading_rad, 0.7);
  EXPECT_DOUBLE_EQ(marks[0].time_s, 1.0);
}

TEST(DeadReckoner, FastStepEmitsMultipleMarks) {
  DeadReckoner dr;
  dr.advance(0.0, 0.0, 20.0);
  const auto marks = dr.advance(0.5, 0.0, 20.0);  // 10 m in one step
  EXPECT_EQ(marks.size(), 10u);
}

TEST(DeadReckoner, StationaryEmitsNothing) {
  DeadReckoner dr;
  dr.advance(0.0, 0.0, 0.0);
  for (int i = 1; i < 100; ++i) {
    EXPECT_TRUE(dr.advance(i * 0.1, 0.0, 0.0).empty());
  }
  EXPECT_DOUBLE_EQ(dr.odometer_m(), 0.0);
}

TEST(DeadReckoner, TrapezoidalIntegration) {
  DeadReckoner dr;
  dr.advance(0.0, 0.0, 0.0);
  dr.advance(2.0, 0.0, 10.0);  // mean speed 5 over 2 s = 10 m
  EXPECT_NEAR(dr.odometer_m(), 10.0, 1e-9);
}

TEST(DeadReckoner, OdometerAtBackExtrapolates) {
  DeadReckoner dr;
  dr.advance(0.0, 0.0, 10.0);
  dr.advance(1.0, 0.0, 10.0);
  EXPECT_NEAR(dr.odometer_at(1.5), 15.0, 1e-9);
  EXPECT_NEAR(dr.odometer_at(0.9), 9.0, 1e-9);
  EXPECT_GE(dr.odometer_at(-100.0), 0.0);
}

TEST(DeadReckoner, NonMonotoneTimeIgnored) {
  DeadReckoner dr;
  dr.advance(0.0, 0.0, 10.0);
  dr.advance(1.0, 0.0, 10.0);
  const double d = dr.odometer_m();
  EXPECT_TRUE(dr.advance(0.5, 0.0, 10.0).empty());
  EXPECT_DOUBLE_EQ(dr.odometer_m(), d);
}

}  // namespace
}  // namespace rups::core
