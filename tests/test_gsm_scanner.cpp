#include "sensors/gsm_scanner.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <tuple>

#include "gsm/rxlev.hpp"

namespace rups::sensors {
namespace {

class GsmScannerTest : public ::testing::Test {
 protected:
  gsm::ChannelPlan plan_ = gsm::ChannelPlan::evaluation_subset(1, 40);
};

TEST_F(GsmScannerTest, RejectsBadConfig) {
  GsmScanner::Config cfg;
  cfg.radios = 0;
  EXPECT_THROW(GsmScanner(&plan_, 1, cfg), std::invalid_argument);
  EXPECT_THROW(GsmScanner(nullptr, 1), std::invalid_argument);
}

TEST_F(GsmScannerTest, SweepTimeScalesWithRadios) {
  GsmScanner::Config one;
  one.radios = 1;
  GsmScanner::Config four;
  four.radios = 4;
  GsmScanner s1(&plan_, 1, one), s4(&plan_, 1, four);
  EXPECT_NEAR(s1.sweep_seconds(), 40 * 0.015, 1e-9);
  EXPECT_NEAR(s4.sweep_seconds(), 10 * 0.015, 1e-9);
}

TEST_F(GsmScannerTest, CoversAllChannelsWithinOneSweep) {
  for (int radios : {1, 2, 4, 7}) {
    GsmScanner::Config cfg;
    cfg.radios = radios;
    cfg.front_noise_db = 0.0;
    GsmScanner scanner(&plan_, 2, cfg);
    std::vector<RssiMeasurement> out;
    scanner.advance(scanner.sweep_seconds() + 0.05,
                    [](std::size_t, double) { return -70.0; }, out);
    std::set<std::size_t> seen;
    for (const auto& m : out) seen.insert(m.channel_index);
    EXPECT_EQ(seen.size(), plan_.size()) << radios << " radios";
  }
}

TEST_F(GsmScannerTest, MeasurementRateMatchesDwell) {
  GsmScanner::Config cfg;
  cfg.radios = 2;
  cfg.batch_report = false;
  GsmScanner scanner(&plan_, 3, cfg);
  std::vector<RssiMeasurement> out;
  scanner.advance(3.0, [](std::size_t, double) { return -70.0; }, out);
  // 2 radios x (3.0 / 0.015) dwells ~ 400 measurements (minus startup).
  EXPECT_NEAR(static_cast<double>(out.size()), 400.0, 10.0);
}

TEST_F(GsmScannerTest, TimesMonotonePerRadioAndQuantized) {
  GsmScanner::Config cfg;
  cfg.batch_report = false;
  GsmScanner scanner(&plan_, 4, cfg);
  std::vector<RssiMeasurement> out;
  scanner.advance(1.0, [](std::size_t c, double) { return -70.0 - 0.37 * c; },
                  out);
  std::vector<double> last_time(8, -1.0);
  for (const auto& m : out) {
    EXPECT_GT(m.time_s, last_time[static_cast<std::size_t>(m.radio)]);
    last_time[static_cast<std::size_t>(m.radio)] = m.time_s;
    // RXLEV round-trip leaves half-dB representatives.
    EXPECT_DOUBLE_EQ(m.rssi_dbm, gsm::RxLev::quantize_dbm(m.rssi_dbm));
  }
}

TEST_F(GsmScannerTest, IncrementalAdvanceEqualsBigStep) {
  GsmScanner::Config cfg;
  cfg.front_noise_db = 0.0;
  GsmScanner a(&plan_, 5, cfg), b(&plan_, 5, cfg);
  const auto truth = [](std::size_t c, double t) {
    return -60.0 - static_cast<double>(c) + t;
  };
  std::vector<RssiMeasurement> out_a, out_b;
  a.advance(2.0, truth, out_a);
  for (int i = 1; i <= 200; ++i) b.advance(i * 0.01, truth, out_b);
  // Emission interleaving differs between one big step and many small ones,
  // but the measurement SET (channel, time) must be identical.
  const auto key = [](const RssiMeasurement& m) {
    return std::make_tuple(m.time_s, m.radio, m.channel_index);
  };
  const auto by_key = [&](const RssiMeasurement& x, const RssiMeasurement& y) {
    return key(x) < key(y);
  };
  std::sort(out_a.begin(), out_a.end(), by_key);
  std::sort(out_b.begin(), out_b.end(), by_key);
  ASSERT_EQ(out_a.size(), out_b.size());
  for (std::size_t i = 0; i < out_a.size(); ++i) {
    EXPECT_EQ(out_a[i].channel_index, out_b[i].channel_index);
    EXPECT_DOUBLE_EQ(out_a[i].time_s, out_b[i].time_s);
  }
}

TEST_F(GsmScannerTest, CenterPlacementAttenuates) {
  GsmScanner::Config front;
  front.front_noise_db = 0.0;
  front.front_structured_db = 0.0;
  GsmScanner::Config center;
  center.placement = RadioPlacement::kCenter;
  center.center_noise_db = 0.0;
  center.center_structured_db = 0.0;
  center.center_dropout_fraction = 0.0;
  GsmScanner sf(&plan_, 6, front), sc(&plan_, 6, center);
  std::vector<RssiMeasurement> of, oc;
  const auto truth = [](std::size_t, double) { return -60.0; };
  sf.advance(1.0, truth, of);
  sc.advance(1.0, truth, oc);
  ASSERT_FALSE(of.empty());
  ASSERT_FALSE(oc.empty());
  EXPECT_NEAR(of[0].rssi_dbm - oc[0].rssi_dbm, center.center_attenuation_db,
              1.1);
}

TEST_F(GsmScannerTest, RadioPartitionIsDisjointComplete) {
  GsmScanner::Config cfg;
  cfg.radios = 3;
  GsmScanner scanner(&plan_, 7, cfg);
  std::vector<RssiMeasurement> out;
  scanner.advance(scanner.sweep_seconds() * 1.1,
                  [](std::size_t, double) { return -70.0; }, out);
  // Each channel must be measured by exactly one radio.
  std::map<std::size_t, std::set<int>> owners;
  for (const auto& m : out) owners[m.channel_index].insert(m.radio);
  EXPECT_EQ(owners.size(), plan_.size());
  for (const auto& [ch, radios] : owners) {
    EXPECT_EQ(radios.size(), 1u) << "channel " << ch;
  }
}

TEST_F(GsmScannerTest, TruthQueriedAtDwellTime) {
  GsmScanner::Config cfg;
  cfg.radios = 1;
  cfg.front_noise_db = 0.0;
  cfg.batch_report = false;
  GsmScanner scanner(&plan_, 8, cfg);
  std::vector<RssiMeasurement> out;
  std::vector<double> query_times;
  scanner.advance(0.5,
                  [&](std::size_t, double t) {
                    query_times.push_back(t);
                    return -70.0;
                  },
                  out);
  ASSERT_EQ(query_times.size(), out.size());
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_DOUBLE_EQ(query_times[i], out[i].time_s);
    EXPECT_LE(out[i].time_s, 0.5);
  }
}

TEST_F(GsmScannerTest, BatchReportStampsAtSweepEnd) {
  GsmScanner::Config cfg;
  cfg.radios = 1;
  cfg.front_noise_db = 0.0;
  cfg.batch_report = true;  // default, spelled out
  GsmScanner scanner(&plan_, 9, cfg);
  std::vector<RssiMeasurement> out;
  std::vector<double> dwell_times;
  scanner.advance(2.0,
                  [&](std::size_t, double t) {
                    dwell_times.push_back(t);
                    return -70.0;
                  },
                  out);
  ASSERT_FALSE(out.empty());
  // All measurements of one sweep share the sweep-completion timestamp,
  // which is at or after the dwell at which the RF level was sampled.
  std::map<double, int> flushes;
  for (const auto& m : out) flushes[m.time_s]++;
  for (const auto& [t, n] : flushes) {
    EXPECT_EQ(n, static_cast<int>(plan_.size())) << "flush at " << t;
  }
  // Dwells happened strictly before (or at) the report time.
  EXPECT_GT(dwell_times.size(), out.size());  // last partial sweep pending
}

TEST_F(GsmScannerTest, BatchOffDeliversImmediately) {
  GsmScanner::Config cfg;
  cfg.radios = 2;
  cfg.batch_report = false;
  GsmScanner scanner(&plan_, 10, cfg);
  std::vector<RssiMeasurement> out;
  std::vector<double> dwell_times;
  scanner.advance(0.5,
                  [&](std::size_t, double t) {
                    dwell_times.push_back(t);
                    return -70.0;
                  },
                  out);
  ASSERT_EQ(dwell_times.size(), out.size());
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_DOUBLE_EQ(out[i].time_s, dwell_times[i]);
  }
}

TEST_F(GsmScannerTest, CenterDropoutLosesDwells) {
  GsmScanner::Config front;
  GsmScanner::Config center = front;
  center.placement = RadioPlacement::kCenter;
  center.center_attenuation_db = 0.0;  // isolate the dropout effect
  GsmScanner sf(&plan_, 11, front), sc(&plan_, 11, center);
  std::vector<RssiMeasurement> of, oc;
  const auto truth = [](std::size_t, double) { return -60.0; };
  sf.advance(30.0, truth, of);
  sc.advance(30.0, truth, oc);
  EXPECT_LT(static_cast<double>(oc.size()),
            0.85 * static_cast<double>(of.size()));
  EXPECT_GT(static_cast<double>(oc.size()),
            0.35 * static_cast<double>(of.size()));
}

}  // namespace
}  // namespace rups::sensors
