#include "core/packed.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/engine.hpp"
#include "core/syn_seeker.hpp"
#include "util/hash_noise.hpp"
#include "util/rng.hpp"

// Pins the packed-window reuse contract: a PackedContext kept in sync
// incrementally (appends, retro-fills, evictions) must be byte-equivalent
// to packing the trajectory from scratch, and a SYN search fed pre-synced
// packs must return BIT-IDENTICAL results to the pack-free path. The
// engine's pack-reuse fast path and SynCache's tracking mode both stand on
// these two properties.

namespace rups::core {
namespace {

float road_rssi(std::uint64_t road_seed, std::int64_t metre, std::size_t ch) {
  const util::HashNoise chan_noise(road_seed ^ 0xABCDULL);
  const util::LatticeField1D spatial(
      util::hash_combine(road_seed, static_cast<std::uint64_t>(ch)), 8.0, 2);
  const double base =
      -95.0 + 40.0 * chan_noise.uniform(static_cast<std::int64_t>(ch));
  return static_cast<float>(base +
                            6.0 * spatial.value(static_cast<double>(metre)));
}

ContextTrajectory drive(std::uint64_t road_seed, std::int64_t road_start,
                        std::size_t len, std::size_t channels,
                        std::size_t capacity, std::uint64_t noise_seed) {
  ContextTrajectory traj(channels, capacity);
  util::Rng rng(noise_seed);
  for (std::size_t i = 0; i < len; ++i) {
    PowerVector pv(channels);
    for (std::size_t c = 0; c < channels; ++c) {
      pv.set(c, road_rssi(road_seed, road_start + static_cast<std::int64_t>(i),
                          c) +
                    static_cast<float>(rng.gaussian(0.0, 0.5)));
    }
    traj.append(GeoSample{}, std::move(pv));
  }
  return traj;
}

void append_one(ContextTrajectory& t, std::uint64_t road_seed,
                std::int64_t road_start, util::Rng& rng) {
  PowerVector pv(t.channels());
  const auto metre = road_start + static_cast<std::int64_t>(t.first_metre()) +
                     static_cast<std::int64_t>(t.size());
  for (std::size_t c = 0; c < t.channels(); ++c) {
    pv.set(c, road_rssi(road_seed, metre, c) +
                  static_cast<float>(rng.gaussian(0.0, 0.5)));
  }
  t.append(GeoSample{}, std::move(pv));
}

/// Element-wise equality of a pack against the trajectory it claims to
/// mirror (x = value + shift, x2 = x*x, v = usability mask).
void expect_pack_matches(const PackedContext& pack,
                         const ContextTrajectory& t) {
  ASSERT_TRUE(pack.in_sync_with(t));
  const PackedSpan s = pack.span();
  ASSERT_EQ(s.metres, t.size());
  ASSERT_EQ(s.channels, t.channels());
  for (std::size_t c = 0; c < s.channels; ++c) {
    for (std::size_t i = 0; i < s.metres; ++i) {
      const PowerVector& pv = t.power(i);
      const float x = s.x[c * s.stride + i];
      const float v = s.v[c * s.stride + i];
      if (c < pv.channels() && pv.usable(c)) {
        const float want = pv.at(c) + kPackShiftDbm;
        EXPECT_EQ(x, want) << "channel " << c << " metre " << i;
        EXPECT_EQ(s.x2[c * s.stride + i], want * want);
        EXPECT_EQ(v, 1.0f);
      } else {
        EXPECT_EQ(x, 0.0f);
        EXPECT_EQ(v, 0.0f);
      }
    }
  }
}

TEST(PackedContext, IncrementalAppendMatchesFreshPack) {
  auto t = drive(1, 0, 120, 24, 400, 7);
  PackedContext incremental;
  incremental.sync(t);
  expect_pack_matches(incremental, t);

  util::Rng rng(99);
  for (int step = 0; step < 40; ++step) {
    append_one(t, 1, 0, rng);
    incremental.sync(t);
    PackedContext fresh;
    fresh.sync(t);
    expect_pack_matches(incremental, t);
    expect_pack_matches(fresh, t);
  }
}

TEST(PackedContext, RetroFillWithinVolatileSuffixIsRepacked) {
  auto t = drive(2, 0, 100, 16, 200, 11);
  PackedContext pack;
  pack.sync(t);

  // Simulate the binder's retro-interpolation: rewrite RSSI in the last
  // metres (within the volatile suffix), then sync again.
  for (std::size_t back = 1; back <= 30; ++back) {
    PowerVector& pv = t.mutable_power(t.size() - back);
    pv.set(3, -70.0f - static_cast<float>(back));
  }
  pack.sync(t);
  expect_pack_matches(pack, t);
}

TEST(PackedContext, EvictionAndCapacityWrapStayInSync) {
  const std::size_t capacity = 150;
  auto t = drive(3, 0, 100, 12, capacity, 13);
  PackedContext pack;
  pack.sync(t);

  // Drive far past capacity so the ring evicts from the front repeatedly.
  util::Rng rng(5);
  for (int step = 0; step < 200; ++step) {
    append_one(t, 3, 0, rng);
    pack.sync(t);
    if (step % 50 == 0) expect_pack_matches(pack, t);
  }
  expect_pack_matches(pack, t);
  EXPECT_GT(t.first_metre(), 0u);
}

TEST(PackedContext, WidthChangeForcesConsistentRepack) {
  auto t16 = drive(4, 0, 80, 16, 200, 17);
  auto t24 = drive(4, 0, 80, 24, 200, 17);
  PackedContext pack;
  pack.sync(t16);
  expect_pack_matches(pack, t16);
  pack.sync(t24);  // channel-count change: full repack
  expect_pack_matches(pack, t24);
  EXPECT_FALSE(pack.in_sync_with(t16));
}

SynConfig small_config() {
  SynConfig cfg;
  cfg.window_m = 40;
  cfg.top_channels = 20;
  cfg.coherency_threshold = 1.2;
  return cfg;
}

TEST(PackedSearch, PackedAndUnpackedSearchesAreBitIdentical) {
  // The packed (all-channel, row-mapped) and unpacked (per-query subset
  // pack) layouts must score every window identically — the determinism
  // guarantees of FleetEngine/SynCache rest on this.
  const auto a = drive(21, 0, 260, 30, 400, 31);
  const auto b = drive(21, 45, 260, 30, 400, 32);
  SynConfig cfg = small_config();
  cfg.syn_points = 3;
  cfg.syn_segment_spacing_m = 30;
  const SynSeeker seeker(cfg);

  PackedContext pa;
  PackedContext pb;
  pa.sync(a);
  pb.sync(b);

  const auto plain = seeker.find(a, b);
  const auto packed = seeker.find(a, b, &pa, &pb);
  ASSERT_EQ(plain.size(), packed.size());
  ASSERT_FALSE(plain.empty());
  for (std::size_t i = 0; i < plain.size(); ++i) {
    EXPECT_EQ(plain[i].index_a, packed[i].index_a);
    EXPECT_EQ(plain[i].index_b, packed[i].index_b);
    EXPECT_EQ(plain[i].window_m, packed[i].window_m);
    EXPECT_EQ(plain[i].correlation, packed[i].correlation);  // bit-exact
  }

  // Mixed: only one side packed must also match.
  const auto mixed_a = seeker.find(a, b, &pa, nullptr);
  const auto mixed_b = seeker.find(a, b, nullptr, &pb);
  ASSERT_EQ(mixed_a.size(), plain.size());
  ASSERT_EQ(mixed_b.size(), plain.size());
  for (std::size_t i = 0; i < plain.size(); ++i) {
    EXPECT_EQ(plain[i].correlation, mixed_a[i].correlation);
    EXPECT_EQ(plain[i].correlation, mixed_b[i].correlation);
  }
}

TEST(PackedSearch, StalePackIsIgnoredNotTrusted) {
  auto a = drive(22, 0, 200, 24, 400, 41);
  const auto b = drive(22, 30, 200, 24, 400, 42);
  const SynSeeker seeker(small_config());

  PackedContext stale;
  stale.sync(a);
  util::Rng rng(6);
  append_one(a, 22, 0, rng);  // grow a: the pack is now out of date

  const auto with_stale = seeker.find_one(a, b, 0, &stale, nullptr);
  const auto without = seeker.find_one(a, b);
  ASSERT_EQ(with_stale.has_value(), without.has_value());
  if (with_stale.has_value()) {
    EXPECT_EQ(with_stale->index_a, without->index_a);
    EXPECT_EQ(with_stale->index_b, without->index_b);
    EXPECT_EQ(with_stale->correlation, without->correlation);
  }
}

TEST(PackedSearch, EngineGrowingContextMatchesScratchSeeker) {
  // The RupsEngine keeps one PackedContext across queries and extends it by
  // the metres driven in between; every query must still equal a scratch
  // SynSeeker run on the same contexts (the pack-reuse fix this pins).
  const std::size_t channels = 24;
  auto local = drive(23, 0, 180, channels, 400, 51);
  const auto neighbour = drive(23, 35, 220, channels, 400, 52);

  SynConfig cfg = small_config();
  PackedContext pack;
  const SynSeeker seeker(cfg);
  util::Rng rng(77);
  for (int round = 0; round < 10; ++round) {
    for (int m = 0; m < 3; ++m) append_one(local, 23, 0, rng);
    pack.sync(local);  // same call pattern as RupsEngine::find_syn_points
    const auto reused = seeker.find(local, neighbour, &pack, nullptr);
    const auto scratch = SynSeeker(cfg).find(local, neighbour);
    ASSERT_EQ(reused.size(), scratch.size()) << "round " << round;
    for (std::size_t i = 0; i < reused.size(); ++i) {
      EXPECT_EQ(reused[i].index_a, scratch[i].index_a);
      EXPECT_EQ(reused[i].index_b, scratch[i].index_b);
      EXPECT_EQ(reused[i].correlation, scratch[i].correlation);
    }
  }
}

}  // namespace
}  // namespace rups::core
