#include "sensors/imu.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/heading.hpp"
#include "util/stats.hpp"

namespace rups::sensors {
namespace {

vehicle::VehicleState make_state(double speed = 0.0, double accel = 0.0,
                                 double heading = 0.0, double t = 0.0) {
  vehicle::VehicleState s;
  s.time_s = t;
  s.speed_mps = speed;
  s.accel_mps2 = accel;
  s.heading_rad = heading;
  return s;
}

TEST(Imu, MountIsARotation) {
  for (std::uint64_t seed : {1ULL, 2ULL, 99ULL}) {
    ImuModel imu(seed);
    const auto should_be_id = imu.mount() * imu.mount().transpose();
    EXPECT_LT(should_be_id.distance(util::Mat3::identity()), 1e-9);
  }
}

TEST(Imu, MountDiffersAcrossVehicles) {
  ImuModel a(1), b(2);
  EXPECT_GT(a.mount().distance(b.mount()), 0.1);
}

TEST(Imu, StationaryMeasuresGravityMagnitude) {
  ImuModel imu(3);
  util::RunningStats mag;
  auto state = make_state();
  for (int i = 0; i < 5000; ++i) {
    state.time_s = i * 0.005;
    mag.add(imu.sample(state, 0.0).accel_mps2.norm());
  }
  EXPECT_NEAR(mag.mean(), ImuModel::kGravity, 0.1);
}

TEST(Imu, GravityDirectionIsMountedZ) {
  ImuModel imu(4);
  // Mean stationary accel (sensor frame) must align with mount * (0,0,1).
  util::Vec3 acc{};
  auto state = make_state();
  for (int i = 0; i < 5000; ++i) {
    state.time_s = i * 0.005;
    acc += imu.sample(state, 0.0).accel_mps2;
  }
  const util::Vec3 mean_dir = acc.normalized();
  const util::Vec3 expected = (imu.mount() * util::Vec3{0, 0, 1}).normalized();
  EXPECT_NEAR(mean_dir.dot(expected), 1.0, 1e-3);
}

TEST(Imu, LongitudinalAccelShowsUpOnMountedY) {
  ImuModel::Config cfg;
  cfg.accel_noise_mps2 = 0.0;
  cfg.accel_bias = {};
  ImuModel imu(5, cfg);
  const auto state = make_state(10.0, 2.0);
  const auto sample = imu.sample(state, 0.0);
  // Remove gravity (known direction) and check the remainder along mount*y.
  const util::Vec3 gravity = imu.mount() * util::Vec3{0, 0, ImuModel::kGravity};
  const util::Vec3 linear = sample.accel_mps2 - gravity;
  const util::Vec3 y_dir = imu.mount() * util::Vec3{0, 1, 0};
  EXPECT_NEAR(linear.dot(y_dir), 2.0, 1e-9);
}

TEST(Imu, GyroReportsYawRate) {
  ImuModel::Config cfg;
  cfg.gyro_noise_rps = 0.0;
  cfg.gyro_bias = {};
  ImuModel imu(6, cfg);
  const auto sample = imu.sample(make_state(10.0), 0.25);
  const util::Vec3 z_dir = imu.mount() * util::Vec3{0, 0, 1};
  EXPECT_NEAR(sample.gyro_rps.dot(z_dir), 0.25, 1e-9);
}

TEST(Imu, MagEncodesHeading) {
  ImuModel::Config cfg;
  cfg.mag_noise_ut = 0.0;
  cfg.mag_disturbance_ut = 0.0;
  ImuModel imu(7, cfg);
  const util::Mat3 vehicle_from_sensor = imu.mount().transpose();
  for (double heading : {0.0, 0.7, -1.2, 3.0}) {
    const auto sample = imu.sample(make_state(10.0, 0.0, heading), 0.0);
    const util::Vec3 mag_vehicle = vehicle_from_sensor * sample.mag_ut;
    EXPECT_NEAR(core::heading_from_mag(mag_vehicle), heading, 1e-6)
        << "heading " << heading;
  }
}

TEST(Imu, CentripetalTermPresent) {
  ImuModel::Config cfg;
  cfg.accel_noise_mps2 = 0.0;
  cfg.accel_bias = {};
  ImuModel imu(8, cfg);
  const double v = 15.0, w = 0.3;
  const auto sample = imu.sample(make_state(v), w);
  const util::Vec3 gravity = imu.mount() * util::Vec3{0, 0, ImuModel::kGravity};
  const util::Vec3 linear = sample.accel_mps2 - gravity;
  const util::Vec3 x_dir = imu.mount() * util::Vec3{1, 0, 0};
  EXPECT_NEAR(linear.dot(x_dir), -v * w, 1e-9);
}

TEST(Imu, NoiseHasConfiguredScale) {
  ImuModel::Config cfg;
  cfg.accel_noise_mps2 = 0.05;
  cfg.accel_bias = {};
  ImuModel imu(9, cfg);
  util::RunningStats x;
  const auto state = make_state();
  const util::Vec3 gravity = imu.mount() * util::Vec3{0, 0, ImuModel::kGravity};
  for (int i = 0; i < 20000; ++i) {
    x.add((imu.sample(state, 0.0).accel_mps2 - gravity).x);
  }
  EXPECT_NEAR(x.stddev(), 0.05, 0.005);
}

}  // namespace
}  // namespace rups::sensors
