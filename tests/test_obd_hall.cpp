#include <gtest/gtest.h>

#include "sensors/hall.hpp"
#include "sensors/obd.hpp"

namespace rups::sensors {
namespace {

vehicle::VehicleState at(double t, double v) {
  vehicle::VehicleState s;
  s.time_s = t;
  s.speed_mps = v;
  return s;
}

TEST(Obd, RespectsPollingRate) {
  ObdSpeedSensor::Config cfg;
  cfg.rate_hz = 0.5;  // every 2 s
  cfg.scale_error = 1e-9;
  ObdSpeedSensor obd(1, cfg);
  int samples = 0;
  for (int i = 0; i <= 1000; ++i) {  // 10 s at 100 Hz
    if (obd.maybe_sample(at(i * 0.01, 10.0)).has_value()) ++samples;
  }
  EXPECT_GE(samples, 5);
  EXPECT_LE(samples, 7);
}

TEST(Obd, QuantizesToWholeKmh) {
  ObdSpeedSensor::Config cfg;
  cfg.rate_hz = 100.0;
  cfg.scale_error = 1e-12;  // suppress the random bias draw
  ObdSpeedSensor obd(2, cfg);
  const auto s = obd.maybe_sample(at(0.0, 10.0));  // 36 km/h exactly
  ASSERT_TRUE(s.has_value());
  EXPECT_NEAR(s->speed_mps * 3.6, 36.0, 1e-9);
  const auto s2 = obd.maybe_sample(at(0.02, 10.1));  // 36.36 -> 36
  ASSERT_TRUE(s2.has_value());
  EXPECT_NEAR(s2->speed_mps * 3.6, 36.0, 1e-9);
}

TEST(Obd, NeverNegative) {
  ObdSpeedSensor obd(3);
  const auto s = obd.maybe_sample(at(0.0, 0.0));
  ASSERT_TRUE(s.has_value());
  EXPECT_GE(s->speed_mps, 0.0);
}

TEST(Obd, RandomScaleBiasIsSmallAndDeterministic) {
  ObdSpeedSensor a(4), b(4), c(5);
  const auto sa = a.maybe_sample(at(0.0, 30.0));
  const auto sb = b.maybe_sample(at(0.0, 30.0));
  const auto sc = c.maybe_sample(at(0.0, 30.0));
  ASSERT_TRUE(sa && sb && sc);
  EXPECT_DOUBLE_EQ(sa->speed_mps, sb->speed_mps);
  EXPECT_NEAR(sa->speed_mps, 30.0, 30.0 * 0.01 + 0.2);
  (void)sc;  // different seed may round to a different km/h bucket
}

TEST(Hall, CountsWheelRevolutions) {
  HallWheelSensor::Config cfg;
  cfg.true_circumference_m = 2.0;
  cfg.calibration_error = 0.0;
  HallWheelSensor hall(1, cfg);
  hall.advance(9.9);
  EXPECT_EQ(hall.pulses(), 4u);
  hall.advance(10.1);
  EXPECT_EQ(hall.pulses(), 5u);
  EXPECT_NEAR(hall.distance_m(), 10.0, 1e-9);
}

TEST(Hall, MonotoneEvenIfInputRepeats) {
  HallWheelSensor hall(2);
  hall.advance(100.0);
  const auto p = hall.pulses();
  hall.advance(99.0);  // stale input must not roll back
  EXPECT_EQ(hall.pulses(), p);
}

TEST(Hall, CalibrationErrorBoundsDistanceError) {
  HallWheelSensor::Config cfg;
  cfg.calibration_error = 0.002;
  HallWheelSensor hall(3, cfg);
  hall.advance(10'000.0);
  // Error = quantization (< one circumference) + scale error (<= 0.2%).
  EXPECT_NEAR(hall.distance_m(), 10'000.0, 10'000.0 * 0.002 + 2.0);
}

TEST(Hall, DeterministicPerSeed) {
  HallWheelSensor a(7), b(7);
  a.advance(5'000.0);
  b.advance(5'000.0);
  EXPECT_DOUBLE_EQ(a.distance_m(), b.distance_m());
}

}  // namespace
}  // namespace rups::sensors
