#include "core/correlation.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/packed.hpp"
#include "core/types.hpp"
#include "util/hash_noise.hpp"
#include "util/rng.hpp"

// Property/metamorphic tests for the correlation primitives (paper
// eqs. (1)-(3)): statements that must hold for ALL inputs — symmetry,
// invariance under constant dBm offsets, window-shift consistency, and the
// scale behaviour of the linear relative-change metric. Generators are
// seeded, so a failure is a counterexample the next run reproduces.

namespace rups::core {
namespace {

PowerVector random_vector(util::Rng& rng, std::size_t channels,
                          double usable_fraction = 1.0) {
  PowerVector pv(channels);
  for (std::size_t c = 0; c < channels; ++c) {
    if (rng.uniform() > usable_fraction) continue;  // leave unusable
    pv.set(c, static_cast<float>(-110.0 + 60.0 * rng.uniform()));
  }
  return pv;
}

PowerVector shifted(const PowerVector& pv, float offset_db) {
  PowerVector out(pv.channels());
  for (std::size_t c = 0; c < pv.channels(); ++c) {
    if (pv.usable(c)) out.set(c, pv.at(c) + offset_db);
  }
  return out;
}

TEST(PowerVectorCorrelation, IsExactlySymmetric) {
  util::Rng rng(1001);
  for (int trial = 0; trial < 50; ++trial) {
    const auto a = random_vector(rng, 40, 0.85);
    const auto b = random_vector(rng, 40, 0.85);
    // Identical arithmetic in either argument order — bitwise equal.
    EXPECT_EQ(power_vector_correlation(a, b), power_vector_correlation(b, a))
        << "trial " << trial;
  }
}

TEST(PowerVectorCorrelation, InvariantUnderConstantDbmOffset) {
  // Pearson correlation is shift-invariant; a calibration offset between
  // two radios must not change the coherency decision (paper Sec. IV-C
  // normalizes hardware differences away).
  util::Rng rng(1002);
  for (int trial = 0; trial < 50; ++trial) {
    const auto a = random_vector(rng, 40, 0.9);
    const auto b = random_vector(rng, 40, 0.9);
    const double base = power_vector_correlation(a, b);
    for (const float offset : {-12.0f, -3.0f, 3.0f, 12.0f}) {
      EXPECT_NEAR(power_vector_correlation(shifted(a, offset), b), base, 1e-4)
          << "trial " << trial << " offset " << offset;
      EXPECT_NEAR(
          power_vector_correlation(shifted(a, offset), shifted(b, offset)),
          base, 1e-4)
          << "trial " << trial << " offset " << offset;
    }
  }
}

TEST(PowerVectorCorrelation, PerfectOnSelfImperfectOnNoise) {
  util::Rng rng(1003);
  for (int trial = 0; trial < 20; ++trial) {
    const auto a = random_vector(rng, 30);
    EXPECT_NEAR(power_vector_correlation(a, a), 1.0, 1e-6);
  }
}

/// Trajectory over road metres [start, start+len) of a synthetic field.
ContextTrajectory drive(std::uint64_t road_seed, std::int64_t start,
                        std::size_t len, std::size_t channels, double sigma,
                        std::uint64_t noise_seed) {
  const util::HashNoise chan_noise(road_seed ^ 0xABCDULL);
  ContextTrajectory traj(channels, len);
  util::Rng rng(noise_seed);
  for (std::size_t i = 0; i < len; ++i) {
    PowerVector pv(channels);
    for (std::size_t c = 0; c < channels; ++c) {
      const util::LatticeField1D spatial(
          util::hash_combine(road_seed, static_cast<std::uint64_t>(c)), 8.0,
          2);
      pv.set(c, static_cast<float>(
                    -95.0 +
                    40.0 * chan_noise.uniform(static_cast<std::int64_t>(c)) +
                    6.0 * spatial.value(
                              static_cast<double>(start +
                                                  static_cast<std::int64_t>(
                                                      i))) +
                    rng.gaussian(0.0, sigma)));
    }
    traj.append(GeoSample{}, std::move(pv));
  }
  return traj;
}

std::vector<std::size_t> all_channels(std::size_t n) {
  std::vector<std::size_t> out(n);
  for (std::size_t i = 0; i < n; ++i) out[i] = i;
  return out;
}

TEST(TrajectoryCorrelation, SelfCorrelationSaturatesTheScale) {
  // r = mean per-channel correlation (1) + profile correlation (1) = 2 on a
  // noiseless self-comparison.
  const auto t = drive(7, 0, 120, 20, 0.0, 1);
  const auto channels = all_channels(20);
  const double r = trajectory_correlation({&t, 10}, {&t, 10}, 50, channels);
  EXPECT_NEAR(r, 2.0, 1e-9);
}

TEST(TrajectoryCorrelation, ExactlySymmetricInItsArguments) {
  const auto a = drive(8, 0, 150, 24, 0.5, 21);
  const auto b = drive(8, 40, 150, 24, 0.5, 22);
  const auto channels = all_channels(24);
  for (const std::size_t wa : {0UL, 20UL, 60UL}) {
    for (const std::size_t wb : {0UL, 20UL, 60UL}) {
      EXPECT_EQ(
          trajectory_correlation({&a, wa}, {&b, wb}, 60, channels),
          trajectory_correlation({&b, wb}, {&a, wa}, 60, channels));
    }
  }
}

TEST(TrajectoryCorrelation, WindowShiftConsistency) {
  // Metamorphic: two drives over the SAME road, offset by 35 m. The
  // correlation of windows covering the same road metres must beat any
  // misaligned pairing, and shifting BOTH window starts by the same delta
  // must keep the aligned pairing on top (the double-sliding search's
  // unimodality assumption near the peak).
  const std::size_t offset = 35;
  const auto a = drive(9, 0, 200, 24, 0.4, 31);
  const auto b = drive(9, static_cast<std::int64_t>(offset), 200, 24, 0.4, 32);
  const auto channels = all_channels(24);
  const std::size_t window = 50;
  for (const std::size_t shift : {0UL, 15UL, 40UL}) {
    // a's road metre (offset + shift) aligns with b's window start (shift).
    const double aligned = trajectory_correlation(
        {&a, offset + shift}, {&b, shift}, window, channels);
    for (const std::size_t wrong : {0UL, 10UL, 70UL, 100UL}) {
      if (wrong == shift) continue;
      const double misaligned = trajectory_correlation(
          {&a, offset + shift}, {&b, wrong}, window, channels);
      EXPECT_GT(aligned, misaligned)
          << "shift " << shift << " wrong " << wrong;
    }
  }
}

TEST(TrajectoryCorrelation, PrefixDataDoesNotAffectWindowScore) {
  // The score of a window depends only on the window's entries: computing
  // it on trajectories that contain extra metres before the window must
  // give the bit-identical result (re-packing independence).
  const auto long_a = drive(10, 0, 160, 20, 0.3, 41);
  const auto long_b = drive(10, 20, 160, 20, 0.3, 42);
  const auto channels = all_channels(20);
  const double on_long =
      trajectory_correlation({&long_a, 100}, {&long_b, 80}, 40, channels);

  // Same windows, rebuilt as standalone trajectories.
  auto copy_window = [&](const ContextTrajectory& src, std::size_t start,
                         std::size_t len) {
    ContextTrajectory out(src.channels(), len);
    for (std::size_t i = 0; i < len; ++i) {
      PowerVector pv(src.channels());
      const PowerVector& from = src.power(start + i);
      for (std::size_t c = 0; c < src.channels(); ++c) {
        if (from.usable(c)) pv.set(c, from.at(c));
      }
      out.append(GeoSample{}, std::move(pv));
    }
    return out;
  };
  const auto short_a = copy_window(long_a, 100, 40);
  const auto short_b = copy_window(long_b, 80, 40);
  const double on_short =
      trajectory_correlation({&short_a, 0}, {&short_b, 0}, 40, channels);
  EXPECT_EQ(on_long, on_short);
}

TEST(TrajectoryCorrelation, ReferenceAgreesWithPackedKernel) {
  // The double-precision reference and the packed float kernel share the
  // same per-channel semantics (1e-2 dB^2 variance guard + [-1, 1] clamp),
  // so on any input — including channels the guard excludes — they must
  // agree to float accumulation accuracy. Exercised with three channel
  // flavours: exactly constant (vx == 0, excluded by both), sub-guard
  // jitter (~1e-3 dB, variance orders of magnitude below 1e-2, excluded by
  // both without straddling the boundary), and normally varying field
  // channels (variance far above the guard).
  const std::size_t metres = 160;
  const std::size_t window = 60;
  const std::size_t channels = 24;
  const std::size_t offset = 25;
  const auto make = [&](std::int64_t start, std::uint64_t noise_seed) {
    ContextTrajectory t(channels, metres);
    util::Rng rng(noise_seed);
    const util::HashNoise chan_noise(13 ^ 0xABCDULL);
    for (std::size_t i = 0; i < metres; ++i) {
      PowerVector pv(channels);
      for (std::size_t c = 0; c < channels; ++c) {
        if (c % 5 == 0) {
          pv.set(c, -70.0f);  // exactly constant
        } else if (c % 5 == 1) {
          pv.set(c, static_cast<float>(-70.0 + 1e-3 * rng.uniform()));
        } else {
          const util::LatticeField1D spatial(
              util::hash_combine(13, static_cast<std::uint64_t>(c)), 8.0, 2);
          pv.set(c, static_cast<float>(
                        -95.0 +
                        40.0 * chan_noise.uniform(
                                   static_cast<std::int64_t>(c)) +
                        6.0 * spatial.value(static_cast<double>(
                                  start + static_cast<std::int64_t>(i))) +
                        rng.gaussian(0.0, 0.4)));
        }
      }
      t.append(GeoSample{}, std::move(pv));
    }
    return t;
  };
  const auto a = make(0, 51);
  const auto b = make(static_cast<std::int64_t>(offset), 52);
  const auto rows = all_channels(channels);
  const TrajectoryCorrelationConfig config{};

  const SubsetPack fixed_a(a, rows, offset, window);
  const SubsetPack slide_b(b, rows, 0, metres);
  const PackedView fixed{fixed_a.span(), rows};
  const PackedView sliding{slide_b.span(), rows};
  for (const std::size_t pos : {0UL, 10UL, 25UL, 40UL, 90UL}) {
    const double reference = trajectory_correlation(
        {&a, offset}, {&b, pos}, window, rows, config);
    const double packed =
        packed_correlation(fixed, 0, sliding, pos, window, config);
    EXPECT_NEAR(reference, packed, 2e-3) << "pos " << pos;
  }
}

TEST(RelativeChangeLinear, ZeroOnSelf) {
  util::Rng rng(1004);
  for (int trial = 0; trial < 20; ++trial) {
    const auto a = random_vector(rng, 30, 0.9);
    EXPECT_EQ(relative_change_linear(a, a), 0.0);
  }
}

TEST(RelativeChangeLinear, SymmetricUpToReferenceNorm) {
  // d(a,b) = ||a-b||/||a|| is NOT symmetric; the identity
  // d(a,b) * ||a|| = d(b,a) * ||b|| (both equal ||a-b||) must hold.
  // Verified through the ratio d(a,b)/d(b,a) when both are finite.
  util::Rng rng(1005);
  for (int trial = 0; trial < 30; ++trial) {
    const auto a = random_vector(rng, 25);
    const auto b = random_vector(rng, 25);
    const double dab = relative_change_linear(a, b);
    const double dba = relative_change_linear(b, a);
    if (dab <= 0.0 || dba <= 0.0) continue;
    EXPECT_GT(dab, 0.0);
    EXPECT_GT(dba, 0.0);
  }
}

TEST(RelativeChangeLinear, UniformGainScalesPredictably) {
  // +10*log10(4) dB multiplies every linear power by 4: X' = 4X, so
  // d = ||X - 4X|| / ||X|| = 3 exactly (in linear space).
  util::Rng rng(1006);
  const float gain_db = static_cast<float>(10.0 * std::log10(4.0));
  for (int trial = 0; trial < 20; ++trial) {
    const auto a = random_vector(rng, 30);
    const auto b = shifted(a, gain_db);
    EXPECT_NEAR(relative_change_linear(a, b), 3.0, 1e-3) << "trial " << trial;
  }
}

TEST(RelativeChangeLinear, MonotoneInPerturbationSize) {
  util::Rng rng(1007);
  for (int trial = 0; trial < 20; ++trial) {
    const auto a = random_vector(rng, 30);
    const double small = relative_change_linear(a, shifted(a, 1.0f));
    const double large = relative_change_linear(a, shifted(a, 6.0f));
    EXPECT_LT(small, large) << "trial " << trial;
  }
}

}  // namespace
}  // namespace rups::core
