#include "core/resolver.hpp"

#include <gtest/gtest.h>

namespace rups::core {
namespace {

ContextTrajectory plain(std::size_t len) {
  ContextTrajectory traj(4, len + 5);
  for (std::size_t i = 0; i < len; ++i) {
    traj.append(GeoSample{}, PowerVector(4));
  }
  return traj;
}

TEST(Resolver, DistanceFromSynIndices) {
  const auto a = plain(100);
  const auto b = plain(100);
  // Window [20, 50) on a matched window [60, 90) on b (w = 30).
  const SynPoint syn{20, 60, 30, 1.5};
  // d1 = 99 - 49 = 50; d2 = 99 - 89 = 10; dr = 40 (a is 40 m in front).
  EXPECT_DOUBLE_EQ(resolve_distance(a, b, syn), 40.0);
}

TEST(Resolver, SymmetricSwapNegates) {
  const auto a = plain(100);
  const auto b = plain(120);
  const SynPoint ab{10, 40, 20, 1.4};
  const SynPoint ba{40, 10, 20, 1.4};
  EXPECT_DOUBLE_EQ(resolve_distance(a, b, ab), -resolve_distance(b, a, ba));
}

TEST(Resolver, EvictionAwareDistances) {
  // Trajectory with eviction: capacity 50, 80 appended -> first_metre 30.
  ContextTrajectory a(4, 50);
  for (int i = 0; i < 80; ++i) a.append(GeoSample{}, PowerVector(4));
  const auto b = plain(100);
  const SynPoint syn{0, 0, 10, 1.3};
  // a: end=79, window end at metre 30+9=39 -> d1 = 40.
  // b: end=99, window end 9 -> d2 = 90. dr = -50.
  EXPECT_DOUBLE_EQ(resolve_distance(a, b, syn), -50.0);
}

TEST(Aggregate, EmptyGivesNullopt) {
  const auto a = plain(50);
  const auto b = plain(50);
  EXPECT_FALSE(aggregate_estimates(a, b, {}, Aggregation::kMean).has_value());
}

class AggregateTest : public ::testing::Test {
 protected:
  ContextTrajectory a_ = plain(100);
  ContextTrajectory b_ = plain(100);

  /// SYN with a given implied distance: vary index_b with fixed index_a.
  /// d = (99 - (index_a + w - 1)) - (99 - (index_b + w - 1)) = index_b - index_a.
  SynPoint syn_with_distance(double d, double corr) const {
    return SynPoint{10, 10 + static_cast<std::size_t>(d), 20, corr};
  }
};

TEST_F(AggregateTest, SingleBestUsesHighestCorrelation) {
  const std::vector<SynPoint> syns{
      syn_with_distance(10, 1.3),
      syn_with_distance(50, 1.9),  // best
      syn_with_distance(20, 1.5),
  };
  const auto est =
      aggregate_estimates(a_, b_, syns, Aggregation::kSingleBest);
  ASSERT_TRUE(est.has_value());
  EXPECT_DOUBLE_EQ(est->distance_m, 50.0);
  EXPECT_EQ(est->syn_count, 1u);
  EXPECT_DOUBLE_EQ(est->confidence, 1.9);
}

TEST_F(AggregateTest, MeanAveragesAll) {
  const std::vector<SynPoint> syns{
      syn_with_distance(10, 1.3), syn_with_distance(20, 1.4),
      syn_with_distance(60, 1.5)};
  const auto est = aggregate_estimates(a_, b_, syns, Aggregation::kMean);
  ASSERT_TRUE(est.has_value());
  EXPECT_DOUBLE_EQ(est->distance_m, 30.0);
  EXPECT_EQ(est->syn_count, 3u);
}

TEST_F(AggregateTest, SelectiveMeanDropsExtremes) {
  // One passing-truck outlier (80) must not move the estimate.
  const std::vector<SynPoint> syns{
      syn_with_distance(18, 1.3), syn_with_distance(20, 1.6),
      syn_with_distance(22, 1.4), syn_with_distance(80, 1.9),
      syn_with_distance(16, 1.5)};
  const auto est =
      aggregate_estimates(a_, b_, syns, Aggregation::kSelectiveMean);
  ASSERT_TRUE(est.has_value());
  EXPECT_DOUBLE_EQ(est->distance_m, 20.0);  // (18+20+22)/3
  EXPECT_EQ(est->syn_count, 5u);
  EXPECT_DOUBLE_EQ(est->confidence, 1.9);
}

TEST_F(AggregateTest, SelectiveMeanFallsBackForTwoEstimates) {
  const std::vector<SynPoint> syns{syn_with_distance(10, 1.3),
                                   syn_with_distance(30, 1.4)};
  const auto est =
      aggregate_estimates(a_, b_, syns, Aggregation::kSelectiveMean);
  ASSERT_TRUE(est.has_value());
  EXPECT_DOUBLE_EQ(est->distance_m, 20.0);
}

TEST_F(AggregateTest, MedianOddAndEven) {
  const std::vector<SynPoint> odd{syn_with_distance(10, 1.3),
                                  syn_with_distance(50, 1.4),
                                  syn_with_distance(20, 1.5)};
  EXPECT_DOUBLE_EQ(
      aggregate_estimates(a_, b_, odd, Aggregation::kMedian)->distance_m,
      20.0);
  const std::vector<SynPoint> even{syn_with_distance(10, 1.3),
                                   syn_with_distance(20, 1.4),
                                   syn_with_distance(30, 1.5),
                                   syn_with_distance(40, 1.6)};
  EXPECT_DOUBLE_EQ(
      aggregate_estimates(a_, b_, even, Aggregation::kMedian)->distance_m,
      25.0);
}

}  // namespace
}  // namespace rups::core
