// Sampling span-stack profiler: the cross-thread sampling surface
// (obs::sample_span_stacks), the folded-profile aggregation maths, and the
// SpanProfiler background-thread lifecycle.

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "obs/timer.hpp"

namespace rups::obs {
namespace {

Histogram& scratch_hist() {
  return Registry::global().histogram("profiler_test.scratch_us");
}

// ---------------------------------------------------------------------------
// sample_span_stacks: deterministic — samples the caller's own open spans.

TEST(SampleSpanStacks, SeesOwnNestedSpansInnermostLast) {
  ObsTimer outer(&scratch_hist(), "proftest.outer");
  ObsTimer inner(&scratch_hist(), "proftest.inner");

  const std::vector<SampledStack> stacks = sample_span_stacks();
  const SampledStack* mine = nullptr;
  for (const SampledStack& s : stacks) {
    for (const char* frame : s.frames) {
      if (std::string_view(frame) == "proftest.outer") mine = &s;
    }
  }
  ASSERT_NE(mine, nullptr) << "calling thread's stack not sampled";
  ASSERT_GE(mine->frames.size(), 2u);
  // Outer-first order: the folded key reads root;...;leaf.
  std::size_t outer_at = mine->frames.size();
  std::size_t inner_at = 0;
  for (std::size_t i = 0; i < mine->frames.size(); ++i) {
    if (std::string_view(mine->frames[i]) == "proftest.outer") outer_at = i;
    if (std::string_view(mine->frames[i]) == "proftest.inner") inner_at = i;
  }
  EXPECT_LT(outer_at, inner_at);
}

TEST(SampleSpanStacks, ClosedSpansDisappear) {
  {
    ObsTimer t(&scratch_hist(), "proftest.transient");
  }
  for (const SampledStack& s : sample_span_stacks()) {
    for (const char* frame : s.frames) {
      EXPECT_NE(std::string_view(frame), "proftest.transient");
    }
  }
}

// ---------------------------------------------------------------------------
// FoldedProfile maths (plain data, no threads involved).

FoldedProfile make_profile() {
  FoldedProfile p;
  p.rows = {{"round", 10},
            {"round;task", 30},
            {"round;task;kernel", 50},
            {"round;v2v", 10}};
  p.total_samples = 100;
  p.ticks = 120;
  return p;
}

TEST(FoldedProfile, ToFoldedEmitsOneLinePerStack) {
  EXPECT_EQ(make_profile().to_folded(),
            "round 10\n"
            "round;task 30\n"
            "round;task;kernel 50\n"
            "round;v2v 10\n");
  EXPECT_EQ(FoldedProfile{}.to_folded(), "");
}

TEST(FoldedProfile, AttributionSelfAndTotal) {
  const auto rows = make_profile().attribution();
  ASSERT_EQ(rows.size(), 4u);
  // Sorted by self descending, then name: kernel 50, task 30, round 10,
  // v2v 10.
  EXPECT_EQ(rows[0].stage, "kernel");
  EXPECT_EQ(rows[0].self, 50u);
  EXPECT_EQ(rows[0].total, 50u);
  EXPECT_EQ(rows[1].stage, "task");
  EXPECT_EQ(rows[1].self, 30u);
  EXPECT_EQ(rows[1].total, 80u);  // anywhere in "round;task*" stacks
  EXPECT_EQ(rows[2].stage, "round");
  EXPECT_EQ(rows[2].self, 10u);
  EXPECT_EQ(rows[2].total, 100u);  // root of every stack
  EXPECT_EQ(rows[3].stage, "v2v");
  EXPECT_EQ(rows[3].self, 10u);
  EXPECT_EQ(rows[3].total, 10u);
}

TEST(FoldedProfile, AttributionTableRendersEveryStage) {
  const std::string table = make_profile().attribution_table();
  EXPECT_NE(table.find("stage"), std::string::npos);
  EXPECT_NE(table.find("kernel"), std::string::npos);
  EXPECT_NE(table.find("round"), std::string::npos);
  EXPECT_NE(table.find("100.0%"), std::string::npos);  // round total share
}

// ---------------------------------------------------------------------------
// SpanProfiler lifecycle: background sampling of a live workload.

TEST(SpanProfiler, SamplesABusySpanAndStopsCleanly) {
  SpanProfiler::Options options;
  options.period_us = 100.0;  // clamped floor is 50us; keep the test fast
  SpanProfiler profiler(options);
  EXPECT_FALSE(profiler.running());
  profiler.start();
  profiler.start();  // idempotent
  EXPECT_TRUE(profiler.running());

  // Busy-wait inside a named span until the sampler has seen it (bounded:
  // ~2s worst case on a loaded container).
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(2);
  bool sampled = false;
  {
    ObsTimer span(&scratch_hist(), "proftest.busy");
    while (std::chrono::steady_clock::now() < deadline) {
      const FoldedProfile p = profiler.profile();  // safe while running
      bool found = false;
      for (const auto& row : p.rows) {
        if (row.stack.find("proftest.busy") != std::string::npos) found = true;
      }
      if (found) {
        sampled = true;
        break;
      }
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  }
  profiler.stop();
  profiler.stop();  // idempotent
  EXPECT_FALSE(profiler.running());
  EXPECT_TRUE(sampled) << "sampler never observed the busy span";

  const FoldedProfile final_profile = profiler.profile();
  EXPECT_GT(final_profile.total_samples, 0u);
  EXPECT_GT(final_profile.ticks, 0u);
  std::uint64_t row_sum = 0;
  for (const auto& row : final_profile.rows) row_sum += row.samples;
  EXPECT_EQ(row_sum, final_profile.total_samples);
  // Idle ticks (no open span anywhere) are counted but produce no samples.
  EXPECT_GE(final_profile.ticks, final_profile.total_samples);
}

TEST(SpanProfiler, RestartAccumulatesIntoTheSameProfile) {
  SpanProfiler::Options options;
  options.period_us = 100.0;
  SpanProfiler profiler(options);
  profiler.start();
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  profiler.stop();
  const std::uint64_t ticks_first = profiler.profile().ticks;
  EXPECT_GT(ticks_first, 0u);

  profiler.start();
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  profiler.stop();
  EXPECT_GT(profiler.profile().ticks, ticks_first);
}

TEST(SpanProfiler, DestructorJoinsARunningSampler) {
  {
    SpanProfiler profiler;
    profiler.start();
    // Falling out of scope while running must join, not crash or leak the
    // thread into the next test.
  }
  SUCCEED();
}

}  // namespace
}  // namespace rups::obs
