#include "util/csv.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

namespace rups::util {
namespace {

class CsvRoundTrip : public ::testing::Test {
 protected:
  std::filesystem::path path_ =
      std::filesystem::temp_directory_path() /
      ("rups_csv_test_" + std::to_string(::getpid()) + ".csv");

  void TearDown() override { std::filesystem::remove(path_); }
};

TEST_F(CsvRoundTrip, SimpleRows) {
  {
    CsvWriter w(path_);
    w.row(std::vector<std::string>{"a", "b", "c"});
    w.row(std::vector<std::string>{"1", "2", "3"});
  }
  CsvReader r(path_);
  ASSERT_EQ(r.row_count(), 2u);
  EXPECT_EQ(r.rows()[0], (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(r.rows()[1], (std::vector<std::string>{"1", "2", "3"}));
}

TEST_F(CsvRoundTrip, EscapedCells) {
  {
    CsvWriter w(path_);
    w.row(std::vector<std::string>{"has,comma", "has\"quote", "has\nnewline"});
  }
  CsvReader r(path_);
  ASSERT_EQ(r.row_count(), 1u);
  EXPECT_EQ(r.rows()[0][0], "has,comma");
  EXPECT_EQ(r.rows()[0][1], "has\"quote");
  EXPECT_EQ(r.rows()[0][2], "has\nnewline");
}

TEST_F(CsvRoundTrip, DoubleRowsRoundTripExactly) {
  {
    CsvWriter w(path_);
    w.row(std::vector<double>{1.5, -2.25, 3.141592653589793});
  }
  CsvReader r(path_);
  ASSERT_EQ(r.row_count(), 1u);
  EXPECT_DOUBLE_EQ(std::stod(r.rows()[0][2]), 3.141592653589793);
}

TEST(CsvEscape, OnlyWhenNeeded) {
  EXPECT_EQ(CsvWriter::escape("plain"), "plain");
  EXPECT_EQ(CsvWriter::escape("a,b"), "\"a,b\"");
  EXPECT_EQ(CsvWriter::escape("say \"hi\""), "\"say \"\"hi\"\"\"");
}

TEST(CsvReaderString, ParsesCrlf) {
  const auto r = CsvReader::from_string("a,b\r\nc,d\r\n");
  ASSERT_EQ(r.row_count(), 2u);
  EXPECT_EQ(r.rows()[1][1], "d");
}

TEST(CsvReaderString, EmptyCells) {
  const auto r = CsvReader::from_string("a,,c\n,,\n");
  ASSERT_EQ(r.row_count(), 2u);
  EXPECT_EQ(r.rows()[0][1], "");
  EXPECT_EQ(r.rows()[1].size(), 3u);
}

TEST(CsvReaderString, QuotedCommaAndNewline) {
  const auto r = CsvReader::from_string("\"x,y\",\"line1\nline2\"\n");
  ASSERT_EQ(r.row_count(), 1u);
  EXPECT_EQ(r.rows()[0][0], "x,y");
  EXPECT_EQ(r.rows()[0][1], "line1\nline2");
}

TEST(CsvReaderString, NoTrailingNewline) {
  const auto r = CsvReader::from_string("a,b");
  ASSERT_EQ(r.row_count(), 1u);
  EXPECT_EQ(r.rows()[0][1], "b");
}

TEST(CsvReaderString, EmptyInputHasNoRows) {
  const auto r = CsvReader::from_string("");
  EXPECT_EQ(r.row_count(), 0u);
}

TEST(CsvReader, MissingFileThrows) {
  EXPECT_THROW(CsvReader("/nonexistent/definitely/missing.csv"),
               std::runtime_error);
}

}  // namespace
}  // namespace rups::util
