#include "util/ring_buffer.hpp"

#include <gtest/gtest.h>

#include <string>

namespace rups::util {
namespace {

TEST(RingBuffer, StartsEmpty) {
  RingBuffer<int> rb(3);
  EXPECT_TRUE(rb.empty());
  EXPECT_EQ(rb.size(), 0u);
  EXPECT_EQ(rb.capacity(), 3u);
  EXPECT_FALSE(rb.full());
}

TEST(RingBuffer, RejectsZeroCapacity) {
  EXPECT_THROW(RingBuffer<int>(0), std::invalid_argument);
}

TEST(RingBuffer, PushUntilFull) {
  RingBuffer<int> rb(3);
  rb.push(1);
  rb.push(2);
  EXPECT_EQ(rb.size(), 2u);
  EXPECT_EQ(rb.front(), 1);
  EXPECT_EQ(rb.back(), 2);
  rb.push(3);
  EXPECT_TRUE(rb.full());
}

TEST(RingBuffer, EvictsOldest) {
  RingBuffer<int> rb(3);
  for (int i = 1; i <= 5; ++i) rb.push(i);
  EXPECT_EQ(rb.size(), 3u);
  EXPECT_EQ(rb[0], 3);
  EXPECT_EQ(rb[1], 4);
  EXPECT_EQ(rb[2], 5);
  EXPECT_EQ(rb.front(), 3);
  EXPECT_EQ(rb.back(), 5);
}

TEST(RingBuffer, OldestFirstOrderMaintainedUnderChurn) {
  RingBuffer<int> rb(4);
  for (int i = 0; i < 100; ++i) {
    rb.push(i);
    if (i >= 3) {
      for (std::size_t j = 0; j < 4; ++j) {
        EXPECT_EQ(rb[j], i - 3 + static_cast<int>(j));
      }
    }
  }
}

TEST(RingBuffer, Clear) {
  RingBuffer<int> rb(2);
  rb.push(1);
  rb.push(2);
  rb.clear();
  EXPECT_TRUE(rb.empty());
  rb.push(9);
  EXPECT_EQ(rb.front(), 9);
}

TEST(RingBuffer, ToVectorOldestFirst) {
  RingBuffer<std::string> rb(3);
  rb.push("a");
  rb.push("b");
  rb.push("c");
  rb.push("d");
  const auto v = rb.to_vector();
  ASSERT_EQ(v.size(), 3u);
  EXPECT_EQ(v[0], "b");
  EXPECT_EQ(v[2], "d");
}

TEST(RingBuffer, MutableIndexing) {
  RingBuffer<int> rb(2);
  rb.push(1);
  rb.push(2);
  rb[0] = 42;
  EXPECT_EQ(rb.front(), 42);
}

}  // namespace
}  // namespace rups::util
