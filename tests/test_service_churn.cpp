// Arena hygiene of MatcherService under vehicle churn: deregistering must
// return freelist slots (vehicle, pair-session, subscription), purge queued
// requests that still reference the released slot, and drop stale SynCache
// state — so 1k migrate cycles leave the arena census exactly flat.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "service/matcher_service.hpp"
#include "sim/service_sim.hpp"

namespace rups {
namespace {

service::ServiceConfig small_service() {
  service::ServiceConfig cfg;
  cfg.fleet.rups.channels = 12;
  cfg.fleet.rups.context_capacity_m = 120;
  cfg.shard_count = 2;
  cfg.queue_capacity = 64;
  cfg.max_vehicles = 16;
  cfg.max_sessions = 64;
  return cfg;
}

/// Feed `rounds` of CityFleet context into the service.
void feed(service::MatcherService& svc, sim::CityFleet& city,
          std::size_t rounds) {
  for (std::size_t r = 0; r < rounds; ++r) {
    city.advance_round();
    svc.begin_round();
    for (std::size_t v = 0; v < city.vehicle_count(); ++v) {
      for (const auto& s : city.samples(v)) {
        (void)svc.observe(city.vehicle_id(v), s.position_m, s.geo, s.power);
      }
    }
  }
}

TEST(ServiceChurn, DeregisterReturnsVehicleSlotToFreelist) {
  service::MatcherService svc(small_service());
  for (std::uint64_t id = 1; id <= 16; ++id) {
    ASSERT_TRUE(svc.register_vehicle(id, static_cast<double>(id)));
  }
  EXPECT_FALSE(svc.register_vehicle(99, 0.0));  // arena full

  EXPECT_TRUE(svc.deregister_vehicle(7));
  EXPECT_EQ(svc.vehicle_count(), 15u);
  EXPECT_TRUE(svc.register_vehicle(99, 0.0));  // the slot came back
  EXPECT_EQ(svc.vehicle_count(), 16u);
}

TEST(ServiceChurn, MidRoundDeregisterPurgesQueuedRequests) {
  service::MatcherService svc(small_service());
  ASSERT_TRUE(svc.register_vehicle(1, 10.0));
  ASSERT_TRUE(svc.register_vehicle(2, 20.0));
  ASSERT_TRUE(svc.register_vehicle(3, 30.0));

  svc.begin_round();
  const auto t12 = svc.submit(1, 2);
  const auto t13 = svc.submit(1, 3);
  ASSERT_TRUE(t12.accepted());
  ASSERT_TRUE(t13.accepted());

  // Vehicle 2 leaves while its request is still queued. The drain must not
  // touch the released slot; the ticket resolves to "no estimate".
  ASSERT_TRUE(svc.deregister_vehicle(2));
  svc.drain();
  EXPECT_FALSE(svc.result(t12).estimate.has_value());
  // The untouched pair still drained normally (no estimate expected — the
  // contexts are empty — but the request was processed, not purged).
  EXPECT_EQ(svc.shard_stats(t13.shard).processed +
                svc.shard_stats(1 - t13.shard).processed,
            1u);
}

TEST(ServiceChurn, DeregisterTearsDownSubscriptions) {
  service::MatcherService svc(small_service());
  ASSERT_TRUE(svc.register_vehicle(1, 10.0));
  ASSERT_TRUE(svc.register_vehicle(2, 20.0));

  const auto sub = svc.subscribe(1, 2);
  ASSERT_TRUE(sub.accepted());
  EXPECT_EQ(svc.stream_count(), 1u);

  // Idempotent: re-subscribing the same pair returns the same slot.
  const auto again = svc.subscribe(1, 2);
  EXPECT_TRUE(again.accepted());
  EXPECT_EQ(again.index, sub.index);
  EXPECT_EQ(svc.stream_count(), 1u);

  ASSERT_TRUE(svc.deregister_vehicle(2));
  EXPECT_EQ(svc.stream_count(), 0u);
  EXPECT_FALSE(svc.unsubscribe(1, 2));  // already gone
}

TEST(ServiceChurn, ArenaCensusFlatOverThousandMigrateCycles) {
  sim::CityFleetConfig ccfg;
  ccfg.vehicles = 6;
  ccfg.channels = 12;
  ccfg.context_capacity_m = 120;
  ccfg.seed = 0xC0FFEE;
  sim::CityFleet city(ccfg);

  service::MatcherService svc(small_service());
  for (std::size_t v = 0; v < city.vehicle_count(); ++v) {
    ASSERT_TRUE(svc.register_vehicle(city.vehicle_id(v), city.position(v)));
  }
  feed(svc, city, 4);  // build context so drains do real work

  const std::size_t vehicles0 = svc.vehicle_count();
  ASSERT_TRUE(svc.subscribe(city.vehicle_id(0), city.vehicle_id(1)).accepted());
  const std::size_t streams0 = svc.stream_count();
  std::uint32_t sub_slot = service::MatcherService::kInvalidIndex;

  for (int cycle = 0; cycle < 1000; ++cycle) {
    // One vehicle "migrates": full deregister (slot, sessions, caches,
    // subscriptions) then immediate re-register at a new position.
    const std::size_t migrant = 1 + static_cast<std::size_t>(cycle % 5);
    const std::uint64_t id = city.vehicle_id(migrant);
    ASSERT_TRUE(svc.deregister_vehicle(id));
    ASSERT_TRUE(svc.register_vehicle(id, city.position(migrant)));

    // Keep a live round going across the churn.
    city.advance_round();
    svc.begin_round();
    for (std::size_t v = 0; v < city.vehicle_count(); ++v) {
      for (const auto& s : city.samples(v)) {
        (void)svc.observe(city.vehicle_id(v), s.position_m, s.geo, s.power);
      }
    }
    for (const auto& q : city.queries()) {
      (void)svc.submit(city.vehicle_id(q.ego), city.vehicle_id(q.neighbour));
    }
    svc.drain();

    // Re-subscribe the pair the migration may have torn down; the
    // subscription arena must recycle ONE slot forever, not grow.
    const auto sub = svc.subscribe(city.vehicle_id(0), city.vehicle_id(1));
    ASSERT_TRUE(sub.accepted());
    if (sub_slot == service::MatcherService::kInvalidIndex) {
      sub_slot = sub.index;
    } else {
      ASSERT_LE(sub.index, 1u) << "subscription slots leaking";
    }
    svc.drain_stream();

    // Census: every arena returns to its pre-cycle occupancy.
    ASSERT_EQ(svc.vehicle_count(), vehicles0) << "cycle " << cycle;
    ASSERT_EQ(svc.stream_count(), streams0) << "cycle " << cycle;
    ASSERT_LE(svc.session_count(), svc.config().max_sessions);
  }
}

TEST(ServiceChurn, SessionArenaBoundedUnderPairChurn) {
  service::ServiceConfig cfg = small_service();
  cfg.max_sessions = 8;
  service::MatcherService svc(cfg);
  for (std::uint64_t id = 1; id <= 10; ++id) {
    ASSERT_TRUE(svc.register_vehicle(id, static_cast<double>(id) * 10.0));
  }
  // Sessions are created per distinct pair and released on deregister;
  // churning one vehicle through many partners must never exhaust the
  // arena, because its sessions die with it.
  for (int cycle = 0; cycle < 200; ++cycle) {
    svc.begin_round();
    for (std::uint64_t nb = 2; nb <= 8; ++nb) {
      const auto t = svc.submit(1, nb);
      ASSERT_TRUE(t.accepted()) << "cycle " << cycle << " nb " << nb;
    }
    svc.drain();
    ASSERT_TRUE(svc.deregister_vehicle(1));
    ASSERT_TRUE(svc.register_vehicle(1, 10.0));
    ASSERT_EQ(svc.session_count(), 0u) << "sessions leaked, cycle " << cycle;
  }
}

}  // namespace
}  // namespace rups
