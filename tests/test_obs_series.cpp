#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "obs/obs.hpp"
#include "sim/fleet_sim.hpp"
#include "util/csv.hpp"
#include "util/thread_pool.hpp"

namespace rups::obs {
namespace {

TEST(WindowQuantile, EmptyDeltaYieldsZero) {
  EXPECT_DOUBLE_EQ(window_quantile({10.0, 20.0}, {}, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(window_quantile({10.0, 20.0}, {0, 0, 0}, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(window_quantile({}, {5}, 0.5), 0.0);
}

TEST(WindowQuantile, InterpolatesWithinBuckets) {
  // 10 samples: 5 in (0..10], 4 in (10..20], 1 beyond 20.
  const std::vector<double> bounds{10.0, 20.0};
  const std::vector<std::uint64_t> buckets{5, 4, 1};
  EXPECT_NEAR(window_quantile(bounds, buckets, 0.5), 10.0, 1e-9);
  EXPECT_NEAR(window_quantile(bounds, buckets, 0.8), 17.5, 1e-9);
  EXPECT_DOUBLE_EQ(window_quantile(bounds, buckets, 0.0), 0.0);
}

TEST(WindowQuantile, UnboundedBucketResolvesToLargestFiniteBound) {
  // No per-window min/max exists for a bucket delta, so the honest answer
  // for ranks landing past the last edge is that edge.
  EXPECT_DOUBLE_EQ(window_quantile({10.0, 20.0}, {5, 4, 1}, 0.99), 20.0);
  EXPECT_DOUBLE_EQ(window_quantile({10.0}, {0, 7}, 0.5), 10.0);
  // q clamps to [0, 1].
  EXPECT_DOUBLE_EQ(window_quantile({10.0, 20.0}, {5, 4, 1}, 7.0), 20.0);
}

TEST(Collector, CounterRatesAreDeltasPerSimSecond) {
  TimeSeriesConfig cfg;
  cfg.window_s = 10.0;
  cfg.prefixes = {"tseries_rate."};
  Counter& c = Registry::global().counter("tseries_rate.events");
  Gauge& g = Registry::global().gauge("tseries_rate.level");

  TimeSeriesCollector collector(cfg);
  collector.begin(100.0);
  EXPECT_TRUE(collector.active());
  c.inc(30);
  g.set(3.5);
  collector.observe(105.0);  // mid-window: nothing closes
  collector.observe(110.0);  // closes [100, 110]
  c.inc(10);
  g.set(7.0);
  const TimeSeriesData data = collector.finish(115.0);  // partial [110, 115]
  EXPECT_FALSE(collector.active());

  ASSERT_EQ(data.windows(), 2u);
  EXPECT_DOUBLE_EQ(data.window_begin_s[0], 100.0);
  EXPECT_DOUBLE_EQ(data.window_end_s[0], 110.0);
  EXPECT_DOUBLE_EQ(data.window_begin_s[1], 110.0);
  EXPECT_DOUBLE_EQ(data.window_end_s[1], 115.0);

  const SeriesColumn* rate = data.column("tseries_rate.events", "rate");
  ASSERT_NE(rate, nullptr);
  EXPECT_DOUBLE_EQ(rate->values[0], 3.0);  // 30 events / 10 s
  EXPECT_DOUBLE_EQ(rate->values[1], 2.0);  // 10 events / 5 s
  const SeriesColumn* last = data.column("tseries_rate.level", "last");
  ASSERT_NE(last, nullptr);
  EXPECT_DOUBLE_EQ(last->values[0], 3.5);
  EXPECT_DOUBLE_EQ(last->values[1], 7.0);
  // The prefix filter keeps the collector's own bookkeeping counters out.
  EXPECT_EQ(data.column("obs.series.windows", "rate"), nullptr);
}

TEST(Collector, HistogramWindowsCarryCountAndQuantilesOfTheDelta) {
  TimeSeriesConfig cfg;
  cfg.window_s = 10.0;
  cfg.prefixes = {"tseries_hist."};
  Histogram& h =
      Registry::global().histogram("tseries_hist.lat_us", {10.0, 20.0});
  h.record(5.0);  // before begin(): must NOT appear in any window delta

  TimeSeriesCollector collector(cfg);
  collector.begin(0.0);
  h.record(5.0);
  h.record(15.0);
  collector.observe(10.0);
  const TimeSeriesData data = collector.finish(12.0);

  ASSERT_EQ(data.windows(), 2u);
  const SeriesColumn* count = data.column("tseries_hist.lat_us", "count");
  ASSERT_NE(count, nullptr);
  EXPECT_DOUBLE_EQ(count->values[0], 2.0);
  EXPECT_DOUBLE_EQ(count->values[1], 0.0);  // empty window -> zero quantiles
  const SeriesColumn* p50 = data.column("tseries_hist.lat_us", "p50");
  const SeriesColumn* p95 = data.column("tseries_hist.lat_us", "p95");
  ASSERT_NE(p50, nullptr);
  ASSERT_NE(p95, nullptr);
  // Delta buckets {1, 1, 0}: rank 1 tops out bucket (0..10], rank 1.9
  // interpolates 90% into (10..20].
  EXPECT_NEAR(p50->values[0], 10.0, 1e-9);
  EXPECT_NEAR(p95->values[0], 19.0, 1e-9);
  EXPECT_DOUBLE_EQ(p50->values[1], 0.0);
}

TEST(Collector, WindowStretchesWhenObservedLessOftenThanCadence) {
  TimeSeriesConfig cfg;
  cfg.window_s = 10.0;
  cfg.prefixes = {"tseries_stretch."};
  Counter& c = Registry::global().counter("tseries_stretch.events");

  TimeSeriesCollector collector(cfg);
  collector.begin(0.0);
  c.inc(50);
  collector.observe(3.0);
  collector.observe(25.0);  // one stretched window [0, 25], not three
  const TimeSeriesData data = collector.finish(25.0);  // nothing left to close

  ASSERT_EQ(data.windows(), 1u);
  EXPECT_DOUBLE_EQ(data.window_begin_s[0], 0.0);
  EXPECT_DOUBLE_EQ(data.window_end_s[0], 25.0);
  const SeriesColumn* rate = data.column("tseries_stretch.events", "rate");
  ASSERT_NE(rate, nullptr);
  EXPECT_DOUBLE_EQ(rate->values[0], 2.0);  // 50 / 25 s
}

TEST(Collector, StalenessCountsSimTimeSinceLastAcceptedEstimate) {
  TimeSeriesConfig cfg;
  cfg.window_s = 10.0;
  cfg.prefixes = {"tseries_none."};  // staleness is always collected
  TimeSeriesCollector collector(cfg);
  collector.track(2);
  collector.track(7);
  collector.begin(0.0);
  collector.note_estimate(2, 4.0);
  collector.observe(10.0);
  const TimeSeriesData data = collector.finish(18.0);

  ASSERT_EQ(data.windows(), 2u);
  const SeriesColumn* s2 =
      data.column("estimate.staleness_s{neighbour=\"2\"}", "staleness");
  const SeriesColumn* s7 =
      data.column("estimate.staleness_s{neighbour=\"7\"}", "staleness");
  ASSERT_NE(s2, nullptr);
  ASSERT_NE(s7, nullptr);
  EXPECT_DOUBLE_EQ(s2->values[0], 6.0);   // 10 - 4
  EXPECT_DOUBLE_EQ(s2->values[1], 14.0);  // 18 - 4
  // Never-heard-from neighbour: staleness counts from begin().
  EXPECT_DOUBLE_EQ(s7->values[0], 10.0);
  EXPECT_DOUBLE_EQ(s7->values[1], 18.0);
}

TEST(Collector, LateMetricsAreZeroBackfilled) {
  TimeSeriesConfig cfg;
  cfg.window_s = 10.0;
  cfg.prefixes = {"tseries_late."};
  TimeSeriesCollector collector(cfg);
  collector.begin(0.0);
  collector.observe(10.0);  // window 1 closes before the metric exists
  Registry::global().counter("tseries_late.events").inc(20);
  const TimeSeriesData data = collector.finish(20.0);

  ASSERT_EQ(data.windows(), 2u);
  const SeriesColumn* rate = data.column("tseries_late.events", "rate");
  ASSERT_NE(rate, nullptr);
  ASSERT_EQ(rate->values.size(), 2u);
  EXPECT_DOUBLE_EQ(rate->values[0], 0.0);
  EXPECT_DOUBLE_EQ(rate->values[1], 2.0);
}

TEST(Collector, DisabledConfigCollectsNothing) {
  TimeSeriesConfig cfg;
  cfg.enabled = false;
  TimeSeriesCollector collector(cfg);
  collector.begin(0.0);
  collector.observe(100.0);
  EXPECT_FALSE(collector.active());
  EXPECT_TRUE(collector.finish(200.0).empty());
}

TEST(SeriesData, JsonRoundTripPreservesEverything) {
  TimeSeriesData data;
  data.window_s = 30.0;
  data.window_begin_s = {0.0, 30.0};
  data.window_end_s = {30.0, 55.5};
  data.columns.push_back({"a.rate\"weird", "rate", {1.5, 0.0}});
  data.columns.push_back(
      {"estimate.staleness_s{neighbour=\"3\"}", "staleness", {2.0, 27.5}});

  const std::string json = data.to_json();
  EXPECT_NE(json.find("\"kind\": \"rups_time_series\""), std::string::npos);
  const TimeSeriesData parsed = TimeSeriesData::from_json(json);
  EXPECT_EQ(parsed, data);
  EXPECT_EQ(parsed.to_json(), json);
}

TEST(SeriesData, FromJsonRejectsMalformedDocuments) {
  EXPECT_THROW(TimeSeriesData::from_json("not json"), std::runtime_error);
  EXPECT_THROW(TimeSeriesData::from_json("[1, 2]"), std::runtime_error);
  EXPECT_THROW(TimeSeriesData::from_json("{\"window_s\": 1}"),
               std::runtime_error);
  // Column length must match the window count.
  EXPECT_THROW(TimeSeriesData::from_json(
                   "{\"window_s\": 1, \"window_begin_s\": [0], "
                   "\"window_end_s\": [1], \"columns\": "
                   "[{\"name\": \"x\", \"kind\": \"rate\", "
                   "\"values\": [1, 2]}]}"),
               std::runtime_error);
}

TEST(SeriesData, CsvIsOneRowPerWindowWithHashKindHeaders) {
  TimeSeriesData data;
  data.window_s = 10.0;
  data.window_begin_s = {0.0, 10.0};
  data.window_end_s = {10.0, 20.0};
  data.columns.push_back({"q.rate", "rate", {3.0, 4.0}});
  data.columns.push_back({"lat", "p95", {120.0, 95.0}});

  const auto path =
      std::filesystem::temp_directory_path() / "rups_test_series.csv";
  {
    util::CsvWriter csv(path);
    data.write_csv(csv);
    csv.flush();
  }
  std::ifstream in(path);
  std::string header;
  std::getline(in, header);
  EXPECT_NE(header.find("window_begin_s"), std::string::npos);
  EXPECT_NE(header.find("q.rate#rate"), std::string::npos);
  EXPECT_NE(header.find("lat#p95"), std::string::npos);
  std::size_t rows = 0;
  for (std::string line; std::getline(in, line);) {
    if (!line.empty()) ++rows;
  }
  EXPECT_EQ(rows, 2u);
  std::filesystem::remove(path);
}

/// Serial vs pooled fleet campaigns must produce the same sim-time series
/// for every deterministic column kind — window boundaries, counter rates,
/// histogram counts and staleness. Excluded: wall-clock quantile columns
/// (p50/p95/p99 of timing histograms), gauge "last" columns (campaign-end
/// gauges leak across runs sharing the global registry), and the
/// fleet.pooled_batches counter (the one metric that SHOULD differ by
/// execution mode).
TEST(SeriesDeterminism, SerialAndPooledFleetRunsMatchOnSimTimeColumns) {
  const auto run = [](util::ThreadPool* pool) {
    sim::FleetCampaignConfig cfg;
    cfg.base.warmup_s = 350.0;
    cfg.base.interval_s = 5.0;
    cfg.base.max_queries = 6;  // rounds
    cfg.base.series.enabled = true;
    cfg.base.series.window_s = 12.0;
    cfg.base.series.prefixes = {"fleet"};  // fleet.* and fleetcampaign.*
    sim::Scenario scenario = sim::Scenario::fleet(
        5, road::EnvironmentType::kFourLaneUrban, 4, /*gap_m=*/30.0);
    scenario.route_length_m = 6'000.0;
    sim::FleetSimulation fleet(scenario, cfg);
    return sim::run_fleet_campaign(fleet, cfg, pool);
  };

  const sim::FleetCampaignResult serial = run(nullptr);
  util::ThreadPool pool(3);
  const sim::FleetCampaignResult pooled = run(&pool);

  ASSERT_FALSE(serial.series.empty());
  EXPECT_EQ(serial.series.window_begin_s, pooled.series.window_begin_s);
  EXPECT_EQ(serial.series.window_end_s, pooled.series.window_end_s);
  ASSERT_EQ(serial.series.columns.size(), pooled.series.columns.size());
  bool saw_staleness = false;
  for (std::size_t i = 0; i < serial.series.columns.size(); ++i) {
    const SeriesColumn& a = serial.series.columns[i];
    const SeriesColumn& b = pooled.series.columns[i];
    EXPECT_EQ(a.name, b.name);
    EXPECT_EQ(a.kind, b.kind);
    if (a.kind == "p50" || a.kind == "p95" || a.kind == "p99" ||
        a.kind == "last" || a.name == "fleet.pooled_batches") {
      continue;
    }
    EXPECT_EQ(a.values, b.values) << a.name << "#" << a.kind;
    saw_staleness |= a.kind == "staleness";
  }
  EXPECT_TRUE(saw_staleness);
}

}  // namespace
}  // namespace rups::obs
