#include <gtest/gtest.h>

#include <cmath>

#include "v2v/codec.hpp"
#include "v2v/exchange.hpp"
#include "v2v/link.hpp"
#include "v2v/wsm.hpp"

namespace rups::v2v {
namespace {

core::ContextTrajectory sample_trajectory(std::size_t metres,
                                          std::size_t channels,
                                          std::size_t capacity = 0) {
  core::ContextTrajectory traj(channels,
                               capacity ? capacity : metres + 4);
  for (std::size_t i = 0; i < metres; ++i) {
    core::PowerVector pv(channels);
    for (std::size_t c = 0; c < channels; ++c) {
      if ((i + c) % 3 == 0) continue;  // leave some channels missing
      const auto state = (i + c) % 3 == 1 ? core::ChannelState::kMeasured
                                          : core::ChannelState::kInterpolated;
      pv.set(c, static_cast<float>(-110.0 + static_cast<double>((i * 7 + c * 13) % 60)),
             state);
    }
    traj.append(core::GeoSample{std::sin(i * 0.1) * 3.0,
                                100.0 + static_cast<double>(i) * 0.37},
                std::move(pv));
  }
  return traj;
}

TEST(Codec, EncodedSizeFormula) {
  // 115 channels: 2 + 4 + 29 + 115 = 150 bytes per metre + 18 header.
  EXPECT_EQ(TrajectoryCodec::encoded_size(1, 115), 18u + 150u);
  EXPECT_EQ(TrajectoryCodec::encoded_size(1000, 115), 18u + 150'000u);
}

TEST(Codec, OneKilometreContextCostMatchesPaperOrder) {
  // Paper Sec. V-B: 1 km of journey context ~ 182 KB, ~130 WSM packets.
  const std::size_t bytes = TrajectoryCodec::encoded_size(1000, 115);
  EXPECT_GT(bytes, 100'000u);
  EXPECT_LT(bytes, 200'000u);
  const std::size_t packets = WsmFraming::packet_count(bytes);
  EXPECT_GT(packets, 70u);
  EXPECT_LT(packets, 160u);
}

TEST(Codec, RoundTripPreservesEverything) {
  const auto original = sample_trajectory(50, 20);
  const auto decoded = TrajectoryCodec::decode(TrajectoryCodec::encode(original));
  ASSERT_EQ(decoded.size(), original.size());
  ASSERT_EQ(decoded.channels(), original.channels());
  EXPECT_EQ(decoded.first_metre(), original.first_metre());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_NEAR(decoded.geo(i).heading_rad, original.geo(i).heading_rad, 1e-3);
    EXPECT_NEAR(decoded.geo(i).time_s, original.geo(i).time_s, 0.011);
    for (std::size_t c = 0; c < original.channels(); ++c) {
      EXPECT_EQ(decoded.power(i).state(c), original.power(i).state(c))
          << i << "," << c;
      if (original.power(i).usable(c)) {
        EXPECT_NEAR(decoded.power(i).at(c), original.power(i).at(c), 0.51);
      }
    }
  }
}

TEST(Codec, RoundTripPreservesFirstMetreAfterEviction) {
  auto traj = sample_trajectory(30, 8, /*capacity=*/10);
  EXPECT_EQ(traj.first_metre(), 20u);
  const auto decoded = TrajectoryCodec::decode(TrajectoryCodec::encode(traj));
  EXPECT_EQ(decoded.first_metre(), 20u);
  EXPECT_DOUBLE_EQ(decoded.end_distance_m(), traj.end_distance_m());
}

TEST(Codec, TailEncodingSendsOnlyNewMetres) {
  const auto traj = sample_trajectory(100, 10);
  const auto tail = TrajectoryCodec::encode_tail(traj, 80);
  EXPECT_EQ(tail.size(), TrajectoryCodec::encoded_size(20, 10));
  const auto decoded = TrajectoryCodec::decode(tail);
  EXPECT_EQ(decoded.size(), 20u);
  EXPECT_EQ(decoded.first_metre(), 80u);
  EXPECT_NEAR(decoded.power(0).at(1), traj.power(80).at(1), 0.51);
}

TEST(Codec, TailBeyondEndIsEmptyBody) {
  const auto traj = sample_trajectory(10, 4);
  const auto tail = TrajectoryCodec::encode_tail(traj, 500);
  const auto decoded = TrajectoryCodec::decode(tail);
  EXPECT_EQ(decoded.size(), 0u);
}

TEST(Codec, RejectsCorruptInput) {
  const auto traj = sample_trajectory(5, 4);
  auto bytes = TrajectoryCodec::encode(traj);
  bytes[0] ^= 0xff;  // break magic
  EXPECT_THROW((void)TrajectoryCodec::decode(bytes), std::invalid_argument);

  auto truncated = TrajectoryCodec::encode(traj);
  truncated.resize(truncated.size() - 3);
  EXPECT_THROW((void)TrajectoryCodec::decode(truncated),
               std::invalid_argument);

  auto trailing = TrajectoryCodec::encode(traj);
  trailing.push_back(0);
  EXPECT_THROW((void)TrajectoryCodec::decode(trailing),
               std::invalid_argument);
}

TEST(Wsm, PacketCount) {
  EXPECT_EQ(WsmFraming::packet_count(0), 0u);
  EXPECT_EQ(WsmFraming::packet_count(1), 1u);
  EXPECT_EQ(WsmFraming::packet_count(1400), 1u);
  EXPECT_EQ(WsmFraming::packet_count(1401), 2u);
  EXPECT_EQ(WsmFraming::packet_count(182'000), 130u);  // the paper's figure
}

TEST(Wsm, FragmentReassembleRoundTrip) {
  std::vector<std::uint8_t> payload(5000);
  for (std::size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<std::uint8_t>(i * 31);
  }
  const auto packets = WsmFraming::fragment(payload, 7);
  EXPECT_EQ(packets.size(), 4u);
  const auto back = WsmFraming::reassemble(packets);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, payload);
}

TEST(Wsm, ReassembleOutOfOrderAndDuplicates) {
  std::vector<std::uint8_t> payload(3000, 0x5a);
  auto packets = WsmFraming::fragment(payload, 9);
  std::swap(packets[0], packets[2]);
  packets.push_back(packets[1]);  // duplicate
  const auto back = WsmFraming::reassemble(packets);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->size(), payload.size());
}

TEST(Wsm, MissingFragmentFails) {
  std::vector<std::uint8_t> payload(3000, 1);
  auto packets = WsmFraming::fragment(payload, 3);
  packets.erase(packets.begin() + 1);
  EXPECT_FALSE(WsmFraming::reassemble(packets).has_value());
}

TEST(Wsm, MixedMessageIdsFail) {
  const auto a = WsmFraming::fragment(std::vector<std::uint8_t>(100, 1), 1);
  auto b = WsmFraming::fragment(std::vector<std::uint8_t>(100, 2), 2);
  auto mixed = a;
  mixed.insert(mixed.end(), b.begin(), b.end());
  EXPECT_FALSE(WsmFraming::reassemble(mixed).has_value());
}

TEST(Link, LosslessTimingMatchesPaper) {
  DsrcLink::Config cfg;
  cfg.rtt_s = 0.004;
  cfg.rtt_jitter_s = 0.0;
  cfg.loss_rate = 0.0;
  DsrcLink link(1, cfg);
  // 182 KB -> 130 packets -> ~0.52 s (Sec. V-B).
  const auto stats = link.transfer(182'000);
  EXPECT_EQ(stats.packets, 130u);
  EXPECT_EQ(stats.transmissions, 130u);
  EXPECT_NEAR(stats.duration_s, 0.52, 0.01);
}

TEST(Link, LossCausesRetransmissions) {
  DsrcLink::Config cfg;
  cfg.loss_rate = 0.2;
  DsrcLink link(2, cfg);
  const auto stats = link.transfer(140'000);
  EXPECT_EQ(stats.packets, 100u);
  EXPECT_GT(stats.transmissions, stats.packets);
  // Expected retransmissions ~ packets * loss/(1-loss) = 25.
  EXPECT_NEAR(static_cast<double>(stats.transmissions - stats.packets), 25.0,
              18.0);
}

TEST(Link, EmptyTransferFree) {
  DsrcLink link(3);
  const auto stats = link.transfer(0);
  EXPECT_EQ(stats.packets, 0u);
  EXPECT_DOUBLE_EQ(stats.duration_s, 0.0);
}

TEST(Exchange, FullRoundTripDeliversTrajectory) {
  DsrcLink link(4);
  ExchangeSession session(&link);
  const auto traj = sample_trajectory(200, 16);
  const auto result = session.exchange_full(traj);
  EXPECT_EQ(result.trajectory.size(), 200u);
  EXPECT_EQ(result.stats.payload_bytes,
            TrajectoryCodec::encoded_size(200, 16));
  EXPECT_GT(result.stats.duration_s, 0.0);
  EXPECT_EQ(session.total_bytes(), result.stats.payload_bytes);
}

TEST(Exchange, TailIsMuchCheaperThanFull) {
  DsrcLink link(5);
  ExchangeSession session(&link);
  const auto traj = sample_trajectory(1000, 16);
  const auto full = session.exchange_full(traj);
  const auto tail = session.exchange_tail(traj, traj.first_metre() + 990);
  EXPECT_LT(tail.stats.payload_bytes * 50, full.stats.payload_bytes);
  EXPECT_EQ(tail.trajectory.size(), 10u);
}

TEST(Exchange, NullLinkRejected) {
  EXPECT_THROW(ExchangeSession(nullptr), std::invalid_argument);
}

}  // namespace
}  // namespace rups::v2v
