#include "sim/survey.hpp"

#include <gtest/gtest.h>

#include "util/stats.hpp"

namespace rups::sim {
namespace {

class SurveyTest : public ::testing::Test {
 protected:
  gsm::ChannelPlan plan_ = gsm::ChannelPlan::evaluation_subset(1, 50);
  gsm::GsmField field_{11, plan_};
  GsmSurvey survey_{&field_};
  road::RoadNetwork net_ = road::RoadNetwork::generate(
      22, 12, 150.0,
      {road::EnvironmentType::kDowntown, road::EnvironmentType::kFourLaneUrban,
       road::EnvironmentType::kTwoLaneSuburb});
};

TEST_F(SurveyTest, CollectTrajectoryShape) {
  const auto traj =
      survey_.collect_trajectory(net_.segment(0), 0.0, 150.0, 1, 0.0);
  EXPECT_EQ(traj.size(), 150u);
  EXPECT_EQ(traj.channels(), plan_.size());
  // Fully measured (survey, not a moving scanner).
  EXPECT_DOUBLE_EQ(traj.power(75).usable_count(),
                   static_cast<double>(plan_.size()));
  // Timestamps advance at the survey speed.
  EXPECT_NEAR(traj.geo(149).time_s - traj.geo(0).time_s, 149.0 / 5.0, 1e-9);
}

TEST_F(SurveyTest, TemporalStabilityDecreasesWithGapAndThreshold) {
  const double p_short_08 =
      survey_.temporal_stability_probability(net_, 10.0, 0.8, 50, 120, 7);
  const double p_long_08 =
      survey_.temporal_stability_probability(net_, 1500.0, 0.8, 50, 120, 7);
  const double p_short_09 =
      survey_.temporal_stability_probability(net_, 10.0, 0.9, 50, 120, 7);
  EXPECT_GE(p_short_08, p_long_08);
  EXPECT_GE(p_short_08, p_short_09);
  EXPECT_GT(p_short_08, 0.9);  // Fig 2: ~0.95 for short gaps at 0.8
}

TEST_F(SurveyTest, UniquenessSameRoadBeatsDifferentRoads) {
  const auto same =
      survey_.uniqueness_correlations(net_, true, 300.0, 150.0, 25, 3);
  const auto diff =
      survey_.uniqueness_correlations(net_, false, 300.0, 150.0, 25, 3);
  ASSERT_EQ(same.size(), 25u);
  ASSERT_EQ(diff.size(), 25u);
  EXPECT_GT(util::mean(same), util::mean(diff) + 0.5);
  EXPECT_GT(util::mean(same), 1.2);  // above the coherency threshold
  EXPECT_LT(util::mean(diff), 1.0);
}

TEST_F(SurveyTest, RelativeChangeGrowsWithDistance) {
  const double d1 = survey_.mean_relative_change(net_, 1.0, 150, 5);
  const double d30 = survey_.mean_relative_change(net_, 30.0, 150, 5);
  const double d120 = survey_.mean_relative_change(net_, 120.0, 150, 5);
  // Fig 4: already substantial at 1 m, rising gently with distance.
  EXPECT_GT(d1, 0.25);
  EXPECT_GE(d30, d1 * 0.8);
  EXPECT_GE(d120, d30 * 0.8);
  EXPECT_GT(d120, d1);
}

TEST_F(SurveyTest, DeterministicGivenSeeds) {
  const double a =
      survey_.temporal_stability_probability(net_, 60.0, 0.8, 20, 50, 9);
  const double b =
      survey_.temporal_stability_probability(net_, 60.0, 0.8, 20, 50, 9);
  EXPECT_DOUBLE_EQ(a, b);
}

}  // namespace
}  // namespace rups::sim
