// Failure injection: the system must degrade gracefully — never crash,
// never return confidently-wrong answers — under sensor loss, extreme
// radio conditions, lossy links and adversarial data.

#include <gtest/gtest.h>

#include <cmath>

#include "core/engine.hpp"
#include "sim/convoy_sim.hpp"
#include "v2v/exchange.hpp"

namespace rups {
namespace {

sim::Scenario base_scenario(std::uint64_t seed) {
  sim::Scenario s =
      sim::Scenario::two_car(seed, road::EnvironmentType::kFourLaneUrban);
  s.route_length_m = 6'000.0;
  return s;
}

TEST(FailureInjection, TotalGsmDeafnessMeansNoSynNotWrongSyn) {
  // Raise the sensitivity floor above every possible level: the scanner
  // hears nothing, contexts stay empty of measurements, and queries must
  // return "no estimate" rather than garbage.
  auto scenario = base_scenario(31);
  scenario.scanner_base.sensitivity_dbm = 0.0;
  sim::ConvoySimulation sim(scenario);
  sim.run_until(400.0);
  const auto q = sim.query(1, 0);
  EXPECT_FALSE(q.rups.has_value());
  EXPECT_TRUE(q.syn_points.empty());
}

TEST(FailureInjection, ObdSilenceFreezesTrajectoryButNothingCrashes) {
  core::RupsConfig cfg;
  cfg.channels = 16;
  cfg.assume_aligned_sensors = true;
  core::RupsEngine engine(cfg);
  // IMU and RSSI flow, but no speed source ever reports.
  for (int i = 0; i < 20'000; ++i) {
    sensors::ImuSample imu;
    imu.time_s = i * 0.005;
    imu.accel_mps2 = {0.0, 0.0, 9.80665};
    imu.mag_ut = {-30.0, 0.0, -35.0};
    engine.on_imu(imu);
    if (i % 3 == 0) {
      sensors::RssiMeasurement m;
      m.time_s = imu.time_s;
      m.channel_index = static_cast<std::size_t>(i % 16);
      m.rssi_dbm = -70.0;
      engine.on_rssi(m);
    }
  }
  EXPECT_DOUBLE_EQ(engine.odometer_m(), 0.0);
  EXPECT_TRUE(engine.context().empty());
}

TEST(FailureInjection, OutOfOrderAndDuplicateSensorTimestamps) {
  core::RupsConfig cfg;
  cfg.channels = 8;
  cfg.assume_aligned_sensors = true;
  core::RupsEngine engine(cfg);
  engine.on_speed({0.0, 10.0});
  engine.on_speed({2.0, 10.0});
  sensors::ImuSample imu;
  imu.accel_mps2 = {0.0, 0.0, 9.80665};
  imu.mag_ut = {-30.0, 0.0, -35.0};
  // Jittered, repeated, and regressing timestamps must not throw or
  // corrupt the odometer into going backwards.
  const double times[] = {3.0, 3.0, 2.9, 3.1, 3.05, 3.2, 3.2, 3.0, 4.0};
  double prev_odo = 0.0;
  for (double t : times) {
    imu.time_s = t;
    engine.on_imu(imu);
    EXPECT_GE(engine.odometer_m(), prev_odo);
    prev_odo = engine.odometer_m();
  }
}

TEST(FailureInjection, RssiFromTheFutureOrPastIsTolerated) {
  core::RupsConfig cfg;
  cfg.channels = 8;
  cfg.assume_aligned_sensors = true;
  core::RupsEngine engine(cfg);
  engine.on_speed({0.0, 10.0});
  engine.on_speed({2.0, 10.0});
  sensors::ImuSample imu;
  imu.accel_mps2 = {0.0, 0.0, 9.80665};
  imu.mag_ut = {-30.0, 0.0, -35.0};
  for (int i = 0; i < 4000; ++i) {
    imu.time_s = 2.0 + i * 0.005;
    engine.on_imu(imu);
  }
  sensors::RssiMeasurement m;
  m.channel_index = 3;
  m.rssi_dbm = -70.0;
  m.time_s = 1e6;  // absurd future
  EXPECT_NO_THROW(engine.on_rssi(m));
  m.time_s = -50.0;  // before the journey
  EXPECT_NO_THROW(engine.on_rssi(m));
}

TEST(FailureInjection, VeryLossyLinkStillDelivers) {
  v2v::DsrcLink::Config cfg;
  cfg.loss_rate = 0.6;
  v2v::DsrcLink link(5, cfg);
  const auto stats = link.transfer(50'000);
  EXPECT_EQ(stats.packets, 36u);
  EXPECT_GT(stats.transmissions, 60u);    // heavy retransmission
  EXPECT_GT(stats.duration_s, 0.1);       // but it completes
}

TEST(FailureInjection, ExchangeOfEmptyContext) {
  v2v::DsrcLink link(6);
  v2v::ExchangeSession session(&link);
  core::ContextTrajectory empty(16, 100);
  const auto result = session.exchange_full(empty);
  EXPECT_EQ(result.trajectory.size(), 0u);
  EXPECT_EQ(result.stats.packets, 1u);  // header-only payload
}

TEST(FailureInjection, QueryAgainstEmptyNeighbourContext) {
  auto scenario = base_scenario(33);
  sim::ConvoySimulation sim(scenario);
  sim.run_until(300.0);
  core::ContextTrajectory empty(scenario.channels, 10);
  EXPECT_TRUE(sim.rig(1).engine().find_syn_points(empty).empty());
  EXPECT_FALSE(sim.rig(1).engine().estimate_distance(empty).has_value());
}

TEST(FailureInjection, PermanentBlockageDegradesButDoesNotLie) {
  // A vehicle stuck behind a big truck for the whole drive: its readings
  // are attenuated and noisy throughout.
  auto scenario = base_scenario(34);
  scenario.passing_rate_scale = 25.0;  // near-continuous blockage events
  sim::ConvoySimulation sim(scenario);
  sim.run_until(420.0);
  const auto q = sim.query(1, 0);
  // Either it abstains, or the answer is still sane (within the context).
  if (q.rups.has_value()) {
    EXPECT_LT(std::abs(q.rups->distance_m), 1000.0);
    EXPECT_GE(q.rups->confidence,
              sim.rig(1).engine().config().syn.coherency_threshold);
  }
}

TEST(FailureInjection, ZeroChannelEngineRejected) {
  core::RupsConfig cfg;
  cfg.channels = 0;
  EXPECT_THROW(core::RupsEngine{cfg}, std::invalid_argument);
}

}  // namespace
}  // namespace rups
