#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "obs/obs.hpp"
#include "util/json.hpp"
#include "util/thread_pool.hpp"

namespace rups::obs {
namespace {

/// Test sink collecting every span and flow event (emits arrive from pool
/// worker threads too).
struct CollectingSink : TraceSink {
  std::mutex mutex;
  std::vector<TraceEvent> events;
  std::vector<FlowEvent> flows;

  void emit(const TraceEvent& e) override {
    std::lock_guard lock(mutex);
    events.push_back(e);
  }
  void emit_flow(const FlowEvent& e) override {
    std::lock_guard lock(mutex);
    flows.push_back(e);
  }
};

/// Installs the collecting sink for the test's scope.
struct SinkGuard {
  CollectingSink sink;
  SinkGuard() { set_trace_sink(&sink); }
  ~SinkGuard() { set_trace_sink(nullptr); }
};

const TraceEvent* event_named(const CollectingSink& sink, const char* name) {
  for (const TraceEvent& e : sink.events) {
    if (std::string_view(e.name) == name) return &e;
  }
  return nullptr;
}

TEST(Span, NoOpenTimerMeansInvalidContextAndEmptyChain) {
  EXPECT_FALSE(current_span().valid());
  EXPECT_TRUE(active_span_chain().empty());
  EXPECT_EQ(current_span().span_id, 0u);
}

TEST(Span, AmbientNestingParentsInnerToInnermostOpenTimer) {
  SinkGuard guard;
  Histogram h(default_latency_bounds_us());
  std::uint64_t outer_span = 0;
  std::uint64_t outer_trace = 0;
  {
    ObsTimer outer(&h, "outer");
    outer_span = outer.span_id();
    outer_trace = outer.trace_id();
    // A root span starts its own trace.
    EXPECT_EQ(outer_trace, outer_span);
    const SpanContext ctx = current_span();
    EXPECT_TRUE(ctx.valid());
    EXPECT_EQ(ctx.span_id, outer_span);
    {
      ObsTimer inner(&h, "inner");
      EXPECT_EQ(inner.trace_id(), outer_trace);
      EXPECT_EQ(current_span().span_id, inner.span_id());
      const auto chain = active_span_chain();
      ASSERT_EQ(chain.size(), 2u);
      EXPECT_STREQ(chain[0].name, "outer");
      EXPECT_STREQ(chain[1].name, "inner");
      EXPECT_EQ(chain[1].parent_id, chain[0].span_id);
      EXPECT_EQ(chain[1].trace_id, chain[0].trace_id);
    }
    EXPECT_EQ(current_span().span_id, outer_span);
  }
  EXPECT_FALSE(current_span().valid());

  const TraceEvent* inner = event_named(guard.sink, "inner");
  const TraceEvent* outer = event_named(guard.sink, "outer");
  ASSERT_NE(inner, nullptr);
  ASSERT_NE(outer, nullptr);
  EXPECT_EQ(inner->parent_id, outer_span);
  EXPECT_EQ(inner->trace_id, outer_trace);
  EXPECT_EQ(outer->parent_id, 0u);
  EXPECT_TRUE(guard.sink.flows.empty());  // same thread: no flow arrows
}

TEST(Span, ExplicitParentAcrossPoolHopEmitsFlowAndInheritsTrace) {
  SinkGuard guard;
  Histogram h(default_latency_bounds_us());
  util::ThreadPool pool(2);

  std::uint64_t child_span = 0;
  std::uint64_t child_trace = 0;
  std::uint32_t child_tid = 0;
  std::uint64_t round_span = 0;
  std::uint64_t round_trace = 0;
  {
    ObsTimer round(&h, "fleet.round");
    round_span = round.span_id();
    round_trace = round.trace_id();
    const SpanContext ctx = current_span();
    pool.submit([&] {
        ObsTimer task(&h, "fleet.task", ctx);
        child_span = task.span_id();
        child_trace = task.trace_id();
        child_tid = this_thread_tid();
      }).get();
  }

  // The worker-side span is a child of the dispatching round span even
  // though no timer was open on the worker thread.
  EXPECT_NE(child_tid, this_thread_tid());
  EXPECT_EQ(child_trace, round_trace);
  const TraceEvent* task = event_named(guard.sink, "fleet.task");
  ASSERT_NE(task, nullptr);
  EXPECT_EQ(task->parent_id, round_span);
  EXPECT_EQ(task->tid, child_tid);

  // Exactly one flow arrow, keyed by the DESTINATION span id, from the
  // dispatching thread to the worker thread.
  ASSERT_EQ(guard.sink.flows.size(), 1u);
  const FlowEvent& flow = guard.sink.flows[0];
  EXPECT_EQ(flow.id, child_span);
  EXPECT_EQ(flow.trace_id, round_trace);
  EXPECT_EQ(flow.src_tid, this_thread_tid());
  EXPECT_EQ(flow.dst_tid, child_tid);
  EXPECT_NE(flow.src_tid, flow.dst_tid);
}

TEST(Span, ExplicitParentOnSameThreadEmitsNoFlow) {
  SinkGuard guard;
  Histogram h(default_latency_bounds_us());
  SpanContext ctx;
  {
    ObsTimer outer(&h, "outer");
    ctx = current_span();
  }
  {
    // Same thread: parented, but a flow arrow would be pointless.
    ObsTimer child(&h, "child", ctx);
    EXPECT_EQ(child.trace_id(), ctx.trace_id);
  }
  const TraceEvent* child = event_named(guard.sink, "child");
  ASSERT_NE(child, nullptr);
  EXPECT_EQ(child->parent_id, ctx.span_id);
  EXPECT_TRUE(guard.sink.flows.empty());
}

TEST(Span, InvalidExplicitParentFallsBackToAmbientParenting) {
  SinkGuard guard;
  Histogram h(default_latency_bounds_us());
  {
    ObsTimer outer(&h, "outer");
    ObsTimer child(&h, "child", SpanContext{});
    EXPECT_EQ(child.trace_id(), outer.trace_id());
  }
  const TraceEvent* child = event_named(guard.sink, "child");
  const TraceEvent* outer = event_named(guard.sink, "outer");
  ASSERT_NE(child, nullptr);
  ASSERT_NE(outer, nullptr);
  EXPECT_EQ(child->parent_id, outer->span_id);
  EXPECT_TRUE(guard.sink.flows.empty());
}

TEST(Span, UnnamedTimersRecordButDoNotSpan) {
  SinkGuard guard;
  Histogram h(default_latency_bounds_us());
  {
    ObsTimer t(&h);
    EXPECT_EQ(t.span_id(), 0u);
    EXPECT_FALSE(current_span().valid());
  }
  EXPECT_EQ(h.count(), 1u);
  EXPECT_TRUE(guard.sink.events.empty());
}

TEST(ChromeTrace, FileCarriesThreadNamesFlowsAndParsesAsJson) {
  const auto path =
      std::filesystem::temp_directory_path() / "rups_test_spans_trace.json";
  set_thread_label("rups-test-main");
  Histogram h(default_latency_bounds_us());
  util::ThreadPool pool(2);
  {
    ChromeTraceSink sink(path);
    ASSERT_TRUE(sink.ok());
    set_trace_sink(&sink);
    {
      ObsTimer round(&h, "round");
      const SpanContext ctx = current_span();
      pool.submit([&] {
          set_thread_label("rups-test-worker");
          ObsTimer task(&h, "task", ctx);
        }).get();
    }
    set_trace_sink(nullptr);
    // 2 spans + 1 flow pair; metadata lines are not counted.
    EXPECT_EQ(sink.events_written(), 4u);
  }  // destructor closes the array

  std::ifstream in(path);
  std::stringstream buf;
  buf << in.rdbuf();
  const util::JsonValue doc = util::JsonValue::parse(buf.str());
  ASSERT_TRUE(doc.is_array());

  bool process_named = false;
  bool main_named = false;
  bool worker_named = false;
  bool flow_start = false;
  bool flow_finish = false;
  std::uint64_t task_parent = 0;
  std::uint64_t round_span = 0;
  for (const util::JsonValue& e : doc.as_array()) {
    const std::string ph = e.string_or("ph", "");
    const std::string name = e.string_or("name", "");
    if (ph == "M") {
      const util::JsonValue* args = e.find("args");
      const std::string label =
          args == nullptr ? "" : args->string_or("name", "");
      process_named |= name == "process_name" && label == "rups";
      main_named |= label == "rups-test-main";
      worker_named |= label == "rups-test-worker";
    } else if (ph == "s") {
      flow_start = true;
    } else if (ph == "f") {
      flow_finish = true;
    } else if (ph == "X") {
      const util::JsonValue* args = e.find("args");
      ASSERT_NE(args, nullptr);
      if (name == "task") {
        task_parent = static_cast<std::uint64_t>(args->number_or("parent", 0));
      }
      if (name == "round") {
        round_span = static_cast<std::uint64_t>(args->number_or("span", 0));
      }
    }
  }
  EXPECT_TRUE(process_named);
  EXPECT_TRUE(main_named);
  EXPECT_TRUE(worker_named);
  EXPECT_TRUE(flow_start);
  EXPECT_TRUE(flow_finish);
  EXPECT_NE(round_span, 0u);
  EXPECT_EQ(task_parent, round_span);
  std::filesystem::remove(path);
}

TEST(ChromeTrace, CloseIsIdempotentAndDropsLateEvents) {
  const auto path =
      std::filesystem::temp_directory_path() / "rups_test_spans_close.json";
  Histogram h(default_latency_bounds_us());
  {
    ChromeTraceSink sink(path);
    set_trace_sink(&sink);
    { ObsTimer t(&h, "before_close"); }
    sink.close();
    sink.close();  // idempotent
    { ObsTimer t(&h, "after_close"); }
    set_trace_sink(nullptr);
    EXPECT_EQ(sink.events_written(), 1u);
  }
  std::ifstream in(path);
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();
  // Mid-run close (the abort path) still leaves loadable JSON.
  const util::JsonValue doc = util::JsonValue::parse(text);
  ASSERT_TRUE(doc.is_array());
  EXPECT_NE(text.find("before_close"), std::string::npos);
  EXPECT_EQ(text.find("after_close"), std::string::npos);
  std::filesystem::remove(path);
}

TEST(ChromeTrace, EmptySinkStillClosesTheArray) {
  const auto path =
      std::filesystem::temp_directory_path() / "rups_test_spans_empty.json";
  { ChromeTraceSink sink(path); }
  std::ifstream in(path);
  std::stringstream buf;
  buf << in.rdbuf();
  const util::JsonValue doc = util::JsonValue::parse(buf.str());
  ASSERT_TRUE(doc.is_array());
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace rups::obs
