#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "road/environment.hpp"
#include "road/road_network.hpp"
#include "road/route.hpp"
#include "road/route_builder.hpp"
#include "util/angle.hpp"

namespace rups::road {
namespace {

TEST(Environment, LaneCounts) {
  EXPECT_EQ(lane_count(EnvironmentType::kTwoLaneSuburb), 2);
  EXPECT_EQ(lane_count(EnvironmentType::kFourLaneUrban), 4);
  EXPECT_EQ(lane_count(EnvironmentType::kEightLaneUrban), 8);
}

TEST(Environment, OpennessClasses) {
  EXPECT_EQ(openness(EnvironmentType::kEightLaneUrban), Openness::kOpen);
  EXPECT_EQ(openness(EnvironmentType::kFourLaneUrban), Openness::kSemiOpen);
  EXPECT_EQ(openness(EnvironmentType::kUnderElevated), Openness::kClose);
}

TEST(Environment, StringRoundTrip) {
  for (EnvironmentType env : kAllEnvironments) {
    EXPECT_EQ(environment_from_string(to_string(env)), env);
  }
  EXPECT_THROW((void)environment_from_string("bogus"), std::invalid_argument);
}

TEST(RoadSegment, PointAtFollowsHeading) {
  RoadSegment seg;
  seg.start = {10.0, 20.0};
  seg.heading_rad = util::deg2rad(90.0);
  seg.length_m = 100.0;
  const Point2 p = seg.point_at(50.0);
  EXPECT_NEAR(p.x, 10.0, 1e-9);
  EXPECT_NEAR(p.y, 70.0, 1e-9);
}

TEST(Route, RejectsNonPositiveSegment) {
  RoadSegment bad;
  bad.length_m = 0.0;
  EXPECT_THROW(Route({bad}), std::invalid_argument);
}

TEST(Route, TotalLengthIsSum) {
  const Route r = RouteBuilder(1)
                      .add_segment(EnvironmentType::kFourLaneUrban, 100.0)
                      .add_segment(EnvironmentType::kTwoLaneSuburb, 250.0)
                      .build();
  EXPECT_DOUBLE_EQ(r.total_length_m(), 350.0);
  EXPECT_EQ(r.segments().size(), 2u);
}

TEST(Route, PoseAtResolvesSegmentsAndOffsets) {
  const Route r = RouteBuilder(2)
                      .add_segment(EnvironmentType::kFourLaneUrban, 100.0)
                      .add_segment(EnvironmentType::kUnderElevated, 200.0)
                      .build();
  const RoutePose a = r.pose_at(50.0);
  EXPECT_EQ(a.segment_index, 0u);
  EXPECT_DOUBLE_EQ(a.segment_offset_m, 50.0);
  EXPECT_EQ(a.env, EnvironmentType::kFourLaneUrban);

  const RoutePose b = r.pose_at(150.0);
  EXPECT_EQ(b.segment_index, 1u);
  EXPECT_DOUBLE_EQ(b.segment_offset_m, 50.0);
  EXPECT_EQ(b.env, EnvironmentType::kUnderElevated);
}

TEST(Route, PoseAtBoundaryBelongsToNextSegment) {
  const Route r = RouteBuilder(3)
                      .add_segment(EnvironmentType::kFourLaneUrban, 100.0)
                      .add_segment(EnvironmentType::kTwoLaneSuburb, 100.0)
                      .build();
  const RoutePose p = r.pose_at(100.0);
  EXPECT_EQ(p.segment_index, 1u);
  EXPECT_DOUBLE_EQ(p.segment_offset_m, 0.0);
}

TEST(Route, PoseAtClampsOutOfRange) {
  const Route r = RouteBuilder(4)
                      .add_segment(EnvironmentType::kFourLaneUrban, 100.0)
                      .build();
  EXPECT_EQ(r.pose_at(-10.0).segment_offset_m, 0.0);
  const RoutePose end = r.pose_at(1e9);
  EXPECT_EQ(end.segment_index, 0u);
  EXPECT_DOUBLE_EQ(end.segment_offset_m, 100.0);
}

TEST(Route, EmptyRouteThrows) {
  const Route r;
  EXPECT_TRUE(r.empty());
  EXPECT_THROW((void)r.pose_at(0.0), std::out_of_range);
}

TEST(Route, GeometryIsContinuousAcrossChain) {
  const Route r = RouteBuilder(5)
                      .add_segment(EnvironmentType::kFourLaneUrban, 100.0)
                      .turn(util::deg2rad(90.0))
                      .add_segment(EnvironmentType::kFourLaneUrban, 100.0)
                      .build();
  // End of segment 0 equals start of segment 1.
  const Point2 end0 = r.segments()[0].point_at(100.0);
  const Point2 start1 = r.segments()[1].start;
  EXPECT_NEAR(end0.x, start1.x, 1e-9);
  EXPECT_NEAR(end0.y, start1.y, 1e-9);
  // Heading turned by 90 degrees.
  EXPECT_NEAR(util::angle_diff(r.segments()[1].heading_rad,
                               r.segments()[0].heading_rad),
              util::deg2rad(90.0), 1e-9);
}

TEST(RouteBuilder, SameSeedSameRoute) {
  const Route a = make_evaluation_route(77, 20'000.0);
  const Route b = make_evaluation_route(77, 20'000.0);
  ASSERT_EQ(a.segments().size(), b.segments().size());
  for (std::size_t i = 0; i < a.segments().size(); ++i) {
    EXPECT_EQ(a.segments()[i].id, b.segments()[i].id);
    EXPECT_DOUBLE_EQ(a.segments()[i].length_m, b.segments()[i].length_m);
  }
}

TEST(RouteBuilder, DifferentSeedsDifferentIds) {
  const Route a = make_evaluation_route(1, 5'000.0);
  const Route b = make_evaluation_route(2, 5'000.0);
  EXPECT_NE(a.segments()[0].id, b.segments()[0].id);
}

TEST(RouteBuilder, SegmentIdsUniqueWithinRoute) {
  const Route r = make_evaluation_route(9, 97'000.0);
  std::set<SegmentId> ids;
  for (const auto& s : r.segments()) ids.insert(s.id);
  EXPECT_EQ(ids.size(), r.segments().size());
}

TEST(EvaluationRoute, LengthAndEnvironmentMix) {
  const Route r = make_evaluation_route(123, 97'000.0);
  EXPECT_NEAR(r.total_length_m(), 97'000.0, 1.0);
  std::set<EnvironmentType> envs;
  for (const auto& s : r.segments()) envs.insert(s.env);
  // The route must exercise at least the four evaluation environments.
  EXPECT_GE(envs.size(), 4u);
}

TEST(UniformRoute, SingleEnvironment) {
  const Route r =
      make_uniform_route(5, EnvironmentType::kUnderElevated, 3'500.0);
  EXPECT_NEAR(r.total_length_m(), 3'500.0, 1e-9);
  for (const auto& s : r.segments()) {
    EXPECT_EQ(s.env, EnvironmentType::kUnderElevated);
  }
  EXPECT_EQ(r.segments().size(), 4u);  // 1000+1000+1000+500
}

TEST(RoadNetwork, GeneratesRequestedCountAndMix) {
  const auto net = RoadNetwork::generate(
      11, 10, 150.0,
      {EnvironmentType::kDowntown, EnvironmentType::kFourLaneUrban});
  ASSERT_EQ(net.size(), 10u);
  EXPECT_EQ(net.segment(0).env, EnvironmentType::kDowntown);
  EXPECT_EQ(net.segment(1).env, EnvironmentType::kFourLaneUrban);
  EXPECT_DOUBLE_EQ(net.segment(3).length_m, 150.0);
}

TEST(RoadNetwork, DeterministicAndUniqueIds) {
  const auto a = RoadNetwork::generate(7, 20, 150.0,
                                       {EnvironmentType::kFourLaneUrban});
  const auto b = RoadNetwork::generate(7, 20, 150.0,
                                       {EnvironmentType::kFourLaneUrban});
  std::set<SegmentId> ids;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.segment(i).id, b.segment(i).id);
    ids.insert(a.segment(i).id);
  }
  EXPECT_EQ(ids.size(), a.size());
}

TEST(RoadNetwork, EmptyMixThrows) {
  EXPECT_THROW(RoadNetwork::generate(1, 5, 100.0, {}), std::invalid_argument);
}

}  // namespace
}  // namespace rups::road
