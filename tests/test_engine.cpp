// Integration tests of the RupsEngine facade on synthetic sensor streams
// (vehicle-frame; reorientation bypassed). End-to-end behaviour with the
// full sensor models is covered by test_convoy_sim.

#include "core/engine.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/hash_noise.hpp"
#include "util/rng.hpp"

namespace rups::core {
namespace {

constexpr std::size_t kChannels = 24;

float road_rssi(std::int64_t metre, std::size_t ch) {
  const util::HashNoise chan_noise(0xF00D);
  const util::LatticeField1D spatial(util::hash_combine(9, ch), 8.0, 2);
  return static_cast<float>(-95.0 +
                            40.0 * chan_noise.uniform(static_cast<std::int64_t>(ch)) +
                            6.0 * spatial.value(static_cast<double>(metre)));
}

RupsConfig test_config() {
  RupsConfig cfg;
  cfg.channels = kChannels;
  cfg.assume_aligned_sensors = true;
  cfg.syn.window_m = 40;
  cfg.syn.top_channels = 16;
  return cfg;
}

/// Drives an engine over the synthetic road: constant speed, straight
/// east, scanning all channels every `sweep_s`.
void drive(RupsEngine& engine, double start_road_m, double distance_m,
           double speed_mps, std::uint64_t noise_seed) {
  util::Rng rng(noise_seed);
  const double dt = 0.005;
  const double duration = distance_m / speed_mps;
  double next_obd = 0.0;
  double next_dwell = 0.0;
  std::size_t dwell_channel = 0;
  for (double t = 0.0; t <= duration; t += dt) {
    if (t >= next_obd) {
      engine.on_speed({t, speed_mps});
      next_obd += 2.0;
    }
    sensors::ImuSample imu;
    imu.time_s = t;
    imu.accel_mps2 = {0.0, 0.0, 9.80665};
    imu.mag_ut = {-30.0, 0.0, -35.0};  // heading 0 (east)
    engine.on_imu(imu);
    while (t >= next_dwell) {
      const double road_pos = start_road_m + speed_mps * next_dwell;
      sensors::RssiMeasurement m;
      m.time_s = next_dwell;
      m.channel_index = dwell_channel;
      m.rssi_dbm =
          road_rssi(static_cast<std::int64_t>(std::floor(road_pos)),
                    dwell_channel) +
          rng.gaussian(0.0, 0.5);
      engine.on_rssi(m);
      dwell_channel = (dwell_channel + 1) % kChannels;
      next_dwell += 0.015;
    }
  }
}

TEST(Engine, BuildsContextWhileDriving) {
  RupsEngine engine(test_config());
  drive(engine, 0.0, 300.0, 10.0, 1);
  EXPECT_TRUE(engine.calibrated());
  EXPECT_NEAR(engine.odometer_m(), 300.0, 2.0);
  EXPECT_NEAR(static_cast<double>(engine.context().size()), 300.0, 3.0);
  EXPECT_GT(engine.context().measured_fraction(), 0.1);
  EXPECT_NEAR(engine.heading_rad(), 0.0, 0.05);
}

TEST(Engine, ContextIsBoundedByCapacity) {
  RupsConfig cfg = test_config();
  cfg.context_capacity_m = 150;
  RupsEngine engine(cfg);
  drive(engine, 0.0, 400.0, 12.0, 2);
  EXPECT_EQ(engine.context().size(), 150u);
  EXPECT_GT(engine.context().first_metre(), 200u);
}

TEST(Engine, TwoEnginesResolveRelativeDistance) {
  RupsEngine rear(test_config());
  RupsEngine front(test_config());
  drive(rear, 0.0, 250.0, 10.0, 3);
  drive(front, 70.0, 250.0, 10.0, 4);  // 70 m ahead on the same road

  const auto est = rear.estimate_distance(front.context());
  ASSERT_TRUE(est.has_value());
  EXPECT_NEAR(est->distance_m, -70.0, 3.0);
  EXPECT_GE(est->confidence, rear.config().syn.coherency_threshold);

  // Symmetric query from the front car.
  const auto reverse = front.estimate_distance(rear.context());
  ASSERT_TRUE(reverse.has_value());
  EXPECT_NEAR(reverse->distance_m, 70.0, 3.0);
}

TEST(Engine, DifferentSpeedsStillResolve) {
  RupsEngine rear(test_config());
  RupsEngine front(test_config());
  drive(rear, 0.0, 250.0, 8.0, 5);
  drive(front, 40.0, 250.0, 14.0, 6);
  const auto est = rear.estimate_distance(front.context());
  ASSERT_TRUE(est.has_value());
  EXPECT_NEAR(est->distance_m, -40.0, 5.0);
}

TEST(Engine, NoSpeedMeansNoTrajectory) {
  RupsEngine engine(test_config());
  sensors::ImuSample imu;
  imu.accel_mps2 = {0.0, 0.0, 9.80665};
  imu.mag_ut = {-30.0, 0.0, -35.0};
  for (int i = 0; i < 10000; ++i) {
    imu.time_s = i * 0.005;
    engine.on_imu(imu);
  }
  EXPECT_DOUBLE_EQ(engine.odometer_m(), 0.0);
  EXPECT_TRUE(engine.context().empty());
}

TEST(Engine, UnrelatedContextsRejected) {
  RupsEngine a(test_config());
  RupsEngine b(test_config());
  drive(a, 0.0, 200.0, 10.0, 7);
  // b drives a "different road": offset so far that fields are unrelated
  // (the hashed field decorrelates within ~10 m).
  drive(b, 100'000.0, 200.0, 10.0, 8);
  EXPECT_FALSE(a.estimate_distance(b.context()).has_value());
  EXPECT_TRUE(a.find_syn_points(b.context()).empty());
}

TEST(Engine, MultiSynAggregationUsesConfiguredScheme) {
  RupsConfig cfg = test_config();
  cfg.syn.syn_points = 5;
  cfg.syn.syn_segment_spacing_m = 20;
  cfg.aggregation = Aggregation::kSelectiveMean;
  RupsEngine rear(cfg);
  RupsEngine front(cfg);
  drive(rear, 0.0, 300.0, 10.0, 9);
  drive(front, 50.0, 300.0, 10.0, 10);
  const auto est = rear.estimate_distance(front.context());
  ASSERT_TRUE(est.has_value());
  EXPECT_GE(est->syn_count, 3u);
  EXPECT_NEAR(est->distance_m, -50.0, 3.0);
}

TEST(Engine, ParallelQueryMatchesSequential) {
  RupsEngine rear(test_config());
  RupsEngine front(test_config());
  drive(rear, 0.0, 250.0, 10.0, 11);
  drive(front, 30.0, 250.0, 10.0, 12);
  util::ThreadPool pool(3);
  const auto seq = rear.estimate_distance(front.context());
  const auto par = rear.estimate_distance(front.context(), &pool);
  ASSERT_TRUE(seq.has_value());
  ASSERT_TRUE(par.has_value());
  EXPECT_DOUBLE_EQ(seq->distance_m, par->distance_m);
}

}  // namespace
}  // namespace rups::core
