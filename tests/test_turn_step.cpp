#include <gtest/gtest.h>

#include <cmath>

#include "core/step_counter.hpp"
#include "core/turn_detector.hpp"
#include "util/angle.hpp"
#include "util/rng.hpp"

namespace rups::core {
namespace {

// --- TurnDetector ---

TEST(TurnDetector, NoTurnOnStraightRoad) {
  TurnDetector det;
  for (int i = 0; i < 500; ++i) det.on_metre(0.3);
  EXPECT_EQ(det.turn_count(), 0u);
  EXPECT_EQ(det.metres_since_turn(), 500u);
}

TEST(TurnDetector, DetectsNinetyDegreeTurn) {
  TurnDetector det;
  for (int i = 0; i < 100; ++i) det.on_metre(0.0);
  // Sharp turn over 5 metres.
  for (int i = 1; i <= 5; ++i) det.on_metre(util::deg2rad(18.0 * i));
  for (int i = 0; i < 40; ++i) det.on_metre(util::deg2rad(90.0));
  EXPECT_GE(det.turn_count(), 1u);
  EXPECT_LE(det.metres_since_turn(), 45u);
}

TEST(TurnDetector, IgnoresGentleCurve) {
  TurnDetector det;
  // 90 degrees spread over 300 m: never >0.6 rad within a 15 m window.
  for (int i = 0; i < 300; ++i) {
    det.on_metre(util::deg2rad(90.0 * i / 300.0));
  }
  EXPECT_EQ(det.turn_count(), 0u);
}

TEST(TurnDetector, IgnoresHeadingNoise) {
  TurnDetector det;
  util::Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    det.on_metre(0.5 + rng.gaussian(0.0, 0.05));
  }
  EXPECT_EQ(det.turn_count(), 0u);
}

TEST(TurnDetector, HandlesWrapAround) {
  TurnDetector det;
  // Driving heading ~pi and turning across the wrap to ~-pi + 0.9.
  for (int i = 0; i < 50; ++i) det.on_metre(3.1);
  for (int i = 0; i < 30; ++i) det.on_metre(-2.4);
  EXPECT_GE(det.turn_count(), 1u);
}

TEST(TurnDetector, CountsMultipleTurns) {
  TurnDetector det;
  double heading = 0.0;
  for (int turn = 0; turn < 4; ++turn) {
    for (int i = 0; i < 120; ++i) det.on_metre(heading);
    heading = util::wrap_pi(heading + util::deg2rad(90.0));
  }
  EXPECT_EQ(det.turn_count(), 3u);
}

TEST(TurnDetector, StraightTailOfTrajectory) {
  ContextTrajectory traj(2, 400);
  for (int i = 0; i < 150; ++i) {
    traj.append(GeoSample{0.0, 0.0}, PowerVector(2));
  }
  for (int i = 0; i < 60; ++i) {
    traj.append(GeoSample{util::deg2rad(90.0), 0.0}, PowerVector(2));
  }
  const auto tail = TurnDetector::straight_tail_metres(traj);
  EXPECT_LE(tail, 60u);
  EXPECT_GE(tail, 40u);
}

// --- StepCounter ---

/// Synthesize walking accel magnitude: gravity + sinusoidal bounce at the
/// given cadence.
std::uint64_t walk(StepCounter& counter, double duration_s, double cadence_hz,
                   double amp = 3.0) {
  std::uint64_t reports = 0;
  for (double t = 0.0; t < duration_s; t += 0.01) {
    const double a =
        9.80665 + amp * std::sin(2.0 * M_PI * cadence_hz * t);
    if (counter.on_accel(t, a).has_value()) ++reports;
  }
  return reports;
}

TEST(StepCounter, CountsStepsAtWalkingCadence) {
  StepCounter counter;
  walk(counter, 30.0, 1.8);  // 1.8 steps/s for 30 s = 54 steps
  EXPECT_NEAR(static_cast<double>(counter.steps()), 54.0, 3.0);
  EXPECT_NEAR(counter.distance_m(), 54.0 * 0.7, 3.0);
}

TEST(StepCounter, StandingStillCountsNothing) {
  StepCounter counter;
  util::Rng rng(3);
  for (double t = 0.0; t < 20.0; t += 0.01) {
    counter.on_accel(t, 9.80665 + rng.gaussian(0.0, 0.2));
  }
  EXPECT_EQ(counter.steps(), 0u);
}

TEST(StepCounter, SpeedReportsMatchCadenceTimesStride) {
  StepCounter::Config cfg;
  cfg.stride_m = 0.75;
  StepCounter counter(cfg);
  std::vector<double> speeds;
  for (double t = 0.0; t < 20.0; t += 0.01) {
    const double a = 9.80665 + 3.0 * std::sin(2.0 * M_PI * 2.0 * t);
    if (const auto s = counter.on_accel(t, a)) {
      speeds.push_back(s->speed_mps);
    }
  }
  ASSERT_GE(speeds.size(), 15u);
  // 2 steps/s x 0.75 m = 1.5 m/s (skip the first warm-up report).
  double sum = 0.0;
  for (std::size_t i = 2; i < speeds.size(); ++i) sum += speeds[i];
  EXPECT_NEAR(sum / static_cast<double>(speeds.size() - 2), 1.5, 0.2);
}

TEST(StepCounter, RefractoryPeriodCapsCadence) {
  StepCounter counter;  // min interval 0.25 s -> max 4 steps/s
  walk(counter, 10.0, 12.0);  // absurd 12 Hz vibration
  EXPECT_LE(counter.steps(), 41u);
}

TEST(StepCounter, ReportsArriveAtConfiguredInterval) {
  StepCounter::Config cfg;
  cfg.report_interval_s = 0.5;
  StepCounter counter(cfg);
  const auto reports = walk(counter, 10.0, 1.5);
  EXPECT_NEAR(static_cast<double>(reports), 19.0, 2.0);
}

}  // namespace
}  // namespace rups::core
