#include "core/correlation.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.hpp"

namespace rups::core {
namespace {

PowerVector make_pv(std::initializer_list<float> values) {
  PowerVector pv(values.size());
  std::size_t c = 0;
  for (float v : values) pv.set(c++, v);
  return pv;
}

TEST(PowerVectorCorrelation, IdenticalIsOne) {
  const auto a = make_pv({-60, -70, -80, -90, -65});
  EXPECT_NEAR(power_vector_correlation(a, a), 1.0, 1e-12);
}

TEST(PowerVectorCorrelation, AffineTransformIsOne) {
  const auto a = make_pv({-60, -70, -80, -90, -65});
  const auto b = make_pv({-50, -60, -70, -80, -55});  // +10 dB shift
  EXPECT_NEAR(power_vector_correlation(a, b), 1.0, 1e-12);
}

TEST(PowerVectorCorrelation, ReversedIsNegative) {
  const auto a = make_pv({-60, -70, -80, -90});
  const auto b = make_pv({-90, -80, -70, -60});
  EXPECT_NEAR(power_vector_correlation(a, b), -1.0, 1e-12);
}

TEST(PowerVectorCorrelation, SkipsChannelsMissingOnEitherSide) {
  PowerVector a(4), b(4);
  a.set(0, -60);
  a.set(1, -70);
  a.set(2, -80);
  // a[3] missing
  b.set(0, -61);
  b.set(1, -71);
  b.set(3, -90);
  // overlap = {0, 1} only -> below default min_overlap=3 -> 0
  EXPECT_EQ(power_vector_correlation(a, b), 0.0);
  EXPECT_NEAR(power_vector_correlation(a, b, 2), 1.0, 1e-12);
}

TEST(PowerVectorCorrelation, InterpolatedCountsAsUsable) {
  PowerVector a(3), b(3);
  for (std::size_t c = 0; c < 3; ++c) {
    const float v = -60.0f - 10.0f * static_cast<float>(c);
    a.set(c, v, ChannelState::kInterpolated);
    b.set(c, v);
  }
  EXPECT_NEAR(power_vector_correlation(a, b), 1.0, 1e-12);
}

TEST(RelativeChange, ZeroForIdentical) {
  const auto a = make_pv({-60, -70, -80});
  EXPECT_DOUBLE_EQ(relative_change_linear(a, a), 0.0);
}

TEST(RelativeChange, KnownValue) {
  // Single channel: X = 1 mW (0 dBm), X' = 2 mW (~3.01 dBm).
  PowerVector a(1), b(1);
  a.set(0, 0.0f);
  b.set(0, 3.0103f);
  EXPECT_NEAR(relative_change_linear(a, b), 1.0, 1e-3);  // |1-2|/1
}

TEST(RelativeChange, EmptyOverlapIsZero) {
  PowerVector a(2), b(2);
  a.set(0, -60);
  b.set(1, -60);
  EXPECT_DOUBLE_EQ(relative_change_linear(a, b), 0.0);
}

class TrajectoryCorrTest : public ::testing::Test {
 protected:
  /// Builds a trajectory whose channel c at metre i reads base(c) + f(i,c).
  static ContextTrajectory make_trajectory(std::size_t metres,
                                           std::size_t channels,
                                           std::uint64_t seed,
                                           float offset = 0.0f) {
    ContextTrajectory traj(channels, metres + 10);
    util::Rng rng(seed);
    std::vector<std::vector<float>> field(channels);
    // Deterministic per-channel spatial patterns whose phase and frequency
    // depend on the seed, so different seeds mean genuinely different roads.
    for (std::size_t c = 0; c < channels; ++c) {
      const double phase = rng.uniform(0.0, 6.28);
      const double freq = rng.uniform(0.2, 0.5);
      const double base = rng.uniform(-90.0, -55.0);
      field[c].resize(metres);
      for (std::size_t i = 0; i < metres; ++i) {
        field[c][i] = static_cast<float>(
            base + 8.0 * std::sin(freq * static_cast<double>(i) + phase) +
            3.0 * std::cos(1.9 * freq * static_cast<double>(i) + 2.0 * phase));
      }
    }
    for (std::size_t i = 0; i < metres; ++i) {
      PowerVector pv(channels);
      for (std::size_t c = 0; c < channels; ++c) {
        pv.set(c, field[c][i] + offset);
      }
      traj.append(GeoSample{0.0, static_cast<double>(i)}, std::move(pv));
    }
    return traj;
  }
};

TEST_F(TrajectoryCorrTest, SelfCorrelationIsTwo) {
  const auto t = make_trajectory(60, 10, 1);
  const std::vector<std::size_t> chans{0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  const double r = trajectory_correlation({&t, 0}, {&t, 0}, 50, chans);
  EXPECT_NEAR(r, 2.0, 1e-9);
}

TEST_F(TrajectoryCorrTest, ShiftedCopyStillPerfectPerChannel) {
  const auto a = make_trajectory(60, 10, 1);
  const auto b = make_trajectory(60, 10, 1, /*offset=*/5.0f);
  const std::vector<std::size_t> chans{0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  const double r = trajectory_correlation({&a, 0}, {&b, 0}, 50, chans);
  EXPECT_NEAR(r, 2.0, 1e-6);  // Pearson is shift-invariant on both terms
}

TEST_F(TrajectoryCorrTest, MisalignedWindowsScoreLower) {
  const auto t = make_trajectory(120, 10, 1);
  const std::vector<std::size_t> chans{0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  const double aligned = trajectory_correlation({&t, 20}, {&t, 20}, 50, chans);
  const double shifted = trajectory_correlation({&t, 20}, {&t, 27}, 50, chans);
  EXPECT_GT(aligned, shifted + 0.3);
}

TEST_F(TrajectoryCorrTest, DifferentTrajectoriesScoreLow) {
  const auto a = make_trajectory(60, 10, 1);
  const auto b = make_trajectory(60, 10, 777);
  const std::vector<std::size_t> chans{0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  const double r = trajectory_correlation({&a, 0}, {&b, 0}, 50, chans);
  EXPECT_LT(r, 1.2);  // below the paper's coherency threshold
}

TEST_F(TrajectoryCorrTest, OutOfBoundsWindowIsInvalid) {
  const auto t = make_trajectory(30, 5, 1);
  const std::vector<std::size_t> chans{0, 1, 2, 3, 4};
  EXPECT_EQ(trajectory_correlation({&t, 0}, {&t, 20}, 50, chans), -2.0);
}

TEST_F(TrajectoryCorrTest, InsufficientChannelsIsInvalid) {
  const auto t = make_trajectory(60, 3, 1);
  const std::vector<std::size_t> chans{0, 1, 2};
  TrajectoryCorrelationConfig cfg;
  cfg.min_channels = 5;
  EXPECT_EQ(trajectory_correlation({&t, 0}, {&t, 0}, 50, chans, cfg), -2.0);
}

TEST_F(TrajectoryCorrTest, MissingDataChannelsAreSkipped) {
  auto a = make_trajectory(60, 10, 1);
  auto b = make_trajectory(60, 10, 1);
  // Knock out channel 0 everywhere on b: correlation must still be 2.0 from
  // the remaining channels.
  for (std::size_t i = 0; i < b.size(); ++i) {
    PowerVector pv(10);
    for (std::size_t c = 1; c < 10; ++c) {
      pv.set(c, b.power(i).at(c));
    }
    b.mutable_power(i) = pv;
  }
  const std::vector<std::size_t> chans{0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  EXPECT_NEAR(trajectory_correlation({&a, 0}, {&b, 0}, 50, chans), 2.0, 1e-9);
}

TEST_F(TrajectoryCorrTest, RangeIsBounded) {
  const auto a = make_trajectory(100, 12, 5);
  const auto b = make_trajectory(100, 12, 6);
  const std::vector<std::size_t> chans{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11};
  for (std::size_t start = 0; start + 40 <= 100; start += 7) {
    const double r = trajectory_correlation({&a, start}, {&b, start}, 40,
                                            chans);
    EXPECT_GE(r, -2.0);
    EXPECT_LE(r, 2.0);
  }
}

}  // namespace
}  // namespace rups::core
