#include "core/fleet.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "core/resolver.hpp"
#include "core/syn_seeker.hpp"
#include "util/hash_noise.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

// Differential tests for the fleet-scale batch layer: whatever combination
// of thread pool and SYN cache is in play, estimate_batch must return
// exactly what N independent serial SynSeeker+aggregate runs return. No
// tolerance — the batch layer shares the packed kernel with the serial
// path, so any drift is a real bug, not rounding.

namespace rups::core {
namespace {

constexpr std::size_t kChannels = 30;
constexpr std::size_t kCapacity = 400;

float road_rssi(std::uint64_t road_seed, std::int64_t metre, std::size_t ch) {
  const util::HashNoise chan_noise(road_seed ^ 0xABCDULL);
  const util::LatticeField1D spatial(
      util::hash_combine(road_seed, static_cast<std::uint64_t>(ch)), 8.0, 2);
  const double base =
      -95.0 + 40.0 * chan_noise.uniform(static_cast<std::int64_t>(ch));
  return static_cast<float>(base +
                            6.0 * spatial.value(static_cast<double>(metre)));
}

/// One vehicle's pre-generated drive: context plus the future metres that
/// each round appends, so every engine mode replays identical inputs.
struct VehicleLog {
  std::int64_t road_start = 0;
  std::vector<std::vector<float>> rssi;  // [metre][channel]
};

VehicleLog make_log(std::uint64_t seed, std::size_t vehicle,
                    std::size_t metres) {
  VehicleLog log;
  log.road_start =
      vehicle == 0 ? 0 : static_cast<std::int64_t>(15 + 20 * (vehicle - 1));
  util::Rng rng(seed * 100 + vehicle);
  log.rssi.assign(metres, std::vector<float>(kChannels));
  for (std::size_t i = 0; i < metres; ++i) {
    for (std::size_t c = 0; c < kChannels; ++c) {
      log.rssi[i][c] =
          road_rssi(seed, log.road_start + static_cast<std::int64_t>(i), c) +
          static_cast<float>(rng.gaussian(0.0, 0.5));
    }
  }
  return log;
}

void append_metres(ContextTrajectory& t, const VehicleLog& log,
                   std::size_t from, std::size_t count) {
  for (std::size_t i = from; i < from + count; ++i) {
    PowerVector pv(kChannels);
    for (std::size_t c = 0; c < kChannels; ++c) pv.set(c, log.rssi[i][c]);
    t.append(GeoSample{}, std::move(pv));
  }
}

RupsConfig fleet_rups_config() {
  RupsConfig cfg;
  cfg.channels = kChannels;
  cfg.context_capacity_m = kCapacity;
  cfg.syn.window_m = 40;
  cfg.syn.top_channels = 20;
  cfg.syn.coherency_threshold = 1.2;
  cfg.syn.syn_points = 2;
  cfg.syn.syn_segment_spacing_m = 25;
  return cfg;
}

struct RoundLog {
  std::vector<std::vector<FleetEngine::NeighbourResult>> rounds;
};

/// Replay the fixed drive through a FleetEngine in the given mode.
RoundLog run_fleet(const std::vector<VehicleLog>& logs, std::size_t fleet_n,
                   std::size_t initial_m, std::size_t rounds,
                   std::size_t step_m, bool use_cache,
                   util::ThreadPool* pool) {
  FleetConfig cfg;
  cfg.rups = fleet_rups_config();
  cfg.use_cache = use_cache;
  FleetEngine engine(cfg);

  std::vector<ContextTrajectory> contexts;
  for (std::size_t v = 0; v < fleet_n + 1; ++v) {
    contexts.emplace_back(kChannels, kCapacity);
    append_metres(contexts.back(), logs[v], 0, initial_m);
  }
  std::vector<const ContextTrajectory*> neighbours;
  std::vector<std::uint64_t> ids;
  for (std::size_t v = 1; v < fleet_n + 1; ++v) {
    neighbours.push_back(&contexts[v]);
    ids.push_back(100 + v);
  }

  RoundLog out;
  for (std::size_t round = 0; round < rounds; ++round) {
    if (round != 0) {
      const std::size_t from = initial_m + (round - 1) * step_m;
      for (std::size_t v = 0; v < fleet_n + 1; ++v) {
        append_metres(contexts[v], logs[v], from, step_m);
      }
    }
    out.rounds.push_back(engine.estimate_batch(contexts[0], neighbours, ids,
                                               pool));
  }
  return out;
}

/// Reference: per-neighbour serial estimate path (plain SynSeeker + the
/// same aggregation), no packs, no cache, no batch.
RoundLog run_reference(const std::vector<VehicleLog>& logs,
                       std::size_t fleet_n, std::size_t initial_m,
                       std::size_t rounds, std::size_t step_m) {
  const RupsConfig rups = fleet_rups_config();
  const SynSeeker seeker(rups.syn);

  std::vector<ContextTrajectory> contexts;
  for (std::size_t v = 0; v < fleet_n + 1; ++v) {
    contexts.emplace_back(kChannels, kCapacity);
    append_metres(contexts.back(), logs[v], 0, initial_m);
  }

  RoundLog out;
  for (std::size_t round = 0; round < rounds; ++round) {
    if (round != 0) {
      const std::size_t from = initial_m + (round - 1) * step_m;
      for (std::size_t v = 0; v < fleet_n + 1; ++v) {
        append_metres(contexts[v], logs[v], from, step_m);
      }
    }
    std::vector<FleetEngine::NeighbourResult> results;
    for (std::size_t v = 1; v < fleet_n + 1; ++v) {
      FleetEngine::NeighbourResult r;
      r.syn_points = seeker.find(contexts[0], contexts[v]);
      r.estimate = aggregate_estimates(contexts[0], contexts[v], r.syn_points,
                                       rups.aggregation);
      results.push_back(std::move(r));
    }
    out.rounds.push_back(std::move(results));
  }
  return out;
}

void expect_identical(const RoundLog& a, const RoundLog& b,
                      const char* label) {
  ASSERT_EQ(a.rounds.size(), b.rounds.size()) << label;
  for (std::size_t r = 0; r < a.rounds.size(); ++r) {
    ASSERT_EQ(a.rounds[r].size(), b.rounds[r].size()) << label;
    for (std::size_t i = 0; i < a.rounds[r].size(); ++i) {
      const auto& x = a.rounds[r][i];
      const auto& y = b.rounds[r][i];
      ASSERT_EQ(x.estimate.has_value(), y.estimate.has_value())
          << label << " round " << r << " neighbour " << i;
      if (x.estimate.has_value()) {
        EXPECT_EQ(x.estimate->distance_m, y.estimate->distance_m)
            << label << " round " << r << " neighbour " << i;
        EXPECT_EQ(x.estimate->confidence, y.estimate->confidence) << label;
        EXPECT_EQ(x.estimate->syn_count, y.estimate->syn_count) << label;
      }
      ASSERT_EQ(x.syn_points.size(), y.syn_points.size()) << label;
      for (std::size_t s = 0; s < x.syn_points.size(); ++s) {
        EXPECT_EQ(x.syn_points[s].index_a, y.syn_points[s].index_a) << label;
        EXPECT_EQ(x.syn_points[s].index_b, y.syn_points[s].index_b) << label;
        EXPECT_EQ(x.syn_points[s].window_m, y.syn_points[s].window_m)
            << label;
        EXPECT_EQ(x.syn_points[s].correlation, y.syn_points[s].correlation)
            << label;
      }
    }
  }
}

class FleetDeterminism : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FleetDeterminism, AllModesMatchSerialReferenceExactly) {
  const std::uint64_t seed = GetParam();
  const std::size_t fleet_n = 4;
  const std::size_t initial_m = 150;
  const std::size_t rounds = 6;
  const std::size_t step_m = 4;
  const std::size_t total_m = initial_m + rounds * step_m;

  std::vector<VehicleLog> logs;
  for (std::size_t v = 0; v < fleet_n + 1; ++v) {
    logs.push_back(make_log(seed, v, total_m));
  }

  const RoundLog reference =
      run_reference(logs, fleet_n, initial_m, rounds, step_m);
  // At least some rounds must actually find estimates or the test is
  // vacuous.
  std::size_t estimates = 0;
  for (const auto& round : reference.rounds) {
    for (const auto& r : round) {
      if (r.estimate.has_value()) ++estimates;
    }
  }
  ASSERT_GT(estimates, 0u);

  util::ThreadPool pool(2);
  const RoundLog serial_cold = run_fleet(logs, fleet_n, initial_m, rounds,
                                         step_m, /*use_cache=*/false, nullptr);
  const RoundLog serial_warm = run_fleet(logs, fleet_n, initial_m, rounds,
                                         step_m, /*use_cache=*/true, nullptr);
  const RoundLog pooled_cold = run_fleet(logs, fleet_n, initial_m, rounds,
                                         step_m, /*use_cache=*/false, &pool);
  const RoundLog pooled_warm = run_fleet(logs, fleet_n, initial_m, rounds,
                                         step_m, /*use_cache=*/true, &pool);

  expect_identical(serial_cold, reference, "serial-cold vs reference");
  expect_identical(serial_warm, reference, "serial-warm vs reference");
  expect_identical(pooled_cold, reference, "pooled-cold vs reference");
  expect_identical(pooled_warm, reference, "pooled-warm vs reference");
}

/// Replay the drive with the cache on at the given kernel precision and
/// return both the per-round results and the aggregated cache stats.
std::pair<RoundLog, SynCache::Stats> run_fleet_at_precision(
    const std::vector<VehicleLog>& logs, std::size_t fleet_n,
    std::size_t initial_m, std::size_t rounds, std::size_t step_m,
    KernelPrecision precision) {
  FleetConfig cfg;
  cfg.rups = fleet_rups_config();
  cfg.rups.syn.precision = precision;
  cfg.use_cache = true;
  FleetEngine engine(cfg);

  std::vector<ContextTrajectory> contexts;
  for (std::size_t v = 0; v < fleet_n + 1; ++v) {
    contexts.emplace_back(kChannels, kCapacity);
    append_metres(contexts.back(), logs[v], 0, initial_m);
  }
  std::vector<const ContextTrajectory*> neighbours;
  std::vector<std::uint64_t> ids;
  for (std::size_t v = 1; v < fleet_n + 1; ++v) {
    neighbours.push_back(&contexts[v]);
    ids.push_back(100 + v);
  }

  RoundLog out;
  for (std::size_t round = 0; round < rounds; ++round) {
    if (round != 0) {
      const std::size_t from = initial_m + (round - 1) * step_m;
      for (std::size_t v = 0; v < fleet_n + 1; ++v) {
        append_metres(contexts[v], logs[v], from, step_m);
      }
    }
    out.rounds.push_back(
        engine.estimate_batch(contexts[0], neighbours, ids, nullptr));
  }
  return {std::move(out), engine.cache_stats()};
}

/// ISSUE 8 satellite: the quantized kernel's bounded score error must not
/// leak into the cache's CONTROL FLOW. Hit/miss/fallback/invalidation
/// counts and every per-round alignment decision (estimate presence, SYN
/// indices, windows) have to be identical float-vs-int16 on the same
/// drives; only the correlation VALUES may differ, and only within the
/// quantization bound.
TEST_P(FleetDeterminism, CacheDecisionsMatchFloatVsInt16) {
  const std::uint64_t seed = GetParam();
  const std::size_t fleet_n = 4;
  const std::size_t initial_m = 150;
  const std::size_t rounds = 6;
  const std::size_t step_m = 4;

  std::vector<VehicleLog> logs;
  for (std::size_t v = 0; v < fleet_n + 1; ++v) {
    logs.push_back(make_log(seed, v, initial_m + rounds * step_m));
  }

  const auto [float_log, float_stats] = run_fleet_at_precision(
      logs, fleet_n, initial_m, rounds, step_m, KernelPrecision::kFloat32);
  const auto [quant_log, quant_stats] = run_fleet_at_precision(
      logs, fleet_n, initial_m, rounds, step_m, KernelPrecision::kInt16);

  EXPECT_EQ(float_stats.queries, quant_stats.queries);
  EXPECT_EQ(float_stats.tracking_hits, quant_stats.tracking_hits);
  EXPECT_EQ(float_stats.tracking_misses, quant_stats.tracking_misses);
  EXPECT_EQ(float_stats.full_searches, quant_stats.full_searches);
  EXPECT_EQ(float_stats.invalidations, quant_stats.invalidations);
  // The drive must actually exercise the tracker or the parity is vacuous.
  ASSERT_GT(float_stats.tracking_hits, 0u);

  ASSERT_EQ(float_log.rounds.size(), quant_log.rounds.size());
  for (std::size_t r = 0; r < float_log.rounds.size(); ++r) {
    ASSERT_EQ(float_log.rounds[r].size(), quant_log.rounds[r].size());
    for (std::size_t i = 0; i < float_log.rounds[r].size(); ++i) {
      const auto& x = float_log.rounds[r][i];
      const auto& y = quant_log.rounds[r][i];
      ASSERT_EQ(x.estimate.has_value(), y.estimate.has_value())
          << "round " << r << " neighbour " << i;
      ASSERT_EQ(x.syn_points.size(), y.syn_points.size())
          << "round " << r << " neighbour " << i;
      for (std::size_t s = 0; s < x.syn_points.size(); ++s) {
        EXPECT_EQ(x.syn_points[s].index_a, y.syn_points[s].index_a)
            << "round " << r << " neighbour " << i;
        EXPECT_EQ(x.syn_points[s].index_b, y.syn_points[s].index_b)
            << "round " << r << " neighbour " << i;
        EXPECT_EQ(x.syn_points[s].window_m, y.syn_points[s].window_m)
            << "round " << r << " neighbour " << i;
        EXPECT_NEAR(x.syn_points[s].correlation, y.syn_points[s].correlation,
                    2e-2)
            << "round " << r << " neighbour " << i;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FleetDeterminism,
                         ::testing::Values(11ULL, 29ULL, 73ULL));

TEST(FleetEngine, WarmCacheActuallyTracks) {
  const std::uint64_t seed = 11;
  const std::size_t fleet_n = 3;
  const std::size_t initial_m = 150;
  const std::size_t rounds = 6;
  const std::size_t step_m = 4;
  std::vector<VehicleLog> logs;
  for (std::size_t v = 0; v < fleet_n + 1; ++v) {
    logs.push_back(make_log(seed, v, initial_m + rounds * step_m));
  }

  FleetConfig cfg;
  cfg.rups = fleet_rups_config();
  cfg.use_cache = true;
  FleetEngine engine(cfg);
  std::vector<ContextTrajectory> contexts;
  for (std::size_t v = 0; v < fleet_n + 1; ++v) {
    contexts.emplace_back(kChannels, kCapacity);
    append_metres(contexts.back(), logs[v], 0, initial_m);
  }
  std::vector<const ContextTrajectory*> neighbours;
  std::vector<std::uint64_t> ids;
  for (std::size_t v = 1; v < fleet_n + 1; ++v) {
    neighbours.push_back(&contexts[v]);
    ids.push_back(v);
  }
  for (std::size_t round = 0; round < rounds; ++round) {
    if (round != 0) {
      const std::size_t from = initial_m + (round - 1) * step_m;
      for (std::size_t v = 0; v < fleet_n + 1; ++v) {
        append_metres(contexts[v], logs[v], from, step_m);
      }
    }
    (void)engine.estimate_batch(contexts[0], neighbours, ids, nullptr);
  }
  const SynCache::Stats stats = engine.cache_stats();
  EXPECT_EQ(engine.shard_count(), fleet_n);
  EXPECT_GT(stats.tracking_hits, 0u);
  EXPECT_GT(stats.queries, 0u);
  // Steady state: after the first (cold) round the tracker should carry
  // most queries.
  EXPECT_GT(stats.tracking_hits, stats.tracking_misses);
}

TEST(FleetEngine, RejectsDuplicateIdsAndSizeMismatch) {
  FleetEngine engine;
  ContextTrajectory ego(kChannels, kCapacity);
  ContextTrajectory n1(kChannels, kCapacity);
  const std::vector<const ContextTrajectory*> two = {&n1, &n1};
  const std::vector<std::uint64_t> dup_ids = {5, 5};
  EXPECT_THROW((void)engine.estimate_batch(ego, two, dup_ids, nullptr),
               std::invalid_argument);
  const std::vector<std::uint64_t> one_id = {5};
  EXPECT_THROW((void)engine.estimate_batch(ego, two, one_id, nullptr),
               std::invalid_argument);
}

}  // namespace
}  // namespace rups::core
