#include "vehicle/passing.hpp"

#include <gtest/gtest.h>

namespace rups::vehicle {
namespace {

TEST(Passing, DeterministicFromSeed) {
  PassingVehicleProcess a(1, road::EnvironmentType::kEightLaneUrban, 3600.0);
  PassingVehicleProcess b(1, road::EnvironmentType::kEightLaneUrban, 3600.0);
  ASSERT_EQ(a.events().size(), b.events().size());
  for (std::size_t i = 0; i < a.events().size(); ++i) {
    EXPECT_DOUBLE_EQ(a.events()[i].start_s, b.events()[i].start_s);
  }
}

TEST(Passing, DifferentSeedsDiffer) {
  PassingVehicleProcess a(1, road::EnvironmentType::kEightLaneUrban, 3600.0);
  PassingVehicleProcess b(2, road::EnvironmentType::kEightLaneUrban, 3600.0);
  // Same rate, different event times.
  ASSERT_FALSE(a.events().empty());
  ASSERT_FALSE(b.events().empty());
  EXPECT_NE(a.events()[0].start_s, b.events()[0].start_s);
}

TEST(Passing, EventCountScalesWithRate) {
  PassingVehicleProcess eight(3, road::EnvironmentType::kEightLaneUrban,
                              7200.0);
  PassingVehicleProcess suburb(3, road::EnvironmentType::kTwoLaneSuburb,
                               7200.0);
  EXPECT_GT(eight.events().size(), 2 * suburb.events().size());
}

TEST(Passing, EventsSortedNonOverlapping) {
  PassingVehicleProcess p(4, road::EnvironmentType::kEightLaneUrban, 7200.0);
  double prev_end = -1.0;
  for (const auto& e : p.events()) {
    EXPECT_GT(e.start_s, prev_end);
    EXPECT_GT(e.duration_s, 0.0);
    EXPECT_GE(e.attenuation_db, 4.0);
    EXPECT_LE(e.attenuation_db, 12.0);
    prev_end = e.start_s + e.duration_s;
  }
}

TEST(Passing, AttenuationActiveOnlyDuringEvent) {
  PassingVehicleProcess p(5, road::EnvironmentType::kEightLaneUrban, 3600.0);
  ASSERT_FALSE(p.events().empty());
  const auto& e = p.events().front();
  EXPECT_DOUBLE_EQ(p.attenuation_db(e.start_s - 0.1), 0.0);
  EXPECT_DOUBLE_EQ(p.attenuation_db(e.start_s + 0.5 * e.duration_s),
                   e.attenuation_db);
  EXPECT_DOUBLE_EQ(p.attenuation_db(e.start_s + e.duration_s + 0.1), 0.0);
  EXPECT_GT(p.extra_noise_db(e.start_s + 0.1), 0.0);
  EXPECT_DOUBLE_EQ(p.extra_noise_db(e.start_s - 1.0), 0.0);
}

TEST(Passing, ZeroRateScaleMeansNoEvents) {
  PassingVehicleProcess p(6, road::EnvironmentType::kEightLaneUrban, 3600.0,
                          0.0);
  EXPECT_TRUE(p.events().empty());
  EXPECT_DOUBLE_EQ(p.attenuation_db(100.0), 0.0);
}

TEST(Passing, HorizonRespected) {
  PassingVehicleProcess p(7, road::EnvironmentType::kEightLaneUrban, 600.0);
  for (const auto& e : p.events()) EXPECT_LT(e.start_s, 600.0);
}

}  // namespace
}  // namespace rups::vehicle
