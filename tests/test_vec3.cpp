#include "util/vec3.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

namespace rups::util {
namespace {

constexpr double kPi = std::numbers::pi;

TEST(Vec3, Arithmetic) {
  const Vec3 a{1, 2, 3}, b{4, 5, 6};
  const Vec3 sum = a + b;
  EXPECT_EQ(sum.x, 5);
  EXPECT_EQ(sum.y, 7);
  EXPECT_EQ(sum.z, 9);
  const Vec3 diff = b - a;
  EXPECT_EQ(diff.x, 3);
  const Vec3 scaled = a * 2.0;
  EXPECT_EQ(scaled.z, 6);
  const Vec3 pre = 2.0 * a;
  EXPECT_EQ(pre.z, 6);
}

TEST(Vec3, DotAndCross) {
  const Vec3 x{1, 0, 0}, y{0, 1, 0}, z{0, 0, 1};
  EXPECT_EQ(x.dot(y), 0.0);
  EXPECT_EQ(x.dot(x), 1.0);
  const Vec3 c = x.cross(y);
  EXPECT_NEAR(c.x, z.x, 1e-15);
  EXPECT_NEAR(c.y, z.y, 1e-15);
  EXPECT_NEAR(c.z, z.z, 1e-15);
  // Anti-commutative.
  const Vec3 c2 = y.cross(x);
  EXPECT_NEAR(c2.z, -1.0, 1e-15);
}

TEST(Vec3, NormAndNormalize) {
  const Vec3 v{3, 4, 0};
  EXPECT_DOUBLE_EQ(v.norm(), 5.0);
  EXPECT_NEAR(v.normalized().norm(), 1.0, 1e-15);
  const Vec3 zero{};
  EXPECT_EQ(zero.normalized().norm(), 0.0);
}

TEST(Mat3, IdentityActsTrivially) {
  const Mat3 id = Mat3::identity();
  const Vec3 v{1.5, -2.0, 0.25};
  const Vec3 r = id * v;
  EXPECT_DOUBLE_EQ(r.x, v.x);
  EXPECT_DOUBLE_EQ(r.y, v.y);
  EXPECT_DOUBLE_EQ(r.z, v.z);
}

TEST(Mat3, RotationAboutZ) {
  const Mat3 r = Mat3::rotation({0, 0, 1}, kPi / 2);
  const Vec3 v = r * Vec3{1, 0, 0};
  EXPECT_NEAR(v.x, 0.0, 1e-12);
  EXPECT_NEAR(v.y, 1.0, 1e-12);
  EXPECT_NEAR(v.z, 0.0, 1e-12);
}

TEST(Mat3, RotationPreservesNorm) {
  const Mat3 r = Mat3::rotation(Vec3{1, 2, 3}.normalized(), 0.7);
  const Vec3 v{0.3, -1.1, 2.5};
  EXPECT_NEAR((r * v).norm(), v.norm(), 1e-12);
}

TEST(Mat3, RotationInverseIsTranspose) {
  const Mat3 r = Mat3::rotation(Vec3{-1, 0.5, 2}.normalized(), 1.3);
  const Mat3 should_be_id = r * r.transpose();
  EXPECT_LT(should_be_id.distance(Mat3::identity()), 1e-12);
}

TEST(Mat3, EulerYawOnly) {
  const Mat3 r = Mat3::from_euler(kPi / 2, 0, 0);
  const Vec3 v = r * Vec3{1, 0, 0};
  EXPECT_NEAR(v.y, 1.0, 1e-12);
}

TEST(Mat3, EulerComposition) {
  // from_euler(y,p,r) == Rz(y) * Ry(p) * Rx(r)
  const double yaw = 0.3, pitch = -0.4, roll = 1.1;
  const Mat3 composed = Mat3::rotation({0, 0, 1}, yaw) *
                        Mat3::rotation({0, 1, 0}, pitch) *
                        Mat3::rotation({1, 0, 0}, roll);
  EXPECT_LT(Mat3::from_euler(yaw, pitch, roll).distance(composed), 1e-12);
}

TEST(Mat3, FromRowsProjectsOntoAxes) {
  // Rows are the target frame's axes expressed in the source frame; applying
  // the matrix yields the coordinates of a vector in the target frame.
  const Vec3 x{0, 1, 0}, y{-1, 0, 0}, z{0, 0, 1};
  const Mat3 r = Mat3::from_rows(x, y, z);
  const Vec3 v = r * Vec3{0, 2, 0};  // points along target x
  EXPECT_NEAR(v.x, 2.0, 1e-15);
  EXPECT_NEAR(v.y, 0.0, 1e-15);
}

TEST(Mat3, MultiplyAssociative) {
  const Mat3 a = Mat3::rotation({0, 0, 1}, 0.5);
  const Mat3 b = Mat3::rotation({0, 1, 0}, -0.8);
  const Mat3 c = Mat3::rotation({1, 0, 0}, 1.2);
  EXPECT_LT(((a * b) * c).distance(a * (b * c)), 1e-12);
}

}  // namespace
}  // namespace rups::util
