#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/obs.hpp"
#include "util/json.hpp"
#include "util/thread_pool.hpp"

namespace rups::obs {
namespace {

TEST(Counter, StartsAtZeroAndAccumulates) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(Counter, ConcurrentIncrementsFromThreadPoolWorkersAreLossless) {
  Counter c;
  util::ThreadPool pool(4);
  constexpr std::size_t kTasks = 64;
  constexpr std::size_t kIncsPerTask = 10'000;
  pool.parallel_for(0, kTasks, [&](std::size_t) {
    for (std::size_t i = 0; i < kIncsPerTask; ++i) c.inc();
  });
  EXPECT_EQ(c.value(), kTasks * kIncsPerTask);
}

TEST(Gauge, SetAddAndReset) {
  Gauge g;
  g.set(2.5);
  EXPECT_DOUBLE_EQ(g.value(), 2.5);
  g.add(-1.0);
  EXPECT_DOUBLE_EQ(g.value(), 1.5);
  g.reset();
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
}

TEST(Histogram, BucketSemantics) {
  // Bounds are upper edges; the last bucket catches everything above.
  Histogram h({1.0, 2.0, 4.0});
  h.record(0.5);   // <= 1.0
  h.record(1.0);   // <= 1.0 (upper edge inclusive)
  h.record(1.5);   // <= 2.0
  h.record(3.0);   // <= 4.0
  h.record(100.0); // overflow
  const HistogramSample s = h.sample("t");
  ASSERT_EQ(s.buckets.size(), 4u);
  EXPECT_EQ(s.buckets[0], 2u);
  EXPECT_EQ(s.buckets[1], 1u);
  EXPECT_EQ(s.buckets[2], 1u);
  EXPECT_EQ(s.buckets[3], 1u);
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.sum, 106.0);
  EXPECT_DOUBLE_EQ(s.min, 0.5);
  EXPECT_DOUBLE_EQ(s.max, 100.0);
  EXPECT_DOUBLE_EQ(s.mean(), 106.0 / 5.0);
}

TEST(Histogram, EmptySampleHasZeroExtrema) {
  Histogram h({1.0});
  const HistogramSample s = h.sample("empty");
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.min, 0.0);
  EXPECT_DOUBLE_EQ(s.max, 0.0);
}

TEST(Histogram, ConcurrentRecordsPreserveTotalCount) {
  Histogram h(exponential_bounds(1.0, 2.0, 10));
  util::ThreadPool pool(4);
  constexpr std::size_t kTasks = 32;
  constexpr std::size_t kPerTask = 2'000;
  pool.parallel_for(0, kTasks, [&](std::size_t t) {
    for (std::size_t i = 0; i < kPerTask; ++i) {
      h.record(static_cast<double>((t * kPerTask + i) % 1000));
    }
  });
  const HistogramSample s = h.sample("c");
  EXPECT_EQ(s.count, kTasks * kPerTask);
  std::uint64_t bucket_total = 0;
  for (const auto b : s.buckets) bucket_total += b;
  EXPECT_EQ(bucket_total, s.count);
}

TEST(Histogram, ExponentialBounds) {
  const auto bounds = exponential_bounds(1.0, 2.0, 4);
  EXPECT_EQ(bounds, (std::vector<double>{1.0, 2.0, 4.0, 8.0}));
  EXPECT_FALSE(default_latency_bounds_us().empty());
}

TEST(Registry, SameNameReturnsSameMetric) {
  Registry reg;
  Counter& a = reg.counter("x");
  Counter& b = reg.counter("x");
  EXPECT_EQ(&a, &b);
  a.inc();
  EXPECT_EQ(b.value(), 1u);
  Histogram& h1 = reg.histogram("h", {1.0, 2.0});
  Histogram& h2 = reg.histogram("h", {5.0});  // bounds fixed on creation
  EXPECT_EQ(&h1, &h2);
  EXPECT_EQ(h2.bounds(), (std::vector<double>{1.0, 2.0}));
}

TEST(Registry, SnapshotIsDeterministicAndSorted) {
  Registry reg;
  reg.counter("zebra").inc(3);
  reg.counter("alpha").inc(1);
  reg.gauge("mid").set(7.0);
  reg.histogram("lat", {10.0}).record(4.0);

  const MetricsSnapshot s1 = reg.snapshot();
  const MetricsSnapshot s2 = reg.snapshot();
  EXPECT_EQ(s1, s2);
  EXPECT_EQ(s1.to_json(), s2.to_json());
  ASSERT_EQ(s1.counters.size(), 2u);
  EXPECT_EQ(s1.counters[0].name, "alpha");
  EXPECT_EQ(s1.counters[1].name, "zebra");
  ASSERT_NE(s1.counter("zebra"), nullptr);
  EXPECT_EQ(s1.counter("zebra")->value, 3u);
  EXPECT_EQ(s1.counter("missing"), nullptr);
  ASSERT_NE(s1.gauge("mid"), nullptr);
  ASSERT_NE(s1.histogram("lat"), nullptr);
  EXPECT_EQ(s1.histogram("lat")->count, 1u);
}

TEST(Registry, ResetZeroesEverythingButKeepsHandles) {
  Registry reg;
  Counter& c = reg.counter("c");
  c.inc(9);
  reg.gauge("g").set(1.0);
  reg.histogram("h").record(5.0);
  reg.reset();
  EXPECT_EQ(c.value(), 0u);
  const auto snap = reg.snapshot();
  EXPECT_EQ(snap.counter("c")->value, 0u);
  EXPECT_DOUBLE_EQ(snap.gauge("g")->value, 0.0);
  EXPECT_EQ(snap.histogram("h")->count, 0u);
}

TEST(Snapshot, JsonRoundTrip) {
  Registry reg;
  reg.counter("syn.windows_scanned").inc(12345);
  reg.counter("v2v.payload_bytes").inc(182'000);
  reg.gauge("campaign.last_availability").set(0.875);
  Histogram& h = reg.histogram("campaign.query_latency_us", {10.0, 100.0});
  h.record(3.5);
  h.record(42.0);
  h.record(5000.0);

  const MetricsSnapshot original = reg.snapshot();
  const std::string json = original.to_json();
  const MetricsSnapshot parsed = MetricsSnapshot::from_json(json);
  EXPECT_EQ(parsed, original);
  EXPECT_EQ(parsed.to_json(), json);
}

TEST(Snapshot, JsonRoundTripEmpty) {
  const MetricsSnapshot empty;
  EXPECT_EQ(MetricsSnapshot::from_json(empty.to_json()), empty);
}

TEST(Snapshot, FromJsonRejectsGarbage) {
  EXPECT_THROW(MetricsSnapshot::from_json("not json"), std::runtime_error);
  EXPECT_THROW(MetricsSnapshot::from_json("{\"counters\": [{]}"),
               std::runtime_error);
}

TEST(Snapshot, EscapesNamesInJson) {
  MetricsSnapshot snap;
  snap.counters.push_back({"weird\"name\\with\nstuff", 1});
  const auto parsed = MetricsSnapshot::from_json(snap.to_json());
  EXPECT_EQ(parsed, snap);
}

TEST(Snapshot, EscapesControlCharactersAndRoundTripsHostileLabels) {
  // Family-cell shapes carry raw label values into metric names; control
  // characters and quotes must survive to_json -> from_json untouched and
  // the document must stay valid JSON for a generic parser.
  MetricsSnapshot snap;
  snap.counters.push_back(
      {std::string("fam{key=\"\x01quote\\\"mid\x1f\"}"), 3});
  snap.counters.push_back({std::string("nul\0inside", 10), 7});
  snap.gauges.push_back({"bell\x07tab\ttext", 2.5});
  const std::string json = snap.to_json();
  EXPECT_NO_THROW((void)rups::util::JsonValue::parse(json));
  const auto parsed = MetricsSnapshot::from_json(json);
  EXPECT_EQ(parsed, snap);
}

TEST(Snapshot, FromJsonDecodesUnicodeEscapes) {
  const MetricsSnapshot parsed = MetricsSnapshot::from_json(
      "{\"counters\": [{\"name\": \"a\\u0001b\\u00e9\", \"value\": 4}],\n"
      "  \"gauges\": [], \"histograms\": []}");
  ASSERT_EQ(parsed.counters.size(), 1u);
  EXPECT_EQ(parsed.counters[0].name, "a\x01" "b\xC3\xA9");
  EXPECT_EQ(parsed.counters[0].value, 4u);
}

TEST(ObsTimer, RecordsIntoHistogram) {
  Histogram h(default_latency_bounds_us());
  {
    ObsTimer timer(&h);
  }
  EXPECT_EQ(h.count(), 1u);
  EXPECT_GE(h.sum(), 0.0);
}

TEST(ObsTimer, StopIsIdempotent) {
  Histogram h(default_latency_bounds_us());
  ObsTimer timer(&h);
  timer.stop();
  timer.stop();
  EXPECT_EQ(h.count(), 1u);
}

TEST(ChromeTraceSink, WritesLoadableSpanArray) {
  const auto path =
      std::filesystem::temp_directory_path() / "rups_test_trace.json";
  {
    ChromeTraceSink sink(path);
    ASSERT_TRUE(sink.ok());
    set_trace_sink(&sink);
    Histogram h(default_latency_bounds_us());
    {
      ObsTimer t1(&h, "outer");
      ObsTimer t2(&h, "inner");
    }
    set_trace_sink(nullptr);
    EXPECT_EQ(sink.events_written(), 2u);
  }
  std::ifstream in(path);
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();
  EXPECT_EQ(text.front(), '[');
  EXPECT_NE(text.find("\"name\": \"outer\""), std::string::npos);
  EXPECT_NE(text.find("\"name\": \"inner\""), std::string::npos);
  EXPECT_NE(text.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_EQ(text.back(), '\n');
  EXPECT_EQ(text[text.size() - 2], ']');
  std::filesystem::remove(path);
}

TEST(Logger, LevelsFilterAndFileSink) {
  const auto path =
      std::filesystem::temp_directory_path() / "rups_test_log.txt";
  Logger& log = Logger::global();
  log.set_sink_file(path);
  log.set_min_level(LogLevel::kInfo);

  RUPS_LOG(kDebug) << "should not appear";
  RUPS_LOG(kInfo) << "info line " << 42;
  RUPS_LOG(kError) << "error line";

  log.set_sink_file({});  // back to stderr, flushes/closes the file

  std::ifstream in(path);
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();
  EXPECT_EQ(text.find("should not appear"), std::string::npos);
  EXPECT_NE(text.find("info line 42"), std::string::npos);
  EXPECT_NE(text.find("INFO"), std::string::npos);
  EXPECT_NE(text.find("error line"), std::string::npos);
  EXPECT_NE(text.find("test_obs.cpp:"), std::string::npos);
  std::filesystem::remove(path);
  log.set_min_level(LogLevel::kWarn);
}

TEST(Logger, RateLimitDropsAndReports) {
  const auto path =
      std::filesystem::temp_directory_path() / "rups_test_ratelimit.txt";
  Logger& log = Logger::global();
  log.set_sink_file(path);
  log.set_min_level(LogLevel::kInfo);
  log.set_rate_limit(2.0);  // bucket starts with 2 tokens

  for (int i = 0; i < 10; ++i) RUPS_LOG(kInfo) << "burst " << i;
  EXPECT_GT(log.dropped_lines(), 0u);

  log.set_rate_limit(0.0);
  RUPS_LOG(kInfo) << "after limit";  // reports the dropped count
  log.set_sink_file({});

  std::ifstream in(path);
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();
  EXPECT_NE(text.find("burst 0"), std::string::npos);
  EXPECT_NE(text.find("rate limit dropped"), std::string::npos);
  EXPECT_NE(text.find("after limit"), std::string::npos);
  std::filesystem::remove(path);
  log.set_min_level(LogLevel::kWarn);
}

TEST(HistogramQuantile, EmptyHistogramYieldsZero) {
  HistogramSample h;
  h.bounds = {1.0, 2.0};
  h.buckets = {0, 0, 0};
  EXPECT_DOUBLE_EQ(histogram_quantile(h, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(histogram_quantile(HistogramSample{}, 0.99), 0.0);
}

TEST(HistogramQuantile, SingleBucketInterpolatesBetweenEdges) {
  // All 5 samples landed in (min..10]; min is the effective lower edge.
  HistogramSample h;
  h.count = 5;
  h.min = 2.0;
  h.max = 8.0;
  h.bounds = {10.0};
  h.buckets = {5, 0};
  EXPECT_DOUBLE_EQ(histogram_quantile(h, 0.5), 6.0);  // 2 + 0.5*(10-2)
  // Quantiles clamp to the observed range: no estimate above max...
  EXPECT_DOUBLE_EQ(histogram_quantile(h, 1.0), 8.0);
  // ...or below min (q clamped to [0, 1] too).
  EXPECT_DOUBLE_EQ(histogram_quantile(h, 0.0), 2.0);
  EXPECT_DOUBLE_EQ(histogram_quantile(h, -3.0), 2.0);
  EXPECT_DOUBLE_EQ(histogram_quantile(h, 7.0), 8.0);
}

TEST(HistogramQuantile, OverflowBucketResolvesToObservedMax) {
  // Samples beyond the last bound live in the unbounded +Inf bucket; the
  // only honest value there is the recorded max.
  HistogramSample h;
  h.count = 4;
  h.min = 12.0;
  h.max = 20.0;
  h.bounds = {10.0};
  h.buckets = {0, 4};
  EXPECT_DOUBLE_EQ(histogram_quantile(h, 0.5), 20.0);
  EXPECT_DOUBLE_EQ(histogram_quantile(h, 0.99), 20.0);
}

TEST(HistogramQuantile, WalksCumulativeBuckets) {
  // 10 samples: 5 in (0..10], 4 in (10..20], 1 beyond 20.
  HistogramSample h;
  h.count = 10;
  h.min = 1.0;
  h.max = 30.0;
  h.bounds = {10.0, 20.0};
  h.buckets = {5, 4, 1};
  // p50: rank 5 is the last sample of bucket 0 -> its upper edge region.
  EXPECT_NEAR(histogram_quantile(h, 0.5), 10.0, 1e-9);
  // p80: rank 8 = 3rd of 4 samples in (10..20] -> 10 + (3/4)*10.
  EXPECT_NEAR(histogram_quantile(h, 0.8), 17.5, 1e-9);
  // p99 lands in the overflow bucket.
  EXPECT_DOUBLE_EQ(histogram_quantile(h, 0.99), 30.0);
}

TEST(HistogramQuantile, MatchesLiveHistogramSamples) {
  Histogram h(exponential_bounds(1.0, 2.0, 12));
  for (int i = 1; i <= 1000; ++i) h.record(static_cast<double>(i));
  const auto sample = h.sample("quantile.live");
  const double p50 = histogram_quantile(sample, 0.50);
  const double p95 = histogram_quantile(sample, 0.95);
  const double p99 = histogram_quantile(sample, 0.99);
  // Bucketed estimates are coarse (x2 buckets) but must be ordered and
  // inside the right buckets.
  EXPECT_GT(p50, 256.0);
  EXPECT_LE(p50, 1000.0);
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  EXPECT_LE(p99, sample.max);
}

TEST(GlobalRegistry, IsSingleProcessWideInstance) {
  EXPECT_EQ(&Registry::global(), &Registry::global());
  Counter& c = Registry::global().counter("test_obs.unique_counter");
  c.inc(7);
  const auto snap = Registry::global().snapshot();
  ASSERT_NE(snap.counter("test_obs.unique_counter"), nullptr);
  EXPECT_GE(snap.counter("test_obs.unique_counter")->value, 7u);
}

}  // namespace
}  // namespace rups::obs
