#include "gsm/gsm_field.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <thread>
#include <vector>

#include "gsm/env_profile.hpp"
#include "util/stats.hpp"

namespace rups::gsm {
namespace {

road::RoadSegment make_segment(road::SegmentId id, road::EnvironmentType env,
                               double length = 1000.0) {
  road::RoadSegment seg;
  seg.id = id;
  seg.env = env;
  seg.length_m = length;
  seg.start = {0.0, 0.0};
  seg.heading_rad = 0.0;
  return seg;
}

class GsmFieldTest : public ::testing::Test {
 protected:
  ChannelPlan plan_ = ChannelPlan::evaluation_subset(1, 60);
  GsmField field_{42, plan_};
  road::RoadSegment urban_ =
      make_segment(100, road::EnvironmentType::kFourLaneUrban);
};

TEST_F(GsmFieldTest, Deterministic) {
  const double a = field_.rssi_dbm(urban_, 123.4, 1, 7, 600.0);
  const double b = field_.rssi_dbm(urban_, 123.4, 1, 7, 600.0);
  EXPECT_EQ(a, b);
}

TEST_F(GsmFieldTest, TwoFieldObjectsSameSeedAgree) {
  GsmField other(42, plan_);
  for (double x : {0.0, 55.5, 999.0}) {
    EXPECT_EQ(field_.rssi_dbm(urban_, x, 2, 11, 100.0),
              other.rssi_dbm(urban_, x, 2, 11, 100.0));
  }
}

TEST_F(GsmFieldTest, DifferentSeedsDiffer) {
  GsmField other(43, plan_);
  EXPECT_NE(field_.rssi_dbm(urban_, 10.0, 1, 3, 0.0),
            other.rssi_dbm(urban_, 10.0, 1, 3, 0.0));
}

TEST_F(GsmFieldTest, ValuesWithinPhysicalRange) {
  for (double x = 0; x < 500; x += 13.0) {
    for (std::size_t c = 0; c < plan_.size(); c += 7) {
      const double v = field_.rssi_dbm(urban_, x, 1, c, x * 2.0);
      EXPECT_GE(v, GsmField::kNoiseFloorDbm);
      EXPECT_LE(v, GsmField::kSaturationDbm);
    }
  }
}

TEST_F(GsmFieldTest, PowerVectorMatchesPerChannelQueries) {
  const auto pv = field_.power_vector(urban_, 200.0, 1, 50.0);
  ASSERT_EQ(pv.size(), plan_.size());
  for (std::size_t c = 0; c < plan_.size(); c += 11) {
    EXPECT_EQ(pv[c], field_.rssi_dbm(urban_, 200.0, 1, c, 50.0));
  }
}

TEST_F(GsmFieldTest, AcrossChannelVarianceIsLarge) {
  // The power profile across channels must have structure (some strong,
  // some weak) — this is what fingerprinting keys on.
  const auto pv = field_.power_vector(urban_, 300.0, 1, 0.0);
  util::RunningStats s;
  for (double v : pv) s.add(v);
  EXPECT_GT(s.stddev(), 6.0);
  EXPECT_GT(s.max() - s.min(), 20.0);
}

// --- The paper's Sec. III properties ---

TEST_F(GsmFieldTest, TemporalStabilityShortGap) {
  // Power vectors at the same location tens of seconds apart must be highly
  // correlated (Fig 2: P(corr >= 0.8) ~ 0.95 at short gaps).
  int stable = 0;
  constexpr int kTrials = 40;
  for (int t = 0; t < kTrials; ++t) {
    const double x = 25.0 * t;
    const auto a = field_.power_vector(urban_, x, 1, 100.0 + t);
    const auto b = field_.power_vector(urban_, x, 1, 130.0 + t);
    if (util::pearson(a, b) >= 0.8) ++stable;
  }
  EXPECT_GE(stable, kTrials * 9 / 10);
}

TEST_F(GsmFieldTest, TemporalCorrelationDecaysWithGap) {
  util::RunningStats short_gap, long_gap;
  for (int t = 0; t < 30; ++t) {
    const double x = 30.0 * t;
    const auto base = field_.power_vector(urban_, x, 1, 0.0);
    short_gap.add(util::pearson(base, field_.power_vector(urban_, x, 1, 10.0)));
    long_gap.add(
        util::pearson(base, field_.power_vector(urban_, x, 1, 1500.0)));
  }
  EXPECT_GT(short_gap.mean(), long_gap.mean());
}

TEST_F(GsmFieldTest, GeographicalUniqueness) {
  // Same location at two times: high correlation. Two different roads:
  // low correlation (Fig 3 separation).
  const auto seg2 = make_segment(200, road::EnvironmentType::kFourLaneUrban);
  util::RunningStats same, diff;
  for (int i = 0; i < 30; ++i) {
    const double x = 20.0 * i;
    const auto here_t0 = field_.power_vector(urban_, x, 1, 0.0);
    const auto here_t1 = field_.power_vector(urban_, x, 1, 60.0);
    const auto there = field_.power_vector(seg2, x, 1, 0.0);
    same.add(util::pearson(here_t0, here_t1));
    diff.add(util::pearson(here_t0, there));
  }
  EXPECT_GT(same.mean(), 0.85);
  EXPECT_LT(diff.mean(), 0.45);
  EXPECT_GT(same.mean() - diff.mean(), 0.4);
}

TEST_F(GsmFieldTest, FineResolutionRelativeChange) {
  // Fig 4: the relative change of LINEAR power vectors one metre apart
  // averages >= ~0.4.
  util::RunningStats rel;
  for (int i = 0; i < 60; ++i) {
    const double x = 10.0 + 15.0 * i;
    const auto a = field_.power_vector(urban_, x, 1, 0.0);
    const auto b = field_.power_vector(urban_, x + 1.0, 1, 0.0);
    double num = 0.0, den = 0.0;
    for (std::size_t c = 0; c < a.size(); ++c) {
      const double la = dbm_to_mw(a[c]);
      const double lb = dbm_to_mw(b[c]);
      num += (la - lb) * (la - lb);
      den += la * la;
    }
    rel.add(std::sqrt(num) / std::sqrt(den));
  }
  EXPECT_GE(rel.mean(), 0.30);
}

TEST_F(GsmFieldTest, SpatialCorrelationDecaysOverDistance) {
  // Power vectors close in space correlate more than far apart.
  util::RunningStats d1, d50;
  for (int i = 0; i < 30; ++i) {
    const double x = 25.0 * i;
    const auto base = field_.power_vector(urban_, x, 1, 0.0);
    d1.add(util::pearson(base, field_.power_vector(urban_, x + 1.0, 1, 0.0)));
    d50.add(util::pearson(base, field_.power_vector(urban_, x + 50.0, 1, 0.0)));
  }
  EXPECT_GT(d1.mean(), d50.mean());
  EXPECT_GT(d1.mean(), 0.8);
}

TEST_F(GsmFieldTest, SameLaneIdenticalAcrossVehicles) {
  // Two vehicles in the same lane at the same spot/time see the same world
  // (field is vehicle-agnostic).
  EXPECT_EQ(field_.rssi_dbm(urban_, 77.0, 2, 5, 33.0),
            field_.rssi_dbm(urban_, 77.0, 2, 5, 33.0));
}

TEST_F(GsmFieldTest, DistinctLanesPerturbedButCorrelated) {
  // Both comparisons use the same 45 s gap (the realistic convoy delay) so
  // only the lane change differs.
  util::RunningStats same_lane, cross_lane;
  for (int i = 0; i < 25; ++i) {
    const double x = 30.0 * i;
    const auto l1 = field_.power_vector(urban_, x, 1, 0.0);
    const auto l1b = field_.power_vector(urban_, x, 1, 45.0);
    const auto l3 = field_.power_vector(urban_, x, 3, 45.0);
    same_lane.add(util::pearson(l1, l1b));
    cross_lane.add(util::pearson(l1, l3));
  }
  // Cross-lane is worse than same-lane but still clearly related.
  EXPECT_GT(same_lane.mean(), cross_lane.mean());
  EXPECT_GT(cross_lane.mean(), 0.6);
}

TEST_F(GsmFieldTest, UnderElevatedIsAttenuated) {
  const auto open = make_segment(300, road::EnvironmentType::kEightLaneUrban);
  const auto closed = make_segment(301, road::EnvironmentType::kUnderElevated);
  util::RunningStats open_s, closed_s;
  for (int i = 0; i < 20; ++i) {
    const double x = 40.0 * i;
    for (double v : field_.power_vector(open, x, 1, 0.0)) open_s.add(v);
    for (double v : field_.power_vector(closed, x, 1, 0.0)) closed_s.add(v);
  }
  EXPECT_LT(closed_s.mean(), open_s.mean() - 3.0);
}

class GsmFieldEnvSweep
    : public ::testing::TestWithParam<road::EnvironmentType> {};

TEST_P(GsmFieldEnvSweep, EveryEnvironmentProducesValidStructuredField) {
  const ChannelPlan plan = ChannelPlan::evaluation_subset(1, 40);
  GsmField field(7, plan);
  const auto seg = make_segment(1, GetParam());
  util::RunningStats s;
  for (double x = 0; x < 300; x += 10.0) {
    for (double v : field.power_vector(seg, x, 1, 0.0)) {
      EXPECT_GE(v, GsmField::kNoiseFloorDbm);
      EXPECT_LE(v, GsmField::kSaturationDbm);
      s.add(v);
    }
  }
  EXPECT_GT(s.stddev(), 4.0);  // structured, not flat
}

INSTANTIATE_TEST_SUITE_P(AllEnvs, GsmFieldEnvSweep,
                         ::testing::ValuesIn(road::kAllEnvironments));

TEST(GsmFieldThreading, ConcurrentQueriesConsistent) {
  const ChannelPlan plan = ChannelPlan::evaluation_subset(1, 30);
  GsmField field(9, plan);
  const auto seg = make_segment(5, road::EnvironmentType::kFourLaneUrban);
  // Prime one answer single-threaded.
  const double expected = field.rssi_dbm(seg, 10.0, 1, 3, 0.0);

  GsmField fresh(9, plan);
  std::vector<std::thread> threads;
  std::vector<double> results(8);
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&fresh, &results, &seg, t] {
      // All threads race on the lazily-built segment context.
      results[t] = fresh.rssi_dbm(seg, 10.0, 1, 3, 0.0);
    });
  }
  for (auto& th : threads) th.join();
  for (double r : results) EXPECT_EQ(r, expected);
}

TEST(DbmMw, RoundTrip) {
  EXPECT_NEAR(dbm_to_mw(0.0), 1.0, 1e-12);
  EXPECT_NEAR(dbm_to_mw(-30.0), 1e-3, 1e-12);
  for (double dbm = -110; dbm <= -40; dbm += 7.3) {
    EXPECT_NEAR(mw_to_dbm(dbm_to_mw(dbm)), dbm, 1e-9);
  }
}

}  // namespace
}  // namespace rups::gsm
