#include "core/quant.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <numeric>
#include <vector>

#include "core/packed.hpp"
#include "core/types.hpp"
#include "util/rng.hpp"

// Fuzz harness for the quantized pack builder (ISSUE 8 satellite): random,
// NaN, ±inf and wildly out-of-range dBm inputs pushed through one-shot
// builds AND incremental sync cycles must clamp or mask — never UB. Runs in
// the asan-ubsan verify_matrix.sh lane next to test_codec_fuzz, so "no UB"
// is checked by the sanitizers while the assertions below pin the
// semantics: q on the grid, v strictly 0/1, q == 0 wherever v == 0, finite
// affine params, and every correlation of fuzzed packs finite or the -2
// sentinel.

namespace rups::core {
namespace {

float fuzz_dbm(util::Rng& rng) {
  const double roll = rng.uniform();
  if (roll < 0.05) return std::numeric_limits<float>::quiet_NaN();
  if (roll < 0.10) return std::numeric_limits<float>::infinity();
  if (roll < 0.15) return -std::numeric_limits<float>::infinity();
  if (roll < 0.20) return 3.0e38f;   // near FLT_MAX
  if (roll < 0.25) return -3.0e38f;
  if (roll < 0.30) return static_cast<float>(rng.uniform() * 2e4 - 1e4);
  return static_cast<float>(-200.0 + 300.0 * rng.uniform());  // out of range
}

ContextTrajectory fuzz_context(util::Rng& rng, std::size_t metres,
                               std::size_t channels) {
  ContextTrajectory t(channels, metres);
  for (std::size_t i = 0; i < metres; ++i) {
    PowerVector pv(channels);
    for (std::size_t c = 0; c < channels; ++c) {
      if (rng.uniform() < 0.2) continue;  // leave missing
      pv.set(c, fuzz_dbm(rng));
    }
    t.append(GeoSample{}, std::move(pv));
  }
  return t;
}

template <typename Span>
void check_invariants(const Span& s, int qmax, const char* what) {
  EXPECT_TRUE(std::isfinite(s.params.offset)) << what;
  EXPECT_TRUE(std::isfinite(s.params.step)) << what;
  EXPECT_GT(s.params.step, 0.0) << what;
  for (std::size_t c = 0; c < s.channels; ++c) {
    for (std::size_t i = 0; i < s.metres; ++i) {
      const int q = s.q[c * s.stride + i];
      const int v = s.v[c * s.stride + i];
      EXPECT_TRUE(v == 0 || v == 1) << what;
      EXPECT_LE(std::abs(q), qmax) << what;
      if (v == 0) {
        EXPECT_EQ(q, 0) << what;
      }
    }
  }
}

TEST(QuantFuzz, OneShotBuildsNeverProduceGarbage) {
  util::Rng rng(0xF00D);
  for (int trial = 0; trial < 40; ++trial) {
    const std::size_t channels =
        1 + static_cast<std::size_t>(rng.uniform() * 24.0);
    const std::size_t metres =
        4 + static_cast<std::size_t>(rng.uniform() * 200.0);
    const auto t = fuzz_context(rng, metres, channels);
    std::vector<std::size_t> ids(channels);
    std::iota(ids.begin(), ids.end(), std::size_t{0});
    const SubsetPack pack(t, ids, 0, metres);
    QuantizedPack q16, q8;
    q16.build(pack.span(), QuantBits::kInt16);
    q8.build(pack.span(), QuantBits::kInt8);
    check_invariants(q16.span16(), kQuantMax16, "int16 build");
    check_invariants(q8.span8(), kQuantMax8, "int8 build");
    // Non-finite inputs must be masked invalid even where the float pack
    // kept the entry usable.
    const PackedSpan fs = pack.span();
    const QuantSpan16 qs = q16.span16();
    for (std::size_t c = 0; c < channels; ++c) {
      for (std::size_t i = 0; i < metres; ++i) {
        if (!std::isfinite(fs.x[c * fs.stride + i])) {
          EXPECT_EQ(qs.v[c * qs.stride + i], 0);
        }
      }
    }
  }
}

TEST(QuantFuzz, SyncCyclesStayOnGrid) {
  util::Rng rng(0xBEEF);
  for (int trial = 0; trial < 8; ++trial) {
    const std::size_t channels = 12;
    ContextTrajectory t(channels, 160);
    PackedContext pack;
    QuantizedPack q16, q8;
    std::size_t metres = 0;
    for (int round = 0; round < 12; ++round) {
      // Grow by a fuzzed stretch, then sync both mirrors; eviction kicks in
      // once the trajectory wraps its capacity.
      const std::size_t grow =
          1 + static_cast<std::size_t>(rng.uniform() * 40.0);
      for (std::size_t g = 0; g < grow; ++g) {
        PowerVector pv(channels);
        for (std::size_t c = 0; c < channels; ++c) {
          if (rng.uniform() < 0.15) continue;
          pv.set(c, fuzz_dbm(rng));
        }
        t.append(GeoSample{}, std::move(pv));
        ++metres;
      }
      pack.sync(t);
      q16.sync(pack, QuantBits::kInt16);
      q8.sync(pack, QuantBits::kInt8);
      ASSERT_TRUE(q16.mirrors(pack, QuantBits::kInt16));
      ASSERT_TRUE(q8.mirrors(pack, QuantBits::kInt8));
      check_invariants(q16.span16(), kQuantMax16, "int16 sync");
      check_invariants(q8.span8(), kQuantMax8, "int8 sync");
    }
  }
}

TEST(QuantFuzz, FuzzedCorrelationsFiniteOrSentinel) {
  util::Rng rng(0xCAFE);
  const TrajectoryCorrelationConfig config{};
  for (int trial = 0; trial < 12; ++trial) {
    const std::size_t channels = 10;
    const std::size_t window =
        8 + static_cast<std::size_t>(rng.uniform() * 60.0);
    const std::size_t metres = window + 50;
    const auto ft = fuzz_context(rng, window, channels);
    const auto st = fuzz_context(rng, metres, channels);
    std::vector<std::size_t> ids(channels);
    std::iota(ids.begin(), ids.end(), std::size_t{0});
    const SubsetPack fpack(ft, ids, 0, window);
    const SubsetPack spack(st, ids, 0, metres);
    QuantizedPack qf, qs;
    qf.build(fpack.span(), QuantBits::kInt16);
    qs.build(spack.span(), QuantBits::kInt16);
    const QuantView16 fv{qf.span16(), ids};
    const QuantView16 sv{qs.span16(), ids};
    const std::size_t pos_count = metres - window + 1;
    std::vector<double> scores(pos_count);
    quantized_correlation_batch<std::int16_t>(fv, 0, sv, 0, pos_count, window,
                                              config, scores.data());
    for (std::size_t q = 0; q < pos_count; ++q) {
      EXPECT_TRUE(std::isfinite(scores[q])) << "pos " << q;
      // The profile Pearson term is not clamped, so allow an ulp of
      // rounding headroom around the mathematical [-2, 2] range.
      EXPECT_GE(scores[q], -2.0 - 1e-9) << "pos " << q;
      EXPECT_LE(scores[q], 2.0 + 1e-9) << "pos " << q;
    }
  }
}

}  // namespace
}  // namespace rups::core
