#include "core/channel_select.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace rups::core {
namespace {

/// Trajectory where channel c's level is -100 + c dB (higher channel index
/// = stronger), fully measured.
ContextTrajectory make_graded(std::size_t metres, std::size_t channels) {
  ContextTrajectory traj(channels, metres);
  for (std::size_t i = 0; i < metres; ++i) {
    PowerVector pv(channels);
    for (std::size_t c = 0; c < channels; ++c) {
      pv.set(c, static_cast<float>(-100.0 + static_cast<double>(c)));
    }
    traj.append(GeoSample{}, std::move(pv));
  }
  return traj;
}

TEST(ChannelSelect, PicksStrongest) {
  const auto traj = make_graded(50, 20);
  const auto top = select_top_channels(traj, 0, 50, 5);
  ASSERT_EQ(top.size(), 5u);
  EXPECT_EQ(top, (std::vector<std::size_t>{15, 16, 17, 18, 19}));
}

TEST(ChannelSelect, ResultSortedAscending) {
  const auto traj = make_graded(50, 30);
  const auto top = select_top_channels(traj, 0, 50, 10);
  EXPECT_TRUE(std::is_sorted(top.begin(), top.end()));
}

TEST(ChannelSelect, KLargerThanChannelsReturnsAll) {
  const auto traj = make_graded(20, 8);
  const auto top = select_top_channels(traj, 0, 20, 100);
  EXPECT_EQ(top.size(), 8u);
}

TEST(ChannelSelect, LowCoverageChannelExcluded) {
  ContextTrajectory traj(3, 40);
  for (std::size_t i = 0; i < 40; ++i) {
    PowerVector pv(3);
    pv.set(0, -90.0f);
    pv.set(1, -95.0f);
    if (i < 4) pv.set(2, -50.0f);  // strongest but only 10% coverage
    traj.append(GeoSample{}, std::move(pv));
  }
  const auto top = select_top_channels(traj, 0, 40, 3, /*min_coverage=*/0.3);
  EXPECT_EQ(top, (std::vector<std::size_t>{0, 1}));
}

TEST(ChannelSelect, EmptyTrajectory) {
  ContextTrajectory traj(4, 10);
  EXPECT_TRUE(select_top_channels(traj, 0, 10, 3).empty());
}

TEST(ChannelSelect, WindowBeyondEndClamped) {
  const auto traj = make_graded(10, 6);
  const auto top = select_top_channels(traj, 5, 100, 2);
  EXPECT_EQ(top.size(), 2u);
}

TEST(ChannelSelect, RecentWindowUsesTail) {
  ContextTrajectory traj(2, 100);
  // First half: channel 0 strong; second half: channel 1 strong.
  for (std::size_t i = 0; i < 100; ++i) {
    PowerVector pv(2);
    pv.set(0, i < 50 ? -50.0f : -100.0f);
    pv.set(1, i < 50 ? -100.0f : -50.0f);
    traj.append(GeoSample{}, std::move(pv));
  }
  const auto top = select_top_channels_recent(traj, 40, 1);
  ASSERT_EQ(top.size(), 1u);
  EXPECT_EQ(top[0], 1u);
}

TEST(ChannelSelect, ShortTrajectoryRecentWindowFallsBack) {
  const auto traj = make_graded(5, 4);
  const auto top = select_top_channels_recent(traj, 50, 2);
  EXPECT_EQ(top.size(), 2u);
}

}  // namespace
}  // namespace rups::core
