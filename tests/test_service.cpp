#include "service/matcher_service.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/fleet.hpp"
#include "obs/health.hpp"
#include "obs/snapshot.hpp"
#include "sim/service_sim.hpp"
#include "util/thread_pool.hpp"

// The sharded matcher service contract:
//   * shard-routing determinism — any shard count, serial or pooled drain,
//     must reproduce exactly what bare per-vehicle FleetEngines compute on
//     the same replayed workload (estimates AND cache-decision counters);
//   * bounded arenas — exhaustion yields reasoned admission rejections,
//     never blocking, growth, or UB, and freed slots are reusable;
//   * the HealthMonitor admission rule fires on sustained rejection.

namespace rups::service {
namespace {

sim::CityFleetConfig small_city(std::uint64_t seed) {
  sim::CityFleetConfig city;
  city.vehicles = 12;
  city.channels = 24;
  city.context_capacity_m = 120;
  city.spacing_m = 25.0;
  city.min_advance_m = 8;
  city.max_advance_m = 14;
  city.seed = seed;
  return city;
}

ServiceConfig small_service(const sim::CityFleetConfig& city,
                            std::size_t shards) {
  ServiceConfig cfg;
  cfg.shard_count = shards;
  cfg.cell_m = 100.0;
  cfg.queue_capacity = 64;
  cfg.max_vehicles = city.vehicles;
  cfg.max_sessions = 64;
  cfg.fleet.rups.channels = city.channels;
  cfg.fleet.rups.context_capacity_m = city.context_capacity_m;
  return cfg;
}

struct Outcome {
  bool has_estimate = false;
  double distance_m = 0.0;
  double confidence = 0.0;
  std::size_t syn_count = 0;

  friend bool operator==(const Outcome&, const Outcome&) = default;
};

Outcome outcome_of(const core::FleetEngine::NeighbourResult& r) {
  Outcome o;
  o.has_estimate = r.estimate.has_value();
  if (o.has_estimate) {
    o.distance_m = r.estimate->distance_m;
    o.confidence = r.estimate->confidence;
    o.syn_count = r.estimate->syn_count;
  }
  return o;
}

constexpr std::size_t kRounds = 10;
constexpr std::size_t kWarmup = 4;

struct Replay {
  std::vector<std::vector<Outcome>> outcomes;
  std::uint64_t accepted = 0;
  /// syncache.* counter deltas over the replay (empty when the metrics
  /// registry compiles to no-ops).
  std::map<std::string, std::uint64_t> cache_counters;
};

std::map<std::string, std::uint64_t> cache_counter_values() {
  std::map<std::string, std::uint64_t> out;
  const auto snap = obs::Registry::global().snapshot();
  for (const auto& c : snap.counters) {
    if (c.name.rfind("syncache.", 0) == 0) out[c.name] = c.value;
  }
  return out;
}

/// Drive one replayed CityFleet through a MatcherService.
Replay run_service(std::uint64_t seed, std::size_t shards,
                   util::ThreadPool* pool) {
  const sim::CityFleetConfig city_cfg = small_city(seed);
  sim::CityFleet city(city_cfg);
  MatcherService svc(small_service(city_cfg, shards));
  for (std::size_t v = 0; v < city.vehicle_count(); ++v) {
    EXPECT_TRUE(svc.register_vehicle(city.vehicle_id(v), city.position(v)));
  }

  Replay out;
  const auto counters_before = cache_counter_values();
  std::vector<MatcherService::Ticket> tickets;
  for (std::size_t round = 0; round < kRounds; ++round) {
    city.advance_round();
    svc.begin_round();
    for (std::size_t v = 0; v < city.vehicle_count(); ++v) {
      for (const sim::CityFleet::Sample& s : city.samples(v)) {
        EXPECT_TRUE(
            svc.observe(city.vehicle_id(v), s.position_m, s.geo, s.power));
      }
    }
    if (round < kWarmup) continue;

    tickets.clear();
    for (const sim::CityFleet::Query& q : city.queries()) {
      tickets.push_back(
          svc.submit(city.vehicle_id(q.ego), city.vehicle_id(q.neighbour)));
    }
    svc.drain(pool);

    auto& round_outcomes = out.outcomes.emplace_back();
    for (const auto& t : tickets) {
      if (t.accepted()) {
        ++out.accepted;
        round_outcomes.push_back(outcome_of(svc.result(t)));
      } else {
        round_outcomes.push_back(Outcome{});
      }
    }
  }
  for (const auto& [name, value] : cache_counter_values()) {
    const auto it = counters_before.find(name);
    const std::uint64_t before = it == counters_before.end() ? 0 : it->second;
    out.cache_counters[name] = value - before;
  }
  return out;
}

/// The same workload through bare per-vehicle FleetEngines — the unsharded
/// single-process reference.
Replay run_reference(std::uint64_t seed) {
  const sim::CityFleetConfig city_cfg = small_city(seed);
  const ServiceConfig cfg = small_service(city_cfg, 1);
  sim::CityFleet city(city_cfg);

  std::vector<core::ContextTrajectory> trajs;
  std::vector<core::FleetEngine> engines;
  for (std::size_t v = 0; v < city.vehicle_count(); ++v) {
    trajs.emplace_back(cfg.fleet.rups.channels,
                       cfg.fleet.rups.context_capacity_m);
    engines.emplace_back(cfg.fleet);
  }

  Replay out;
  const auto counters_before = cache_counter_values();
  std::vector<core::FleetEngine::NeighbourResult> scratch;
  for (std::size_t round = 0; round < kRounds; ++round) {
    city.advance_round();
    for (std::size_t v = 0; v < city.vehicle_count(); ++v) {
      for (const sim::CityFleet::Sample& s : city.samples(v)) {
        trajs[v].append(s.geo, s.power);
      }
    }
    if (round < kWarmup) continue;

    auto& round_outcomes = out.outcomes.emplace_back();
    for (const sim::CityFleet::Query& q : city.queries()) {
      const core::ContextTrajectory* nb = &trajs[q.neighbour];
      const std::uint64_t nb_id = city.vehicle_id(q.neighbour);
      engines[q.ego].estimate_batch_into(
          trajs[q.ego],
          std::span<const core::ContextTrajectory* const>(&nb, 1),
          std::span<const std::uint64_t>(&nb_id, 1), nullptr, scratch);
      round_outcomes.push_back(outcome_of(scratch[0]));
      ++out.accepted;
    }
  }
  for (const auto& [name, value] : cache_counter_values()) {
    const auto it = counters_before.find(name);
    const std::uint64_t before = it == counters_before.end() ? 0 : it->second;
    out.cache_counters[name] = value - before;
  }
  return out;
}

TEST(ShardRouting, AnyShardCountMatchesUnshardedEngineBitForBit) {
  for (const std::uint64_t seed : {0xC17FULL, 0xBEEFULL, 0x5EEDULL}) {
    const Replay reference = run_reference(seed);
    ASSERT_FALSE(reference.outcomes.empty());
    bool any_estimate = false;
    for (const auto& round : reference.outcomes) {
      for (const auto& o : round) any_estimate = any_estimate || o.has_estimate;
    }
    EXPECT_TRUE(any_estimate) << "workload produced no estimates; seed "
                              << seed;

    for (const std::size_t shards : {1UL, 2UL, 4UL}) {
      const Replay serial = run_service(seed, shards, nullptr);
      EXPECT_EQ(serial.outcomes, reference.outcomes)
          << "serial, shards=" << shards << ", seed=" << seed;
      EXPECT_EQ(serial.accepted, reference.accepted);
      // Same estimates from the same decisions: the tracking/full-search
      // counter deltas must match the unsharded engine exactly.
      EXPECT_EQ(serial.cache_counters, reference.cache_counters)
          << "serial, shards=" << shards << ", seed=" << seed;

      util::ThreadPool pool(3);
      const Replay pooled = run_service(seed, shards, &pool);
      EXPECT_EQ(pooled.outcomes, reference.outcomes)
          << "pooled, shards=" << shards << ", seed=" << seed;
      EXPECT_EQ(pooled.cache_counters, reference.cache_counters)
          << "pooled, shards=" << shards << ", seed=" << seed;
    }
  }
}

TEST(Admission, UnknownVehicleAndSelfQueryAreRejected) {
  MatcherService svc(ServiceConfig{});
  ASSERT_TRUE(svc.register_vehicle(1, 0.0));
  svc.begin_round();

  const auto unknown = svc.submit(1, 99);
  EXPECT_EQ(unknown.admission, MatcherService::Admission::kUnknownVehicle);
  EXPECT_FALSE(unknown.accepted());

  const auto self = svc.submit(1, 1);
  EXPECT_EQ(self.admission, MatcherService::Admission::kUnknownVehicle);

  // Draining with nothing queued is a no-op, and rejected tickets carry an
  // invalid index rather than addressing a result slot.
  svc.drain();
  EXPECT_EQ(unknown.index, MatcherService::kInvalidIndex);
}

TEST(Admission, VehicleArenaExhaustionRejectsAndRecyclesAfterDeregister) {
  ServiceConfig cfg;
  cfg.max_vehicles = 2;
  MatcherService svc(cfg);
  EXPECT_TRUE(svc.register_vehicle(1, 0.0));
  EXPECT_TRUE(svc.register_vehicle(2, 10.0));
  EXPECT_FALSE(svc.register_vehicle(3, 20.0));  // arena full
  EXPECT_FALSE(svc.register_vehicle(1, 0.0));   // duplicate id
  EXPECT_EQ(svc.vehicle_count(), 2u);

  EXPECT_TRUE(svc.deregister_vehicle(1));
  EXPECT_FALSE(svc.deregister_vehicle(1));
  EXPECT_TRUE(svc.register_vehicle(3, 20.0));  // freed slot reused
  EXPECT_EQ(svc.vehicle_count(), 2u);
}

TEST(Admission, SessionArenaExhaustionRejectsWithReason) {
  ServiceConfig cfg;
  cfg.max_sessions = 1;
  MatcherService svc(cfg);
  for (std::uint64_t id = 1; id <= 3; ++id) {
    ASSERT_TRUE(svc.register_vehicle(id, static_cast<double>(id)));
  }
  svc.begin_round();
  const auto first = svc.submit(1, 2);
  EXPECT_TRUE(first.accepted());
  const auto second = svc.submit(1, 3);  // distinct pair needs a new session
  EXPECT_EQ(second.admission, MatcherService::Admission::kSessionsFull);
  // The established pair keeps being admitted.
  svc.drain();
  svc.begin_round();
  EXPECT_TRUE(svc.submit(1, 2).accepted());
  EXPECT_EQ(svc.session_count(), 1u);
}

TEST(Admission, QueueFullAndRoundFullRejectWithReason) {
  ServiceConfig cfg;
  cfg.shard_count = 2;
  cfg.queue_capacity = 1;
  cfg.max_round_requests = 3;
  MatcherService svc(cfg);
  // All on one cell: every ego routes to the same shard.
  for (std::uint64_t id = 1; id <= 5; ++id) {
    ASSERT_TRUE(svc.register_vehicle(id, 1.0));
  }
  svc.begin_round();
  EXPECT_TRUE(svc.submit(1, 2).accepted());
  const auto overflow = svc.submit(1, 3);
  EXPECT_EQ(overflow.admission, MatcherService::Admission::kQueueFull);

  // Queue capacity frees after a drain; the per-round ticket table does
  // not — its exhaustion is its own reason.
  svc.drain();
  EXPECT_TRUE(svc.submit(1, 3).accepted());
  svc.drain();
  EXPECT_TRUE(svc.submit(1, 4).accepted());
  svc.drain();
  const auto round_full = svc.submit(1, 5);
  EXPECT_EQ(round_full.admission, MatcherService::Admission::kRoundFull);

  svc.begin_round();  // new round resets the table
  EXPECT_TRUE(svc.submit(1, 5).accepted());
}

TEST(Admission, ReasonLabelsAreStable) {
  EXPECT_STREQ(
      MatcherService::admission_reason(MatcherService::Admission::kAccepted),
      "accepted");
  EXPECT_STREQ(
      MatcherService::admission_reason(MatcherService::Admission::kQueueFull),
      "queue_full");
  EXPECT_STREQ(MatcherService::admission_reason(
                   MatcherService::Admission::kSessionsFull),
               "sessions_full");
  EXPECT_STREQ(MatcherService::admission_reason(
                   MatcherService::Admission::kUnknownVehicle),
               "unknown_vehicle");
  EXPECT_STREQ(
      MatcherService::admission_reason(MatcherService::Admission::kRoundFull),
      "round_full");
}

TEST(Admission, DeregisterReleasesSessionsOfBothRoles) {
  MatcherService svc(ServiceConfig{});
  for (std::uint64_t id = 1; id <= 3; ++id) {
    ASSERT_TRUE(svc.register_vehicle(id, static_cast<double>(id)));
  }
  svc.begin_round();
  EXPECT_TRUE(svc.submit(1, 2).accepted());  // 2 as neighbour
  EXPECT_TRUE(svc.submit(2, 3).accepted());  // 2 as ego
  EXPECT_TRUE(svc.submit(1, 3).accepted());
  svc.drain();
  EXPECT_EQ(svc.session_count(), 3u);

  EXPECT_TRUE(svc.deregister_vehicle(2));
  EXPECT_EQ(svc.session_count(), 1u);  // only (1, 3) survives
  svc.begin_round();
  EXPECT_EQ(svc.submit(1, 2).admission,
            MatcherService::Admission::kUnknownVehicle);
  EXPECT_TRUE(svc.submit(1, 3).accepted());
  svc.drain();
}

TEST(Health, AdmissionRejectRuleFiresOnSustainedRejection) {
  obs::HealthConfig health_cfg;
  health_cfg.min_admissions = 8;
  health_cfg.max_admission_reject_rate = 0.5;
  obs::HealthMonitor health(health_cfg);

  ServiceConfig cfg;
  cfg.shard_count = 1;
  cfg.queue_capacity = 1;
  cfg.max_round_requests = 64;  // rejections come from the queue, not the
                                // per-round ticket table
  MatcherService svc(cfg);
  svc.set_health_monitor(&health);
  ASSERT_TRUE(svc.register_vehicle(1, 0.0));
  ASSERT_TRUE(svc.register_vehicle(2, 5.0));
  ASSERT_TRUE(svc.register_vehicle(3, 9.0));

  svc.begin_round();
  EXPECT_TRUE(svc.submit(1, 2).accepted());
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(svc.submit(1, 3).admission,
              MatcherService::Admission::kQueueFull);
  }
  const obs::HealthReport report = health.report();
  EXPECT_EQ(report.admissions, 17u);
  EXPECT_GT(report.admission_reject_rate, 0.5);
  bool fired = false;
  for (const auto& alert : report.alerts) {
    fired = fired || alert.rule == "admission_reject";
  }
  EXPECT_TRUE(fired);
  svc.drain();
}

}  // namespace
}  // namespace rups::service
